// Package gnnrdm is the public API of the GNN-RDM reproduction: training
// Graph Convolutional Networks (and GraphSAGE variants) across simulated
// multi-GPU fabrics with the paper's ReDistribution-of-Matrices scheme,
// plus its analytic performance model, samplers, baselines and dataset
// recipes.
//
// The implementation lives in internal/ subpackages (one per subsystem;
// see DESIGN.md); this package re-exports the supported surface so
// downstream modules can depend on it:
//
//	prob := &gnnrdm.Problem{A: gnnrdm.GCNNormalize(adj), X: feats, Labels: labels}
//	ids := gnnrdm.ParetoConfigs(gnnrdm.Network{Dims: []int{128, 128, 40},
//	        N: int64(prob.N()), NNZ: prob.A.NNZ(), P: 8, RA: 8})
//	res := gnnrdm.Train(8, gnnrdm.A6000(), prob, gnnrdm.TrainOptions{
//	        Dims: []int{128, 128, 40}, Config: gnnrdm.ConfigFromID(ids[0], 2),
//	        Memoize: true}, 100)
package gnnrdm

import (
	"gnnrdm/internal/baselines"
	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/graph"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/saint"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
)

// Core training types (internal/core).
type (
	// Problem is a training task: normalized adjacency, features,
	// labels, optional masks/weights.
	Problem = core.Problem
	// TrainOptions configures an RDM run (ordering config, R_A,
	// memoization, SAGE, sampling, ...).
	TrainOptions = core.Options
	// Result is a finished run: per-epoch stats, logits, weights.
	Result = core.Result
	// EpochStats is one epoch's loss, simulated times, and exact
	// communicated bytes.
	EpochStats = core.EpochStats
	// Engine is the per-device SPMD training engine (advanced use).
	Engine = core.Engine
	// Checkpoint is a serializable weights+optimizer snapshot.
	Checkpoint = core.Checkpoint
)

// Cost model types (internal/costmodel, §IV of the paper).
type (
	// Network is the cost model's view of a GNN workload.
	Network = costmodel.Network
	// OrderingConfig is a complete SpMM-first/GEMM-first choice
	// (Table IV).
	OrderingConfig = costmodel.Config
	// Cost is a configuration's modelled communication and sparse ops.
	Cost = costmodel.Cost
)

// Data types.
type (
	// CSR is a compressed-sparse-row matrix.
	CSR = sparse.CSR
	// Dense is a row-major float32 matrix.
	Dense = tensor.Dense
	// Graph is a generated dataset (adjacency, features, labels,
	// splits).
	Graph = graph.Graph
	// Recipe describes one of the paper's Table V dataset stand-ins.
	Recipe = graph.Recipe
	// HardwareModel is the analytic device/interconnect model.
	HardwareModel = hw.Model
	// SamplingCurve is a GraphSAINT accuracy-versus-time series
	// (Fig. 13).
	SamplingCurve = saint.Curve
)

// Training entry points.
var (
	// Train runs distributed RDM GCN training on p simulated devices.
	Train = core.Train
	// TrainResumable is Train with checkpoint restore/snapshot.
	TrainResumable = core.TrainResumable
	// AutoTune probes the model's Pareto candidates and returns the
	// fastest (§IV-B).
	AutoTune = core.AutoTune
	// ReferenceTrain is the single-node ground-truth trainer.
	ReferenceTrain = core.ReferenceTrain
	// NewEngine builds one device's engine (advanced SPMD use).
	NewEngine = core.NewEngine
	// ReadCheckpoint deserializes a checkpoint stream.
	ReadCheckpoint = core.ReadCheckpoint
)

// Cost model entry points.
var (
	// Evaluate prices one ordering configuration on a network.
	Evaluate = costmodel.Evaluate
	// EvaluateAll prices the whole 2^(2L) design space.
	EvaluateAll = costmodel.EvaluateAll
	// ParetoConfigs returns the Pareto-optimal configuration IDs.
	ParetoConfigs = costmodel.ParetoConfigs
	// ConfigFromID decodes a Table IV configuration ID.
	ConfigFromID = costmodel.ConfigFromID
	// ChooseRA picks the largest replication factor that fits memory
	// (§III-E).
	ChooseRA = costmodel.ChooseRA
	// SpaceModel estimates per-GPU memory (Table X).
	SpaceModel = costmodel.SpaceModel
	// PredictEpochTime turns model counts into predicted seconds.
	PredictEpochTime = costmodel.PredictEpochTime
)

// Graph utilities.
var (
	// GCNNormalize builds D^{-1/2}(A+I)D^{-1/2} (symmetric).
	GCNNormalize = sparse.GCNNormalize
	// RowNormalize builds D^{-1}(A+I) (asymmetric; pair with
	// Problem.ATranspose).
	RowNormalize = sparse.RowNormalize
	// Recipes returns the paper's eight Table V dataset recipes.
	Recipes = graph.Recipes
	// RecipeByName looks up one recipe.
	RecipeByName = graph.RecipeByName
	// PlantedPartition, RMAT and ErdosRenyi generate synthetic graphs.
	PlantedPartition = graph.PlantedPartition
	RMAT             = graph.RMAT
	ErdosRenyi       = graph.ErdosRenyi
	// ReadEdgeList / WriteEdgeList / ReadCSR / WriteCSR are the I/O
	// formats.
	ReadEdgeList  = graph.ReadEdgeList
	WriteEdgeList = graph.WriteEdgeList
	ReadCSRFile   = graph.ReadCSR
	WriteCSRFile  = graph.WriteCSR
)

// Hardware models.
var (
	// A6000 approximates the paper's testbed (8x RTX A6000, PCIe4).
	A6000 = hw.A6000
	// A6000NVLink / A6000SlowPCIe vary the interconnect for
	// sensitivity studies.
	A6000NVLink   = hw.A6000NVLink
	A6000SlowPCIe = hw.A6000SlowPCIe
)

// GraphSAINT (§V-C) and baselines (§V-B).
var (
	// TrainSAINTRDM trains sampled subgraphs across all devices with
	// RDM (one update per subgraph).
	TrainSAINTRDM = saint.TrainSAINTRDM
	// TrainSAINTDDP is the DGL-style DDP baseline (S/G updates per
	// epoch).
	TrainSAINTDDP = saint.TrainSAINTDDP
	// NeighborMaskProvider enables masked-SpMM fanout sampling with a
	// shared seed (§III-F); assign to TrainOptions.MaskProvider.
	NeighborMaskProvider = saint.NeighborMaskProvider
	// TrainCAGNET / TrainDGCL are the comparison systems on the same
	// fabric.
	TrainCAGNET = baselines.TrainCAGNET
	TrainDGCL   = baselines.TrainDGCL
)
