// Cost-model walkthrough: reproduce Table VI (the Pareto-optimal
// ordering candidates for every dataset) from the analytic performance
// model alone, then show how the winner shifts with the network shape
// and how R_A < P changes the trade-off.
//
//	go run ./examples/costmodel
package main

import (
	"fmt"

	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/graph"
)

func main() {
	fmt.Println("Table VI: Pareto-optimal configuration IDs, 2-layer GCN, hidden=128, P=8")
	fmt.Printf("%-14s %6s %6s %6s   %s\n", "dataset", "f_in", "f_h", "f_out", "candidates")
	for _, r := range graph.Recipes() {
		net := costmodel.Network{
			Dims: []int{r.FeatureDim, 128, r.Labels},
			N:    int64(r.Vertices), NNZ: 2 * r.Edges, P: 8, RA: 8,
		}
		fmt.Printf("%-14s %6d %6d %6d   %v\n",
			r.Name, r.FeatureDim, 128, r.Labels, costmodel.ParetoConfigs(net))
	}

	fmt.Println("\nHow the winner moves with the output width (f_in=128, f_h=128):")
	fmt.Printf("%8s   %s\n", "f_out", "pareto candidates")
	for _, fout := range []int{8, 40, 100, 128, 349, 1024} {
		net := costmodel.Network{
			Dims: []int{128, 128, fout}, N: 1_000_000, NNZ: 20_000_000, P: 8, RA: 8,
		}
		fmt.Printf("%8d   %v\n", fout, costmodel.ParetoConfigs(net))
	}

	fmt.Println("\nR_A trade-off on Reddit's shape (f=602,128,41), config 10:")
	fmt.Printf("%4s %16s %14s %14s\n", "RA", "comm(M elems)", "bcast incl.", "space/GPU(MB)")
	for _, ra := range []int{1, 2, 4, 8} {
		net := costmodel.Network{
			Dims: []int{602, 128, 41}, N: 232_965, NNZ: 229_697_714 + 232_965, P: 8, RA: ra,
		}
		c := costmodel.Evaluate(net, costmodel.ConfigFromID(10, 2))
		fmt.Printf("%4d %16.1f %14s %14.1f\n",
			ra, c.CommElems/1e6, "yes", float64(costmodel.SpaceModel(net))/(1<<20))
	}

	fmt.Println("\nChooseRA picks the largest replication that fits device memory:")
	for _, mem := range []int64{48 << 30, 2 << 30, 1 << 29} {
		ra := costmodel.ChooseRA(8, mem, 2<<30, 4<<30)
		fmt.Printf("  M=%4dMB per GPU, H_all=2GB, G=4GB  ->  R_A = %d\n", mem>>20, ra)
	}
}
