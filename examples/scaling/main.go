// Scaling study: full-batch GCN training with RDM vs the CAGNET and
// DGCL baselines across 2/4/8 simulated GPUs (the Fig. 8 experiment on
// one dataset), demonstrating the paper's headline property — RDM's
// communication volume stays constant as devices are added, while the
// broadcast- and partition-based baselines' volumes grow.
//
//	go run ./examples/scaling
package main

import (
	"fmt"

	"gnnrdm/internal/bench"
)

func main() {
	const dataset = "Web-Google"
	const scale = 128

	w, err := bench.BuildWorkload(dataset, scale)
	if err != nil {
		panic(err)
	}
	fmt.Printf("dataset %s at scale 1/%d: N=%d, nnz=%d, f_in=%d\n\n",
		dataset, scale, w.Prob.N(), w.Prob.A.NNZ(), w.Recipe.FeatureDim)

	cfg := bench.Config{Scale: scale, Epochs: 2, Datasets: []string{dataset}}
	fmt.Printf("%3s %14s %14s %14s %12s %12s %12s\n",
		"P", "RDM(ep/s)", "CAGNET(ep/s)", "DGCL(ep/s)", "RDM-MB", "CAGNET-MB", "DGCL-MB")
	for _, p := range []int{2, 4, 8} {
		rdm, id := bench.RunRDMBest(cfg, w, 2, 128, p)
		cagnet := bench.RunCAGNET(cfg, w, 2, 128, p)
		dgcl := bench.RunDGCL(cfg, w, 2, 128, p)
		last := rdm.Epochs[len(rdm.Epochs)-1]
		lc := cagnet.Epochs[len(cagnet.Epochs)-1]
		ld := dgcl.Epochs[len(dgcl.Epochs)-1]
		fmt.Printf("%3d %14.2f %14.2f %14.2f %12.2f %12.2f %12.2f   (RDM config %d)\n",
			p, rdm.EpochsPerSecond(), cagnet.EpochsPerSecond(), dgcl.EpochsPerSecond(),
			mb(last.CommBytes), mb(lc.CommBytes), mb(ld.CommBytes), id)
	}
	fmt.Println("\nRDM's volume is ~flat in P ((P-1)/P * N * f per redistribution);")
	fmt.Println("CAGNET's broadcast volume grows ~(P-1); DGCL's halo grows with the edge cut.")
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
