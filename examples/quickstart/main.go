// Quickstart: train a 2-layer GCN with GNN-RDM on four simulated GPUs.
//
// This example builds a small planted-partition graph, lets the analytic
// cost model pick the communication-optimal SpMM/GEMM ordering, trains
// for 30 epochs, and prints per-epoch loss plus the communication
// statistics that are the point of the RDM approach.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/graph"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/sparse"
)

func main() {
	const (
		n       = 2048
		classes = 8
		fin     = 64
		hidden  = 32
		gpus    = 4
		epochs  = 30
	)

	// 1. Build a learnable synthetic graph: 8 planted communities whose
	// features correlate with the labels.
	rng := rand.New(rand.NewSource(1))
	adj, labels := graph.PlantedPartition(rng, n, 8*n, classes, 0.8)
	prob := &core.Problem{
		A:      sparse.GCNNormalize(adj),
		X:      graph.SynthesizeFeatures(rng, labels, classes, fin, 0.8),
		Labels: labels,
	}

	// 2. Ask the cost model for the Pareto-optimal orderings (Table IV)
	// and take the first candidate.
	net := costmodel.Network{
		Dims: []int{fin, hidden, classes},
		N:    n, NNZ: prob.A.NNZ(), P: gpus, RA: gpus,
	}
	candidates := costmodel.ParetoConfigs(net)
	cfg := costmodel.ConfigFromID(candidates[0], 2)
	fmt.Printf("pareto-optimal orderings: %v; using ID %d = %v\n",
		candidates, candidates[0], cfg)

	// 3. Train on the simulated multi-GPU fabric.
	res := core.Train(gpus, hw.A6000(), prob, core.Options{
		Dims:    []int{fin, hidden, classes},
		Config:  cfg,
		Memoize: true,
		LR:      0.01,
		Seed:    7,
	}, epochs)

	for i, ep := range res.Epochs {
		if i%5 == 0 || i == epochs-1 {
			fmt.Printf("epoch %2d  loss %.4f  sim-time %.3fms  comm %.3fms  moved %.2fMB\n",
				i, ep.Loss, ep.Time*1e3, ep.CommTime*1e3, float64(ep.CommBytes)/(1<<20))
		}
	}
	fmt.Printf("\nfinal train accuracy: %.3f\n", res.Accuracy(prob.Labels, nil))
	fmt.Printf("throughput: %.1f epochs/s (simulated %d-GPU time)\n", res.EpochsPerSecond(), gpus)
}
