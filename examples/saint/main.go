// GraphSAINT example: compare three ways of training the same GCN on 8
// simulated GPUs (the Fig. 13 experiment on one dataset):
//
//   - GCN-RDM: full-batch training, every epoch distributed with RDM;
//
//   - GraphSAINT-RDM: sampled subgraphs, each trained across all GPUs,
//     one weight update per subgraph;
//
//   - GraphSAINT-DDP: one subgraph per GPU per step, gradients
//     all-reduced — S/G updates per epoch, so convergence per epoch
//     degrades as GPUs are added.
//
//     go run ./examples/saint
package main

import (
	"fmt"
	"math/rand"

	"gnnrdm/internal/core"
	"gnnrdm/internal/graph"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/saint"
)

func main() {
	const (
		n       = 4096
		classes = 8
		fin     = 64
		gpus    = 8
		epochs  = 10
	)
	rng := rand.New(rand.NewSource(3))
	adj, labels := graph.PlantedPartition(rng, n, 10*n, classes, 0.85)
	prob := &core.Problem{
		A:      adj, // raw adjacency; trainers normalize internally
		X:      graph.SynthesizeFeatures(rng, labels, classes, fin, 0.7),
		Labels: labels,
	}
	var test []bool
	prob.TrainMask, _, test = graph.RandomSplit(rng, n, 0.7, 0.1)

	opts := saint.Options{
		Dims:       []int{fin, 32, classes},
		LR:         0.01,
		Seed:       7,
		Kind:       saint.RandomWalkSampler,
		Budget:     n / 8,
		WalkLength: 3,
		NormTrials: 30,
	}

	full := saint.TrainFullBatchCurve(gpus, hw.A6000(), prob, test, opts, epochs)
	rdm := saint.TrainSAINTRDM(gpus, hw.A6000(), prob, test, opts, epochs)
	ddp := saint.TrainSAINTDDP(gpus, hw.A6000(), prob, test, opts, epochs)

	fmt.Printf("%-18s %8s %10s %10s %10s\n", "curve", "epochs", "updates", "best-acc", "time(s)")
	for _, c := range []*saint.Curve{full, rdm, ddp} {
		f := c.Final()
		fmt.Printf("%-18s %8d %10d %10.4f %10.4f\n",
			c.Name, len(c.Points), f.Updates, c.BestAcc(), f.Time)
	}

	fmt.Println("\naccuracy vs simulated time (test split):")
	fmt.Printf("%8s %12s %12s %12s\n", "epoch", full.Name, rdm.Name, ddp.Name)
	for i := range full.Points {
		fmt.Printf("%8d %12.4f %12.4f %12.4f\n",
			i+1, full.Points[i].TestAcc, rdm.Points[i].TestAcc, ddp.Points[i].TestAcc)
	}
	fmt.Printf("\nnote: SAINT-RDM performs %dx more weight updates than DDP per epoch\n",
		rdm.Final().Updates/maxInt(ddp.Final().Updates, 1))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
