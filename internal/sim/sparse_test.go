package sim_test

import (
	"fmt"
	"testing"

	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/sim"
	"gnnrdm/internal/topo"
)

func sparseSchedFor(n int, dims []int, cfg, p, live int, abc bool) *plan.Schedule {
	s := plan.Compile(plan.Spec{
		N: n, Dims: dims, Config: costmodel.ConfigFromID(cfg, len(dims)-1),
		P: p, RA: p, Memoize: true, InputGrad: true,
		Live: live, SparseSeed: 3,
	}).Optimize()
	if abc {
		s = s.ABC()
	}
	return s
}

// TestSimClocksEqualPricerSparse extends the engine-vs-pricer clock pin
// to sparse schedules (two-round exchanges) and ABC-rewritten ones
// (KSpMMABC): both executors, flat and hierarchical, bit-identical
// clocks, with the metered volumes matching the pricer's byte totals.
func TestSimClocksEqualPricerSparse(t *testing.T) {
	h := hw.A6000()
	dims := []int{16, 12, 8}
	const n, epochs, nnz = 256, 2, 4 * 256
	for _, spec := range []string{"", "8x4:nvlink,ib"} {
		for _, abc := range []bool{false, true} {
			p := 8
			var tp *topo.Topology
			name := fmt.Sprintf("flat/abc=%v", abc)
			if spec != "" {
				ts, err := topo.ParseSpec(spec)
				if err != nil {
					t.Fatal(err)
				}
				tp = ts.MustTopology(p)
				name = fmt.Sprintf("%s/abc=%v", spec, abc)
			}
			pc := plan.NewPriceCache()
			t.Run(name, func(t *testing.T) {
				for _, cfg := range []int{2, 3, 10, 15} { // DenseFirst forward layers
					s := sparseSchedFor(n, dims, cfg, p, 32, abc)
					d := plan.MustBuildDAG(s)
					cen := s.ApproxCensus(nnz)
					cost := d.PriceDAGEpochsCached(cen, h, tp, epochs, pc)
					for _, overlap := range []bool{false, true} {
						res := sim.MustRun(sim.Config{
							DAG: d, Census: cen, HW: h, Topology: tp,
							Epochs: epochs, Overlap: overlap, Cache: pc,
						})
						want := cost.PerDeviceSeq
						if overlap {
							want = cost.PerDevice
						}
						for r := 0; r < p; r++ {
							if res.Clocks[r] != want[r] {
								t.Fatalf("cfg %d overlap=%v rank %d: sim clock %.17g != priced %.17g",
									cfg, overlap, r, res.Clocks[r], want[r])
							}
						}
						// Meters must also agree with the aggregate pricer's
						// byte totals (volumes are per-epoch invariant).
						c := s.PriceOn(nnz, h, tp)
						primary := res.Meters.TotalVolume() - res.Meters.TotalSideVolume()
						if w := int64(epochs) * (c.RDMBytes() + c.AllReduce); primary != w {
							t.Fatalf("cfg %d overlap=%v: sim primary volume %d != priced %d", cfg, overlap, primary, w)
						}
						if side, w := res.Meters.TotalSideVolume(), int64(epochs)*c.Side; side != w {
							t.Fatalf("cfg %d overlap=%v: sim side volume %d != priced %d", cfg, overlap, side, w)
						}
					}
				}
			})
		}
	}
}
