// Package sim is the discrete-event execution backend: it replays a
// compiled schedule's dependency DAG over per-device occupancy lanes
// (hw.Occupancy — one serial timeline per compute/link resource) and
// produces everything the live fabric would measure — per-device
// clocks, per-rank communication and compute time, the full per-kind /
// per-tier byte census, and optional trace events — without ever
// materializing a payload buffer.
//
// The engine is an extraction, not an approximation: the charge
// sequence is the interpreter's own (internal/core execOp, charge for
// charge, in order), the rendezvous rule is the fabric's (all member
// clocks synchronize to max(deposits) + the metering seam's time for
// the same group and byte census, via comm.Meter), and the overlap
// lane model is the DAG executor's (ops start at max(resource free,
// dependency finishes), advance only their resource, and rejoin at
// epoch boundaries in the same merge order). verify.CheckSimMatchesFabric
// pins clocks, time accumulators, and all meters bit-identical to live
// fabric runs for both executors.
//
// Because no payloads move, a run costs O(ops × P) float arithmetic
// plus memoized O(P²) redistribution censuses (plan.PriceCache, shared
// across the 16 Table IV configs of a sweep) — which is what lets
// `rdmbench scale` sweep 16 configs × topologies at P = 4096 in
// seconds instead of simulating terabytes of tile traffic.
package sim

import (
	"errors"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/topo"
	"gnnrdm/internal/trace"
)

// Config describes one simulated training run.
type Config struct {
	// Sched is the compiled, optimized op schedule (required unless DAG
	// is given, in which case DAG.Sched is used).
	Sched *plan.Schedule
	// DAG is Sched's dependency DAG; built on demand when nil.
	DAG *plan.DAG
	// Census carries the per-rank adjacency panel NNZ counts (and
	// optional straggler multipliers) the SpMM charges need. Use
	// core.PanelCensus for exact fabric equality, or
	// Schedule.ApproxCensus for synthetic sweeps.
	Census plan.Census
	// HW is the device model (required).
	HW *hw.Model
	// Topology routes collectives hierarchically when non-nil; nil is
	// the flat interconnect. Collectives price under topo.Auto, the
	// fabric's default algorithm policy.
	Topology *topo.Topology
	// Epochs is the number of epochs to replay (default 1). Per-device
	// clocks carry across epoch boundaries exactly as live.
	Epochs int
	// Overlap selects the DAG executor's lane model; false replays the
	// sequential interpreter.
	Overlap bool
	// EpochBarriers is the number of world barriers after each epoch: 0
	// reproduces a bare Engine.Epoch loop (verify's differential
	// harnesses), 2 reproduces core.TrainResumable's barrier/snapshot
	// protocol. Per-epoch snapshots are taken after the first barrier
	// (or at the epoch join when 0), matching where TrainResumable
	// reads its stats.
	EpochBarriers int
	// Tracer, when non-nil, records the synthesized timeline into a
	// virtual session labelled TraceLabel (default "sim"). Tracing off
	// keeps the run allocation-free on the hot path.
	Tracer     *trace.Tracer
	TraceLabel string
	// Cache shares redistribution censuses and topology-routed
	// all-to-all costs across runs of one (P, HW, Topology) context —
	// pass one cache to every run of a sweep. Nil uses a private cache.
	Cache *plan.PriceCache
}

// Meters is the simulated fabric's byte census, field-for-field the
// live fabric's accounting (comm.Fabric addVolume): primary and
// side-channel volume, call counts, and per-link-tier splits, all by
// collective kind.
type Meters struct {
	Volume         [hw.NumCollectiveKinds]int64
	SideVolume     [hw.NumCollectiveKinds]int64
	Calls          [hw.NumCollectiveKinds]int64
	TierVolume     [topo.NumTiers][hw.NumCollectiveKinds]int64
	SideTierVolume [topo.NumTiers][hw.NumCollectiveKinds]int64
}

// add replicates Fabric.addVolume: primary or side routing, intra/inter
// tier split, and the per-kind call counter.
func (m *Meters) add(kind hw.CollectiveKind, vol comm.Volume, side bool) {
	if side {
		m.SideVolume[kind] += vol.Bytes
		m.SideTierVolume[topo.TierIntra][kind] += vol.Bytes - vol.Tier1
		m.SideTierVolume[topo.TierInter][kind] += vol.Tier1
	} else {
		m.Volume[kind] += vol.Bytes
		m.TierVolume[topo.TierIntra][kind] += vol.Bytes - vol.Tier1
		m.TierVolume[topo.TierInter][kind] += vol.Tier1
	}
	m.Calls[kind]++
}

// TotalVolume returns all bytes moved including side-channel traffic,
// matching Fabric.TotalVolume.
func (m *Meters) TotalVolume() int64 {
	var s int64
	for k := range m.Volume {
		s += m.Volume[k] + m.SideVolume[k]
	}
	return s
}

// TotalSideVolume returns the side-channel bytes across all kinds.
func (m *Meters) TotalSideVolume() int64 {
	var s int64
	for k := range m.SideVolume {
		s += m.SideVolume[k]
	}
	return s
}

// Result is everything a simulated run measured.
type Result struct {
	P int
	// Clocks is each device's final simulated clock (the occupancy
	// makespan), equal to Device.Clock after the same live run.
	Clocks []float64
	// CommTime and ComputeTime are the per-rank accumulators, equal to
	// Device.CommTime / Device.ComputeTime after the same live run
	// (including the overlap executor's lane-merge accumulation order).
	CommTime    []float64
	ComputeTime []float64
	// Meters is the final byte census.
	Meters Meters
	// EpochClock/EpochComm/EpochCompute are cumulative per-rank
	// snapshots at each epoch's snapshot point ([epoch][rank]);
	// EpochBytes is the cumulative total metered volume (including
	// side-channel) there. Deltas between consecutive epochs reproduce
	// core.EpochStats exactly when EpochBarriers is 2.
	EpochClock   [][]float64
	EpochComm    [][]float64
	EpochCompute [][]float64
	EpochBytes   []int64
}

// MaxClock returns the maximum final clock across devices.
func (r *Result) MaxClock() float64 {
	m := 0.0
	for _, c := range r.Clocks {
		if c > m {
			m = c
		}
	}
	return m
}

// Run executes the simulated training run.
func Run(cfg Config) (*Result, error) {
	s := cfg.Sched
	if s == nil && cfg.DAG != nil {
		s = cfg.DAG.Sched
	}
	if s == nil {
		return nil, errors.New("sim: Config.Sched or Config.DAG required")
	}
	if cfg.HW == nil {
		return nil, errors.New("sim: Config.HW required")
	}
	if cfg.EpochBarriers < 0 {
		return nil, errors.New("sim: negative EpochBarriers")
	}
	d := cfg.DAG
	if d == nil {
		var err error
		if d, err = plan.BuildDAG(s); err != nil {
			return nil, err
		}
	}
	epochs := cfg.Epochs
	if epochs <= 0 {
		epochs = 1
	}
	pc := cfg.Cache
	if pc == nil {
		pc = plan.NewPriceCache()
	}
	e := newEngine(d, cfg, epochs, pc)
	e.run()
	return e.result(), nil
}

// MustRun is Run panicking on a config error.
func MustRun(cfg Config) *Result {
	r, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}
