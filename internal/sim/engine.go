package sim

import (
	"strconv"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/topo"
	"gnnrdm/internal/trace"
)

// engine is one run's state: per-device occupancy cursors, the clock
// scratch the rendezvous rule operates on, per-resource time
// accumulators (index 0 is the base device; 1 and 2 are the overlap
// executor's link lanes, folded into the base at each epoch join in
// the executor's merge order), the byte meters, and per-group round
// counters for trace attribution. Everything is allocated once in
// newEngine; the walk itself allocates nothing.
type engine struct {
	d   *plan.DAG
	s   *plan.Schedule
	cen plan.Census
	h   *hw.Model
	tp  *topo.Topology
	pc  *plan.PriceCache

	p       int
	epochs  int
	overlap bool
	nbarr   int

	meter  comm.Meter
	occ    []hw.Occupancy
	clk    []float64
	finish [][]float64 // [node][rank] finish times, rewritten each epoch
	regs   map[plan.Reg]regShape

	// comm/compute accumulators per resource lane. Seq mode charges
	// everything to lane 0; overlap mode charges each op to its
	// resource's lane and folds lanes 1..N-1 into 0 at the epoch join,
	// replicating Device.MergeLane's accumulation order bit-for-bit.
	comm    [hw.NumResources][]float64
	compute [hw.NumResources][]float64
	resCur  []hw.Resource // current op's resource per rank (ResCompute in seq mode)
	resTab  *plan.ResourceTable

	meters Meters

	world     []int
	colGroups [][]int
	chunkBuf  []int64
	wBytes    int64

	// Per-group rendezvous round counters (the fabric's groupComm.gen):
	// index 0 is the world group, 1+j is column group j.
	gens []uint64

	// Trace state (nil tracer disables all of it).
	tr                               *trace.Tracer
	cfgStr                           string
	grpKeys                          []string // group keys by gen index, built only when tracing
	epoch                            int
	snapClock, snapComm, snapCompute [][]float64
	snapBytes                        []int64
}

// regShape mirrors the executor's live matrix shapes during the walk.
type regShape struct {
	layout     dist.Layout
	rows, cols int
}

// Gen-counter indices: world is 0, column group j is 1+j.
const gidWorld = 0

func gidCol(j int) int { return 1 + j }

func newEngine(d *plan.DAG, cfg Config, epochs int, pc *plan.PriceCache) *engine {
	s := d.Sched
	p := s.P
	pc.Bind(p, cfg.HW, cfg.Topology)
	e := &engine{
		d: d, s: s, cen: cfg.Census, h: cfg.HW, tp: cfg.Topology, pc: pc,
		p: p, epochs: epochs, overlap: cfg.Overlap, nbarr: cfg.EpochBarriers,
		meter:  comm.Meter{HW: cfg.HW, Topo: cfg.Topology},
		occ:    make([]hw.Occupancy, p),
		clk:    make([]float64, p),
		finish: make([][]float64, len(d.Nodes)),
		regs:   make(map[plan.Reg]regShape, s.NumRegs),
		resCur: make([]hw.Resource, p),
		world:  s.World(),
		gens:   make([]uint64, 1+s.RA),
		tr:     cfg.Tracer,
		cfgStr: s.Config.String(),
	}
	for i := range e.finish {
		e.finish[i] = make([]float64, p)
	}
	for res := range e.comm {
		e.comm[res] = make([]float64, p)
		e.compute[res] = make([]float64, p)
	}
	e.colGroups = make([][]int, s.RA)
	for j := 0; j < s.RA; j++ {
		e.colGroups[j] = s.ColGroup(j)
	}
	e.chunkBuf = make([]int64, p)
	if e.overlap {
		e.resTab = d.Resources(e.tp)
	}
	for l := 1; l < len(s.Dims); l++ {
		e.wBytes += int64(s.Dims[l-1]) * int64(s.Dims[l]) * 4
	}
	if s.SAGE {
		e.wBytes *= 2
	}
	e.snapClock = make([][]float64, epochs)
	e.snapComm = make([][]float64, epochs)
	e.snapCompute = make([][]float64, epochs)
	e.snapBytes = make([]int64, epochs)
	for ep := range e.snapClock {
		e.snapClock[ep] = make([]float64, p)
		e.snapComm[ep] = make([]float64, p)
		e.snapCompute[ep] = make([]float64, p)
	}
	if e.tr != nil {
		label := cfg.TraceLabel
		if label == "" {
			label = "sim"
		}
		e.tr.StartVirtualSession(label, p)
		e.grpKeys = make([]string, 1+s.RA)
		e.grpKeys[gidWorld] = groupKey(e.world)
		for j := 0; j < s.RA; j++ {
			e.grpKeys[gidCol(j)] = groupKey(e.colGroups[j])
		}
	}
	return e
}

// groupKey renders a sorted rank list the way the fabric names its
// rendezvous groups ("0,2,4"), so (Group, Seq) pairs in virtual traces
// line up with live ones.
func groupKey(ranks []int) string {
	b := make([]byte, 0, 4*len(ranks))
	for i, r := range ranks {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(r), 10)
	}
	return string(b)
}

func (e *engine) run() {
	for ep := 0; ep < e.epochs; ep++ {
		e.epoch = ep
		if e.tr != nil {
			for r := 0; r < e.p; r++ {
				e.tr.SetEpochAt(r, 0, ep)
				e.tr.BeginPhaseAt(r, 0, "epoch", e.occ[r].Makespan())
			}
		}
		for i := range e.d.Nodes {
			n := &e.d.Nodes[i]
			e.position(n, i)
			e.execNode(n)
			copy(e.finish[i], e.clk)
			if e.overlap {
				for r := 0; r < e.p; r++ {
					e.occ[r].Advance(e.resCur[r], e.clk[r])
				}
			} else {
				for r := 0; r < e.p; r++ {
					e.occ[r].Advance(hw.ResCompute, e.clk[r])
					e.occ[r].Join()
				}
			}
		}
		if e.overlap {
			// Epoch boundary: the executor merges its lanes back into the
			// base device (occupancy Join; clock = max over lanes) and
			// adds each lane's accumulated comm/compute time onto the
			// base's, link lanes in resource order.
			for r := 0; r < e.p; r++ {
				e.occ[r].Join()
			}
			for res := hw.ResCompute + 1; res < hw.NumResources; res++ {
				bc, bk := e.comm[hw.ResCompute], e.compute[hw.ResCompute]
				lc, lk := e.comm[res], e.compute[res]
				for r := 0; r < e.p; r++ {
					bc[r] += lc[r]
					bk[r] += lk[r]
					lc[r], lk[r] = 0, 0
				}
			}
		}
		// TrainResumable's protocol: barrier, stats snapshot, barrier.
		// With no barriers (a bare Epoch loop) the snapshot lands at the
		// epoch join.
		if e.nbarr == 0 {
			e.snapshot(ep)
		}
		for b := 0; b < e.nbarr; b++ {
			e.barrier()
			if b == 0 {
				e.snapshot(ep)
			}
		}
		if e.tr != nil {
			for r := 0; r < e.p; r++ {
				e.tr.EndPhaseAt(r, 0, e.occ[r].Makespan())
			}
		}
	}
}

// position places each rank's clock where the op starts on it and
// records the op's resource per rank: overlapped ops start at max(their
// resource's cursor, their DAG dependencies' finishes); sequential ops
// run back to back on the joined compute timeline.
func (e *engine) position(n *plan.DAGNode, i int) {
	if !e.overlap {
		for r := 0; r < e.p; r++ {
			e.clk[r] = e.occ[r].Free(hw.ResCompute)
		}
		return
	}
	for r := 0; r < e.p; r++ {
		res := e.resTab.At(i, r)
		e.resCur[r] = res
		start := e.occ[r].Free(res)
		for _, m := range n.Deps {
			start = max(start, e.finish[m][r])
		}
		e.clk[r] = start
	}
}

func (e *engine) result() *Result {
	res := &Result{
		P:            e.p,
		Clocks:       make([]float64, e.p),
		CommTime:     e.comm[hw.ResCompute],
		ComputeTime:  e.compute[hw.ResCompute],
		Meters:       e.meters,
		EpochClock:   e.snapClock,
		EpochComm:    e.snapComm,
		EpochCompute: e.snapCompute,
		EpochBytes:   e.snapBytes,
	}
	for r := 0; r < e.p; r++ {
		res.Clocks[r] = e.occ[r].Makespan()
	}
	return res
}

func (e *engine) snapshot(ep int) {
	for r := 0; r < e.p; r++ {
		e.snapClock[ep][r] = e.occ[r].Makespan()
	}
	copy(e.snapComm[ep], e.comm[hw.ResCompute])
	copy(e.snapCompute[ep], e.compute[hw.ResCompute])
	e.snapBytes[ep] = e.meters.TotalVolume()
}

// setScope stamps the (rank, track) timeline's scope tags the way the
// live engine's Trace* setters would before this op's events.
func (e *engine) setScope(r, track int, n *plan.DAGNode) {
	layer, step := 0, 0
	dir := ""
	if n != nil {
		step = n.Op.Step
		switch n.Phase {
		case "init", "loss":
			dir = "fwd"
		case "fwd":
			dir, layer = "fwd", n.Layer
		case "bwd":
			dir, layer = "bwd", n.Layer
		}
	}
	e.tr.SetEpochAt(r, track, e.epoch)
	e.tr.SetLayerAt(r, track, layer)
	e.tr.SetDirAt(r, track, dir)
	e.tr.SetStepAt(r, track, step)
	e.tr.SetConfigAt(r, track, e.cfgStr)
}

// kernel charges one compute kernel on rank r: clock and the current
// lane's compute accumulator advance by t (straggler-multiplied),
// exactly Device.chargeKernel.
func (e *engine) kernel(n *plan.DAGNode, r int, opName string, t float64, bytes, flops int64) {
	if e.cen.Slow != nil && r < len(e.cen.Slow) && e.cen.Slow[r] > 1 {
		t *= e.cen.Slow[r]
	}
	start := e.clk[r]
	e.clk[r] += t
	res := e.resCur[r]
	e.compute[res][r] += t
	if e.tr != nil {
		e.setScope(r, int(res), n)
		e.tr.Emit(r, trace.Event{
			Class: trace.ClassKernel, Op: opName,
			Bytes: bytes, Flops: flops,
			Start: start, End: e.clk[r], Track: int(res),
		})
	}
}

func (e *engine) mem(n *plan.DAGNode, r int, bytes int64) {
	e.kernel(n, r, "mem", e.h.MemTime(bytes), bytes, 0)
}

// collective synchronizes the group at max(member clocks) + t — the
// fabric's rendezvous rule — charging each member's comm accumulator
// with its own skew-inclusive delta and metering the round once.
// Callers guarantee len(group) >= 2 (smaller groups never reach the
// live fabric either).
func (e *engine) collective(n *plan.DAGNode, group []int, gid int, opName string, kind hw.CollectiveKind, t float64, vol comm.Volume, metered, side bool) {
	var m float64
	for _, r := range group {
		m = max(m, e.clk[r])
	}
	nc := m + t
	e.gens[gid]++
	seq := e.gens[gid]
	for _, r := range group {
		before := e.clk[r]
		res := e.resCur[r]
		e.comm[res][r] += nc - before
		if e.tr != nil {
			e.setScope(r, int(res), n)
			e.tr.Emit(r, trace.Event{
				Class: trace.ClassCollective, Op: opName,
				Group: e.grpKeys[gid], Seq: seq, GroupSize: len(group),
				Bytes: vol.Bytes, Tier1: vol.Tier1,
				Start: before, End: nc, Track: int(res),
			})
		}
		e.clk[r] = nc
	}
	if metered {
		e.meters.add(kind, vol, side)
	}
}

// barrier replays one world Barrier on the base timeline: latency-only,
// never metered, but it does consume a world rendezvous round and its
// skew lands in comm time, exactly as live.
func (e *engine) barrier() {
	if e.p < 2 {
		return
	}
	for r := 0; r < e.p; r++ {
		e.clk[r] = e.occ[r].Free(hw.ResCompute)
		e.resCur[r] = hw.ResCompute
	}
	t := e.meter.Barrier(e.world)
	e.collective(nil, e.world, gidWorld, "barrier", hw.OpSendRecv, t, comm.Volume{}, false, false)
	for r := 0; r < e.p; r++ {
		e.occ[r].Advance(hw.ResCompute, e.clk[r])
		e.occ[r].Join()
	}
}

// regrid replays dist.regrid's charge order on every rank — divide
// memcpy, metered world all-to-all, merge memcpy — from the cached
// byte census. side routes the round to the side-channel meters (the
// byte-packed ReLU masks of RedistributeMask).
func (e *engine) regrid(n *plan.DAGNode, from, to dist.Layout, rows, cols int, packed, side bool) {
	x := e.pc.Exchange(from, to, rows, cols, packed)
	for _, r := range e.world {
		e.mem(n, r, x.Div[r])
	}
	if e.p >= 2 {
		var t float64
		var vol comm.Volume
		if e.tp != nil {
			cst := e.pc.AllToAllCost(from, to, rows, cols, packed)
			t = cst.Time
			vol = comm.Volume{Bytes: cst.Bytes(), Tier1: cst.Tier[topo.TierInter]}
		} else {
			t = e.h.CollectiveTime(hw.OpAllToAll, e.p, x.MaxInj)
			vol = comm.Volume{Bytes: x.Total}
		}
		e.collective(n, e.world, gidWorld, "alltoall", hw.OpAllToAll, t, vol, true, side)
	}
	for _, r := range e.world {
		e.mem(n, r, x.Mer[r])
	}
}

// sparseRounds replays one two-round sparse exchange's charge order —
// dist.RedistributeSparse's metadata advert round on the side channel
// followed by the variable-volume payload round, or the KSpMMABC
// result exchange — metering each round like the live fabric's
// AllToAllV. Each round function returns the collective's rendezvous
// time and metered volume.
func (e *engine) sparseRounds(n *plan.DAGNode, x *plan.SparseExchangeCensus, metaRound, payRound func() (float64, comm.Volume)) {
	for _, r := range e.world {
		e.mem(n, r, x.MetaDiv[r])
	}
	if e.p >= 2 {
		t, vol := metaRound()
		e.collective(n, e.world, gidWorld, "alltoall", hw.OpAllToAll, t, vol, true, true)
	}
	for _, r := range e.world {
		e.mem(n, r, x.MetaMer[r])
	}
	for _, r := range e.world {
		e.mem(n, r, x.PayDiv[r])
	}
	if e.p >= 2 {
		t, vol := payRound()
		e.collective(n, e.world, gidWorld, "alltoall", hw.OpAllToAll, t, vol, true, false)
	}
	for _, r := range e.world {
		e.mem(n, r, x.PayMer[r])
	}
}

// sparseRegrid replays one sparse from→to redistribution from the
// cached two-round census.
func (e *engine) sparseRegrid(n *plan.DAGNode, from, to dist.Layout, rows, cols int) {
	x := e.pc.SparseExchange(e.s, from, to, rows, cols)
	round := func(metaRound bool, maxInj, total int64) func() (float64, comm.Volume) {
		return func() (float64, comm.Volume) {
			if e.tp != nil {
				cst := e.pc.SparseAllToAllCost(e.s, from, to, rows, cols, metaRound)
				return cst.Time, comm.Volume{Bytes: cst.Bytes(), Tier1: cst.Tier[topo.TierInter]}
			}
			return e.h.CollectiveTime(hw.OpAllToAll, e.p, maxInj), comm.Volume{Bytes: total}
		}
	}
	e.sparseRounds(n, x,
		round(true, x.MetaMaxInj, x.MetaTotal),
		round(false, x.PayMaxInj, x.PayTotal))
}

// tile returns rank r's tile bytes under a layout, the executor's
// Local.Bytes().
func (e *engine) tile(l dist.Layout, r, rows, cols int) int64 {
	tr, tc := dist.TileShape(l, e.p, r, rows, cols)
	return int64(tr) * int64(tc) * 4
}

// execNode replays one op's exact charge sequence on every rank.
func (e *engine) execNode(n *plan.DAGNode) {
	op := n.Op
	s, p := e.s, e.p
	switch op.Kind {
	case plan.KInput:
		e.regs[op.Dst] = regShape{op.Layout.Normalize(p), op.Rows, op.Cols}
	case plan.KRedist:
		a := e.regs[op.A]
		from, to := a.layout, op.To.Normalize(p)
		switch {
		case from == to:
			// Pointer alias, free.
		case to == dist.R:
			// replicate: world allgather of ragged source tiles, then
			// the full-matrix assembly memcpy.
			if p >= 2 {
				chunks := e.chunkBuf[:p]
				for r := 0; r < p; r++ {
					chunks[r] = e.tile(from, r, a.rows, a.cols)
				}
				t, vol := e.meter.AllGather(e.world, chunks)
				e.collective(n, e.world, gidWorld, "allgather", hw.OpAllGather, t, vol, true, false)
			}
			for _, r := range e.world {
				e.mem(n, r, int64(a.rows)*int64(a.cols)*4)
			}
		case from == dist.R:
			// Distribute from a replicated local copy: free.
		default:
			if op.Sparse && s.SparseEligible(from, to) {
				e.sparseRegrid(n, from, to, a.rows, a.cols)
			} else {
				e.regrid(n, from, to, a.rows, a.cols, false, false)
			}
		}
		e.regs[op.Dst] = regShape{to, op.Rows, op.Cols}
	case plan.KSpMM:
		a := e.regs[op.A]
		if p/s.RA > 1 {
			// Each column group allgathers its ragged feature slice
			// concurrently; rank r participates in its own group only.
			for j := 0; j < s.RA; j++ {
				grp := e.colGroups[j]
				chunks := e.chunkBuf[:len(grp)]
				for k, r := range grp {
					chunks[k] = e.tile(s.GridL, r, a.rows, a.cols)
				}
				t, vol := e.meter.AllGather(grp, chunks)
				e.collective(n, grp, gidCol(j), "allgather", hw.OpAllGather, t, vol, true, false)
			}
			for r := 0; r < p; r++ {
				_, pcols := dist.TileShape(s.GridL, p, r, a.rows, a.cols)
				e.mem(n, r, int64(a.rows)*int64(pcols)*4)
			}
		}
		for r := 0; r < p; r++ {
			_, pcols := dist.TileShape(s.GridL, p, r, a.rows, a.cols)
			nnz := int64(0)
			src := e.cen.NNZBwd
			if op.Forward {
				src = e.cen.NNZFwd
			}
			if r < len(src) {
				nnz = src[r]
			}
			e.kernel(n, r, "spmm", e.h.SpMMTime(nnz, pcols), 0, nnz*int64(pcols))
		}
		e.regs[op.Dst] = regShape{s.GridL, op.Rows, op.Cols}
	case plan.KSpMMABC:
		a := e.regs[op.A]
		pairs, nnzABC := e.cen.ABCPairs, e.cen.NNZABC
		if pairs == nil {
			// Census built without the ABC fill: fall back to the
			// analytic estimate over the panel total, like the DAG pricer.
			var total int64
			for _, v := range e.cen.NNZFwd {
				total += v
			}
			pairs, nnzABC = s.ApproxABCPairs(total)
		}
		for r := 0; r < p; r++ {
			nnz := int64(0)
			if r < len(nnzABC) {
				nnz = nnzABC[r]
			}
			e.kernel(n, r, "spmm", e.h.SpMMTime(nnz, a.cols), 0, nnz*int64(a.cols))
		}
		x, meta, pay := plan.ABCCensus(p, pairs, a.cols)
		round := func(fn func(i, j int) int64, maxInj, total int64) func() (float64, comm.Volume) {
			return func() (float64, comm.Volume) {
				return e.meter.AllToAll(e.world, fn, maxInj, total)
			}
		}
		e.sparseRounds(n, x,
			round(meta, x.MetaMaxInj, x.MetaTotal),
			round(pay, x.PayMaxInj, x.PayTotal))
		e.regs[op.Dst] = regShape{dist.H, op.Rows, op.Cols}
	case plan.KGEMM:
		a := e.regs[op.A]
		for r := 0; r < p; r++ {
			arows, _ := dist.TileShape(dist.H, p, r, a.rows, a.cols)
			e.kernel(n, r, "gemm", e.h.GemmTime(arows, a.cols, op.Cols),
				0, int64(arows)*int64(a.cols)*int64(op.Cols))
		}
		e.regs[op.Dst] = regShape{dist.H, op.Rows, op.Cols}
	case plan.KGradGEMM:
		a, bb := e.regs[op.A], e.regs[op.B]
		for r := 0; r < p; r++ {
			arows, _ := dist.TileShape(dist.H, p, r, a.rows, a.cols)
			e.kernel(n, r, "gemm", e.h.GemmTime(a.cols, arows, bb.cols),
				0, int64(a.cols)*int64(arows)*int64(bb.cols))
		}
		e.regs[op.Dst] = regShape{dist.R, op.Rows, op.Cols}
	case plan.KAllReduceGrad:
		if p >= 2 {
			bytes := int64(op.Rows) * int64(op.Cols) * 4
			t, vol := e.meter.AllReduce(e.world, bytes)
			e.collective(n, e.world, gidWorld, "allreduce", hw.OpAllReduce, t, vol, true, false)
		}
	case plan.KReLU:
		a := e.regs[op.A]
		for r := 0; r < p; r++ {
			e.mem(n, r, e.tile(a.layout, r, a.rows, a.cols))
		}
	case plan.KReLUGrad:
		u, src := e.regs[op.A], e.regs[op.B]
		if src.layout != u.layout {
			for r := 0; r < p; r++ {
				e.mem(n, r, e.tile(src.layout, r, src.rows, src.cols))
			}
			e.regrid(n, src.layout, u.layout, src.rows, src.cols, true, true)
		}
		for r := 0; r < p; r++ {
			e.mem(n, r, e.tile(u.layout, r, u.rows, u.cols))
		}
	case plan.KAdd:
		a := e.regs[op.A]
		for r := 0; r < p; r++ {
			e.mem(n, r, e.tile(a.layout, r, a.rows, a.cols))
		}
	case plan.KMemoize, plan.KReuse:
		e.regs[op.Dst] = e.regs[op.A]
	case plan.KLoss:
		a := e.regs[op.A]
		for r := 0; r < p; r++ {
			e.mem(n, r, 2*e.tile(dist.H, r, a.rows, a.cols))
		}
		if p >= 2 {
			t, vol := e.meter.AllReduce(e.world, 8)
			e.collective(n, e.world, gidWorld, "allreduce", hw.OpAllReduce, t, vol, true, false)
		}
		e.regs[op.Dst] = regShape{dist.H, op.Rows, op.Cols}
	case plan.KMemWrite:
		a := e.regs[op.A]
		for r := 0; r < p; r++ {
			e.mem(n, r, e.tile(a.layout, r, a.rows, a.cols))
		}
	case plan.KUpdate:
		for r := 0; r < p; r++ {
			e.mem(n, r, 4*e.wBytes)
		}
	}
}
