package sim_test

import (
	"fmt"
	"testing"
	"time"

	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/sim"
	"gnnrdm/internal/topo"
)

func schedFor(n int, dims []int, cfg, p, ra int, sage bool) *plan.Schedule {
	return plan.Compile(plan.Spec{
		N: n, Dims: dims, Config: costmodel.ConfigFromID(cfg, len(dims)-1),
		P: p, RA: ra, SAGE: sage, Memoize: true, InputGrad: true,
	}).Optimize()
}

// TestSimClocksEqualPricer pins the engine's device clocks against
// plan.PriceDAGEpochs — the exact closed-form replay the live fabric is
// already verified against — for every Table IV ordering, flat and
// hierarchical, both executors, sharing one PriceCache per (P, topo)
// context across all 16 configs the way a sweep would.
func TestSimClocksEqualPricer(t *testing.T) {
	h := hw.A6000()
	dims := []int{16, 12, 8}
	const n, epochs = 256, 3
	for _, spec := range []string{"", "8x4:nvlink,ib"} {
		for _, p := range []int{8, 32} {
			var tp *topo.Topology
			name := fmt.Sprintf("flat/P%d", p)
			if spec != "" {
				ts, err := topo.ParseSpec(spec)
				if err != nil {
					t.Fatal(err)
				}
				tp = ts.MustTopology(p)
				name = fmt.Sprintf("%s/P%d", spec, p)
			}
			pc := plan.NewPriceCache()
			t.Run(name, func(t *testing.T) {
				for cfg := 0; cfg < costmodel.NumConfigs(len(dims)-1); cfg++ {
					s := schedFor(n, dims, cfg, p, p, false)
					d := plan.MustBuildDAG(s)
					cen := s.ApproxCensus(4 * int64(n))
					cost := d.PriceDAGEpochsCached(cen, h, tp, epochs, pc)
					for _, overlap := range []bool{false, true} {
						res := sim.MustRun(sim.Config{
							DAG: d, Census: cen, HW: h, Topology: tp,
							Epochs: epochs, Overlap: overlap, Cache: pc,
						})
						want := cost.PerDeviceSeq
						if overlap {
							want = cost.PerDevice
						}
						for r := 0; r < p; r++ {
							if res.Clocks[r] != want[r] {
								t.Fatalf("cfg %d overlap=%v rank %d: sim clock %.17g != priced %.17g",
									cfg, overlap, r, res.Clocks[r], want[r])
							}
						}
					}
				}
			})
		}
	}
}

// TestSimClocksEqualPricerSAGE covers the column-group allgather path
// (RA < P) and the two-weight SAGE schedule.
func TestSimClocksEqualPricerSAGE(t *testing.T) {
	h := hw.A6000()
	s := schedFor(256, []int{16, 12, 8}, 5, 8, 2, true)
	d := plan.MustBuildDAG(s)
	cen := s.ApproxCensus(1024)
	cost := d.PriceDAGEpochs(cen, h, nil, 2)
	for _, overlap := range []bool{false, true} {
		res := sim.MustRun(sim.Config{DAG: d, Census: cen, HW: h, Epochs: 2, Overlap: overlap})
		want := cost.PerDeviceSeq
		if overlap {
			want = cost.PerDevice
		}
		for r := range want {
			if res.Clocks[r] != want[r] {
				t.Fatalf("overlap=%v rank %d: sim clock %.17g != priced %.17g", overlap, r, res.Clocks[r], want[r])
			}
		}
	}
}

// TestSimBarriersExtendClocks checks the TrainResumable protocol
// (EpochBarriers=2): barrier latency accrues to clocks and comm time,
// snapshots are monotone, and a P=1 run is barrier-free.
func TestSimBarriersExtendClocks(t *testing.T) {
	h := hw.A6000()
	s := schedFor(128, []int{8, 6, 4}, 0, 4, 4, false)
	cen := s.ApproxCensus(512)
	bare := sim.MustRun(sim.Config{Sched: s, Census: cen, HW: h, Epochs: 2})
	barr := sim.MustRun(sim.Config{Sched: s, Census: cen, HW: h, Epochs: 2, EpochBarriers: 2})
	if barr.MaxClock() <= bare.MaxClock() {
		t.Fatalf("barriers did not extend clocks: %v <= %v", barr.MaxClock(), bare.MaxClock())
	}
	for ep := 1; ep < 2; ep++ {
		for r := 0; r < 4; r++ {
			if barr.EpochClock[ep][r] < barr.EpochClock[ep-1][r] {
				t.Fatalf("epoch clock snapshot not monotone at rank %d", r)
			}
		}
	}
	s1 := schedFor(128, []int{8, 6, 4}, 0, 1, 1, false)
	cen1 := s1.ApproxCensus(512)
	one := sim.MustRun(sim.Config{Sched: s1, Census: cen1, HW: h, Epochs: 2, EpochBarriers: 2})
	oneBare := sim.MustRun(sim.Config{Sched: s1, Census: cen1, HW: h, Epochs: 2})
	if one.MaxClock() != oneBare.MaxClock() {
		t.Fatalf("P=1 barriers changed clocks: %v != %v", one.MaxClock(), oneBare.MaxClock())
	}
}

// TestSimScaleSmoke runs one config at P=4096 on a hierarchical
// interconnect and asserts it completes in interactive time — the
// scale regime rdmbench sweeps. The cache is shared across both
// executors, as in a real sweep.
func TestSimScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("P=4096 smoke skipped in -short")
	}
	if raceEnabled {
		t.Skip("P=4096 smoke asserts wall-clock interactivity; meaningless instrumented")
	}
	h := hw.A6000()
	const p = 4096
	ts, err := topo.ParseSpec("512x8:nvlink,ib")
	if err != nil {
		t.Fatal(err)
	}
	tp := ts.MustTopology(p)
	s := schedFor(1<<16, []int{32, 16, 8}, 0, p, p, false)
	cen := s.ApproxCensus(1 << 20)
	pc := plan.NewPriceCache()
	start := time.Now()
	for _, overlap := range []bool{false, true} {
		res := sim.MustRun(sim.Config{
			Sched: s, Census: cen, HW: h, Topology: tp,
			Epochs: 2, Overlap: overlap, Cache: pc,
		})
		if res.MaxClock() <= 0 {
			t.Fatal("degenerate clock")
		}
		if res.Meters.TotalVolume() <= 0 {
			t.Fatal("no metered traffic at P=4096")
		}
	}
	if el := time.Since(start); el > 60*time.Second {
		t.Fatalf("P=4096 sim took %v, want interactive time", el)
	} else {
		t.Logf("P=4096 both executors priced in %v", el)
	}
}
