//go:build !race

package sim_test

// raceEnabled reports whether the race detector is instrumenting this
// build; the P=4096 interactivity smoke only makes sense uninstrumented.
const raceEnabled = false
