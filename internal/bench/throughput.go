package bench

// ThroughputCell is one bar group of Figs. 8-11: training throughput
// (epochs/second) of the three systems on one dataset and device count.
type ThroughputCell struct {
	Dataset string
	P       int
	// RDM/CAGNET/DGCL are epochs per simulated second.
	RDM, CAGNET, DGCL float64
	// RDMConfig is the winning Table IV configuration ID.
	RDMConfig int
}

// ThroughputResult holds one full figure (one layer-count/hidden-size
// combination across datasets and device counts).
type ThroughputResult struct {
	Layers, Hidden, Scale int
	Cells                 []ThroughputCell
}

// RunThroughput regenerates one of Figs. 8-11: layers ∈ {2,3},
// hidden ∈ {128, 256}.
func RunThroughput(cfg Config, layers, hidden int) (*ThroughputResult, error) {
	cfg = cfg.withDefaults()
	res := &ThroughputResult{Layers: layers, Hidden: hidden, Scale: cfg.Scale}
	cfg.printf("Training throughput (epochs/s): %d-layer GCN, hidden=%d, scale=1/%d\n",
		layers, hidden, cfg.Scale)
	cfg.printf("%-14s %4s %10s %10s %10s %8s\n", "dataset", "P", "RDM", "CAGNET", "DGCL", "cfgID")
	for _, name := range cfg.Datasets {
		w, err := BuildWorkload(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		for _, p := range cfg.GPUs {
			rdm, id := RunRDMBest(cfg, w, layers, hidden, p)
			cagnet := RunCAGNET(cfg, w, layers, hidden, p)
			dgcl := RunDGCL(cfg, w, layers, hidden, p)
			cell := ThroughputCell{
				Dataset:   name,
				P:         p,
				RDM:       rdm.EpochsPerSecond(),
				CAGNET:    cagnet.EpochsPerSecond(),
				DGCL:      dgcl.EpochsPerSecond(),
				RDMConfig: id,
			}
			res.Cells = append(res.Cells, cell)
			cfg.printf("%-14s %4d %10.2f %10.2f %10.2f %8d\n",
				name, p, cell.RDM, cell.CAGNET, cell.DGCL, cell.RDMConfig)
		}
	}
	return res, nil
}

// Speedups returns the geometric-mean speedup of RDM over CAGNET and
// DGCL at device count p, across all datasets (one Table VII row).
func (r *ThroughputResult) Speedups(p int) (vsCAGNET, vsDGCL float64) {
	var sc, sd []float64
	for _, c := range r.Cells {
		if c.P != p {
			continue
		}
		sc = append(sc, c.RDM/c.CAGNET)
		sd = append(sd, c.RDM/c.DGCL)
	}
	return Geomean(sc), Geomean(sd)
}

// Table7Row is one row of Table VII.
type Table7Row struct {
	P, Layers, Hidden          int
	SpeedupCAGNET, SpeedupDGCL float64
}

// RunTable7 regenerates Table VII (geometric-mean speedups of RDM over
// CAGNET and DGCL) from the four underlying throughput figures.
func RunTable7(cfg Config) ([]Table7Row, error) {
	cfg = cfg.withDefaults()
	var rows []Table7Row
	figs := make(map[[2]int]*ThroughputResult)
	for _, shape := range [][2]int{{2, 128}, {2, 256}, {3, 128}, {3, 256}} {
		quiet := cfg
		quiet.Out = nil
		quiet = quiet.withDefaults()
		r, err := RunThroughput(quiet, shape[0], shape[1])
		if err != nil {
			return nil, err
		}
		figs[shape] = r
	}
	cfg.printf("Geomean speedup of RDM over CAGNET and DGCL (scale=1/%d)\n", cfg.Scale)
	cfg.printf("%4s %7s %9s %14s %12s\n", "GPUs", "Layers", "Features", "vs. CAGNET", "vs. DGCL")
	for _, p := range cfg.GPUs {
		for _, shape := range [][2]int{{2, 128}, {2, 256}, {3, 128}, {3, 256}} {
			sc, sd := figs[shape].Speedups(p)
			rows = append(rows, Table7Row{
				P: p, Layers: shape[0], Hidden: shape[1],
				SpeedupCAGNET: sc, SpeedupDGCL: sd,
			})
			cfg.printf("%4d %7d %9d %14.2f %12.2f\n", p, shape[0], shape[1], sc, sd)
		}
	}
	return rows, nil
}

// Fig12Row is one dataset's epoch-time breakdown at P=8 (Fig. 12).
type Fig12Row struct {
	Dataset                string
	CAGNETComm, CAGNETComp float64
	RDMComm, RDMComp       float64
	CAGNETBytes, RDMBytes  int64
}

// RunFig12 regenerates Fig. 12: per-epoch compute vs communication time
// of CAGNET and RDM for the 2-layer, 128-hidden GCN on 8 devices, plus
// the exact metered volumes.
func RunFig12(cfg Config) ([]Fig12Row, error) {
	cfg = cfg.withDefaults()
	const layers, hidden, p = 2, 128, 8
	cfg.printf("Epoch time breakdown, 2-layer h=128, P=8 (seconds, scale=1/%d)\n", cfg.Scale)
	cfg.printf("%-14s %12s %12s %12s %12s %12s %12s\n",
		"dataset", "CAG-comm", "CAG-comp", "RDM-comm", "RDM-comp", "CAG-MB", "RDM-MB")
	var rows []Fig12Row
	for _, name := range cfg.Datasets {
		w, err := BuildWorkload(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		cagnet := RunCAGNET(cfg, w, layers, hidden, p)
		rdm, _ := RunRDMBest(cfg, w, layers, hidden, p)
		cEp := cagnet.Epochs[len(cagnet.Epochs)-1]
		rEp := rdm.Epochs[len(rdm.Epochs)-1]
		row := Fig12Row{
			Dataset:    name,
			CAGNETComm: cEp.CommTime, CAGNETComp: cEp.ComputeTime,
			RDMComm: rEp.CommTime, RDMComp: rEp.ComputeTime,
			CAGNETBytes: cEp.CommBytes, RDMBytes: rEp.CommBytes,
		}
		rows = append(rows, row)
		cfg.printf("%-14s %12.4f %12.4f %12.4f %12.4f %12.1f %12.1f\n",
			name, row.CAGNETComm, row.CAGNETComp, row.RDMComm, row.RDMComp,
			float64(row.CAGNETBytes)/(1<<20), float64(row.RDMBytes)/(1<<20))
	}
	return rows, nil
}

// Table9Row is one dataset row of Table IX: CAGNET-to-RDM epoch-time and
// communication-time ratios for the four network shapes.
type Table9Row struct {
	Dataset string
	// Ratios[i] = {epochRatio, commRatio} for shapes
	// (2,128), (2,256), (3,128), (3,256).
	Ratios [4][2]float64
}

// RunTable9 regenerates Table IX at P=8.
func RunTable9(cfg Config) ([]Table9Row, error) {
	cfg = cfg.withDefaults()
	const p = 8
	shapes := [4][2]int{{2, 128}, {2, 256}, {3, 128}, {3, 256}}
	cfg.printf("Ratio of CAGNET epoch/comm time over RDM, P=8 (scale=1/%d)\n", cfg.Scale)
	cfg.printf("%-14s", "dataset")
	for _, s := range shapes {
		cfg.printf("  %dL-h%-4d(Ep/Comm)", s[0], s[1])
	}
	cfg.printf("\n")
	var rows []Table9Row
	for _, name := range cfg.Datasets {
		w, err := BuildWorkload(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		var row Table9Row
		row.Dataset = name
		cfg.printf("%-14s", name)
		for i, s := range shapes {
			cagnet := RunCAGNET(cfg, w, s[0], s[1], p)
			rdm, _ := RunRDMBest(cfg, w, s[0], s[1], p)
			row.Ratios[i][0] = cagnet.MeanEpochTime() / rdm.MeanEpochTime()
			row.Ratios[i][1] = cagnet.MeanCommTime() / rdm.MeanCommTime()
			cfg.printf("  %8.2f/%-8.2f", row.Ratios[i][0], row.Ratios[i][1])
		}
		cfg.printf("\n")
		rows = append(rows, row)
	}
	return rows, nil
}
