package bench

// This file is the sparsity-aware exchange experiment (ROADMAP item 1's
// evaluation): sweep feature density over a row-sparsified dataset,
// price every Table IV ordering dense and sparse (plus the
// aggregate-before-communicate rewrite), live-train a probe subset on
// the fabric to enforce meter==model byte-exactly, and report the
// headline — at a bandwidth-dominated shape the planner's ordering
// argmin shifts once features are sparse. The runner enforces its own
// invariants (dense equivalence at density 1.0, strictly decreasing
// bytes with sparsity, >=2x exchange-volume reduction at <=10% density,
// and at least one argmin shift) and fails loudly if any breaks. The
// result marshals to BENCH_sparse.json via rdmbench -json.

import (
	"fmt"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/graph"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
)

// SparseDensities is the density sweep rdmbench sparse runs.
var SparseDensities = []float64{1.0, 0.5, 0.25, 0.1, 0.05}

// sparseProbeConfigs are the orderings trained live per density: the
// densest sparse-redist carrier (3), the dense argmin shape (5), and a
// mixed row (10). Every ordering is priced; only these hit the fabric.
var sparseProbeConfigs = []int{3, 5, 10}

// SparseRow is one (density, config) cell of the priced sweep.
type SparseRow struct {
	Density float64 `json:"density"`
	Live    int     `json:"live"` // live row count (0 = dense path)
	Config  int     `json:"config"`
	// Priced flat epoch figures for the plain (non-ABC) schedule.
	TimeSec   float64 `json:"time_sec"`
	RDMBytes  int64   `json:"rdm_bytes"`
	SideBytes int64   `json:"side_bytes"`
	// ABC figures for the aggregate-before-communicate rewrite of the
	// same schedule (equal to the plain figures when the rewrite finds
	// nothing to fuse).
	ABCTimeSec  float64 `json:"abc_time_sec"`
	ABCRDMBytes int64   `json:"abc_rdm_bytes"`
	// Exchange-leg accounting over the schedule's sparse-eligible
	// redistributions: what the dense protocol would ship for those ops
	// versus what the two-round sparse protocol ships (metadata rides
	// the side channel, payload the primary one).
	ExchangeDenseBytes   int64 `json:"exchange_dense_bytes"`
	ExchangeMetaBytes    int64 `json:"exchange_meta_bytes"`
	ExchangePayloadBytes int64 `json:"exchange_payload_bytes"`
	// Metered reports that a live fabric run reproduced the priced
	// volumes byte-for-byte (probe configs only).
	Metered bool `json:"metered"`
}

// SparseArgmin is the planner's choice at one density of the headline
// shape: the ordering (and whether the ABC rewrite is applied) with the
// minimum priced epoch time.
type SparseArgmin struct {
	Density float64 `json:"density"`
	Config  int     `json:"config"`
	ABC     bool    `json:"abc"`
	TimeSec float64 `json:"time_sec"`
	// Shift marks a choice differing from the dense argmin.
	Shift bool `json:"shift"`
}

// SparseResult is the machine-readable output of the sparse experiment.
type SparseResult struct {
	Dataset    string      `json:"dataset"`
	Scale      int         `json:"scale"`
	N          int         `json:"n"`
	Dims       []int       `json:"dims"`
	P          int         `json:"p"`
	NNZ        int64       `json:"nnz"`
	SparseSeed int64       `json:"sparse_seed"`
	Densities  []float64   `json:"densities"`
	Rows       []SparseRow `json:"rows"`
	// ExchangeReduction is dense/(meta+payload) for the probe ordering
	// at each density past 1.0 — the protocol's own volume win.
	ExchangeReduction []float64 `json:"exchange_reduction"`
	// Headline: at a bandwidth-dominated shape, the ordering argmin
	// (over all 16 configs, plain and ABC-rewritten) as density falls.
	HeadlineN    int            `json:"headline_n"`
	HeadlineDims []int          `json:"headline_dims"`
	HeadlineNNZ  int64          `json:"headline_nnz"`
	HeadlineP    int            `json:"headline_p"`
	DenseArgmin  SparseArgmin   `json:"dense_argmin"`
	Argmin       []SparseArgmin `json:"argmin"`
}

// sparsifyRows returns a copy of prob whose feature rows outside the
// canonical live set dist.GenRows(sseed, n, live) are zeroed, with
// every live row forced nonzero — so the engines' value scan recovers
// exactly the planner's assumed set and meter==model is exact.
func sparsifyRows(prob *core.Problem, live int, sseed int64) *core.Problem {
	n, fin := prob.X.Rows, prob.X.Cols
	x := tensor.NewDense(n, fin)
	for _, r := range dist.GenRows(sseed, n, live) {
		row := x.Row(int(r))
		copy(row, prob.X.Row(int(r)))
		nonzero := false
		for _, v := range row {
			if v != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			row[0] = 0.5
		}
	}
	p := *prob
	p.X = x
	return &p
}

// sparseSpec builds the training spec for one (config, live) cell.
func sparseSpec(n int, dims []int, id, p, live int, sseed int64) plan.Spec {
	return plan.Spec{
		N: n, Dims: dims, Config: costmodel.ConfigFromID(id, len(dims)-1),
		P: p, RA: p, Memoize: true, InputGrad: true,
		Live: live, SparseSeed: sseed,
	}
}

// exchangeLegBytes sums, over the schedule's sparse-eligible
// redistributions, the §IV dense tile bytes those ops would ship under
// the dense protocol and the closed-form metadata/payload bytes the
// two-round sparse protocol ships instead.
func exchangeLegBytes(s *plan.Schedule, p int) (dense, meta, pay int64) {
	live := s.LiveSet()
	for i := range s.Sections {
		for j := range s.Sections[i].Ops {
			op := &s.Sections[i].Ops[j]
			if op.Kind != plan.KRedist || !op.Sparse ||
				!costmodel.SparseExchangeEligible(p, op.From, op.To) {
				continue
			}
			dense += costmodel.DenseExchangeBytes(p, op.Rows, op.Cols, op.From, op.To)
			m, pl := costmodel.SparseExchangeBytes(p, op.Rows, op.Cols, op.From, op.To, live)
			meta += m
			pay += pl
		}
	}
	return dense, meta, pay
}

// RunSparse sweeps feature density on a row-sparsified dataset, pricing
// all orderings and live-training the probe subset with meter==model
// enforcement, then prices the headline argmin-shift shape. See the
// file comment for the invariants enforced.
func RunSparse(cfg Config) (*SparseResult, error) {
	cfg = cfg.withDefaults()
	const layers = 2
	const sseed = 3
	p := cfg.GPUs[len(cfg.GPUs)-1]
	// A synthetic sparse-feature dataset shaped like the headline: wide
	// input features over a narrower hidden layer. n is scale-derived,
	// rounded to a multiple of the fabric size.
	n := 262144 / cfg.Scale
	if n < 64*p {
		n = 64 * p
	}
	n -= n % (64 * p)
	rec := graph.Recipe{
		Name: "SparseFeat", Vertices: n, Edges: int64(4 * n),
		FeatureDim: 192, Labels: 8, Kind: "planted", Signal: 0.8,
		HasSplits: true, Seed: 109,
	}
	g := rec.Build()
	base := &core.Problem{
		A: sparse.GCNNormalize(g.Adj), X: g.Features,
		Labels: g.Labels, TrainMask: g.TrainMask,
	}
	dims := []int{rec.FeatureDim, 128, rec.Labels}
	name := rec.Name
	nnz := base.A.NNZ()
	nc := costmodel.NumConfigs(layers)
	res := &SparseResult{
		Dataset: name, Scale: cfg.Scale, N: n, Dims: dims, P: p,
		NNZ: nnz, SparseSeed: sseed, Densities: SparseDensities,
	}

	cfg.printf("Sparsity-aware exchange: dataset=%s scale=1/%d n=%d dims=%v P=%d nnz=%d\n",
		name, cfg.Scale, n, dims, p, nnz)
	cfg.printf("%-8s %4s %12s %12s %12s %12s %12s %8s\n",
		"density", "cfg", "time(s)", "rdm bytes", "abc bytes", "exch dense", "exch sparse", "metered")

	probe := map[int]bool{}
	for _, id := range sparseProbeConfigs {
		probe[id] = true
	}
	var denseEquivalent *SparseRow // density-1.0 probe row, checked below
	var probeBytes []int64         // probe cfg 3 primary bytes per density
	for _, d := range SparseDensities {
		live := costmodel.LiveCount(n, d)
		if live >= n {
			live = 0 // density 1.0: the planner normalizes to the dense path
		}
		prob := base
		if live > 0 {
			prob = sparsifyRows(base, live, sseed)
		}
		for id := 0; id < nc; id++ {
			sched := plan.Compile(sparseSpec(n, dims, id, p, live, sseed)).Optimize()
			c := sched.Price(nnz, cfg.HW)
			abc := sched.ABC().Price(nnz, cfg.HW)
			exd, exm, exp := exchangeLegBytes(sched, p)
			row := SparseRow{
				Density: d, Live: live, Config: id,
				TimeSec: c.Time, RDMBytes: c.RDMBytes(), SideBytes: c.Side,
				ABCTimeSec: abc.Time, ABCRDMBytes: abc.RDMBytes(),
				ExchangeDenseBytes: exd, ExchangeMetaBytes: exm, ExchangePayloadBytes: exp,
			}
			if probe[id] {
				if err := meterSparseCell(cfg, prob, sparseSpec(n, dims, id, p, live, sseed), c); err != nil {
					return nil, err
				}
				row.Metered = true
			}
			if id == sparseProbeConfigs[0] {
				probeBytes = append(probeBytes, row.RDMBytes)
				if live == 0 {
					denseEquivalent = &row
				}
				if live > 0 && d <= 0.1 {
					r := float64(exd) / float64(exm+exp)
					if r < 2 {
						return nil, fmt.Errorf("sparse: exchange reduction %.2fx < 2x at density %g (dense=%d meta=%d pay=%d)",
							r, d, exd, exm, exp)
					}
				}
				if live > 0 {
					res.ExchangeReduction = append(res.ExchangeReduction, float64(exd)/float64(exm+exp))
				}
			}
			res.Rows = append(res.Rows, row)
			if probe[id] {
				cfg.printf("%-8.2f %4d %12.6f %12d %12d %12d %12d %8v\n",
					d, id, row.TimeSec, row.RDMBytes, row.ABCRDMBytes, exd, exm+exp, row.Metered)
			}
		}
	}
	// Dense equivalence at density 1.0: the sparse spec must have
	// compiled to the identical schedule as the dense one.
	if denseEquivalent == nil {
		return nil, fmt.Errorf("sparse: density sweep never hit the dense path")
	}
	full := plan.Compile(sparseSpec(n, dims, sparseProbeConfigs[0], p, costmodel.LiveCount(n, 1.0), sseed)).Optimize()
	dense := plan.Compile(sparseSpec(n, dims, sparseProbeConfigs[0], p, 0, sseed)).Optimize()
	if full.Live != 0 || full.String() != dense.String() {
		return nil, fmt.Errorf("sparse: density 1.0 schedule differs from dense")
	}
	// Bytes must fall strictly as density does (probe ordering).
	for i := 1; i < len(probeBytes); i++ {
		if probeBytes[i] >= probeBytes[i-1] {
			return nil, fmt.Errorf("sparse: primary bytes not strictly decreasing: %v", probeBytes)
		}
	}

	if err := runSparseHeadline(cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}

// meterSparseCell trains one epoch of the cell on the live fabric and
// asserts the meters equal the priced volumes byte-for-byte.
func meterSparseCell(cfg Config, prob *core.Problem, sp plan.Spec, c plan.Cost) error {
	o := core.Options{
		Dims: sp.Dims, Config: sp.Config, Memoize: true, ComputeInputGrad: true,
		LR: 0.01, Seed: 7, RA: sp.RA, Live: sp.Live, SparseSeed: sp.SparseSeed,
	}
	fab := comm.NewFabric(sp.P, cfg.HW)
	fab.Run(func(dev *comm.Device) {
		eng := core.NewEngine(dev, prob, o)
		eng.Epoch()
	})
	if got := fab.Volume(hw.OpAllToAll) + fab.Volume(hw.OpAllGather); got != c.RDMBytes() {
		return fmt.Errorf("sparse cfg%02d live=%d: metered RDM %d bytes, priced %d", sp.Config.ID(), sp.Live, got, c.RDMBytes())
	}
	if got := fab.Volume(hw.OpAllReduce); got != c.AllReduce {
		return fmt.Errorf("sparse cfg%02d live=%d: metered all-reduce %d bytes, priced %d", sp.Config.ID(), sp.Live, got, c.AllReduce)
	}
	if got := fab.TotalSideVolume(); got != c.Side {
		return fmt.Errorf("sparse cfg%02d live=%d: metered side %d bytes, priced %d", sp.Config.ID(), sp.Live, got, c.Side)
	}
	return nil
}

// runSparseHeadline prices the argmin-shift shape: wide input features
// over a narrower hidden layer at bandwidth-dominated scale, where the
// dense planner keeps aggregation first (shipping n x f0 tiles) but a
// sparse input makes transform-first plus the ABC exchange cheaper.
func runSparseHeadline(cfg Config, res *SparseResult) error {
	const hn, hp = 262144, 8
	hdims := []int{192, 128, 8}
	hnnz := int64(86 * hn / 10) // DefaultProblem-like degree
	res.HeadlineN, res.HeadlineDims, res.HeadlineNNZ, res.HeadlineP = hn, hdims, hnnz, hp
	nc := costmodel.NumConfigs(len(hdims) - 1)
	argmin := func(live int) SparseArgmin {
		best := SparseArgmin{Config: -1}
		for id := 0; id < nc; id++ {
			sched := plan.Compile(sparseSpec(hn, hdims, id, hp, live, res.SparseSeed)).Optimize()
			for _, abc := range []bool{false, true} {
				s := sched
				if abc {
					s = s.ABC()
				}
				t := s.Price(hnnz, cfg.HW).Time
				if best.Config < 0 || t < best.TimeSec {
					best = SparseArgmin{Config: id, ABC: abc, TimeSec: t}
				}
			}
		}
		return best
	}
	res.DenseArgmin = argmin(0)
	res.DenseArgmin.Density = 1.0
	cfg.printf("\nHeadline shape n=%d dims=%v P=%d nnz=%d: dense argmin cfg%02d (abc=%v, %.4gs)\n",
		hn, hdims, hp, hnnz, res.DenseArgmin.Config, res.DenseArgmin.ABC, res.DenseArgmin.TimeSec)
	shifted := false
	for _, d := range SparseDensities[1:] {
		a := argmin(costmodel.LiveCount(hn, d))
		a.Density = d
		a.Shift = a.Config != res.DenseArgmin.Config || a.ABC != res.DenseArgmin.ABC
		if a.Shift {
			shifted = true
		}
		res.Argmin = append(res.Argmin, a)
		cfg.printf("  density %.2f: argmin cfg%02d (abc=%v, %.4gs)%s\n",
			d, a.Config, a.ABC, a.TimeSec, map[bool]string{true: "  <-- shift"}[a.Shift])
	}
	if !shifted {
		return fmt.Errorf("sparse: planner argmin never shifted from dense choice cfg%02d", res.DenseArgmin.Config)
	}
	return nil
}
