package bench

import (
	"gnnrdm/internal/saint"
)

// Fig13Datasets are the six labelled recipes of Fig. 13 (Web-Google and
// Com-Orkut carry no training data and are omitted, as in the paper).
var Fig13Datasets = []string{
	"OGB-Arxiv", "OGB-MAG", "OGB-Products", "Reddit", "CAMI-Airways", "CAMI-Oral",
}

// Fig13Result holds one dataset's three accuracy-versus-time curves.
type Fig13Result struct {
	Dataset string
	// FullBatch is GCN-RDM; RDMSampled is GraphSAINT-RDM; DDP is
	// GraphSAINT-DGL-style DDP.
	FullBatch, RDMSampled, DDP *saint.Curve
}

// RunFig13 regenerates Fig. 13: test accuracy versus training time for
// GCN-RDM, GraphSAINT-RDM and GraphSAINT-DDP on 8 devices with a
// 2-layer, 128-hidden GCN.
func RunFig13(cfg Config, epochs int) ([]Fig13Result, error) {
	cfg = cfg.withDefaults()
	if epochs == 0 {
		epochs = 15
	}
	const p = 8
	var out []Fig13Result
	for _, name := range Fig13Datasets {
		if !contains(cfg.Datasets, name) {
			continue
		}
		w, err := BuildWorkload(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		lr := 0.01
		if name == "CAMI-Airways" || name == "CAMI-Oral" {
			lr = 0.001 // the paper's stability adjustment (§V-A)
		}
		opts := saint.Options{
			Dims:       w.Dims(2, 128),
			LR:         lr,
			Seed:       11,
			Kind:       saint.RandomWalkSampler,
			Budget:     maxI(w.Prob.N()/8, 16),
			WalkLength: 3,
			NormTrials: 20,
			ConfigID:   0,
			Tracer:     cfg.Tracer,
		}
		testMask := w.Graph.TestMask
		res := Fig13Result{Dataset: name}
		opts.TraceLabel = name + "/gcn-rdm"
		res.FullBatch = saint.TrainFullBatchCurve(p, cfg.HW, w.RawProb, testMask, opts, epochs)
		opts.TraceLabel = name + "/saint-rdm"
		res.RDMSampled = saint.TrainSAINTRDM(p, cfg.HW, w.RawProb, testMask, opts, epochs)
		opts.TraceLabel = name + "/saint-ddp"
		res.DDP = saint.TrainSAINTDDP(p, cfg.HW, w.RawProb, testMask, opts, epochs)
		out = append(out, res)

		cfg.printf("Accuracy vs time: %s (2-layer h=128, P=8, scale=1/%d)\n", name, cfg.Scale)
		cfg.printf("%-18s %12s %12s %12s %10s\n", "curve", "final-acc", "best-acc", "time(s)", "updates")
		for _, c := range []*saint.Curve{res.FullBatch, res.RDMSampled, res.DDP} {
			f := c.Final()
			cfg.printf("%-18s %12.4f %12.4f %12.4f %10d\n", c.Name, f.TestAcc, c.BestAcc(), f.Time, f.Updates)
		}
	}
	return out, nil
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
