package bench

// This file is the comm/compute overlap experiment: train the same RDM
// workload twice per cell — sequential interpreter and dependency-DAG
// overlap executor — and meter both epoch times, cross-checking every
// live device clock against plan.PriceDAGEpochs's closed form. Overlap
// efficiency is 1 − critical-path/sequential (DAGCost.Efficiency). The
// result marshals to BENCH_overlap.json via rdmbench -json.

import (
	"fmt"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/topo"
)

// OverlapRow is one (topology, P, config) cell: the same training run
// under both executors.
type OverlapRow struct {
	Topology string `json:"topology"` // "flat" or a spec string
	P        int    `json:"p"`
	Config   int    `json:"config"`
	// SeqEpochSec and OverlapEpochSec are simulated makespans / epochs.
	SeqEpochSec     float64 `json:"seq_epoch_sec"`
	OverlapEpochSec float64 `json:"overlap_epoch_sec"`
	// Efficiency is 1 − critical-path/sequential: the fraction of the
	// sequential epoch the DAG executor hides behind other resources.
	Efficiency float64 `json:"efficiency"`
	Speedup    float64 `json:"speedup"` // seq / overlap
}

// OverlapResult is the machine-readable output of the overlap
// experiment.
type OverlapResult struct {
	Dataset string       `json:"dataset"`
	Scale   int          `json:"scale"`
	Dims    []int        `json:"dims"`
	Epochs  int          `json:"epochs"`
	Rows    []OverlapRow `json:"rows"`
}

// overlapConfigs are the Table IV rows the experiment sweeps: the two
// uniform extremes plus the two mixed rows the orderings argmin
// analysis singles out (rdminfo -plan -overlap).
var overlapConfigs = []int{0, 5, 10, 15}

// RunOverlap trains one dataset across topologies, device counts and
// orderings, once per executor, and enforces the overlap invariants on
// every cell: the overlapped epoch never exceeds the sequential one,
// and both live clocks equal the DAG pricer's closed form exactly. The
// text rendering goes to cfg.Out; the returned struct is what
// rdmbench -json serializes.
func RunOverlap(cfg Config) (*OverlapResult, error) {
	cfg = cfg.withDefaults()
	name := cfg.Datasets[0]
	w, err := BuildWorkload(name, cfg.Scale)
	if err != nil {
		return nil, err
	}
	const layers, hidden = 2, 128
	dims := w.Dims(layers, hidden)
	res := &OverlapResult{Dataset: name, Scale: cfg.Scale, Dims: dims, Epochs: cfg.Epochs}

	cfg.printf("Comm/compute overlap: dataset=%s scale=1/%d dims=%v epochs=%d\n",
		name, cfg.Scale, dims, cfg.Epochs)
	cfg.printf("%-16s %4s %4s %14s %14s %10s %8s\n",
		"topology", "P", "cfg", "seq epoch(s)", "ovl epoch(s)", "eff", "speedup")

	for _, ts := range []string{"flat", "8x4:nvlink,ib"} {
		var sp topo.Spec
		if ts != "flat" {
			if sp, err = topo.ParseSpec(ts); err != nil {
				return nil, err
			}
		}
		for _, p := range []int{4, 8} {
			var tp *topo.Topology
			if ts != "flat" {
				tp = sp.MustTopology(p)
			}
			for _, id := range overlapConfigs {
				row, err := runOverlapCell(cfg, w, dims, p, id, ts, tp)
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, row)
				cfg.printf("%-16s %4d %4d %14.6f %14.6f %9.1f%% %8.3f\n",
					row.Topology, row.P, row.Config, row.SeqEpochSec,
					row.OverlapEpochSec, 100*row.Efficiency, row.Speedup)
			}
		}
	}
	return res, nil
}

// runOverlapCell trains one cell under both executors and cross-checks
// the live clocks against the DAG pricer.
func runOverlapCell(cfg Config, w *Workload, dims []int, p, id int, label string, tp *topo.Topology) (OverlapRow, error) {
	o := core.Options{
		Dims:     dims,
		Config:   costmodel.ConfigFromID(id, len(dims)-1),
		Topology: tp,
		Memoize:  true,
		LR:       0.01,
		Seed:     11,
	}
	train := func(overlap bool) (*comm.Fabric, error) {
		oo := o
		oo.Overlap = overlap
		oo.PinExecutor = true // the sequential leg must survive GNNRDM_OVERLAP=1
		fab := comm.NewFabric(p, cfg.HW)
		if tp != nil {
			fab.SetTopology(tp)
		}
		if cfg.Tracer != nil {
			mode := "seq"
			if overlap {
				mode = "ovl"
			}
			fab.SetTracer(cfg.Tracer, fmt.Sprintf("%s/p%d/overlap-%s-%s-cfg%d", w.Recipe.Name, p, label, mode, id))
		}
		fab.Run(func(d *comm.Device) {
			eng := core.NewEngine(d, w.Prob, oo)
			for ep := 0; ep < cfg.Epochs; ep++ {
				eng.Epoch()
			}
		})
		return fab, nil
	}
	seq, err := train(false)
	if err != nil {
		return OverlapRow{}, err
	}
	ovl, err := train(true)
	if err != nil {
		return OverlapRow{}, err
	}

	sched := plan.Compile(plan.Spec{
		N: w.Prob.N(), Dims: dims, Config: o.Config, P: p, RA: p, Memoize: true,
	}).Optimize()
	dag, err := plan.BuildDAG(sched)
	if err != nil {
		return OverlapRow{}, err
	}
	cost := dag.PriceDAGEpochs(core.PanelCensus(w.Prob, p, p), cfg.HW, tp, cfg.Epochs)
	for r := 0; r < p; r++ {
		if got, want := ovl.Device(r).Clock(), cost.PerDevice[r]; got != want {
			return OverlapRow{}, fmt.Errorf("%s P=%d cfg=%d rank %d: live overlap clock %.17g != priced %.17g",
				label, p, id, r, got, want)
		}
		if got, want := seq.Device(r).Clock(), cost.PerDeviceSeq[r]; got != want {
			return OverlapRow{}, fmt.Errorf("%s P=%d cfg=%d rank %d: live sequential clock %.17g != priced %.17g",
				label, p, id, r, got, want)
		}
	}
	row := OverlapRow{
		Topology: label, P: p, Config: id,
		SeqEpochSec:     seq.MaxClock() / float64(cfg.Epochs),
		OverlapEpochSec: ovl.MaxClock() / float64(cfg.Epochs),
		Efficiency:      cost.Efficiency(),
	}
	if row.OverlapEpochSec > row.SeqEpochSec {
		return OverlapRow{}, fmt.Errorf("%s P=%d cfg=%d: overlap epoch %v exceeds sequential %v",
			label, p, id, row.OverlapEpochSec, row.SeqEpochSec)
	}
	row.Speedup = row.SeqEpochSec / row.OverlapEpochSec
	return row, nil
}
