package bench

import (
	"fmt"

	"gnnrdm/internal/serve"
)

// ServeRow is one (device count, arrival rate, Zipf skew) point of the
// serving benchmark.
type ServeRow struct {
	Dataset string  `json:"dataset"`
	P       int     `json:"p"`
	Skew    float64 `json:"zipf_skew"`
	RateQPS float64 `json:"rate_qps"`

	Queries int     `json:"queries"`
	Batches int     `json:"batches"`
	HitRate float64 `json:"hit_rate"`

	BytesTotal    int64   `json:"bytes_total"`
	BytesPerQuery float64 `json:"bytes_per_query"`
	PredBytes     int64   `json:"pred_bytes"`

	P50LatencySec float64 `json:"p50_latency_sec"`
	P99LatencySec float64 `json:"p99_latency_sec"`
	ThroughputQPS float64 `json:"throughput_qps"`
	SimTimeSec    float64 `json:"sim_time_sec"`
	PredTimeSec   float64 `json:"pred_time_sec"`
}

// ServeResult is what `rdmbench serve -json` serializes to
// BENCH_serve.json.
type ServeResult struct {
	Dataset  string  `json:"dataset"`
	Scale    int     `json:"scale"`
	Dims     []int   `json:"dims"`
	Users    int64   `json:"users"`
	Queries  int     `json:"queries"`
	MaxBatch int     `json:"max_batch"`
	Deadline float64 `json:"deadline_sec"`
	CacheCap int     `json:"cache_cap"`

	Rows []ServeRow `json:"rows"`
}

// The serving sweep: popularity skews bracketing web-like traffic and
// two offered loads (a lightly loaded and a saturating arrival rate).
var (
	serveSkews = []float64{1.1, 1.5, 2.0}
	serveRates = []float64{500, 5000}
)

// RunServe benchmarks the online serving tier on the first configured
// dataset: an open-loop stream of per-vertex embedding queries from
// millions of simulated users is coalesced into microbatches and
// answered by the distributed forward engine behind the LRU answer
// cache, sweeping device count, arrival rate and Zipf popularity skew.
// Every run is seeded, so the table — and the BENCH_serve.json it
// serializes to — is byte-identical run to run.
//
// Two invariants are enforced, not just reported: the cache must hit
// (a stream with Zipf repeats that never hits means caching is not in
// the serving path), and bytes/query must strictly decrease as skew
// rises for every (P > 1, rate) pair — hotter popularity concentrates
// queries on cached vertices, so the per-query wire cost of the
// distributed tier has to fall.
func RunServe(cfg Config) (*ServeResult, error) {
	cfg = cfg.withDefaults()
	name := cfg.Datasets[0]
	w, err := BuildWorkload(name, cfg.Scale)
	if err != nil {
		return nil, err
	}
	const layers, hidden = 2, 128
	dims := w.Dims(layers, hidden)
	res := &ServeResult{
		Dataset: name, Scale: cfg.Scale, Dims: dims,
		Users: 4_000_000, Queries: 2048,
		MaxBatch: 8, Deadline: 2e-3, CacheCap: 512,
	}

	cfg.printf("Online serving: dataset=%s scale=1/%d dims=%v users=%d queries=%d batch<=%d deadline=%.0fus cache=%d\n",
		name, cfg.Scale, dims, res.Users, res.Queries, res.MaxBatch, res.Deadline*1e6, res.CacheCap)
	cfg.printf("%4s %6s %6s %8s %12s %12s %12s %12s %12s\n",
		"P", "rate", "zipf", "hit%", "bytes/query", "p50(ms)", "p99(ms)", "qps", "sim(s)")

	for _, p := range cfg.GPUs {
		for _, rate := range serveRates {
			prev := -1.0
			for _, skew := range serveSkews {
				scfg := serve.Config{
					HW: cfg.HW, Dims: dims, ConfigID: 0,
					MaxBatch: res.MaxBatch, Deadline: res.Deadline,
					CacheCap: res.CacheCap, Seed: 11,
					Tracer:     cfg.Tracer,
					TraceLabel: fmt.Sprintf("%s/p%d/serve-z%.1f-r%.0f", name, p, skew, rate),
				}
				ts := serve.TrafficSpec{
					Queries: res.Queries, Users: res.Users,
					Skew: skew, Rate: rate, Seed: 17,
				}
				s := serve.NewSession(w.Prob, scfg)
				s.Serve(p, ts.Generate(w.Prob.N()))
				r := s.Report()
				row := ServeRow{
					Dataset: name, P: p, Skew: skew, RateQPS: rate,
					Queries: r.Queries, Batches: r.Batches, HitRate: r.HitRate,
					BytesTotal: r.BytesTotal, BytesPerQuery: r.BytesPerQuery,
					PredBytes:     r.PredAllToAll + r.PredAllGather,
					P50LatencySec: r.P50Latency, P99LatencySec: r.P99Latency,
					ThroughputQPS: r.ThroughputQPS, SimTimeSec: r.SimTime,
					PredTimeSec: r.PredTime,
				}
				res.Rows = append(res.Rows, row)
				cfg.printf("%4d %6.0f %6.1f %7.1f%% %12.1f %12.3f %12.3f %12.1f %12.6f\n",
					p, rate, skew, 100*row.HitRate, row.BytesPerQuery,
					1e3*row.P50LatencySec, 1e3*row.P99LatencySec, row.ThroughputQPS, row.SimTimeSec)

				if row.HitRate <= 0 {
					return nil, fmt.Errorf("serve: zero cache hit rate at P=%d rate=%g skew=%g — cache is not in the serving path", p, rate, skew)
				}
				if row.BytesTotal != row.PredBytes {
					return nil, fmt.Errorf("serve: metered %d bytes but model predicts %d at P=%d rate=%g skew=%g",
						row.BytesTotal, row.PredBytes, p, rate, skew)
				}
				if p > 1 {
					if prev >= 0 && row.BytesPerQuery >= prev {
						return nil, fmt.Errorf("serve: bytes/query %.1f at skew %g did not decrease from %.1f — hotter popularity must cut wire cost",
							row.BytesPerQuery, skew, prev)
					}
					prev = row.BytesPerQuery
				}
			}
		}
	}
	return res, nil
}
