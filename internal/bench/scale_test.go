package bench

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseScaleSpec(t *testing.T) {
	pts, err := ParseScaleSpec("16; 4@flat ;32@4x8:nvlink,ib")
	if err != nil {
		t.Fatal(err)
	}
	want := []ScalePoint{
		{P: 16, Topo: "flat"},
		{P: 16, Topo: "2x8:nvlink,ib"},
		{P: 4, Topo: "flat"},
		{P: 32, Topo: "4x8:nvlink,ib"},
	}
	if !reflect.DeepEqual(pts, want) {
		t.Fatalf("points = %+v, want %+v", pts, want)
	}
	if _, err := ParseScaleSpec(DefaultScaleSpec); err != nil {
		t.Fatalf("default spec rejected: %v", err)
	}
	for _, bad := range []string{
		"", ";", "0", "-4", "x", "8@", "8@2x2", "8@nonsense:x", "16@1x8:nvlink,ib",
	} {
		if _, err := ParseScaleSpec(bad); err == nil {
			t.Errorf("ParseScaleSpec(%q) accepted", bad)
		}
	}
}

// TestRunScaleSmall drives the experiment end to end at tiny P and
// checks the invariants the runner enforces plus the row/summary shape.
// The full-scale record lives in BENCH_scale.json (see EXPERIMENTS.md).
func TestRunScaleSmall(t *testing.T) {
	var sb strings.Builder
	res, err := RunScale(Config{Out: &sb}, "8@flat;8@2x4:nvlink,ib")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2*16 || len(res.Cells) != 2 || len(res.Curves) != 2 {
		t.Fatalf("shape: %d rows, %d cells, %d curves", len(res.Rows), len(res.Cells), len(res.Curves))
	}
	for _, row := range res.Rows {
		if row.SeqEpochSec <= 0 || row.OverlapEpochSec <= 0 {
			t.Fatalf("degenerate epoch time: %+v", row)
		}
		if row.OverlapEpochSec > row.SeqEpochSec {
			t.Errorf("overlap epoch exceeds sequential: %+v", row)
		}
		if row.CommSec <= 0 || row.ComputeSec <= 0 || row.IntraBytes <= 0 {
			t.Fatalf("degenerate decomposition: %+v", row)
		}
		if row.Topology == "flat" && row.InterBytes != 0 {
			t.Errorf("flat run metered inter-node bytes: %+v", row)
		}
		if row.Topology != "flat" && row.InterBytes <= 0 {
			t.Errorf("hierarchical run metered no inter-node bytes: %+v", row)
		}
	}
	for _, c := range res.Cells {
		if c.BestConfig < 0 || c.SeqBest < 0 || c.WallSec > c.BudgetSec {
			t.Fatalf("cell invariants: %+v", c)
		}
	}
	if !strings.Contains(sb.String(), "crossover") {
		t.Errorf("rendering missing crossover lines:\n%s", sb.String())
	}
}

// FuzzScaleSpec pins the grammar's round trip: any accepted spec
// reformats canonically (FormatScaleSpec) and reparses to the same
// points.
func FuzzScaleSpec(f *testing.F) {
	f.Add(DefaultScaleSpec)
	f.Add("8@flat")
	f.Add("32@4x8:nvlink,ib;1024")
	f.Add(" 16 ; 16@2x8:nvlink,eth ")
	f.Fuzz(func(t *testing.T, s string) {
		pts, err := ParseScaleSpec(s)
		if err != nil {
			return
		}
		canon := FormatScaleSpec(pts)
		pts2, err := ParseScaleSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v", canon, err)
		}
		if !reflect.DeepEqual(pts, pts2) {
			t.Fatalf("round trip changed points: %q -> %+v -> %q -> %+v", s, pts, canon, pts2)
		}
	})
}
