package bench

import (
	"math"

	"gnnrdm/internal/baselines"
	"gnnrdm/internal/comm"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/tensor"
)

// SpMMKernelRow compares the communicated volume and modelled time of
// one distributed SpMM C = A·B across the algorithm families: RDM's
// communication-free vertical scheme (plus the redistribution in/out
// that RDM charges between stages), CAGNET 1D/1.5D gathers, and 2D
// SUMMA.
type SpMMKernelRow struct {
	Dataset string
	P       int
	// Bytes moved for one SpMM (RDM includes one H->V and one V->H
	// redistribution, its per-stage overhead).
	RDMBytes, C1DBytes, C15DBytes, C2DBytes int64
	// Simulated seconds.
	RDMTime, C1DTime, C15DTime, C2DTime float64
}

// RunSpMMKernels runs the kernel-level SpMM comparison at hidden width
// 128 (CAGNET's own evaluation style). The 2D entry is only produced
// when P is a perfect square.
func RunSpMMKernels(cfg Config) ([]SpMMKernelRow, error) {
	cfg = cfg.withDefaults()
	const f = 128
	cfg.printf("Distributed SpMM kernel comparison, f=%d (scale=1/%d): MB moved / sim ms\n", f, cfg.Scale)
	cfg.printf("%-14s %4s %16s %16s %16s %16s\n", "dataset", "P", "RDM", "CAGNET-1D", "CAGNET-1.5D", "CAGNET-2D")
	var rows []SpMMKernelRow
	for _, name := range cfg.Datasets {
		w, err := BuildWorkload(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		a := w.Prob.A
		global := tensor.NewDense(a.Rows, f)
		for i := range global.Data {
			global.Data[i] = float32(i%97) / 97
		}
		for _, p := range cfg.GPUs {
			row := SpMMKernelRow{Dataset: name, P: p}

			// RDM: redistribute H->V, communication-free SpMM (full A
			// replicated), V->H back.
			fab := comm.Run(p, cfg.HW, func(d *comm.Device) {
				m := dist.Distribute(d, dist.H, global)
				v := m.Redistribute(dist.V)
				local := a.SpMM(v.Local)
				d.ChargeSpMM(a.NNZ(), v.Local.Cols)
				dist.FromLocal(d, dist.V, a.Rows, f, local).Redistribute(dist.H)
			})
			row.RDMBytes, row.RDMTime = fab.TotalVolume(), fab.MaxClock()

			// CAGNET 1D and 1.5D gathers via the training aggregator.
			for _, c := range []int{1, 2} {
				if p%c != 0 {
					continue
				}
				fab := comm.Run(p, cfg.HW, func(d *comm.Device) {
					ag := newCAGNETAggForBench(d, w, c)
					lo, hi := ag.OwnRange()
					ag.Aggregate(global.RowSlice(lo, hi))
				})
				if c == 1 {
					row.C1DBytes, row.C1DTime = fab.TotalVolume(), fab.MaxClock()
				} else {
					row.C15DBytes, row.C15DTime = fab.TotalVolume(), fab.MaxClock()
				}
			}

			// CAGNET 2D SUMMA (square P only).
			if q := int(math.Round(math.Sqrt(float64(p)))); q*q == p {
				fab := comm.Run(p, cfg.HW, func(d *comm.Device) {
					g := baselines.NewCAGNET2D(d, a)
					g.SpMM(baselines.Distribute2D(d, global), f)
				})
				row.C2DBytes, row.C2DTime = fab.TotalVolume(), fab.MaxClock()
			}
			rows = append(rows, row)
			cfg.printf("%-14s %4d %9.1f/%6.2f %9.1f/%6.2f %9.1f/%6.2f %9.1f/%6.2f\n",
				name, p,
				mb(row.RDMBytes), row.RDMTime*1e3,
				mb(row.C1DBytes), row.C1DTime*1e3,
				mb(row.C15DBytes), row.C15DTime*1e3,
				mb(row.C2DBytes), row.C2DTime*1e3)
		}
	}
	return rows, nil
}

// newCAGNETAggForBench exposes the training aggregator for kernel
// benchmarking.
func newCAGNETAggForBench(d *comm.Device, w *Workload, c int) baselines.Aggregator {
	return baselines.NewAggregator(d, w.Prob.A, c)
}
