package bench

// This file is the discrete-event scale experiment: the full 16-config
// Table IV sweep replayed on the sim backend (internal/sim) at device
// counts the goroutine-per-device fabric could never reach — P up to
// 4096 — on the flat interconnect and hierarchical NVLink/IB machines,
// producing Fig. 12-style compute-vs-communication crossover curves at
// scale. The runner enforces its own invariants cell by cell: every
// simulated clock must equal plan.PriceDAGEpochs bit-for-bit (the same
// pricer the live fabric is differentially pinned against at small P),
// and each (P, topology) sweep must finish inside a wall-clock budget
// that grows monotonically with P. The result marshals to
// BENCH_scale.json via rdmbench -json.

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/sim"
	"gnnrdm/internal/topo"
)

// ScalePoint is one (device count, interconnect) cell of the sweep.
type ScalePoint struct {
	P int `json:"p"`
	// Topo is "flat" or a canonical topo.Spec string.
	Topo string `json:"topology"`
}

// String renders the point in the scale-spec grammar.
func (pt ScalePoint) String() string { return fmt.Sprintf("%d@%s", pt.P, pt.Topo) }

// DefaultScaleSpec is the issue's sweep: P ∈ {256, 1024, 4096}, each on
// the flat fabric and an 8-GPU-per-node NVLink/IB machine.
const DefaultScaleSpec = "256;1024;4096"

// maxScaleP bounds the grammar so a fuzzed or mistyped spec cannot ask
// for worlds past anything the engine is sized for; it matches the topo
// package's device limit so the default hierarchical expansion of any
// accepted P is itself a legal interconnect.
const maxScaleP = 1 << 16

// ParseScaleSpec parses the scale sweep grammar:
//
//	spec  := point (";" point)*
//	point := P | P "@" "flat" | P "@" topoSpec
//
// A bare P expands to the default interconnect set for that device
// count: the flat fabric plus, when P is a multiple of 8 with at least
// two nodes, the (P/8)x8:nvlink,ib reference machine. Topology specs
// are canonicalized (topo.ParseSpec / Spec.String), so
// FormatScaleSpec(ParseScaleSpec(s)) reparses to the same points.
func ParseScaleSpec(s string) ([]ScalePoint, error) {
	var pts []ScalePoint
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("scale spec: empty entry in %q", s)
		}
		pStr, topoStr, hasTopo := strings.Cut(entry, "@")
		p, err := strconv.Atoi(strings.TrimSpace(pStr))
		if err != nil || p < 1 || p > maxScaleP {
			return nil, fmt.Errorf("scale spec: device count %q is not in 1..%d", pStr, maxScaleP)
		}
		if !hasTopo {
			pts = append(pts, ScalePoint{P: p, Topo: "flat"})
			if p >= 16 && p%8 == 0 {
				pts = append(pts, ScalePoint{P: p, Topo: fmt.Sprintf("%dx8:nvlink,ib", p/8)})
			}
			continue
		}
		topoStr = strings.TrimSpace(topoStr)
		if topoStr == "flat" {
			pts = append(pts, ScalePoint{P: p, Topo: "flat"})
			continue
		}
		sp, err := topo.ParseSpec(topoStr)
		if err != nil {
			return nil, fmt.Errorf("scale spec: %v", err)
		}
		if sp.Devices() < p {
			return nil, fmt.Errorf("scale spec: %s has %d devices, fewer than P=%d",
				sp, sp.Devices(), p)
		}
		pts = append(pts, ScalePoint{P: p, Topo: sp.String()})
	}
	return pts, nil
}

// FormatScaleSpec renders points back in the grammar ParseScaleSpec
// accepts (every point explicit, no default expansion).
func FormatScaleSpec(pts []ScalePoint) string {
	parts := make([]string, len(pts))
	for i, pt := range pts {
		parts[i] = pt.String()
	}
	return strings.Join(parts, ";")
}

// ScaleRow is one (P, topology, config) simulated measurement. Comm and
// compute seconds come from the sequential replay (the Fig. 12
// decomposition: the two add up to the epoch), bytes from the sim's
// per-tier meter census.
type ScaleRow struct {
	P               int     `json:"p"`
	Topology        string  `json:"topology"`
	Config          int     `json:"config"`
	SeqEpochSec     float64 `json:"seq_epoch_sec"`
	OverlapEpochSec float64 `json:"overlap_epoch_sec"`
	CommSec         float64 `json:"comm_sec"`
	ComputeSec      float64 `json:"compute_sec"`
	IntraBytes      int64   `json:"intra_bytes"`
	InterBytes      int64   `json:"inter_bytes"`
}

// ScaleCell summarizes one (P, topology) 16-config sweep: the winning
// ordering under each executor, the communication share at the winner,
// and the runner-enforced wall budget.
type ScaleCell struct {
	P            int     `json:"p"`
	Topology     string  `json:"topology"`
	BestConfig   int     `json:"best_config"` // argmin overlap epoch
	BestEpochSec float64 `json:"best_epoch_sec"`
	SeqBest      int     `json:"seq_best_config"`
	CommFrac     float64 `json:"comm_frac"`    // comm share at BestConfig, sequential decomposition
	OverlapGain  float64 `json:"overlap_gain"` // seq epoch / overlap epoch at BestConfig
	WallSec      float64 `json:"wall_sec"`
	BudgetSec    float64 `json:"budget_sec"`
}

// ScaleCurve is the Fig. 12-style crossover record for one
// interconnect family across the P sweep: the per-P winning ordering
// and its communication fraction, the first P where the best
// configuration turns communication-bound (comm > compute), and
// whether the Table IV argmin itself shifts with scale.
type ScaleCurve struct {
	Family      string    `json:"family"` // "flat" or "hier"
	Ps          []int     `json:"ps"`
	BestConfigs []int     `json:"best_configs"`
	CommFracs   []float64 `json:"comm_fracs"`
	// CommBoundP is the first swept P whose best config spends more
	// epoch time communicating than computing; 0 if none does.
	CommBoundP int `json:"comm_bound_p"`
	// ConfigShift reports whether the winning ordering changes across
	// the sweep — the crossover question the paper's 8-GPU testbed
	// could not ask.
	ConfigShift bool `json:"config_shift"`
}

// ScaleResult is the machine-readable output of the scale experiment.
type ScaleResult struct {
	N      int          `json:"n"`
	NNZ    int64        `json:"nnz"`
	Dims   []int        `json:"dims"`
	Epochs int          `json:"epochs"`
	Points []ScalePoint `json:"points"`
	Rows   []ScaleRow   `json:"rows"`
	Cells  []ScaleCell  `json:"cells"`
	Curves []ScaleCurve `json:"curves"`
}

// scaleBudget is the wall-clock allowance for one (P, topology) sweep
// of all 16 configs under both executors. It grows linearly in P, so
// the budget sequence over any ascending sweep is monotone by
// construction; the runner fails the experiment if a cell exceeds it.
func scaleBudget(p int) float64 { return 20 + float64(p)/64 }

// scaleShape is the synthetic paper-scale problem the sweep prices:
// big enough that every rank owns work at P=4096, fixed so the sweep
// is a pure function of (P, topology, config).
const (
	scaleN      = 1 << 18
	scaleHidden = 128
	scaleLabels = 32
	scaleFeat   = 64
)

// RunScale sweeps all 16 Table IV orderings at each scale point on the
// discrete-event backend, enforcing sim clocks == plan.PriceDAGEpochs
// bit-exact in every cell and a monotone wall-time budget per (P,
// topology) sweep. The text rendering goes to cfg.Out; the returned
// struct is what rdmbench -json serializes into BENCH_scale.json.
func RunScale(cfg Config, spec string) (*ScaleResult, error) {
	cfg = cfg.withDefaults()
	if spec == "" {
		spec = DefaultScaleSpec
	}
	pts, err := ParseScaleSpec(spec)
	if err != nil {
		return nil, err
	}
	dims := []int{scaleFeat, scaleHidden, scaleLabels}
	layers := len(dims) - 1
	nnz := int64(8 * scaleN)
	res := &ScaleResult{
		N: scaleN, NNZ: nnz, Dims: dims, Epochs: cfg.Epochs, Points: pts,
	}

	cfg.printf("Discrete-event scale sweep (engine=sim): n=%d nnz=%d dims=%v epochs=%d points=%s\n",
		scaleN, nnz, dims, cfg.Epochs, FormatScaleSpec(pts))
	cfg.printf("%-18s %5s %4s %12s %12s %7s %16s %16s\n",
		"topology", "P", "cfg", "seq(s)", "overlap(s)", "comm%", "intra(B)", "inter(B)")

	for _, pt := range pts {
		var tp *topo.Topology
		if pt.Topo != "flat" {
			sp, err := topo.ParseSpec(pt.Topo)
			if err != nil {
				return nil, err
			}
			if tp, err = sp.Topology(pt.P); err != nil {
				return nil, err
			}
		}
		cell, rows, err := runScaleCell(cfg, pt, tp, dims, layers, nnz)
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			cfg.printf("%-18s %5d %4d %12.6f %12.6f %6.1f%% %16d %16d\n",
				row.Topology, row.P, row.Config, row.SeqEpochSec, row.OverlapEpochSec,
				100*row.CommSec/(row.CommSec+row.ComputeSec), row.IntraBytes, row.InterBytes)
		}
		res.Rows = append(res.Rows, rows...)
		res.Cells = append(res.Cells, cell)
		cfg.printf("%-18s %5d best: overlap=cfg%d @%.6fs seq=cfg%d comm%%=%.1f gain=%.3fx wall=%.1fs budget=%.0fs\n",
			pt.Topo, pt.P, cell.BestConfig, cell.BestEpochSec, cell.SeqBest,
			100*cell.CommFrac, cell.OverlapGain, cell.WallSec, cell.BudgetSec)
	}

	res.Curves = scaleCurves(res.Cells)
	for _, c := range res.Curves {
		cfg.printf("crossover %-5s P=%v best=%v comm%%=", c.Family, c.Ps, c.BestConfigs)
		for i, f := range c.CommFracs {
			if i > 0 {
				cfg.printf(",")
			}
			cfg.printf("%.1f", 100*f)
		}
		cfg.printf(" comm_bound_at_P=%d config_shift=%v\n", c.CommBoundP, c.ConfigShift)
	}
	return res, nil
}

// runScaleCell sweeps the 16 orderings for one (P, topology) point,
// enforcing the clock and wall-budget invariants.
func runScaleCell(cfg Config, pt ScalePoint, tp *topo.Topology, dims []int, layers int, nnz int64) (ScaleCell, []ScaleRow, error) {
	start := time.Now()
	pc := plan.NewPriceCache()
	cell := ScaleCell{
		P: pt.P, Topology: pt.Topo,
		BestConfig: -1, SeqBest: -1, BudgetSec: scaleBudget(pt.P),
	}
	var rows []ScaleRow
	var bestSeq float64
	var bestCommFrac, bestSeqEpoch float64
	for id := 0; id < costmodel.NumConfigs(layers); id++ {
		s := plan.Compile(plan.Spec{
			N: scaleN, Dims: dims, Config: costmodel.ConfigFromID(id, layers),
			P: pt.P, RA: pt.P, Memoize: true,
		}).Optimize()
		d, err := plan.BuildDAG(s)
		if err != nil {
			return cell, nil, err
		}
		cen := s.ApproxCensus(nnz)
		cost := d.PriceDAGEpochsCached(cen, cfg.HW, tp, cfg.Epochs, pc)
		row := ScaleRow{P: pt.P, Topology: pt.Topo, Config: id}
		for _, overlap := range []bool{false, true} {
			sr := sim.MustRun(sim.Config{
				DAG: d, Census: cen, HW: cfg.HW, Topology: tp,
				Epochs: cfg.Epochs, Overlap: overlap, Cache: pc,
			})
			want := cost.PerDeviceSeq
			if overlap {
				want = cost.PerDevice
			}
			for r := range want {
				if sr.Clocks[r] != want[r] {
					return cell, nil, fmt.Errorf(
						"scale %s P=%d cfg=%d overlap=%v: sim clock[%d]=%.17g != PriceDAGEpochs %.17g",
						pt.Topo, pt.P, id, overlap, r, sr.Clocks[r], want[r])
				}
			}
			if overlap {
				row.OverlapEpochSec = sr.MaxClock() / float64(cfg.Epochs)
				continue
			}
			row.SeqEpochSec = sr.MaxClock() / float64(cfg.Epochs)
			var comm, comp float64
			for r := 0; r < pt.P; r++ {
				comm = max(comm, sr.CommTime[r])
				comp = max(comp, sr.ComputeTime[r])
			}
			row.CommSec = comm / float64(cfg.Epochs)
			row.ComputeSec = comp / float64(cfg.Epochs)
			for k := 0; k < int(hw.NumCollectiveKinds); k++ {
				row.IntraBytes += sr.Meters.TierVolume[topo.TierIntra][k] + sr.Meters.SideTierVolume[topo.TierIntra][k]
				row.InterBytes += sr.Meters.TierVolume[topo.TierInter][k] + sr.Meters.SideTierVolume[topo.TierInter][k]
			}
		}
		rows = append(rows, row)
		if cell.BestConfig < 0 || row.OverlapEpochSec < cell.BestEpochSec {
			cell.BestConfig, cell.BestEpochSec = id, row.OverlapEpochSec
			bestCommFrac = row.CommSec / (row.CommSec + row.ComputeSec)
			bestSeqEpoch = row.SeqEpochSec
		}
		if cell.SeqBest < 0 || row.SeqEpochSec < bestSeq {
			cell.SeqBest, bestSeq = id, row.SeqEpochSec
		}
	}
	cell.CommFrac = bestCommFrac
	if cell.BestEpochSec > 0 {
		cell.OverlapGain = bestSeqEpoch / cell.BestEpochSec
	}
	cell.WallSec = time.Since(start).Seconds()
	if cell.WallSec > cell.BudgetSec {
		return cell, nil, fmt.Errorf(
			"scale %s P=%d: 16-config sweep took %.1fs, over the %.0fs budget — the discrete-event path regressed",
			pt.Topo, pt.P, cell.WallSec, cell.BudgetSec)
	}
	return cell, rows, nil
}

// scaleCurves folds the per-cell summaries into one crossover curve per
// interconnect family ("flat" vs hierarchical), in sweep order.
func scaleCurves(cells []ScaleCell) []ScaleCurve {
	byFamily := map[string]*ScaleCurve{}
	var order []string
	for _, c := range cells {
		fam := "hier"
		if c.Topology == "flat" {
			fam = "flat"
		}
		cur, ok := byFamily[fam]
		if !ok {
			cur = &ScaleCurve{Family: fam}
			byFamily[fam] = cur
			order = append(order, fam)
		}
		cur.Ps = append(cur.Ps, c.P)
		cur.BestConfigs = append(cur.BestConfigs, c.BestConfig)
		cur.CommFracs = append(cur.CommFracs, c.CommFrac)
		if cur.CommBoundP == 0 && c.CommFrac > 0.5 {
			cur.CommBoundP = c.P
		}
		if len(cur.BestConfigs) > 1 && c.BestConfig != cur.BestConfigs[0] {
			cur.ConfigShift = true
		}
	}
	out := make([]ScaleCurve, 0, len(order))
	for _, fam := range order {
		out = append(out, *byFamily[fam])
	}
	return out
}
