package bench

import (
	"bytes"
	"strings"
	"testing"
)

// fastCfg keeps unit-test runtime low: heavily scaled datasets, a subset
// of recipes, two device counts.
// Scale matters: the shape claims (RDM beating broadcast baselines,
// volume constant in P) hold when N·f dominates the O(f²) weight
// all-reduce the paper ignores, so the shape tests use scale 32 on
// cheap-feature datasets rather than a microscopic graph.
// The weight-gradient all-reduce is identical across systems and
// configurations, so it cancels out of throughput and ranking
// comparisons, letting most tests run at scale 128; only the
// volume-growth test needs a larger N·f (scale 64 on Web-Google).
func fastCfg() Config {
	return Config{
		Scale:    128,
		GPUs:     []int{2, 8},
		Epochs:   2,
		Datasets: []string{"Web-Google", "CAMI-Airways"},
	}
}

func TestBuildWorkloadCached(t *testing.T) {
	a, err := BuildWorkload("OGB-Arxiv", 512)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := BuildWorkload("OGB-Arxiv", 512)
	if a != b {
		t.Fatal("workload must be cached")
	}
	if _, err := BuildWorkload("nope", 512); err == nil {
		t.Fatal("unknown dataset must error")
	}
	if a.Prob.N() != 169343/512 {
		t.Fatalf("N=%d", a.Prob.N())
	}
}

func TestWorkloadDims(t *testing.T) {
	w, _ := BuildWorkload("OGB-Arxiv", 512)
	if d := w.Dims(2, 128); len(d) != 3 || d[0] != 128 || d[1] != 128 || d[2] != 40 {
		t.Fatalf("dims %v", d)
	}
	if d := w.Dims(3, 256); len(d) != 4 || d[1] != 256 || d[2] != 256 {
		t.Fatalf("dims %v", d)
	}
}

func TestThroughputShape(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Out = &buf
	res, err := RunThroughput(cfg, 2, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 { // 2 datasets x 2 device counts
		t.Fatalf("cells: %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.RDM <= 0 || c.CAGNET <= 0 || c.DGCL <= 0 {
			t.Fatalf("non-positive throughput: %+v", c)
		}
		// The paper's headline: RDM beats CAGNET everywhere.
		if c.RDM <= c.CAGNET {
			t.Errorf("%s P=%d: RDM %.2f should beat CAGNET %.2f", c.Dataset, c.P, c.RDM, c.CAGNET)
		}
		// And beats DGCL at 8 devices.
		if c.P == 8 && c.RDM <= c.DGCL {
			t.Errorf("%s P=8: RDM %.2f should beat DGCL %.2f", c.Dataset, c.RDM, c.DGCL)
		}
	}
	if !strings.Contains(buf.String(), "Web-Google") {
		t.Fatal("output rendering missing")
	}
	sc, sd := res.Speedups(8)
	if sc <= 1 || sd <= 1 {
		t.Fatalf("P=8 speedups should exceed 1: %.2f %.2f", sc, sd)
	}
}

func TestFig12CommDominanceShape(t *testing.T) {
	cfg := fastCfg()
	rows, err := RunFig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// RDM communicates less than CAGNET (time and exact bytes).
		if r.RDMComm >= r.CAGNETComm {
			t.Errorf("%s: RDM comm time %.4f should be below CAGNET %.4f", r.Dataset, r.RDMComm, r.CAGNETComm)
		}
		if r.RDMBytes >= r.CAGNETBytes {
			t.Errorf("%s: RDM bytes %d should be below CAGNET %d", r.Dataset, r.RDMBytes, r.CAGNETBytes)
		}
	}
}

func TestTable6FullTableVI(t *testing.T) {
	cfg := Config{Scale: 512} // all eight datasets; analytic, cheap
	rows, err := RunTable6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]int{
		"OGB-Arxiv":    {5},
		"OGB-MAG":      {10},
		"OGB-Products": {5},
		"Reddit":       {2, 3, 10},
		"Web-Google":   {2, 3, 10},
		"Com-Orkut":    {5, 10},
		"CAMI-Airways": {2, 3, 10},
		"CAMI-Oral":    {2, 3, 10},
	}
	if len(rows) != 8 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		w := want[r.Dataset]
		if len(w) != len(r.Candidates) {
			t.Fatalf("%s: %v want %v", r.Dataset, r.Candidates, w)
		}
		for i := range w {
			if w[i] != r.Candidates[i] {
				t.Fatalf("%s: %v want %v", r.Dataset, r.Candidates, w)
			}
		}
	}
}

func TestTable8ModelValidates(t *testing.T) {
	cfg := fastCfg()
	cfg.Scale = 64
	cfg.GPUs = []int{8}
	cfg.Datasets = []string{"Web-Google"}
	rows, err := RunTable8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.ParetoMin <= 0 || r.NonParetoMax <= r.ParetoMin {
		t.Fatalf("times implausible: %+v", r)
	}
	// On Web-Google (f_in=256 >> f_out) the model prediction must hold.
	if !r.ModelValidated {
		t.Fatalf("model should validate on Web-Google: pareto %v..%v vs non-pareto %v..%v",
			r.ParetoMin, r.ParetoMax, r.NonParetoMin, r.NonParetoMax)
	}
}

func TestTable10ShapeMatchesPaper(t *testing.T) {
	cfg := Config{}
	rows, err := RunTable10(cfg, true) // full-size analytic
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !(r.Bytes[0] < r.Bytes[1] && r.Bytes[1] < r.Bytes[2] && r.Bytes[2] < r.Bytes[3]) {
			t.Fatalf("%s: space must grow with RA: %v", r.Dataset, r.Bytes)
		}
	}
	// Spot-check magnitudes against Table X (same order of magnitude).
	for _, r := range rows {
		if r.Dataset == "OGB-Arxiv" {
			if mb(r.Bytes[0]) < 10 || mb(r.Bytes[0]) > 100 {
				t.Fatalf("arxiv CAGNET %f MB implausible vs paper's 26MB", mb(r.Bytes[0]))
			}
		}
		if r.Dataset == "Reddit" {
			if mb(r.Bytes[3]) < 500 || mb(r.Bytes[3]) > 4000 {
				t.Fatalf("reddit RA=8 %f MB implausible vs paper's 1.5GB", mb(r.Bytes[3]))
			}
		}
	}
}

func TestVolumeScalingShape(t *testing.T) {
	cfg := fastCfg()
	cfg.Scale = 64
	cfg.Datasets = []string{"Web-Google"}
	rows, err := RunVolumeScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byP := map[int]VolumeScalingRow{}
	for _, r := range rows {
		byP[r.P] = r
	}
	// RDM's inherent growth is (P-1)/P (1/2 -> 7/8 = 1.75x) plus the
	// small O(f²) all-reduce; it must stay well below CAGNET's ~(P-1)
	// growth and far below CAGNET's absolute volume at P=8.
	growthRDM := float64(byP[8].RDM) / float64(byP[2].RDM)
	growthCAG := float64(byP[8].CAGNET) / float64(byP[2].CAGNET)
	if growthRDM > 2.2 {
		t.Fatalf("RDM volume not ~constant: %d -> %d (%.2fx)", byP[2].RDM, byP[8].RDM, growthRDM)
	}
	if growthCAG < 1.5*growthRDM {
		t.Fatalf("CAGNET growth %.2fx should far exceed RDM %.2fx", growthCAG, growthRDM)
	}
	if byP[8].CAGNET < 2*byP[8].RDM {
		t.Fatalf("CAGNET at P=8 (%d) should move >2x RDM (%d)", byP[8].CAGNET, byP[8].RDM)
	}
	// DGCL grows too.
	if byP[8].DGCL <= byP[2].DGCL {
		t.Fatalf("DGCL volume should grow: %d -> %d", byP[2].DGCL, byP[8].DGCL)
	}
}

func TestMemoAblationShape(t *testing.T) {
	cfg := fastCfg()
	cfg.Scale = 128
	cfg.Datasets = []string{"OGB-Arxiv"}
	rows, err := RunMemoAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// Config 10's backward layer 2 is GEMM-first and reuses the memoized
	// forward product: disabling memoization must cost extra bytes and
	// time.
	if r.NoMemoBytes <= r.MemoBytes {
		t.Fatalf("no-memo should move more: %d vs %d", r.NoMemoBytes, r.MemoBytes)
	}
	if r.NoMemoTime < r.MemoTime {
		t.Fatalf("no-memo should not be faster: %v vs %v", r.NoMemoTime, r.MemoTime)
	}
}

func TestRAAblationShape(t *testing.T) {
	cfg := fastCfg()
	cfg.Scale = 128
	cfg.Datasets = []string{"Reddit"}
	rows, err := RunRAAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Volume decreases as RA rises; space increases.
	for i := 1; i < 4; i++ {
		if rows[i].Bytes >= rows[i-1].Bytes {
			t.Fatalf("comm should fall with RA: %+v", rows)
		}
		if rows[i].SpaceMB <= rows[i-1].SpaceMB {
			t.Fatalf("space should rise with RA: %+v", rows)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{1, 4}); g != 2 {
		t.Fatalf("geomean=%v", g)
	}
	if Geomean(nil) != 0 {
		t.Fatal("empty geomean")
	}
}

func TestFig13Smoke(t *testing.T) {
	cfg := fastCfg()
	cfg.Scale = 128
	cfg.Datasets = []string{"OGB-Arxiv"}
	res, err := RunFig13(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results: %d", len(res))
	}
	r := res[0]
	for _, c := range []interface{ BestAcc() float64 }{r.FullBatch, r.RDMSampled, r.DDP} {
		if c.BestAcc() <= 0 {
			t.Fatal("curves must record accuracy")
		}
	}
	// DDP makes fewer updates than SAINT-RDM for the same epochs.
	if r.DDP.Final().Updates >= r.RDMSampled.Final().Updates {
		t.Fatalf("DDP updates %d should be < SAINT-RDM %d",
			r.DDP.Final().Updates, r.RDMSampled.Final().Updates)
	}
}

func TestHWAblationShape(t *testing.T) {
	cfg := fastCfg()
	cfg.Datasets = []string{"Web-Google"}
	rows, err := RunHWAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byLink := map[string]HWAblationRow{}
	for _, r := range rows {
		byLink[r.Link] = r
	}
	slow, fast := byLink["pcie3-12GBs"], byLink["nvlink-56GBs"]
	// Slower links magnify RDM's advantage.
	if slow.Speedup <= fast.Speedup {
		t.Fatalf("slow links should favour RDM more: %.2f vs %.2f", slow.Speedup, fast.Speedup)
	}
	// CAGNET's comm share exceeds RDM's under every link.
	for _, r := range rows {
		if r.CommShareCAGNET <= r.CommShareRDM {
			t.Fatalf("%s: CAGNET comm share %.2f should exceed RDM %.2f",
				r.Link, r.CommShareCAGNET, r.CommShareRDM)
		}
	}
}

func TestPredictionValidation(t *testing.T) {
	cfg := fastCfg()
	cfg.Scale = 64
	cfg.Datasets = []string{"Web-Google"}
	rows, err := RunPredictionValidation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		ratio := r.Predicted / r.Measured
		if ratio < 0.3 || ratio > 3 {
			t.Fatalf("cfg %d: prediction %.4fms vs measured %.4fms (ratio %.2f) out of band",
				r.ConfigID, r.Predicted*1e3, r.Measured*1e3, ratio)
		}
	}
}

func TestSpMMKernelsShape(t *testing.T) {
	cfg := fastCfg()
	cfg.GPUs = []int{4}
	cfg.Datasets = []string{"Web-Google"}
	rows, err := RunSpMMKernels(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// All four variants produce volume; RDM (one redist in, one out)
	// moves less than 1D's (P-1)·N·f gather.
	if r.RDMBytes <= 0 || r.C1DBytes <= 0 || r.C15DBytes <= 0 || r.C2DBytes <= 0 {
		t.Fatalf("missing volumes: %+v", r)
	}
	if r.RDMBytes >= r.C1DBytes {
		t.Fatalf("RDM kernel volume %d should beat 1D %d", r.RDMBytes, r.C1DBytes)
	}
	if r.C15DBytes >= r.C1DBytes {
		t.Fatalf("1.5D volume %d should beat 1D %d", r.C15DBytes, r.C1DBytes)
	}
}

func TestMemberBenchShape(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Out = &buf
	res, err := RunMember(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(memberPs)*len(memberDeads) {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Rounds <= 0 || r.Rounds > r.Bound {
			t.Fatalf("P=%d dead=%d: rounds %d outside (0, %d]", r.P, r.Dead, r.Rounds, r.Bound)
		}
		if r.Bytes != r.PredBytes {
			t.Fatalf("P=%d dead=%d: metered %d != predicted %d", r.P, r.Dead, r.Bytes, r.PredBytes)
		}
	}
	// The decentralization claim in one line: per-rank control traffic
	// at P=1024 stays within an order of magnitude of P=8, while a
	// coordinator's inbound load would have grown 128x.
	per := map[int]float64{}
	for _, r := range res.Rows {
		if r.Dead == 1 {
			per[r.P] = r.BytesPerRank
		}
	}
	if per[1024] > 10*per[8] {
		t.Fatalf("per-rank bytes blow up with P: %.1f at P=8 vs %.1f at P=1024", per[8], per[1024])
	}
	if !strings.Contains(buf.String(), "bytes/rank") {
		t.Fatal("output rendering missing")
	}
}
