package bench

import (
	"fmt"

	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/member"
)

// MemberRow is one (world size, crash count) point of the membership
// benchmark: a full SWIM detection episode from crash to converged
// survivor views.
type MemberRow struct {
	P    int `json:"p"`
	Dead int `json:"dead"`

	Rounds     int     `json:"rounds"`
	Bound      int     `json:"bound"`
	LatencySec float64 `json:"latency_sec"`

	Msgs      int   `json:"msgs"`
	Updates   int   `json:"updates"`
	Bytes     int64 `json:"bytes"`
	PredBytes int64 `json:"pred_bytes"`
	// BytesPerRank is the control-plane cost normalized by world size —
	// the per-member price of decentralized detection.
	BytesPerRank float64 `json:"bytes_per_rank"`
}

// MemberResult is what `rdmbench member -json` serializes to
// BENCH_member.json.
type MemberResult struct {
	PeriodSec        float64 `json:"period_sec"`
	K                int     `json:"k"`
	SuspicionPeriods int     `json:"suspicion_periods"`
	Lambda           int     `json:"lambda"`
	Seed             int64   `json:"seed"`

	Rows []MemberRow `json:"rows"`
}

// The membership sweep: the P range of the roadmap's "P >= 1024" goal
// and single- vs multi-crash episodes.
var (
	memberPs    = []int{8, 64, 256, 1024}
	memberDeads = []int{1, 3}
)

// RunMember benchmarks the gossip membership layer: for each world size
// it runs seeded detection episodes (one and three simultaneous
// crashes) to convergence and reports rounds, simulated detection
// latency, and the control-plane byte census. Every run is seeded, so
// BENCH_member.json is byte-identical run to run.
//
// Three invariants are enforced, not just reported: every episode's
// metered bytes must equal costmodel.GossipRoundBytes applied to its
// census (meter-equal); every episode must converge within the
// closed-form epidemic bound; and detection latency must grow no faster
// than log P across the sweep (the O(log P) dissemination claim) while
// per-rank control-plane bytes stay within the priced per-round budget.
func RunMember(cfg Config) (*MemberResult, error) {
	cfg = cfg.withDefaults()
	mc := member.Config{Seed: 1}.WithDefaults()
	res := &MemberResult{
		PeriodSec: mc.Period, K: mc.K,
		SuspicionPeriods: mc.SuspicionPeriods, Lambda: mc.Lambda, Seed: mc.Seed,
	}

	cfg.printf("Gossip membership: period=%.0fms k=%d suspicion=%d lambda=%d seed=%d\n",
		mc.Period*1e3, mc.K, mc.SuspicionPeriods, mc.Lambda, mc.Seed)
	cfg.printf("%6s %5s %7s %7s %12s %10s %12s %12s\n",
		"P", "dead", "rounds", "bound", "latency(ms)", "msgs", "bytes", "bytes/rank")

	type key struct{ p, dead int }
	latency := map[key]float64{}
	for _, p := range memberPs {
		for _, nd := range memberDeads {
			dead := make([]int, nd)
			for i := range dead {
				dead[i] = (i*p/nd + p/2) % p
			}
			rep := member.Detect(p, dead, mc)
			if !rep.Converged {
				return nil, fmt.Errorf("member: P=%d dead=%v did not converge in %d rounds", p, dead, rep.Rounds)
			}
			bound := costmodel.GossipConvergenceBound(p, mc.SuspicionPeriods)
			if rep.Rounds > bound {
				return nil, fmt.Errorf("member: P=%d dead=%v took %d rounds, epidemic bound is %d",
					p, dead, rep.Rounds, bound)
			}
			var pred int64
			for _, rc := range rep.PerRound {
				rb := costmodel.GossipRoundBytes(rc.Msgs, rc.Updates)
				if rc.Bytes != rb {
					return nil, fmt.Errorf("member: P=%d round %d metered %d bytes, model prices %d",
						p, rc.Round, rc.Bytes, rb)
				}
				pred += rb
			}
			if rep.Bytes != pred {
				return nil, fmt.Errorf("member: P=%d episode metered %d bytes, model prices %d", p, rep.Bytes, pred)
			}
			row := MemberRow{
				P: p, Dead: nd,
				Rounds: rep.Rounds, Bound: bound, LatencySec: rep.Latency,
				Msgs: rep.Msgs, Updates: rep.Updates,
				Bytes: rep.Bytes, PredBytes: pred,
				BytesPerRank: float64(rep.Bytes) / float64(p),
			}
			res.Rows = append(res.Rows, row)
			latency[key{p, nd}] = rep.Latency
			cfg.printf("%6d %5d %7d %7d %12.1f %10d %12d %12.1f\n",
				p, nd, row.Rounds, row.Bound, 1e3*row.LatencySec, row.Msgs, row.Bytes, row.BytesPerRank)

			// Per-rank control-plane traffic is bounded by the priced
			// per-round budget: every member sends at most 1 ping, k
			// ping-reqs (each forwarded), and the acks, every message
			// carrying at most MaxPiggyback updates, for `bound` rounds.
			perRoundCap := costmodel.GossipMsgBytes(mc.MaxPiggyback) * int64(2+3*mc.K)
			if budget := float64(perRoundCap) * float64(bound); row.BytesPerRank > budget {
				return nil, fmt.Errorf("member: P=%d bytes/rank %.1f exceeds priced budget %.1f",
					p, row.BytesPerRank, budget)
			}
		}
	}

	// Detection latency must grow no faster than the epidemic O(log P):
	// between consecutive sweep points, latency may rise at most by the
	// ratio of their log2 P (with the smallest world as baseline).
	base := memberPs[0]
	for _, nd := range memberDeads {
		for _, p := range memberPs[1:] {
			allowed := costmodel.GossipDetectLatency(
				costmodel.GossipConvergenceBound(p, mc.SuspicionPeriods), mc.Period)
			lp, lb := latency[key{p, nd}], latency[key{base, nd}]
			growth := float64(member.CeilLog2(p)) / float64(member.CeilLog2(base))
			if lp > lb*growth && lp > allowed {
				return nil, fmt.Errorf("member: latency at P=%d dead=%d is %.3fs, more than log-P growth from P=%d (%.3fs * %.2f)",
					p, nd, lp, base, lb, growth)
			}
		}
	}
	return res, nil
}
