// Package bench contains the experiment harness that regenerates every
// table and figure of the paper's evaluation (§V): workload
// construction from the Table V dataset recipes, the three trainers
// (RDM, CAGNET, DGCL) under the sweep dimensions (device count, layer
// count, hidden width), and text renderers that print the same rows and
// series the paper reports.
//
// Absolute numbers come from the simulated A6000 clock and synthetic
// dataset stand-ins, so EXPERIMENTS.md compares shapes (who wins, by
// what factor, where the crossovers are), not raw values; every run
// prints the dataset scale used.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"gnnrdm/internal/baselines"
	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/graph"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/trace"
)

// Config controls an experiment run.
type Config struct {
	// Scale divides every dataset's vertex/edge counts (features and
	// labels keep the paper's dimensions). Default 64.
	Scale int
	// GPUs is the device-count sweep. Default {2, 4, 8}.
	GPUs []int
	// Epochs per measured run (first epoch is warm-up). Default 2.
	Epochs int
	// HW is the hardware model. Default hw.A6000().
	HW *hw.Model
	// Out receives the rendered tables. Default io.Discard-like no-op
	// when nil.
	Out io.Writer
	// Datasets restricts the recipe set (paper order when empty).
	Datasets []string
	// Tracer, when non-nil, records every trainer run launched by the
	// experiment into labelled trace sessions ("<dataset>/p<P>/<system>")
	// for export via trace.WriteChrome.
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 64
	}
	if len(c.GPUs) == 0 {
		c.GPUs = []int{2, 4, 8}
	}
	if c.Epochs == 0 {
		c.Epochs = 2
	}
	if c.HW == nil {
		c.HW = hw.A6000()
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	if len(c.Datasets) == 0 {
		c.Datasets = graph.Names()
	}
	return c
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// Workload is a built dataset ready for training.
type Workload struct {
	Recipe graph.Recipe
	Graph  *graph.Graph
	// Prob holds the GCN-normalized problem shared by all trainers.
	Prob *core.Problem
	// RawProb keeps the unnormalized adjacency (samplers need it).
	RawProb *core.Problem
}

var (
	workloadMu    sync.Mutex
	workloadCache = map[string]*Workload{}
)

// BuildWorkload materializes (and caches) one dataset recipe at the
// configured scale.
func BuildWorkload(name string, scale int) (*Workload, error) {
	key := fmt.Sprintf("%s@%d", name, scale)
	workloadMu.Lock()
	defer workloadMu.Unlock()
	if w, ok := workloadCache[key]; ok {
		return w, nil
	}
	recipe, err := graph.RecipeByName(name)
	if err != nil {
		return nil, err
	}
	g := recipe.Scaled(scale).Build()
	w := &Workload{
		Recipe: recipe.Scaled(scale),
		Graph:  g,
		Prob: &core.Problem{
			A: sparse.GCNNormalize(g.Adj), X: g.Features,
			Labels: g.Labels, TrainMask: g.TrainMask,
		},
		RawProb: &core.Problem{
			A: g.Adj, X: g.Features,
			Labels: g.Labels, TrainMask: g.TrainMask,
		},
	}
	workloadCache[key] = w
	return w, nil
}

// Dims returns the layer widths for a workload: [f_in, hidden×(layers-1),
// labels].
func (w *Workload) Dims(layers, hidden int) []int {
	dims := []int{w.Recipe.FeatureDim}
	for i := 1; i < layers; i++ {
		dims = append(dims, hidden)
	}
	return append(dims, w.Recipe.Labels)
}

// Net returns the cost-model view of the workload.
func (w *Workload) Net(layers, hidden, p, ra int) costmodel.Network {
	return costmodel.Network{
		Dims: w.Dims(layers, hidden),
		N:    int64(w.Prob.N()),
		NNZ:  w.Prob.A.NNZ(),
		P:    p,
		RA:   ra,
	}
}

// RunRDMBest trains the model-selected best RDM configuration (the
// paper's methodology: execute every Pareto-optimal candidate and report
// the best) and returns that result plus the winning config ID.
func RunRDMBest(cfg Config, w *Workload, layers, hidden, p int) (*core.Result, int) {
	cfg = cfg.withDefaults()
	dims := w.Dims(layers, hidden)
	candidates := costmodel.ParetoConfigs(w.Net(layers, hidden, p, p))
	var best *core.Result
	bestID := -1
	for _, id := range candidates {
		res := core.Train(p, cfg.HW, w.Prob, core.Options{
			Dims:             dims,
			Config:           costmodel.ConfigFromID(id, layers),
			Memoize:          true,
			ComputeInputGrad: false,
			LR:               0.01,
			Seed:             11,
			Tracer:           cfg.Tracer,
			TraceLabel:       fmt.Sprintf("%s/p%d/rdm-cfg%d", w.Recipe.Name, p, id),
		}, cfg.Epochs)
		if best == nil || res.MeanEpochTime() < best.MeanEpochTime() {
			best, bestID = res, id
		}
	}
	return best, bestID
}

// RunRDMConfig trains one specific RDM configuration.
func RunRDMConfig(cfg Config, w *Workload, layers, hidden, p, id int) *core.Result {
	cfg = cfg.withDefaults()
	return core.Train(p, cfg.HW, w.Prob, core.Options{
		Dims:             w.Dims(layers, hidden),
		Config:           costmodel.ConfigFromID(id, layers),
		Memoize:          true,
		ComputeInputGrad: false,
		LR:               0.01,
		Seed:             11,
		Tracer:           cfg.Tracer,
		TraceLabel:       fmt.Sprintf("%s/p%d/rdm-cfg%d", w.Recipe.Name, p, id),
	}, cfg.Epochs)
}

// RunCAGNET trains the CAGNET baseline (replication 2 when possible —
// the 1.5D variant the paper reports as CAGNET's best — else 1D).
func RunCAGNET(cfg Config, w *Workload, layers, hidden, p int) *core.Result {
	cfg = cfg.withDefaults()
	c := 2
	if p%2 != 0 || p < 2 {
		c = 1
	}
	return baselines.TrainCAGNET(p, cfg.HW, w.Prob, baselines.Options{
		Dims: w.Dims(layers, hidden), LR: 0.01, Seed: 11, Replication: c,
		Tracer:     cfg.Tracer,
		TraceLabel: fmt.Sprintf("%s/p%d/cagnet", w.Recipe.Name, p),
	}, cfg.Epochs)
}

// RunDGCL trains the DGCL-like baseline.
func RunDGCL(cfg Config, w *Workload, layers, hidden, p int) *core.Result {
	cfg = cfg.withDefaults()
	return baselines.TrainDGCL(p, cfg.HW, w.Prob, baselines.Options{
		Dims: w.Dims(layers, hidden), LR: 0.01, Seed: 11,
		Tracer:     cfg.Tracer,
		TraceLabel: fmt.Sprintf("%s/p%d/dgcl", w.Recipe.Name, p),
	}, cfg.Epochs)
}

// Geomean returns the geometric mean of positive values.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// formatRange prints a [lo, hi] millisecond range the way Table VIII
// does.
func formatRange(lo, hi float64) string {
	if lo == hi {
		return fmt.Sprintf("%.1f", lo*1000)
	}
	return fmt.Sprintf("%.1f-%.1f", lo*1000, hi*1000)
}

func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}
