package bench

// This file is the topology comparison experiment: train the same RDM
// workload on the flat fabric and on hierarchical interconnects,
// metering epoch time and per-link-tier traffic, and record the
// collective-algorithm crossover the topology model predicts at scale.
// The result marshals to BENCH_topo.json via rdmbench -json.

import (
	"fmt"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
)

// TopoRow is one (topology, P, config) training measurement.
type TopoRow struct {
	Topology string  `json:"topology"` // "flat" or a spec string
	P        int     `json:"p"`
	Config   int     `json:"config"`
	EpochSec float64 `json:"epoch_sec"` // simulated makespan / epochs
	// IntraBytes/InterBytes split the primary metered volume by link
	// tier (flat runs meter everything intra).
	IntraBytes int64 `json:"intra_bytes"`
	InterBytes int64 `json:"inter_bytes"`
	RDMBytes   int64 `json:"rdm_bytes"` // alltoall + allgather share
}

// TopoCrossover records the topology model's predicted algorithm
// ranking for one collective at the reference scale — the issue's
// acceptance point that hierarchical routing beats the flat ring once
// the world spans nodes.
type TopoCrossover struct {
	Topology      string  `json:"topology"`
	P             int     `json:"p"`
	Collective    string  `json:"collective"`
	Bytes         int64   `json:"bytes"`
	RingSec       float64 `json:"ring_sec"`
	HierSec       float64 `json:"hier_sec"`
	AutoAlg       string  `json:"auto_alg"`
	AutoSec       float64 `json:"auto_sec"`
	HierBeatsRing bool    `json:"hier_beats_ring"`
}

// TopoResult is the machine-readable output of the topo experiment.
type TopoResult struct {
	Dataset    string          `json:"dataset"`
	Scale      int             `json:"scale"`
	Dims       []int           `json:"dims"`
	Epochs     int             `json:"epochs"`
	Rows       []TopoRow       `json:"rows"`
	Crossovers []TopoCrossover `json:"crossovers"`
}

// topoSpecs are the interconnects the experiment sweeps, alongside the
// flat fabric: the issue's 8x4 NVLink/IB reference machine and an
// Ethernet-backed variant where inter-node traffic is far more
// expensive.
var topoSpecs = []string{"8x4:nvlink,ib", "8x4:nvlink,eth"}

// RunTopoComparison trains one dataset across topologies, device counts
// and a pair of orderings, metering per-tier traffic, then records the
// predicted collective-algorithm crossover on the 8x4 reference machine
// at P=32. The text rendering goes to cfg.Out; the returned struct is
// what rdmbench -json serializes.
func RunTopoComparison(cfg Config) (*TopoResult, error) {
	cfg = cfg.withDefaults()
	name := cfg.Datasets[0]
	w, err := BuildWorkload(name, cfg.Scale)
	if err != nil {
		return nil, err
	}
	const layers, hidden = 2, 128
	dims := w.Dims(layers, hidden)
	res := &TopoResult{Dataset: name, Scale: cfg.Scale, Dims: dims, Epochs: cfg.Epochs}

	cfg.printf("Topology-aware collectives: dataset=%s scale=1/%d dims=%v epochs=%d\n",
		name, cfg.Scale, dims, cfg.Epochs)
	cfg.printf("%-16s %4s %4s %12s %14s %14s %14s\n",
		"topology", "P", "cfg", "epoch(s)", "intra(B)", "inter(B)", "rdm(B)")

	topos := append([]string{"flat"}, topoSpecs...)
	for _, ts := range topos {
		var sp topo.Spec
		if ts != "flat" {
			if sp, err = topo.ParseSpec(ts); err != nil {
				return nil, err
			}
		}
		for _, p := range []int{4, 8, 16, 32} {
			if ts != "flat" && p > sp.Devices() {
				continue
			}
			for _, id := range []int{0, costmodel.NumConfigs(layers) - 1} {
				var tp *topo.Topology
				if ts != "flat" {
					tp = sp.MustTopology(p)
				}
				row, err := runTopoTraining(cfg, w, dims, p, id, ts, tp)
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, row)
				cfg.printf("%-16s %4d %4d %12.6f %14d %14d %14d\n",
					row.Topology, row.P, row.Config, row.EpochSec,
					row.IntraBytes, row.InterBytes, row.RDMBytes)
			}
		}
	}

	// The acceptance crossover: on the 8x4 reference machine at P=32,
	// hierarchical all-reduce and all-gather beat the flat ring.
	sp := topo.MustParseSpec("8x4:nvlink,ib")
	tp := sp.MustTopology(32)
	h := cfg.HW
	world := make([]int, 32)
	for i := range world {
		world[i] = i
	}
	const payload = int64(1) << 22
	cfg.printf("\npredicted crossover on %s at P=32, payload %dB:\n", tp.Name, payload)
	for _, c := range []struct {
		name string
		cost func(alg topo.Algorithm) (topo.Algorithm, topo.Cost)
	}{
		{"allreduce", func(a topo.Algorithm) (topo.Algorithm, topo.Cost) {
			return tp.AllReduce(h, a, world, payload)
		}},
		{"allgather", func(a topo.Algorithm) (topo.Algorithm, topo.Cost) {
			return tp.AllGather(h, a, world, topo.EvenChunks(payload, len(world)))
		}},
	} {
		_, ring := c.cost(topo.Ring)
		_, hier := c.cost(topo.Hier)
		autoAlg, auto := c.cost(topo.Auto)
		x := TopoCrossover{
			Topology: tp.Name, P: 32, Collective: c.name, Bytes: payload,
			RingSec: ring.Time, HierSec: hier.Time,
			AutoAlg: autoAlg.String(), AutoSec: auto.Time,
			HierBeatsRing: hier.Time < ring.Time,
		}
		res.Crossovers = append(res.Crossovers, x)
		cfg.printf("  %-10s ring=%.9fs hier=%.9fs auto=%s@%.9fs hier_beats_ring=%v\n",
			x.Collective, x.RingSec, x.HierSec, x.AutoAlg, x.AutoSec, x.HierBeatsRing)
	}
	return res, nil
}

// runTopoTraining trains one (topology, P, config) cell on a fabric the
// caller can meter (core.Train hides its fabric, so the epoch loop is
// inlined here).
func runTopoTraining(cfg Config, w *Workload, dims []int, p, id int, label string, tp *topo.Topology) (TopoRow, error) {
	fab := comm.NewFabric(p, cfg.HW)
	if tp != nil {
		fab.SetTopology(tp)
	}
	if cfg.Tracer != nil {
		fab.SetTracer(cfg.Tracer, fmt.Sprintf("%s/p%d/topo-%s-cfg%d", w.Recipe.Name, p, label, id))
	}
	o := core.Options{
		Dims:    dims,
		Config:  costmodel.ConfigFromID(id, len(dims)-1),
		Memoize: true,
		LR:      0.01,
		Seed:    11,
	}
	fab.Run(func(d *comm.Device) {
		eng := core.NewEngine(d, w.Prob, o)
		for ep := 0; ep < cfg.Epochs; ep++ {
			eng.Epoch()
		}
	})
	row := TopoRow{
		Topology: label, P: p, Config: id,
		EpochSec: fab.MaxClock() / float64(cfg.Epochs),
		RDMBytes: fab.Volume(hw.OpAllToAll) + fab.Volume(hw.OpAllGather),
	}
	for k := 0; k < 6; k++ {
		kind := hw.CollectiveKind(k)
		row.IntraBytes += fab.TierVolume(kind, topo.TierIntra) + fab.SideTierVolume(kind, topo.TierIntra)
		row.InterBytes += fab.TierVolume(kind, topo.TierInter) + fab.SideTierVolume(kind, topo.TierInter)
	}
	return row, nil
}
