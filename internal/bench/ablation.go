package bench

import (
	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
)

// MemoAblationRow compares memoized vs non-memoized training (§III-C /
// Table III "N.M.") for one configuration.
type MemoAblationRow struct {
	Dataset string
	Config  int
	// Epoch times in seconds and communicated bytes per epoch.
	MemoTime, NoMemoTime   float64
	MemoBytes, NoMemoBytes int64
}

// RunMemoAblation measures the benefit of forward-intermediate
// memoization on configurations whose backward pass relies on it
// (GEMM-first backward layers).
func RunMemoAblation(cfg Config) ([]MemoAblationRow, error) {
	cfg = cfg.withDefaults()
	const layers, hidden, p, id = 2, 128, 8, 10 // ID 10 reuses T_d (§III-C)
	cfg.printf("Memoization ablation: config %d, 2-layer h=128, P=%d (scale=1/%d)\n", id, p, cfg.Scale)
	cfg.printf("%-14s %14s %14s %12s %12s\n", "dataset", "memo(s)", "no-memo(s)", "memo-MB", "no-memo-MB")
	var rows []MemoAblationRow
	for _, name := range cfg.Datasets {
		w, err := BuildWorkload(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		run := func(memo bool) *core.Result {
			return core.Train(p, cfg.HW, w.Prob, core.Options{
				Dims:    w.Dims(layers, hidden),
				Config:  costmodel.ConfigFromID(id, layers),
				Memoize: memo,
				LR:      0.01,
				Seed:    11,
			}, cfg.Epochs)
		}
		m, nm := run(true), run(false)
		row := MemoAblationRow{
			Dataset:  name,
			Config:   id,
			MemoTime: m.MeanEpochTime(), NoMemoTime: nm.MeanEpochTime(),
			MemoBytes:   m.Epochs[len(m.Epochs)-1].CommBytes,
			NoMemoBytes: nm.Epochs[len(nm.Epochs)-1].CommBytes,
		}
		rows = append(rows, row)
		cfg.printf("%-14s %14.4f %14.4f %12.1f %12.1f\n", name,
			row.MemoTime, row.NoMemoTime, mb(row.MemoBytes), mb(row.NoMemoBytes))
	}
	return rows, nil
}

// RAAblationRow records communication volume and epoch time for one
// replication factor (§III-E / Table II's R_A rows).
type RAAblationRow struct {
	Dataset string
	RA      int
	Bytes   int64
	Time    float64
	SpaceMB float64
}

// RunRAAblation sweeps the adjacency replication factor on 8 devices:
// smaller R_A trades communication for memory (the Table II / Table X
// trade-off).
func RunRAAblation(cfg Config) ([]RAAblationRow, error) {
	cfg = cfg.withDefaults()
	const layers, hidden, p = 2, 128, 8
	cfg.printf("R_A replication sweep: 2-layer h=128, P=%d (scale=1/%d)\n", p, cfg.Scale)
	cfg.printf("%-14s %4s %12s %12s %12s\n", "dataset", "RA", "epoch(s)", "comm-MB", "space-MB")
	var rows []RAAblationRow
	for _, name := range cfg.Datasets {
		w, err := BuildWorkload(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		for _, ra := range []int{1, 2, 4, 8} {
			res := core.Train(p, cfg.HW, w.Prob, core.Options{
				Dims:    w.Dims(layers, hidden),
				Config:  costmodel.ConfigFromID(10, layers),
				RA:      ra,
				Memoize: true,
				LR:      0.01,
				Seed:    11,
			}, cfg.Epochs)
			net := w.Net(layers, hidden, p, ra)
			row := RAAblationRow{
				Dataset: name,
				RA:      ra,
				Bytes:   res.Epochs[len(res.Epochs)-1].CommBytes,
				Time:    res.MeanEpochTime(),
				SpaceMB: mb(costmodel.SpaceModel(net)),
			}
			rows = append(rows, row)
			cfg.printf("%-14s %4d %12.4f %12.1f %12.1f\n", name, ra, row.Time, mb(row.Bytes), row.SpaceMB)
		}
	}
	return rows, nil
}

// VolumeScalingRow records one (system, P) communication volume — the
// paper's §I scalability claim in metered bytes.
type VolumeScalingRow struct {
	Dataset string
	P       int
	// Per-epoch bytes moved by each system.
	RDM, CAGNET, DGCL int64
}

// RunVolumeScaling meters per-epoch communication volume versus device
// count for the three systems.
func RunVolumeScaling(cfg Config) ([]VolumeScalingRow, error) {
	cfg = cfg.withDefaults()
	const layers, hidden = 2, 128
	cfg.printf("Per-epoch communication volume (MB) vs P: 2-layer h=128 (scale=1/%d)\n", cfg.Scale)
	cfg.printf("%-14s %4s %12s %12s %12s\n", "dataset", "P", "RDM", "CAGNET", "DGCL")
	var rows []VolumeScalingRow
	for _, name := range cfg.Datasets {
		w, err := BuildWorkload(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		for _, p := range cfg.GPUs {
			rdm, _ := RunRDMBest(cfg, w, layers, hidden, p)
			cagnet := RunCAGNET(cfg, w, layers, hidden, p)
			dgcl := RunDGCL(cfg, w, layers, hidden, p)
			last := func(r *core.Result) int64 { return r.Epochs[len(r.Epochs)-1].CommBytes }
			row := VolumeScalingRow{
				Dataset: name, P: p,
				RDM: last(rdm), CAGNET: last(cagnet), DGCL: last(dgcl),
			}
			rows = append(rows, row)
			cfg.printf("%-14s %4d %12.2f %12.2f %12.2f\n", name, p,
				mb(row.RDM), mb(row.CAGNET), mb(row.DGCL))
		}
	}
	return rows, nil
}
