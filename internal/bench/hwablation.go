package bench

import (
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/hw"
)

// HWAblationRow records RDM's speedup over CAGNET under one interconnect
// model.
type HWAblationRow struct {
	Dataset string
	Link    string
	// Speedup is RDM/CAGNET epochs-per-second at P=8.
	Speedup float64
	// CommShareRDM/CommShareCAGNET are the communication fractions of
	// epoch time.
	CommShareRDM, CommShareCAGNET float64
}

// RunHWAblation measures how the RDM advantage depends on link speed
// (design-sensitivity study): slow PCIe-class links magnify the benefit
// of constant communication volume; NVLink-class links shrink it.
func RunHWAblation(cfg Config) ([]HWAblationRow, error) {
	cfg = cfg.withDefaults()
	const layers, hidden, p = 2, 128, 8
	links := []struct {
		name  string
		model *hw.Model
	}{
		{"pcie3-12GBs", hw.A6000SlowPCIe()},
		{"pcie4-22GBs", hw.A6000()},
		{"nvlink-56GBs", hw.A6000NVLink()},
	}
	cfg.printf("Interconnect sensitivity: RDM vs CAGNET at P=8, 2-layer h=128 (scale=1/%d)\n", cfg.Scale)
	cfg.printf("%-14s %-14s %10s %12s %12s\n", "dataset", "link", "speedup", "RDM-comm%", "CAG-comm%")
	var rows []HWAblationRow
	for _, name := range cfg.Datasets {
		w, err := BuildWorkload(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		for _, lk := range links {
			c := cfg
			c.HW = lk.model
			rdm, _ := RunRDMBest(c, w, layers, hidden, p)
			cagnet := RunCAGNET(c, w, layers, hidden, p)
			rEp := rdm.Epochs[len(rdm.Epochs)-1]
			cEp := cagnet.Epochs[len(cagnet.Epochs)-1]
			row := HWAblationRow{
				Dataset:         name,
				Link:            lk.name,
				Speedup:         cagnet.MeanEpochTime() / rdm.MeanEpochTime(),
				CommShareRDM:    rEp.CommTime / rEp.Time,
				CommShareCAGNET: cEp.CommTime / cEp.Time,
			}
			rows = append(rows, row)
			cfg.printf("%-14s %-14s %10.2f %11.1f%% %11.1f%%\n",
				name, lk.name, row.Speedup, 100*row.CommShareRDM, 100*row.CommShareCAGNET)
		}
	}
	return rows, nil
}

// PredictionRow compares the analytic epoch-time prediction against the
// simulator's measurement for one configuration.
type PredictionRow struct {
	Dataset             string
	ConfigID            int
	Predicted, Measured float64
}

// RunPredictionValidation compares costmodel.PredictEpochTime against
// simulated epoch times across the Pareto candidates (a model-fidelity
// check beyond the paper's ranking-only validation).
func RunPredictionValidation(cfg Config) ([]PredictionRow, error) {
	cfg = cfg.withDefaults()
	const layers, hidden, p = 2, 128, 8
	cfg.printf("Analytic prediction vs simulated epoch time, P=8 (scale=1/%d)\n", cfg.Scale)
	cfg.printf("%-14s %6s %14s %14s %8s\n", "dataset", "cfg", "predicted(ms)", "simulated(ms)", "ratio")
	var rows []PredictionRow
	for _, name := range cfg.Datasets {
		w, err := BuildWorkload(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		net := w.Net(layers, hidden, p, p)
		for _, id := range costmodel.ParetoConfigs(net) {
			res := RunRDMConfig(cfg, w, layers, hidden, p, id)
			row := PredictionRow{
				Dataset:   name,
				ConfigID:  id,
				Predicted: costmodel.PredictEpochTime(net, costmodel.ConfigFromID(id, layers), cfg.HW),
				Measured:  res.MeanEpochTime(),
			}
			rows = append(rows, row)
			cfg.printf("%-14s %6d %14.3f %14.3f %8.2f\n",
				name, id, row.Predicted*1e3, row.Measured*1e3, row.Predicted/row.Measured)
		}
	}
	return rows, nil
}
