package bench

import (
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/graph"
)

// Table6Row is one dataset row of Table VI: the model's Pareto-optimal
// configuration candidates for the 2-layer, 128-hidden GCN.
type Table6Row struct {
	Dataset       string
	Fin, Fh, Fout int
	Candidates    []int
}

// RunTable6 regenerates Table VI from the analytic model (no training).
func RunTable6(cfg Config) ([]Table6Row, error) {
	cfg = cfg.withDefaults()
	cfg.printf("Pareto-optimal configurations (Table IV IDs), 2-layer GCN, hidden=128\n")
	cfg.printf("%-14s %6s %6s %6s  %s\n", "dataset", "f_in", "f_h", "f_out", "candidate IDs")
	var rows []Table6Row
	for _, name := range cfg.Datasets {
		w, err := BuildWorkload(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		net := w.Net(2, 128, 8, 8)
		row := Table6Row{
			Dataset: name,
			Fin:     net.Dims[0], Fh: net.Dims[1], Fout: net.Dims[2],
			Candidates: costmodel.ParetoConfigs(net),
		}
		rows = append(rows, row)
		cfg.printf("%-14s %6d %6d %6d  %v\n", name, row.Fin, row.Fh, row.Fout, row.Candidates)
	}
	return rows, nil
}

// Table8Row is one (dataset, P) row of Table VIII: measured epoch time of
// the model-predicted Pareto configurations versus all the rest.
type Table8Row struct {
	Dataset string
	P       int
	// ParetoIDs are the model's candidates; times in seconds.
	ParetoIDs                  []int
	ParetoMin, ParetoMax       float64
	NonParetoMin, NonParetoMax float64
	// ModelValidated reports whether the best Pareto time beats the best
	// non-Pareto time (the paper's "with very few exceptions" check).
	ModelValidated bool
	// Times[id] is each configuration's measured epoch time.
	Times [16]float64
}

// RunTable8 regenerates Table VIII: every 2-layer ordering configuration
// is trained and timed; rows compare Pareto-predicted against
// non-predicted configurations.
func RunTable8(cfg Config) ([]Table8Row, error) {
	cfg = cfg.withDefaults()
	const layers, hidden = 2, 128
	cfg.printf("Measured epoch time (ms): Pareto vs non-Pareto configs, 2-layer h=128, scale=1/%d\n", cfg.Scale)
	cfg.printf("%-14s %4s %-14s %16s %18s %6s\n", "dataset", "P", "paretoIDs", "pareto(ms)", "non-pareto(ms)", "valid")
	var rows []Table8Row
	for _, name := range cfg.Datasets {
		w, err := BuildWorkload(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		for _, p := range cfg.GPUs {
			row := Table8Row{Dataset: name, P: p}
			row.ParetoIDs = costmodel.ParetoConfigs(w.Net(layers, hidden, p, p))
			inPareto := map[int]bool{}
			for _, id := range row.ParetoIDs {
				inPareto[id] = true
			}
			var pTimes, npTimes []float64
			for id := 0; id < 16; id++ {
				res := RunRDMConfig(cfg, w, layers, hidden, p, id)
				t := res.MeanEpochTime()
				row.Times[id] = t
				if inPareto[id] {
					pTimes = append(pTimes, t)
				} else {
					npTimes = append(npTimes, t)
				}
			}
			ps, nps := sortedCopy(pTimes), sortedCopy(npTimes)
			row.ParetoMin, row.ParetoMax = ps[0], ps[len(ps)-1]
			row.NonParetoMin, row.NonParetoMax = nps[0], nps[len(nps)-1]
			row.ModelValidated = row.ParetoMin <= row.NonParetoMin
			rows = append(rows, row)
			cfg.printf("%-14s %4d %-14v %16s %18s %6v\n",
				name, p, row.ParetoIDs,
				formatRange(row.ParetoMin, row.ParetoMax),
				formatRange(row.NonParetoMin, row.NonParetoMax),
				row.ModelValidated)
		}
	}
	return rows, nil
}

// Table10Row is one dataset row of Table X: modelled per-GPU space for
// CAGNET (R_A = 1) and RDM at R_A in {2, 4, 8}, on 8 devices.
type Table10Row struct {
	Dataset string
	// Bytes[0] is CAGNET; Bytes[1..3] are RDM at R_A = 2, 4, 8.
	Bytes [4]int64
}

// RunTable10 regenerates Table X. With FullSize true the model is
// evaluated at the paper's full dataset sizes (the model is analytic, so
// no scaling is needed); otherwise at the configured scale.
func RunTable10(cfg Config, fullSize bool) ([]Table10Row, error) {
	cfg = cfg.withDefaults()
	scale := cfg.Scale
	if fullSize {
		scale = 1
	}
	cfg.printf("Per-GPU space (MB), P=8, 2-layer h=128 (scale=1/%d)\n", scale)
	cfg.printf("%-14s %10s %10s %10s %10s\n", "dataset", "CAGNET", "RA=2", "RA=4", "RA=8")
	var rows []Table10Row
	for _, name := range cfg.Datasets {
		recipeNet, err := spaceNet(name, scale)
		if err != nil {
			return nil, err
		}
		row := Table10Row{Dataset: name}
		for i, ra := range []int{1, 2, 4, 8} {
			n := recipeNet
			n.RA = ra
			row.Bytes[i] = costmodel.SpaceModel(n)
		}
		rows = append(rows, row)
		cfg.printf("%-14s %10.1f %10.1f %10.1f %10.1f\n", name,
			mb(row.Bytes[0]), mb(row.Bytes[1]), mb(row.Bytes[2]), mb(row.Bytes[3]))
	}
	return rows, nil
}

// spaceNet builds the cost-model network for the space model straight
// from the recipe (no graph materialization needed at full size: nnz is
// taken as 2x the recipe's undirected edge count plus self loops).
func spaceNet(name string, scale int) (costmodel.Network, error) {
	r, err := recipeAt(name, scale)
	if err != nil {
		return costmodel.Network{}, err
	}
	return costmodel.Network{
		Dims: []int{r.FeatureDim, 128, r.Labels},
		N:    int64(r.Vertices),
		NNZ:  2*r.Edges + int64(r.Vertices),
		P:    8,
		RA:   1,
	}, nil
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }

// recipeAt returns the (possibly scaled) recipe for a dataset.
func recipeAt(name string, scale int) (graph.Recipe, error) {
	r, err := graph.RecipeByName(name)
	if err != nil {
		return graph.Recipe{}, err
	}
	return r.Scaled(scale), nil
}
