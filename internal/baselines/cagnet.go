package baselines

import (
	"fmt"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/core"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
)

// cagnetAgg implements CAGNET's distributed SpMM with replication factor
// c. Devices form P/c groups of c consecutive ranks; group g's members
// jointly own the adjacency row panel covering their vertex ranges, with
// member j of each group holding the K-dimension column slice
// PartRange(N, c, j) of that panel.
//
// Aggregate: (1) all-to-all gathers the K_j rows of the dense operand
// (volume ≈ (P/c)·N·f total, the 1.5D regime; exactly (P-1)·N·f at c=1,
// CAGNET 1D's broadcast volume), (2) local partial SpMM over the K_j
// slice for the whole panel, (3) reduce-scatter of partials within the
// group leaves each member its own rows.
type cagnetAgg struct {
	dev  *comm.Device
	n    int
	c    int
	lo   int // own vertex range
	hi   int
	klo  int // own K slice
	khi  int
	grp  []int // my panel group (c consecutive ranks)
	part *sparse.CSR
	// grpCounts[i] = rows owned by group member i (for reduce-scatter).
	grpCounts []int
	panelRows int
	panelLo   int
}

func newCAGNETAgg(dev *comm.Device, a *sparse.CSR, c int) *cagnetAgg {
	p := dev.P()
	if c < 1 || p%c != 0 {
		panic(fmt.Sprintf("baselines: replication %d must divide P=%d", c, p))
	}
	n := a.Rows
	ag := &cagnetAgg{dev: dev, n: n, c: c}
	ag.lo, ag.hi = partRange(n, p, dev.Rank)
	g := dev.Rank / c
	j := dev.Rank % c
	ag.klo, ag.khi = partRange(n, c, j)
	panelLo, _ := partRange(n, p, g*c)
	_, panelHi := partRange(n, p, (g+1)*c-1)
	ag.panelLo, ag.panelRows = panelLo, panelHi-panelLo
	ag.part = a.RowPanel(panelLo, panelHi).ColPanel(ag.klo, ag.khi)
	for m := 0; m < c; m++ {
		mlo, mhi := partRange(n, p, g*c+m)
		ag.grp = append(ag.grp, g*c+m)
		ag.grpCounts = append(ag.grpCounts, mhi-mlo)
	}
	return ag
}

func (ag *cagnetAgg) OwnRange() (int, int) { return ag.lo, ag.hi }

func (ag *cagnetAgg) Aggregate(x *tensor.Dense) *tensor.Dense {
	dev := ag.dev
	p := dev.P()
	f := x.Cols

	// Gather the K_j rows of the global operand: every rank s needs rows
	// K_{j(s)}; send it the intersection with my owned rows.
	parts := make([][]float32, p)
	for s := 0; s < p; s++ {
		sklo, skhi := partRange(ag.n, ag.c, s%ag.c)
		rlo, rhi := max(sklo, ag.lo), min(skhi, ag.hi)
		if rlo >= rhi {
			continue
		}
		if s == dev.Rank {
			parts[s] = x.RowSlice(rlo-ag.lo, rhi-ag.lo).Data
			continue
		}
		parts[s] = append([]float32(nil), x.Data[(rlo-ag.lo)*f:(rhi-ag.lo)*f]...)
	}
	recv := dev.AllToAll(dev.World(), parts)
	bk := tensor.NewDense(ag.khi-ag.klo, f)
	for s := 0; s < p; s++ {
		if len(recv[s]) == 0 {
			continue
		}
		slo, shi := partRange(ag.n, p, s)
		rlo := max(ag.klo, slo)
		rhi := min(ag.khi, shi)
		if (rhi-rlo)*f != len(recv[s]) {
			panic("baselines: cagnet gather size mismatch")
		}
		copy(bk.Data[(rlo-ag.klo)*f:], recv[s])
	}
	dev.ChargeMem(bk.Bytes())

	// Partial product over my K slice for the whole panel.
	partial := ag.part.SpMM(bk)
	dev.ChargeSpMM(ag.part.NNZ(), f)

	// Reduce partials within the group; each member keeps its own rows.
	counts := make([]int, ag.c)
	for i, rc := range ag.grpCounts {
		counts[i] = rc * f
	}
	own := dev.ReduceScatterSum(ag.grp, partial.Data, counts)
	out := tensor.FromRowMajor(ag.hi-ag.lo, f, own)
	dev.ChargeMem(out.Bytes())
	return out
}

// Aggregator is the distributed-SpMM interface the baselines implement,
// exported so the bench harness can drive kernel-level comparisons.
type Aggregator interface {
	// Aggregate computes this device's rows of A·x.
	Aggregate(x *tensor.Dense) *tensor.Dense
	// OwnRange is this device's global vertex range [lo, hi).
	OwnRange() (lo, hi int)
}

// NewAggregator builds CAGNET's distributed SpMM aggregator with
// replication factor c for standalone (kernel-level) use.
func NewAggregator(dev *comm.Device, a *sparse.CSR, c int) Aggregator {
	return newCAGNETAgg(dev, a, c)
}

// TrainCAGNET trains a full-batch GCN with the CAGNET baseline
// (opts.Replication = 1 for the 1D algorithm, >1 for the 1.5D-style
// replicated variant).
func TrainCAGNET(p int, model *hw.Model, prob *core.Problem, opts Options, epochs int) *core.Result {
	opts = opts.withDefaults()
	if opts.Dims[0] != prob.X.Cols {
		panic("baselines: Dims[0] must equal feature width")
	}
	if opts.Replication < 1 || p%opts.Replication != 0 {
		panic(fmt.Sprintf("baselines: replication %d must divide P=%d", opts.Replication, p))
	}
	label := opts.TraceLabel
	if label == "" {
		label = fmt.Sprintf("cagnet-c%d", opts.Replication)
	}
	return runHarness(p, model, epochs, prob.N(), opts.Dims[len(opts.Dims)-1],
		opts.Tracer, label,
		func(dev *comm.Device) *vertexTrainer {
			return newVertexTrainer(dev, prob, opts, newCAGNETAgg(dev, prob.A, opts.Replication))
		})
}
