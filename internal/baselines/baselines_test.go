package baselines

import (
	"math"
	"math/rand"
	"testing"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/core"
	"gnnrdm/internal/graph"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
)

func testProblem(t testing.TB, n, fin, classes int) *core.Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	adj, comm := graph.PlantedPartition(rng, n, int64(4*n), classes, 0.8)
	return &core.Problem{
		A:      sparse.GCNNormalize(adj),
		X:      graph.SynthesizeFeatures(rng, comm, classes, fin, 0.8),
		Labels: comm,
	}
}

func refOpts(dims []int) core.Options {
	return core.Options{Dims: dims, Memoize: true, ComputeInputGrad: false, LR: 0.01, Seed: 7}
}

func TestCAGNET1DMatchesReference(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	dims := []int{12, 10, 6}
	ref := core.ReferenceTrain(prob, refOpts(dims), 3)
	for _, p := range []int{1, 2, 4} {
		res := TrainCAGNET(p, hw.A6000(), prob, Options{Dims: dims, LR: 0.01, Seed: 7}, 3)
		for ep := range ref.Losses {
			if math.Abs(res.Epochs[ep].Loss-ref.Losses[ep]) > 1e-4 {
				t.Fatalf("P=%d epoch %d: loss %v want %v", p, ep, res.Epochs[ep].Loss, ref.Losses[ep])
			}
		}
		if d := tensor.MaxAbsDiff(res.Logits, ref.Logits); d > 1e-3 {
			t.Fatalf("P=%d logits diff %v", p, d)
		}
	}
}

func TestCAGNET15DMatchesReference(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	dims := []int{12, 10, 6}
	ref := core.ReferenceTrain(prob, refOpts(dims), 3)
	for _, tc := range []struct{ p, c int }{{4, 2}, {4, 4}, {8, 2}, {8, 4}} {
		res := TrainCAGNET(tc.p, hw.A6000(), prob,
			Options{Dims: dims, LR: 0.01, Seed: 7, Replication: tc.c}, 3)
		if math.Abs(res.FinalLoss()-ref.Losses[2]) > 1e-4 {
			t.Fatalf("P=%d c=%d: loss %v want %v", tc.p, tc.c, res.FinalLoss(), ref.Losses[2])
		}
	}
}

func TestCAGNETVolumeGrowsWithP(t *testing.T) {
	// CAGNET 1D moves (P-1)·N·f per SpMM: volume grows nearly linearly.
	prob := testProblem(t, 64, 16, 8)
	dims := []int{16, 12, 8}
	vol := func(p int) int64 {
		res := TrainCAGNET(p, hw.A6000(), prob, Options{Dims: dims, Seed: 7}, 1)
		return res.Epochs[0].CommBytes
	}
	v2, v8 := vol(2), vol(8)
	if float64(v8) < 4*float64(v2) {
		t.Fatalf("CAGNET volume should grow ~(P-1): %d -> %d", v2, v8)
	}
}

func TestCAGNETReplicationReducesVolume(t *testing.T) {
	prob := testProblem(t, 64, 16, 8)
	dims := []int{16, 12, 8}
	vol := func(c int) int64 {
		res := TrainCAGNET(8, hw.A6000(), prob, Options{Dims: dims, Seed: 7, Replication: c}, 1)
		return res.Epochs[0].CommBytes
	}
	v1, v2, v4 := vol(1), vol(2), vol(4)
	// Replication trades gather volume (shrinks with c) for
	// reduce-scatter volume (grows with c): any c>1 must beat 1D, but
	// the curve need not be monotone.
	if v2 >= v1 || v4 >= v1 {
		t.Fatalf("replication must reduce volume vs 1D: c=1:%d c=2:%d c=4:%d", v1, v2, v4)
	}
}

func TestPartitionBalancedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	adj, _ := graph.PlantedPartition(rng, 200, 800, 4, 0.8)
	for _, p := range []int{2, 4, 8} {
		assign := Partition(adj, p)
		sizes := make([]int, p)
		for _, a := range assign {
			if a < 0 || int(a) >= p {
				t.Fatalf("unassigned vertex: %d", a)
			}
			sizes[a]++
		}
		cap := (200*11)/(10*p) + 1
		for q, s := range sizes {
			if s > cap {
				t.Fatalf("P=%d part %d overfull: %d > %d", p, q, s, cap)
			}
		}
	}
}

func TestPartitionBeatsRandomCut(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	adj, _ := graph.PlantedPartition(rng, 400, 2400, 4, 0.9)
	assign := Partition(adj, 4)
	cut := EdgeCut(adj, assign)
	random := make([]int32, 400)
	for i := range random {
		random[i] = int32(rng.Intn(4))
	}
	randCut := EdgeCut(adj, random)
	if cut >= randCut {
		t.Fatalf("LDG cut %d should beat random %d", cut, randCut)
	}
}

func TestEdgeCutGrowsWithP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	adj := graph.RMAT(rng, 512, 4096, 0.57, 0.19, 0.19)
	c2 := EdgeCut(adj, Partition(adj, 2))
	c8 := EdgeCut(adj, Partition(adj, 8))
	if c8 <= c2 {
		t.Fatalf("edge cut should grow with P: %d -> %d", c2, c8)
	}
}

func TestDGCLMatchesReference(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	dims := []int{12, 10, 6}
	ref := core.ReferenceTrain(prob, refOpts(dims), 3)
	for _, p := range []int{1, 2, 4} {
		res := TrainDGCL(p, hw.A6000(), prob, Options{Dims: dims, LR: 0.01, Seed: 7}, 3)
		for ep := range ref.Losses {
			if math.Abs(res.Epochs[ep].Loss-ref.Losses[ep]) > 1e-4 {
				t.Fatalf("P=%d epoch %d: loss %v want %v", p, ep, res.Epochs[ep].Loss, ref.Losses[ep])
			}
		}
		if d := tensor.MaxAbsDiff(res.Logits, ref.Logits); d > 1e-3 {
			t.Fatalf("P=%d logits diff %v (un-permutation broken?)", p, d)
		}
	}
}

func TestDGCLVolumeTracksEdgeCut(t *testing.T) {
	// DGCL's per-SpMM halo volume = cut-adjacent vertex features; on a
	// well-clustered graph it must be far below CAGNET's broadcast
	// volume at P=2 and grow with P.
	prob := testProblem(t, 256, 16, 4) // 4 clusters, pIn=0.8
	dims := []int{16, 12, 4}
	dgclVol := func(p int) int64 {
		res := TrainDGCL(p, hw.A6000(), prob, Options{Dims: dims, Seed: 7}, 1)
		return res.Epochs[0].CommBytes
	}
	d2, d8 := dgclVol(2), dgclVol(8)
	if d8 <= d2 {
		t.Fatalf("DGCL volume should grow with P: %d -> %d", d2, d8)
	}
	cagnet := TrainCAGNET(2, hw.A6000(), prob, Options{Dims: dims, Seed: 7}, 1)
	if d2 >= cagnet.Epochs[0].CommBytes {
		t.Fatalf("DGCL at P=2 (%d) should move less than CAGNET (%d)", d2, cagnet.Epochs[0].CommBytes)
	}
}

func TestPermuteProblemRoundTrip(t *testing.T) {
	prob := testProblem(t, 40, 8, 4)
	prob.TrainMask = make([]bool, 40)
	for i := 0; i < 20; i++ {
		prob.TrainMask[i] = true
	}
	assign := Partition(prob.A, 4)
	pp, bounds, perm := PermuteProblem(prob, assign, 4)
	if bounds[0] != 0 || bounds[4] != 40 {
		t.Fatalf("bad bounds %v", bounds)
	}
	// Features/labels follow the permutation.
	for newID, old := range perm {
		if pp.Labels[newID] != prob.Labels[old] {
			t.Fatal("labels not permuted")
		}
		if pp.TrainMask[newID] != prob.TrainMask[old] {
			t.Fatal("mask not permuted")
		}
		if pp.X.At(newID, 3) != prob.X.At(int(old), 3) {
			t.Fatal("features not permuted")
		}
	}
	// Adjacency conjugated by the permutation.
	inv := make([]int32, 40)
	for newID, old := range perm {
		inv[old] = int32(newID)
	}
	for i := 0; i < 40; i++ {
		for e := prob.A.RowPtr[i]; e < prob.A.RowPtr[i+1]; e++ {
			j := prob.A.ColIdx[e]
			if pp.A.At(int(inv[i]), int(inv[j])) != prob.A.Val[e] {
				t.Fatal("adjacency not conjugated correctly")
			}
		}
	}
}

func TestBaselineOptionValidation(t *testing.T) {
	prob := testProblem(t, 32, 8, 4)
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("bad dims", func() {
		TrainCAGNET(2, hw.A6000(), prob, Options{Dims: []int{9, 4}}, 1)
	})
	expectPanic("bad replication", func() {
		TrainCAGNET(4, hw.A6000(), prob, Options{Dims: []int{8, 4}, Replication: 3}, 1)
	})
}

func TestCAGNET2DSpMMCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, tc := range []struct{ n, f, p int }{{32, 16, 4}, {37, 9, 4}, {48, 24, 9}} {
		adj, _ := graph.PlantedPartition(rng, tc.n, int64(4*tc.n), 4, 0.7)
		a := sparse.GCNNormalize(adj)
		b := tensor.NewDense(tc.n, tc.f)
		b.Randomize(rng, 1)
		want := a.SpMM(b)
		blocks := make([]*tensor.Dense, tc.p)
		comm.Run(tc.p, hw.A6000(), func(d *comm.Device) {
			g := NewCAGNET2D(d, a)
			blocks[d.Rank] = g.SpMM(Distribute2D(d, b), tc.f)
		})
		got := Assemble2D(blocks, tc.n, tc.f)
		if diff := tensor.MaxAbsDiff(got, want); diff > 1e-4 {
			t.Fatalf("n=%d f=%d p=%d: diff %v", tc.n, tc.f, tc.p, diff)
		}
	}
}

func TestCAGNET2DRequiresSquareP(t *testing.T) {
	fab := comm.NewFabric(2, hw.A6000())
	a := sparse.FromCoords(4, 4, []sparse.Coord{{Row: 0, Col: 1, Val: 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-square P")
		}
	}()
	NewCAGNET2D(fab.Device(0), a)
}

func TestCSRCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	adj, _ := graph.PlantedPartition(rng, 30, 120, 3, 0.7)
	a := sparse.GCNNormalize(adj)
	b := decodeCSR(encodeCSR(a))
	if b.Rows != a.Rows || b.Cols != a.Cols || b.NNZ() != a.NNZ() {
		t.Fatal("codec corrupted shape")
	}
	if tensor.MaxAbsDiff(a.ToDense(), b.ToDense()) != 0 {
		t.Fatal("codec corrupted values")
	}
}

// TestCAGNET2DMovesSparseMatrix verifies the 2D scheme's defining cost:
// it broadcasts adjacency blocks (volume grows with nnz), which the
// 1D/1.5D and RDM schemes never do.
func TestCAGNET2DMovesSparseMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n, f, p := 64, 4, 4
	vol := func(edges int64) int64 {
		adj, _ := graph.PlantedPartition(rng, n, edges, 4, 0.7)
		a := sparse.GCNNormalize(adj)
		b := tensor.NewDense(n, f)
		b.Randomize(rng, 1)
		fab := comm.Run(p, hw.A6000(), func(d *comm.Device) {
			NewCAGNET2D(d, a).SpMM(Distribute2D(d, b), f)
		})
		return fab.TotalVolume()
	}
	sparse1, dense1 := vol(int64(2*n)), vol(int64(16*n))
	if dense1 <= sparse1 {
		t.Fatalf("denser adjacency must move more data in 2D: %d vs %d", sparse1, dense1)
	}
}
