package baselines

import (
	"sort"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/core"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
)

// Partition assigns each vertex to one of p parts with the LDG (linear
// deterministic greedy) streaming heuristic in BFS order: each vertex
// goes to the part holding most of its neighbours, discounted by how full
// the part is, under a hard 1.1x balance cap. Deterministic.
func Partition(adj *sparse.CSR, p int) []int32 {
	n := adj.Rows
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	sizes := make([]int, p)
	capacity := (n*11)/(10*p) + 1

	// BFS order with restarts (deterministic: lowest unvisited vertex).
	order := make([]int32, 0, n)
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], int32(start))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for e := adj.RowPtr[v]; e < adj.RowPtr[v+1]; e++ {
				u := adj.ColIdx[e]
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}

	for _, v := range order {
		bestPart, bestScore := -1, -1.0
		for q := 0; q < p; q++ {
			if sizes[q] >= capacity {
				continue
			}
			nbrs := 0
			for e := adj.RowPtr[v]; e < adj.RowPtr[v+1]; e++ {
				if assign[adj.ColIdx[e]] == int32(q) {
					nbrs++
				}
			}
			score := float64(nbrs+1) * (1 - float64(sizes[q])/float64(capacity))
			if score > bestScore {
				bestPart, bestScore = q, score
			}
		}
		assign[v] = int32(bestPart)
		sizes[bestPart]++
	}
	return assign
}

// EdgeCut counts the stored adjacency entries whose endpoints live in
// different parts.
func EdgeCut(adj *sparse.CSR, assign []int32) int64 {
	var cut int64
	for i := 0; i < adj.Rows; i++ {
		for e := adj.RowPtr[i]; e < adj.RowPtr[i+1]; e++ {
			if assign[i] != assign[adj.ColIdx[e]] {
				cut++
			}
		}
	}
	return cut
}

// PermuteProblem reorders a problem so each part's vertices are
// contiguous (part-major, original order within a part), returning the
// permuted problem, the per-part boundaries (len p+1), and perm with
// perm[new] = old.
func PermuteProblem(prob *core.Problem, assign []int32, p int) (*core.Problem, []int, []int32) {
	n := prob.N()
	perm := make([]int32, 0, n)
	bounds := make([]int, p+1)
	for q := 0; q < p; q++ {
		for v := 0; v < n; v++ {
			if assign[v] == int32(q) {
				perm = append(perm, int32(v))
			}
		}
		bounds[q+1] = len(perm)
	}
	inv := make([]int32, n)
	for newID, old := range perm {
		inv[old] = int32(newID)
	}
	// Permute adjacency.
	coords := make([]sparse.Coord, 0, prob.A.NNZ())
	for i := 0; i < n; i++ {
		for e := prob.A.RowPtr[i]; e < prob.A.RowPtr[i+1]; e++ {
			coords = append(coords, sparse.Coord{
				Row: inv[i], Col: inv[prob.A.ColIdx[e]], Val: prob.A.Val[e],
			})
		}
	}
	out := &core.Problem{
		A:      sparse.FromCoords(n, n, coords),
		X:      tensor.NewDense(n, prob.X.Cols),
		Labels: make([]int32, n),
	}
	if prob.TrainMask != nil {
		out.TrainMask = make([]bool, n)
	}
	for newID, old := range perm {
		copy(out.X.Row(newID), prob.X.Row(int(old)))
		out.Labels[newID] = prob.Labels[old]
		if prob.TrainMask != nil {
			out.TrainMask[newID] = prob.TrainMask[old]
		}
	}
	return out, bounds, perm
}

// dgclAgg implements partition-based aggregation: each SpMM exchanges
// only the boundary ("halo") features crossed by cut edges, so
// communication volume is edgeCutFraction·N·f-like — small for few
// parts, growing with P.
type dgclAgg struct {
	dev    *comm.Device
	lo, hi int
	// needFrom[s] lists (global, permuted) vertex IDs owned by s that my
	// panel's rows reference; sendTo[s] lists my vertices s needs.
	needFrom, sendTo [][]int32
	// panelExt is my adjacency rows with columns remapped to
	// [own | halo-by-(owner,index)] local indices.
	panelExt *sparse.CSR
	extRows  int
}

func newDGCLAgg(dev *comm.Device, a *sparse.CSR, bounds []int) *dgclAgg {
	p := dev.P()
	ag := &dgclAgg{dev: dev, lo: bounds[dev.Rank], hi: bounds[dev.Rank+1]}
	owner := func(v int32) int {
		return sort.SearchInts(bounds[1:], int(v)+1)
	}
	// Collect halo needs per owner.
	needSet := make([]map[int32]bool, p)
	for s := range needSet {
		needSet[s] = make(map[int32]bool)
	}
	for i := ag.lo; i < ag.hi; i++ {
		for e := a.RowPtr[i]; e < a.RowPtr[i+1]; e++ {
			c := a.ColIdx[e]
			if int(c) < ag.lo || int(c) >= ag.hi {
				needSet[owner(c)][c] = true
			}
		}
	}
	ag.needFrom = make([][]int32, p)
	extIdx := make(map[int32]int32)
	own := ag.hi - ag.lo
	next := int32(own)
	for s := 0; s < p; s++ {
		ids := make([]int32, 0, len(needSet[s]))
		for v := range needSet[s] {
			ids = append(ids, v)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		ag.needFrom[s] = ids
		for _, v := range ids {
			extIdx[v] = next
			next++
		}
	}
	ag.extRows = int(next)
	// Remap my panel.
	panel := a.RowPanel(ag.lo, ag.hi)
	remapped := &sparse.CSR{
		Rows: panel.Rows, Cols: ag.extRows,
		RowPtr: panel.RowPtr,
		ColIdx: make([]int32, len(panel.ColIdx)),
		Val:    panel.Val,
	}
	for i, c := range panel.ColIdx {
		if int(c) >= ag.lo && int(c) < ag.hi {
			remapped.ColIdx[i] = c - int32(ag.lo)
		} else {
			remapped.ColIdx[i] = extIdx[c]
		}
	}
	ag.panelExt = remapped

	// Exchange need lists so every device knows what to send. The lists
	// are metadata exchanged once at setup (like DGCL's partition plan);
	// we ship them through the fabric so the volume is accounted.
	ag.sendTo = make([][]int32, p)
	parts := make([][]float32, p)
	for q := 0; q < p; q++ {
		ids := ag.needFrom[q]
		buf := make([]float32, len(ids))
		for i, v := range ids {
			buf[i] = float32(v)
		}
		parts[q] = buf
	}
	recv := dev.AllToAll(dev.World(), parts)
	for q := 0; q < p; q++ {
		ids := make([]int32, len(recv[q]))
		for i, v := range recv[q] {
			ids[i] = int32(v)
		}
		ag.sendTo[q] = ids
	}
	return ag
}

func (ag *dgclAgg) OwnRange() (int, int) { return ag.lo, ag.hi }

func (ag *dgclAgg) Aggregate(x *tensor.Dense) *tensor.Dense {
	dev := ag.dev
	p := dev.P()
	f := x.Cols
	// Halo exchange: pack requested rows per destination.
	parts := make([][]float32, p)
	for s := 0; s < p; s++ {
		ids := ag.sendTo[s]
		if len(ids) == 0 {
			continue
		}
		buf := make([]float32, 0, len(ids)*f)
		for _, v := range ids {
			buf = append(buf, x.Row(int(v)-ag.lo)...)
		}
		parts[s] = buf
	}
	recv := dev.AllToAll(dev.World(), parts)
	ext := tensor.NewDense(ag.extRows, f)
	ext.SetRowSlice(0, x)
	at := ag.hi - ag.lo
	for s := 0; s < p; s++ {
		ids := ag.needFrom[s]
		if len(ids) == 0 {
			continue
		}
		if len(recv[s]) != len(ids)*f {
			panic("baselines: dgcl halo size mismatch")
		}
		copy(ext.Data[at*f:], recv[s])
		at += len(ids)
	}
	dev.ChargeMem(ext.Bytes())
	out := ag.panelExt.SpMM(ext)
	dev.ChargeSpMM(ag.panelExt.NNZ(), f)
	return out
}

// TrainDGCL trains a full-batch GCN with the DGCL-like partition-based
// baseline. The problem is partitioned and permuted internally; the
// returned logits are restored to the original vertex order.
func TrainDGCL(p int, model *hw.Model, prob *core.Problem, opts Options, epochs int) *core.Result {
	opts = opts.withDefaults()
	if opts.Dims[0] != prob.X.Cols {
		panic("baselines: Dims[0] must equal feature width")
	}
	assign := Partition(prob.A, p)
	permProb, bounds, perm := PermuteProblem(prob, assign, p)
	label := opts.TraceLabel
	if label == "" {
		label = "dgcl"
	}
	res := runHarness(p, model, epochs, prob.N(), opts.Dims[len(opts.Dims)-1],
		opts.Tracer, label,
		func(dev *comm.Device) *vertexTrainer {
			return newVertexTrainer(dev, permProb, opts, newDGCLAgg(dev, permProb.A, bounds))
		})
	// Un-permute logits to original vertex order.
	orig := tensor.NewDense(res.Logits.Rows, res.Logits.Cols)
	for newID, old := range perm {
		copy(orig.Row(int(old)), res.Logits.Row(newID))
	}
	res.Logits = orig
	return res
}
