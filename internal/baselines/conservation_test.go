// Trace-conservation checks for the baseline trainers via the
// internal/verify oracle. External test package — and verify must never
// import baselines, so this direction stays acyclic.
package baselines_test

import (
	"testing"

	"gnnrdm/internal/baselines"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/trace"
	"gnnrdm/internal/verify"
)

// TestBaselineTracesConserve runs each baseline traced and checks the
// conservation ledger: monotone per-device timelines and every
// collective round recorded by all participants with identical bytes.
// The baselines do not expose their fabric, so the meter cross-check is
// skipped (nil fabric).
func TestBaselineTracesConserve(t *testing.T) {
	prob := verify.DefaultProblem(19, 32, 8, 4)
	dims := []int{8, 6, 4}
	cases := []struct {
		name string
		run  func(tr *trace.Tracer)
	}{
		{"cagnet-1d", func(tr *trace.Tracer) {
			baselines.TrainCAGNET(4, hw.A6000(), prob, baselines.Options{Dims: dims, LR: 0.01, Seed: 7, Tracer: tr}, 2)
		}},
		{"cagnet-15d", func(tr *trace.Tracer) {
			baselines.TrainCAGNET(4, hw.A6000(), prob, baselines.Options{Dims: dims, LR: 0.01, Seed: 7, Replication: 2, Tracer: tr}, 2)
		}},
		{"dgcl", func(tr *trace.Tracer) {
			baselines.TrainDGCL(4, hw.A6000(), prob, baselines.Options{Dims: dims, LR: 0.01, Seed: 7, Tracer: tr}, 2)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tr := trace.NewTracer(0)
			tc.run(tr)
			sessions := tr.Sessions()
			if len(sessions) == 0 {
				t.Fatal("baseline run recorded no trace session")
			}
			for _, s := range sessions {
				verify.CheckFabricSession(t, nil, s)
			}
		})
	}
}
