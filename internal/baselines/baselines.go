// Package baselines implements the two state-of-the-art distributed GNN
// systems the paper compares against, re-implemented on the same
// simulated fabric as GNN-RDM so comparisons are same-substrate:
//
//   - CAGNET (Tripathy et al., SC'20): vertex-partitioned full-batch GCN
//     whose SpMM gathers the dense operand across devices. Replication
//     factor c=1 is the 1D algorithm (each SpMM moves (P-1)·N·f
//     elements); c>1 is the 1.5D-style variant that stores the adjacency
//     c-way replicated, gathers only 1/c of the dense operand per device,
//     and reduce-scatters partial products.
//
//   - DGCL (Cai et al., EuroSys'21): partition-based training. The graph
//     is partitioned to minimize edge cut (greedy LDG streaming
//     partitioner); each SpMM exchanges only boundary ("halo") features,
//     so communication is proportional to the edge cut — small at P=2,
//     growing with P.
//
// Both keep every dense matrix vertex-sliced (horizontal) at all times —
// no RDM redistributions — and share the training harness in this file.
package baselines

import (
	"math"
	"math/rand"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/core"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/nn"
	"gnnrdm/internal/tensor"
	"gnnrdm/internal/trace"
)

// Options configures a baseline trainer.
type Options struct {
	// Dims is f_0..f_L.
	Dims []int
	// LR is the Adam learning rate; Seed the weight-init seed.
	LR   float64
	Seed int64
	// Replication is CAGNET's adjacency replication factor c (1 = 1D,
	// 2 = 1.5D-style). Ignored by DGCL.
	Replication int
	// Tracer, when non-nil, records this run into one trace session, so
	// baseline timelines are directly comparable with RDM traces.
	Tracer *trace.Tracer
	// TraceLabel names the trace session (default "cagnet"/"dgcl").
	TraceLabel string
}

func (o Options) withDefaults() Options {
	if o.LR == 0 {
		o.LR = 0.01
	}
	if o.Replication == 0 {
		o.Replication = 1
	}
	return o
}

// aggregator abstracts the one operation the two baselines implement
// differently: the distributed SpMM T = A·X over vertex-sliced X.
type aggregator interface {
	// Aggregate computes this device's rows of A·x, where x holds this
	// device's owned rows of the global dense operand.
	Aggregate(x *tensor.Dense) *tensor.Dense
	// OwnRange is this device's global vertex range [lo, hi).
	OwnRange() (lo, hi int)
}

// vertexTrainer is the shared full-batch GCN harness over an aggregator:
// forward T=A·H then Z=T·W; loss; backward T_b=A·G, Y=(H)ᵀT_b (+
// all-reduce), G' = (T_b·Wᵀ)⊙σ'; Adam. All matrices stay vertex-sliced.
type vertexTrainer struct {
	dev     *comm.Device
	prob    *core.Problem
	opts    Options
	agg     aggregator
	weights []*tensor.Dense
	adam    *nn.Adam
	ep      int

	lastLogits *tensor.Dense
	lastLoss   float64
}

func newVertexTrainer(dev *comm.Device, prob *core.Problem, opts Options, agg aggregator) *vertexTrainer {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	vt := &vertexTrainer{dev: dev, prob: prob, opts: opts, agg: agg}
	for l := 1; l < len(opts.Dims); l++ {
		w := tensor.NewDense(opts.Dims[l-1], opts.Dims[l])
		w.GlorotInit(rng)
		vt.weights = append(vt.weights, w)
	}
	vt.adam = nn.NewAdam(opts.LR, vt.weights)
	return vt
}

func (vt *vertexTrainer) epoch() float64 {
	L := len(vt.opts.Dims) - 1
	lo, hi := vt.agg.OwnRange()
	dev := vt.dev
	dev.TraceSetEpoch(vt.ep)
	vt.ep++
	dev.TraceBeginPhase("epoch")
	defer dev.TraceEndPhase()

	// Forward, memoizing the aggregated inputs T^l = (A·H^{l-1})|own.
	dev.TraceSetDir("fwd")
	dev.TraceBeginPhase("forward")
	hs := make([]*tensor.Dense, L+1)
	ts := make([]*tensor.Dense, L+1)
	hs[0] = vt.prob.X.RowSlice(lo, hi)
	for l := 1; l <= L; l++ {
		dev.TraceSetLayer(l)
		dev.TraceBeginPhase("layer")
		t := vt.agg.Aggregate(hs[l-1])
		ts[l] = t
		z := tensor.MatMul(t, vt.weights[l-1])
		dev.ChargeGemm(t.Rows, t.Cols, z.Cols)
		if l < L {
			z.ReLU()
			dev.ChargeMem(z.Bytes())
		}
		hs[l] = z
		dev.TraceEndPhase()
	}
	dev.TraceSetLayer(0)
	dev.TraceEndPhase()
	dev.TraceSetDir("")

	// Loss over owned rows, globally normalized.
	var mask []bool
	if vt.prob.TrainMask != nil {
		mask = vt.prob.TrainMask[lo:hi]
	}
	lossSum, grad, count := nn.SoftmaxCrossEntropySum(hs[L], vt.prob.Labels[lo:hi], mask)
	dev.ChargeMem(2 * hs[L].Bytes())
	tot := dev.AllReduceSum(dev.World(), []float32{float32(lossSum), float32(count)})
	if tot[1] > 0 {
		grad.Scale(float32(1.0 / float64(tot[1])))
		vt.lastLoss = float64(tot[0]) / float64(tot[1])
	}
	vt.lastLogits = hs[L]

	// Backward.
	dev.TraceSetDir("bwd")
	dev.TraceBeginPhase("backward")
	grads := make([]*tensor.Dense, L)
	g := grad
	for l := L; l >= 1; l-- {
		dev.TraceSetLayer(l)
		dev.TraceBeginPhase("layer")
		tb := vt.agg.Aggregate(g)
		partial := tensor.MatMulTA(hs[l-1], tb)
		dev.ChargeGemm(hs[l-1].Cols, hs[l-1].Rows, tb.Cols)
		sum := dev.AllReduceSum(dev.World(), partial.Data)
		grads[l-1] = tensor.FromRowMajor(partial.Rows, partial.Cols, sum)
		if l > 1 {
			g = tensor.MatMulTB(tb, vt.weights[l-1])
			dev.ChargeGemm(tb.Rows, tb.Cols, vt.weights[l-1].Rows)
			for i, v := range hs[l-1].Data {
				if v <= 0 {
					g.Data[i] = 0
				}
			}
			dev.ChargeMem(g.Bytes())
		}
		dev.TraceEndPhase()
	}
	dev.TraceSetLayer(0)
	dev.TraceEndPhase()
	dev.TraceSetDir("")
	vt.adam.Step(vt.weights, grads)
	var wBytes int64
	for _, w := range vt.weights {
		wBytes += w.Bytes()
	}
	dev.ChargeMem(4 * wBytes)
	return vt.lastLoss
}

// runHarness executes the shared epoch loop with the same metric
// collection as core.Train, for any per-device trainer factory. ranges
// gives each device's owned global vertex range for logit assembly.
func runHarness(p int, model *hw.Model, epochs int, n, fL int,
	tracer *trace.Tracer, traceLabel string,
	mk func(dev *comm.Device) *vertexTrainer) *core.Result {

	fabric := comm.NewFabric(p, model)
	fabric.SetTracer(tracer, traceLabel)
	trainers := make([]*vertexTrainer, p)
	stats := make([][]core.EpochStats, p)
	volumes := make([]int64, epochs)

	fabric.Run(func(d *comm.Device) {
		vt := mk(d)
		trainers[d.Rank] = vt
		var prevClock, prevComm, prevComp float64
		for ep := 0; ep < epochs; ep++ {
			loss := vt.epoch()
			d.Barrier(d.World())
			if d.Rank == 0 {
				volumes[ep] = fabric.TotalVolume()
			}
			stats[d.Rank] = append(stats[d.Rank], core.EpochStats{
				Loss:        loss,
				Time:        d.Clock() - prevClock,
				CommTime:    d.CommTime() - prevComm,
				ComputeTime: d.ComputeTime() - prevComp,
			})
			prevClock, prevComm, prevComp = d.Clock(), d.CommTime(), d.ComputeTime()
			d.Barrier(d.World())
		}
	})

	res := &core.Result{Weights: trainers[0].weights}
	var prevVol int64
	for ep := 0; ep < epochs; ep++ {
		es := core.EpochStats{Loss: stats[0][ep].Loss, CommBytes: volumes[ep] - prevVol}
		prevVol = volumes[ep]
		for r := 0; r < p; r++ {
			s := stats[r][ep]
			es.Time = math.Max(es.Time, s.Time)
			es.CommTime = math.Max(es.CommTime, s.CommTime)
			es.ComputeTime = math.Max(es.ComputeTime, s.ComputeTime)
		}
		res.Epochs = append(res.Epochs, es)
	}
	res.Logits = tensor.NewDense(n, fL)
	for r := 0; r < p; r++ {
		lo, _ := trainers[r].agg.OwnRange()
		res.Logits.SetRowSlice(lo, trainers[r].lastLogits)
	}
	return res
}

// partRange re-exports the balanced partition arithmetic used for
// CAGNET's vertex slicing.
func partRange(n, parts, i int) (int, int) { return dist.PartRange(n, parts, i) }
