package baselines

import (
	"fmt"
	"math"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
)

// CAGNET2D implements CAGNET's 2D SUMMA-style distributed SpMM on a
// √P × √P device grid: both the sparse matrix and the dense operand are
// partitioned in 2D blocks, and each of the √P stages broadcasts one
// sparse block column within grid rows and one dense block row within
// grid columns. Unlike the 1D/1.5D schemes it also moves the *sparse*
// matrix — the trade-off the paper's redistribution approach avoids
// entirely. Provided as a kernel-level comparator (CAGNET evaluates its
// SpMM algorithms the same way).
type CAGNET2D struct {
	dev  *comm.Device
	q    int // grid side
	i, j int // grid coordinates
	n    int
	// ownA is A's block (i, j) — the only block this device owns; the
	// blocks needed at each SUMMA stage arrive by broadcast at run time.
	ownA     *sparse.CSR
	rowGroup []int // ranks in my grid row (broadcast domain for A blocks)
	colGroup []int // ranks in my grid column (broadcast domain for B blocks)
}

// NewCAGNET2D slices this device's sparse block out of a. P must be a
// perfect square.
func NewCAGNET2D(dev *comm.Device, a *sparse.CSR) *CAGNET2D {
	p := dev.P()
	q := int(math.Round(math.Sqrt(float64(p))))
	if q*q != p {
		panic(fmt.Sprintf("baselines: CAGNET 2D needs a square device count, got P=%d", p))
	}
	if a.Rows != a.Cols {
		panic("baselines: CAGNET 2D needs a square sparse matrix")
	}
	g := &CAGNET2D{dev: dev, q: q, i: dev.Rank / q, j: dev.Rank % q, n: a.Rows}
	rlo, rhi := dist.PartRange(a.Rows, q, g.i)
	clo, chi := dist.PartRange(a.Cols, q, g.j)
	g.ownA = a.RowPanel(rlo, rhi).ColPanel(clo, chi)
	for t := 0; t < q; t++ {
		g.rowGroup = append(g.rowGroup, g.i*q+t)
		g.colGroup = append(g.colGroup, t*q+g.j)
	}
	return g
}

// BlockShape returns this device's dense block shape for a global N x f
// operand: rows PartRange(N, q, i) x cols PartRange(f, q, j).
func (g *CAGNET2D) BlockShape(f int) (rows, cols int) {
	rlo, rhi := dist.PartRange(g.n, g.q, g.i)
	clo, chi := dist.PartRange(f, g.q, g.j)
	return rhi - rlo, chi - clo
}

// SpMM computes this device's block of C = A·B, where bLocal is this
// device's 2D block of the global N x f dense operand.
func (g *CAGNET2D) SpMM(bLocal *tensor.Dense, f int) *tensor.Dense {
	wantR, wantC := g.BlockShape(f)
	if bLocal.Rows != wantR || bLocal.Cols != wantC {
		panic(fmt.Sprintf("baselines: 2D block shape %dx%d, want %dx%d",
			bLocal.Rows, bLocal.Cols, wantR, wantC))
	}
	out := tensor.NewDense(wantR, bLocal.Cols)
	for k := 0; k < g.q; k++ {
		// Broadcast A block (i, k) within grid row i from column-k owner.
		var aPayload []float32
		if g.j == k {
			aPayload = encodeCSR(g.ownA)
		}
		aPayload = g.dev.Broadcast(g.rowGroup, g.i*g.q+k, aPayload)
		aBlock := decodeCSR(aPayload)

		// Broadcast B block (k, j) within grid column j from row-k owner.
		var bPayload []float32
		if g.i == k {
			bPayload = bLocal.Data
		}
		bPayload = g.dev.Broadcast(g.colGroup, k*g.q+g.j, bPayload)
		bBlock := tensor.FromRowMajor(aBlock.Cols, bLocal.Cols, bPayload)

		// Accumulate C(i,j) += A(i,k) · B(k,j).
		partial := aBlock.SpMM(bBlock)
		g.dev.ChargeSpMM(aBlock.NNZ(), bBlock.Cols)
		out.Add(partial)
	}
	g.dev.ChargeMem(out.Bytes())
	return out
}

// encodeCSR serializes a CSR into a float32 payload (bit-stuffed int32
// indices), so sparse blocks can travel over the float fabric the way
// NCCL ships raw bytes. Layout: [rows, cols, nnz, rowptr..., colidx...,
// vals...].
func encodeCSR(m *sparse.CSR) []float32 {
	nnz := int(m.NNZ())
	out := make([]float32, 0, 3+m.Rows+1+2*nnz)
	out = append(out, intBits(m.Rows), intBits(m.Cols), intBits(nnz))
	for _, v := range m.RowPtr {
		out = append(out, intBits(int(v)))
	}
	for _, c := range m.ColIdx {
		out = append(out, intBits(int(c)))
	}
	out = append(out, m.Val...)
	return out
}

// decodeCSR reverses encodeCSR.
func decodeCSR(buf []float32) *sparse.CSR {
	rows, cols, nnz := bitsInt(buf[0]), bitsInt(buf[1]), bitsInt(buf[2])
	m := &sparse.CSR{
		Rows: rows, Cols: cols,
		RowPtr: make([]int64, rows+1),
		ColIdx: make([]int32, nnz),
		Val:    make([]float32, nnz),
	}
	at := 3
	for i := range m.RowPtr {
		m.RowPtr[i] = int64(bitsInt(buf[at]))
		at++
	}
	for i := range m.ColIdx {
		m.ColIdx[i] = int32(bitsInt(buf[at]))
		at++
	}
	copy(m.Val, buf[at:at+nnz])
	return m
}

func intBits(v int) float32 { return math.Float32frombits(uint32(int32(v))) }
func bitsInt(f float32) int { return int(int32(math.Float32bits(f))) }

// Assemble2D reconstructs the global dense matrix from all devices' 2D
// blocks (test/collection helper; no fabric use).
func Assemble2D(blocks []*tensor.Dense, n, f int) *tensor.Dense {
	p := len(blocks)
	q := int(math.Round(math.Sqrt(float64(p))))
	out := tensor.NewDense(n, f)
	for r := 0; r < p; r++ {
		i, j := r/q, r%q
		rlo, _ := dist.PartRange(n, q, i)
		clo, _ := dist.PartRange(f, q, j)
		b := blocks[r]
		for rr := 0; rr < b.Rows; rr++ {
			copy(out.Row(rlo + rr)[clo:clo+b.Cols], b.Row(rr))
		}
	}
	return out
}

// Distribute2D slices this device's 2D block out of a global matrix.
func Distribute2D(dev *comm.Device, global *tensor.Dense) *tensor.Dense {
	p := dev.P()
	q := int(math.Round(math.Sqrt(float64(p))))
	i, j := dev.Rank/q, dev.Rank%q
	rlo, rhi := dist.PartRange(global.Rows, q, i)
	clo, chi := dist.PartRange(global.Cols, q, j)
	return global.RowSlice(rlo, rhi).ColSlice(clo, chi)
}
