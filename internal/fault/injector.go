package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"gnnrdm/internal/comm"
)

// Injector executes a Schedule against a comm fabric. One Injector
// spans an entire elastic run: after a crash shrinks the world, Remap
// points it at the survivors and event fire-counts persist, so each
// scheduled flip/drop executes at most once even when checkpoint
// rollback replays its trigger epoch.
//
// Determinism: crash/slow/degrade decisions read only immutable schedule
// state and the observing device's own fields; flip/drop decisions fire
// exclusively on world-group rounds, which are totally ordered (every
// device participates), so concurrent subgroup rounds can never race the
// fire-counts into a schedule-order-dependent state. Flip bit positions
// come from a per-event RNG seeded by (seed, event index), independent
// of execution interleaving.
type Injector struct {
	sched *Schedule
	seed  int64

	orig []int       // orig[fabricRank] = original rank
	fab  map[int]int // original rank -> fabric rank, live ranks only

	mu    sync.Mutex
	fired []int // per-event fire count (Flip, Drop)
}

// NewInjector creates an injector for a full world of p ranks (fabric
// rank == original rank until the first Remap).
func NewInjector(s *Schedule, seed int64, p int) *Injector {
	in := &Injector{sched: s, seed: seed, fired: make([]int, len(s.Events))}
	world := make([]int, p)
	for i := range world {
		world[i] = i
	}
	in.Remap(world)
	return in
}

// Remap points the injector at a re-formed world: orig[fabricRank] is
// the original rank each surviving device represents. Events addressing
// dead original ranks deactivate.
func (in *Injector) Remap(orig []int) {
	in.orig = append([]int(nil), orig...)
	in.fab = make(map[int]int, len(orig))
	for f, o := range orig {
		in.fab[o] = f
	}
}

// Arm applies the schedule's standing perturbations (stragglers, link
// degradation) to a fabric and attaches the injector as its fault hook
// when any crash/flip/drop events are pending. Call after Remap, before
// fabric.Run.
func (in *Injector) Arm(f *comm.Fabric) {
	hookNeeded := false
	for i, ev := range in.sched.Events {
		if ev.Kind == Partition {
			// A cut is pending while unfired and both sides still
			// have live members; Rank alone (GroupA[0]) may be dead
			// without deactivating the event.
			if in.fired[i] < fireLimit(ev) && in.groupsLive(ev) {
				hookNeeded = true
			}
			continue
		}
		fr, live := in.fab[ev.Rank]
		if !live {
			continue
		}
		switch ev.Kind {
		case Slow:
			f.Device(fr).SetComputeSlowdown(ev.Factor)
		case Degrade:
			f.SetLinkFault(fr, ev.Alpha, ev.Beta)
		case Crash:
			hookNeeded = true
		case Flip, Drop:
			if in.fired[i] < fireLimit(ev) {
				hookNeeded = true
			}
		}
	}
	if hookNeeded {
		f.SetFaultHook(in)
	}
}

func fireLimit(ev Event) int {
	if ev.Kind == Drop {
		return ev.Count
	}
	return 1
}

// groupsLive reports whether both sides of a partition still hold at
// least one live member; a cut whose side is entirely dead is inert.
func (in *Injector) groupsLive(ev Event) bool {
	side := func(g []int) bool {
		for _, r := range g {
			if _, live := in.fab[r]; live {
				return true
			}
		}
		return false
	}
	return side(ev.GroupA) && side(ev.GroupB)
}

// AtEpochStart fires epoch-triggered crashes: a device whose original
// rank is scheduled to crash at this epoch panics with comm.Killed,
// which Fabric.Run contains (peers see ErrPeerDead). Drivers call it on
// every device at the top of each epoch.
func (in *Injector) AtEpochStart(d *comm.Device, epoch int) {
	o := in.orig[d.Rank]
	for _, ev := range in.sched.Events {
		if ev.Kind == Crash && ev.Rank == o && ev.Epoch == epoch {
			panic(comm.Killed{Rank: d.Rank, Reason: ev.String()})
		}
	}
}

// BeforeCollective fires time-triggered crashes: the device dies at its
// first collective after its simulated clock passes the scheduled time.
func (in *Injector) BeforeCollective(d *comm.Device, op string) {
	o := in.orig[d.Rank]
	for _, ev := range in.sched.Events {
		if ev.Kind == Crash && ev.Rank == o && ev.Epoch < 0 && d.Clock() >= ev.Time {
			panic(comm.Killed{Rank: d.Rank, Reason: ev.String()})
		}
	}
}

// OnRound executes flip, drop, and partition events on world-group
// rounds. Drops and partitions take precedence: a failed round carries
// no corruption, so a pending flip waits for the next round. Flips mutate the scheduled rank's
// deposited payload in place; with the CRC side-channel enabled the
// fabric detects and rolls the flip back (a retried round), without it
// the corruption propagates into training.
func (in *Injector) OnRound(d *comm.Device, op string, group []int, seq uint64, slots []any) error {
	if len(group) != d.P() {
		return nil // subgroup rounds are exempt, keeping firing totally ordered
	}
	epoch := d.FaultEpoch()
	if epoch < 0 {
		return nil // recovery traffic is not a fault target
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, ev := range in.sched.Events {
		if (ev.Kind != Drop && ev.Kind != Partition) || ev.Epoch != epoch || in.fired[i] >= fireLimit(ev) {
			continue
		}
		if ev.Kind == Partition {
			if !in.groupsLive(ev) {
				continue
			}
		} else if _, live := in.fab[ev.Rank]; !live {
			continue
		}
		in.fired[i]++
		return fmt.Errorf("%s (round %d of %s): %w", ev, seq, op, comm.ErrTransient)
	}
	for i, ev := range in.sched.Events {
		if ev.Kind != Flip || ev.Epoch != epoch || in.fired[i] > 0 {
			continue
		}
		fr, live := in.fab[ev.Rank]
		if !live {
			continue
		}
		if flipPayloadBit(slots[fr], rand.New(rand.NewSource(in.seed^int64(i+1)*0x9E3779B9))) {
			in.fired[i]++
		}
		// Payload-less rounds (barriers) leave the flip pending for the
		// next world round of the epoch.
	}
	return nil
}

// flipPayloadBit flips one seeded-random low-mantissa bit of one
// element of the payload (keeping the value finite: sign/exponent bits
// stay intact so corruption perturbs training instead of producing
// NaN/Inf immediately). Returns false when the payload holds no
// elements.
func flipPayloadBit(payload any, rng *rand.Rand) bool {
	var bufs [][]float32
	switch v := payload.(type) {
	case []float32:
		bufs = [][]float32{v}
	case [][]float32:
		bufs = v
	default:
		return false
	}
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	if total == 0 {
		return false
	}
	idx := rng.Intn(total)
	bit := uint(rng.Intn(22)) // low mantissa bits only
	for _, b := range bufs {
		if idx < len(b) {
			b[idx] = math.Float32frombits(math.Float32bits(b[idx]) ^ (1 << bit))
			return true
		}
		idx -= len(b)
	}
	return false
}

// RandomSchedule draws a small reproducible chaos schedule for a world
// of p ranks (p >= 3) training for the given epochs (>= 2): one or two
// crashes plus, on coin flips, a straggler, a degraded link, a payload
// flip, and a transient drop. The same seed always yields the same
// schedule.
func RandomSchedule(seed int64, p, epochs int) *Schedule {
	if p < 3 || epochs < 2 {
		panic("fault: RandomSchedule needs p >= 3 and epochs >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{}
	nCrash := 1 + rng.Intn(2)
	perm := rng.Perm(p)
	for i := 0; i < nCrash; i++ {
		s.Events = append(s.Events, Event{
			Kind: Crash, Rank: perm[i], Epoch: 1 + rng.Intn(epochs-1),
		})
	}
	victim := func() int { return perm[nCrash+rng.Intn(p-nCrash)] }
	if rng.Intn(2) == 0 {
		s.Events = append(s.Events, Event{Kind: Slow, Rank: victim(), Epoch: -1,
			Factor: 1.25 + rng.Float64()})
	}
	if rng.Intn(2) == 0 {
		s.Events = append(s.Events, Event{Kind: Degrade, Rank: victim(), Epoch: -1,
			Alpha: 1 + rng.Float64()*3, Beta: 1 + rng.Float64()*3})
	}
	if rng.Intn(2) == 0 {
		s.Events = append(s.Events, Event{Kind: Flip, Rank: victim(), Epoch: rng.Intn(epochs)})
	}
	if rng.Intn(2) == 0 {
		s.Events = append(s.Events, Event{Kind: Drop, Rank: victim(), Epoch: rng.Intn(epochs),
			Count: 1 + rng.Intn(2)})
	}
	return s
}
