package fault

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestParseScheduleGrammar(t *testing.T) {
	cases := []struct {
		in   string
		want []Event
	}{
		{"", nil},
		{"   ", nil},
		{"crash@rank2:epoch3", []Event{{Kind: Crash, Rank: 2, Epoch: 3}}},
		{"crash@rank5:t0.25", []Event{{Kind: Crash, Rank: 5, Epoch: -1, Time: 0.25}}},
		{"slow@rank0:1.5x", []Event{{Kind: Slow, Rank: 0, Epoch: -1, Factor: 1.5}}},
		{"degrade@rank1:alpha2:beta4", []Event{{Kind: Degrade, Rank: 1, Epoch: -1, Alpha: 2, Beta: 4}}},
		{"flip@rank3:epoch1", []Event{{Kind: Flip, Rank: 3, Epoch: 1}}},
		{"drop@rank0:epoch2", []Event{{Kind: Drop, Rank: 0, Epoch: 2, Count: 1}}},
		{"drop@rank0:epoch2:n3", []Event{{Kind: Drop, Rank: 0, Epoch: 2, Count: 3}}},
		{"partition@0+1|2+3:epoch2", []Event{{Kind: Partition, Rank: 0, Epoch: 2,
			GroupA: []int{0, 1}, GroupB: []int{2, 3}}}},
		// Non-canonical group spec: members sort, smallest-min group first.
		{"partition@3+2|1+0:epoch1", []Event{{Kind: Partition, Rank: 0, Epoch: 1,
			GroupA: []int{0, 1}, GroupB: []int{2, 3}}}},
		{"partition@5|4:epoch0", []Event{{Kind: Partition, Rank: 4, Epoch: 0,
			GroupA: []int{4}, GroupB: []int{5}}}},
		{
			"crash@rank2:epoch3, slow@rank0:1.5x",
			[]Event{{Kind: Crash, Rank: 2, Epoch: 3}, {Kind: Slow, Rank: 0, Epoch: -1, Factor: 1.5}},
		},
	}
	for _, c := range cases {
		got, err := ParseSchedule(c.in)
		if err != nil {
			t.Errorf("ParseSchedule(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got.Events, c.want) {
			t.Errorf("ParseSchedule(%q) = %+v, want %+v", c.in, got.Events, c.want)
		}
	}
}

func TestParseScheduleRejects(t *testing.T) {
	bad := []string{
		"crash",                      // no '@'
		"crash@epoch3",               // no rank
		"crash@rank2",                // no trigger
		"crash@rank2:epoch3:extra",   // too many args
		"crash@rank2:t0",             // non-positive time
		"crash@rank2:t-1",            // negative time
		"crash@rank-2:epoch3",        // negative rank
		"boom@rank0:epoch1",          // unknown kind
		"slow@rank0:1.5",             // missing x suffix
		"slow@rank0:0.5x",            // factor <= 1
		"slow@rank0:NaNx",            // non-finite
		"degrade@rank0:alpha2",       // missing beta
		"degrade@rank0:alpha0:beta2", // alpha < 1
		"flip@rank0:epochx",          // bad epoch
		"drop@rank0:epoch1:n0",       // count < 1
		"crash@rank0:epoch1,,",       // empty event
		"partition@0+1:epoch1",       // no '|'
		"partition@0+1|2+3",          // no epoch
		"partition@|0:epoch1",        // empty group
		"partition@0+0|1:epoch1",     // duplicate within a group
		"partition@0+1|1+2:epoch1",   // groups overlap
		"partition@0+x|1:epoch1",     // bad rank
		"partition@-1|0:epoch1",      // negative rank
		"partition@0|1|2:epoch1",     // three groups
	}
	for _, s := range bad {
		if _, err := ParseSchedule(s); err == nil {
			t.Errorf("ParseSchedule(%q) accepted, want error", s)
		}
	}
}

func TestScheduleStringRoundTrip(t *testing.T) {
	in := "crash@rank2:epoch3,crash@rank5:t0.25,slow@rank0:1.5x," +
		"degrade@rank1:alpha2:beta4.5,flip@rank3:epoch1,drop@rank0:epoch2:n2," +
		"partition@0+1|2+3:epoch2"
	s, err := ParseSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != in {
		t.Fatalf("String() = %q, want %q", got, in)
	}
	re, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re, s) {
		t.Fatalf("round trip changed schedule: %+v vs %+v", re, s)
	}
}

// TestScheduleValidateRankErrors: every event kind addressing a rank
// outside the world surfaces a typed *RankError naming the event, the
// offending rank, and the world size — the entry-validation contract
// Train and TrainElastic expose.
func TestScheduleValidateRankErrors(t *testing.T) {
	cases := []struct {
		sched string
		p     int
		rank  int // offending rank; -1 means the schedule is valid
	}{
		{"crash@rank7:epoch1", 8, -1},
		{"crash@rank7:epoch1", 4, 7},
		{"crash@rank7:t0.5", 4, 7},
		{"slow@rank4:2x", 4, 4},
		{"degrade@rank9:alpha2:beta2", 8, 9},
		{"flip@rank8:epoch0", 8, 8},
		{"drop@rank100:epoch1:n2", 16, 100},
		{"partition@0+1|2+3:epoch1", 4, -1},
		{"partition@0+1|2+5:epoch1", 4, 5}, // group member out of world
		{"partition@0+9|1:epoch1", 4, 9},   // GroupA member beyond Rank
		{"crash@rank0:epoch1,partition@0|1:epoch2", 2, -1},
	}
	for _, c := range cases {
		s, err := ParseSchedule(c.sched)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", c.sched, err)
		}
		err = s.Validate(c.p)
		if c.rank < 0 {
			if err != nil {
				t.Errorf("Validate(%q, %d): unexpected error %v", c.sched, c.p, err)
			}
			continue
		}
		var re *RankError
		if !errors.As(err, &re) {
			t.Errorf("Validate(%q, %d) = %v, want *RankError", c.sched, c.p, err)
			continue
		}
		if re.Rank != c.rank || re.P != c.p {
			t.Errorf("Validate(%q, %d): RankError{Rank: %d, P: %d}, want rank %d",
				c.sched, c.p, re.Rank, re.P, c.rank)
		}
	}
	all, _ := ParseSchedule("crash@rank0:epoch1,crash@rank1:epoch1")
	err := all.Validate(2)
	if err == nil {
		t.Fatal("schedule crashing every rank accepted")
	}
	var re *RankError
	if errors.As(err, &re) {
		t.Fatalf("crash-all error misreported as RankError: %v", err)
	}
}

func TestScheduleCrashes(t *testing.T) {
	s, err := ParseSchedule("crash@rank5:epoch1,flip@rank2:epoch0,crash@rank1:t0.5,crash@rank5:epoch3")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Crashes(); !reflect.DeepEqual(got, []int{1, 5}) {
		t.Fatalf("Crashes() = %v, want [1 5]", got)
	}
}

func TestRandomScheduleIsReproducibleAndValid(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := RandomSchedule(seed, 8, 4)
		b := RandomSchedule(seed, 8, 4)
		if a.String() != b.String() {
			t.Fatalf("seed %d: schedules differ: %q vs %q", seed, a, b)
		}
		if err := a.Validate(8); err != nil {
			t.Fatalf("seed %d: invalid schedule %q: %v", seed, a, err)
		}
		if len(a.Crashes()) == 0 {
			t.Fatalf("seed %d: chaos schedule %q has no crash", seed, a)
		}
		// Crash epochs must leave epoch 0 intact so training starts.
		if strings.Contains(a.String(), "epoch0,crash") {
			t.Fatalf("seed %d: crash at epoch 0 in %q", seed, a)
		}
	}
}
