package fault

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseScheduleGrammar(t *testing.T) {
	cases := []struct {
		in   string
		want []Event
	}{
		{"", nil},
		{"   ", nil},
		{"crash@rank2:epoch3", []Event{{Kind: Crash, Rank: 2, Epoch: 3}}},
		{"crash@rank5:t0.25", []Event{{Kind: Crash, Rank: 5, Epoch: -1, Time: 0.25}}},
		{"slow@rank0:1.5x", []Event{{Kind: Slow, Rank: 0, Epoch: -1, Factor: 1.5}}},
		{"degrade@rank1:alpha2:beta4", []Event{{Kind: Degrade, Rank: 1, Epoch: -1, Alpha: 2, Beta: 4}}},
		{"flip@rank3:epoch1", []Event{{Kind: Flip, Rank: 3, Epoch: 1}}},
		{"drop@rank0:epoch2", []Event{{Kind: Drop, Rank: 0, Epoch: 2, Count: 1}}},
		{"drop@rank0:epoch2:n3", []Event{{Kind: Drop, Rank: 0, Epoch: 2, Count: 3}}},
		{
			"crash@rank2:epoch3, slow@rank0:1.5x",
			[]Event{{Kind: Crash, Rank: 2, Epoch: 3}, {Kind: Slow, Rank: 0, Epoch: -1, Factor: 1.5}},
		},
	}
	for _, c := range cases {
		got, err := ParseSchedule(c.in)
		if err != nil {
			t.Errorf("ParseSchedule(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got.Events, c.want) {
			t.Errorf("ParseSchedule(%q) = %+v, want %+v", c.in, got.Events, c.want)
		}
	}
}

func TestParseScheduleRejects(t *testing.T) {
	bad := []string{
		"crash",                      // no '@'
		"crash@epoch3",               // no rank
		"crash@rank2",                // no trigger
		"crash@rank2:epoch3:extra",   // too many args
		"crash@rank2:t0",             // non-positive time
		"crash@rank2:t-1",            // negative time
		"crash@rank-2:epoch3",        // negative rank
		"boom@rank0:epoch1",          // unknown kind
		"slow@rank0:1.5",             // missing x suffix
		"slow@rank0:0.5x",            // factor <= 1
		"slow@rank0:NaNx",            // non-finite
		"degrade@rank0:alpha2",       // missing beta
		"degrade@rank0:alpha0:beta2", // alpha < 1
		"flip@rank0:epochx",          // bad epoch
		"drop@rank0:epoch1:n0",       // count < 1
		"crash@rank0:epoch1,,",       // empty event
	}
	for _, s := range bad {
		if _, err := ParseSchedule(s); err == nil {
			t.Errorf("ParseSchedule(%q) accepted, want error", s)
		}
	}
}

func TestScheduleStringRoundTrip(t *testing.T) {
	in := "crash@rank2:epoch3,crash@rank5:t0.25,slow@rank0:1.5x," +
		"degrade@rank1:alpha2:beta4.5,flip@rank3:epoch1,drop@rank0:epoch2:n2"
	s, err := ParseSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != in {
		t.Fatalf("String() = %q, want %q", got, in)
	}
	re, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re, s) {
		t.Fatalf("round trip changed schedule: %+v vs %+v", re, s)
	}
}

func TestScheduleValidate(t *testing.T) {
	s, err := ParseSchedule("crash@rank7:epoch1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(8); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if err := s.Validate(4); err == nil {
		t.Fatal("rank 7 accepted in a 4-rank world")
	}
	all, _ := ParseSchedule("crash@rank0:epoch1,crash@rank1:epoch1")
	if err := all.Validate(2); err == nil {
		t.Fatal("schedule crashing every rank accepted")
	}
}

func TestScheduleCrashes(t *testing.T) {
	s, err := ParseSchedule("crash@rank5:epoch1,flip@rank2:epoch0,crash@rank1:t0.5,crash@rank5:epoch3")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Crashes(); !reflect.DeepEqual(got, []int{1, 5}) {
		t.Fatalf("Crashes() = %v, want [1 5]", got)
	}
}

func TestRandomScheduleIsReproducibleAndValid(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := RandomSchedule(seed, 8, 4)
		b := RandomSchedule(seed, 8, 4)
		if a.String() != b.String() {
			t.Fatalf("seed %d: schedules differ: %q vs %q", seed, a, b)
		}
		if err := a.Validate(8); err != nil {
			t.Fatalf("seed %d: invalid schedule %q: %v", seed, a, err)
		}
		if len(a.Crashes()) == 0 {
			t.Fatalf("seed %d: chaos schedule %q has no crash", seed, a)
		}
		// Crash epochs must leave epoch 0 intact so training starts.
		if strings.Contains(a.String(), "epoch0,crash") {
			t.Fatalf("seed %d: crash at epoch 0 in %q", seed, a)
		}
	}
}
