package fault

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/hw"
)

func mustParse(t *testing.T, s string) *Schedule {
	t.Helper()
	sched, err := ParseSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

func runBounded(t *testing.T, f *comm.Fabric, fn func(d *comm.Device)) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(fn)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("fabric.Run did not terminate")
	}
}

func TestEpochCrashKillsScheduledRankOnly(t *testing.T) {
	const p, epochs = 4, 4
	inj := NewInjector(mustParse(t, "crash@rank1:epoch2"), 1, p)
	f := comm.NewFabric(p, hw.A6000())
	inj.Arm(f)
	var mu sync.Mutex
	failedAt := make(map[int]int)
	runBounded(t, f, func(d *comm.Device) {
		for ep := 0; ep < epochs; ep++ {
			d.SetFaultEpoch(ep)
			inj.AtEpochStart(d, ep)
			if err := d.TryBarrier(d.World()); err != nil {
				if !errors.Is(err, comm.ErrPeerDead) {
					t.Errorf("rank %d: got %v, want ErrPeerDead", d.Rank, err)
				}
				mu.Lock()
				failedAt[d.Rank] = ep
				mu.Unlock()
				return
			}
		}
	})
	for _, r := range []int{0, 2, 3} {
		if ep, ok := failedAt[r]; !ok || ep != 2 {
			t.Fatalf("rank %d failed at epoch %v, want exactly epoch 2", r, failedAt[r])
		}
	}
}

func TestTimeCrashFiresAtScheduledClock(t *testing.T) {
	inj := NewInjector(mustParse(t, "crash@rank0:t0.5"), 1, 2)
	f := comm.NewFabric(2, hw.A6000())
	inj.Arm(f)
	var mu sync.Mutex
	var survivorErr error
	runBounded(t, f, func(d *comm.Device) {
		d.SetFaultEpoch(0)
		// Advance simulated time past the trigger with compute, then hit
		// a collective: rank 0 must die there, not during compute.
		d.ChargeMem(int64(0.6 * 6.0e11)) // ~0.6 simulated seconds
		err := d.TryBarrier(d.World())
		if d.Rank == 1 {
			mu.Lock()
			survivorErr = err
			mu.Unlock()
		}
	})
	if !errors.Is(survivorErr, comm.ErrPeerDead) {
		t.Fatalf("survivor got %v, want ErrPeerDead", survivorErr)
	}
}

func TestDropIsRetriedToSuccess(t *testing.T) {
	inj := NewInjector(mustParse(t, "drop@rank0:epoch0:n2"), 1, 2)
	f := comm.NewFabric(2, hw.A6000())
	f.SetRetryPolicy(comm.RetryPolicy{Max: 3, Backoff: 10e-6, Multiplier: 2})
	inj.Arm(f)
	runBounded(t, f, func(d *comm.Device) {
		d.SetFaultEpoch(0)
		out, err := d.TryAllReduceSum(d.World(), []float32{1})
		if err != nil {
			t.Errorf("rank %d: dropped round not retried to success: %v", d.Rank, err)
			return
		}
		if out[0] != 2 {
			t.Errorf("rank %d: wrong sum %v after retries", d.Rank, out)
		}
	})
	// Two dropped rounds plus backoffs, then the clean round.
	if f.Device(0).Clock() <= hw.A6000().CollectiveTime(hw.OpAllReduce, 2, 4) {
		t.Fatal("retries charged no simulated time")
	}
}

func TestDropWithoutRetryBudgetSurfacesFaultError(t *testing.T) {
	inj := NewInjector(mustParse(t, "drop@rank0:epoch0"), 1, 2)
	f := comm.NewFabric(2, hw.A6000())
	inj.Arm(f)
	runBounded(t, f, func(d *comm.Device) {
		_, err := d.TryAllReduceSum(d.World(), []float32{1})
		var fe *comm.FaultError
		if !errors.As(err, &fe) || !errors.Is(err, comm.ErrTransient) {
			t.Errorf("rank %d: got %v, want FaultError wrapping ErrTransient", d.Rank, err)
		}
	})
}

func TestPartitionFailsOneRoundThenHeals(t *testing.T) {
	inj := NewInjector(mustParse(t, "partition@0+1|2+3:epoch1"), 1, 4)
	f := comm.NewFabric(4, hw.A6000())
	f.SetRetryPolicy(comm.RetryPolicy{Max: 3, Backoff: 10e-6, Multiplier: 2})
	inj.Arm(f)
	runBounded(t, f, func(d *comm.Device) {
		for ep := 0; ep < 3; ep++ {
			d.SetFaultEpoch(ep)
			out, err := d.TryAllReduceSum(d.World(), []float32{1})
			if err != nil {
				t.Errorf("rank %d epoch %d: partition not healed by retry: %v", d.Rank, ep, err)
				return
			}
			if out[0] != 4 {
				t.Errorf("rank %d epoch %d: wrong sum %v", d.Rank, ep, out)
			}
		}
	})
	// The cut costs exactly one failed round plus backoff at epoch 1.
	clean := hw.A6000().CollectiveTime(hw.OpAllReduce, 4, 4) * 3
	if f.Device(0).CommTime() <= clean {
		t.Fatal("partition charged no retry time")
	}
}

func TestPartitionWithoutRetrySurfacesTransient(t *testing.T) {
	inj := NewInjector(mustParse(t, "partition@0|1:epoch0"), 1, 2)
	f := comm.NewFabric(2, hw.A6000())
	inj.Arm(f)
	runBounded(t, f, func(d *comm.Device) {
		d.SetFaultEpoch(0)
		_, err := d.TryAllReduceSum(d.World(), []float32{1})
		if !errors.Is(err, comm.ErrTransient) {
			t.Errorf("rank %d: got %v, want ErrTransient", d.Rank, err)
		}
	})
}

func TestPartitionInertWhenSideDead(t *testing.T) {
	inj := NewInjector(mustParse(t, "crash@rank2:epoch0,partition@0+1|2:epoch1"), 1, 3)
	inj.Remap([]int{0, 1}) // rank 2 died: GroupB has no live member
	f := comm.NewFabric(2, hw.A6000())
	inj.Arm(f)
	runBounded(t, f, func(d *comm.Device) {
		d.SetFaultEpoch(1)
		if _, err := d.TryAllReduceSum(d.World(), []float32{1}); err != nil {
			t.Errorf("rank %d: dead-sided partition still fired: %v", d.Rank, err)
		}
	})
}

func TestFlipIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []float32 {
		inj := NewInjector(mustParse(t, "flip@rank1:epoch0"), seed, 2)
		f := comm.NewFabric(2, hw.A6000())
		inj.Arm(f)
		var out []float32
		runBounded(t, f, func(d *comm.Device) {
			d.SetFaultEpoch(0)
			sum, err := d.TryAllReduceSum(d.World(), []float32{1, 2, 3, 4})
			if err != nil {
				t.Errorf("rank %d: %v", d.Rank, err)
				return
			}
			if d.Rank == 0 {
				out = sum
			}
		})
		return out
	}
	clean := []float32{2, 4, 6, 8}
	a1, a2 := run(7), run(7)
	corrupted := false
	for i := range clean {
		if a1[i] != a2[i] {
			t.Fatalf("same seed produced different corruption: %v vs %v", a1, a2)
		}
		if a1[i] != clean[i] {
			corrupted = true
		}
	}
	if !corrupted {
		t.Fatalf("flip did not corrupt the payload: %v", a1)
	}
}

func TestFlipCaughtByCRCFiresOnce(t *testing.T) {
	inj := NewInjector(mustParse(t, "flip@rank0:epoch0"), 3, 2)
	f := comm.NewFabric(2, hw.A6000())
	f.EnableCRC(true)
	f.SetRetryPolicy(comm.DefaultRetryPolicy())
	inj.Arm(f)
	runBounded(t, f, func(d *comm.Device) {
		d.SetFaultEpoch(0)
		out, err := d.TryAllReduceSum(d.World(), []float32{1, 2})
		if err != nil {
			t.Errorf("rank %d: CRC retry failed: %v", d.Rank, err)
			return
		}
		if out[0] != 2 || out[1] != 4 {
			t.Errorf("rank %d: corruption survived CRC retry: %v", d.Rank, out)
		}
	})
}

func TestNegativeFaultEpochSuppressesRoundEvents(t *testing.T) {
	inj := NewInjector(mustParse(t, "drop@rank0:epoch0"), 1, 2)
	f := comm.NewFabric(2, hw.A6000())
	inj.Arm(f)
	runBounded(t, f, func(d *comm.Device) {
		d.SetFaultEpoch(-1) // recovery phase marker
		if _, err := d.TryAllReduceSum(d.World(), []float32{1}); err != nil {
			t.Errorf("rank %d: recovery-phase round was faulted: %v", d.Rank, err)
		}
	})
}

func TestRemapDeactivatesDeadRanks(t *testing.T) {
	inj := NewInjector(mustParse(t, "crash@rank1:epoch0,slow@rank1:2x,drop@rank1:epoch0"), 1, 3)
	inj.Remap([]int{0, 2}) // rank 1 died; fabric ranks now map to originals 0 and 2
	f := comm.NewFabric(2, hw.A6000())
	inj.Arm(f)
	runBounded(t, f, func(d *comm.Device) {
		d.SetFaultEpoch(0)
		inj.AtEpochStart(d, 0) // must NOT panic: rank 1 is gone
		if _, err := d.TryAllReduceSum(d.World(), []float32{1}); err != nil {
			t.Errorf("rank %d: dead rank's drop still fired: %v", d.Rank, err)
		}
	})
}

func TestArmAppliesSlowAndDegrade(t *testing.T) {
	inj := NewInjector(mustParse(t, "slow@rank0:2x,degrade@rank1:alpha2:beta2"), 1, 2)
	f := comm.NewFabric(2, hw.A6000())
	inj.Arm(f)
	base := hw.A6000()
	runBounded(t, f, func(d *comm.Device) {
		d.ChargeGemm(32, 32, 32)
		d.Barrier(d.World())
	})
	slowT := f.Device(0).ComputeTime()
	fastT := f.Device(1).ComputeTime()
	if slowT <= fastT*1.9 {
		t.Fatalf("straggler compute %g not ~2x of %g", slowT, fastT)
	}
	// The barrier pays the degraded latency of rank 1's link.
	if got := f.Device(0).CommTime(); got < base.LinkLatency*2*0.999 {
		t.Fatalf("degraded barrier comm time %g, want ~%g", got, base.LinkLatency*2)
	}
}
