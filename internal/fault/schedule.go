// Package fault is the deterministic fault-injection layer of the
// simulated fabric: a parsed schedule of machine faults (rank crashes,
// stragglers, link degradation, payload bit-flips, transient round
// drops) and an Injector that executes it against an internal/comm
// fabric through the FaultHook interface. Every decision is driven by
// simulated state (epochs, simulated clocks) and a fixed seed — never
// wall time — so the same schedule and seed reproduce the identical
// fault sequence, metered bytes, and trace, byte for byte. See
// RESILIENCE.md for the full fault model.
package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the fault event types of the schedule grammar.
type Kind int

const (
	// Crash kills a rank at the start of an epoch (crash@rankR:epochE)
	// or at the first collective once its simulated clock passes a time
	// (crash@rankR:tSECONDS).
	Crash Kind = iota
	// Slow makes a rank a straggler: compute kernels take Factor× their
	// modelled time (slow@rankR:FACTORx).
	Slow
	// Degrade multiplies a rank's link latency by Alpha and divides its
	// bandwidth by Beta (degrade@rankR:alphaA:betaB).
	Degrade
	// Flip corrupts one bit of the rank's contribution to the first
	// world-group collective round of an epoch (flip@rankR:epochE). The
	// bit position is drawn from the injector's seeded RNG.
	Flip
	// Drop fails Count consecutive world-group rounds of an epoch with
	// a transient error (drop@rankR:epochE[:nK], default n1), exercising
	// the fabric's retry/backoff path.
	Drop
	// Partition symmetrically cuts the links between two disjoint rank
	// groups at the first world-group round of an epoch
	// (partition@A+B|C+D:epochE): both sides observe one transient
	// failure, healed by the fabric's retry path once the cut lifts. A
	// persistent cut would deadlock a bulk-synchronous world by design,
	// so the grammar models the transient healable case.
	Partition
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Slow:
		return "slow"
	case Degrade:
		return "degrade"
	case Flip:
		return "flip"
	case Drop:
		return "drop"
	case Partition:
		return "partition"
	}
	return "unknown"
}

// Event is one scheduled fault. Rank always addresses the ORIGINAL rank
// numbering of the full world; after an elastic shrink the injector
// remaps it onto the surviving fabric, and events whose rank has died
// deactivate.
type Event struct {
	Kind   Kind
	Rank   int
	Epoch  int     // Crash/Flip/Drop epoch trigger; -1 when unused
	Time   float64 // Crash simulated-time trigger; 0 when unused
	Factor float64 // Slow multiplier (> 1)
	Alpha  float64 // Degrade latency multiplier (>= 1)
	Beta   float64 // Degrade bandwidth divisor (>= 1)
	Count  int     // Drop round count (>= 1)
	// GroupA and GroupB are the two sides of a Partition, each sorted
	// ascending with the group holding the smallest rank first (the
	// canonical form String emits); Rank mirrors GroupA[0]. Nil for
	// every other kind.
	GroupA []int
	GroupB []int
}

// Schedule is an ordered list of fault events, parsed from the -faults
// flag grammar: comma-separated events like
//
//	crash@rank2:epoch3,slow@rank0:1.5x,degrade@rank1:alpha2:beta4,
//	flip@rank3:epoch1,drop@rank0:epoch2:n2,crash@rank5:t0.25
type Schedule struct {
	Events []Event
}

// ParseSchedule parses the -faults grammar. An empty (or all-blank)
// string is a valid empty schedule. The result round-trips through
// String: ParseSchedule(s.String()) reproduces s exactly.
func ParseSchedule(s string) (*Schedule, error) {
	sched := &Schedule{}
	if strings.TrimSpace(s) == "" {
		return sched, nil
	}
	for _, tok := range strings.Split(s, ",") {
		ev, err := parseEvent(strings.TrimSpace(tok))
		if err != nil {
			return nil, err
		}
		sched.Events = append(sched.Events, ev)
	}
	return sched, nil
}

func parseEvent(tok string) (Event, error) {
	fail := func(format string, args ...any) (Event, error) {
		return Event{}, fmt.Errorf("fault: event %q: %s", tok, fmt.Sprintf(format, args...))
	}
	kind, rest, ok := strings.Cut(tok, "@")
	if !ok {
		return fail("missing '@'")
	}
	fields := strings.Split(rest, ":")
	if kind == "partition" {
		if len(fields) != 2 {
			return fail("partition takes A+B|C+D:epochN")
		}
		ev := Event{Kind: Partition}
		var err error
		if ev.GroupA, ev.GroupB, err = parseGroups(fields[0]); err != nil {
			return fail("%v", err)
		}
		ev.Rank = ev.GroupA[0]
		if ev.Epoch, err = prefixedInt(fields[1], "epoch"); err != nil {
			return fail("%v", err)
		}
		return ev, nil
	}
	rank, err := prefixedInt(fields[0], "rank")
	if err != nil {
		return fail("%v", err)
	}
	ev := Event{Rank: rank, Epoch: -1}
	args := fields[1:]
	switch kind {
	case "crash":
		ev.Kind = Crash
		if len(args) != 1 {
			return fail("crash takes exactly one trigger (epochN or tSECONDS)")
		}
		switch {
		case strings.HasPrefix(args[0], "epoch"):
			if ev.Epoch, err = prefixedInt(args[0], "epoch"); err != nil {
				return fail("%v", err)
			}
		case strings.HasPrefix(args[0], "t"):
			if ev.Time, err = prefixedFloat(args[0], "t"); err != nil {
				return fail("%v", err)
			}
			if ev.Time <= 0 {
				return fail("crash time must be positive")
			}
		default:
			return fail("trigger %q is neither epochN nor tSECONDS", args[0])
		}
	case "slow":
		ev.Kind = Slow
		if len(args) != 1 || !strings.HasSuffix(args[0], "x") {
			return fail("slow takes exactly one FACTORx argument")
		}
		if ev.Factor, err = parseFloat(strings.TrimSuffix(args[0], "x")); err != nil {
			return fail("%v", err)
		}
		if ev.Factor <= 1 {
			return fail("slowdown factor must exceed 1")
		}
	case "degrade":
		ev.Kind = Degrade
		if len(args) != 2 {
			return fail("degrade takes alphaA:betaB")
		}
		if ev.Alpha, err = prefixedFloat(args[0], "alpha"); err != nil {
			return fail("%v", err)
		}
		if ev.Beta, err = prefixedFloat(args[1], "beta"); err != nil {
			return fail("%v", err)
		}
		if ev.Alpha < 1 || ev.Beta < 1 {
			return fail("degrade multipliers must be >= 1")
		}
	case "flip":
		ev.Kind = Flip
		if len(args) != 1 {
			return fail("flip takes exactly one epochN argument")
		}
		if ev.Epoch, err = prefixedInt(args[0], "epoch"); err != nil {
			return fail("%v", err)
		}
	case "drop":
		ev.Kind = Drop
		ev.Count = 1
		if len(args) < 1 || len(args) > 2 {
			return fail("drop takes epochN with an optional :nK")
		}
		if ev.Epoch, err = prefixedInt(args[0], "epoch"); err != nil {
			return fail("%v", err)
		}
		if len(args) == 2 {
			if ev.Count, err = prefixedInt(args[1], "n"); err != nil {
				return fail("%v", err)
			}
			if ev.Count < 1 {
				return fail("drop count must be >= 1")
			}
		}
	default:
		return fail("unknown fault kind %q", kind)
	}
	return ev, nil
}

// parseGroups parses the A+B|C+D side spec of a partition event into
// its canonical form: both groups sorted ascending, the group holding
// the overall smallest rank first, no empty groups, no rank named
// twice.
func parseGroups(s string) (a, b []int, err error) {
	left, right, ok := strings.Cut(s, "|")
	if !ok {
		return nil, nil, fmt.Errorf("expected two '|'-separated rank groups, got %q", s)
	}
	parseGroup := func(g string) ([]int, error) {
		var out []int
		for _, f := range strings.Split(g, "+") {
			v, err := strconv.Atoi(f)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("bad rank %q in group %q", f, g)
			}
			out = append(out, v)
		}
		sortInts(out)
		return out, nil
	}
	if a, err = parseGroup(left); err != nil {
		return nil, nil, err
	}
	if b, err = parseGroup(right); err != nil {
		return nil, nil, err
	}
	seen := map[int]bool{}
	for _, g := range [][]int{a, b} {
		for _, r := range g {
			if seen[r] {
				return nil, nil, fmt.Errorf("rank %d appears twice across the partition groups", r)
			}
			seen[r] = true
		}
	}
	if b[0] < a[0] {
		a, b = b, a
	}
	return a, b, nil
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func joinRanks(v []int) string {
	parts := make([]string, len(v))
	for i, r := range v {
		parts[i] = strconv.Itoa(r)
	}
	return strings.Join(parts, "+")
}

func prefixedInt(s, prefix string) (int, error) {
	body, ok := strings.CutPrefix(s, prefix)
	if !ok {
		return 0, fmt.Errorf("expected %s<N>, got %q", prefix, s)
	}
	v, err := strconv.Atoi(body)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad %s value %q", prefix, body)
	}
	return v, nil
}

func prefixedFloat(s, prefix string) (float64, error) {
	body, ok := strings.CutPrefix(s, prefix)
	if !ok {
		return 0, fmt.Errorf("expected %s<F>, got %q", prefix, s)
	}
	return parseFloat(body)
}

func parseFloat(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("bad numeric value %q", s)
	}
	return v, nil
}

// String renders the canonical grammar form of the schedule; it parses
// back to an identical schedule.
func (s *Schedule) String() string {
	parts := make([]string, len(s.Events))
	for i, ev := range s.Events {
		parts[i] = ev.String()
	}
	return strings.Join(parts, ",")
}

func (ev Event) String() string {
	switch ev.Kind {
	case Crash:
		if ev.Epoch >= 0 {
			return fmt.Sprintf("crash@rank%d:epoch%d", ev.Rank, ev.Epoch)
		}
		return fmt.Sprintf("crash@rank%d:t%s", ev.Rank, fmtFloat(ev.Time))
	case Slow:
		return fmt.Sprintf("slow@rank%d:%sx", ev.Rank, fmtFloat(ev.Factor))
	case Degrade:
		return fmt.Sprintf("degrade@rank%d:alpha%s:beta%s", ev.Rank, fmtFloat(ev.Alpha), fmtFloat(ev.Beta))
	case Flip:
		return fmt.Sprintf("flip@rank%d:epoch%d", ev.Rank, ev.Epoch)
	case Drop:
		return fmt.Sprintf("drop@rank%d:epoch%d:n%d", ev.Rank, ev.Epoch, ev.Count)
	case Partition:
		return fmt.Sprintf("partition@%s|%s:epoch%d", joinRanks(ev.GroupA), joinRanks(ev.GroupB), ev.Epoch)
	}
	return "?"
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// RankError reports a schedule event addressing a rank that does not
// exist in the world the schedule was validated against. Train and
// TrainElastic surface it from their entry validation so callers can
// distinguish a misaddressed schedule from runtime faults with
// errors.As.
type RankError struct {
	Event Event // the offending event
	Rank  int   // the out-of-world rank it addresses
	P     int   // the world size validated against
}

func (e *RankError) Error() string {
	return fmt.Sprintf("fault: event %s addresses rank %d of a %d-rank world", e.Event, e.Rank, e.P)
}

// Validate checks the schedule against a world of p ranks: every event
// must address only existing ranks (a *RankError otherwise — for a
// partition, every member of both groups) and the crash set must leave
// at least one survivor.
func (s *Schedule) Validate(p int) error {
	crashed := map[int]bool{}
	for _, ev := range s.Events {
		if ev.Kind == Partition {
			for _, g := range [][]int{ev.GroupA, ev.GroupB} {
				for _, r := range g {
					if r >= p {
						return &RankError{Event: ev, Rank: r, P: p}
					}
				}
			}
			continue
		}
		if ev.Rank >= p {
			return &RankError{Event: ev, Rank: ev.Rank, P: p}
		}
		if ev.Kind == Crash {
			crashed[ev.Rank] = true
		}
	}
	if len(crashed) >= p {
		return fmt.Errorf("fault: schedule crashes all %d ranks; at least one must survive", p)
	}
	return nil
}

// Crashes returns the distinct ranks the schedule ever crashes, sorted.
func (s *Schedule) Crashes() []int {
	seen := map[int]bool{}
	var out []int
	for _, ev := range s.Events {
		if ev.Kind == Crash && !seen[ev.Rank] {
			seen[ev.Rank] = true
			out = append(out, ev.Rank)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
