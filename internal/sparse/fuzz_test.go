package sparse

import (
	"testing"
)

// FuzzFromCoords drives COO→CSR construction with arbitrary coordinate
// streams (duplicates, empty rows, unsorted input) and checks the CSR
// invariants plus exact element semantics. Values are small integers so
// duplicate summation is order-independent in float32 and comparisons
// can be exact.
func FuzzFromCoords(f *testing.F) {
	f.Add([]byte{8, 8, 0, 0, 1, 3, 5, 2, 3, 5, 4}) // duplicate (3,5)
	f.Add([]byte{1, 1, 0, 0, 7})
	f.Add([]byte{16, 2})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		r := 1 + int(data[0])%24
		c := 1 + int(data[1])%24
		body := data[2:]
		coords := make([]Coord, 0, len(body)/3)
		for i := 0; i+2 < len(body); i += 3 {
			coords = append(coords, Coord{
				Row: int32(int(body[i]) % r),
				Col: int32(int(body[i+1]) % c),
				Val: float32(int8(body[i+2])),
			})
		}
		// Reference semantics: order-independent coordinate sum.
		want := make(map[[2]int32]float32)
		for _, e := range coords {
			want[[2]int32{e.Row, e.Col}] += e.Val
		}

		m := FromCoords(r, c, coords)

		if m.Rows != r || m.Cols != c {
			t.Fatalf("shape %dx%d want %dx%d", m.Rows, m.Cols, r, c)
		}
		if m.RowPtr[0] != 0 || m.RowPtr[r] != int64(len(m.ColIdx)) || len(m.ColIdx) != len(m.Val) {
			t.Fatalf("inconsistent CSR arrays: ptr0=%d ptrN=%d cols=%d vals=%d",
				m.RowPtr[0], m.RowPtr[r], len(m.ColIdx), len(m.Val))
		}
		for i := 0; i < r; i++ {
			if m.RowPtr[i] > m.RowPtr[i+1] {
				t.Fatalf("row pointers not monotone at row %d", i)
			}
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				if m.ColIdx[p] < 0 || int(m.ColIdx[p]) >= c {
					t.Fatalf("column %d out of range at row %d", m.ColIdx[p], i)
				}
				if p > m.RowPtr[i] && m.ColIdx[p] <= m.ColIdx[p-1] {
					t.Fatalf("columns not strictly increasing in row %d", i)
				}
				got := m.Val[p]
				if w := want[[2]int32{int32(i), m.ColIdx[p]}]; got != w {
					t.Fatalf("(%d,%d)=%v want %v", i, m.ColIdx[p], got, w)
				}
			}
		}
		// Duplicates must have been merged: stored entries == distinct coords
		// (entries summing to zero are still stored; FromCoords does not
		// drop explicit zeros).
		if int(m.NNZ()) != len(want) {
			t.Fatalf("nnz=%d want %d distinct coords", m.NNZ(), len(want))
		}
		// Transpose is an involution, exactly.
		tt := m.Transpose().Transpose()
		if tt.Rows != m.Rows || tt.Cols != m.Cols || tt.NNZ() != m.NNZ() {
			t.Fatal("transpose involution changed shape")
		}
		for i := range m.ColIdx {
			if tt.ColIdx[i] != m.ColIdx[i] || tt.Val[i] != m.Val[i] {
				t.Fatalf("transpose involution changed entry %d", i)
			}
		}
	})
}
