package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gnnrdm/internal/tensor"
)

func randomCSR(rng *rand.Rand, r, c int, density float64) *CSR {
	var coords []Coord
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				coords = append(coords, Coord{Row: int32(i), Col: int32(j), Val: float32(rng.NormFloat64())})
			}
		}
	}
	return FromCoords(r, c, coords)
}

func TestFromCoordsBasics(t *testing.T) {
	m := FromCoords(3, 3, []Coord{
		{0, 1, 2}, {2, 0, 5}, {0, 1, 3}, // duplicate (0,1) sums to 5
		{1, 2, -1},
	})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ=%d want 3", m.NNZ())
	}
	if m.At(0, 1) != 5 {
		t.Fatalf("duplicate sum: At(0,1)=%v", m.At(0, 1))
	}
	if m.At(2, 0) != 5 || m.At(1, 2) != -1 || m.At(0, 0) != 0 {
		t.Fatal("bad entries")
	}
}

func TestFromCoordsSortedWithinRow(t *testing.T) {
	m := FromCoords(1, 5, []Coord{{0, 4, 1}, {0, 1, 1}, {0, 3, 1}})
	for p := int64(1); p < m.NNZ(); p++ {
		if m.ColIdx[p-1] >= m.ColIdx[p] {
			t.Fatalf("columns not sorted: %v", m.ColIdx)
		}
	}
}

func TestFromCoordsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromCoords(2, 2, []Coord{{2, 0, 1}})
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomCSR(rng, 20, 35, 0.1)
	tr := m.Transpose()
	if tr.Rows != 35 || tr.Cols != 20 || tr.NNZ() != m.NNZ() {
		t.Fatalf("bad transpose shape/nnz")
	}
	md, td := m.ToDense(), tr.ToDense()
	for i := 0; i < 20; i++ {
		for j := 0; j < 35; j++ {
			if md.At(i, j) != td.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	// Columns within each row of the transpose must be sorted (the CSR invariant).
	for i := 0; i < tr.Rows; i++ {
		for p := tr.RowPtr[i] + 1; p < tr.RowPtr[i+1]; p++ {
			if tr.ColIdx[p-1] >= tr.ColIdx[p] {
				t.Fatal("transpose rows not sorted")
			}
		}
	}
}

func TestRowPanel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomCSR(rng, 30, 10, 0.2)
	p := m.RowPanel(10, 25)
	if p.Rows != 15 || p.Cols != 10 {
		t.Fatal("bad panel shape")
	}
	pd, md := p.ToDense(), m.ToDense()
	for i := 0; i < 15; i++ {
		for j := 0; j < 10; j++ {
			if pd.At(i, j) != md.At(i+10, j) {
				t.Fatalf("panel mismatch at (%d,%d)", i, j)
			}
		}
	}
	empty := m.RowPanel(5, 5)
	if empty.Rows != 0 || empty.NNZ() != 0 {
		t.Fatal("empty panel not empty")
	}
}

func TestSubMatrix(t *testing.T) {
	m := FromCoords(4, 4, []Coord{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {3, 0, 4}, {1, 3, 5}})
	sub := m.SubMatrix([]int32{1, 3}, []int32{1, 3})
	// Row 1 -> new row 0; entries at cols {2:2, 3:5}; only col 3 kept -> new col 1.
	if sub.Rows != 2 || sub.Cols != 2 {
		t.Fatal("bad sub shape")
	}
	if sub.At(0, 1) != 5 {
		t.Fatalf("sub At(0,1)=%v want 5", sub.At(0, 1))
	}
	if sub.NNZ() != 1 {
		t.Fatalf("sub NNZ=%d want 1", sub.NNZ())
	}
}

func TestSpMMAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomCSR(rng, 50, 40, 0.08)
	in := tensor.NewDense(40, 16)
	in.Randomize(rng, 1)
	got := m.SpMM(in)
	want := tensor.MatMul(m.ToDense(), in)
	if tensor.MaxAbsDiff(got, want) > 1e-4 {
		t.Fatalf("SpMM diff %v", tensor.MaxAbsDiff(got, want))
	}
}

func TestSpMMIntoOverwrites(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomCSR(rng, 10, 10, 0.3)
	in := tensor.NewDense(10, 4)
	in.Randomize(rng, 1)
	out := tensor.NewDense(10, 4)
	out.Fill(99)
	m.SpMMInto(in, out)
	want := m.SpMM(in)
	if tensor.MaxAbsDiff(out, want) != 0 {
		t.Fatal("SpMMInto must overwrite stale contents")
	}
}

func TestMaskedSpMM(t *testing.T) {
	m := FromCoords(2, 3, []Coord{{0, 0, 1}, {0, 2, 2}, {1, 1, 3}})
	in := tensor.FromRowMajor(3, 1, []float32{10, 20, 30})
	// Row 0 keeps only column 2; row 1's empty (non-nil) mask keeps nothing.
	out := m.MaskedSpMM(in, [][]int32{{2}, {}})
	if out.At(0, 0) != 60 {
		t.Fatalf("masked row0=%v want 60", out.At(0, 0))
	}
	if out.At(1, 0) != 0 {
		t.Fatalf("masked row1=%v want 0 (empty mask drops all)", out.At(1, 0))
	}
	// nil mask row keeps everything.
	out2 := m.MaskedSpMM(in, [][]int32{nil, nil})
	want := m.SpMM(in)
	if tensor.MaxAbsDiff(out2, want) != 0 {
		t.Fatal("nil mask rows must keep all entries")
	}
	// nil mask entirely equals plain SpMM.
	out3 := m.MaskedSpMM(in, nil)
	if tensor.MaxAbsDiff(out3, want) != 0 {
		t.Fatal("nil mask must equal SpMM")
	}
}

func TestGCNNormalize(t *testing.T) {
	// Path graph 0-1-2.
	a := FromCoords(3, 3, []Coord{{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1}})
	norm := GCNNormalize(a)
	// A+I degrees: d0=2, d1=3, d2=2.
	want00 := 1.0 / 2.0
	if math.Abs(float64(norm.At(0, 0))-want00) > 1e-6 {
		t.Fatalf("norm(0,0)=%v want %v", norm.At(0, 0), want00)
	}
	want01 := 1.0 / math.Sqrt(6)
	if math.Abs(float64(norm.At(0, 1))-want01) > 1e-6 {
		t.Fatalf("norm(0,1)=%v want %v", norm.At(0, 1), want01)
	}
	// Symmetric.
	if norm.At(0, 1) != norm.At(1, 0) || norm.At(1, 2) != norm.At(2, 1) {
		t.Fatal("normalized matrix must be symmetric")
	}
}

func TestGCNNormalizeRowSumsProperty(t *testing.T) {
	// Property: for a regular graph, row sums of the normalized matrix are 1.
	// Build a ring (2-regular); with self loops all degrees are 3.
	n := 12
	var coords []Coord
	for i := 0; i < n; i++ {
		coords = append(coords, Coord{int32(i), int32((i + 1) % n), 1})
		coords = append(coords, Coord{int32((i + 1) % n), int32(i), 1})
	}
	norm := GCNNormalize(FromCoords(n, n, coords))
	for i := 0; i < n; i++ {
		var s float64
		for p := norm.RowPtr[i]; p < norm.RowPtr[i+1]; p++ {
			s += float64(norm.Val[p])
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sum %v want 1", i, s)
		}
	}
}

// Property: SpMM distributes over dense addition: M(X+Y) == MX + MY.
func TestSpMMLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c, k := 1+rng.Intn(15), 1+rng.Intn(15), 1+rng.Intn(8)
		m := randomCSR(rng, r, c, 0.3)
		x := tensor.NewDense(c, k)
		y := tensor.NewDense(c, k)
		x.Randomize(rng, 1)
		y.Randomize(rng, 1)
		sum := x.Clone()
		sum.Add(y)
		left := m.SpMM(sum)
		right := m.SpMM(x)
		right.Add(m.SpMM(y))
		return tensor.MaxAbsDiff(left, right) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: (Mᵀ)ᵀ == M exactly.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(25), 1+rng.Intn(25)
		m := randomCSR(rng, r, c, 0.2)
		tt := m.Transpose().Transpose()
		if tt.Rows != m.Rows || tt.Cols != m.Cols || tt.NNZ() != m.NNZ() {
			return false
		}
		return tensor.MaxAbsDiff(tt.ToDense(), m.ToDense()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: row-panel splits of M partition its rows: stacking panels
// reproduces the full SpMM result.
func TestRowPanelPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c, k := 2+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(6)
		m := randomCSR(rng, r, c, 0.25)
		in := tensor.NewDense(c, k)
		in.Randomize(rng, 1)
		cut := 1 + rng.Intn(r-1)
		top := m.RowPanel(0, cut).SpMM(in)
		bot := m.RowPanel(cut, r).SpMM(in)
		full := m.SpMM(in)
		return tensor.MaxAbsDiff(tensor.ConcatRows(top, bot), full) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCountsAndFootprint(t *testing.T) {
	m := FromCoords(3, 3, []Coord{{0, 0, 1}, {1, 1, 1}, {1, 2, 1}})
	if m.SpMMFLOPs(10) != 30 {
		t.Fatalf("SpMMFLOPs=%d", m.SpMMFLOPs(10))
	}
	d := m.RowDegrees()
	if d[0] != 1 || d[1] != 2 || d[2] != 0 {
		t.Fatalf("degrees=%v", d)
	}
	if m.Bytes() <= 0 {
		t.Fatal("Bytes must be positive")
	}
}

func TestParallelRowRangesCoverage(t *testing.T) {
	for _, rows := range []int{0, 1, 3, 100, 1001} {
		seen := make([]bool, rows)
		ParallelRowRanges(rows, func(r0, r1 int) {
			for i := r0; i < r1; i++ {
				seen[i] = true // disjoint ranges: no race
			}
		})
		for i, ok := range seen {
			if !ok {
				t.Fatalf("rows=%d: index %d not covered", rows, i)
			}
		}
	}
}

func TestColPanel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomCSR(rng, 20, 30, 0.2)
	p := m.ColPanel(7, 19)
	if p.Rows != 20 || p.Cols != 12 {
		t.Fatalf("bad panel shape %dx%d", p.Rows, p.Cols)
	}
	pd, md := p.ToDense(), m.ToDense()
	for i := 0; i < 20; i++ {
		for j := 0; j < 12; j++ {
			if pd.At(i, j) != md.At(i, j+7) {
				t.Fatalf("col panel mismatch at (%d,%d)", i, j)
			}
		}
	}
	if e := m.ColPanel(5, 5); e.NNZ() != 0 || e.Cols != 0 {
		t.Fatal("empty col panel")
	}
}

// Property: column panels partition the columns: summing panel SpMMs over
// matching input slices reproduces the full product.
func TestColPanelPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c, k := 2+rng.Intn(15), 2+rng.Intn(15), 1+rng.Intn(5)
		m := randomCSR(rng, r, c, 0.3)
		in := tensor.NewDense(c, k)
		in.Randomize(rng, 1)
		cut := 1 + rng.Intn(c-1)
		left := m.ColPanel(0, cut).SpMM(in.RowSlice(0, cut))
		right := m.ColPanel(cut, c).SpMM(in.RowSlice(cut, c))
		left.Add(right)
		return tensor.MaxAbsDiff(left, m.SpMM(in)) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRowNormalize(t *testing.T) {
	a := FromCoords(3, 3, []Coord{{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1}})
	rw := RowNormalize(a)
	// Rows sum to exactly 1.
	for i := 0; i < 3; i++ {
		var s float64
		for p := rw.RowPtr[i]; p < rw.RowPtr[i+1]; p++ {
			s += float64(rw.Val[p])
		}
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
	// Row 1 has degree 3 (self + 2 neighbors) -> entries 1/3.
	if math.Abs(float64(rw.At(1, 1))-1.0/3) > 1e-6 {
		t.Fatalf("At(1,1)=%v", rw.At(1, 1))
	}
	// Asymmetric: row 0 has 2 entries (1/2), row 1 has 3 (1/3).
	if rw.At(0, 1) == rw.At(1, 0) {
		t.Fatal("row normalization should be asymmetric here")
	}
}
