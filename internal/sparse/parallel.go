package sparse

import (
	"runtime"
	"sync"
)

// ParallelRowRanges runs fn over [0, rows) split into contiguous disjoint
// chunks, one per worker, and waits for completion. Exported so sibling
// packages can reuse the same deterministic partitioning for sparse-shaped
// loops.
func ParallelRowRanges(rows int, fn func(r0, r1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		if rows > 0 {
			fn(0, rows)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for r0 := 0; r0 < rows; r0 += chunk {
		r1 := r0 + chunk
		if r1 > rows {
			r1 = rows
		}
		wg.Add(1)
		go func(a, b int) {
			defer wg.Done()
			fn(a, b)
		}(r0, r1)
	}
	wg.Wait()
}
