// Package sparse implements compressed sparse row (CSR) matrices and the
// parallel sparse kernels (SpMM, masked SpMM, transpose, row-panel
// extraction, GCN normalization) that realize the aggregation step of a
// GNN layer.
package sparse

import (
	"fmt"
	"math"
	"sort"

	"gnnrdm/internal/tensor"
)

// CSR is a sparse matrix in compressed sparse row format.
//
// Row i's nonzeros occupy ColIdx[RowPtr[i]:RowPtr[i+1]] (column indices,
// sorted ascending within a row) and Val[RowPtr[i]:RowPtr[i+1]].
type CSR struct {
	Rows, Cols int
	RowPtr     []int64
	ColIdx     []int32
	Val        []float32
}

// NewEmpty returns an r x c CSR with no nonzeros.
func NewEmpty(r, c int) *CSR {
	return &CSR{Rows: r, Cols: c, RowPtr: make([]int64, r+1)}
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int64 { return m.RowPtr[m.Rows] }

// Bytes reports the memory footprint of the index and value arrays.
func (m *CSR) Bytes() int64 {
	return int64(len(m.RowPtr))*8 + int64(len(m.ColIdx))*4 + int64(len(m.Val))*4
}

// Coord is a single (row, col, value) triple used to build CSR matrices.
type Coord struct {
	Row, Col int32
	Val      float32
}

// FromCoords builds a CSR from coordinate triples. Duplicate (row, col)
// entries are summed. The input slice is reordered in place.
func FromCoords(r, c int, coords []Coord) *CSR {
	for _, e := range coords {
		if int(e.Row) >= r || int(e.Col) >= c || e.Row < 0 || e.Col < 0 {
			panic(fmt.Sprintf("sparse: coord (%d,%d) outside %dx%d", e.Row, e.Col, r, c))
		}
	}
	sort.Slice(coords, func(i, j int) bool {
		if coords[i].Row != coords[j].Row {
			return coords[i].Row < coords[j].Row
		}
		return coords[i].Col < coords[j].Col
	})
	m := NewEmpty(r, c)
	m.ColIdx = make([]int32, 0, len(coords))
	m.Val = make([]float32, 0, len(coords))
	for i := 0; i < len(coords); {
		j := i
		v := float32(0)
		for j < len(coords) && coords[j].Row == coords[i].Row && coords[j].Col == coords[i].Col {
			v += coords[j].Val
			j++
		}
		m.ColIdx = append(m.ColIdx, coords[i].Col)
		m.Val = append(m.Val, v)
		m.RowPtr[coords[i].Row+1]++
		i = j
	}
	for i := 0; i < r; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// At returns element (i, j); zero if not stored. O(log nnz(i)).
func (m *CSR) At(i, j int) float32 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	idx := m.ColIdx[lo:hi]
	k := sort.Search(len(idx), func(t int) bool { return idx[t] >= int32(j) })
	if k < len(idx) && idx[k] == int32(j) {
		return m.Val[lo+int64(k)]
	}
	return 0
}

// ToDense materializes the matrix densely (for tests on small inputs).
func (m *CSR) ToDense() *tensor.Dense {
	out := tensor.NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out.Set(i, int(m.ColIdx[p]), m.Val[p])
		}
	}
	return out
}

// Transpose returns the CSR of the transpose (equivalently, the matrix in
// CSC form reinterpreted as CSR).
func (m *CSR) Transpose() *CSR {
	t := NewEmpty(m.Cols, m.Rows)
	nnz := m.NNZ()
	t.ColIdx = make([]int32, nnz)
	t.Val = make([]float32, nnz)
	// Count entries per output row (= input column).
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < t.Rows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int64, t.Rows)
	copy(next, t.RowPtr[:t.Rows])
	for i := 0; i < m.Rows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			dst := next[c]
			t.ColIdx[dst] = int32(i)
			t.Val[dst] = m.Val[p]
			next[c]++
		}
	}
	return t
}

// RowPanel returns a copy of rows [r0, r1) as an (r1-r0) x Cols CSR.
func (m *CSR) RowPanel(r0, r1 int) *CSR {
	if r0 < 0 || r1 > m.Rows || r0 > r1 {
		panic(fmt.Sprintf("sparse: RowPanel [%d,%d) outside %d rows", r0, r1, m.Rows))
	}
	out := NewEmpty(r1-r0, m.Cols)
	lo, hi := m.RowPtr[r0], m.RowPtr[r1]
	out.ColIdx = append([]int32(nil), m.ColIdx[lo:hi]...)
	out.Val = append([]float32(nil), m.Val[lo:hi]...)
	for i := r0; i <= r1; i++ {
		out.RowPtr[i-r0] = m.RowPtr[i] - lo
	}
	return out
}

// ColPanel returns a copy of columns [c0, c1) as a Rows x (c1-c0) CSR
// with column indices rebased to the panel. Rows stay sorted.
func (m *CSR) ColPanel(c0, c1 int) *CSR {
	if c0 < 0 || c1 > m.Cols || c0 > c1 {
		panic(fmt.Sprintf("sparse: ColPanel [%d,%d) outside %d cols", c0, c1, m.Cols))
	}
	out := NewEmpty(m.Rows, c1-c0)
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		idx := m.ColIdx[lo:hi]
		a := sort.Search(len(idx), func(t int) bool { return idx[t] >= int32(c0) })
		b := sort.Search(len(idx), func(t int) bool { return idx[t] >= int32(c1) })
		for p := a; p < b; p++ {
			out.ColIdx = append(out.ColIdx, idx[p]-int32(c0))
			out.Val = append(out.Val, m.Val[lo+int64(p)])
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// SubMatrix extracts the induced submatrix on the given (sorted or unsorted,
// duplicate-free) row and column vertex sets, relabeling indices to the
// positions within the sets. Used by GraphSAINT subgraph construction with
// rows == cols.
func (m *CSR) SubMatrix(rows, cols []int32) *CSR {
	colPos := make(map[int32]int32, len(cols))
	for i, c := range cols {
		colPos[c] = int32(i)
	}
	var coords []Coord
	for ri, r := range rows {
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			if cj, ok := colPos[m.ColIdx[p]]; ok {
				coords = append(coords, Coord{Row: int32(ri), Col: cj, Val: m.Val[p]})
			}
		}
	}
	return FromCoords(len(rows), len(cols), coords)
}

// SpMM computes Out = M * In for dense In, in parallel over disjoint row
// blocks (deterministic summation order).
func (m *CSR) SpMM(in *tensor.Dense) *tensor.Dense {
	if in.Rows != m.Cols {
		panic(fmt.Sprintf("sparse: SpMM inner mismatch %dx%d * %dx%d", m.Rows, m.Cols, in.Rows, in.Cols))
	}
	out := tensor.NewDense(m.Rows, in.Cols)
	m.SpMMInto(in, out)
	return out
}

// SpMMInto computes out = M * in, overwriting out.
func (m *CSR) SpMMInto(in, out *tensor.Dense) {
	if in.Rows != m.Cols || out.Rows != m.Rows || out.Cols != in.Cols {
		panic("sparse: SpMMInto shape mismatch")
	}
	f := in.Cols
	ParallelRowRanges(m.Rows, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			oi := out.Data[i*f : (i+1)*f]
			for j := range oi {
				oi[j] = 0
			}
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				v := m.Val[p]
				src := in.Data[int(m.ColIdx[p])*f : int(m.ColIdx[p])*f+f]
				for j, sv := range src {
					oi[j] += v * sv
				}
			}
		}
	})
}

// MaskedSpMM computes Out = (M ⊙ mask) * In where mask selects, per output
// row, a subset of M's stored columns. mask[i] lists the permitted column
// indices for row i (sorted ascending); a nil mask row keeps all columns.
// This realizes sampled aggregation for samplers that do not build explicit
// subgraphs (§III-F).
func (m *CSR) MaskedSpMM(in *tensor.Dense, mask [][]int32) *tensor.Dense {
	if in.Rows != m.Cols {
		panic("sparse: MaskedSpMM inner mismatch")
	}
	if mask != nil && len(mask) != m.Rows {
		panic("sparse: MaskedSpMM mask length mismatch")
	}
	out := tensor.NewDense(m.Rows, in.Cols)
	f := in.Cols
	ParallelRowRanges(m.Rows, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			oi := out.Data[i*f : (i+1)*f]
			var allowed []int32
			if mask != nil {
				allowed = mask[i]
			}
			k := 0
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				c := m.ColIdx[p]
				if mask != nil && allowed != nil {
					for k < len(allowed) && allowed[k] < c {
						k++
					}
					if k >= len(allowed) || allowed[k] != c {
						continue
					}
				}
				v := m.Val[p]
				src := in.Data[int(c)*f : int(c)*f+f]
				for j, sv := range src {
					oi[j] += v * sv
				}
			}
		}
	})
	return out
}

// SpMMFLOPs returns the FMA count of M * In with f dense columns.
func (m *CSR) SpMMFLOPs(f int) int64 { return m.NNZ() * int64(f) }

// RowDegrees returns the stored-entry count of each row.
func (m *CSR) RowDegrees() []int64 {
	d := make([]int64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		d[i] = m.RowPtr[i+1] - m.RowPtr[i]
	}
	return d
}

// RowNormalize returns the random-walk propagation matrix D^{-1}(A + I):
// each row of A plus a self loop divided by its degree. The result is
// generally asymmetric — pair it with its Transpose via
// core.Problem.ATranspose. This is the GraphSAGE-GCN ("mean")
// aggregator's operator.
func RowNormalize(a *CSR) *CSR {
	if a.Rows != a.Cols {
		panic("sparse: RowNormalize requires a square matrix")
	}
	n := a.Rows
	coords := make([]Coord, 0, a.NNZ()+int64(n))
	for i := 0; i < n; i++ {
		coords = append(coords, Coord{Row: int32(i), Col: int32(i), Val: 1})
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if int(a.ColIdx[p]) != i {
				coords = append(coords, Coord{Row: int32(i), Col: a.ColIdx[p], Val: 1})
			}
		}
	}
	out := FromCoords(n, n, coords)
	for i := 0; i < n; i++ {
		deg := float32(out.RowPtr[i+1] - out.RowPtr[i])
		for p := out.RowPtr[i]; p < out.RowPtr[i+1]; p++ {
			out.Val[p] = 1 / deg
		}
	}
	return out
}

// GCNNormalize returns the symmetric GCN propagation matrix
// D^{-1/2} (A + I) D^{-1/2}, where D is the degree matrix of A + I. This is
// the normalization used by Kipf & Welling GCN and reused from CAGNET in
// the paper.
func GCNNormalize(a *CSR) *CSR {
	if a.Rows != a.Cols {
		panic("sparse: GCNNormalize requires a square matrix")
	}
	n := a.Rows
	coords := make([]Coord, 0, a.NNZ()+int64(n))
	for i := 0; i < n; i++ {
		coords = append(coords, Coord{Row: int32(i), Col: int32(i), Val: 1})
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if int(a.ColIdx[p]) != i {
				coords = append(coords, Coord{Row: int32(i), Col: a.ColIdx[p], Val: 1})
			}
		}
	}
	withSelf := FromCoords(n, n, coords)
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for p := withSelf.RowPtr[i]; p < withSelf.RowPtr[i+1]; p++ {
			s += float64(withSelf.Val[p])
		}
		deg[i] = s
	}
	for i := 0; i < n; i++ {
		di := 1.0 / math.Sqrt(deg[i])
		for p := withSelf.RowPtr[i]; p < withSelf.RowPtr[i+1]; p++ {
			dj := 1.0 / math.Sqrt(deg[withSelf.ColIdx[p]])
			withSelf.Val[p] = float32(float64(withSelf.Val[p]) * di * dj)
		}
	}
	return withSelf
}
