package plan

import (
	"fmt"

	"gnnrdm/internal/dist"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
)

// PriceCache memoizes the quadratic work of exact DAG pricing so that
// repeated pricing of the same problem shape — every epoch of a
// multi-epoch price, both executors of PriceDAGEpochs, all sixteen
// Table IV orderings of a sweep, and the discrete-event engine
// (internal/sim) replaying the same schedule — computes each
// redistribution's P×P byte census and its topology-routed all-to-all
// cost exactly once. At P=4096 this is the difference between a sweep
// in seconds and one in hours: a single regrid census touches 16.7M
// tile pairs, and the topology autotuner's Bruck coster evaluates
// O(P² log P) pair volumes.
//
// A cache binds to one (P, hardware model, topology) context on first
// use and panics if reused under a different one — memoized costs are
// only valid within the context they were computed in. Layout-range
// tables are precomputed per (layout, shape) so the census loop runs
// the same min/max arithmetic as dist.TileOverlap over array lookups,
// producing bit-identical integers (and therefore bit-identical float
// costs) to the uncached path.
type PriceCache struct {
	p     int
	h     *hw.Model
	tp    *topo.Topology
	bound bool

	ranges map[rangeKey]*rangeSet
	exch   map[exchKey]*ExchangeCensus
	a2a    map[exchKey]topo.Cost

	// Sparse-exchange memoization (sparse.go). Keys carry the live-set
	// identity (N, Live, SparseSeed) — one cache serves sweeps that mix
	// densities.
	liveSets map[liveSetKey][]int32
	sx       map[sparseExchKey]*SparseExchangeCensus
	sa2a     map[sparseA2AKey]topo.Cost
}

// NewPriceCache returns an empty cache. Share one across every pricing
// and simulation call of a sweep that fixes (P, hardware, topology).
func NewPriceCache() *PriceCache {
	return &PriceCache{
		ranges:   make(map[rangeKey]*rangeSet),
		exch:     make(map[exchKey]*ExchangeCensus),
		a2a:      make(map[exchKey]topo.Cost),
		liveSets: make(map[liveSetKey][]int32),
		sx:       make(map[sparseExchKey]*SparseExchangeCensus),
		sa2a:     make(map[sparseA2AKey]topo.Cost),
	}
}

// ExchangeCensus is the per-rank byte census of one from→to regrid:
// what each rank packs for others (Div) and unpacks from others (Mer),
// self excluded; the busiest injector (MaxInj, the flat time model's
// argument); and the summed cross-pair bytes (Total, the flat metered
// volume). Callers must treat the slices as read-only — they are
// shared by every cache hit.
type ExchangeCensus struct {
	Div, Mer []int64
	MaxInj   int64
	Total    int64
}

type rangeKey struct {
	l          dist.Layout
	rows, cols int
}

// rangeSet holds each rank's tile row/column ranges under one layout
// and global shape — dist.RowRange/ColRange precomputed per rank.
type rangeSet struct {
	rlo, rhi, clo, chi []int
}

type exchKey struct {
	from, to   dist.Layout
	rows, cols int
	packed     bool
}

// Bind fixes the cache's pricing context. The first call binds; later
// calls with an identical context are no-ops, and a different context
// panics (memoized entries would be silently wrong). PriceDAGEpochs
// and sim.Run bind automatically.
func (c *PriceCache) Bind(p int, h *hw.Model, tp *topo.Topology) {
	if !c.bound {
		c.p, c.h, c.tp, c.bound = p, h, tp, true
		return
	}
	if c.p != p || c.h != h || c.tp != tp {
		panic(fmt.Sprintf("plan: PriceCache bound to (P=%d, hw=%p, topo=%p) reused with (P=%d, hw=%p, topo=%p)",
			c.p, c.h, c.tp, p, h, tp))
	}
}

func (c *PriceCache) rangesFor(l dist.Layout, rows, cols int) *rangeSet {
	k := rangeKey{l, rows, cols}
	if rs, ok := c.ranges[k]; ok {
		return rs
	}
	p := c.p
	rs := &rangeSet{
		rlo: make([]int, p), rhi: make([]int, p),
		clo: make([]int, p), chi: make([]int, p),
	}
	for r := 0; r < p; r++ {
		rs.rlo[r], rs.rhi[r] = dist.RowRange(l, p, r, rows)
		rs.clo[r], rs.chi[r] = dist.ColRange(l, p, r, cols)
	}
	c.ranges[k] = rs
	return rs
}

// Exchange returns the memoized byte census of a from→to regrid of a
// rows×cols matrix. Layouts must be normalized for the bound P (the
// DAG walk and the sim engine only hold normalized layouts). With
// packed=true chunks are byte-packed masks (four elements per
// transmitted float32), matching Schedule.exchange.
func (c *PriceCache) Exchange(from, to dist.Layout, rows, cols int, packed bool) *ExchangeCensus {
	c.mustBind()
	k := exchKey{from, to, rows, cols, packed}
	if e, ok := c.exch[k]; ok {
		return e
	}
	p := c.p
	fr := c.rangesFor(from, rows, cols)
	tr := c.rangesFor(to, rows, cols)
	e := &ExchangeCensus{Div: make([]int64, p), Mer: make([]int64, p)}
	for r := 0; r < p; r++ {
		arlo, arhi, aclo, achi := fr.rlo[r], fr.rhi[r], fr.clo[r], fr.chi[r]
		for q := 0; q < p; q++ {
			if q == r {
				continue
			}
			// The same intersection arithmetic as dist.TileOverlap,
			// over the precomputed ranges.
			rr := min(arhi, tr.rhi[q]) - max(arlo, tr.rlo[q])
			if rr <= 0 {
				continue
			}
			cc := min(achi, tr.chi[q]) - max(aclo, tr.clo[q])
			if cc <= 0 {
				continue
			}
			n := rr * cc
			b := 4 * int64(n)
			if packed {
				b = 4 * int64((n+3)/4)
			}
			e.Div[r] += b
			e.Mer[q] += b
		}
	}
	for r := 0; r < p; r++ {
		e.MaxInj = max(e.MaxInj, e.Div[r])
		e.Total += e.Div[r]
	}
	c.exch[k] = e
	return e
}

// pairFn returns the per-pair byte function of a from→to regrid over
// the cached range tables — the same census Schedule.pairFn computes
// via dist.TileOverlap, without the per-call range recomputation the
// topology costers would otherwise repeat O(P² log P) times.
func (c *PriceCache) pairFn(from, to dist.Layout, rows, cols int, packed bool) func(i, j int) int64 {
	fr := c.rangesFor(from, rows, cols)
	tr := c.rangesFor(to, rows, cols)
	return func(i, j int) int64 {
		rr := min(fr.rhi[i], tr.rhi[j]) - max(fr.rlo[i], tr.rlo[j])
		cc := min(fr.chi[i], tr.chi[j]) - max(fr.clo[i], tr.clo[j])
		n := 0
		if rr > 0 && cc > 0 {
			n = rr * cc
		}
		if packed {
			return 4 * int64((n+3)/4)
		}
		return 4 * int64(n)
	}
}

// AllToAllCost returns the memoized topology cost of a world all-to-all
// carrying a from→to regrid's pair volumes, under the fabric's default
// algorithm policy (topo.Auto). Panics when the cache is bound to the
// flat interconnect — flat all-to-all costs come from the closed form
// over Exchange().MaxInj and need no memoization.
func (c *PriceCache) AllToAllCost(from, to dist.Layout, rows, cols int, packed bool) topo.Cost {
	c.mustBind()
	if c.tp == nil {
		panic("plan: AllToAllCost on a flat-bound PriceCache")
	}
	k := exchKey{from, to, rows, cols, packed}
	if cst, ok := c.a2a[k]; ok {
		return cst
	}
	world := make([]int, c.p)
	for i := range world {
		world[i] = i
	}
	_, cst := c.tp.AllToAll(c.h, topo.Auto, world, c.pairFn(from, to, rows, cols, packed))
	c.a2a[k] = cst
	return cst
}

func (c *PriceCache) mustBind() {
	if !c.bound {
		panic("plan: PriceCache used before Bind")
	}
}

// World returns the all-ranks group [0..P).
func (s *Schedule) World() []int { return s.world() }

// ColGroup returns the ranks sharing rank's grid column (ascending) —
// the KSpMM allgather group. Exported for the discrete-event engine,
// which replays the same groups the executor communicates over.
func (s *Schedule) ColGroup(rank int) []int { return s.colGroup(rank) }
