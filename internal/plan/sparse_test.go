package plan

import (
	"strings"
	"testing"

	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
)

func sparseSpec2(n, cfg, p, ra, live int) Spec {
	sp := spec2(n, cfg, p, ra, true)
	sp.Live, sp.SparseSeed = live, 3
	return sp
}

func countKind(s *Schedule, k Kind, sparse bool) int {
	n := 0
	for i := range s.Sections {
		for _, op := range s.Sections[i].Ops {
			if op.Kind == k && (!sparse || op.Sparse) {
				n++
			}
		}
	}
	return n
}

// TestSparseHeaderRoundTrip pins the serialized sparse header: Live and
// SparseSeed survive String → Parse → String as a fixed point, dense
// schedules emit no sparse tokens, and old dense dumps keep parsing.
func TestSparseHeaderRoundTrip(t *testing.T) {
	for _, sp := range []Spec{
		sparseSpec2(64, 2, 4, 4, 16),
		sparseSpec2(64, 15, 8, 8, 7),
		sparseSpec2(7, 3, 2, 2, 2),
	} {
		s := Compile(sp).Optimize()
		if s.Live != sp.Live || s.SparseSeed != sp.SparseSeed {
			t.Fatalf("compile dropped sparse identity: live=%d sseed=%d", s.Live, s.SparseSeed)
		}
		d1 := s.String()
		if !strings.Contains(d1, " live=") {
			t.Fatalf("sparse schedule header missing live token:\n%s", d1)
		}
		parsed, err := Parse(d1)
		if err != nil {
			t.Fatalf("parse sparse dump: %v\n%s", err, d1)
		}
		if parsed.Live != sp.Live || parsed.SparseSeed != sp.SparseSeed {
			t.Fatalf("parse lost sparse identity: live=%d sseed=%d", parsed.Live, parsed.SparseSeed)
		}
		if d2 := parsed.String(); d2 != d1 {
			t.Fatalf("sparse dump not a fixed point:\n%s\n---\n%s", d1, d2)
		}
	}
	if d := Compile(spec2(64, 0, 4, 4, true)).String(); strings.Contains(d, "live=") {
		t.Fatalf("dense schedule leaked a sparse header:\n%s", d)
	}
}

// TestSparsePropagation pins where redist.sp ops come from: only
// conversions of values inheriting X's row support are sparse. An
// all-SpMM-first forward never redistributes a sparse value (X is free
// in both layouts and aggregation densifies), while a DenseFirst first
// layer redistributes the row-sparse XW product.
func TestSparsePropagation(t *testing.T) {
	if n := countKind(Compile(sparseSpec2(64, 0, 4, 4, 16)).Optimize(), KRedist, true); n != 0 {
		t.Fatalf("all-SpMM-first schedule has %d sparse redists, want 0", n)
	}
	// cfg bit 2 = forward layer 1 DenseFirst.
	s := Compile(sparseSpec2(64, 2, 4, 4, 16)).Optimize()
	if n := countKind(s, KRedist, true); n == 0 {
		t.Fatalf("DenseFirst-layer-1 schedule has no sparse redists:\n%s", s)
	}
	// A dense spec must never produce sparse ops.
	if n := countKind(Compile(spec2(64, 2, 4, 4, true)).Optimize(), KRedist, true); n != 0 {
		t.Fatalf("dense schedule has %d sparse redists", n)
	}
	// Live >= N normalizes to dense: bit-identical schedule text.
	full := sparseSpec2(64, 2, 4, 4, 64)
	if d, f := Compile(spec2(64, 2, 4, 4, true)).Optimize().String(), Compile(full).Optimize().String(); d != f {
		t.Fatalf("Live=N schedule differs from dense:\n%s\n---\n%s", d, f)
	}
}

// TestSparsePriceMatchesClosedForm reconciles the planner's sparse
// redistribution prices (flat) against costmodel.SparseExchangeBytes,
// and checks the payload volume shrinks strictly with the live count.
func TestSparsePriceMatchesClosedForm(t *testing.T) {
	h := hw.A6000()
	var prevPay int64 = -1
	for _, live := range []int{32, 16, 4} {
		s := Compile(sparseSpec2(64, 2, 4, 4, live)).Optimize()
		c := s.PriceOn(100, h, nil)
		lset := s.LiveSet()
		idx, pay := 0, int64(0)
		for i := range s.Sections {
			for j := range s.Sections[i].Ops {
				op := &s.Sections[i].Ops[j]
				oc := c.PerOp[idx]
				idx++
				if op.Kind != KRedist || !op.Sparse || !s.SparseEligible(op.From, op.To) {
					continue
				}
				m, p := costmodel.SparseExchangeBytes(s.P, op.Rows, op.Cols, op.From, op.To, lset)
				if oc.Side != m || oc.AllToAll != p {
					t.Fatalf("live=%d step %d: priced meta=%d pay=%d, closed form meta=%d pay=%d",
						live, op.Step, oc.Side, oc.AllToAll, m, p)
				}
				pay += p
			}
		}
		if pay <= 0 {
			t.Fatalf("live=%d: no sparse payload priced", live)
		}
		if prevPay >= 0 && pay >= prevPay {
			t.Fatalf("payload not strictly decreasing: live=%d pays %d, previous %d", live, pay, prevPay)
		}
		prevPay = pay
	}
}

// TestABCRewrite pins the aggregate-before-communicate pass: on a
// DenseFirst layer whose [redist.sp; spmm; redist-back] chain has
// single-use intermediates it fuses a KSpMMABC op, the result
// validates, round-trips through String/Parse, builds a DAG, and at
// low density prices strictly less exchanged payload than the original
// chain. Schedules outside the pass's domain come back unchanged.
func TestABCRewrite(t *testing.T) {
	h := hw.A6000()
	const n, nnz = 64, 4 * 64
	// L=1, forward DenseFirst (cfg bit 0 for L=1), RA=P, 4 live rows.
	sp := Spec{
		N: n, Dims: []int{16, 8},
		Config: costmodel.ConfigFromID(1, 1),
		P:      4, RA: 4, Memoize: true, InputGrad: true,
		Live: 4, SparseSeed: 3,
	}
	s := Compile(sp).Optimize()
	if countKind(s, KRedist, true) == 0 {
		t.Fatalf("precondition: no sparse redist to fuse:\n%s", s)
	}
	abc := s.ABC()
	if got := countKind(abc, KSpMMABC, false); got != 1 {
		t.Fatalf("ABC() fused %d ops, want 1:\n%s", got, abc)
	}
	if err := abc.Validate(); err != nil {
		t.Fatalf("ABC schedule invalid: %v", err)
	}
	d1 := abc.String()
	parsed, err := Parse(d1)
	if err != nil {
		t.Fatalf("parse ABC dump: %v\n%s", err, d1)
	}
	if d2 := parsed.String(); d2 != d1 {
		t.Fatalf("ABC dump not a fixed point:\n%s\n---\n%s", d1, d2)
	}
	MustBuildDAG(abc)

	before := s.PriceOn(nnz, h, nil)
	after := abc.PriceOn(nnz, h, nil)
	if after.AllToAll >= before.AllToAll {
		t.Fatalf("ABC did not reduce exchanged payload: %d >= %d", after.AllToAll, before.AllToAll)
	}

	// Out-of-domain inputs: dense schedule and partial replication come
	// back without ABC ops.
	if got := countKind(Compile(spec2(64, 2, 4, 4, true)).Optimize().ABC(), KSpMMABC, false); got != 0 {
		t.Fatalf("ABC() rewrote a dense schedule (%d ops)", got)
	}
	if got := countKind(Compile(sparseSpec2(64, 2, 4, 2, 16)).Optimize().ABC(), KSpMMABC, false); got != 0 {
		t.Fatalf("ABC() rewrote an RA<P schedule (%d ops)", got)
	}
}

// TestABCPriceConsistency pins the three ABC pricers against each
// other: PriceOn's analytic exchange totals equal the census the DAG
// simulator replays (same ApproxABCPairs), flat and topo-routed.
func TestABCPriceConsistency(t *testing.T) {
	h := hw.A6000()
	const n, nnz = 64, 4 * 64
	sp := Spec{
		N: n, Dims: []int{16, 8},
		Config: costmodel.ConfigFromID(1, 1),
		P:      4, RA: 4, Memoize: true, InputGrad: true,
		Live: 8, SparseSeed: 3,
	}
	abc := Compile(sp).Optimize().ABC()
	if countKind(abc, KSpMMABC, false) == 0 {
		t.Fatalf("no ABC op to price:\n%s", abc)
	}
	pairs, nnzABC := abc.ApproxABCPairs(nnz)
	cen := abc.ApproxCensus(nnz)
	if cen.ABCPairs == nil || cen.NNZABC == nil {
		t.Fatalf("ApproxCensus did not fill the ABC census at RA=P")
	}
	for r := range pairs {
		if cen.NNZABC[r] != nnzABC[r] {
			t.Fatalf("rank %d: census NNZABC %d != ApproxABCPairs %d", r, cen.NNZABC[r], nnzABC[r])
		}
		for q := range pairs[r] {
			if cen.ABCPairs[r][q] != pairs[r][q] {
				t.Fatalf("pair (%d,%d): census %d != ApproxABCPairs %d", r, q, cen.ABCPairs[r][q], pairs[r][q])
			}
		}
	}
	// The priced exchange bytes equal the shared census's totals.
	var wantMeta, wantPay int64
	for i := range abc.Sections {
		for _, op := range abc.Sections[i].Ops {
			if op.Kind != KSpMMABC {
				continue
			}
			x, _, _ := ABCCensus(abc.P, pairs, op.Cols)
			wantMeta += x.MetaTotal
			wantPay += x.PayTotal
		}
	}
	c := abc.PriceOn(nnz, h, nil)
	var gotMeta, gotPay int64
	for _, oc := range c.PerOp {
		if oc.Kind == KSpMMABC {
			gotMeta += oc.Side
			gotPay += oc.AllToAll
		}
	}
	if gotMeta != wantMeta || gotPay != wantPay {
		t.Fatalf("PriceOn ABC bytes meta=%d pay=%d, census totals meta=%d pay=%d",
			gotMeta, gotPay, wantMeta, wantPay)
	}
	// The DAG pricer accepts the same schedule on both interconnects.
	ts, err := topo.ParseSpec("2x2:nvlink,ib")
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range []*topo.Topology{nil, ts.MustTopology(4)} {
		cost := MustBuildDAG(abc).PriceDAGEpochs(cen, h, tp, 2)
		if cost.Makespan <= 0 || cost.SeqTime < cost.Makespan {
			t.Fatalf("degenerate ABC DAG cost: %+v", cost)
		}
	}
}

// TestSparseExchangeCensusMatchesDist pins the planner's pair census
// against dist's wire format arithmetic: per-pair metadata is the
// 2-word header plus one word per live row in the pair's dense row
// window, payload those rows' column slices — summed over active pairs
// only, self excluded.
func TestSparseExchangeCensusMatchesDist(t *testing.T) {
	const p, rows, cols = 4, 64, 12
	live := dist.GenRows(3, rows, 10)
	s := &Schedule{P: p, N: rows, Live: 10, SparseSeed: 3}
	x := s.sparseExchange(dist.H, dist.V, rows, cols, live)
	var meta, pay int64
	for r := 0; r < p; r++ {
		rlo, rhi := dist.RowRange(dist.H, p, r, rows)
		for q := 0; q < p; q++ {
			if q == r {
				continue
			}
			clo, chi := dist.ColRange(dist.V, p, q, cols)
			cnt := int64(dist.CountInRange(live, rlo, rhi))
			meta += 4 * (2 + cnt)
			pay += 4 * cnt * int64(chi-clo)
		}
	}
	if x.MetaTotal != meta || x.PayTotal != pay {
		t.Fatalf("census meta=%d pay=%d, hand sum meta=%d pay=%d", x.MetaTotal, x.PayTotal, meta, pay)
	}
	cm, cp := costmodel.SparseExchangeBytes(p, rows, cols, dist.H, dist.V, live)
	if cm != meta || cp != pay {
		t.Fatalf("costmodel meta=%d pay=%d, hand sum meta=%d pay=%d", cm, cp, meta, pay)
	}
}
