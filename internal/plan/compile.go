package plan

import (
	"fmt"

	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/dist"
)

// Spec is the problem shape and options a schedule is compiled for —
// the planner-side mirror of core.Options plus the fabric geometry.
type Spec struct {
	// N is the vertex count; Dims is f_0..f_L.
	N    int
	Dims []int
	// Config is the per-layer SpMM/GEMM ordering (Table IV); the zero
	// value means all SpMM-first. It may be non-uniform across layers.
	Config costmodel.Config
	// P is the device count; RA the adjacency replication factor
	// (0 = P, full replication).
	P, RA                    int
	SAGE, Memoize, InputGrad bool
	// Live > 0 declares the input features row-sparse with exactly Live
	// nonzero rows, the set dist.GenRows(SparseSeed, N, Live).
	// Redistributions of values whose support is contained in that set
	// compile to sparse exchanges (redist.sp). Live <= 0 or >= N is the
	// dense problem.
	Live       int
	SparseSeed int64
}

func (sp Spec) withDefaults() Spec {
	if sp.RA == 0 {
		sp.RA = sp.P
	}
	if len(sp.Config.Fwd) == 0 {
		sp.Config = costmodel.ConfigFromID(0, len(sp.Dims)-1)
	}
	if sp.Live < 0 || sp.Live >= sp.N {
		sp.Live = 0
	}
	return sp
}

func (sp Spec) validate() {
	if len(sp.Dims) < 2 {
		panic("plan: need at least one layer")
	}
	if sp.Config.Layers() != len(sp.Dims)-1 {
		panic("plan: config layer count mismatch")
	}
	if sp.P < 1 {
		panic("plan: need at least one device")
	}
	if sp.RA < 1 || sp.RA > sp.P || sp.P%sp.RA != 0 {
		panic(fmt.Sprintf("plan: RA=%d invalid for P=%d", sp.RA, sp.P))
	}
	if sp.N < 1 {
		panic("plan: need at least one vertex")
	}
}

// val tracks one logical matrix during compilation: its global shape
// and every register holding it, by layout — the compile-time mirror
// of the executor's layout cache, so schedule-time decisions (which
// redistribution a cache miss pays, which weight-gradient operands are
// free) reproduce the engine's run-time decisions exactly.
type val struct {
	rows, cols int
	regs       map[dist.Layout]Reg
}

// compiler threads the emission state through Compile.
type compiler struct {
	sp    Spec
	gridL dist.Layout
	s     *Schedule
	next  Reg
	step  int
	// sparse marks registers whose value's row support is contained in
	// the schedule's live set: H^0 itself, and anything reached from it
	// by row-local ops (GEMM preserves row sparsity; aggregation does
	// not). Redistributions of marked registers compile to redist.sp.
	sparse map[Reg]bool
}

// markSparse records a freshly defined register as row-sparse.
func (c *compiler) markSparse(r Reg, sparse bool) {
	if sparse && c.sp.Live > 0 {
		c.sparse[r] = true
	}
}

// Compile lowers one training epoch under the given spec into a naive
// schedule that reproduces the engine's historical op sequence
// verbatim — including identity redistributions the engine's hardcoded
// Redistribute calls no-op at run time, and the G^0 input-gradient
// chain regardless of InputGrad. Run Optimize to elide the former and
// dead-code-eliminate the latter; the optimized schedule is what the
// executor interprets and the pricer audits.
func Compile(sp Spec) *Schedule {
	sp = sp.withDefaults()
	sp.validate()
	c := &compiler{sp: sp, gridL: dist.G(sp.RA).Normalize(sp.P), sparse: map[Reg]bool{}}
	L := len(sp.Dims) - 1
	nw := L
	if sp.SAGE {
		nw = 2 * L
	}
	c.s = &Schedule{
		P: sp.P, RA: sp.RA, N: sp.N,
		Dims:   append([]int(nil), sp.Dims...),
		Config: costmodel.ConfigFromID(sp.Config.ID(), L),
		SAGE:   sp.SAGE, Memoize: sp.Memoize, InputGrad: sp.InputGrad,
		GridL:      c.gridL,
		NumWeights: nw,
		Live:       sp.Live, SparseSeed: sp.SparseSeed,
	}

	h, memo := c.forwardPass()

	// Loss: vertex-complete logits required, so a vertical final layer
	// pays one last redistribution (§IV-A1).
	c.section("loss", 0)
	logits := c.get(h[L], dist.H)
	gl := c.fresh()
	c.emit(Op{Kind: KLoss, Dst: gl, A: logits, Rows: sp.N, Cols: sp.Dims[L], Layout: dist.H})
	g := c.newVal(sp.N, sp.Dims[L])
	c.cache(g, dist.H, gl)

	for l := L; l >= 1; l-- {
		c.section("bwd", l)
		in, out := sp.Dims[l-1], sp.Dims[l]
		if sp.Config.Bwd[l-1] == costmodel.SparseFirst {
			gv := c.get(g, c.gridL)
			tb := c.redist(c.spmm(gv, false, sp.N, out), c.gridL, dist.H, sp.N, out)
			c.weightGrad(l, h[l-1], g, tb, memo[l])
			c.selfGrad(l, h[l-1], g)
			// G^{l-1} chain: compiled unconditionally; when the engine
			// would skip it (l==1 without InputGrad) it is simply not an
			// output and EliminateDead prunes it.
			u := c.gemm(tb, c.wn(l), true, sp.N, in)
			if sp.SAGE {
				self := c.gemm(c.get(g, dist.H), c.ws(l), true, sp.N, in)
				c.emit(Op{Kind: KAdd, A: u, B: self, Layout: dist.H, Rows: sp.N, Cols: in})
			}
			if l > 1 {
				c.reluGrad(u, dist.H, sp.N, in, h[l-1])
			}
			g = c.newVal(sp.N, in)
			c.cache(g, dist.H, u)
		} else {
			// GEMM-first: G^l must be horizontal (mismatch redistribution
			// charged by the cache).
			gh := c.get(g, dist.H)
			c.weightGrad(l, h[l-1], g, None, memo[l])
			c.selfGrad(l, h[l-1], g)
			gn := c.spmm(c.redist(c.gemm(gh, c.wn(l), true, sp.N, in), dist.H, c.gridL, sp.N, in), false, sp.N, in)
			if sp.SAGE {
				self := c.redist(c.gemm(gh, c.ws(l), true, sp.N, in), dist.H, c.gridL, sp.N, in)
				c.emit(Op{Kind: KAdd, A: gn, B: self, Layout: c.gridL, Rows: sp.N, Cols: in})
			}
			if l > 1 {
				c.reluGrad(gn, c.gridL, sp.N, in, h[l-1])
			}
			g = c.newVal(sp.N, in)
			c.cache(g, c.gridL, gn)
		}
	}
	if sp.InputGrad {
		c.s.Outputs = append(c.s.Outputs, c.regOf(g))
	}

	c.section("update", 0)
	c.emit(Op{Kind: KUpdate})

	c.s.NumRegs = int(c.next)
	if err := c.s.Validate(); err != nil {
		panic("plan: compiled schedule invalid: " + err.Error())
	}
	return c.s
}

// wn returns layer l's neighbor-aggregation weight slot; ws the SAGE
// self-weight slot — the engine's weight array order.
func (c *compiler) wn(l int) int {
	if c.sp.SAGE {
		return 2 * (l - 1)
	}
	return l - 1
}

func (c *compiler) ws(l int) int { return 2*(l-1) + 1 }

func (c *compiler) section(phase string, layer int) {
	c.s.Sections = append(c.s.Sections, Section{Phase: phase, Layer: layer})
}

func (c *compiler) emit(op Op) {
	c.step++
	op.Step = c.step
	// Canonicalize unused operand fields so passes can treat Dst/A/B
	// uniformly (a zero Reg is a real register).
	if !op.Kind.assigns() {
		op.Dst = None
	}
	if op.Kind == KInput || op.Kind == KUpdate {
		op.A = None
	}
	switch op.Kind {
	case KGradGEMM, KReLUGrad, KAdd:
	default:
		op.B = None
	}
	sec := &c.s.Sections[len(c.s.Sections)-1]
	sec.Ops = append(sec.Ops, op)
}

func (c *compiler) fresh() Reg {
	r := c.next
	c.next++
	return r
}

func (c *compiler) newVal(rows, cols int) *val {
	return &val{rows: rows, cols: cols, regs: make(map[dist.Layout]Reg)}
}

func (c *compiler) cache(v *val, l dist.Layout, r Reg) { v.regs[l.Normalize(c.sp.P)] = r }

// regOf returns a val's sole register (its freshly-produced layout).
func (c *compiler) regOf(v *val) Reg {
	if len(v.regs) != 1 {
		panic("plan: regOf on multi-layout value")
	}
	for _, r := range v.regs {
		return r
	}
	return None
}

// get returns the register holding v in the requested layout,
// compiling a cache-filling redistribution on a miss — the mirror of
// lcache.get, including its deterministic source preference (H, then
// V, then grids by key).
func (c *compiler) get(v *val, l dist.Layout) Reg {
	l = l.Normalize(c.sp.P)
	if r, ok := v.regs[l]; ok {
		return r
	}
	from := preferLayout(v.regs)
	r := c.redist(v.regs[from], from, l, v.rows, v.cols)
	v.regs[l] = r
	return r
}

// redist emits an unconditional redistribution, mirroring the engine's
// hardcoded Redistribute calls: when from == to the run-time op is an
// identity the elision pass removes.
func (c *compiler) redist(a Reg, from, to dist.Layout, rows, cols int) Reg {
	dst := c.fresh()
	c.emit(Op{Kind: KRedist, Dst: dst, A: a, Sparse: c.sparse[a],
		From: from.Normalize(c.sp.P), To: to.Normalize(c.sp.P), Layout: to.Normalize(c.sp.P),
		Rows: rows, Cols: cols})
	c.markSparse(dst, c.sparse[a])
	return dst
}

func (c *compiler) input(l dist.Layout, rows, cols int) Reg {
	dst := c.fresh()
	c.emit(Op{Kind: KInput, Dst: dst, Layout: l, Rows: rows, Cols: cols})
	return dst
}

func (c *compiler) spmm(a Reg, forward bool, rows, cols int) Reg {
	dst := c.fresh()
	c.emit(Op{Kind: KSpMM, Dst: dst, A: a, Forward: forward, Layout: c.gridL, Rows: rows, Cols: cols})
	return dst
}

func (c *compiler) gemm(a Reg, weight int, transW bool, rows, cols int) Reg {
	dst := c.fresh()
	c.emit(Op{Kind: KGEMM, Dst: dst, A: a, Weight: weight, TransW: transW,
		Layout: dist.H, Rows: rows, Cols: cols})
	// A GEMM is row-local: zero rows of A yield zero rows of A·W, so the
	// product inherits the operand's row sparsity.
	c.markSparse(dst, c.sparse[a])
	return dst
}

// gradGEMM emits the local partial product plus its all-reduce into a
// weight-gradient slot.
func (c *compiler) gradGEMM(a, b Reg, weight, in, out int) {
	dst := c.fresh()
	c.emit(Op{Kind: KGradGEMM, Dst: dst, A: a, B: b, Weight: weight,
		Layout: dist.R, Rows: in, Cols: out})
	c.emit(Op{Kind: KAllReduceGrad, A: dst, Weight: weight, Rows: in, Cols: out})
}

// weightGrad compiles Y^l = (H^{l-1})ᵀ(A·G^l) following the engine's
// reuse analysis (Fig. 3): prefer a free vertex-sliced operand pair,
// fall back to gathering the narrower missing operand, and only when
// the layer is GEMM-first in both passes recompute the cheaper SpMM.
// The case analysis resolves at compile time from the vals' layout
// sets, which track the run-time caches exactly.
func (c *compiler) weightGrad(l int, hPrev, g *val, tb, tf Reg) {
	in, out := c.sp.Dims[l-1], c.sp.Dims[l]
	// reuse reads the memoized forward product back — the explicit
	// rewrite that replaces engine-internal memo state.
	reuse := func() Reg {
		dst := c.fresh()
		c.emit(Op{Kind: KReuse, Dst: dst, A: tf, Rows: c.sp.N, Cols: in, Layout: dist.H})
		return dst
	}
	_, gHasH := g.regs[dist.H]
	_, hHasH := hPrev.regs[dist.H]
	switch {
	case tf != None && gHasH:
		c.gradGEMM(reuse(), c.get(g, dist.H), c.wn(l), in, out)
	case tb != None && hHasH:
		c.gradGEMM(c.get(hPrev, dist.H), tb, c.wn(l), in, out)
	case tf != None && tb != None:
		if in <= out {
			c.gradGEMM(c.get(hPrev, dist.H), tb, c.wn(l), in, out) // gather H^{l-1}: f_{l-1}
		} else {
			c.gradGEMM(reuse(), c.get(g, dist.H), c.wn(l), in, out) // gather G^l: f_l
		}
	case tf != None:
		c.gradGEMM(reuse(), c.get(g, dist.H), c.wn(l), in, out)
	case tb != None:
		c.gradGEMM(c.get(hPrev, dist.H), tb, c.wn(l), in, out)
	default:
		// Both passes GEMM-first: recompute the cheaper SpMM product.
		if in <= out {
			t := c.redist(c.spmm(c.get(hPrev, c.gridL), true, c.sp.N, in), c.gridL, dist.H, c.sp.N, in)
			c.gradGEMM(t, c.get(g, dist.H), c.wn(l), in, out)
		} else {
			t := c.redist(c.spmm(c.get(g, c.gridL), false, c.sp.N, out), c.gridL, dist.H, c.sp.N, out)
			c.gradGEMM(c.get(hPrev, dist.H), t, c.wn(l), in, out)
		}
	}
}

// selfGrad compiles the SAGE self-weight gradient (H^{l-1})ᵀ·G^l.
func (c *compiler) selfGrad(l int, hPrev, g *val) {
	if !c.sp.SAGE {
		return
	}
	in, out := c.sp.Dims[l-1], c.sp.Dims[l]
	h := c.get(hPrev, dist.H)
	gh := c.get(g, dist.H)
	c.gradGEMM(h, gh, c.ws(l), in, out)
}

// reluGrad compiles the σ'(Z^{l-1}) mask application onto u: local when
// H^{l-1} is cached in u's layout, otherwise the byte-packed mask ships
// From -> To on the fabric's side channel.
func (c *compiler) reluGrad(u Reg, uLayout dist.Layout, rows, cols int, hPrev *val) {
	uLayout = uLayout.Normalize(c.sp.P)
	if r, ok := hPrev.regs[uLayout]; ok {
		c.emit(Op{Kind: KReLUGrad, A: u, B: r, From: uLayout, To: uLayout, Layout: uLayout, Rows: rows, Cols: cols})
		return
	}
	from := preferLayout(hPrev.regs)
	c.emit(Op{Kind: KReLUGrad, A: u, B: hPrev.regs[from], From: from, To: uLayout, Layout: uLayout, Rows: rows, Cols: cols})
}
