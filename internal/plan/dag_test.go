package plan

import (
	"fmt"
	"strings"
	"testing"

	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
)

// dagCorpus compiles a representative schedule population: every
// corner the DAG builder has to classify — all-SpMM-first through
// all-GEMM-first orderings, naive and optimized, single device through
// P=8, reduced replication, GraphSAGE, memoization on and off, with
// and without the input gradient.
func dagCorpus() []*Schedule {
	var out []*Schedule
	for _, cfg := range []int{0, 3, 5, 10, 15} {
		for _, p := range []int{1, 2, 4, 8} {
			sp := spec2(64, cfg, p, p, true)
			out = append(out, Compile(sp), Compile(sp).Optimize())
		}
	}
	out = append(out,
		Compile(spec2(64, 6, 8, 2, true)).Optimize(),
		Compile(spec2(64, 9, 8, 4, false)).Optimize(),
		Compile(Spec{N: 48, Dims: []int{8, 6, 4}, Config: costmodel.ConfigFromID(5, 2),
			P: 4, RA: 2, SAGE: true, Memoize: true, InputGrad: true}).Optimize(),
		Compile(Spec{N: 32, Dims: []int{8, 4}, Config: costmodel.ConfigFromID(1, 1),
			P: 2, RA: 2, Memoize: false}),
	)
	return out
}

// opRW derives each op's read and write sets over abstract locations —
// register pointers ("reg:"), aliased tile storage ("st:"), weight
// slots ("w:") and gradient slots ("g:") — straight from the
// documented executor semantics (core.Engine.execOp), independently of
// the DAG builder's incremental bookkeeping. Aliasing ops (KMemoize,
// KReuse, layout-preserving KRedist) copy the pointer without touching
// tile data, so they read only the register.
func opRW(s *Schedule) (reads, writes []map[string]bool) {
	st := make(map[Reg]int)
	next := 0
	fresh := func(r Reg) int { next++; st[r] = next; return next }
	for i := range s.Sections {
		for j := range s.Sections[i].Ops {
			op := &s.Sections[i].Ops[j]
			rd := map[string]bool{}
			wr := map[string]bool{}
			regR := func(r Reg) { rd[fmt.Sprintf("reg:%d", r)] = true }
			dataR := func(r Reg) { regR(r); rd[fmt.Sprintf("st:%d", st[r])] = true }
			dataRW := func(r Reg) { dataR(r); wr[fmt.Sprintf("st:%d", st[r])] = true }
			def := func(r Reg) { wr[fmt.Sprintf("reg:%d", r)] = true; wr[fmt.Sprintf("st:%d", fresh(r))] = true }
			alias := func(dst, a Reg) { regR(a); wr[fmt.Sprintf("reg:%d", dst)] = true; st[dst] = st[a] }
			switch op.Kind {
			case KInput:
				def(op.Dst)
			case KRedist:
				if op.From.Normalize(s.P) == op.To.Normalize(s.P) {
					alias(op.Dst, op.A)
				} else {
					dataR(op.A)
					def(op.Dst)
				}
			case KSpMM, KLoss:
				dataR(op.A)
				def(op.Dst)
			case KGEMM:
				dataR(op.A)
				rd[fmt.Sprintf("w:%d", op.Weight)] = true
				def(op.Dst)
			case KGradGEMM:
				dataR(op.A)
				dataR(op.B)
				def(op.Dst)
			case KAllReduceGrad:
				dataR(op.A)
				wr[fmt.Sprintf("g:%d", op.Weight)] = true
			case KReLU:
				dataRW(op.A)
			case KReLUGrad, KAdd:
				dataR(op.B)
				dataRW(op.A)
			case KMemoize, KReuse:
				alias(op.Dst, op.A)
			case KMemWrite:
				dataR(op.A)
			case KUpdate:
				for w := 0; w < s.NumWeights; w++ {
					rd[fmt.Sprintf("g:%d", w)] = true
					rd[fmt.Sprintf("w:%d", w)] = true
					wr[fmt.Sprintf("w:%d", w)] = true
				}
			}
			reads = append(reads, rd)
			writes = append(writes, wr)
		}
	}
	return reads, writes
}

func intersects(a, b map[string]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// TestBuildDAGPreservesSequentialDependencies is the DAG-construction
// property test: for every ordered op pair of every corpus schedule,
// either the pair provably commutes (disjoint read/write sets under
// the independent oracle) or the later op is reachable from the
// earlier through DAG edges. Conversely every direct edge corresponds
// to a real dependence — no spurious serialization. Structural
// invariants (deps sorted, deduplicated, strictly backwards: acyclic
// by construction) are asserted on the way.
func TestBuildDAGPreservesSequentialDependencies(t *testing.T) {
	for si, s := range dagCorpus() {
		d, err := BuildDAG(s)
		if err != nil {
			t.Fatalf("schedule %d: %v", si, err)
		}
		n := len(d.Nodes)
		reads, writes := opRW(s)
		if len(reads) != n {
			t.Fatalf("schedule %d: oracle saw %d ops, DAG %d", si, len(reads), n)
		}
		// anc[j] = every node reachable backwards from j.
		anc := make([]map[int]bool, n)
		for j := 0; j < n; j++ {
			node := &d.Nodes[j]
			if node.Index != j {
				t.Fatalf("schedule %d node %d: Index %d", si, j, node.Index)
			}
			anc[j] = map[int]bool{}
			prev := -1
			for _, m := range node.Deps {
				if m <= prev {
					t.Fatalf("schedule %d node %d: deps %v not strictly ascending", si, j, node.Deps)
				}
				if m >= j {
					t.Fatalf("schedule %d node %d: dep %d not backwards (cycle risk)", si, j, m)
				}
				prev = m
				anc[j][m] = true
				for a := range anc[m] {
					anc[j][a] = true
				}
				// Each direct edge must be a real dependence.
				if !intersects(writes[m], reads[j]) && !intersects(writes[m], writes[j]) &&
					!intersects(reads[m], writes[j]) {
					t.Fatalf("schedule %d: spurious edge s%d -> s%d (disjoint read/write sets)",
						si, d.Nodes[m].Op.Step, node.Op.Step)
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dep := intersects(writes[i], reads[j]) || intersects(writes[i], writes[j]) ||
					intersects(reads[i], writes[j])
				if dep && !anc[j][i] {
					t.Fatalf("schedule %d: sequential dependency s%d -> s%d (%v -> %v) lost by the DAG",
						si, d.Nodes[i].Op.Step, d.Nodes[j].Op.Step, d.Nodes[i].Op.Kind, d.Nodes[j].Op.Kind)
				}
			}
		}
	}
}

// TestBuildDAGDeterministic rebuilds every corpus DAG from a reparsed
// schedule and requires identical dumps: the derivation depends only on
// the schedule text, never on map iteration order or prior state.
func TestBuildDAGDeterministic(t *testing.T) {
	for si, s := range dagCorpus() {
		a := MustBuildDAG(s).String()
		s2, err := Parse(s.String())
		if err != nil {
			t.Fatalf("schedule %d: %v", si, err)
		}
		if b := MustBuildDAG(s2).String(); a != b {
			t.Fatalf("schedule %d: DAG not deterministic:\n--- first\n%s--- second\n%s", si, a, b)
		}
	}
}

// TestParseDAGRoundTrip pins the String/ParseDAG fixed point and the
// edge-verification property: a dump whose edges section disagrees
// with the schedule's own derivation must be rejected.
func TestParseDAGRoundTrip(t *testing.T) {
	s := Compile(spec2(64, 5, 4, 4, true)).Optimize()
	d := MustBuildDAG(s)
	text := d.String()
	d2, err := ParseDAG(text)
	if err != nil {
		t.Fatal(err)
	}
	if d2.String() != text {
		t.Fatalf("ParseDAG round trip not a fixed point:\n--- first\n%s--- second\n%s", text, d2.String())
	}
	if _, err := ParseDAG(s.String()); err == nil {
		t.Fatal("ParseDAG accepted a dump with no edges section")
	}
	// Drop one edge line: the remaining edges no longer match the
	// schedule-derived DAG.
	lines := strings.Split(text, "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		if strings.Contains(lines[i], "<-") {
			lines = append(lines[:i], lines[i+1:]...)
			break
		}
	}
	if _, err := ParseDAG(strings.Join(lines, "\n")); err == nil {
		t.Fatal("ParseDAG accepted edges that disagree with the schedule")
	}
}

// TestOpResourceGroupConsistency is the overlap executor's
// deadlock-freedom precondition: for every collective-bearing op, all
// members of the op's group on any topology agree on the resource the
// op occupies (the resource is a function of the group, not the rank).
func TestOpResourceGroupConsistency(t *testing.T) {
	spec8x4 := topo.MustParseSpec("8x4:nvlink,ib")
	for si, s := range dagCorpus() {
		var tps []*topo.Topology
		tps = append(tps, nil)
		if s.P <= 32 {
			tps = append(tps, spec8x4.MustTopology(s.P))
		}
		for _, tp := range tps {
			for i := range s.Sections {
				for j := range s.Sections[i].Ops {
					op := &s.Sections[i].Ops[j]
					var group []int
					switch op.Kind {
					case KSpMM:
						// Per-rank groups: members must agree pairwise.
						for r := 0; r < s.P; r++ {
							res := s.OpResource(op, r, tp)
							for _, q := range s.colGroup(r) {
								if got := s.OpResource(op, q, tp); got != res {
									t.Fatalf("schedule %d s%d: rank %d resource %v, group member %d %v",
										si, op.Step, r, res, q, got)
								}
							}
						}
						continue
					default:
						group = s.world()
					}
					res := s.OpResource(op, group[0], tp)
					for _, r := range group[1:] {
						if got := s.OpResource(op, r, tp); got != res {
							t.Fatalf("schedule %d s%d (%v): rank %d resource %v, rank %d %v",
								si, op.Step, op.Kind, group[0], res, r, got)
						}
					}
				}
			}
		}
	}
}

// TestChooseOrderingOverlapDisagrees pins a problem shape where
// sequential and overlap pricing disagree on the best Table IV row: a
// wide hidden layer on 4 devices of the 8x4 reference machine. Row 10
// (fwd[DS] bwd[SD]) moves the fewest bytes end to end, but row 5
// (fwd[SD] bwd[DS]) exposes its redistribution earlier, so its DAG
// critical path is shorter — the overlap executor should train with 5
// even though the sequential interpreter is (marginally) faster with
// 10. The same shape is goldened in `rdminfo -plan -overlap` output.
func TestChooseOrderingOverlapDisagrees(t *testing.T) {
	h := hw.A6000()
	tp := topo.MustParseSpec("8x4:nvlink,ib").MustTopology(4)
	dims := []int{32, 256, 8}
	const n, nnz = 512, int64(65536)
	argminSeq, argminOvl := -1, -1
	var bestSeq, bestOvl float64
	for id := 0; id < costmodel.NumConfigs(2); id++ {
		sp := Spec{N: n, Dims: dims, Config: costmodel.ConfigFromID(id, 2),
			P: 4, RA: 4, Memoize: true, InputGrad: true}
		sched := Compile(sp).Optimize()
		seq := sched.PriceOn(nnz, h, tp).Time
		ovl := MustBuildDAG(sched).PriceDAGOn(sched.ApproxCensus(nnz), h, tp).Makespan
		if argminSeq < 0 || seq < bestSeq {
			argminSeq, bestSeq = id, seq
		}
		if argminOvl < 0 || ovl < bestOvl {
			argminOvl, bestOvl = id, ovl
		}
	}
	if argminSeq != 10 || argminOvl != 5 {
		t.Fatalf("argmin over Table IV rows: sequential %d, overlap %d; want 10 and 5", argminSeq, argminOvl)
	}
	// The greedy selectors descend over individual slots, so they can
	// land off the uniform-row argmin, but the overlap choice must never
	// have a longer critical path than the sequential choice.
	sp := Spec{N: n, Dims: dims, P: 4, RA: 4, Memoize: true, InputGrad: true}
	mk := func(c costmodel.Config) float64 {
		s := sp
		s.Config = c
		sched := Compile(s).Optimize()
		return MustBuildDAG(sched).PriceDAGOn(sched.ApproxCensus(nnz), h, tp).Makespan
	}
	seqPick := ChooseOrderingTopo(sp, nnz, h, tp)
	ovlPick := ChooseOrderingOverlap(sp, nnz, h, tp)
	if a, b := mk(ovlPick), mk(seqPick); a > b {
		t.Fatalf("overlap chooser picked %s (makespan %v), worse than sequential chooser's %s (%v)",
			ovlPick, a, seqPick, b)
	}
	if best := mk(costmodel.ConfigFromID(argminOvl, 2)); mk(ovlPick) > best {
		t.Fatalf("overlap chooser's %s has makespan %v, above the best uniform row's %v",
			ovlPick, mk(ovlPick), best)
	}
}

// TestPriceDAGOverlapNeverSlower prices every corpus DAG flat and
// hierarchical: the critical path can never exceed the sequential
// replay (overlap only removes idle waiting), and on a single device
// there is nothing to overlap, so the two are equal.
func TestPriceDAGOverlapNeverSlower(t *testing.T) {
	h := hw.A6000()
	spec8x4 := topo.MustParseSpec("8x4:nvlink,ib")
	for si, s := range dagCorpus() {
		d := MustBuildDAG(s)
		cen := s.ApproxCensus(int64(4 * s.N))
		for _, tp := range []*topo.Topology{nil, spec8x4.MustTopology(s.P)} {
			c := d.PriceDAGOn(cen, h, tp)
			if c.Makespan > c.SeqTime {
				t.Fatalf("schedule %d: critical path %v exceeds sequential %v", si, c.Makespan, c.SeqTime)
			}
			if s.P == 1 && c.Makespan != c.SeqTime {
				t.Fatalf("schedule %d: P=1 overlap %v != sequential %v", si, c.Makespan, c.SeqTime)
			}
			if c.Efficiency() < 0 || c.Efficiency() >= 1 {
				t.Fatalf("schedule %d: efficiency %v out of range", si, c.Efficiency())
			}
		}
	}
}
