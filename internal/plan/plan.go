// Package plan is the planner half of the engine's plan/execute split:
// it compiles one RDM training epoch — the forward pass, loss, backward
// pass, and optimizer update of a chosen Table IV ordering — into a
// typed, inspectable op schedule that internal/core interprets, the
// pricing model (price.go) audits byte-for-byte against the fabric
// meters, and the ordering chooser (choose.go) optimizes per layer.
//
// The IR is SSA-flavored: every op reads and writes virtual registers
// holding distributed matrices (dist.Mat tiles), each register is
// assigned exactly once, and layout pre/post-conditions are explicit
// (an SpMM consumes and produces the grid layout G(R_A); a GEMM is
// vertex-sliced Horizontal only; Redistribute converts between the
// two). Compile (compile.go) performs an abstract interpretation of the
// engine's epoch — tracking, per logical value, the set of layouts it
// has been materialized in, exactly like the executor's layout cache —
// so the naive schedule reproduces the engine op-for-op. The pass
// pipeline (passes.go) then elides redistributions whose source and
// target layouts already agree, removes dead ops (the G^0 chain when
// the input gradient is not wanted, memoizations nothing reuses), and
// renumbers registers and steps.
//
// Schedules serialize with String and load with Parse; the two are a
// fixed point (Parse(s.String()).String() == s.String()), fuzzed by
// FuzzPlanString.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/dist"
)

// Reg is a virtual register holding one distributed matrix.
type Reg int

// None marks an unused register operand.
const None Reg = -1

// Kind enumerates the op vocabulary.
type Kind uint8

const (
	// KInput materializes the input features X in Layout (free: the
	// initial distribution is a data-loading choice, §IV-A1).
	KInput Kind = iota
	// KRedist converts A from layout From to layout To (the
	// divide/exchange/merge all-to-all of Fig. 7).
	KRedist
	// KSpMM aggregates: Dst = Aᵀ·A (Forward) or A·A (backward), both
	// operands grid-laid-out; with R_A < P it allgathers the dense
	// input within the column group first (§III-E).
	KSpMM
	// KGEMM multiplies by a replicated weight: Dst = A·W[Weight]
	// (or ·Wᵀ when TransW), Horizontal only — communication-free.
	KGEMM
	// KGradGEMM computes the local partial of a weight gradient,
	// Dst = (A tile)ᵀ·(B tile), both Horizontal; the partial is
	// logically Replicated pending the all-reduce.
	KGradGEMM
	// KAllReduceGrad sums partial A across all devices into weight
	// gradient slot Weight.
	KAllReduceGrad
	// KReLU applies ReLU to A in place.
	KReLU
	// KReLUGrad multiplies A in place by the ReLU derivative mask
	// derived from B (H^{l-1}): applied locally when From == To,
	// otherwise a byte-packed mask travels From -> To on the fabric's
	// side channel.
	KReLUGrad
	// KAdd accumulates B into A in place (the GraphSAGE self term).
	KAdd
	// KMemoize records A as the layer's retained forward intermediate
	// AᵀH^{l-1} (§III-C); a register alias, free at runtime.
	KMemoize
	// KReuse reads a memoized intermediate back in the backward pass;
	// the explicit rewrite that replaces engine-internal memo state.
	KReuse
	// KLoss computes the weighted softmax cross-entropy over Horizontal
	// logits A, all-reduces the scalar loss, and produces the scaled
	// gradient G^L in Dst.
	KLoss
	// KMemWrite charges the memory write-out of A (the forward T
	// materialization the engine prices after its redistribution).
	KMemWrite
	// KUpdate applies the Adam step to all weights from the accumulated
	// gradient slots.
	KUpdate
	// KSpMMABC is the aggregate-before-communicate fusion (DESIGN.md
	// §4g): at R_A = P every rank holds the full adjacency, so instead of
	// redistributing a row-sparse A to the grid, aggregating, and
	// redistributing back, each rank partial-aggregates its own live rows
	// locally and the ranks exchange only the structurally touched result
	// rows, summed on arrival. Dst = A_adj·A, both Horizontal. Produced
	// only by the opt-in ABC rewrite pass, never by Compile/Optimize.
	KSpMMABC
)

// Op is one schedule step. Fields beyond Kind/Step are used or ignored
// per kind; Rows and Cols are the global shape of the value produced
// (or mutated in place).
type Op struct {
	Kind Kind
	// Step is the 1-based schedule-global step ID assigned by Finalize;
	// the executor tags every trace event it emits for this op with it.
	Step int
	Dst  Reg
	A, B Reg
	// Rows, Cols is the global shape of Dst (or A for in-place ops).
	Rows, Cols int
	// Layout is Dst's layout (KInput, KSpMM, KGEMM, KReLU, KAdd,
	// KMemoize, KReuse, KLoss, KGradGEMM).
	Layout dist.Layout
	// From, To are KRedist's conversion and KReLUGrad's mask movement
	// (From == To means the mask is already local).
	From, To dist.Layout
	// Forward selects the forward operator Aᵀ for KSpMM.
	Forward bool
	// Sparse marks a KRedist as row-sparse: only the schedule's live rows
	// (dist.GenRows(SparseSeed, N, Live)) travel, through the two-round
	// metadata + variable-volume payload exchange
	// (dist.RedistributeSparse).
	Sparse bool
	// Weight is the weight (and gradient) slot of KGEMM, KGradGEMM and
	// KAllReduceGrad.
	Weight int
	// TransW transposes the weight in KGEMM.
	TransW bool
}

// Section groups the ops of one phase of the epoch, in execution order.
// Phase is one of "init", "fwd", "loss", "bwd", "update"; Layer is the
// 1-based layer of "fwd"/"bwd" sections and 0 otherwise.
type Section struct {
	Phase string
	Layer int
	Ops   []Op
}

// Schedule is a compiled epoch: the full op sequence plus the problem
// shape it was compiled for. The executor interprets Sections in order;
// N, Dims and the flags are retained so the schedule prices itself and
// round-trips through String/Parse.
type Schedule struct {
	P, RA int
	N     int
	Dims  []int
	// Config is the Table IV ordering the schedule implements; it may
	// be non-uniform across layers (planner-chosen mixed orderings).
	Config                   costmodel.Config
	SAGE, Memoize, InputGrad bool
	// Live > 0 declares the input features row-sparse: exactly Live of
	// the N rows are nonzero, and the live set is
	// dist.GenRows(SparseSeed, N, Live) — the canonical seeded generator
	// shared with the feature synthesizer and the executor, so the
	// pricer's assumed rows and the fabric's shipped rows coincide by
	// construction. Live == 0 is the dense schedule.
	Live       int
	SparseSeed int64
	// GridL is dist.G(RA) normalized for P: the SpMM-side layout.
	GridL dist.Layout
	// NumRegs is the register-file size the executor allocates.
	NumRegs int
	// NumWeights is the weight-slot count (L, or 2L with SAGE).
	NumWeights int
	// Outputs are registers that are results of the epoch beyond the
	// loss and weight gradients (G^0 when InputGrad); dead-code
	// elimination keeps their producing chains.
	Outputs  []Reg
	Sections []Section
}

// Layers returns L.
func (s *Schedule) Layers() int { return len(s.Dims) - 1 }

// Ops returns the total op count across sections.
func (s *Schedule) Ops() int {
	n := 0
	for i := range s.Sections {
		n += len(s.Sections[i].Ops)
	}
	return n
}

// CountKind returns how many ops of the given kind the schedule holds.
func (s *Schedule) CountKind(k Kind) int {
	n := 0
	for i := range s.Sections {
		for j := range s.Sections[i].Ops {
			if s.Sections[i].Ops[j].Kind == k {
				n++
			}
		}
	}
	return n
}

// assigns reports whether ops of this kind define their Dst register
// (the rest mutate in place, charge costs, or reduce into weight
// slots).
func (k Kind) assigns() bool {
	switch k {
	case KInput, KRedist, KSpMM, KSpMMABC, KGEMM, KGradGEMM, KMemoize, KReuse, KLoss:
		return true
	}
	return false
}

func (k Kind) mnemonic(op *Op) string {
	switch k {
	case KInput:
		return "input"
	case KRedist:
		if op.Sparse {
			return "redist.sp"
		}
		return "redist"
	case KSpMM:
		if op.Forward {
			return "spmm.fwd"
		}
		return "spmm.bwd"
	case KSpMMABC:
		return "spmm.abc"
	case KGEMM:
		if op.TransW {
			return "gemm.t"
		}
		return "gemm"
	case KGradGEMM:
		return "gradgemm"
	case KAllReduceGrad:
		return "allreduce.grad"
	case KReLU:
		return "relu"
	case KReLUGrad:
		return "relugrad"
	case KAdd:
		return "add"
	case KMemoize:
		return "memoize"
	case KReuse:
		return "reuse"
	case KLoss:
		return "loss"
	case KMemWrite:
		return "memwrite"
	case KUpdate:
		return "update"
	}
	return "?"
}

// OpString renders one op in the canonical dump grammar (without the
// step prefix).
func (op *Op) OpString() string {
	shape := fmt.Sprintf("%dx%d", op.Rows, op.Cols)
	switch op.Kind {
	case KInput:
		return fmt.Sprintf("r%d = input %s %s", op.Dst, op.Layout, shape)
	case KRedist:
		return fmt.Sprintf("r%d = %s r%d %s->%s %s", op.Dst, op.Kind.mnemonic(op), op.A, op.From, op.To, shape)
	case KSpMM, KSpMMABC:
		return fmt.Sprintf("r%d = %s r%d %s %s", op.Dst, op.Kind.mnemonic(op), op.A, op.Layout, shape)
	case KGEMM:
		return fmt.Sprintf("r%d = %s r%d w%d %s", op.Dst, op.Kind.mnemonic(op), op.A, op.Weight, shape)
	case KGradGEMM:
		return fmt.Sprintf("r%d = gradgemm r%d r%d w%d %s", op.Dst, op.A, op.B, op.Weight, shape)
	case KAllReduceGrad:
		return fmt.Sprintf("allreduce.grad r%d w%d %s", op.A, op.Weight, shape)
	case KReLU:
		return fmt.Sprintf("relu r%d %s %s", op.A, op.Layout, shape)
	case KReLUGrad:
		return fmt.Sprintf("relugrad r%d r%d %s->%s %s", op.A, op.B, op.From, op.To, shape)
	case KAdd:
		return fmt.Sprintf("add r%d r%d %s %s", op.A, op.B, op.Layout, shape)
	case KMemoize:
		return fmt.Sprintf("r%d = memoize r%d %s", op.Dst, op.A, shape)
	case KReuse:
		return fmt.Sprintf("r%d = reuse r%d %s", op.Dst, op.A, shape)
	case KLoss:
		return fmt.Sprintf("r%d = loss r%d %s", op.Dst, op.A, shape)
	case KMemWrite:
		return fmt.Sprintf("memwrite r%d %s", op.A, shape)
	case KUpdate:
		return "update"
	}
	return "?"
}

func b01(v bool) int {
	if v {
		return 1
	}
	return 0
}

// String renders the schedule in the deterministic, parseable dump
// grammar. The dump is a fixed point of Parse: Parse(s.String())
// re-prints byte-identically.
func (s *Schedule) String() string {
	var b strings.Builder
	dims := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		dims[i] = fmt.Sprint(d)
	}
	fmt.Fprintf(&b, "schedule p=%d ra=%d n=%d dims=%s config=%d sage=%d memoize=%d inputgrad=%d regs=%d weights=%d",
		s.P, s.RA, s.N, strings.Join(dims, ","), s.Config.ID(),
		b01(s.SAGE), b01(s.Memoize), b01(s.InputGrad), s.NumRegs, s.NumWeights)
	if s.Live > 0 {
		fmt.Fprintf(&b, " live=%d sseed=%d", s.Live, s.SparseSeed)
	}
	b.WriteByte('\n')
	if len(s.Outputs) > 0 {
		outs := make([]string, len(s.Outputs))
		for i, r := range s.Outputs {
			outs[i] = fmt.Sprintf("r%d", r)
		}
		fmt.Fprintf(&b, "outputs %s\n", strings.Join(outs, " "))
	}
	for i := range s.Sections {
		sec := &s.Sections[i]
		if sec.Layer > 0 {
			fmt.Fprintf(&b, "section %s %d\n", sec.Phase, sec.Layer)
		} else {
			fmt.Fprintf(&b, "section %s\n", sec.Phase)
		}
		for j := range sec.Ops {
			op := &sec.Ops[j]
			fmt.Fprintf(&b, "  s%d %s\n", op.Step, op.OpString())
		}
	}
	return b.String()
}

// Structural caps keeping Parse/Validate safe on adversarial (fuzzed)
// input: no single field may force large allocations downstream.
const (
	maxP    = 4096
	maxDim  = 1 << 24
	maxRegs = 1 << 20
	maxOps  = 1 << 20
)

func parseLayout(tok string) (dist.Layout, error) {
	switch {
	case tok == "H":
		return dist.H, nil
	case tok == "V":
		return dist.V, nil
	case tok == "R":
		return dist.R, nil
	case len(tok) > 1 && tok[0] == 'G':
		var pj int
		if _, err := fmt.Sscanf(tok[1:], "%d", &pj); err != nil || pj < 1 || pj > maxP || fmt.Sprintf("G%d", pj) != tok {
			return dist.Layout{}, fmt.Errorf("plan: bad layout %q", tok)
		}
		return dist.G(pj), nil
	}
	return dist.Layout{}, fmt.Errorf("plan: bad layout %q", tok)
}

func parseReg(tok string) (Reg, error) {
	var r int
	if _, err := fmt.Sscanf(tok, "r%d", &r); err != nil || r < 0 || r >= maxRegs || fmt.Sprintf("r%d", r) != tok {
		return None, fmt.Errorf("plan: bad register %q", tok)
	}
	return Reg(r), nil
}

func parseWeight(tok string) (int, error) {
	var w int
	if _, err := fmt.Sscanf(tok, "w%d", &w); err != nil || w < 0 || w >= maxRegs || fmt.Sprintf("w%d", w) != tok {
		return 0, fmt.Errorf("plan: bad weight slot %q", tok)
	}
	return w, nil
}

func parseShape(tok string) (rows, cols int, err error) {
	if _, err := fmt.Sscanf(tok, "%dx%d", &rows, &cols); err != nil ||
		rows < 1 || cols < 1 || rows > maxDim || cols > maxDim ||
		fmt.Sprintf("%dx%d", rows, cols) != tok {
		return 0, 0, fmt.Errorf("plan: bad shape %q", tok)
	}
	return rows, cols, nil
}

func parseFromTo(tok string) (from, to dist.Layout, err error) {
	i := strings.Index(tok, "->")
	if i < 0 {
		return from, to, fmt.Errorf("plan: bad layout pair %q", tok)
	}
	if from, err = parseLayout(tok[:i]); err != nil {
		return from, to, err
	}
	to, err = parseLayout(tok[i+2:])
	return from, to, err
}

// Parse loads a schedule from its String dump. It accepts exactly the
// grammar String emits; anything else is an error. Parsed schedules are
// structurally validated (Validate) before being returned.
func Parse(text string) (*Schedule, error) {
	lines := strings.Split(text, "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "schedule ") {
		return nil, fmt.Errorf("plan: missing schedule header")
	}
	s := &Schedule{}
	var dimsStr string
	var cfgID, sage, memo, igrad int
	if _, err := fmt.Sscanf(lines[0], "schedule p=%d ra=%d n=%d dims=%s config=%d sage=%d memoize=%d inputgrad=%d regs=%d weights=%d",
		&s.P, &s.RA, &s.N, &dimsStr, &cfgID, &sage, &memo, &igrad, &s.NumRegs, &s.NumWeights); err != nil {
		return nil, fmt.Errorf("plan: bad header: %v", err)
	}
	if s.P < 1 || s.P > maxP || s.RA < 1 || s.RA > s.P || s.P%s.RA != 0 {
		return nil, fmt.Errorf("plan: bad p=%d ra=%d", s.P, s.RA)
	}
	if s.N < 1 || s.N > maxDim || s.NumRegs < 0 || s.NumRegs > maxRegs ||
		s.NumWeights < 0 || s.NumWeights > maxRegs {
		return nil, fmt.Errorf("plan: header out of range")
	}
	if sage|memo|igrad > 1 || sage < 0 || memo < 0 || igrad < 0 {
		return nil, fmt.Errorf("plan: bad flags")
	}
	s.SAGE, s.Memoize, s.InputGrad = sage == 1, memo == 1, igrad == 1
	// The sparse extension (" live=N sseed=S") is appended to the header
	// only for sparse schedules; the positional Sscanf above ignores
	// trailing tokens, so dense dumps and old parsers are unaffected.
	if i := strings.Index(lines[0], " live="); i >= 0 {
		if _, err := fmt.Sscanf(lines[0][i:], " live=%d sseed=%d", &s.Live, &s.SparseSeed); err != nil {
			return nil, fmt.Errorf("plan: bad sparse header: %v", err)
		}
		if s.Live < 1 || s.Live > s.N ||
			fmt.Sprintf(" live=%d sseed=%d", s.Live, s.SparseSeed) != lines[0][i:] {
			return nil, fmt.Errorf("plan: bad sparse header %q", lines[0][i:])
		}
	}
	for _, d := range strings.Split(dimsStr, ",") {
		var v int
		if _, err := fmt.Sscanf(d, "%d", &v); err != nil || v < 1 || v > maxDim || fmt.Sprint(v) != d {
			return nil, fmt.Errorf("plan: bad dim %q", d)
		}
		s.Dims = append(s.Dims, v)
	}
	if len(s.Dims) < 2 || len(s.Dims) > 64 {
		return nil, fmt.Errorf("plan: need 2..64 dims, got %d", len(s.Dims))
	}
	L := s.Layers()
	if cfgID < 0 || cfgID >= costmodel.NumConfigs(L) {
		return nil, fmt.Errorf("plan: config %d out of range for L=%d", cfgID, L)
	}
	s.Config = costmodel.ConfigFromID(cfgID, L)
	s.GridL = dist.G(s.RA).Normalize(s.P)

	nops := 0
	for ln := 1; ln < len(lines); ln++ {
		line := lines[ln]
		if line == "" {
			if ln != len(lines)-1 {
				return nil, fmt.Errorf("plan: blank line %d", ln+1)
			}
			continue
		}
		switch {
		case strings.HasPrefix(line, "outputs "):
			if ln != 1 || len(s.Outputs) > 0 {
				return nil, fmt.Errorf("plan: misplaced outputs line")
			}
			for _, tok := range strings.Fields(line)[1:] {
				r, err := parseReg(tok)
				if err != nil {
					return nil, err
				}
				s.Outputs = append(s.Outputs, r)
			}
			if len(s.Outputs) == 0 {
				return nil, fmt.Errorf("plan: empty outputs line")
			}
		case strings.HasPrefix(line, "section "):
			f := strings.Fields(line)
			sec := Section{}
			switch len(f) {
			case 2:
				sec.Phase = f[1]
				if sec.Phase != "init" && sec.Phase != "loss" && sec.Phase != "update" {
					return nil, fmt.Errorf("plan: section %q needs no layer or is unknown", f[1])
				}
			case 3:
				sec.Phase = f[1]
				if sec.Phase != "fwd" && sec.Phase != "bwd" {
					return nil, fmt.Errorf("plan: layered section %q unknown", f[1])
				}
				if _, err := fmt.Sscanf(f[2], "%d", &sec.Layer); err != nil || sec.Layer < 1 || sec.Layer > L || fmt.Sprint(sec.Layer) != f[2] {
					return nil, fmt.Errorf("plan: bad section layer %q", f[2])
				}
			default:
				return nil, fmt.Errorf("plan: bad section line %q", line)
			}
			s.Sections = append(s.Sections, sec)
		case strings.HasPrefix(line, "  s"):
			if len(s.Sections) == 0 {
				return nil, fmt.Errorf("plan: op before any section")
			}
			if nops++; nops > maxOps {
				return nil, fmt.Errorf("plan: too many ops")
			}
			op, err := parseOp(strings.Fields(line))
			if err != nil {
				return nil, err
			}
			sec := &s.Sections[len(s.Sections)-1]
			sec.Ops = append(sec.Ops, op)
		default:
			return nil, fmt.Errorf("plan: bad line %q", line)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseOp decodes one "sN mnemonic ..." op line (already
// whitespace-split).
func parseOp(f []string) (Op, error) {
	var op Op
	bad := func() (Op, error) { return op, fmt.Errorf("plan: bad op line %q", strings.Join(f, " ")) }
	if len(f) < 2 {
		return bad()
	}
	var step int
	if _, err := fmt.Sscanf(f[0], "s%d", &step); err != nil || step < 1 || step > maxOps || fmt.Sprintf("s%d", step) != f[0] {
		return bad()
	}
	op.Step = step
	op.Dst, op.A, op.B = None, None, None
	rest := f[1:]
	// Assignment forms: "rD = mnemonic ...".
	if len(rest) >= 3 && rest[1] == "=" {
		d, err := parseReg(rest[0])
		if err != nil {
			return bad()
		}
		op.Dst = d
		rest = rest[2:]
	}
	var err error
	mn := rest[0]
	args := rest[1:]
	reg := func(i int) (Reg, bool) {
		if i >= len(args) {
			return None, false
		}
		r, e := parseReg(args[i])
		if e != nil {
			return None, false
		}
		return r, true
	}
	shape := func(i int) bool {
		if i != len(args)-1 {
			return false
		}
		op.Rows, op.Cols, err = parseShape(args[i])
		return err == nil
	}
	ok := false
	switch mn {
	case "input":
		if op.Dst != None && len(args) == 2 {
			if op.Layout, err = parseLayout(args[0]); err == nil && shape(1) {
				ok = true
			}
		}
		op.Kind = KInput
	case "redist", "redist.sp":
		if a, k := reg(0); k && op.Dst != None && len(args) == 3 {
			op.A = a
			if op.From, op.To, err = parseFromTo(args[1]); err == nil && shape(2) {
				op.Layout = op.To
				ok = true
			}
		}
		op.Kind, op.Sparse = KRedist, mn == "redist.sp"
	case "spmm.fwd", "spmm.bwd":
		if a, k := reg(0); k && op.Dst != None && len(args) == 3 {
			op.A = a
			if op.Layout, err = parseLayout(args[1]); err == nil && shape(2) {
				ok = true
			}
		}
		op.Kind, op.Forward = KSpMM, mn == "spmm.fwd"
	case "spmm.abc":
		if a, k := reg(0); k && op.Dst != None && len(args) == 3 {
			op.A = a
			if op.Layout, err = parseLayout(args[1]); err == nil && shape(2) {
				ok = true
			}
		}
		op.Kind, op.Forward = KSpMMABC, true
	case "gemm", "gemm.t":
		if a, k := reg(0); k && op.Dst != None && len(args) == 3 {
			op.A = a
			if op.Weight, err = parseWeight(args[1]); err == nil && shape(2) {
				op.Layout = dist.H
				ok = true
			}
		}
		op.Kind, op.TransW = KGEMM, mn == "gemm.t"
	case "gradgemm":
		a, ka := reg(0)
		b, kb := reg(1)
		if ka && kb && op.Dst != None && len(args) == 4 {
			op.A, op.B = a, b
			if op.Weight, err = parseWeight(args[2]); err == nil && shape(3) {
				op.Layout = dist.R
				ok = true
			}
		}
		op.Kind = KGradGEMM
	case "allreduce.grad":
		if a, k := reg(0); k && op.Dst == None && len(args) == 3 {
			op.A = a
			if op.Weight, err = parseWeight(args[1]); err == nil && shape(2) {
				ok = true
			}
		}
		op.Kind = KAllReduceGrad
	case "relu":
		if a, k := reg(0); k && op.Dst == None && len(args) == 3 {
			op.A = a
			if op.Layout, err = parseLayout(args[1]); err == nil && shape(2) {
				ok = true
			}
		}
		op.Kind = KReLU
	case "relugrad":
		a, ka := reg(0)
		b, kb := reg(1)
		if ka && kb && op.Dst == None && len(args) == 4 {
			op.A, op.B = a, b
			if op.From, op.To, err = parseFromTo(args[2]); err == nil && shape(3) {
				op.Layout = op.To
				ok = true
			}
		}
		op.Kind = KReLUGrad
	case "add":
		a, ka := reg(0)
		b, kb := reg(1)
		if ka && kb && op.Dst == None && len(args) == 4 {
			op.A, op.B = a, b
			if op.Layout, err = parseLayout(args[2]); err == nil && shape(3) {
				ok = true
			}
		}
		op.Kind = KAdd
	case "memoize", "reuse", "loss":
		if a, k := reg(0); k && op.Dst != None && len(args) == 2 {
			op.A = a
			if shape(1) {
				op.Layout = dist.H
				ok = true
			}
		}
		switch mn {
		case "memoize":
			op.Kind = KMemoize
		case "reuse":
			op.Kind = KReuse
		default:
			op.Kind = KLoss
		}
	case "memwrite":
		if a, k := reg(0); k && op.Dst == None && len(args) == 2 {
			op.A = a
			if shape(1) {
				ok = true
			}
		}
		op.Kind = KMemWrite
	case "update":
		ok = op.Dst == None && len(args) == 0
		op.Kind = KUpdate
	default:
		return bad()
	}
	if !ok {
		return bad()
	}
	return op, nil
}

// Validate checks the schedule's structural invariants: in-range
// header fields, single assignment, definition before use, strictly
// increasing step IDs, weight slots in range, and per-op layout
// pre/post-conditions (SpMM operands grid-laid-out, GEMM operands
// Horizontal, Redistribute sources matching their register's layout).
// Compile output always validates; Parse rejects input that does not.
func (s *Schedule) Validate() error {
	if len(s.Dims) < 2 {
		return fmt.Errorf("plan: need at least one layer")
	}
	if s.Config.Layers() != s.Layers() {
		return fmt.Errorf("plan: config/dims layer mismatch")
	}
	if s.NumRegs > maxRegs || s.Ops() > maxOps {
		return fmt.Errorf("plan: schedule too large")
	}
	wantWeights := s.Layers()
	if s.SAGE {
		wantWeights *= 2
	}
	if s.NumWeights != wantWeights {
		return fmt.Errorf("plan: weights=%d, want %d", s.NumWeights, wantWeights)
	}
	layouts := make(map[Reg]dist.Layout, s.NumRegs)
	shapes := make(map[Reg][2]int, s.NumRegs)
	lastStep := 0
	use := func(r Reg, want *dist.Layout) error {
		l, ok := layouts[r]
		if !ok {
			return fmt.Errorf("plan: r%d used before definition", r)
		}
		if want != nil && l != *want {
			return fmt.Errorf("plan: r%d has layout %s, op needs %s", r, l, *want)
		}
		return nil
	}
	def := func(r Reg, l dist.Layout, rows, cols int) error {
		if r < 0 || int(r) >= s.NumRegs {
			return fmt.Errorf("plan: r%d out of range (regs=%d)", r, s.NumRegs)
		}
		if _, dup := layouts[r]; dup {
			return fmt.Errorf("plan: r%d assigned twice", r)
		}
		layouts[r] = l
		shapes[r] = [2]int{rows, cols}
		return nil
	}
	for i := range s.Sections {
		for j := range s.Sections[i].Ops {
			op := &s.Sections[i].Ops[j]
			if op.Step <= lastStep {
				return fmt.Errorf("plan: step %d not increasing", op.Step)
			}
			lastStep = op.Step
			var err error
			switch op.Kind {
			case KInput:
				err = def(op.Dst, op.Layout.Normalize(s.P), op.Rows, op.Cols)
			case KRedist:
				from := op.From.Normalize(s.P)
				if op.Sparse && s.Live <= 0 {
					err = fmt.Errorf("plan: sparse redist in a dense schedule (live=0)")
				} else if err = use(op.A, &from); err == nil {
					err = def(op.Dst, op.To.Normalize(s.P), op.Rows, op.Cols)
				}
			case KSpMMABC:
				h := dist.H
				if s.RA != s.P {
					err = fmt.Errorf("plan: spmm.abc needs ra == p, have ra=%d p=%d", s.RA, s.P)
				} else if op.Layout.Normalize(s.P) != dist.H {
					err = fmt.Errorf("plan: spmm.abc layout %s, want H", op.Layout)
				} else if err = use(op.A, &h); err == nil {
					err = def(op.Dst, dist.H, op.Rows, op.Cols)
				}
			case KSpMM:
				if op.Layout.Normalize(s.P) != s.GridL {
					err = fmt.Errorf("plan: spmm layout %s, want grid %s", op.Layout, s.GridL)
				} else if err = use(op.A, &s.GridL); err == nil {
					err = def(op.Dst, s.GridL, op.Rows, op.Cols)
				}
			case KGEMM:
				h := dist.H
				if err = use(op.A, &h); err == nil {
					if op.Weight < 0 || op.Weight >= s.NumWeights {
						err = fmt.Errorf("plan: weight slot %d out of range", op.Weight)
					} else {
						err = def(op.Dst, dist.H, op.Rows, op.Cols)
					}
				}
			case KGradGEMM:
				h := dist.H
				if err = use(op.A, &h); err == nil {
					if err = use(op.B, &h); err == nil {
						if op.Weight < 0 || op.Weight >= s.NumWeights {
							err = fmt.Errorf("plan: weight slot %d out of range", op.Weight)
						} else {
							err = def(op.Dst, dist.R, op.Rows, op.Cols)
						}
					}
				}
			case KAllReduceGrad:
				r := dist.R
				if err = use(op.A, &r); err == nil && (op.Weight < 0 || op.Weight >= s.NumWeights) {
					err = fmt.Errorf("plan: weight slot %d out of range", op.Weight)
				}
			case KReLU:
				l := op.Layout.Normalize(s.P)
				err = use(op.A, &l)
			case KReLUGrad:
				to := op.To.Normalize(s.P)
				from := op.From.Normalize(s.P)
				if err = use(op.A, &to); err == nil {
					err = use(op.B, &from)
				}
			case KAdd:
				l := op.Layout.Normalize(s.P)
				if err = use(op.A, &l); err == nil {
					err = use(op.B, &l)
				}
			case KMemoize, KReuse:
				if err = use(op.A, nil); err == nil {
					err = def(op.Dst, layouts[op.A], op.Rows, op.Cols)
				}
			case KLoss:
				h := dist.H
				if err = use(op.A, &h); err == nil {
					err = def(op.Dst, dist.H, op.Rows, op.Cols)
				}
			case KMemWrite:
				err = use(op.A, nil)
			case KUpdate:
				// No operands.
			default:
				err = fmt.Errorf("plan: unknown op kind %d", op.Kind)
			}
			if err != nil {
				return err
			}
		}
	}
	for _, r := range s.Outputs {
		if err := use(r, nil); err != nil {
			return fmt.Errorf("plan: output %v", err)
		}
	}
	return nil
}

// clone deep-copies the schedule so passes can rewrite freely.
func (s *Schedule) clone() *Schedule {
	t := *s
	t.Dims = append([]int(nil), s.Dims...)
	t.Config = costmodel.ConfigFromID(s.Config.ID(), s.Layers())
	t.Outputs = append([]Reg(nil), s.Outputs...)
	t.Sections = make([]Section, len(s.Sections))
	for i := range s.Sections {
		t.Sections[i] = s.Sections[i]
		t.Sections[i].Ops = append([]Op(nil), s.Sections[i].Ops...)
	}
	return &t
}

// gridLayouts returns the sorted layout keys a value map holds, in the
// executor cache's deterministic source preference: H, then V, then
// grids by ascending string key.
func preferLayout(have map[dist.Layout]Reg) dist.Layout {
	if _, ok := have[dist.H]; ok {
		return dist.H
	}
	if _, ok := have[dist.V]; ok {
		return dist.V
	}
	keys := make([]string, 0, len(have))
	byKey := make(map[string]dist.Layout, len(have))
	for l := range have {
		keys = append(keys, l.String())
		byKey[l.String()] = l
	}
	if len(keys) == 0 {
		panic("plan: empty layout set")
	}
	sort.Strings(keys)
	return byKey[keys[0]]
}
