package plan

import (
	"testing"
)

// FuzzPlanString checks the schedule dump grammar is a parse fixed
// point: any text Parse accepts must re-print to a dump that parses to
// the byte-identical dump (so checked-in golden schedules and
// `rdminfo -plan` output are stable under a load/store round trip).
// Any schedule Parse accepts that BuildDAG also accepts must further
// yield a well-formed, deterministic DAG whose dump survives its own
// String/ParseDAG round trip.
func FuzzPlanString(f *testing.F) {
	f.Add("schedule p=1 ra=1 n=4 dims=3,2 config=0 sage=0 memoize=0 inputgrad=0 regs=0 weights=1\n")
	f.Add(Compile(spec2(64, 0, 4, 4, true)).Optimize().String())
	f.Add(Compile(spec2(64, 15, 8, 2, false)).Optimize().String())
	f.Add(Compile(Spec{N: 7, Dims: []int{5, 4, 3, 2}, P: 2, RA: 2, SAGE: true, Memoize: true}).String())
	f.Add(Compile(spec2(48, 6, 8, 2, true)).Optimize().String())
	f.Add(Compile(Spec{N: 32, Dims: []int{8, 6, 4}, Config: spec2(32, 9, 4, 4, false).Config,
		P: 4, RA: 2, SAGE: true, Memoize: true, InputGrad: true}).Optimize().String())
	f.Add(MustBuildDAG(Compile(spec2(64, 10, 4, 4, true)).Optimize()).String())
	f.Fuzz(func(t *testing.T, text string) {
		if d, err := ParseDAG(text); err == nil {
			// Any DAG dump ParseDAG accepts must be a String fixed point:
			// its edges were already verified against the schedule.
			p1 := d.String()
			d2, err := ParseDAG(p1)
			if err != nil {
				t.Fatalf("own DAG dump rejected: %v\n%s", err, p1)
			}
			if p2 := d2.String(); p2 != p1 {
				t.Fatalf("DAG dump not a fixed point:\n--- first\n%s--- second\n%s", p1, p2)
			}
		}
		s, err := Parse(text)
		if err != nil {
			return
		}
		d1 := s.String()
		s2, err := Parse(d1)
		if err != nil {
			t.Fatalf("own dump rejected: %v\n%s", err, d1)
		}
		if d2 := s2.String(); d2 != d1 {
			t.Fatalf("dump not a fixed point:\n--- first\n%s--- second\n%s", d1, d2)
		}
		dag, err := BuildDAG(s)
		if err != nil {
			return // not every parseable schedule is executable
		}
		for j := range dag.Nodes {
			prev := -1
			for _, m := range dag.Nodes[j].Deps {
				if m <= prev || m >= j {
					t.Fatalf("node %d: malformed deps %v", j, dag.Nodes[j].Deps)
				}
				prev = m
			}
		}
		dd1 := dag.String()
		if b := MustBuildDAG(s2).String(); b != dd1 {
			t.Fatalf("DAG not deterministic across reparse:\n--- first\n%s--- second\n%s", dd1, b)
		}
		dag2, err := ParseDAG(dd1)
		if err != nil {
			t.Fatalf("own DAG dump rejected: %v\n%s", err, dd1)
		}
		if dd2 := dag2.String(); dd2 != dd1 {
			t.Fatalf("DAG dump not a fixed point:\n--- first\n%s--- second\n%s", dd1, dd2)
		}
	})
}
