package plan

import (
	"testing"
)

// FuzzPlanString checks the schedule dump grammar is a parse fixed
// point: any text Parse accepts must re-print to a dump that parses to
// the byte-identical dump (so checked-in golden schedules and
// `rdminfo -plan` output are stable under a load/store round trip).
func FuzzPlanString(f *testing.F) {
	f.Add("schedule p=1 ra=1 n=4 dims=3,2 config=0 sage=0 memoize=0 inputgrad=0 regs=0 weights=1\n")
	f.Add(Compile(spec2(64, 0, 4, 4, true)).Optimize().String())
	f.Add(Compile(spec2(64, 15, 8, 2, false)).Optimize().String())
	f.Add(Compile(Spec{N: 7, Dims: []int{5, 4, 3, 2}, P: 2, RA: 2, SAGE: true, Memoize: true}).String())
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			return
		}
		d1 := s.String()
		s2, err := Parse(d1)
		if err != nil {
			t.Fatalf("own dump rejected: %v\n%s", err, d1)
		}
		if d2 := s2.String(); d2 != d1 {
			t.Fatalf("dump not a fixed point:\n--- first\n%s--- second\n%s", d1, d2)
		}
	})
}
