package plan

import (
	"gnnrdm/internal/dist"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
)

// This file prices a dependency DAG by exact per-device simulation:
// every device gets one occupancy cursor per resource (hw.Occupancy),
// every op replays the interpreter's charge sequence — the same kernel
// charges, in the same order, with each rank's own tile shapes — and
// every collective synchronizes its group to max(member deposits) +
// the fabric's own cost formula for the same group and byte census.
// Because both the charges and the rendezvous rule are copied from the
// executor rather than approximated, the resulting clocks equal the
// live fabric's device clocks exactly: overlapped clocks when each op
// starts at max(resource free, dependency finishes), sequential clocks
// when ops run back to back on a single timeline. verify pins both
// equalities (CheckOverlapEquivalence).

// Census carries the per-rank quantities pricing cannot derive from
// the schedule alone: the adjacency row-panel stored-entry counts the
// engine charges its SpMMs with, and optional straggler multipliers.
type Census struct {
	// NNZFwd and NNZBwd are each rank's forward (Aᵀ) and backward (A)
	// panel NNZ. Length P.
	NNZFwd, NNZBwd []int64
	// Slow optionally multiplies rank r's kernel charges (straggler
	// model, comm.Device.SetComputeSlowdown); nil or values <= 1 mean
	// no slowdown.
	Slow []float64
	// ABCPairs and NNZABC carry the KSpMMABC structural census: result
	// rows shipped r→q and each rank's partial-aggregation stored-entry
	// work. ApproxCensus fills them analytically whenever R_A == P (the
	// op's validity precondition); schedules without ABC ops ignore
	// them.
	ABCPairs [][]int64
	NNZABC   []int64
}

// ApproxCensus estimates a census from a global stored-entry count by
// distributing nnz proportionally to each rank's panel rows, rounded
// up — the same formula the aggregate pricer (PriceOn) uses for its
// busiest-device panel. Use the engine's real panel counts
// (core.PanelCensus) when exact clock equality matters.
func (s *Schedule) ApproxCensus(nnz int64) Census {
	c := Census{NNZFwd: make([]int64, s.P), NNZBwd: make([]int64, s.P)}
	for r := 0; r < s.P; r++ {
		rlo, rhi := dist.RowRange(s.GridL, s.P, r, s.N)
		prows := rhi - rlo
		panel := (nnz*int64(prows) + int64(s.N) - 1) / int64(s.N)
		c.NNZFwd[r] = panel
		c.NNZBwd[r] = panel
	}
	if s.RA == s.P {
		c.ABCPairs, c.NNZABC = s.ApproxABCPairs(nnz)
	}
	return c
}

// DAGCost is the result of pricing a DAG on a topology: per-device
// overlapped and sequential finish times for the priced run, with
// their maxima. Charges depend on shapes, not values, so every epoch
// replays the same sequence — but ranks do not barrier at epoch
// boundaries, so an E-epoch run is not exactly E times one epoch;
// PriceDAGEpochs carries per-device clocks across boundaries the same
// way the live fabric does.
type DAGCost struct {
	PerDevice    []float64 // overlapped finish per rank
	Makespan     float64   // max over PerDevice
	PerDeviceSeq []float64
	SeqTime      float64
}

// Efficiency returns the overlap win as 1 - critical-path/sequential
// (0 = no op pair overlapped, larger = more comm hidden).
func (c DAGCost) Efficiency() float64 {
	if c.SeqTime <= 0 {
		return 0
	}
	return 1 - c.Makespan/c.SeqTime
}

// PriceDAG prices on the flat interconnect (nil topology).
func (d *DAG) PriceDAG(cen Census, h *hw.Model) DAGCost {
	return d.PriceDAGOn(cen, h, nil)
}

// PriceDAGOn prices the DAG's critical path on an interconnect
// topology (nil = flat, exactly the pre-topology fabric formulas) and,
// in the same pass structure, the sequential schedule, so callers can
// compare like for like. Collectives are priced under the fabric's
// default Auto algorithm selection.
func (d *DAG) PriceDAGOn(cen Census, h *hw.Model, tp *topo.Topology) DAGCost {
	return d.PriceDAGEpochs(cen, h, tp, 1)
}

// PriceDAGEpochs prices an E-epoch run: the schedule replays E times
// with per-device clocks carried across epoch boundaries (the overlap
// executor rejoins its resource lanes at each boundary — an occupancy
// Join — but ranks never barrier, so later epochs start from skewed
// clocks exactly as the live fabric does). The result equals the live
// device clocks after E epochs, overlapped and sequential.
func (d *DAG) PriceDAGEpochs(cen Census, h *hw.Model, tp *topo.Topology, epochs int) DAGCost {
	return d.PriceDAGEpochsCached(cen, h, tp, epochs, nil)
}

// PriceDAGEpochsCached is PriceDAGEpochs sharing a PriceCache across
// calls (nil prices with a private cache): a sweep that prices many
// schedules on one (P, hardware, topology) context — or differentially
// checks the sim engine against this pricer — computes each regrid's
// quadratic byte census and topology routing once. Cached and uncached
// pricing are bit-identical.
func (d *DAG) PriceDAGEpochsCached(cen Census, h *hw.Model, tp *topo.Topology, epochs int, pc *PriceCache) DAGCost {
	if pc == nil {
		pc = NewPriceCache()
	}
	over := d.simulate(cen, h, tp, true, epochs, pc)
	seq := d.simulate(cen, h, tp, false, epochs, pc)
	c := DAGCost{PerDevice: over, PerDeviceSeq: seq}
	for r := range over {
		c.Makespan = max(c.Makespan, over[r])
		c.SeqTime = max(c.SeqTime, seq[r])
	}
	return c
}

// regShape tracks a register's global shape and layout during the walk
// (the pricer's mirror of the executor's live matrices).
type regShape struct {
	layout     dist.Layout
	rows, cols int
}

// simulate replays the schedule's charge sequence on every device,
// epochs times. With overlap=true each op starts at max(its resource's
// cursor, its DAG dependencies' finishes) and advances only its
// resource, with all resources joined at each epoch boundary (the
// executor's lane merge); with overlap=false ops run in schedule order
// on a single joined timeline per device (resource cursors all advance
// together), reproducing the sequential interpreter.
func (d *DAG) simulate(cen Census, h *hw.Model, tp *topo.Topology, overlap bool, epochs int, pc *PriceCache) []float64 {
	s := d.Sched
	p := s.P
	pc.Bind(p, h, tp)
	occ := make([]hw.Occupancy, p)
	finish := make([][]float64, len(d.Nodes))
	regs := make(map[Reg]regShape, s.NumRegs)
	clk := make([]float64, p)
	world := s.world()
	var resTab *ResourceTable
	if overlap {
		resTab = d.Resources(tp)
	}

	kernel := func(r int, t float64) {
		if cen.Slow != nil && r < len(cen.Slow) && cen.Slow[r] > 1 {
			t *= cen.Slow[r]
		}
		clk[r] += t
	}
	mem := func(r int, bytes int64) { kernel(r, h.MemTime(bytes)) }
	// rendezvous synchronizes the group at max(deposits) + t, the
	// fabric's collective completion rule. Groups of one device
	// short-circuit before any charge.
	rendezvous := func(group []int, t float64) {
		if len(group) < 2 {
			return
		}
		var m float64
		for _, r := range group {
			m = max(m, clk[r])
		}
		for _, r := range group {
			clk[r] = m + t
		}
	}
	tile := func(l dist.Layout, r, rows, cols int) int64 {
		tr, tc := dist.TileShape(l, p, r, rows, cols)
		return int64(tr) * int64(tc) * 4
	}
	// The per-rank census of a from->to regrid — what rank r packs for
	// others (divide) and unpacks from others (merge), self excluded,
	// plus the busiest injector for the flat time formula — comes from
	// the PriceCache, which runs dist.TileOverlap's arithmetic over
	// precomputed range tables (bit-identical, memoized per shape).
	alltoallTime := func(from, to dist.Layout, rows, cols int, packed bool, maxInj int64) float64 {
		if p < 2 {
			return 0
		}
		if tp != nil {
			return pc.AllToAllCost(from, to, rows, cols, packed).Time
		}
		return h.CollectiveTime(hw.OpAllToAll, p, maxInj)
	}
	// regrid replays dist.regrid's charge order on every rank: divide
	// memcpy, all-to-all rendezvous, merge memcpy. The memcpy charges
	// are unconditional (ChargeMem(0) still costs a kernel launch).
	regrid := func(from, to dist.Layout, rows, cols int, packed bool) {
		x := pc.Exchange(from, to, rows, cols, packed)
		for _, r := range world {
			mem(r, x.Div[r])
		}
		rendezvous(world, alltoallTime(from, to, rows, cols, packed, x.MaxInj))
		for _, r := range world {
			mem(r, x.Mer[r])
		}
	}
	// sparseRounds replays one two-round sparse exchange's charge order
	// (dist.RedistributeSparse / the KSpMMABC result exchange): metadata
	// divide memcpy, metadata rendezvous, metadata merge, payload
	// divide, payload rendezvous, payload merge. timeOf prices one
	// round's collective under the topology (or the flat closed form
	// over the round's busiest injector).
	sparseRounds := func(x *SparseExchangeCensus, metaTime, payTime func() float64) {
		for _, r := range world {
			mem(r, x.MetaDiv[r])
		}
		rendezvous(world, metaTime())
		for _, r := range world {
			mem(r, x.MetaMer[r])
		}
		for _, r := range world {
			mem(r, x.PayDiv[r])
		}
		rendezvous(world, payTime())
		for _, r := range world {
			mem(r, x.PayMer[r])
		}
	}
	sparseRegrid := func(from, to dist.Layout, rows, cols int) {
		x := pc.SparseExchange(s, from, to, rows, cols)
		metaTime := func() float64 {
			if tp != nil {
				return pc.SparseAllToAllCost(s, from, to, rows, cols, true).Time
			}
			return h.CollectiveTime(hw.OpAllToAll, p, x.MetaMaxInj)
		}
		payTime := func() float64 {
			if tp != nil {
				return pc.SparseAllToAllCost(s, from, to, rows, cols, false).Time
			}
			return h.CollectiveTime(hw.OpAllToAll, p, x.PayMaxInj)
		}
		sparseRounds(x, metaTime, payTime)
	}
	allgatherTime := func(group []int, chunks []int64) float64 {
		if len(group) < 2 {
			return 0
		}
		if tp != nil {
			_, cst := tp.AllGather(h, topo.Auto, group, chunks)
			return cst.Time
		}
		var total int64
		for _, b := range chunks {
			total += b
		}
		return h.CollectiveTime(hw.OpAllGather, len(group), total)
	}
	allreduceTime := func(group []int, bytes int64) float64 {
		if len(group) < 2 {
			return 0
		}
		if tp != nil {
			_, cst := tp.AllReduce(h, topo.Auto, group, bytes)
			return cst.Time
		}
		return h.CollectiveTime(hw.OpAllReduce, len(group), bytes)
	}

	var wBytes int64
	for l := 1; l < len(s.Dims); l++ {
		wBytes += int64(s.Dims[l-1]) * int64(s.Dims[l]) * 4
	}
	if s.SAGE {
		wBytes *= 2
	}

	for ep := 0; ep < epochs; ep++ {
		for i := range d.Nodes {
			n := &d.Nodes[i]
			op := n.Op
			// Position each rank's clock where the op starts on it.
			if overlap {
				for r := 0; r < p; r++ {
					res := resTab.At(i, r)
					start := occ[r].Free(res)
					for _, m := range n.Deps {
						start = max(start, finish[m][r])
					}
					clk[r] = start
				}
			} else {
				for r := 0; r < p; r++ {
					clk[r] = occ[r].Free(hw.ResCompute)
				}
			}

			switch op.Kind {
			case KInput:
				regs[op.Dst] = regShape{op.Layout.Normalize(p), op.Rows, op.Cols}
			case KRedist:
				a := regs[op.A]
				from, to := a.layout, op.To.Normalize(p)
				switch {
				case from == to:
					// Pointer alias, free.
				case to == dist.R:
					// replicate: world allgather of ragged source tiles,
					// then the full-matrix assembly memcpy.
					chunks := make([]int64, p)
					for r := 0; r < p; r++ {
						chunks[r] = tile(from, r, a.rows, a.cols)
					}
					rendezvous(world, allgatherTime(world, chunks))
					for _, r := range world {
						mem(r, int64(a.rows)*int64(a.cols)*4)
					}
				case from == dist.R:
					// Distribute from a replicated local copy: free.
				default:
					if op.Sparse && s.SparseEligible(from, to) {
						sparseRegrid(from, to, a.rows, a.cols)
					} else {
						regrid(from, to, a.rows, a.cols, false)
					}
				}
				regs[op.Dst] = regShape{to, op.Rows, op.Cols}
			case KSpMM:
				a := regs[op.A]
				group := p / s.RA
				if group > 1 {
					// Each column group allgathers its ragged feature
					// slice concurrently; rank r participates in its own
					// group only.
					for j := 0; j < s.RA; j++ {
						grp := s.colGroup(j)
						chunks := make([]int64, len(grp))
						for k, r := range grp {
							chunks[k] = tile(s.GridL, r, a.rows, a.cols)
						}
						rendezvous(grp, allgatherTime(grp, chunks))
					}
					for r := 0; r < p; r++ {
						_, pcols := dist.TileShape(s.GridL, p, r, a.rows, a.cols)
						mem(r, int64(a.rows)*int64(pcols)*4)
					}
				}
				for r := 0; r < p; r++ {
					_, pcols := dist.TileShape(s.GridL, p, r, a.rows, a.cols)
					nnz := int64(0)
					src := cen.NNZBwd
					if op.Forward {
						src = cen.NNZFwd
					}
					if r < len(src) {
						nnz = src[r]
					}
					kernel(r, h.SpMMTime(nnz, pcols))
				}
				regs[op.Dst] = regShape{s.GridL, op.Rows, op.Cols}
			case KSpMMABC:
				a := regs[op.A]
				pairs, nnzABC := cen.ABCPairs, cen.NNZABC
				if pairs == nil {
					// Census built without the ABC fill (hand-rolled): fall
					// back to the analytic estimate over the panel total.
					var total int64
					for _, v := range cen.NNZFwd {
						total += v
					}
					pairs, nnzABC = s.ApproxABCPairs(total)
				}
				for r := 0; r < p; r++ {
					nnz := int64(0)
					if r < len(nnzABC) {
						nnz = nnzABC[r]
					}
					kernel(r, h.SpMMTime(nnz, a.cols))
				}
				meta, pay := abcFns(pairs, a.cols)
				x := buildSparseCensus(p, meta, pay)
				abcTime := func(fn func(i, j int) int64, maxInj int64) func() float64 {
					return func() float64 {
						if tp != nil {
							_, cst := tp.AllToAll(h, topo.Auto, world, fn)
							return cst.Time
						}
						return h.CollectiveTime(hw.OpAllToAll, p, maxInj)
					}
				}
				sparseRounds(x, abcTime(meta, x.MetaMaxInj), abcTime(pay, x.PayMaxInj))
				regs[op.Dst] = regShape{dist.H, op.Rows, op.Cols}
			case KGEMM:
				a := regs[op.A]
				for r := 0; r < p; r++ {
					arows, _ := dist.TileShape(dist.H, p, r, a.rows, a.cols)
					kernel(r, h.GemmTime(arows, a.cols, op.Cols))
				}
				regs[op.Dst] = regShape{dist.H, op.Rows, op.Cols}
			case KGradGEMM:
				a, bb := regs[op.A], regs[op.B]
				for r := 0; r < p; r++ {
					arows, _ := dist.TileShape(dist.H, p, r, a.rows, a.cols)
					kernel(r, h.GemmTime(a.cols, arows, bb.cols))
				}
				regs[op.Dst] = regShape{dist.R, op.Rows, op.Cols}
			case KAllReduceGrad:
				rendezvous(world, allreduceTime(world, int64(op.Rows)*int64(op.Cols)*4))
			case KReLU:
				a := regs[op.A]
				for r := 0; r < p; r++ {
					mem(r, tile(a.layout, r, a.rows, a.cols))
				}
			case KReLUGrad:
				u, src := regs[op.A], regs[op.B]
				if src.layout != u.layout {
					for r := 0; r < p; r++ {
						mem(r, tile(src.layout, r, src.rows, src.cols))
					}
					regrid(src.layout, u.layout, src.rows, src.cols, true)
				}
				for r := 0; r < p; r++ {
					mem(r, tile(u.layout, r, u.rows, u.cols))
				}
			case KAdd:
				a := regs[op.A]
				for r := 0; r < p; r++ {
					mem(r, tile(a.layout, r, a.rows, a.cols))
				}
			case KMemoize, KReuse:
				regs[op.Dst] = regs[op.A]
			case KLoss:
				a := regs[op.A]
				for r := 0; r < p; r++ {
					mem(r, 2*tile(dist.H, r, a.rows, a.cols))
				}
				rendezvous(world, allreduceTime(world, 8))
				regs[op.Dst] = regShape{dist.H, op.Rows, op.Cols}
			case KMemWrite:
				a := regs[op.A]
				for r := 0; r < p; r++ {
					mem(r, tile(a.layout, r, a.rows, a.cols))
				}
			case KUpdate:
				for r := 0; r < p; r++ {
					mem(r, 4*wBytes)
				}
			}

			fin := make([]float64, p)
			copy(fin, clk)
			finish[i] = fin
			if overlap {
				for r := 0; r < p; r++ {
					occ[r].Advance(resTab.At(i, r), clk[r])
				}
			} else {
				for r := 0; r < p; r++ {
					occ[r].Advance(hw.ResCompute, clk[r])
					occ[r].Join()
				}
			}
		}
		if overlap {
			// Epoch boundary: the executor merges its lanes back into the
			// base device (clock = max over lanes) before the next fork.
			for r := 0; r < p; r++ {
				occ[r].Join()
			}
		}
	}
	out := make([]float64, p)
	for r := 0; r < p; r++ {
		out[r] = occ[r].Makespan()
	}
	return out
}
