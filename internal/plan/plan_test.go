package plan

import (
	"strings"
	"testing"

	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/hw"
)

func spec2(n, cfg, p, ra int, memo bool) Spec {
	return Spec{
		N: n, Dims: []int{16, 12, 8},
		Config: costmodel.ConfigFromID(cfg, 2),
		P:      p, RA: ra, Memoize: memo, InputGrad: true,
	}
}

// TestPriceMatchesCostModel is the planner's source-of-truth
// crosscheck: for every Table IV ordering, device count, replication
// factor and memoization setting, the optimized schedule's priced RDM
// bytes must equal costmodel.EvaluateEngine — which the simulator's
// meters are already tested byte-equal to (internal/verify).
func TestPriceMatchesCostModel(t *testing.T) {
	dims := []int{16, 12, 8}
	const n = 64 // divisible by every P so the closed-form units are exact
	h := hw.A6000()
	for _, p := range []int{1, 2, 4, 8} {
		for ra := 1; ra <= p; ra++ {
			if p%ra != 0 {
				continue
			}
			for cfg := 0; cfg < costmodel.NumConfigs(2); cfg++ {
				for _, memo := range []bool{true, false} {
					sp := spec2(n, cfg, p, ra, memo)
					sched := Compile(sp).Optimize()
					got := sched.Price(100, h).RDMBytes()
					net := costmodel.Network{Dims: dims, N: n, NNZ: 100, P: p, RA: ra, NoMemo: !memo}
					want := costmodel.EvaluateEngine(net, sp.Config).CommVolumeBytes()
					if got != want {
						t.Errorf("P=%d RA=%d cfg=%d memo=%v: priced %d bytes, cost model %d (Δ=%d)\n%s",
							p, ra, cfg, memo, got, want, got-want, sched)
					}
				}
			}
		}
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	specs := []Spec{
		spec2(64, 0, 4, 4, true),
		spec2(64, 10, 8, 2, true),
		spec2(64, 15, 4, 2, false),
		spec2(7, 3, 2, 1, true), // ragged rows
		{N: 64, Dims: []int{16, 12, 10, 8}, Config: costmodel.ConfigFromID(37, 3), P: 4, RA: 2, Memoize: true, InputGrad: true},
		{N: 64, Dims: []int{16, 12, 8}, Config: costmodel.ConfigFromID(6, 2), P: 4, RA: 4, SAGE: true, Memoize: true},
	}
	for _, sp := range specs {
		for _, opt := range []bool{false, true} {
			s := Compile(sp)
			if opt {
				s = s.Optimize()
			}
			d1 := s.String()
			parsed, err := Parse(d1)
			if err != nil {
				t.Fatalf("parse own dump (opt=%v): %v\n%s", opt, err, d1)
			}
			if d2 := parsed.String(); d2 != d1 {
				t.Fatalf("dump not a parse fixed point (opt=%v):\n--- first\n%s--- second\n%s", opt, d1, d2)
			}
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	good := Compile(spec2(64, 0, 4, 4, true)).Optimize().String()
	bad := []string{
		"",
		"schedule p=0 ra=1 n=4 dims=2,2 config=0 sage=0 memoize=0 inputgrad=0 regs=1 weights=1",
		"schedule p=4 ra=3 n=4 dims=2,2 config=0 sage=0 memoize=0 inputgrad=0 regs=1 weights=1",
		strings.Replace(good, "section init", "section bogus", 1),
		strings.Replace(good, "r0 = input", "r0 = inptu", 1),
		good + "  s1 update\n", // op after final section with duplicate step
		strings.Replace(good, "weights=2", "weights=5", 1),
	}
	for i, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("case %d: malformed schedule accepted:\n%s", i, text)
		}
	}
}

func TestValidateCatchesLayoutViolations(t *testing.T) {
	s := Compile(spec2(64, 0, 4, 2, true)).Optimize()
	// Find the first SpMM and corrupt its layout.
	for i := range s.Sections {
		for j := range s.Sections[i].Ops {
			if s.Sections[i].Ops[j].Kind == KSpMM {
				s.Sections[i].Ops[j].Layout = dist.H
				if err := s.Validate(); err == nil {
					t.Fatal("spmm with non-grid layout validated")
				}
				return
			}
		}
	}
	t.Fatal("no spmm in schedule")
}

// TestElideRedistributions: once the grid layout folds to H (R_A = 1 at
// any P, or P = 1), every redistribution in the epoch is an identity
// and the pass must remove all of them.
func TestElideRedistributions(t *testing.T) {
	for _, tc := range []struct{ p, ra int }{{1, 1}, {4, 1}} {
		naive := Compile(spec2(64, 0, tc.p, tc.ra, true))
		if naive.CountKind(KRedist) == 0 {
			t.Fatalf("P=%d RA=%d: naive schedule should carry identity redists", tc.p, tc.ra)
		}
		opt := naive.Optimize()
		if n := opt.CountKind(KRedist); n != 0 {
			t.Fatalf("P=%d RA=%d: %d redists survive elision:\n%s", tc.p, tc.ra, n, opt)
		}
	}
	// With a real grid the cross-layout redistributions must survive.
	if n := Compile(spec2(64, 0, 4, 4, true)).Optimize().CountKind(KRedist); n == 0 {
		t.Fatal("P=4 RA=4: elision removed real redistributions")
	}
}

// TestDeadInputGradElimination: without ComputeInputGrad the G^0 chain
// of layer 1 is dead and must be pruned, strictly reducing both the op
// count and (for a GEMM-first backward layer 1) the priced volume.
func TestDeadInputGradElimination(t *testing.T) {
	h := hw.A6000()
	withG := spec2(64, 5, 4, 4, true)
	withoutG := withG
	withoutG.InputGrad = false
	a := Compile(withG).Optimize()
	b := Compile(withoutG).Optimize()
	if b.Ops() >= a.Ops() {
		t.Fatalf("dead G^0 chain not pruned: %d ops vs %d", b.Ops(), a.Ops())
	}
	if len(b.Outputs) != 0 {
		t.Fatalf("no-input-grad schedule has outputs %v", b.Outputs)
	}
	if va, vb := a.Price(100, h).RDMBytes(), b.Price(100, h).RDMBytes(); vb >= va {
		t.Fatalf("skipping G^0 should reduce volume: %d vs %d", vb, va)
	}
}

// TestMemoizeReuse: with memoization the all-SpMM-first config reuses
// every layer's forward product in the backward pass; without it no
// memoize/reuse ops survive.
func TestMemoizeReuse(t *testing.T) {
	with := Compile(spec2(64, 0, 4, 4, true)).Optimize()
	if with.CountKind(KMemoize) != 2 || with.CountKind(KReuse) != 2 {
		t.Fatalf("cfg0 memoized: want 2 memoize + 2 reuse, got %d + %d\n%s",
			with.CountKind(KMemoize), with.CountKind(KReuse), with)
	}
	without := Compile(spec2(64, 0, 4, 4, false)).Optimize()
	if without.CountKind(KMemoize) != 0 || without.CountKind(KReuse) != 0 {
		t.Fatal("memoization off but memoize/reuse ops present")
	}
	// A memoization nothing reads (backward reuses tb instead) is dead.
	for i := range with.Sections {
		sec := with.Sections[i]
		if sec.Phase == "fwd" {
			for _, op := range sec.Ops {
				if op.Kind == KMemoize && !reused(with, op.Dst) {
					t.Fatalf("unread memoize r%d survived DCE", op.Dst)
				}
			}
		}
	}
}

func reused(s *Schedule, r Reg) bool {
	for i := range s.Sections {
		for _, op := range s.Sections[i].Ops {
			if op.Kind == KReuse && op.A == r {
				return true
			}
		}
	}
	return false
}

// TestChooserPicksMixedOrdering: with a wide hidden layer between
// narrow input and output, each forward slot independently prefers the
// side touching the narrower matrix — an ordering no uniform Table IV
// row expresses.
func TestChooserPicksMixedOrdering(t *testing.T) {
	sp := Spec{
		N: 4096, Dims: []int{16, 256, 16},
		P: 4, RA: 4, Memoize: true, InputGrad: true,
	}
	cfg := ChooseOrdering(sp, 8*4096, hw.A6000())
	if cfg.Fwd[0] != costmodel.SparseFirst || cfg.Fwd[1] != costmodel.DenseFirst {
		t.Fatalf("expected mixed fwd [S D] for dims 16-256-16, got %v", cfg)
	}
	// The chosen config must price no worse than any uniform row.
	spc := sp
	spc.Config = cfg
	chosen := Compile(spc).Optimize().Price(8*4096, hw.A6000()).Time
	for id := 0; id < costmodel.NumConfigs(2); id++ {
		spu := sp
		spu.Config = costmodel.ConfigFromID(id, 2)
		if u := Compile(spu).Optimize().Price(8*4096, hw.A6000()).Time; u < chosen {
			t.Fatalf("uniform config %d (%.3gs) beats chosen %v (%.3gs)", id, u, cfg, chosen)
		}
	}
}

// TestSAGESchedule: GraphSAGE layers carry self-term adds and
// double-width gradient slots through compilation.
func TestSAGESchedule(t *testing.T) {
	sp := Spec{N: 64, Dims: []int{16, 12, 8}, Config: costmodel.ConfigFromID(6, 2),
		P: 4, RA: 2, SAGE: true, Memoize: true, InputGrad: true}
	s := Compile(sp).Optimize()
	if s.NumWeights != 4 {
		t.Fatalf("SAGE weights = %d, want 4", s.NumWeights)
	}
	if s.CountKind(KAdd) != 4 {
		t.Fatalf("SAGE adds = %d, want 2 fwd + 2 bwd\n%s", s.CountKind(KAdd), s)
	}
	if s.CountKind(KAllReduceGrad) != 4 {
		t.Fatalf("SAGE grad reduces = %d, want 4", s.CountKind(KAllReduceGrad))
	}
}

// TestOptimizeIdempotent: a second pass over an optimized schedule must
// change nothing.
func TestOptimizeIdempotent(t *testing.T) {
	s := Compile(spec2(64, 10, 8, 2, true)).Optimize()
	if again := s.Optimize().String(); again != s.String() {
		t.Fatalf("Optimize not idempotent:\n--- first\n%s--- second\n%s", s, again)
	}
}
