package plan

import (
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
)

// ChooseOrdering picks a per-layer SpMM/GEMM ordering by greedy
// coordinate descent over the 2L forward/backward slots, pricing each
// candidate as a fully compiled and optimized schedule (§IV-B's
// model-driven selection, lifted from closed-form epoch terms to the op
// level). Because every slot is chosen independently, mixed orderings
// that no uniform Table IV row expresses fall out naturally whenever
// adjacent layers have asymmetric widths. Ties keep SpMM-first, and the
// sweep order is fixed, so the choice is deterministic.
func ChooseOrdering(sp Spec, nnz int64, h *hw.Model) costmodel.Config {
	return ChooseOrderingTopo(sp, nnz, h, nil)
}

// ChooseOrderingTopo is ChooseOrdering pricing candidates on an
// interconnect topology (nil = flat, exactly ChooseOrdering): the same
// greedy descent, but each candidate schedule's collectives are costed
// by the topology-aware algorithms the fabric would actually run, so
// the chosen ordering can differ once inter-node links dominate.
func ChooseOrderingTopo(sp Spec, nnz int64, h *hw.Model, tp *topo.Topology) costmodel.Config {
	return chooseOrdering(sp, h, tp, func(s Spec) float64 {
		return Compile(s).Optimize().PriceOn(nnz, h, tp).Time
	})
}

// ChooseOrderingOverlap is ChooseOrderingTopo for the overlap executor:
// candidates are priced by their dependency-DAG critical path
// (PriceDAGOn's makespan) instead of the sequential replay. The two
// selectors can disagree — an ordering that serializes more traffic but
// exposes it earlier can hide the extra bytes behind compute, so its
// critical path undercuts the sequentially cheaper row
// (TestChooseOrderingOverlapDisagrees pins one such case).
func ChooseOrderingOverlap(sp Spec, nnz int64, h *hw.Model, tp *topo.Topology) costmodel.Config {
	return chooseOrdering(sp, h, tp, func(s Spec) float64 {
		sched := Compile(s).Optimize()
		return MustBuildDAG(sched).PriceDAGOn(sched.ApproxCensus(nnz), h, tp).Makespan
	})
}

func chooseOrdering(sp Spec, h *hw.Model, tp *topo.Topology, priceSpec func(Spec) float64) costmodel.Config {
	sp = sp.withDefaults()
	L := len(sp.Dims) - 1
	cfg := costmodel.ConfigFromID(0, L) // all SpMM-first
	price := func(c costmodel.Config) float64 {
		s := sp
		s.Config = c
		return priceSpec(s)
	}
	best := price(cfg)
	// A slot flip changes which operands later layers inherit for free,
	// so re-sweep until the assignment is stable (two extra rounds
	// suffice in practice; the bound keeps termination obvious).
	for round := 0; round < 3; round++ {
		improved := false
		for i := 0; i < 2*L; i++ {
			slot := &cfg.Fwd[i%L]
			if i >= L {
				slot = &cfg.Bwd[i-L]
			}
			prev := *slot
			alt := costmodel.DenseFirst
			if prev == costmodel.DenseFirst {
				alt = costmodel.SparseFirst
			}
			*slot = alt
			if t := price(cfg); t < best {
				best = t
				improved = true
			} else {
				*slot = prev
			}
		}
		if !improved {
			break
		}
	}
	return cfg
}
