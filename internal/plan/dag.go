package plan

import (
	"fmt"
	"sort"
	"strings"

	"gnnrdm/internal/dist"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
)

// This file lifts a compiled schedule from a linear op list to an
// explicit dependency DAG: edges derive from each op's read and write
// sets over registers (SSA pointer definitions), data cells (the
// storage registers alias — KMemoize/KReuse and same-layout KRedist
// share their operand's tile), weight buckets, and gradient buckets.
// Two ops with disjoint sets commute; the overlap executor
// (core.Options.Overlap) and the occupancy pricer (PriceDAGOn) may run
// them concurrently on different device resources. The schedule's own
// order is one valid topological order, and BuildDAG only ever adds
// edges pointing backwards in it, so the DAG is acyclic by
// construction and node index order is the canonical topo order
// everywhere below.

// DAGNode is one schedule op plus its dependency edges. Deps lists the
// indices (into DAG.Nodes) of every op that must finish before this op
// may start, sorted ascending and deduplicated; all are < the node's
// own index.
type DAGNode struct {
	Op    *Op
	Index int
	// Phase and Layer locate the op's section ("init", "fwd", "loss",
	// "bwd", "update"; layer 0 outside fwd/bwd).
	Phase string
	Layer int
	Deps  []int
}

// DAG is a schedule with explicit dependencies. Nodes appear in
// schedule order, which is a topological order of the edges.
type DAG struct {
	Sched *Schedule
	Nodes []DAGNode
	// byStep maps a step ID to its node index (for String/Parse).
	byStep map[int]int
}

// cell identifiers partition mutable state: each fresh register
// assignment opens a data cell (aliases share it), and each weight and
// gradient slot is its own cell.
type dagBuilder struct {
	s         *Schedule
	defNode   map[Reg]int // node that assigned the register (SSA)
	cellOf    map[Reg]int // data cell the register's tile lives in
	lastWrite map[int]int // cell -> last writing node
	readers   map[int][]int
	nextCell  int
	wCell     []int // weight-slot cells (read by KGEMM, written by KUpdate)
	gCell     []int // gradient-slot cells (written by KAllReduceGrad, read by KUpdate)
}

func newDagBuilder(s *Schedule) *dagBuilder {
	b := &dagBuilder{
		s:         s,
		defNode:   make(map[Reg]int, s.NumRegs),
		cellOf:    make(map[Reg]int, s.NumRegs),
		lastWrite: make(map[int]int),
		readers:   make(map[int][]int),
	}
	b.wCell = make([]int, s.NumWeights)
	b.gCell = make([]int, s.NumWeights)
	for i := range b.wCell {
		b.wCell[i] = b.alloc()
		b.gCell[i] = b.alloc()
	}
	return b
}

func (b *dagBuilder) alloc() int { c := b.nextCell; b.nextCell++; return c }

// BuildDAG derives the dependency DAG of a valid schedule. The
// derivation is deterministic: identical schedules produce identical
// DAGs. Invalid schedules (Validate fails) are rejected.
func BuildDAG(s *Schedule) (*DAG, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	d := &DAG{Sched: s, byStep: make(map[int]int, s.Ops())}
	b := newDagBuilder(s)
	for i := range s.Sections {
		sec := &s.Sections[i]
		for j := range sec.Ops {
			op := &sec.Ops[j]
			n := len(d.Nodes)
			deps := map[int]struct{}{}
			dep := func(m int) { deps[m] = struct{}{} }
			// readReg: the op reads r's current tile data — it needs the
			// register assigned (RAW on the pointer) and the latest data
			// version of its cell (RAW on the tile).
			readReg := func(r Reg) {
				dep(b.defNode[r])
				c := b.cellOf[r]
				if w, ok := b.lastWrite[c]; ok {
					dep(w)
				}
				b.readers[c] = append(b.readers[c], n)
			}
			// defReg: the op assigns r a freshly produced tile.
			defReg := func(r Reg) {
				c := b.alloc()
				b.cellOf[r] = c
				b.defNode[r] = n
				b.lastWrite[c] = n
			}
			// aliasReg: the op assigns dst the same tile a holds
			// (pointer copy, no data touched) — it commutes with data
			// mutations of the cell, so the only edge is the pointer
			// definition of a.
			aliasReg := func(dst, a Reg) {
				dep(b.defNode[a])
				b.cellOf[dst] = b.cellOf[a]
				b.defNode[dst] = n
			}
			// writeCell: the op overwrites the cell in place — WAW
			// against the previous writer and WAR against every reader
			// since.
			writeCell := func(c int) {
				if w, ok := b.lastWrite[c]; ok {
					dep(w)
				}
				for _, rd := range b.readers[c] {
					dep(rd)
				}
				b.lastWrite[c] = n
				b.readers[c] = nil
			}
			readCell := func(c int) {
				if w, ok := b.lastWrite[c]; ok {
					dep(w)
				}
				b.readers[c] = append(b.readers[c], n)
			}
			switch op.Kind {
			case KInput:
				defReg(op.Dst)
			case KRedist:
				if op.From.Normalize(s.P) == op.To.Normalize(s.P) {
					// The executor's Redistribute returns the operand
					// Mat unchanged: a pure alias.
					aliasReg(op.Dst, op.A)
				} else {
					readReg(op.A)
					defReg(op.Dst)
				}
			case KSpMM, KSpMMABC:
				readReg(op.A)
				defReg(op.Dst)
			case KGEMM:
				readReg(op.A)
				readCell(b.wCell[op.Weight])
				defReg(op.Dst)
			case KGradGEMM:
				readReg(op.A)
				readReg(op.B)
				defReg(op.Dst)
			case KAllReduceGrad:
				readReg(op.A)
				writeCell(b.gCell[op.Weight])
			case KReLU:
				dep(b.defNode[op.A])
				writeCell(b.cellOf[op.A])
			case KReLUGrad:
				readReg(op.B)
				dep(b.defNode[op.A])
				writeCell(b.cellOf[op.A])
			case KAdd:
				readReg(op.B)
				dep(b.defNode[op.A])
				writeCell(b.cellOf[op.A])
			case KMemoize, KReuse:
				aliasReg(op.Dst, op.A)
			case KLoss:
				readReg(op.A)
				defReg(op.Dst)
			case KMemWrite:
				readReg(op.A)
			case KUpdate:
				for w := range b.wCell {
					readCell(b.gCell[w])
					writeCell(b.wCell[w])
				}
			}
			node := DAGNode{Op: op, Index: n, Phase: sec.Phase, Layer: sec.Layer}
			for m := range deps {
				node.Deps = append(node.Deps, m)
			}
			sort.Ints(node.Deps)
			d.Nodes = append(d.Nodes, node)
			d.byStep[op.Step] = n
		}
	}
	return d, nil
}

// MustBuildDAG is BuildDAG panicking on error, for schedules known
// valid (Compile output).
func MustBuildDAG(s *Schedule) *DAG {
	d, err := BuildDAG(s)
	if err != nil {
		panic(err)
	}
	return d
}

// NodeByStep returns the node index of a schedule step ID (-1 when
// absent).
func (d *DAG) NodeByStep(step int) int {
	if n, ok := d.byStep[step]; ok {
		return n
	}
	return -1
}

// String renders the DAG as the schedule dump followed by an "edges"
// section listing, per dependent op in topo (schedule) order, its
// dependency steps: "  s9 <- s3 s7". Ops with no dependencies are
// omitted. The dump is a fixed point of ParseDAG.
func (d *DAG) String() string {
	var b strings.Builder
	b.WriteString(d.Sched.String())
	b.WriteString("edges\n")
	for i := range d.Nodes {
		n := &d.Nodes[i]
		if len(n.Deps) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  s%d <-", n.Op.Step)
		for _, m := range n.Deps {
			fmt.Fprintf(&b, " s%d", d.Nodes[m].Op.Step)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseDAG loads a DAG from its String dump: the schedule part is
// Parsed, the DAG re-derived with BuildDAG, and the listed edges
// verified to match the derivation exactly — a dump whose edges
// disagree with the schedule's own dependency structure is an error,
// so a DAG can never deserialize into something its schedule would not
// produce.
func ParseDAG(text string) (*DAG, error) {
	i := strings.Index(text, "\nedges\n")
	if i < 0 {
		return nil, fmt.Errorf("plan: missing edges section")
	}
	s, err := Parse(text[:i+1])
	if err != nil {
		return nil, err
	}
	d, err := BuildDAG(s)
	if err != nil {
		return nil, err
	}
	if got, want := d.String()[i+1:], text[i+1:]; got != want {
		return nil, fmt.Errorf("plan: edges disagree with schedule-derived DAG")
	}
	return d, nil
}

// colGroup returns the ranks sharing rank's grid column (ascending),
// matching the engine's column-group construction.
func (s *Schedule) colGroup(rank int) []int {
	j := rank % s.RA
	g := make([]int, 0, s.P/s.RA)
	for r := j; r < s.P; r += s.RA {
		g = append(g, r)
	}
	return g
}

func (s *Schedule) world() []int {
	w := make([]int, s.P)
	for i := range w {
		w[i] = i
	}
	return w
}

// linkRes maps a collective's group to the device resource its op
// occupies: the link engine of the slowest tier any two members
// communicate over (every member of one group agrees on it, which is
// what keeps per-lane rendezvous order rank-consistent in the overlap
// executor). Groups of one device never reach the fabric — compute.
func (s *Schedule) linkRes(group []int, tp *topo.Topology) hw.Resource {
	if len(group) < 2 {
		return hw.ResCompute
	}
	if tp != nil && tp.WorstTier(group) == topo.TierInter {
		return hw.ResLinkInter
	}
	return hw.ResLinkIntra
}

// OpResource classifies which of rank's device resources the op
// occupies under the overlap executor: ops that reach the fabric bind
// to the link engine of their collective's tier (the whole op,
// including its local pack/unpack kernels, runs on that lane so its
// charge order stays exactly the sequential interpreter's); everything
// else is compute. The classification depends on the rank only through
// its column group (KSpMM), and all members of any one collective's
// group always agree on the resource.
func (s *Schedule) OpResource(op *Op, rank int, tp *topo.Topology) hw.Resource {
	switch op.Kind {
	case KRedist:
		from, to := op.From.Normalize(s.P), op.To.Normalize(s.P)
		if from == to || from == dist.R {
			// Alias, or replicated source scattering locally: no fabric.
			return hw.ResCompute
		}
		// Regrid all-to-all, or replicate's world allgather.
		return s.linkRes(s.world(), tp)
	case KSpMM:
		return s.linkRes(s.colGroup(rank), tp)
	case KSpMMABC:
		// The structural exchange is a world all-to-all (two rounds).
		return s.linkRes(s.world(), tp)
	case KAllReduceGrad, KLoss:
		return s.linkRes(s.world(), tp)
	case KReLUGrad:
		if op.From.Normalize(s.P) != op.To.Normalize(s.P) {
			return s.linkRes(s.world(), tp)
		}
	}
	return hw.ResCompute
}
