package plan

import (
	"gnnrdm/internal/dist"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
)

// This file prices a compiled schedule: exact per-op fabric byte
// volumes (the planner-side source of truth the verifier reconciles
// against the simulator's meters byte-for-byte) plus an α–β/roofline
// time estimate driving the per-layer ordering chooser. The byte
// formulas reproduce the fabric's metering rules: an all-to-all counts
// every cross-pair chunk once, an allgather counts the group's total
// buffer (groupSize-1) times, an allreduce counts 2·bytes·(groupSize-1),
// and groups of one device short-circuit to zero.

// OpCost is the priced cost of one schedule step.
type OpCost struct {
	Step int
	Kind Kind
	// AllToAll, AllGather and AllReduce are the op's fabric byte volumes
	// by collective class, matching the simulator's meters exactly.
	AllToAll, AllGather, AllReduce int64
	// Side is byte-packed mask traffic on the fabric's side channel
	// (excluded from the primary meters, as the paper's model omits it).
	Side int64
	// Tier and SideTier split the primary and side volumes by link tier
	// (intra-node, inter-node). Only populated by PriceOn with a
	// topology; under flat pricing everything is tier 0.
	Tier     [topo.NumTiers]int64
	SideTier [topo.NumTiers]int64
	// Time estimates the op's duration on the busiest device.
	Time float64
}

// Cost is a priced schedule: the per-op breakdown plus totals.
type Cost struct {
	PerOp                          []OpCost
	AllToAll, AllGather, AllReduce int64
	Side                           int64
	Tier                           [topo.NumTiers]int64
	SideTier                       [topo.NumTiers]int64
	Time                           float64
}

// RDMBytes returns the volume the §IV cost model counts — all-to-all
// redistributions plus column-group allgathers — directly comparable to
// costmodel.EvaluateEngine's CommVolumeBytes and to the fabric's
// Volume(OpAllToAll) + Volume(OpAllGather).
func (c Cost) RDMBytes() int64 { return c.AllToAll + c.AllGather }

// Price walks the schedule once and prices every op. nnz is the global
// stored-entry count of the propagation operator (for SpMM kernel
// time); h is the hardware model time estimates are drawn from.
func (s *Schedule) Price(nnz int64, h *hw.Model) Cost {
	return s.PriceOn(nnz, h, nil)
}

// PriceOn prices the schedule on an interconnect topology. With tp ==
// nil it is exactly Price: the pre-topology flat formulas, bit-for-bit.
// With a topology, every collective is priced through internal/topo
// under the fabric's default Auto algorithm selection, so the op byte
// volumes — split per link tier — and the collective time terms equal
// the live fabric's meters and clocks for the same topology exactly.
func (s *Schedule) PriceOn(nnz int64, h *hw.Model, tp *topo.Topology) Cost {
	type rinfo struct {
		layout     dist.Layout
		rows, cols int
	}
	regs := make(map[Reg]rinfo, s.NumRegs)
	def := func(r Reg, l dist.Layout, rows, cols int) {
		regs[r] = rinfo{l.Normalize(s.P), rows, cols}
	}
	var world []int
	if tp != nil {
		world = make([]int, s.P)
		for i := range world {
			world[i] = i
		}
	}
	var c Cost
	for i := range s.Sections {
		for j := range s.Sections[i].Ops {
			op := &s.Sections[i].Ops[j]
			oc := OpCost{Step: op.Step, Kind: op.Kind}
			switch op.Kind {
			case KInput:
				def(op.Dst, op.Layout, op.Rows, op.Cols)
			case KRedist:
				if op.Sparse && s.SparseEligible(op.From, op.To) {
					// Two-round sparse exchange: metadata adverts on the
					// side channel, then the variable-volume payload. Each
					// round is its own fused rendezvous, so the time model
					// charges pack/collective/merge twice — mirroring
					// dist.RedistributeSparse's charge sequence.
					live := s.LiveSet()
					x := s.sparseExchange(op.From, op.To, op.Rows, op.Cols, live)
					if tp != nil {
						_, mc := tp.AllToAll(h, topo.Auto, world, s.sparsePairFn(op.From, op.To, op.Rows, op.Cols, live, true))
						_, pc := tp.AllToAll(h, topo.Auto, world, s.sparsePairFn(op.From, op.To, op.Rows, op.Cols, live, false))
						oc.Side, oc.SideTier = mc.Bytes(), mc.Tier
						oc.AllToAll, oc.Tier = pc.Bytes(), pc.Tier
						oc.Time = h.MemTime(x.MetaMaxInj) + mc.Time + h.MemTime(x.MetaMaxEj) +
							h.MemTime(x.PayMaxInj) + pc.Time + h.MemTime(x.PayMaxEj)
					} else {
						oc.Side = x.MetaTotal
						oc.AllToAll = x.PayTotal
						oc.Time = h.MemTime(x.MetaMaxInj) + h.CollectiveTime(hw.OpAllToAll, s.P, x.MetaMaxInj) + h.MemTime(x.MetaMaxEj) +
							h.MemTime(x.PayMaxInj) + h.CollectiveTime(hw.OpAllToAll, s.P, x.PayMaxInj) + h.MemTime(x.PayMaxEj)
					}
					def(op.Dst, op.To, op.Rows, op.Cols)
					break
				}
				vol, inj, ej := s.exchange(op.From, op.To, op.Rows, op.Cols, false)
				if tp != nil {
					_, cst := tp.AllToAll(h, topo.Auto, world, s.pairFn(op.From, op.To, op.Rows, op.Cols, false))
					oc.AllToAll = cst.Bytes()
					oc.Tier = cst.Tier
					oc.Time = h.MemTime(inj) + cst.Time + h.MemTime(ej)
				} else {
					oc.AllToAll = vol
					oc.Time = h.MemTime(inj) + h.CollectiveTime(hw.OpAllToAll, s.P, inj) + h.MemTime(ej)
				}
				def(op.Dst, op.To, op.Rows, op.Cols)
			case KSpMM:
				group := s.P / s.RA
				prows, pcols := dist.TileShape(s.GridL, s.P, 0, op.Rows, op.Cols)
				slice := int64(op.Rows) * int64(pcols) * 4
				if group > 1 && tp != nil {
					// R_A concurrent column-group allgathers, one per grid
					// column; each member contributes its live tile, so the
					// chunk census matches the fabric's ragged allgather
					// exactly. The op runs at the slowest group's pace.
					var worst float64
					for j := 0; j < s.RA; j++ {
						grp := make([]int, 0, group)
						chunks := make([]int64, 0, group)
						var total int64
						for r := j; r < s.P; r += s.RA {
							gr, gc := dist.TileShape(s.GridL, s.P, r, op.Rows, op.Cols)
							grp = append(grp, r)
							b := int64(gr) * int64(gc) * 4
							chunks = append(chunks, b)
							total += b
						}
						_, cst := tp.AllGather(h, topo.Auto, grp, chunks)
						oc.AllGather += cst.Bytes()
						for t := range cst.Tier {
							oc.Tier[t] += cst.Tier[t]
						}
						if t := cst.Time + h.MemTime(total); t > worst {
							worst = t
						}
					}
					oc.Time += worst
				} else if group > 1 {
					oc.AllGather = int64(group-1) * int64(op.Rows) * int64(op.Cols) * 4
					oc.Time += h.CollectiveTime(hw.OpAllGather, group, slice) + h.MemTime(slice)
				}
				panelNNZ := (nnz*int64(prows) + int64(op.Rows) - 1) / int64(op.Rows)
				oc.Time += h.SpMMTime(panelNNZ, pcols)
				def(op.Dst, s.GridL, op.Rows, op.Cols)
			case KSpMMABC:
				// Aggregate-before-communicate: each rank partial-aggregates
				// its own live rows against its full adjacency replica
				// (R_A == P), then the ranks run a two-round exchange of the
				// structurally-touched result rows, summed on arrival. The
				// structural census is the shared Erdős–Rényi estimate, so
				// flat pricing, DAG simulation, and the discrete-event
				// engine agree on the same integers.
				pairs, nnzABC := s.ApproxABCPairs(nnz)
				meta, pay := abcFns(pairs, op.Cols)
				x := buildSparseCensus(s.P, meta, pay)
				var worst float64
				for r := 0; r < s.P; r++ {
					if t := h.SpMMTime(nnzABC[r], op.Cols); t > worst {
						worst = t
					}
				}
				oc.Time = worst
				if tp != nil {
					_, mc := tp.AllToAll(h, topo.Auto, world, meta)
					_, pc := tp.AllToAll(h, topo.Auto, world, pay)
					oc.Side, oc.SideTier = mc.Bytes(), mc.Tier
					oc.AllToAll, oc.Tier = pc.Bytes(), pc.Tier
					oc.Time += h.MemTime(x.MetaMaxInj) + mc.Time + h.MemTime(x.MetaMaxEj) +
						h.MemTime(x.PayMaxInj) + pc.Time + h.MemTime(x.PayMaxEj)
				} else {
					oc.Side = x.MetaTotal
					oc.AllToAll = x.PayTotal
					oc.Time += h.MemTime(x.MetaMaxInj) + h.CollectiveTime(hw.OpAllToAll, s.P, x.MetaMaxInj) + h.MemTime(x.MetaMaxEj) +
						h.MemTime(x.PayMaxInj) + h.CollectiveTime(hw.OpAllToAll, s.P, x.PayMaxInj) + h.MemTime(x.PayMaxEj)
				}
				def(op.Dst, dist.H, op.Rows, op.Cols)
			case KGEMM:
				a := regs[op.A]
				m0, _ := dist.TileShape(dist.H, s.P, 0, op.Rows, op.Cols)
				oc.Time = h.GemmTime(m0, a.cols, op.Cols)
				def(op.Dst, dist.H, op.Rows, op.Cols)
			case KGradGEMM:
				a := regs[op.A]
				m0, _ := dist.TileShape(dist.H, s.P, 0, a.rows, a.cols)
				oc.Time = h.GemmTime(op.Rows, m0, op.Cols)
				def(op.Dst, dist.R, op.Rows, op.Cols)
			case KAllReduceGrad:
				buf := int64(op.Rows) * int64(op.Cols) * 4
				if tp != nil {
					_, cst := tp.AllReduce(h, topo.Auto, world, buf)
					oc.AllReduce = cst.Bytes()
					oc.Tier = cst.Tier
					oc.Time = cst.Time
				} else {
					if s.P > 1 {
						oc.AllReduce = 2 * buf * int64(s.P-1)
					}
					oc.Time = h.CollectiveTime(hw.OpAllReduce, s.P, buf)
				}
			case KReLU, KAdd:
				oc.Time = h.MemTime(tileBytes0(op.Layout, s.P, op.Rows, op.Cols))
			case KReLUGrad:
				apply := h.MemTime(tileBytes0(op.To, s.P, op.Rows, op.Cols))
				if op.From.Normalize(s.P) == op.To.Normalize(s.P) {
					oc.Time = apply
					break
				}
				vol, inj, ej := s.exchange(op.From, op.To, op.Rows, op.Cols, true)
				mask := h.MemTime(tileBytes0(op.From, s.P, op.Rows, op.Cols))
				if tp != nil {
					_, cst := tp.AllToAll(h, topo.Auto, world, s.pairFn(op.From, op.To, op.Rows, op.Cols, true))
					oc.Side = cst.Bytes()
					oc.SideTier = cst.Tier
					oc.Time = mask + h.MemTime(inj) + cst.Time + h.MemTime(ej) + apply
				} else {
					oc.Side = vol
					oc.Time = mask +
						h.MemTime(inj) + h.CollectiveTime(hw.OpAllToAll, s.P, inj) + h.MemTime(ej) +
						apply
				}
			case KMemoize, KReuse:
				a := regs[op.A]
				def(op.Dst, a.layout, op.Rows, op.Cols)
			case KLoss:
				tile := tileBytes0(dist.H, s.P, op.Rows, op.Cols)
				if tp != nil {
					_, cst := tp.AllReduce(h, topo.Auto, world, 8)
					oc.AllReduce = cst.Bytes()
					oc.Tier = cst.Tier
					oc.Time = h.MemTime(2*tile) + cst.Time
				} else {
					if s.P > 1 {
						oc.AllReduce = 2 * 8 * int64(s.P-1)
					}
					oc.Time = h.MemTime(2*tile) + h.CollectiveTime(hw.OpAllReduce, s.P, 8)
				}
				def(op.Dst, dist.H, op.Rows, op.Cols)
			case KMemWrite:
				a := regs[op.A]
				oc.Time = h.MemTime(tileBytes0(a.layout, s.P, a.rows, a.cols))
			case KUpdate:
				var wBytes int64
				for l := 1; l < len(s.Dims); l++ {
					wBytes += int64(s.Dims[l-1]) * int64(s.Dims[l]) * 4
				}
				if s.SAGE {
					wBytes *= 2
				}
				oc.Time = h.MemTime(4 * wBytes)
			}
			c.PerOp = append(c.PerOp, oc)
			c.AllToAll += oc.AllToAll
			c.AllGather += oc.AllGather
			c.AllReduce += oc.AllReduce
			c.Side += oc.Side
			for t := range oc.Tier {
				c.Tier[t] += oc.Tier[t]
				c.SideTier[t] += oc.SideTier[t]
			}
			c.Time += oc.Time
		}
	}
	return c
}

// PredictTime estimates one epoch's duration under the schedule — the
// planner-side analogue of costmodel.PredictEpochTime, computed per op
// rather than per closed-form term.
func (s *Schedule) PredictTime(nnz int64, h *hw.Model) float64 {
	return s.Price(nnz, h).Time
}

// exchange computes the exact all-to-all economics of a from->to
// redistribution of a rows x cols matrix: the metered volume (every
// cross-pair chunk counted once), the busiest device's injected bytes,
// and the busiest device's received bytes. With packed=true chunks are
// byte-packed masks (four elements per transmitted float32).
func (s *Schedule) exchange(from, to dist.Layout, rows, cols int, packed bool) (vol, maxInj, maxEj int64) {
	p := s.P
	from, to = from.Normalize(p), to.Normalize(p)
	inj := make([]int64, p)
	ej := make([]int64, p)
	for r := 0; r < p; r++ {
		for q := 0; q < p; q++ {
			if q == r {
				continue
			}
			n := dist.TileOverlap(from, r, to, q, p, rows, cols)
			if n == 0 {
				continue
			}
			b := 4 * int64(n)
			if packed {
				b = 4 * int64((n+3)/4)
			}
			vol += b
			inj[r] += b
			ej[q] += b
		}
	}
	for r := 0; r < p; r++ {
		maxInj = max(maxInj, inj[r])
		maxEj = max(maxEj, ej[r])
	}
	return vol, maxInj, maxEj
}

// pairFn returns the per-pair byte function of a from->to
// redistribution — the same census exchange() sums — in the shape
// internal/topo's all-to-all costers consume. With packed=true chunks
// are byte-packed masks.
func (s *Schedule) pairFn(from, to dist.Layout, rows, cols int, packed bool) func(i, j int) int64 {
	p := s.P
	from, to = from.Normalize(p), to.Normalize(p)
	return func(i, j int) int64 {
		n := dist.TileOverlap(from, i, to, j, p, rows, cols)
		if packed {
			return 4 * int64((n+3)/4)
		}
		return 4 * int64(n)
	}
}

// tileBytes0 returns device 0's tile size in bytes under a layout
// (device 0 always holds a largest tile: ragged splits give the first
// chunks the extra rows/columns).
func tileBytes0(l dist.Layout, p, rows, cols int) int64 {
	r, c := dist.TileShape(l, p, 0, rows, cols)
	return int64(r) * int64(c) * 4
}
