package plan

import (
	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
)

// ResourceTable is a DAG's per-(node, rank) overlap-resource
// classification, precomputed once per pricing or simulation run.
// OpResource depends on the rank only through its grid column
// (rank % RA, for KSpMM's column-group allgather); the table stores one
// resource per column for those nodes and a single resource for every
// other kind. This turns OpResource's per-call group construction —
// O(P) slice builds that the pricing loops would otherwise repeat
// O(nodes × P × epochs) times, quadratic in P at scale — into an array
// lookup, without changing a single classification.
type ResourceTable struct {
	ra   int
	rows [][]hw.Resource
}

// Resources precomputes OpResource for every node of the DAG under a
// topology (nil = flat).
func (d *DAG) Resources(tp *topo.Topology) *ResourceTable {
	s := d.Sched
	t := &ResourceTable{ra: s.RA, rows: make([][]hw.Resource, len(d.Nodes))}
	for i := range d.Nodes {
		op := d.Nodes[i].Op
		if op.Kind == KSpMM {
			row := make([]hw.Resource, s.RA)
			for j := range row {
				row[j] = s.OpResource(op, j, tp)
			}
			t.rows[i] = row
		} else {
			t.rows[i] = []hw.Resource{s.OpResource(op, 0, tp)}
		}
	}
	return t
}

// At returns node's resource on rank — OpResource(node's op, rank).
func (t *ResourceTable) At(node, rank int) hw.Resource {
	row := t.rows[node]
	if len(row) == 1 {
		return row[0]
	}
	return row[rank%t.ra]
}
