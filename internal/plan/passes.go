package plan

// This file is the optimization-pass pipeline over the schedule IR.
// Compile emits the engine's historical op sequence verbatim; the
// passes then make the engine's implicit run-time optimizations
// explicit rewrites:
//
//   - ElideRedistributions removes redistributions whose source and
//     target layouts already agree (the engine's Redistribute identity
//     short-circuit, e.g. every grid<->H hop once R_A folds the grid
//     layout to H).
//   - EliminateDead removes ops whose results nothing consumes: the
//     G^0 input-gradient chain when ComputeInputGrad is off, memoized
//     products the weight-gradient case analysis never reads, and
//     cache-filling redistributions those dead ops forced.
//   - finalize renumbers registers in definition order and re-assigns
//     dense 1-based step IDs.
//
// Passes preserve the executor-observable cost behavior exactly: every
// op they remove is one the engine either no-ops at run time or skips
// via its needInputGrad guard.

// Optimize runs the full pass pipeline and returns a new schedule; the
// receiver is not modified.
func (s *Schedule) Optimize() *Schedule {
	t := s.clone()
	t.ElideRedistributions()
	t.EliminateDead()
	t.finalize()
	if err := t.Validate(); err != nil {
		panic("plan: optimized schedule invalid: " + err.Error())
	}
	return t
}

// ElideRedistributions drops KRedist ops whose normalized source and
// target layouts are equal, renaming their destination register to
// their operand everywhere downstream.
func (s *Schedule) ElideRedistributions() {
	rename := make(map[Reg]Reg)
	resolve := func(r Reg) Reg {
		for {
			n, ok := rename[r]
			if !ok {
				return r
			}
			r = n
		}
	}
	for i := range s.Sections {
		kept := s.Sections[i].Ops[:0]
		for _, op := range s.Sections[i].Ops {
			if op.A != None {
				op.A = resolve(op.A)
			}
			if op.B != None {
				op.B = resolve(op.B)
			}
			if op.Kind == KRedist && op.From.Normalize(s.P) == op.To.Normalize(s.P) {
				rename[op.Dst] = op.A
				continue
			}
			kept = append(kept, op)
		}
		s.Sections[i].Ops = kept
	}
	for i, r := range s.Outputs {
		s.Outputs[i] = resolve(r)
	}
}

// EliminateDead removes ops whose results are never consumed. Roots are
// the ops with externally-visible effects — the loss, the weight
// gradient all-reduces, the optimizer update, and forward write-out
// charges — plus the schedule's declared Outputs (G^0 when InputGrad is
// set). In-place ops (ReLU, ReLU-grad masking, SAGE adds) are live
// exactly when the register they mutate is read afterwards.
func (s *Schedule) EliminateDead() {
	live := make(map[Reg]bool)
	for _, r := range s.Outputs {
		live[r] = true
	}
	// Backward liveness scan, marking kept ops.
	type pos struct{ sec, op int }
	var order []pos
	for i := range s.Sections {
		for j := range s.Sections[i].Ops {
			order = append(order, pos{i, j})
		}
	}
	kept := make(map[pos]bool, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		at := order[i]
		op := &s.Sections[at.sec].Ops[at.op]
		keep := false
		switch op.Kind {
		case KLoss, KAllReduceGrad, KUpdate, KMemWrite:
			keep = true
		case KReLU, KReLUGrad, KAdd:
			keep = live[op.A]
		default:
			keep = live[op.Dst]
		}
		if keep {
			kept[at] = true
			if op.A != None {
				live[op.A] = true
			}
			if op.B != None {
				live[op.B] = true
			}
		}
	}
	for i := range s.Sections {
		out := s.Sections[i].Ops[:0]
		for j, op := range s.Sections[i].Ops {
			if kept[pos{i, j}] {
				out = append(out, op)
			}
		}
		s.Sections[i].Ops = out
	}
}

// finalize renumbers registers in first-definition order, re-assigns
// dense 1-based step IDs, and recomputes NumRegs.
func (s *Schedule) finalize() {
	remap := make(map[Reg]Reg)
	var next Reg
	step := 0
	for i := range s.Sections {
		for j := range s.Sections[i].Ops {
			op := &s.Sections[i].Ops[j]
			step++
			op.Step = step
			if op.A != None {
				if r, ok := remap[op.A]; ok {
					op.A = r
				}
			}
			if op.B != None {
				if r, ok := remap[op.B]; ok {
					op.B = r
				}
			}
			if op.Kind.assigns() {
				remap[op.Dst] = next
				op.Dst = next
				next++
			}
		}
	}
	for i, r := range s.Outputs {
		if n, ok := remap[r]; ok {
			s.Outputs[i] = n
		}
	}
	s.NumRegs = int(next)
}
