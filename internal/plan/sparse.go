package plan

// This file is the planner side of the sparsity-aware exchange
// subsystem (DESIGN.md §4g): exact pricing of the two-round sparse
// redistribution protocol (dist.RedistributeSparse — a metadata round
// on the side channel, then a variable-volume payload round), and the
// aggregate-before-communicate rewrite (Schedule.ABC) that replaces a
// [sparse redistribute; aggregate; redistribute back] chain with a
// fused KSpMMABC exchanging only the structurally-touched result rows.
//
// The census formulas reproduce the dist layer's charge sequence
// pair-for-pair: an active pair is a nonzero dense tile intersection,
// its metadata part is the 2-word header plus one word per live row in
// the pair's row window, and its payload is those rows' column slices.
// The live set itself is dist.GenRows(SparseSeed, N, Live) — the same
// generator the feature synthesizer and the executor's value scan
// resolve to — so the pricer's assumed rows and the fabric's shipped
// rows coincide by construction (verify.CheckSparseMatchesModel).

import (
	"math"

	"gnnrdm/internal/dist"
	"gnnrdm/internal/topo"
)

// LiveSet returns the schedule's sorted live row set, nil for a dense
// schedule.
func (s *Schedule) LiveSet() []int32 {
	if s.Live <= 0 || s.Live >= s.N {
		return nil
	}
	return dist.GenRows(s.SparseSeed, s.N, s.Live)
}

// SparseEligible reports whether a from→to conversion runs the
// two-round sparse exchange — mirroring dist.RedistributeSparse's
// fallbacks exactly: identity conversions, Replicated endpoints, and
// single-device worlds fall through to the dense path and must be
// priced as such.
func (s *Schedule) SparseEligible(from, to dist.Layout) bool {
	from, to = from.Normalize(s.P), to.Normalize(s.P)
	return s.P > 1 && from != to &&
		from.Kind != dist.Replicated && to.Kind != dist.Replicated
}

// SparseExchangeCensus is the per-rank byte census of one two-round
// sparse exchange: what each rank packs (Div) and unpacks (Mer) per
// round, self pairs excluded, plus the busiest injector/ejector and
// summed cross-pair totals per round. Metadata bytes ride the side
// channel; payload bytes are the primary metered volume. Callers must
// treat the slices as read-only — cache hits share them.
type SparseExchangeCensus struct {
	MetaDiv, MetaMer, PayDiv, PayMer []int64
	MetaMaxInj, MetaMaxEj, MetaTotal int64
	PayMaxInj, PayMaxEj, PayTotal    int64
}

// buildSparseCensus sums per-pair metadata and payload byte functions
// into the per-rank census. The pair functions follow the fabric's
// convention (defined for all pairs, self pairs never summed).
func buildSparseCensus(p int, metaBytes, payBytes func(r, q int) int64) *SparseExchangeCensus {
	x := &SparseExchangeCensus{
		MetaDiv: make([]int64, p), MetaMer: make([]int64, p),
		PayDiv: make([]int64, p), PayMer: make([]int64, p),
	}
	for r := 0; r < p; r++ {
		for q := 0; q < p; q++ {
			if q == r {
				continue
			}
			if b := metaBytes(r, q); b > 0 {
				x.MetaDiv[r] += b
				x.MetaMer[q] += b
			}
			if b := payBytes(r, q); b > 0 {
				x.PayDiv[r] += b
				x.PayMer[q] += b
			}
		}
	}
	for r := 0; r < p; r++ {
		x.MetaMaxInj = max(x.MetaMaxInj, x.MetaDiv[r])
		x.MetaMaxEj = max(x.MetaMaxEj, x.MetaMer[r])
		x.MetaTotal += x.MetaDiv[r]
		x.PayMaxInj = max(x.PayMaxInj, x.PayDiv[r])
		x.PayMaxEj = max(x.PayMaxEj, x.PayMer[r])
		x.PayTotal += x.PayDiv[r]
	}
	return x
}

// sparsePairGeom computes the dense tile intersection of sender r
// (from) and receiver q (to) — dist.sparseRegrid's pair geometry. ok
// is the active-pair predicate: inactive pairs exchange nothing, not
// even a header.
func sparsePairGeom(p int, from, to dist.Layout, rows, cols, r, q int) (rlo, rhi, clo, chi int, ok bool) {
	arlo, arhi := dist.RowRange(from, p, r, rows)
	aclo, achi := dist.ColRange(from, p, r, cols)
	brlo, brhi := dist.RowRange(to, p, q, rows)
	bclo, bchi := dist.ColRange(to, p, q, cols)
	rlo, rhi = max(arlo, brlo), min(arhi, brhi)
	clo, chi = max(aclo, bclo), min(achi, bchi)
	return rlo, rhi, clo, chi, rlo < rhi && clo < chi
}

// sparseRedistFns returns the per-pair metadata and payload byte
// functions of one sparse from→to redistribution: an active pair's
// metadata is EncodeRowSet's 2-word header plus its live-row ids, and
// its payload is those rows' column slices. Layouts must be
// normalized.
func sparseRedistFns(p int, from, to dist.Layout, rows, cols int, live []int32) (meta, pay func(r, q int) int64) {
	meta = func(r, q int) int64 {
		rlo, rhi, _, _, ok := sparsePairGeom(p, from, to, rows, cols, r, q)
		if !ok {
			return 0
		}
		return 4 * int64(2+dist.CountInRange(live, rlo, rhi))
	}
	pay = func(r, q int) int64 {
		rlo, rhi, clo, chi, ok := sparsePairGeom(p, from, to, rows, cols, r, q)
		if !ok {
			return 0
		}
		return 4 * int64(dist.CountInRange(live, rlo, rhi)) * int64(chi-clo)
	}
	return meta, pay
}

// sparseExchange computes (uncached) the two-round census of one
// sparse redistribution under the schedule's live set.
func (s *Schedule) sparseExchange(from, to dist.Layout, rows, cols int, live []int32) *SparseExchangeCensus {
	from, to = from.Normalize(s.P), to.Normalize(s.P)
	meta, pay := sparseRedistFns(s.P, from, to, rows, cols, live)
	return buildSparseCensus(s.P, meta, pay)
}

// sparsePairFn returns one round's per-pair byte function in the shape
// the topology costers consume.
func (s *Schedule) sparsePairFn(from, to dist.Layout, rows, cols int, live []int32, metaRound bool) func(i, j int) int64 {
	from, to = from.Normalize(s.P), to.Normalize(s.P)
	meta, pay := sparseRedistFns(s.P, from, to, rows, cols, live)
	if metaRound {
		return meta
	}
	return pay
}

// --- PriceCache memoization -------------------------------------------

// sparseExchKey identifies one sparse exchange census: the conversion
// and shape plus the live-set identity (N, Live, SparseSeed) — caches
// outlive a single schedule, and sweeps may mix live sets.
type sparseExchKey struct {
	from, to   dist.Layout
	rows, cols int
	n, live    int
	seed       int64
}

type sparseA2AKey struct {
	sparseExchKey
	metaRound bool
}

type liveSetKey struct {
	n, live int
	seed    int64
}

func (s *Schedule) sparseKey(from, to dist.Layout, rows, cols int) sparseExchKey {
	return sparseExchKey{from.Normalize(s.P), to.Normalize(s.P), rows, cols, s.N, s.Live, s.SparseSeed}
}

// LiveFor returns the memoized live set of the schedule's (N, Live,
// SparseSeed) identity. Read-only for callers.
func (c *PriceCache) LiveFor(s *Schedule) []int32 {
	k := liveSetKey{s.N, s.Live, s.SparseSeed}
	if lv, ok := c.liveSets[k]; ok {
		return lv
	}
	lv := s.LiveSet()
	c.liveSets[k] = lv
	return lv
}

// SparseExchange returns the memoized two-round census of a sparse
// from→to redistribution under the schedule's live set. Layouts must
// be normalized for the bound P.
func (c *PriceCache) SparseExchange(s *Schedule, from, to dist.Layout, rows, cols int) *SparseExchangeCensus {
	c.mustBind()
	k := s.sparseKey(from, to, rows, cols)
	if x, ok := c.sx[k]; ok {
		return x
	}
	x := s.sparseExchange(from, to, rows, cols, c.LiveFor(s))
	c.sx[k] = x
	return x
}

// SparseAllToAllCost returns the memoized topology cost of one round
// (metadata or payload) of a sparse redistribution. Panics on a
// flat-bound cache, like AllToAllCost.
func (c *PriceCache) SparseAllToAllCost(s *Schedule, from, to dist.Layout, rows, cols int, metaRound bool) topo.Cost {
	c.mustBind()
	if c.tp == nil {
		panic("plan: SparseAllToAllCost on a flat-bound PriceCache")
	}
	k := sparseA2AKey{s.sparseKey(from, to, rows, cols), metaRound}
	if cst, ok := c.sa2a[k]; ok {
		return cst
	}
	world := make([]int, c.p)
	for i := range world {
		world[i] = i
	}
	_, cst := c.tp.AllToAll(c.h, topo.Auto, world, s.sparsePairFn(from, to, rows, cols, c.LiveFor(s), metaRound))
	c.sa2a[k] = cst
	return cst
}

// --- Aggregate-before-communicate (KSpMMABC) --------------------------

// liveCountIn counts live rows in [lo, hi); a nil live set means every
// row is live (the dense degenerate).
func liveCountIn(live []int32, lo, hi int) int {
	if live == nil {
		return hi - lo
	}
	return dist.CountInRange(live, lo, hi)
}

// abcPairRows models the structurally-touched row count one KSpMMABC
// sender ships: of the receiver's rowsQ rows, the expected number with
// at least one adjacency edge into the sender's liveR live rows, under
// a uniform (Erdős–Rényi) edge model with per-pair edge probability
// edgeP. Shared by the aggregate pricer and ApproxCensus so flat
// pricing and DAG simulation agree bit-for-bit.
func abcPairRows(rowsQ, liveR int, edgeP float64) int64 {
	if rowsQ <= 0 || liveR <= 0 || edgeP <= 0 {
		return 0
	}
	if edgeP > 1 {
		edgeP = 1
	}
	frac := 1 - math.Pow(1-edgeP, float64(liveR))
	return int64(math.Round(float64(rowsQ) * frac))
}

// ApproxABCPairs estimates the KSpMMABC structural census from a global
// stored-entry count: Pairs[r][q] result rows shipped r→q, and
// NNZABC[r] the stored entries of the adjacency columns selected by
// rank r's live rows (the partial-aggregation kernel's work). Use the
// engine's graph-derived census when exact equality matters; this is
// the synthetic-sweep estimate.
func (s *Schedule) ApproxABCPairs(nnz int64) (pairs [][]int64, nnzABC []int64) {
	p := s.P
	live := s.LiveSet()
	edgeP := float64(nnz) / (float64(s.N) * float64(s.N))
	pairs = make([][]int64, p)
	nnzABC = make([]int64, p)
	for r := 0; r < p; r++ {
		rlo, rhi := dist.RowRange(dist.H, p, r, s.N)
		liveR := liveCountIn(live, rlo, rhi)
		nnzABC[r] = nnz * int64(liveR) / int64(s.N)
		pairs[r] = make([]int64, p)
		for q := 0; q < p; q++ {
			qlo, qhi := dist.RowRange(dist.H, p, q, s.N)
			pairs[r][q] = abcPairRows(qhi-qlo, liveR, edgeP)
		}
	}
	return pairs, nnzABC
}

// abcFns returns the per-pair metadata and payload byte functions of a
// KSpMMABC exchange from its structural census: pairs with no touched
// rows exchange nothing; active pairs send the EncodeRowSet header
// plus ids, and the touched rows' full width-column payload.
func abcFns(pairs [][]int64, width int) (meta, pay func(r, q int) int64) {
	meta = func(r, q int) int64 {
		c := pairs[r][q]
		if c <= 0 {
			return 0
		}
		return 4 * (2 + c)
	}
	pay = func(r, q int) int64 {
		return 4 * pairs[r][q] * int64(width)
	}
	return meta, pay
}

// ABCCensus builds the two-round byte census of a KSpMMABC exchange
// from its structural census, plus the per-pair metadata and payload
// byte functions in the shape the topology costers and meters consume.
// Exported for the discrete-event engine.
func ABCCensus(p int, pairs [][]int64, width int) (x *SparseExchangeCensus, meta, pay func(i, j int) int64) {
	meta, pay = abcFns(pairs, width)
	return buildSparseCensus(p, meta, pay), meta, pay
}

// ABC returns a copy of the schedule with the aggregate-before-
// communicate rewrite applied: every chain
//
//	r1 = redist.sp rX H->grid; r2 = spmm.fwd r1; [relu r2;] r3 = redist r2 grid->H
//
// whose intermediates r1, r2 have no other readers becomes
//
//	r3 = spmm.abc rX H; [relu r3 H;]
//
// — each rank partial-aggregates its own live rows against its full
// adjacency replica and the ranks exchange only the structurally
// touched result rows (metadata round on the side channel, summed on
// arrival in ascending rank order). The rewrite re-associates the
// aggregation sum, so it is opt-in rather than part of Optimize; it
// requires R_A == P (full adjacency per rank) and a sparse schedule,
// and returns an unmodified clone otherwise.
func (s *Schedule) ABC() *Schedule {
	t := s.clone()
	if t.RA != t.P || t.Live <= 0 {
		return t
	}
	type pos struct{ sec, op int }
	var order []pos
	for i := range t.Sections {
		for j := range t.Sections[i].Ops {
			order = append(order, pos{i, j})
		}
	}
	at := func(i int) *Op { return &t.Sections[order[i].sec].Ops[order[i].op] }
	uses := make(map[Reg]int)
	for i := range order {
		op := at(i)
		if op.A != None {
			uses[op.A]++
		}
		if op.B != None {
			uses[op.B]++
		}
	}
	for _, r := range t.Outputs {
		uses[r]++
	}
	drop := make(map[pos]bool)
	rewrote := false
	for i := 0; i+2 < len(order); i++ {
		d1 := at(i)
		if d1.Kind != KRedist || !d1.Sparse ||
			d1.From.Normalize(t.P) != dist.H || d1.To.Normalize(t.P) != t.GridL {
			continue
		}
		d2 := at(i + 1)
		if d2.Kind != KSpMM || !d2.Forward || d2.A != d1.Dst {
			continue
		}
		k := i + 2
		var relu *Op
		if at(k).Kind == KReLU && at(k).A == d2.Dst {
			relu = at(k)
			k++
		}
		if k >= len(order) {
			continue
		}
		d4 := at(k)
		if d4.Kind != KRedist || d4.Sparse || d4.A != d2.Dst ||
			d4.From.Normalize(t.P) != t.GridL || d4.To.Normalize(t.P) != dist.H {
			continue
		}
		wantUses := 1
		if relu != nil {
			wantUses = 2
		}
		if uses[d1.Dst] != 1 || uses[d2.Dst] != wantUses {
			continue
		}
		// Fuse: d1's slot becomes the ABC op producing d4's register in
		// H; the interposed ReLU (elementwise — it commutes with the
		// data movement) re-targets the fused result; d2 and d4 drop.
		*d1 = Op{Kind: KSpMMABC, Step: d1.Step, Dst: d4.Dst, A: d1.A, B: None,
			Forward: true, Layout: dist.H, Rows: d2.Rows, Cols: d2.Cols}
		if relu != nil {
			*relu = Op{Kind: KReLU, Step: relu.Step, Dst: None, A: d4.Dst, B: None,
				Layout: dist.H, Rows: relu.Rows, Cols: relu.Cols}
		}
		drop[order[i+1]] = true
		drop[order[k]] = true
		rewrote = true
	}
	if !rewrote {
		return t
	}
	for i := range t.Sections {
		kept := t.Sections[i].Ops[:0]
		for j, op := range t.Sections[i].Ops {
			if !drop[pos{i, j}] {
				kept = append(kept, op)
			}
		}
		t.Sections[i].Ops = kept
	}
	t.finalize()
	if err := t.Validate(); err != nil {
		panic("plan: ABC-rewritten schedule invalid: " + err.Error())
	}
	return t
}
