package plan

import (
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/dist"
)

// forwardPass emits the init section and the per-layer forward
// sections shared by the training and inference compiles, returning
// the layer-activation vals (h[0..L]) and the memoized forward
// intermediates (None when sp.Memoize is off).
func (c *compiler) forwardPass() (h []*val, memo []Reg) {
	sp := c.sp
	L := len(sp.Dims) - 1

	// Forward pass state: h[l] caches H^l, memo[l] the retained
	// forward AᵀH^{l-1} (§III-C).
	h = make([]*val, L+1)
	memo = make([]Reg, L+1)
	for i := range memo {
		memo[i] = None
	}

	// init: H^0 is free in both layouts — the initial distribution is a
	// data-loading choice (§IV-A1). When the grid layout folds to H the
	// two coincide in one register, exactly like the executor's cache.
	c.section("init", 0)
	h[0] = c.newVal(sp.N, sp.Dims[0])
	x := c.input(dist.H, sp.N, sp.Dims[0])
	c.cache(h[0], dist.H, x)
	c.markSparse(x, true)
	if c.gridL != dist.H {
		xg := c.input(c.gridL, sp.N, sp.Dims[0])
		c.cache(h[0], c.gridL, xg)
		c.markSparse(xg, true)
	}

	for l := 1; l <= L; l++ {
		c.section("fwd", l)
		in, out := sp.Dims[l-1], sp.Dims[l]
		var z Reg
		var zLayout dist.Layout
		if sp.Config.Fwd[l-1] == costmodel.SparseFirst {
			x := c.get(h[l-1], c.gridL)
			t := c.redist(c.spmm(x, true, sp.N, in), c.gridL, dist.H, sp.N, in)
			c.emit(Op{Kind: KMemWrite, A: t, Rows: sp.N, Cols: in})
			if sp.Memoize {
				memo[l] = c.fresh()
				c.emit(Op{Kind: KMemoize, Dst: memo[l], A: t, Rows: sp.N, Cols: in, Layout: dist.H})
			}
			z = c.gemm(t, c.wn(l), false, sp.N, out)
			zLayout = dist.H
			if sp.SAGE {
				self := c.gemm(c.get(h[l-1], dist.H), c.ws(l), false, sp.N, out)
				c.emit(Op{Kind: KAdd, A: z, B: self, Layout: dist.H, Rows: sp.N, Cols: out})
			}
		} else {
			x := c.get(h[l-1], dist.H)
			t := c.gemm(x, c.wn(l), false, sp.N, out)
			z = c.spmm(c.redist(t, dist.H, c.gridL, sp.N, out), true, sp.N, out)
			zLayout = c.gridL
			if sp.SAGE {
				self := c.redist(c.gemm(x, c.ws(l), false, sp.N, out), dist.H, c.gridL, sp.N, out)
				c.emit(Op{Kind: KAdd, A: z, B: self, Layout: c.gridL, Rows: sp.N, Cols: out})
			}
		}
		if l < L {
			c.emit(Op{Kind: KReLU, A: z, Layout: zLayout, Rows: sp.N, Cols: out})
		}
		h[l] = c.newVal(sp.N, out)
		c.cache(h[l], zLayout, z)
	}
	return h, memo
}

// CompileInference lowers the forward pass alone into a schedule with
// init and per-layer fwd sections — no loss, backward, or update: the
// serving tier needs vertex-complete logits and nothing else. The
// final redistribution that makes the logits vertex-complete (§IV-A1,
// paid in the loss section during training) is emitted into the last
// forward section instead, so a serving engine re-running sections
// from a stale layer repays exactly the communication the pricer
// attributes to those sections. The logits register is the schedule's
// sole Output, which keeps the whole forward chain live through
// Optimize's dead-code elimination; redistribution elision applies
// unchanged. Memoization and input gradients are forced off — there is
// no backward pass to consume them.
func CompileInference(sp Spec) *Schedule {
	sp.Memoize = false
	sp.InputGrad = false
	sp = sp.withDefaults()
	sp.validate()
	c := &compiler{sp: sp, gridL: dist.G(sp.RA).Normalize(sp.P), sparse: map[Reg]bool{}}
	L := len(sp.Dims) - 1
	nw := L
	if sp.SAGE {
		nw = 2 * L
	}
	c.s = &Schedule{
		P: sp.P, RA: sp.RA, N: sp.N,
		Dims:       append([]int(nil), sp.Dims...),
		Config:     costmodel.ConfigFromID(sp.Config.ID(), L),
		SAGE:       sp.SAGE,
		GridL:      c.gridL,
		NumWeights: nw,
		Live:       sp.Live, SparseSeed: sp.SparseSeed,
	}
	h, _ := c.forwardPass()
	logits := c.get(h[L], dist.H)
	c.s.Outputs = append(c.s.Outputs, logits)
	c.s.NumRegs = int(c.next)
	if err := c.s.Validate(); err != nil {
		panic("plan: compiled inference schedule invalid: " + err.Error())
	}
	return c.s
}
