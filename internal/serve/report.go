package serve

import (
	"math"
	"sort"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/topo"
)

// Report is the session's aggregate scoreboard: load, cache
// efficacy, exact byte ledgers (metered and predicted), and the
// simulated latency distribution on the arrival timeline.
type Report struct {
	P       int     `json:"p"`
	Queries int     `json:"queries"`
	Batches int     `json:"batches"`
	Hits    int     `json:"hits"`
	Misses  int     `json:"misses"`
	HitRate float64 `json:"hit_rate"`

	// Degraded-window tallies: queries answered stale from the store
	// while the world was re-forming, and queries deferred for
	// resubmission (see Session.ServeDegraded).
	StaleServed int `json:"stale_served"`
	Deferred    int `json:"deferred"`

	BytesAllToAll  int64   `json:"bytes_alltoall"`
	BytesAllGather int64   `json:"bytes_allgather"`
	BytesTotal     int64   `json:"bytes_total"`
	BytesPerQuery  float64 `json:"bytes_per_query"`
	PredAllToAll   int64   `json:"pred_alltoall"`
	PredAllGather  int64   `json:"pred_allgather"`

	TierBytes     [topo.NumTiers]int64 `json:"tier_bytes"`
	PredTierBytes [topo.NumTiers]int64 `json:"pred_tier_bytes"`

	P50Latency    float64 `json:"p50_latency"`
	P99Latency    float64 `json:"p99_latency"`
	MeanLatency   float64 `json:"mean_latency"`
	ThroughputQPS float64 `json:"throughput_qps"`
	SimTime       float64 `json:"sim_time"`
	PredTime      float64 `json:"pred_time"`
}

// percentile returns the q-quantile (0 < q <= 1) of xs by the
// nearest-rank method on a sorted copy; 0 for an empty slice.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	return s[i]
}

// Report summarizes everything served so far.
func (s *Session) Report() Report {
	r := Report{
		P:       s.lastP,
		Queries: s.queries,
		Batches: s.batches,
		Hits:    s.hits,
		Misses:  s.misses,

		StaleServed: s.staleServed,
		Deferred:    s.deferred,

		BytesAllToAll:  s.metered.AllToAll,
		BytesAllGather: s.metered.AllGather,
		BytesTotal:     s.metered.Total(),
		PredAllToAll:   s.predicted.AllToAll,
		PredAllGather:  s.predicted.AllGather,
		TierBytes:      s.metered.Tier,
		PredTierBytes:  s.predicted.Tier,

		P50Latency: percentile(s.latencies, 0.50),
		P99Latency: percentile(s.latencies, 0.99),
		SimTime:    s.simTime,
		PredTime:   s.predTime,
	}
	if s.queries > 0 {
		r.HitRate = float64(s.hits) / float64(s.queries)
		r.BytesPerQuery = float64(r.BytesTotal) / float64(s.queries)
	}
	var sum float64
	for _, l := range s.latencies {
		sum += l
	}
	if len(s.latencies) > 0 {
		r.MeanLatency = sum / float64(len(s.latencies))
	}
	if span := s.prevCompletion - s.firstArrival; span > 0 {
		r.ThroughputQPS = float64(s.queries) / span
	}
	return r
}

// Reference is the differential oracle: a single-device, uncached
// engine computing the exact final-layer embedding of every requested
// vertex. The batched, cached, distributed session must agree with it
// within verify.LogitsTol.
func Reference(prob *core.Problem, cfg Config, vertices []int32) map[int32][]float32 {
	cfg = cfg.withDefaults()
	L := cfg.layers()
	rows := make(map[int32][]float32, len(vertices))
	fab := comm.NewFabric(1, cfg.HW)
	fab.Run(func(d *comm.Device) {
		eng := core.NewInferenceEngine(d, prob, core.Options{
			Dims: cfg.Dims, Config: costmodel.ConfigFromID(cfg.ConfigID, L),
			RA: 1, Seed: cfg.Seed, SAGE: cfg.SAGE,
		}, cfg.Checkpoint)
		logits := eng.RunInference(0)
		for _, v := range vertices {
			if rows[v] == nil {
				rows[v] = append([]float32(nil), logits.Local.Row(int(v))...)
			}
		}
	})
	return rows
}
