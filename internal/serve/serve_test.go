package serve

import (
	"reflect"
	"testing"
	"time"
)

func TestTrafficSpecStringParseFixedPoint(t *testing.T) {
	ts := TrafficSpec{Queries: 512, Users: 1_000_000, Skew: 1.5, Rate: 2000, Seed: 7}
	got, err := ParseTrafficSpec(ts.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", ts.String(), err)
	}
	if got != ts {
		t.Fatalf("round trip changed the spec: %+v != %+v", got, ts)
	}
	if got.String() != ts.String() {
		t.Fatalf("String not a fixed point: %q != %q", got.String(), ts.String())
	}
}

func TestTrafficSpecValidate(t *testing.T) {
	bad := []TrafficSpec{
		{Queries: -1, Users: 1, Skew: 1.5, Rate: 1},
		{Queries: 1, Users: 0, Skew: 1.5, Rate: 1},
		{Queries: 1, Users: 1, Skew: 1.0, Rate: 1}, // Zipf needs s > 1
		{Queries: 1, Users: 1, Skew: 1.5, Rate: 0},
	}
	for _, ts := range bad {
		if err := ts.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid spec", ts)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	ts := TrafficSpec{Queries: 256, Users: 3_000_000, Skew: 1.3, Rate: 500, Seed: 42}
	a, b := ts.Generate(100), ts.Generate(100)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec must generate a byte-identical stream")
	}
	prev := 0.0
	for i, q := range a {
		if q.Arrival < prev {
			t.Fatalf("query %d arrives at %v before predecessor at %v", i, q.Arrival, prev)
		}
		prev = q.Arrival
		if q.Vertex < 0 || int(q.Vertex) >= 100 {
			t.Fatalf("query %d vertex %d out of range", i, q.Vertex)
		}
		if q.User < 0 || q.User >= ts.Users {
			t.Fatalf("query %d user %d out of range", i, q.User)
		}
	}
	ts.Seed = 43
	if reflect.DeepEqual(a, ts.Generate(100)) {
		t.Fatal("different seeds must generate different streams")
	}
}

func TestCoalesceSizeTrigger(t *testing.T) {
	qs := make([]Query, 10)
	for i := range qs {
		qs[i] = Query{Vertex: int32(i), Arrival: float64(i) * 0.001}
	}
	bs := Coalesce(qs, 4, 100) // deadline never fires
	if len(bs) != 3 {
		t.Fatalf("got %d batches, want 3 (4+4+2)", len(bs))
	}
	if len(bs[0].Queries) != 4 || len(bs[1].Queries) != 4 || len(bs[2].Queries) != 2 {
		t.Fatalf("batch sizes %d/%d/%d, want 4/4/2", len(bs[0].Queries), len(bs[1].Queries), len(bs[2].Queries))
	}
	// Size-triggered batches dispatch at their last query's arrival.
	if bs[0].Dispatch != qs[3].Arrival || bs[1].Dispatch != qs[7].Arrival {
		t.Fatalf("size-trigger dispatch times %v/%v, want %v/%v",
			bs[0].Dispatch, bs[1].Dispatch, qs[3].Arrival, qs[7].Arrival)
	}
	// The trailing partial batch flushes at its deadline.
	if want := qs[8].Arrival + 100; bs[2].Dispatch != want {
		t.Fatalf("final batch dispatches at %v, want deadline %v", bs[2].Dispatch, want)
	}
}

func TestCoalesceDeadlineTrigger(t *testing.T) {
	qs := []Query{
		{Vertex: 0, Arrival: 0},
		{Vertex: 1, Arrival: 0.0005},
		{Vertex: 2, Arrival: 0.5}, // arrives after batch 0's deadline
	}
	bs := Coalesce(qs, 100, 0.001)
	if len(bs) != 2 {
		t.Fatalf("got %d batches, want 2", len(bs))
	}
	if len(bs[0].Queries) != 2 || bs[0].Dispatch != 0.001 {
		t.Fatalf("batch 0: %d queries dispatched at %v, want 2 at 0.001", len(bs[0].Queries), bs[0].Dispatch)
	}
	if len(bs[1].Queries) != 1 || bs[1].Dispatch != 0.501 {
		t.Fatalf("batch 1: %d queries dispatched at %v, want 1 at 0.501", len(bs[1].Queries), bs[1].Dispatch)
	}
}

// An admission queue fed no queries must close its batch channel
// promptly rather than deadlock the consumer — the serving loop's
// idle-stream liveness guarantee.
func TestQueueEmptyStreamNoDeadlock(t *testing.T) {
	q := NewQueue(8, 0.001)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range q.Batches() {
			t.Error("empty stream produced a batch")
		}
	}()
	q.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("admission queue deadlocked on an empty arrival stream")
	}
}

func TestCacheLRUAndStaleness(t *testing.T) {
	c := NewCache(2)
	c.Insert(1, 0)
	c.Insert(2, 0)
	if !c.Lookup(1, 0, 0) {
		t.Fatal("1 should hit")
	}
	c.Insert(3, 1) // evicts 2 (1 was refreshed by the hit)
	if c.Lookup(2, 1, 0) {
		t.Fatal("2 should have been evicted as LRU")
	}
	if !c.Lookup(1, 1, 0) || !c.Lookup(3, 1, 0) {
		t.Fatal("1 and 3 should remain cached")
	}
	// Staleness: entry from batch 1 expires at batch 1+2 with bound 2.
	if !c.Lookup(3, 2, 2) {
		t.Fatal("3 is one batch old, bound 2: fresh")
	}
	if c.Lookup(3, 3, 2) {
		t.Fatal("3 is two batches old, bound 2: stale")
	}
	if c.Lookup(3, 3, 0) {
		t.Fatal("stale lookup must evict, not just miss")
	}
	// Disabled cache never hits.
	d := NewCache(0)
	d.Insert(9, 0)
	if d.Lookup(9, 0, 0) {
		t.Fatal("capacity-0 cache must always miss")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if p := percentile(xs, 0.5); p != 3 {
		t.Fatalf("p50 = %v, want 3", p)
	}
	if p := percentile(xs, 0.99); p != 5 {
		t.Fatalf("p99 = %v, want 5", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty percentile = %v, want 0", p)
	}
}
