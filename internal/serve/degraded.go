package serve

// Graceful degradation: while an elastic world is re-forming after a
// crash (gossip detection, rollback, reshard — see core.TrainElastic
// and internal/member), the serving tier has no fabric to gather misses
// on. Instead of erroring, ServeDegraded answers every query it can
// from the session's accumulated answer store — each response flagged
// stale, since the store may lag the model being retrained — and defers
// the rest for resubmission through Serve once the world is back. The
// degraded path touches no fabric and no byte meters, and leaves the
// cache policy's hit/miss determinism witness untouched.

// DegradedAnswer is one response from the degraded path.
type DegradedAnswer struct {
	Vertex int32
	// Embedding is the stored final-layer embedding. Nil when the vertex
	// was never served before the degradation window (the query is then
	// listed in DegradedReport.Deferred instead).
	Embedding []float32
	// Stale marks the answer as possibly outdated: every degraded-window
	// answer is stale by definition, because the store cannot refresh
	// without a fabric.
	Stale bool
}

// DegradedReport is the outcome of one degraded-window call.
type DegradedReport struct {
	// Served counts queries answered (stale) from the store.
	Served int
	// Answers holds the stale responses, in arrival order.
	Answers []DegradedAnswer
	// Deferred holds the queries the store could not answer, in arrival
	// order; resubmit them to Serve after the world re-forms.
	Deferred []Query
}

// ServeDegraded answers a query stream without a fabric: store hits are
// served stale, misses are deferred. Session-level counters accumulate
// across calls (StaleServed, DeferredQueries) and surface in Report.
func (s *Session) ServeDegraded(queries []Query) DegradedReport {
	var rep DegradedReport
	for _, q := range queries {
		if emb, ok := s.answers[q.Vertex]; ok {
			rep.Answers = append(rep.Answers, DegradedAnswer{
				Vertex:    q.Vertex,
				Embedding: append([]float32(nil), emb...),
				Stale:     true,
			})
			rep.Served++
			s.staleServed++
			continue
		}
		rep.Deferred = append(rep.Deferred, q)
		s.deferred++
	}
	return rep
}

// StaleServed returns the total queries answered stale across every
// degraded window of the session.
func (s *Session) StaleServed() int { return s.staleServed }

// DeferredQueries returns the total queries deferred across every
// degraded window of the session.
func (s *Session) DeferredQueries() int { return s.deferred }
