package serve

// The admission queue coalesces the open-loop query stream into
// microbatches under two triggers: a batch dispatches when it reaches
// MaxBatch queries (size trigger) or when the stream's clock passes
// the first enqueued query's arrival + Deadline (deadline trigger) —
// whichever comes first. Because the stream is simulated, "the clock
// passes" is observed at the next arrival: a query arriving after the
// open batch's deadline first flushes that batch at its deadline, then
// opens a new one. Arrivals must be nondecreasing (Generate's are).

// Batch is one dispatched microbatch: the coalesced queries in arrival
// order and the simulated dispatch time (the deadline or the size-
// trigger arrival).
type Batch struct {
	Queries  []Query
	Dispatch float64
}

// Queue is the admission queue's goroutine form: Submit queries in
// arrival order, Close when the stream ends, and range over Batches
// for the dispatched microbatches. Closing an empty queue closes
// Batches immediately — an empty arrival stream never deadlocks the
// consumer.
type Queue struct {
	in       chan Query
	out      chan Batch
	maxBatch int
	deadline float64
}

// NewQueue starts an admission queue. maxBatch must be >= 1; deadline
// is in simulated seconds (0 dispatches every batch at its first
// query's arrival unless the size trigger fires on identical arrival
// times).
func NewQueue(maxBatch int, deadline float64) *Queue {
	if maxBatch < 1 {
		panic("serve: admission queue needs maxBatch >= 1")
	}
	if deadline < 0 {
		panic("serve: admission queue needs deadline >= 0")
	}
	q := &Queue{
		in:       make(chan Query),
		out:      make(chan Batch),
		maxBatch: maxBatch,
		deadline: deadline,
	}
	go q.run()
	return q
}

func (q *Queue) run() {
	defer close(q.out)
	var cur []Query
	var dl float64
	flush := func(at float64) {
		q.out <- Batch{Queries: cur, Dispatch: at}
		cur = nil
	}
	for query := range q.in {
		if len(cur) > 0 && query.Arrival > dl {
			flush(dl)
		}
		if len(cur) == 0 {
			dl = query.Arrival + q.deadline
		}
		cur = append(cur, query)
		if len(cur) == q.maxBatch {
			flush(query.Arrival)
		}
	}
	if len(cur) > 0 {
		flush(dl)
	}
}

// Submit enqueues one query. Queries must be submitted in
// nondecreasing arrival order.
func (q *Queue) Submit(query Query) { q.in <- query }

// Close ends the stream: the partially filled batch (if any) is
// flushed at its deadline and Batches is closed.
func (q *Queue) Close() { close(q.in) }

// Batches is the dispatched-microbatch channel; it closes after Close
// once every batch has been delivered.
func (q *Queue) Batches() <-chan Batch { return q.out }

// Coalesce runs a whole query stream through an admission queue and
// collects the dispatched batches — the synchronous form the serving
// session plans with.
func Coalesce(queries []Query, maxBatch int, deadline float64) []Batch {
	q := NewQueue(maxBatch, deadline)
	go func() {
		for _, query := range queries {
			q.Submit(query)
		}
		q.Close()
	}()
	var out []Batch
	for b := range q.Batches() {
		out = append(out, b)
	}
	return out
}
