package serve

import (
	"fmt"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/tensor"
	"gnnrdm/internal/topo"
	"gnnrdm/internal/trace"
)

// Config fixes one serving deployment: the model (dims, Table IV
// ordering, replication, weights), the hardware and optional
// interconnect topology, and the admission/cache policy.
type Config struct {
	// HW is the device model. Default hw.A6000().
	HW *hw.Model
	// Topology, when non-nil, routes and prices every collective
	// through the hierarchical interconnect (per-tier metering).
	Topology *topo.Topology
	// Dims is f_0..f_L; ConfigID the Table IV ordering; RA the
	// adjacency replication factor (0 = full replication); SAGE the
	// two-weight GraphSAGE form — all as in core.Options.
	Dims     []int
	ConfigID int
	RA       int
	SAGE     bool
	// Seed controls weight initialization when Checkpoint is nil (and
	// must then match the training run being served, or the tier serves
	// a different model).
	Seed int64
	// Checkpoint, when non-nil, supplies trained weights (only the
	// weight matrices are read; optimizer state is ignored).
	Checkpoint *core.Checkpoint
	// MaxBatch and Deadline are the admission queue's size and latency
	// triggers. Defaults 8 and 1ms.
	MaxBatch int
	Deadline float64
	// CacheCap is the LRU answer-cache capacity in vertices; 0 disables
	// caching. Staleness, when > 0, expires a cached answer staleness
	// microbatches after insertion.
	CacheCap  int
	Staleness int
	// LayerStaleness, when non-empty, bounds how many microbatches
	// layer l's embeddings (l = index+1) may go without recomputation:
	// a refresh re-runs the forward schedule from the lowest stale
	// layer before the next miss is gathered. Empty = embeddings are
	// computed once per engine incarnation (exact for a frozen model).
	LayerStaleness []int
	// Tracer, when non-nil, records device timelines plus one
	// ClassRequest span per microbatch on virtual rank P.
	Tracer     *trace.Tracer
	TraceLabel string
}

func (c Config) withDefaults() Config {
	if c.HW == nil {
		c.HW = hw.A6000()
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.Deadline == 0 {
		c.Deadline = 1e-3
	}
	if c.TraceLabel == "" {
		c.TraceLabel = "serve"
	}
	return c
}

func (c Config) layers() int { return len(c.Dims) - 1 }

// Meter is a byte ledger: fabric-metered or model-predicted volumes by
// collective kind, with the per-tier split.
type Meter struct {
	AllToAll  int64
	AllGather int64
	AllReduce int64
	Other     int64
	Side      int64
	Tier      [topo.NumTiers]int64
}

// Total returns the primary-channel byte total.
func (m Meter) Total() int64 { return m.AllToAll + m.AllGather + m.AllReduce + m.Other }

// Session is one serving deployment's accumulated state: the answer
// cache and value store survive across Serve calls — including calls
// at different world sizes, the elastic re-formation path — while
// engines and their registers are rebuilt per call.
type Session struct {
	prob *core.Problem
	cfg  Config

	cache   *Cache
	answers map[int32][]float32

	batchIdx  int
	queries   int
	batches   int
	hits      int
	misses    int
	gathered  int64 // rows moved by GatherRows (deduped misses)
	hitSeq    []byte
	latencies []float64

	prevCompletion float64
	firstArrival   float64
	haveArrival    bool
	simTime        float64
	predTime       float64
	lastP          int

	metered   Meter
	predicted Meter

	// Degraded-window counters (see degraded.go): queries answered
	// stale from the store and queries deferred for resubmission. The
	// degraded path never touches the meters above.
	staleServed int
	deferred    int
}

// NewSession builds a serving session over a problem's graph and
// features. The model is defined by cfg (checkpoint or seeded init).
func NewSession(prob *core.Problem, cfg Config) *Session {
	cfg = cfg.withDefaults()
	if len(cfg.Dims) < 2 {
		panic("serve: Config.Dims must give at least input and output widths")
	}
	if len(cfg.LayerStaleness) != 0 && len(cfg.LayerStaleness) != cfg.layers() {
		panic(fmt.Sprintf("serve: LayerStaleness has %d entries, model has %d layers",
			len(cfg.LayerStaleness), cfg.layers()))
	}
	return &Session{
		prob:    prob,
		cfg:     cfg,
		cache:   NewCache(cfg.CacheCap),
		answers: make(map[int32][]float32),
	}
}

// batchPlan is the host-side decision record for one microbatch: which
// queries hit, which vertices must be gathered, and whether (and from
// which layer) the embedding table is refreshed first. It is computed
// before the fabric runs, so every device executes the same plan in
// lockstep with zero control-plane communication — the shared-plan
// trick the trainer's shared-seed sampling uses.
type batchPlan struct {
	batch     Batch
	missVerts []int32 // deduped, first-occurrence order
	hitRows   int     // hit queries (cache hits + batch-coalesced duplicates)
	fromLayer int     // -1 = no refresh
}

// secSums aggregates a priced schedule per section, aligned with
// plan.Cost.PerOp (which lists ops in section order).
type secSums struct {
	phase string
	layer int
	Meter
	time float64
}

func sectionSums(sched *plan.Schedule, c plan.Cost) []secSums {
	var out []secSums
	k := 0
	for i := range sched.Sections {
		sec := &sched.Sections[i]
		ss := secSums{phase: sec.Phase, layer: sec.Layer}
		for range sec.Ops {
			oc := c.PerOp[k]
			k++
			ss.AllToAll += oc.AllToAll
			ss.AllGather += oc.AllGather
			ss.AllReduce += oc.AllReduce
			ss.Side += oc.Side
			for t := 0; t < topo.NumTiers; t++ {
				ss.Tier[t] += oc.Tier[t]
			}
			ss.time += oc.Time
		}
		out = append(out, ss)
	}
	return out
}

// refreshSums totals the sections a refresh from fromLayer executes:
// the init section when cold, every fwd section with Layer >= max(1,
// fromLayer) otherwise (a warm refresh never re-runs init).
func refreshSums(secs []secSums, fromLayer int, cold bool) (Meter, float64) {
	var m Meter
	var t float64
	for _, ss := range secs {
		run := false
		switch ss.phase {
		case "init":
			run = cold
		case "fwd":
			run = ss.layer >= fromLayer
		}
		if !run {
			continue
		}
		m.AllToAll += ss.AllToAll
		m.AllGather += ss.AllGather
		m.AllReduce += ss.AllReduce
		m.Side += ss.Side
		for i := 0; i < topo.NumTiers; i++ {
			m.Tier[i] += ss.Tier[i]
		}
		t += ss.time
	}
	return m, t
}

// Serve answers one query stream on a world of p devices. Queries must
// be in nondecreasing arrival order (TrafficSpec.Generate's are).
// Calling Serve again — with the same or a different p — continues the
// session: the cache and value store carry over, engines are rebuilt,
// and the first miss of the new incarnation pays a cold refresh. The
// hit/miss sequence depends only on the query stream and cache policy,
// never on p.
func (s *Session) Serve(p int, queries []Query) {
	if p < 1 {
		panic("serve: Serve needs p >= 1")
	}
	if len(queries) == 0 {
		return
	}
	cfg := s.cfg
	s.lastP = p
	if !s.haveArrival {
		s.firstArrival = queries[0].Arrival
		s.haveArrival = true
	}
	L := cfg.layers()
	fL := cfg.Dims[L]
	ra := cfg.RA
	if ra <= 0 {
		ra = p
	}
	tblCfg := costmodel.ConfigFromID(cfg.ConfigID, L)

	// Host-side plan: admission, then the cache's hit/miss verdict per
	// query in arrival order and the refresh decision per microbatch.
	plans := s.planBatches(Coalesce(queries, cfg.MaxBatch, cfg.Deadline), L)

	// Price the inference schedule once; refreshes and gathers are
	// summed per batch from the per-section closed forms.
	sched := plan.CompileInference(plan.Spec{
		N: s.prob.N(), Dims: cfg.Dims, Config: tblCfg,
		P: p, RA: ra, SAGE: cfg.SAGE,
	}).Optimize()
	secs := sectionSums(sched, sched.PriceOn(s.prob.A.NNZ(), cfg.HW, cfg.Topology))
	for _, bp := range plans {
		s.predictBatch(bp, secs, p, fL)
	}

	// One fabric run executes every microbatch SPMD-lockstep.
	fab := comm.NewFabric(p, cfg.HW)
	if cfg.Topology != nil {
		fab.SetTopology(cfg.Topology)
	}
	if cfg.Tracer != nil {
		fab.SetTracer(cfg.Tracer, cfg.TraceLabel)
	}
	gathered := make([]*tensor.Dense, len(plans))
	svc := make([]float64, len(plans))
	fab.Run(func(d *comm.Device) {
		eng := core.NewInferenceEngine(d, s.prob, core.Options{
			Dims: cfg.Dims, Config: tblCfg, RA: ra, Seed: cfg.Seed, SAGE: cfg.SAGE,
		}, cfg.Checkpoint)
		var logits *dist.Mat
		for i, bp := range plans {
			c0 := d.Clock()
			if bp.fromLayer >= 0 {
				logits = eng.RunInference(bp.fromLayer)
			}
			var out *tensor.Dense
			if len(bp.missVerts) > 0 {
				out = logits.GatherRows(0, bp.missVerts)
			}
			if d.Rank == 0 {
				if bp.hitRows > 0 {
					d.ChargeMem(4 * int64(fL) * int64(bp.hitRows))
				}
				gathered[i] = out
				svc[i] = d.Clock() - c0
			}
		}
	})
	s.simTime += fab.MaxClock()
	s.meterFabric(fab)

	// Store gathered answers and complete the latency bookkeeping on
	// the arrival timeline: batches are served in order, each starting
	// at max(dispatch, previous completion).
	for i, bp := range plans {
		for j, v := range bp.missVerts {
			s.answers[v] = append([]float32(nil), gathered[i].Row(j)...)
		}
		start := bp.batch.Dispatch
		if s.prevCompletion > start {
			start = s.prevCompletion
		}
		completion := start + svc[i]
		s.prevCompletion = completion
		for _, q := range bp.batch.Queries {
			s.latencies = append(s.latencies, completion-q.Arrival)
		}
		if cfg.Tracer != nil {
			cfg.Tracer.Emit(p, trace.Event{
				Class: trace.ClassRequest,
				Op:    "microbatch",
				Bytes: costmodel.PredictQueryBytes(fL, int64(len(bp.missVerts))),
				Start: start,
				End:   completion,
			})
		}
	}
}

// planBatches runs the cache over the coalesced batches in arrival
// order, producing each microbatch's miss list and refresh decision.
func (s *Session) planBatches(batches []Batch, L int) []*batchPlan {
	cfg := s.cfg
	warm := false
	lastRefresh := make([]int, L+1)
	var plans []*batchPlan
	for _, b := range batches {
		bp := &batchPlan{batch: b, fromLayer: -1}
		seen := make(map[int32]bool, len(b.Queries))
		for _, q := range b.Queries {
			switch {
			case seen[q.Vertex]:
				// Coalesced within the batch: answered by the row the
				// first occurrence gathers.
				bp.hitRows++
				s.hitSeq = append(s.hitSeq, '1')
			case s.cache.Lookup(q.Vertex, s.batchIdx, cfg.Staleness):
				bp.hitRows++
				s.hitSeq = append(s.hitSeq, '1')
			default:
				seen[q.Vertex] = true
				bp.missVerts = append(bp.missVerts, q.Vertex)
				s.hitSeq = append(s.hitSeq, '0')
			}
		}
		if len(bp.missVerts) > 0 {
			switch {
			case !warm:
				bp.fromLayer = 0
			default:
				for l := 1; l <= L; l++ {
					bound := 0
					if len(cfg.LayerStaleness) != 0 {
						bound = cfg.LayerStaleness[l-1]
					}
					if bound > 0 && s.batchIdx-lastRefresh[l] >= bound {
						bp.fromLayer = l
						break
					}
				}
			}
			if bp.fromLayer >= 0 {
				warm = true
				from := bp.fromLayer
				if from < 1 {
					from = 1
				}
				for l := from; l <= L; l++ {
					lastRefresh[l] = s.batchIdx
				}
			}
			for _, v := range bp.missVerts {
				s.cache.Insert(v, s.batchIdx)
			}
		}
		s.queries += len(b.Queries)
		s.hits += bp.hitRows
		s.misses += len(bp.missVerts)
		s.gathered += int64(len(bp.missVerts))
		s.batches++
		s.batchIdx++
		plans = append(plans, bp)
	}
	return plans
}

// predictBatch adds one microbatch's closed-form price to the
// session's predicted ledger.
func (s *Session) predictBatch(bp *batchPlan, secs []secSums, p, fL int) {
	cfg := s.cfg
	var refresh Meter
	var refreshTime float64
	if bp.fromLayer >= 0 {
		refresh, refreshTime = refreshSums(secs, bp.fromLayer, bp.fromLayer == 0)
	}
	var gatherBytes int64
	var gatherTier [topo.NumTiers]int64
	var gatherTime float64
	if len(bp.missVerts) > 0 {
		owned := make([]int64, p)
		for _, v := range bp.missVerts {
			owned[ownerOf(v, p, s.prob.N())]++
		}
		gatherBytes, gatherTier, gatherTime = costmodel.PredictGather(cfg.HW, cfg.Topology, p, 0, fL, owned)
	}
	s.predicted.AllToAll += refresh.AllToAll + gatherBytes
	s.predicted.AllGather += refresh.AllGather
	s.predicted.AllReduce += refresh.AllReduce
	s.predicted.Side += refresh.Side
	if cfg.Topology != nil {
		for t := 0; t < topo.NumTiers; t++ {
			s.predicted.Tier[t] += refresh.Tier[t] + gatherTier[t]
		}
	} else {
		// Flat fabric meters everything as intra-tier.
		s.predicted.Tier[topo.TierIntra] += refresh.AllToAll + refresh.AllGather +
			refresh.AllReduce + gatherBytes
	}
	s.predTime += costmodel.PredictMicrobatchTime(cfg.HW, refreshTime, gatherTime, bp.hitRows, fL)
}

// ownerOf returns the rank owning global row v under the vertex-sliced
// (Horizontal) layout over n rows.
func ownerOf(v int32, p, n int) int {
	for r := 0; r < p; r++ {
		if lo, hi := dist.RowRange(dist.H, p, r, n); int(v) >= lo && int(v) < hi {
			return r
		}
	}
	panic(fmt.Sprintf("serve: vertex %d outside [0, %d)", v, n))
}

// meterFabric folds one fabric run's meters into the session ledger.
func (s *Session) meterFabric(fab *comm.Fabric) {
	kinds := []hw.CollectiveKind{
		hw.OpBroadcast, hw.OpAllGather, hw.OpAllReduce,
		hw.OpAllToAll, hw.OpSendRecv, hw.OpReduceScatter,
	}
	for _, k := range kinds {
		v := fab.Volume(k)
		switch k {
		case hw.OpAllToAll:
			s.metered.AllToAll += v
		case hw.OpAllGather:
			s.metered.AllGather += v
		case hw.OpAllReduce:
			s.metered.AllReduce += v
		default:
			s.metered.Other += v
		}
		for t := 0; t < topo.NumTiers; t++ {
			s.metered.Tier[t] += fab.TierVolume(k, t)
		}
	}
	s.metered.Side += fab.TotalSideVolume()
}

// Metered and Predicted expose the session's byte ledgers for
// verification (see verify.CheckServeMatchesModel).
func (s *Session) Metered() Meter   { return s.metered }
func (s *Session) Predicted() Meter { return s.predicted }

// HitMiss returns the per-query hit/miss sequence in arrival order
// ('1' hit, '0' miss) — the determinism witness.
func (s *Session) HitMiss() string { return string(s.hitSeq) }

// Answer returns the served final-layer embedding of v (nil if v was
// never queried).
func (s *Session) Answer(v int32) []float32 { return s.answers[v] }
