package serve

import "testing"

// FuzzTrafficSpec drives the traffic grammar's Parse/String fixed
// point: any spec Parse accepts must re-render to a string Parse
// accepts again, reaching the identical spec — and must be generable
// without panicking.
func FuzzTrafficSpec(f *testing.F) {
	f.Add("traffic q=512 users=1000000 zipf=1.5 rate=2000 seed=7")
	f.Add("traffic q=0 users=1 zipf=1.001 rate=0.5 seed=-1")
	f.Add("traffic q=64 users=3000000 zipf=2 rate=1e6 seed=42")
	f.Add("traffic q=1 users=1099511627776 zipf=64 rate=1e12 seed=0")
	f.Fuzz(func(t *testing.T, s string) {
		ts, err := ParseTrafficSpec(s)
		if err != nil {
			return
		}
		re, err := ParseTrafficSpec(ts.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", ts.String(), s, err)
		}
		if re != ts {
			t.Fatalf("fixed point violated: %q parsed to %+v, re-parsed to %+v", s, ts, re)
		}
		if ts.Queries > 1024 {
			ts.Queries = 1024 // keep the fuzz executable fast
		}
		qs := ts.Generate(17)
		if len(qs) != ts.Queries {
			t.Fatalf("Generate returned %d queries, want %d", len(qs), ts.Queries)
		}
	})
}
