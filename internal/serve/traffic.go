// Package serve is the online inference tier: batched, cached,
// distributed GNN serving over the layouts the trainer produced. A
// deterministic open-loop traffic generator feeds an admission queue
// that coalesces per-vertex embedding queries into microbatches; each
// microbatch is answered by a forward-only distributed engine
// (plan.CompileInference interpreted by core.RunInference) behind a
// seeded LRU cache of historical answers, and every byte the serving
// path moves is metered by the fabric and predicted in closed form by
// internal/costmodel. The whole tier is bit-reproducible under a seed.
package serve

import (
	"fmt"
	"math/rand"
)

// Query is one embedding request: user asks for vertex's final-layer
// embedding at a simulated arrival time (seconds on the open-loop
// clock; arrivals are nondecreasing within a generated stream).
type Query struct {
	Vertex  int32
	Arrival float64
	User    int64
}

// TrafficSpec describes a deterministic open-loop request stream:
// Queries Poisson arrivals at Rate per second, vertices drawn from a
// Zipf(Skew) popularity law over a seeded random permutation of the
// vertex set (so popularity is decorrelated from vertex — and thus
// owner — order), issued by Users simulated users. Same spec + same
// vertex count => byte-identical stream.
type TrafficSpec struct {
	Queries int
	Users   int64
	Skew    float64
	Rate    float64
	Seed    int64
}

// Limits keeping fuzzed specs executable; Generate panics beyond them.
const (
	maxQueries = 1 << 22
	maxUsers   = int64(1) << 40
)

// Validate reports whether the spec is generable: math/rand's Zipf
// requires skew > 1, the arrival process a positive rate.
func (ts TrafficSpec) Validate() error {
	if ts.Queries < 0 || ts.Queries > maxQueries {
		return fmt.Errorf("serve: traffic queries %d out of range [0, %d]", ts.Queries, maxQueries)
	}
	if ts.Users < 1 || ts.Users > maxUsers {
		return fmt.Errorf("serve: traffic users %d out of range [1, %d]", ts.Users, maxUsers)
	}
	if !(ts.Skew > 1) || ts.Skew > 64 {
		return fmt.Errorf("serve: traffic zipf skew %v must be in (1, 64]", ts.Skew)
	}
	if !(ts.Rate > 0) || ts.Rate > 1e12 {
		return fmt.Errorf("serve: traffic rate %v must be in (0, 1e12]", ts.Rate)
	}
	return nil
}

// String renders the spec in its canonical one-line form, a fixed
// point of Parse (Parse(s.String()) == s).
func (ts TrafficSpec) String() string {
	return fmt.Sprintf("traffic q=%d users=%d zipf=%g rate=%g seed=%d",
		ts.Queries, ts.Users, ts.Skew, ts.Rate, ts.Seed)
}

// ParseTrafficSpec parses the String form back into a validated spec.
func ParseTrafficSpec(s string) (TrafficSpec, error) {
	var ts TrafficSpec
	n, err := fmt.Sscanf(s, "traffic q=%d users=%d zipf=%g rate=%g seed=%d",
		&ts.Queries, &ts.Users, &ts.Skew, &ts.Rate, &ts.Seed)
	if err != nil || n != 5 {
		return ts, fmt.Errorf("serve: malformed traffic spec %q", s)
	}
	if err := ts.Validate(); err != nil {
		return ts, err
	}
	return ts, nil
}

// Generate materializes the spec's query stream over a graph of n
// vertices. Draw order per query is fixed (arrival gap, vertex, user),
// so the stream is a pure function of (spec, n).
func (ts TrafficSpec) Generate(n int) []Query {
	if err := ts.Validate(); err != nil {
		panic(err.Error())
	}
	if n < 1 {
		panic("serve: Generate needs at least one vertex")
	}
	rng := rand.New(rand.NewSource(ts.Seed))
	zipf := rand.NewZipf(rng, ts.Skew, 1, uint64(n-1))
	perm := rng.Perm(n)
	qs := make([]Query, ts.Queries)
	t := 0.0
	for i := range qs {
		t += rng.ExpFloat64() / ts.Rate
		qs[i] = Query{
			Vertex:  int32(perm[int(zipf.Uint64())]),
			Arrival: t,
			User:    rng.Int63n(ts.Users),
		}
	}
	return qs
}
