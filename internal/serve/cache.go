package serve

import "container/list"

// Cache is the deterministic LRU of historical answers. It stores only
// vertex membership and an insertion stamp (the microbatch index) —
// answer values live in the session's store — because hit/miss is a
// control-plane decision the host makes while planning batches; no
// float ever depends on it. Eviction order is a pure function of the
// lookup/insert sequence, which is itself a pure function of the
// seeded traffic, so two runs of the same stream produce byte-
// identical hit/miss sequences.
type Cache struct {
	cap int
	ll  *list.List
	m   map[int32]*list.Element
}

type cacheEntry struct {
	v     int32
	stamp int
}

// NewCache builds an LRU holding up to cap vertices; cap == 0 disables
// caching (every lookup misses).
func NewCache(cap int) *Cache {
	if cap < 0 {
		panic("serve: cache capacity must be >= 0")
	}
	return &Cache{cap: cap, ll: list.New(), m: make(map[int32]*list.Element)}
}

// Len returns the number of cached vertices.
func (c *Cache) Len() int { return c.ll.Len() }

// Lookup reports whether v's answer is cached and fresh at microbatch
// index batch: with staleness > 0 an entry inserted at stamp is stale
// once batch-stamp >= staleness and is evicted on sight (the serving
// tier's bounded-staleness contract); staleness == 0 never expires.
// A hit refreshes recency.
func (c *Cache) Lookup(v int32, batch, staleness int) bool {
	e, ok := c.m[v]
	if !ok {
		return false
	}
	ent := e.Value.(*cacheEntry)
	if staleness > 0 && batch-ent.stamp >= staleness {
		c.ll.Remove(e)
		delete(c.m, v)
		return false
	}
	c.ll.MoveToFront(e)
	return true
}

// Insert records v's answer as cached at microbatch index batch,
// evicting the least recently used vertex when full. Re-inserting a
// cached vertex refreshes its stamp and recency.
func (c *Cache) Insert(v int32, batch int) {
	if c.cap == 0 {
		return
	}
	if e, ok := c.m[v]; ok {
		e.Value.(*cacheEntry).stamp = batch
		c.ll.MoveToFront(e)
		return
	}
	c.m[v] = c.ll.PushFront(&cacheEntry{v: v, stamp: batch})
	if c.ll.Len() > c.cap {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.m, old.Value.(*cacheEntry).v)
	}
}
