package core

import (
	"fmt"
	"math/rand"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/tensor"
)

// This file is the serving tier's entry into the engine: a read-only
// inference engine interpreting the forward-only schedule of
// plan.CompileInference, with registers retained across calls so a
// per-layer staleness policy re-runs only the sections from the first
// stale layer (see internal/serve).

// NewInferenceEngine builds a read-only engine for request-driven
// serving. Weights come from cp — any training run's Snapshot; only
// the weight matrices are read, never the optimizer state — or, when
// cp is nil, from the seeded Glorot initialization (identical on all
// devices). The schedule is the forward-only CompileInference compile;
// the engine has no Adam state and must not be driven with Epoch.
func NewInferenceEngine(dev *comm.Device, prob *Problem, opts Options, cp *Checkpoint) *Engine {
	p := dev.P()
	opts = opts.withDefaults(p)
	opts.validate(p, prob)
	e := &Engine{dev: dev, prob: prob, opts: opts}
	e.gridL = dist.G(opts.RA).Normalize(p)
	j := dev.Rank % opts.RA
	for r := j; r < p; r += opts.RA {
		e.colGroup = append(e.colGroup, r)
	}
	e.extractPanels()

	rng := rand.New(rand.NewSource(opts.Seed))
	for l := 1; l <= opts.Layers(); l++ {
		w := tensor.NewDense(opts.Dims[l-1], opts.Dims[l])
		w.GlorotInit(rng)
		e.weights = append(e.weights, w)
		if opts.SAGE {
			ws := tensor.NewDense(opts.Dims[l-1], opts.Dims[l])
			ws.GlorotInit(rng)
			e.weights = append(e.weights, ws)
		}
	}
	if cp != nil {
		if len(cp.Weights) != len(e.weights) {
			panic(fmt.Sprintf("core: checkpoint has %d weights, inference engine needs %d",
				len(cp.Weights), len(e.weights)))
		}
		for i := range e.weights {
			if cp.Weights[i].Rows != e.weights[i].Rows || cp.Weights[i].Cols != e.weights[i].Cols {
				panic(fmt.Sprintf("core: checkpoint weight %d is %dx%d, engine needs %dx%d",
					i, cp.Weights[i].Rows, cp.Weights[i].Cols, e.weights[i].Rows, e.weights[i].Cols))
			}
			e.weights[i].CopyFrom(cp.Weights[i])
		}
	}
	e.sched = plan.CompileInference(plan.Spec{
		N: prob.N(), Dims: opts.Dims, Config: opts.Config,
		P: p, RA: opts.RA, SAGE: opts.SAGE,
	}).Optimize()
	dev.TraceSetConfig(opts.Config.String())
	return e
}

// RunInference (re)runs the forward schedule and returns this device's
// horizontal logits tile. fromLayer selects the first layer whose
// embedding is recomputed: 0 (or any value on the first call) runs
// init and every layer; l > 0 re-runs only the fwd sections of layers
// >= l over the registers retained from previous calls — the per-layer
// staleness refresh of the serving tier, repaying exactly the
// communication the pricer attributes to those sections. With a frozen
// model and graph the recomputed values are bit-identical, so any
// staleness bound serves exact answers; the knob exists to meter what
// a drifting embedding table would pay.
func (e *Engine) RunInference(fromLayer int) *dist.Mat {
	if len(e.sched.Outputs) != 1 {
		panic("core: RunInference needs an inference schedule (use NewInferenceEngine)")
	}
	if e.infRegs == nil {
		e.infRegs = make([]*dist.Mat, e.sched.NumRegs)
		fromLayer = 0
	}
	e.dev.TraceSetDir("fwd")
	e.dev.TraceBeginPhase("inference")
	for i := range e.sched.Sections {
		sec := &e.sched.Sections[i]
		switch sec.Phase {
		case "init":
			if !e.infInit {
				e.runOps(sec, e.infRegs, nil)
			}
		case "fwd":
			if sec.Layer < fromLayer {
				continue
			}
			e.dev.TraceSetLayer(sec.Layer)
			e.dev.TraceBeginPhase("layer")
			e.runOps(sec, e.infRegs, nil)
			e.dev.TraceEndPhase()
		}
	}
	e.infInit = true
	e.dev.TraceSetLayer(0)
	e.dev.TraceEndPhase()
	e.dev.TraceSetDir("")
	e.lastLogits = e.infRegs[e.sched.Outputs[0]]
	return e.lastLogits
}
