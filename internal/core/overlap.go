package core

import (
	"sync"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/tensor"
)

// This file is the dependency-DAG executor behind Options.Overlap: the
// epoch's ops dispatch over per-resource device lanes (compute, intra
// link, inter link — hw.Resource) instead of one serial loop, so a GEMM
// can run while the NIC drains an all-reduce bucket. One goroutine per
// lane walks that lane's ops in schedule order, waiting on each op's
// DAG dependencies and advancing the lane clock to the dependencies'
// finish times before executing — exactly the occupancy model
// PriceDAGOn simulates, which is why the live clocks equal the priced
// critical path. Numerics are untouched: each op runs the very same
// execOp code, collectives keep their group-position reduction order,
// and the DAG's write-after-read edges serialize every in-place mutation.
//
// Lane order is deadlock-free by construction: a collective's resource
// is a function of its group (plan.OpResource), so all members enter it
// from the same lane index, and every lane executes its ops in global
// schedule order — per-group rendezvous order is therefore identical on
// all ranks. Under injected faults the first panic (the fault.Killed on
// the crashed rank, a *comm.FaultError on survivors) re-raises on the
// device goroutine immediately, without waiting for blocked sibling
// lanes: those are woken by the fabric's markDead broadcast, observe
// ErrPeerDead, and self-terminate, so the run degrades exactly like the
// sequential interpreter (typed error, no deadlock, no goroutine leak).

// dag returns the schedule's dependency DAG, built once.
func (e *Engine) dagLazy() *plan.DAG {
	if e.dag == nil {
		e.dag = plan.MustBuildDAG(e.sched)
	}
	return e.dag
}

// DAG exposes the schedule's dependency DAG (built on first use), for
// pricing and verification.
func (e *Engine) DAG() *plan.DAG { return e.dagLazy() }

// PanelCensus computes the per-rank adjacency panel stored-entry counts
// of a problem under (P, RA) partitioning — the exact census the DAG
// pricer needs to reproduce the engine's SpMM charges (Engine
// extractPanels slices the same panels). ra = 0 means full replication
// (RA = P), mirroring Options.
func PanelCensus(prob *Problem, p, ra int) plan.Census {
	if ra == 0 {
		ra = p
	}
	gridL := dist.G(ra).Normalize(p)
	cen := plan.Census{NNZFwd: make([]int64, p), NNZBwd: make([]int64, p)}
	for r := 0; r < p; r++ {
		rlo, rhi := dist.RowRange(gridL, p, r, prob.N())
		cen.NNZBwd[r] = prob.A.RowPanel(rlo, rhi).NNZ()
		if prob.ATranspose != nil {
			cen.NNZFwd[r] = prob.ATranspose.RowPanel(rlo, rhi).NNZ()
		} else {
			cen.NNZFwd[r] = cen.NNZBwd[r]
		}
	}
	return cen
}

// runOverlap executes one epoch's schedule as a dependency DAG over the
// device's resource lanes. regs and grads are the epoch's register file
// and gradient slots, same as the sequential path.
func (e *Engine) runOverlap(regs []*dist.Mat, grads []*tensor.Dense) {
	d := e.dagLazy()
	nodes := d.Nodes
	// Partition nodes by the resource they occupy on this rank. Each
	// list stays in ascending node-index (schedule) order.
	var perRes [hw.NumResources][]int
	for i := range nodes {
		res := e.sched.OpResource(nodes[i].Op, e.dev.Rank, e.opts.Topology)
		perRes[res] = append(perRes[res], i)
	}
	// Lanes: compute ops run on the base device itself; link ops on
	// forked lanes starting at the base clock with their own trace
	// track. Scope tags must be set here, before the workers fork, so
	// the tracer materializes each track from a single goroutine.
	cfg := e.opts.Config.String()
	epoch := e.epoch - 1 // Epoch() tagged the base with its pre-increment value
	var lanes [hw.NumResources]*comm.Device
	lanes[hw.ResCompute] = e.dev
	for res := hw.ResCompute + 1; res < hw.NumResources; res++ {
		if len(perRes[res]) == 0 {
			continue
		}
		l := e.dev.Lane(int(res))
		l.TraceSetConfig(cfg)
		l.TraceSetEpoch(epoch)
		lanes[res] = l
	}

	done := make([]chan struct{}, len(nodes))
	for i := range done {
		done[i] = make(chan struct{})
	}
	finish := make([]float64, len(nodes)) // written before close(done[i])
	abort := make(chan struct{})
	failed := make(chan struct{})
	var failMu sync.Mutex
	var firstPanic any
	var abortOnce sync.Once
	var wg sync.WaitGroup

	worker := func(lane *comm.Device, list []int) {
		defer wg.Done()
		defer func() {
			if p := recover(); p != nil {
				failMu.Lock()
				if firstPanic == nil {
					firstPanic = p
					close(failed)
				}
				failMu.Unlock()
				abortOnce.Do(func() { close(abort) })
			}
		}()
		for _, i := range list {
			n := &nodes[i]
			for _, dep := range n.Deps {
				select {
				case <-done[dep]:
				case <-abort:
					return
				}
			}
			select {
			case <-abort:
				return
			default:
			}
			for _, dep := range n.Deps {
				lane.AdvanceClock(finish[dep])
			}
			lane.TraceSetStep(n.Op.Step)
			e.execOp(lane, n.Op, regs, grads)
			lane.TraceSetStep(0)
			finish[i] = lane.Clock()
			close(done[i])
		}
	}
	for res := hw.Resource(0); res < hw.NumResources; res++ {
		if lanes[res] == nil || len(perRes[res]) == 0 {
			continue
		}
		wg.Add(1)
		go worker(lanes[res], perRes[res])
	}
	allDone := make(chan struct{})
	go func() { wg.Wait(); close(allDone) }()

	select {
	case <-allDone:
		// Clean epoch: rejoin the link lanes into the base timeline
		// (clock = max, meters summed) — the occupancy Join of the
		// pricer's epoch boundary.
		for res := hw.ResCompute + 1; res < hw.NumResources; res++ {
			if lanes[res] != nil {
				e.dev.MergeLane(lanes[res])
			}
		}
	case <-failed:
		// Re-raise the first worker panic on the device goroutine NOW —
		// waiting for the full wg would deadlock: sibling lanes blocked
		// inside a dead rank's collective round only wake once the
		// fabric marks this rank dead, which needs this goroutine to
		// exit. The stragglers then observe ErrPeerDead and return.
		failMu.Lock()
		p := firstPanic
		failMu.Unlock()
		panic(p)
	}
}
