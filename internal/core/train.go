package core

import (
	"math"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/nn"
	"gnnrdm/internal/tensor"
)

// EpochStats records one epoch of a distributed run. Times are simulated
// seconds from the hardware model; volume is exact metered bytes.
type EpochStats struct {
	Loss float64
	// EvalAcc is the accuracy on Options.EvalMask vertices (0 when no
	// mask was supplied).
	EvalAcc float64
	// Time is the epoch makespan: the maximum per-device clock advance.
	Time float64
	// CommTime / ComputeTime are maxima over devices of the respective
	// accumulators (communication includes synchronization skew).
	CommTime, ComputeTime float64
	// CommBytes is the total data moved across device boundaries.
	CommBytes int64
}

// Result is the outcome of a training run.
type Result struct {
	Epochs []EpochStats
	// Logits is the assembled final-epoch output (N x f_L).
	Logits *tensor.Dense
	// Weights are the final (replicated) parameters.
	Weights []*tensor.Dense
}

// FinalLoss returns the last epoch's training loss (0 when no epochs
// were run).
func (r *Result) FinalLoss() float64 {
	if len(r.Epochs) == 0 {
		return 0
	}
	return r.Epochs[len(r.Epochs)-1].Loss
}

// MeanEpochTime returns the arithmetic-mean simulated epoch time,
// skipping the first epoch if more than one was run (warm-up, matching
// the paper's throughput methodology).
func (r *Result) MeanEpochTime() float64 {
	es := r.Epochs
	if len(es) == 0 {
		return 0
	}
	if len(es) > 1 {
		es = es[1:]
	}
	var s float64
	for _, e := range es {
		s += e.Time
	}
	return s / float64(len(es))
}

// EpochsPerSecond is the training throughput the paper's Figs. 8-11
// report (0 when no epochs were run).
func (r *Result) EpochsPerSecond() float64 {
	if t := r.MeanEpochTime(); t > 0 {
		return 1 / t
	}
	return 0
}

// MeanCommTime returns the mean per-epoch communication time (skipping
// the warm-up epoch like MeanEpochTime).
func (r *Result) MeanCommTime() float64 {
	es := r.Epochs
	if len(es) == 0 {
		return 0
	}
	if len(es) > 1 {
		es = es[1:]
	}
	var s float64
	for _, e := range es {
		s += e.CommTime
	}
	return s / float64(len(es))
}

// Train runs `epochs` epochs of distributed RDM GCN training on p
// simulated devices.
func Train(p int, model *hw.Model, prob *Problem, opts Options, epochs int) *Result {
	res, _ := TrainResumable(p, model, prob, opts, epochs, nil)
	return res
}

// TrainResumable is Train with checkpointing: when resume is non-nil,
// every device restores it before the first epoch; the final model state
// is returned as a new checkpoint alongside the result.
func TrainResumable(p int, model *hw.Model, prob *Problem, opts Options, epochs int, resume *Checkpoint) (*Result, *Checkpoint) {
	opts = opts.withDefaults(p)
	opts.validate(p, prob) // fail on the caller's goroutine, not a device's
	fabric := comm.NewFabric(p, model)
	if opts.Topology != nil {
		fabric.SetTopology(opts.Topology)
	}
	if opts.Tracer != nil {
		label := opts.TraceLabel
		if label == "" {
			label = "rdm"
		}
		fabric.SetTracer(opts.Tracer, label)
	}
	engines := make([]*Engine, p)
	stats := make([][]EpochStats, p)
	volumes := make([]int64, epochs)
	restoreErrs := make([]error, p)

	fabric.Run(func(d *comm.Device) {
		eng := NewEngine(d, prob, opts)
		engines[d.Rank] = eng
		if resume != nil {
			if err := eng.Restore(resume); err != nil {
				restoreErrs[d.Rank] = err
				return
			}
		}
		var prevClock, prevComm, prevComp float64
		for ep := 0; ep < epochs; ep++ {
			loss := eng.Epoch()
			acc := 0.0
			if opts.EvalMask != nil {
				acc = eng.EvalAccuracy(opts.EvalMask)
			}
			d.Barrier(d.World())
			if d.Rank == 0 {
				// All devices are parked at the barrier above and cannot
				// issue collectives until rank 0 reaches the next one, so
				// the volume snapshot is race-free.
				volumes[ep] = fabric.TotalVolume()
			}
			stats[d.Rank] = append(stats[d.Rank], EpochStats{
				Loss:        loss,
				EvalAcc:     acc,
				Time:        d.Clock() - prevClock,
				CommTime:    d.CommTime() - prevComm,
				ComputeTime: d.ComputeTime() - prevComp,
			})
			prevClock, prevComm, prevComp = d.Clock(), d.CommTime(), d.ComputeTime()
			d.Barrier(d.World())
		}
	})

	if restoreErrs[0] != nil {
		// Restore is deterministic across devices: either all failed
		// (before any collective) or none did.
		panic(restoreErrs[0])
	}
	res := &Result{Weights: engines[0].Weights()}
	var prevVol int64
	for ep := 0; ep < epochs; ep++ {
		es := EpochStats{Loss: stats[0][ep].Loss, EvalAcc: stats[0][ep].EvalAcc, CommBytes: volumes[ep] - prevVol}
		prevVol = volumes[ep]
		for r := 0; r < p; r++ {
			s := stats[r][ep]
			es.Time = math.Max(es.Time, s.Time)
			es.CommTime = math.Max(es.CommTime, s.CommTime)
			es.ComputeTime = math.Max(es.ComputeTime, s.ComputeTime)
		}
		res.Epochs = append(res.Epochs, es)
	}
	if engines[0].LastLogits() != nil {
		tiles := make([]*dist.Mat, p)
		for r := 0; r < p; r++ {
			tiles[r] = engines[r].LastLogits()
		}
		res.Logits = dist.Assemble(tiles)
	} else {
		// Zero-epoch run: no forward pass produced logits.
		res.Logits = tensor.NewDense(0, 0)
	}
	return res, engines[0].Snapshot()
}

// Evaluate runs a forward pass with the given weights already embedded in
// a Result and returns accuracy on the masked rows.
func (r *Result) Accuracy(labels []int32, mask []bool) float64 {
	return nn.Accuracy(r.Logits, labels, mask)
}

// AutoTune implements the paper's dynamic configuration selection
// (§IV-B): it evaluates the model's Pareto-optimal candidates for
// probeEpochs each and returns the ID with the lowest mean epoch time,
// along with the per-candidate times.
func AutoTune(p int, model *hw.Model, prob *Problem, opts Options, probeEpochs int) (best int, times map[int]float64) {
	opts = opts.withDefaults(p)
	net := costmodel.Network{
		Dims: opts.Dims,
		N:    int64(prob.N()),
		NNZ:  prob.A.NNZ(),
		P:    p,
		RA:   opts.RA,
	}
	candidates := costmodel.ParetoConfigs(net)
	times = make(map[int]float64, len(candidates))
	best = candidates[0]
	bestTime := math.Inf(1)
	for _, id := range candidates {
		o := opts
		o.Config = costmodel.ConfigFromID(id, opts.Layers())
		res := Train(p, model, prob, o, probeEpochs)
		t := res.MeanEpochTime()
		times[id] = t
		if t < bestTime {
			best, bestTime = id, t
		}
	}
	return best, times
}
