package core

import (
	"math/rand"

	"gnnrdm/internal/nn"
	"gnnrdm/internal/tensor"
)

// ReferenceResult is the outcome of the single-node reference trainer.
type ReferenceResult struct {
	Losses  []float64
	Logits  *tensor.Dense
	Weights []*tensor.Dense
}

// ReferenceTrain trains the same GCN as the distributed engine with plain
// single-address-space matrix operations: the numerical ground truth the
// distributed results are asserted against. It uses the identical weight
// initialization (same seed), Adam, and loss, and computes
//
//	Z^l = A H^{l-1} W^l,   H^l = ReLU(Z^l)  (l < L)
//	G^{l-1} = (A G^l (W^l)ᵀ) ⊙ σ'(Z^{l-1}),  Y^l = (H^{l-1})ᵀ A G^l
//
// using Problem.ATranspose for the forward aggregation when the operator
// is asymmetric (Aᵀ = A otherwise).
func ReferenceTrain(prob *Problem, opts Options, epochs int) *ReferenceResult {
	opts = opts.withDefaults(1)
	opts.validate(1, prob)
	L := opts.Layers()
	rng := rand.New(rand.NewSource(opts.Seed))
	var weights []*tensor.Dense
	for l := 1; l <= L; l++ {
		w := tensor.NewDense(opts.Dims[l-1], opts.Dims[l])
		w.GlorotInit(rng)
		weights = append(weights, w)
		if opts.SAGE {
			ws := tensor.NewDense(opts.Dims[l-1], opts.Dims[l])
			ws.GlorotInit(rng)
			weights = append(weights, ws)
		}
	}
	wN := func(l int) *tensor.Dense {
		if opts.SAGE {
			return weights[2*(l-1)]
		}
		return weights[l-1]
	}
	adam := nn.NewAdam(opts.LR, weights)
	res := &ReferenceResult{Weights: weights}

	for ep := 0; ep < epochs; ep++ {
		// Forward.
		hs := make([]*tensor.Dense, L+1)
		hs[0] = prob.X
		for l := 1; l <= L; l++ {
			z := tensor.MatMul(prob.fwdOperator().SpMM(hs[l-1]), wN(l))
			if opts.SAGE {
				z.Add(tensor.MatMul(hs[l-1], weights[2*(l-1)+1]))
			}
			if l < L {
				z.ReLU()
			}
			hs[l] = z
		}
		lossSum, grad, wtot := nn.WeightedSoftmaxCrossEntropySum(hs[L], prob.Labels, prob.TrainMask, prob.LossWeights)
		loss := 0.0
		if wtot > 0 {
			grad.Scale(float32(1.0 / wtot))
			loss = lossSum / wtot
		}
		res.Losses = append(res.Losses, loss)
		res.Logits = hs[L]

		// Backward.
		grads := make([]*tensor.Dense, len(weights))
		g := grad
		for l := L; l >= 1; l-- {
			t := prob.A.SpMM(g) // A·G^l
			yn := tensor.MatMulTA(hs[l-1], t)
			if opts.SAGE {
				grads[2*(l-1)] = yn
				grads[2*(l-1)+1] = tensor.MatMulTA(hs[l-1], g)
			} else {
				grads[l-1] = yn
			}
			if l > 1 {
				next := tensor.MatMulTB(t, wN(l))
				if opts.SAGE {
					next.Add(tensor.MatMulTB(g, weights[2*(l-1)+1]))
				}
				g = next
				mask := hs[l-1]
				for i, v := range mask.Data {
					if v <= 0 {
						g.Data[i] = 0
					}
				}
			}
		}
		adam.Step(weights, grads)
	}
	return res
}
