// Differential and meter-reconciliation coverage for planner-compiled
// schedules with mixed per-layer orderings: non-uniform Config.Fwd/Bwd
// assignments across layers (hand-picked and model-chosen) must train
// identically to the single-device reference, and the fabric's meters
// must equal the schedule's per-op prices byte-for-byte.
package core_test

import (
	"fmt"
	"testing"

	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/verify"
)

// mixedDims is a three-layer network so per-layer orderings can
// alternate within one pass.
func mixedDims() []int { return []int{diffFin, 12, 10, diffClasses} }

// mixedConfigIDs are hand-picked orderings that alternate every layer in
// both passes — maximally non-uniform points of the 64-config space.
func mixedConfigIDs() []int {
	s, d := costmodel.SparseFirst, costmodel.DenseFirst
	a := costmodel.Config{Fwd: []costmodel.Order{s, d, s}, Bwd: []costmodel.Order{d, s, d}}
	b := costmodel.Config{Fwd: []costmodel.Order{d, s, d}, Bwd: []costmodel.Order{s, d, s}}
	return []int{a.ID(), b.ID()}
}

// TestMixedOrderingDifferential trains the alternating hand-picked
// orderings plus the planner's own choice for this problem against the
// single-device reference across P ∈ {1,2,4,8}.
func TestMixedOrderingDifferential(t *testing.T) {
	prob := diffProblem()
	configs := mixedConfigIDs()
	chosen := plan.ChooseOrdering(plan.Spec{
		N: diffN, Dims: mixedDims(), P: 4, RA: 4, Memoize: true, InputGrad: true,
	}, prob.A.NNZ(), hw.A6000())
	configs = append(configs, chosen.ID())
	verify.RunDifferential(t, verify.DiffSpec{
		Problem: prob,
		Dims:    mixedDims(),
		Epochs:  2,
		Configs: configs,
	})
}

// TestScheduleMatchesMetersMixed reconciles metered fabric bytes against
// the schedule prices for the alternating orderings — configurations the
// closed-form §IV model's uniform sweep cannot check — over full and
// partial adjacency replication.
func TestScheduleMatchesMetersMixed(t *testing.T) {
	prob := diffProblem()
	ids := mixedConfigIDs()
	for _, tc := range []struct{ p, ra, cfg int }{
		{2, 2, ids[0]}, {4, 4, ids[0]}, {8, 2, ids[0]},
		{4, 2, ids[1]}, {8, 8, ids[1]}, {8, 4, ids[1]},
	} {
		tc := tc
		t.Run(fmt.Sprintf("cfg%02d/P%d/RA%d", tc.cfg, tc.p, tc.ra), func(t *testing.T) {
			o := core.Options{
				Dims:             mixedDims(),
				Config:           costmodel.ConfigFromID(tc.cfg, 3),
				RA:               tc.ra,
				Memoize:          true,
				ComputeInputGrad: true,
				LR:               0.01,
				Seed:             7,
			}
			verify.CheckScheduleMatchesMeters(t, prob, tc.p, o)
		})
	}
}

// TestScheduleMatchesMetersSAGE extends the reconciliation to GraphSAGE
// (two weight matrices per layer, self-term adds, doubled gradient
// all-reduces), with and without memoization.
func TestScheduleMatchesMetersSAGE(t *testing.T) {
	prob := diffProblem()
	for _, memo := range []bool{true, false} {
		memo := memo
		t.Run(fmt.Sprintf("memo=%v", memo), func(t *testing.T) {
			o := core.Options{
				Dims:             diffDims(),
				Config:           costmodel.ConfigFromID(6, 2),
				RA:               2,
				SAGE:             true,
				Memoize:          memo,
				ComputeInputGrad: true,
				LR:               0.01,
				Seed:             7,
			}
			verify.CheckScheduleMatchesMeters(t, prob, 4, o)
		})
	}
}

// TestScheduleMatchesMetersPlannerChosen builds a network whose
// asymmetric widths (narrow-wide-narrow) force the cost-driven chooser
// into a mixed forward ordering no uniform row expresses, then verifies
// the metered bytes of the chosen schedule equal its own prices exactly.
func TestScheduleMatchesMetersPlannerChosen(t *testing.T) {
	const n = 1024
	dims := []int{16, 256, 16}
	prob := verify.DefaultProblem(diffSeed, n, 16, 16)
	for _, tc := range []struct{ p, ra int }{{4, 4}, {8, 4}} {
		tc := tc
		t.Run(fmt.Sprintf("P%d/RA%d", tc.p, tc.ra), func(t *testing.T) {
			sp := plan.Spec{N: n, Dims: dims, P: tc.p, RA: tc.ra, Memoize: true, InputGrad: true}
			cfg := plan.ChooseOrdering(sp, prob.A.NNZ(), hw.A6000())
			if cfg.Fwd[0] == cfg.Fwd[1] {
				t.Fatalf("chooser picked a uniform forward ordering %v for dims %v", cfg, dims)
			}
			o := core.Options{
				Dims:             dims,
				Config:           cfg,
				RA:               tc.ra,
				Memoize:          true,
				ComputeInputGrad: true,
				LR:               0.01,
				Seed:             7,
			}
			verify.CheckScheduleMatchesMeters(t, prob, tc.p, o)
		})
	}
}

// TestZeroEpochRun: a zero-epoch training run must produce a usable
// Result (no index or divide-by-zero panics in the accessors).
func TestZeroEpochRun(t *testing.T) {
	res := core.Train(2, hw.A6000(), diffProblem(), core.Options{
		Dims: diffDims(), LR: 0.01, Seed: 7,
	}, 0)
	if v := res.FinalLoss(); v != 0 {
		t.Errorf("FinalLoss() = %v, want 0", v)
	}
	if v := res.MeanEpochTime(); v != 0 {
		t.Errorf("MeanEpochTime() = %v, want 0", v)
	}
	if v := res.EpochsPerSecond(); v != 0 {
		t.Errorf("EpochsPerSecond() = %v, want 0", v)
	}
	if v := res.MeanCommTime(); v != 0 {
		t.Errorf("MeanCommTime() = %v, want 0", v)
	}
	if res.Logits == nil || res.Logits.Rows != 0 {
		t.Errorf("zero-epoch Logits = %v, want empty", res.Logits)
	}
}
