// Acceptance suite for the internal/verify oracle: differential
// equivalence across every Table IV ordering and fabric size, byte-exact
// cost-model agreement, trace conservation, and the metamorphic
// invariants. External test package: verify imports core.
package core_test

import (
	"fmt"
	"testing"

	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/trace"
	"gnnrdm/internal/verify"
)

// The differential problem: 64 vertices (divisible by every P under
// test, keeping row blocks uniform and volume comparisons exact), 16
// input features, 8 classes.
const (
	diffSeed    = 11
	diffN       = 64
	diffFin     = 16
	diffClasses = 8
)

func diffDims() []int { return []int{diffFin, 12, diffClasses} }

func diffProblem() *core.Problem {
	return verify.DefaultProblem(diffSeed, diffN, diffFin, diffClasses)
}

// TestDifferentialAllConfigs is the headline differential sweep: all 16
// two-layer orderings × P ∈ {1,2,4,8} against the single-device
// reference.
func TestDifferentialAllConfigs(t *testing.T) {
	verify.RunDifferential(t, verify.DiffSpec{
		Problem: diffProblem(),
		Dims:    diffDims(),
		Epochs:  3,
	})
}

// TestDifferentialPartialReplication repeats the sweep with R_A < P
// (row-panel adjacency replication, §III-E), which reroutes the
// redistributions through grid layouts without changing the math.
func TestDifferentialPartialReplication(t *testing.T) {
	verify.RunDifferential(t, verify.DiffSpec{
		Problem: diffProblem(),
		Dims:    diffDims(),
		Epochs:  3,
		Ps:      []int{4, 8},
		RAs: func(p int) []int {
			if p == 8 {
				return []int{2, 4}
			}
			return []int{2}
		},
	})
}

// TestVolumeMatchesModelAllConfigs asserts the metered RDM volume equals
// the §IV cost-model prediction byte-for-byte for every ordering and
// every (P, R_A) combination. Mask-redistribution traffic (deliberately
// outside the model) rides the fabric side channel, which this test
// additionally pins down: orderings with fused ReLU masks must move some
// side bytes, pure orderings none.
func TestVolumeMatchesModelAllConfigs(t *testing.T) {
	prob := diffProblem()
	combos := []struct{ p, ra int }{{1, 1}, {2, 2}, {4, 4}, {8, 8}, {4, 2}, {8, 2}, {8, 4}}
	for cfg := 0; cfg < costmodel.NumConfigs(2); cfg++ {
		for _, c := range combos {
			cfg, c := cfg, c
			t.Run(fmt.Sprintf("cfg%02d/P%d/RA%d", cfg, c.p, c.ra), func(t *testing.T) {
				side := verify.CheckVolumeMatchesModel(t, prob, diffDims(), c.p, c.ra, cfg)
				if c.p == 1 && side != 0 {
					t.Fatalf("single device moved %d side-channel bytes", side)
				}
			})
		}
	}
}

// TestConservationTracedTraining runs traced multi-epoch training and
// checks the full conservation ledger: monotone per-device timelines,
// every collective round seen by all participants with equal bytes, and
// traced bytes summing exactly to the fabric meters. Config 6 routes
// ReLU masks through redistributions, exercising the side channel in the
// ledger.
func TestConservationTracedTraining(t *testing.T) {
	prob := diffProblem()
	for _, tc := range []struct{ p, cfg int }{{2, 0}, {4, 6}, {4, 10}, {8, 5}} {
		tc := tc
		t.Run(fmt.Sprintf("P%d/cfg%02d", tc.p, tc.cfg), func(t *testing.T) {
			tr := trace.NewTracer(0)
			o := core.Options{
				Dims:             diffDims(),
				Config:           costmodel.ConfigFromID(tc.cfg, 2),
				Memoize:          true,
				ComputeInputGrad: true,
				LR:               0.01,
				Seed:             7,
				Tracer:           tr,
			}
			fab := verify.TrainFabric(tc.p, prob, o, 2)
			verify.CheckFabricSession(t, fab, tr.Sessions()[0])
		})
	}
}

// TestVertexPermutationCommutes: relabelling vertices must not change
// what is learned, only where rows live.
func TestVertexPermutationCommutes(t *testing.T) {
	prob := diffProblem()
	for _, cfg := range []int{0, 10} {
		cfg := cfg
		t.Run(fmt.Sprintf("cfg%02d", cfg), func(t *testing.T) {
			verify.CheckVertexPermutation(t, prob, diffDims(), 2, 4, cfg, 29)
		})
	}
}

// TestFeatureScalingExactlyHomogeneous: doubling the inputs doubles the
// first-epoch logits bitwise, for both a pure ordering and one with
// redistribution on every boundary.
func TestFeatureScalingExactlyHomogeneous(t *testing.T) {
	prob := diffProblem()
	for _, cfg := range []int{0, 5, 10} {
		cfg := cfg
		t.Run(fmt.Sprintf("cfg%02d", cfg), func(t *testing.T) {
			verify.CheckFeatureScaling(t, prob, diffDims(), 4, cfg)
		})
	}
}

// TestRedistRoundTripIdentity: layout round trips are the exact
// identity on the ragged shapes training actually produces.
func TestRedistRoundTripIdentity(t *testing.T) {
	chains := [][]dist.Layout{
		{dist.H, dist.V},
		{dist.V, dist.H},
		{dist.H, dist.G(2), dist.V},
		{dist.H, dist.R},
		{dist.G(2), dist.V, dist.H},
	}
	for _, chain := range chains {
		chain := chain
		t.Run(fmt.Sprintf("%v", chain), func(t *testing.T) {
			verify.CheckRedistRoundTrip(t, 4, 13, 6, chain)
		})
	}
}
