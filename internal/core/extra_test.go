package core

import (
	"math"
	"math/rand"
	"testing"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/graph"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/nn"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
)

// TestUnevenVertexCount checks correctness when N is not divisible by P
// (unbalanced tiles everywhere).
func TestUnevenVertexCount(t *testing.T) {
	prob := testProblem(t, 53, 12, 6) // 53 is prime
	dims := []int{12, 10, 6}
	ref := ReferenceTrain(prob, testOpts(dims, 0), 3)
	for _, id := range []int{0, 5, 10, 15} {
		for _, p := range []int{3, 4, 7} {
			res := Train(p, hw.A6000(), prob, testOpts(dims, id), 3)
			if math.Abs(res.FinalLoss()-ref.Losses[2]) > 1e-4 {
				t.Fatalf("N=53 config %d P=%d: loss %v want %v", id, p, res.FinalLoss(), ref.Losses[2])
			}
			if d := tensor.MaxAbsDiff(res.Logits, ref.Logits); d > 1e-3 {
				t.Fatalf("N=53 config %d P=%d: logits diff %v", id, p, d)
			}
		}
	}
}

// TestUnevenFeatureWidths checks vertical slicing when widths are not
// divisible by P.
func TestUnevenFeatureWidths(t *testing.T) {
	prob := testProblem(t, 40, 13, 5)
	dims := []int{13, 11, 5}
	ref := ReferenceTrain(prob, testOpts(dims, 10), 2)
	for _, id := range []int{2, 10, 12} {
		res := Train(4, hw.A6000(), prob, testOpts(dims, id), 2)
		if math.Abs(res.FinalLoss()-ref.Losses[1]) > 1e-4 {
			t.Fatalf("uneven widths config %d: loss %v want %v", id, res.FinalLoss(), ref.Losses[1])
		}
	}
}

// TestLossWeightsDistributed verifies weighted-loss training matches the
// reference (GraphSAINT's λ_v path).
func TestLossWeightsDistributed(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	rng := rand.New(rand.NewSource(9))
	prob.LossWeights = make([]float32, 48)
	for i := range prob.LossWeights {
		prob.LossWeights[i] = 0.5 + rng.Float32()
	}
	dims := []int{12, 10, 6}
	ref := ReferenceTrain(prob, testOpts(dims, 0), 3)
	for _, p := range []int{2, 4} {
		res := Train(p, hw.A6000(), prob, testOpts(dims, 10), 3)
		if math.Abs(res.FinalLoss()-ref.Losses[2]) > 1e-4 {
			t.Fatalf("weighted loss P=%d: %v want %v", p, res.FinalLoss(), ref.Losses[2])
		}
	}
}

func TestEvalAccuracyDistributed(t *testing.T) {
	prob := testProblem(t, 64, 16, 4)
	mask := make([]bool, 64)
	for i := 0; i < 32; i++ {
		mask[i] = true
	}
	opts := testOpts([]int{16, 16, 4}, 10)
	opts.EvalMask = mask
	res := Train(4, hw.A6000(), prob, opts, 25)
	// Distributed eval accuracy must equal the accuracy computed from the
	// assembled logits.
	want := res.Accuracy(prob.Labels, mask)
	got := res.Epochs[len(res.Epochs)-1].EvalAcc
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("EvalAcc %v != assembled accuracy %v", got, want)
	}
	if got < 0.8 {
		t.Fatalf("eval accuracy %v too low", got)
	}
}

func TestForwardInferenceOnly(t *testing.T) {
	prob := testProblem(t, 32, 8, 4)
	fab := comm.NewFabric(2, hw.A6000())
	tiles := make([]*tensor.Dense, 2)
	fab.Run(func(d *comm.Device) {
		eng := NewEngine(d, prob, testOpts([]int{8, 6, 4}, 5))
		m := eng.Forward()
		tiles[d.Rank] = m.Local
	})
	ref := ReferenceTrain(prob, testOpts([]int{8, 6, 4}, 5), 1)
	got := tensor.ConcatRows(tiles[0], tiles[1])
	// Reference logits are AFTER 1 epoch's forward (pre-update), same as
	// a pure forward with initial weights.
	if d := tensor.MaxAbsDiff(got, ref.Logits); d > 1e-3 {
		t.Fatalf("inference logits diff %v", d)
	}
}

func TestSetProblemSwapsGraphKeepsOptimizer(t *testing.T) {
	probA := testProblem(t, 32, 8, 4)
	rng := rand.New(rand.NewSource(77))
	adjB, commB := graph.PlantedPartition(rng, 24, 96, 4, 0.8)
	probB := &Problem{
		A:      sparse.GCNNormalize(adjB),
		X:      graph.SynthesizeFeatures(rng, commB, 4, 8, 0.8),
		Labels: commB,
	}
	fab := comm.NewFabric(2, hw.A6000())
	fab.Run(func(d *comm.Device) {
		eng := NewEngine(d, probA, testOpts([]int{8, 6, 4}, 0))
		eng.Epoch()
		w0 := eng.Weights()[0].Clone()
		eng.SetProblem(probB) // different vertex count
		eng.Epoch()
		if tensor.AlmostEqual(w0, eng.Weights()[0], 0) {
			t.Error("weights should keep updating after SetProblem")
		}
	})
	// Feature-width mismatch must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("expected width-mismatch panic")
		}
	}()
	eng := NewEngine(fab.Device(0), probA, testOpts([]int{8, 6, 4}, 0))
	bad := &Problem{A: probB.A, X: tensor.NewDense(24, 9), Labels: probB.Labels}
	eng.SetProblem(bad)
}

// TestMaskRedistributionConfigs exercises configurations whose backward
// Hadamard needs the packed-mask redistribution (layouts of H^{l-1} and
// the incoming gradient conflict) and confirms correctness.
func TestMaskRedistributionConfigs(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	dims := []int{12, 10, 6}
	ref := ReferenceTrain(prob, testOpts(dims, 0), 3)
	// Configs 6 (fwd D,S bwd S,D) and 2 with layer-1 D-first create
	// vertical-only H^1 against horizontal gradients.
	for _, id := range []int{2, 6, 14} {
		res := Train(4, hw.A6000(), prob, testOpts(dims, id), 3)
		if math.Abs(res.FinalLoss()-ref.Losses[2]) > 1e-4 {
			t.Fatalf("mask-redist config %d: loss %v want %v", id, res.FinalLoss(), ref.Losses[2])
		}
	}
}

// TestNoMemoVolumeMatchesModel checks the Table III "N.M." accounting:
// without memoization, configurations relying on the forward
// intermediate pay the modelled extra volume.
func TestNoMemoVolumeMatchesModel(t *testing.T) {
	prob := testProblem(t, 64, 16, 8)
	dims := []int{16, 12, 8}
	opts := testOpts(dims, 10)
	opts.Memoize = false
	got := measureRedistVolume(8, 8, prob, opts)
	net := costmodel.Network{Dims: dims, N: 64, NNZ: prob.A.NNZ(), P: 8, RA: 8, NoMemo: true}
	want := costmodel.Evaluate(net, costmodel.ConfigFromID(10, 2)).CommVolumeBytes()
	// The paper's layer-local model charges 2·min(f1,f2) for the
	// recomputed weight-gradient SpMM but assumes H^{l-1} is available
	// vertex-sliced; in config 10 without memoization it is not, so the
	// engine pays one extra f_{l-1} redistribution. Bound: model <= got
	// <= model + one f1 redistribution.
	slack := int64(7.0 / 8.0 * 64 * float64(dims[0]) * 4)
	if got < want || got > want+slack {
		t.Fatalf("no-memo volume %d outside [%d, %d]", got, want, want+slack)
	}
	// And it must exceed the memoized volume.
	optsM := testOpts(dims, 10)
	if gotM := measureRedistVolume(8, 8, prob, optsM); got <= gotM {
		t.Fatalf("no-memo %d should exceed memoized %d", got, gotM)
	}
}

// TestInputGradOptional verifies skipping G^0 reduces communication and
// keeps training identical (weights never depend on G^0).
func TestInputGradOptional(t *testing.T) {
	// Config 5's backward layer 1 is GEMM-first: skipping G^0 saves its
	// input redistribution and SpMM (an SpMM-first backward layer 1
	// computes A·G^1 for the weight gradient regardless, so only
	// GEMM-first layouts see a volume reduction).
	prob := testProblem(t, 64, 16, 8)
	dims := []int{16, 12, 8}
	with := testOpts(dims, 5)
	without := testOpts(dims, 5)
	without.ComputeInputGrad = false
	a := Train(4, hw.A6000(), prob, with, 2)
	b := Train(4, hw.A6000(), prob, without, 2)
	if math.Abs(a.FinalLoss()-b.FinalLoss()) > 1e-7 {
		t.Fatalf("input grad must not affect training: %v vs %v", a.FinalLoss(), b.FinalLoss())
	}
	va := measureRedistVolume(4, 4, prob, with)
	vb := measureRedistVolume(4, 4, prob, without)
	if vb >= va {
		t.Fatalf("skipping G^0 should reduce volume: %d vs %d", vb, va)
	}
}

func TestThreeLayerAllConfigsConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("64-config sweep")
	}
	prob := testProblem(t, 24, 6, 3)
	dims := []int{6, 5, 4, 3}
	ref := ReferenceTrain(prob, testOpts(dims, 0), 2)
	for id := 0; id < 64; id++ {
		res := Train(2, hw.A6000(), prob, testOpts(dims, id), 2)
		if math.Abs(res.FinalLoss()-ref.Losses[1]) > 1e-4 {
			t.Fatalf("3-layer config %d: loss %v want %v", id, res.FinalLoss(), ref.Losses[1])
		}
	}
}

// TestAsymmetricOperator trains with a random-walk-normalized directed
// operator (Aᵀ != A): forward aggregation uses Aᵀ, backward uses A, and
// the distributed result must still match the reference.
func TestAsymmetricOperator(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// Directed ER graph, row-normalized: D^-1 (A+I).
	n := 48
	var coords []sparse.Coord
	for i := 0; i < n; i++ {
		coords = append(coords, sparse.Coord{Row: int32(i), Col: int32(i), Val: 1})
		for k := 0; k < 4; k++ {
			coords = append(coords, sparse.Coord{Row: int32(i), Col: int32(rng.Intn(n)), Val: 1})
		}
	}
	a := sparse.FromCoords(n, n, coords)
	for i := 0; i < n; i++ {
		deg := float32(a.RowPtr[i+1] - a.RowPtr[i])
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			a.Val[p] = 1 / deg
		}
	}
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i % 4)
	}
	x := tensor.NewDense(n, 8)
	x.Randomize(rng, 1)
	prob := &Problem{A: a, ATranspose: a.Transpose(), X: x, Labels: labels}

	dims := []int{8, 6, 4}
	ref := ReferenceTrain(prob, testOpts(dims, 0), 3)
	for _, id := range []int{0, 5, 10, 15} {
		for _, p := range []int{2, 4} {
			res := Train(p, hw.A6000(), prob, testOpts(dims, id), 3)
			if math.Abs(res.FinalLoss()-ref.Losses[2]) > 1e-4 {
				t.Fatalf("asymmetric config %d P=%d: loss %v want %v",
					id, p, res.FinalLoss(), ref.Losses[2])
			}
		}
	}
	// Sanity: the operator really is asymmetric, and using A for both
	// passes would give a different answer.
	sym := &Problem{A: a, X: x, Labels: labels}
	refSym := ReferenceTrain(sym, testOpts(dims, 0), 3)
	if math.Abs(refSym.Losses[2]-ref.Losses[2]) < 1e-9 {
		t.Fatal("test operator should actually be asymmetric")
	}
}

// TestSAGELayersMatchReference checks the two-weight GraphSAGE form
// (Z = AᵀHW_n + HW_s) across orderings and device counts.
func TestSAGELayersMatchReference(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	dims := []int{12, 10, 6}
	mk := func(id int) Options {
		o := testOpts(dims, id)
		o.SAGE = true
		return o
	}
	ref := ReferenceTrain(prob, mk(0), 3)
	if len(ref.Weights) != 4 {
		t.Fatalf("SAGE should have 2 weights per layer, got %d", len(ref.Weights))
	}
	for _, id := range []int{0, 5, 10, 15} {
		for _, p := range []int{1, 2, 4} {
			res := Train(p, hw.A6000(), prob, mk(id), 3)
			if math.Abs(res.FinalLoss()-ref.Losses[2]) > 1e-4 {
				t.Fatalf("SAGE config %d P=%d: loss %v want %v", id, p, res.FinalLoss(), ref.Losses[2])
			}
			if d := tensor.MaxAbsDiff(res.Logits, ref.Logits); d > 1e-3 {
				t.Fatalf("SAGE config %d P=%d: logits diff %v", id, p, d)
			}
		}
	}
}

// TestSAGEDiffersFromGCN guards against the self term being a no-op.
func TestSAGEDiffersFromGCN(t *testing.T) {
	prob := testProblem(t, 32, 8, 4)
	dims := []int{8, 6, 4}
	gcn := ReferenceTrain(prob, testOpts(dims, 0), 2)
	sage := testOpts(dims, 0)
	sage.SAGE = true
	s := ReferenceTrain(prob, sage, 2)
	if math.Abs(gcn.Losses[1]-s.Losses[1]) < 1e-9 {
		t.Fatal("SAGE must differ from plain GCN")
	}
}

// TestSAGEWithRowNormalizedOperator: the GraphSAGE-GCN "mean" aggregator
// = row-normalized asymmetric operator, single weight.
func TestSAGEWithRowNormalizedOperator(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	adj, labels := graph.PlantedPartition(rng, 40, 200, 4, 0.8)
	rw := sparse.RowNormalize(adj)
	prob := &Problem{
		A:          rw,
		ATranspose: rw.Transpose(),
		X:          graph.SynthesizeFeatures(rng, labels, 4, 8, 0.8),
		Labels:     labels,
	}
	dims := []int{8, 6, 4}
	ref := ReferenceTrain(prob, testOpts(dims, 0), 3)
	res := Train(4, hw.A6000(), prob, testOpts(dims, 10), 3)
	if math.Abs(res.FinalLoss()-ref.Losses[2]) > 1e-4 {
		t.Fatalf("row-normalized loss %v want %v", res.FinalLoss(), ref.Losses[2])
	}
}

// TestReferenceGradientsNumeric verifies the hand-derived GCN backward
// pass against central differences on the total loss, for both GCN and
// SAGE forms. This anchors every distributed equivalence test to actual
// calculus, not just self-consistency.
func TestReferenceGradientsNumeric(t *testing.T) {
	for _, sage := range []bool{false, true} {
		prob := testProblem(t, 20, 5, 3)
		dims := []int{5, 4, 3}
		opts := testOpts(dims, 0)
		opts.SAGE = sage

		// Build weights identically to ReferenceTrain and compute
		// analytic gradients via one manual pass.
		lossAt := func(weights []*tensor.Dense) float64 {
			h := prob.X
			L := len(dims) - 1
			wIdx := func(l int) *tensor.Dense {
				if sage {
					return weights[2*(l-1)]
				}
				return weights[l-1]
			}
			for l := 1; l <= L; l++ {
				z := tensor.MatMul(prob.A.SpMM(h), wIdx(l))
				if sage {
					z.Add(tensor.MatMul(h, weights[2*(l-1)+1]))
				}
				if l < L {
					z.ReLU()
				}
				h = z
			}
			loss, _, _ := lossOf(h, prob)
			return loss
		}

		// Reference's first-epoch gradients: rebuild via a 1-epoch run
		// with a huge LR? Instead, recompute directly using the same code
		// path: run ReferenceTrain for 1 epoch with LR=0 is impossible
		// (Adam normalizes), so reimplement the backward from its parts.
		rng := rand.New(rand.NewSource(opts.Seed))
		var weights []*tensor.Dense
		L := 2
		for l := 1; l <= L; l++ {
			w := tensor.NewDense(dims[l-1], dims[l])
			w.GlorotInit(rng)
			weights = append(weights, w)
			if sage {
				ws := tensor.NewDense(dims[l-1], dims[l])
				ws.GlorotInit(rng)
				weights = append(weights, ws)
			}
		}
		grads := referenceGradsForTest(prob, weights, dims, sage)

		const h = 1e-2
		for wi, w := range weights {
			for _, idx := range []int{0, len(w.Data) / 2, len(w.Data) - 1} {
				orig := w.Data[idx]
				w.Data[idx] = orig + h
				lp := lossAt(weights)
				w.Data[idx] = orig - h
				lm := lossAt(weights)
				w.Data[idx] = orig
				numeric := (lp - lm) / (2 * h)
				analytic := float64(grads[wi].Data[idx])
				if math.Abs(numeric-analytic) > 5e-3*(1+math.Abs(numeric)) {
					t.Fatalf("sage=%v w%d[%d]: numeric %v analytic %v", sage, wi, idx, numeric, analytic)
				}
			}
		}
	}
}

func lossOf(logits *tensor.Dense, prob *Problem) (float64, *tensor.Dense, float64) {
	s, g, w := nnWeightedSum(logits, prob)
	if w > 0 {
		g.Scale(float32(1 / w))
		return s / w, g, w
	}
	return 0, g, 0
}

func nnWeightedSum(logits *tensor.Dense, prob *Problem) (float64, *tensor.Dense, float64) {
	return nn.WeightedSoftmaxCrossEntropySum(logits, prob.Labels, prob.TrainMask, prob.LossWeights)
}

// referenceGradsForTest mirrors ReferenceTrain's backward pass without
// the optimizer step.
func referenceGradsForTest(prob *Problem, weights []*tensor.Dense, dims []int, sage bool) []*tensor.Dense {
	L := len(dims) - 1
	wN := func(l int) *tensor.Dense {
		if sage {
			return weights[2*(l-1)]
		}
		return weights[l-1]
	}
	hs := make([]*tensor.Dense, L+1)
	hs[0] = prob.X
	for l := 1; l <= L; l++ {
		z := tensor.MatMul(prob.A.SpMM(hs[l-1]), wN(l))
		if sage {
			z.Add(tensor.MatMul(hs[l-1], weights[2*(l-1)+1]))
		}
		if l < L {
			z.ReLU()
		}
		hs[l] = z
	}
	_, grad, _ := lossOf(hs[L], prob)
	grads := make([]*tensor.Dense, len(weights))
	g := grad
	for l := L; l >= 1; l-- {
		tmat := prob.A.SpMM(g)
		if sage {
			grads[2*(l-1)] = tensor.MatMulTA(hs[l-1], tmat)
			grads[2*(l-1)+1] = tensor.MatMulTA(hs[l-1], g)
		} else {
			grads[l-1] = tensor.MatMulTA(hs[l-1], tmat)
		}
		if l > 1 {
			next := tensor.MatMulTB(tmat, wN(l))
			if sage {
				next.Add(tensor.MatMulTB(g, weights[2*(l-1)+1]))
			}
			g = next
			for i, v := range hs[l-1].Data {
				if v <= 0 {
					g.Data[i] = 0
				}
			}
		}
	}
	return grads
}
