package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/fault"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/member"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
	"gnnrdm/internal/trace"
)

// ElasticOptions configures fault injection and recovery for
// TrainElastic. The zero value trains with no schedule, CRC armed, the
// default retry policy, and a checkpoint after every epoch.
type ElasticOptions struct {
	// Schedule is the fault schedule to inject (nil = none). Ranks
	// address the ORIGINAL P-rank world.
	Schedule *fault.Schedule
	// FaultSeed seeds the injector's RNG (bit-flip positions). The same
	// seed and schedule reproduce the identical run, trace included.
	FaultSeed int64
	// CheckpointEvery is the number of epochs between durable
	// checkpoints (default 1). Checkpoints pass through the v2 wire
	// format, so recovery exercises the CRC-verified read path.
	CheckpointEvery int
	// Retry overrides the fabric retry policy (nil = DefaultRetryPolicy).
	Retry *comm.RetryPolicy
	// DisableCRC turns off the collective CRC side-channel, letting
	// injected bit flips propagate silently (the ablation).
	DisableCRC bool
	// CollectiveDeadline overrides the simulated-time charge for
	// abandoning a rendezvous with a dead peer (0 = fabric default).
	CollectiveDeadline float64
	// MaxRecoveries bounds world re-formations before the driver gives
	// up (default: scheduled crashes + 2).
	MaxRecoveries int
	// Membership switches crash detection from the coordinator-driven
	// path (survivors learn the dead set instantly from the fabric) to
	// the decentralized gossip control plane (internal/member): each
	// crash triggers a SWIM detection episode in which the survivors
	// independently converge on the identical membership view before
	// re-forming the world. The episode's simulated latency is charged
	// to every survivor's clock, its per-round censuses are recorded on
	// the Recovery (priced closed-form by costmodel.GossipRoundBytes),
	// and its rounds are traced as ClassGossip spans. The re-formed
	// world — survivors, reshard traffic, final weights — is
	// byte-identical to the coordinator-driven path; only detection
	// latency and control-plane traffic differ from zero. The config's
	// Seed composes with FaultSeed and the world index so distinct
	// recoveries run distinct (but reproducible) episodes.
	Membership *member.Config
}

// Recovery records one world re-formation: which ranks were lost, where
// training rolled back to, and what the re-shard of the surviving state
// cost — both as metered by the fabric and as predicted by the cost
// model (the two must agree exactly).
type Recovery struct {
	// AbortEpoch is the epoch being attempted when the fault surfaced.
	AbortEpoch int
	// ResumeEpoch is the checkpointed epoch training rolled back to.
	ResumeEpoch int
	// OldP and NewP are the world sizes either side of the shrink
	// (equal when the world re-ran after a non-fatal fault).
	OldP, NewP int
	// Failed lists the crashed ranks, in ORIGINAL rank numbering.
	Failed []int
	// Survivors lists the surviving ranks, in ORIGINAL rank numbering;
	// index = new fabric rank.
	Survivors []int
	// ReshardBytes is the fabric volume metered while redistributing
	// the surviving A-panels and feature tiles onto the new world.
	ReshardBytes int64
	// PredictedReshardBytes is the cost model's prediction for the same
	// redistribution (costmodel.ShrinkTrafficDense + ShrinkTrafficCSR).
	PredictedReshardBytes int64
	// SimTime is the simulated clock at which the new world started
	// (max surviving clock, deadline charges included, plus the gossip
	// detection latency when membership is enabled).
	SimTime float64
	// Detection is the gossip detection episode that triggered this
	// re-formation (nil on the coordinator-driven path and for
	// re-formations with no crash). Its Latency is included in SimTime.
	Detection *member.Report
	// ControlBytes is the control-plane traffic the detection episode
	// metered (sum of encoded gossip message lengths); zero without
	// membership. PredictedControlBytes is the cost model's closed-form
	// price for the same episode census — the two must agree exactly.
	ControlBytes          int64
	PredictedControlBytes int64
}

// ElasticResult is a Result plus the recovery history of an elastic run.
type ElasticResult struct {
	Result
	// Recoveries lists every world re-formation, in order.
	Recoveries []Recovery
	// FinalP is the device count of the world that finished training.
	FinalP int
	// FinalSurvivors maps the final world's fabric ranks to ORIGINAL
	// ranks.
	FinalSurvivors []int
}

// deviceEpoch is one device's contribution to an epoch's makespan.
type deviceEpoch struct {
	time, comm, comp float64
}

// TrainElastic runs distributed RDM training under an injected fault
// schedule with elastic recovery: when a rank crashes, the survivors
// observe typed fault errors (never a deadlock), cooperatively abandon
// the epoch, roll back to the last durable checkpoint, re-form the
// world as P' < P devices, redistribute the surviving A row panels and
// feature tiles over the fabric (metered and traced, rows of dead ranks
// re-read from storage), and continue training. Non-fatal faults
// (transient drops, CRC-caught bit flips) are absorbed by the fabric's
// retry path without re-formation.
//
// Determinism: with a fixed schedule, seed, and options, two runs
// produce identical losses, metered bytes, and traces. opts.RA must be
// 0 (full replication, re-derived per world) or 1, since a fixed
// replication factor cannot divide every shrunken world size.
func TrainElastic(p int, model *hw.Model, prob *Problem, opts Options, epochs int, eo ElasticOptions) *ElasticResult {
	if epochs < 1 {
		panic("core: TrainElastic needs at least one epoch")
	}
	if opts.RA > 1 {
		panic(fmt.Sprintf("core: TrainElastic requires RA 0 or 1, got %d", opts.RA))
	}
	opts.withDefaults(p).validate(p, prob)
	sched := eo.Schedule
	if sched == nil {
		sched = &fault.Schedule{}
	}
	if err := sched.Validate(p); err != nil {
		panic(err)
	}
	inj := fault.NewInjector(sched, eo.FaultSeed, p)
	ckEvery := eo.CheckpointEvery
	if ckEvery < 1 {
		ckEvery = 1
	}
	retry := comm.DefaultRetryPolicy()
	if eo.Retry != nil {
		retry = *eo.Retry
	}
	maxRec := eo.MaxRecoveries
	if maxRec < 1 {
		maxRec = len(sched.Crashes()) + 2
	}
	label := opts.TraceLabel
	if label == "" {
		label = "rdm-elastic"
	}

	n, f0 := prob.N(), prob.X.Cols
	rowNNZ := make([]int, n)
	for r := 0; r < n; r++ {
		rowNNZ[r] = int(prob.A.RowPtr[r+1] - prob.A.RowPtr[r])
	}

	orig := make([]int, p) // orig[fabricRank] = original rank
	for i := range orig {
		orig[i] = i
	}
	clocks := make([]float64, p)
	var ckBytes []byte // last durable checkpoint, wire format
	ckEpoch := 0       // epochs it captures (0 = fresh init)

	res := &ElasticResult{}
	epochStats := make([]EpochStats, epochs)
	var pendingShrink *dist.ShrinkSpec // set when this world was formed by a shrink

	for world := 0; ; world++ {
		curP := len(orig)
		fabric := comm.NewFabric(curP, model)
		if opts.Topology != nil {
			// The topology covers the original P and survivor ranks are
			// renumbered contiguously from 0, so reattaching it to every
			// shrunk world is always legal (curP <= P).
			fabric.SetTopology(opts.Topology)
		}
		if opts.Tracer != nil {
			fabric.SetTracer(opts.Tracer, fmt.Sprintf("%s/w%d", label, world))
		}
		fabric.SeedClocks(clocks)
		fabric.SetRetryPolicy(retry)
		fabric.EnableCRC(!eo.DisableCRC)
		if eo.CollectiveDeadline > 0 {
			fabric.SetCollectiveDeadline(eo.CollectiveDeadline)
		}
		inj.Remap(orig)
		inj.Arm(fabric)

		var resume *Checkpoint
		if ckBytes != nil {
			cp, err := ReadCheckpoint(bytes.NewReader(ckBytes))
			if err != nil {
				// The durable snapshot itself is damaged; nothing sound
				// to roll back to.
				panic(fmt.Errorf("core: restoring checkpoint for world %d: %w", world, err))
			}
			resume = cp
		}
		startEpoch := ckEpoch

		var rec *Recovery
		if world > 0 {
			rec = &res.Recoveries[len(res.Recoveries)-1]
		}

		engines := make([]*Engine, curP)
		crashed := make([]bool, curP)
		aborted := make([]error, curP)
		perEpoch := make([][]deviceEpoch, curP)
		ckCandidate := make(map[int][]byte) // completed-epoch count -> snapshot bytes

		fabric.Run(func(d *comm.Device) {
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				if _, ok := r.(comm.Killed); ok {
					crashed[d.Rank] = true
					panic(r) // fabric suppresses Killed and marks the rank dead
				}
				if err, ok := r.(error); ok {
					var fe *comm.FaultError
					if errors.As(err, &fe) {
						aborted[d.Rank] = err // cooperative abort; exiting wakes blocked peers
						return
					}
				}
				panic(r) // genuine bug: let the fabric re-raise it
			}()

			eng := NewEngine(d, prob, opts)
			engines[d.Rank] = eng
			if resume != nil {
				if err := eng.Restore(resume); err != nil {
					panic(err)
				}
			}

			var reshardVol int64
			if pendingShrink != nil {
				// Recovery traffic: move the surviving H row panels of A
				// and tiles of X onto the new partition. Injected round
				// faults are suppressed — this is the recovery path itself.
				d.SetFaultEpoch(-1)
				d.TraceBeginPhase("recovery")
				sp := *pendingShrink
				oldLo, oldHi := dist.PartRange(n, sp.OldP, sp.Survivors[d.Rank])
				oldX := tensor.NewDense(oldHi-oldLo, f0)
				copy(oldX.Data, prob.X.Data[oldLo*f0:oldHi*f0])
				dist.ShrinkReshard(d, sp, n, f0, oldX, func(lo, hi int) *tensor.Dense {
					blk := tensor.NewDense(hi-lo, f0)
					copy(blk.Data, prob.X.Data[lo*f0:hi*f0])
					return blk
				})
				dist.ShrinkReshardCSR(d, sp, n, prob.A.RowPanel(oldLo, oldHi),
					func(lo, hi int) *sparse.CSR { return prob.A.RowPanel(lo, hi) })
				d.TraceEndPhase()
				d.Barrier(d.World())
				if d.Rank == 0 {
					// Peers are parked at the barrier; snapshot is race-free.
					reshardVol = fabric.TotalVolume()
					rec.ReshardBytes = reshardVol
				}
			}

			prevClock, prevComm, prevComp := d.Clock(), d.CommTime(), d.ComputeTime()
			prevVol := reshardVol
			for ep := startEpoch; ep < epochs; ep++ {
				d.SetFaultEpoch(ep)
				inj.AtEpochStart(d, ep) // may panic Killed
				loss := eng.Epoch()
				acc := 0.0
				if opts.EvalMask != nil {
					acc = eng.EvalAccuracy(opts.EvalMask)
				}
				d.Barrier(d.World())
				if d.Rank == 0 {
					vol := fabric.TotalVolume()
					epochStats[ep] = EpochStats{Loss: loss, EvalAcc: acc, CommBytes: vol - prevVol}
					prevVol = vol
				}
				perEpoch[d.Rank] = append(perEpoch[d.Rank], deviceEpoch{
					time: d.Clock() - prevClock,
					comm: d.CommTime() - prevComm,
					comp: d.ComputeTime() - prevComp,
				})
				prevClock, prevComm, prevComp = d.Clock(), d.CommTime(), d.ComputeTime()
				if d.Rank == 0 && (ep+1-startEpoch)%ckEvery == 0 {
					var buf bytes.Buffer
					if err := eng.Snapshot().Write(&buf); err != nil {
						panic(err)
					}
					ckCandidate[ep+1] = buf.Bytes()
				}
				d.Barrier(d.World())
			}
		})

		// An epoch's numbers are trustworthy once every device completed
		// it; fold per-device maxima into the shared stats (replayed
		// epochs overwrite, so the final timeline wins).
		completed := epochs - startEpoch
		for _, pe := range perEpoch {
			completed = min(completed, len(pe))
		}
		for k := 0; k < completed; k++ {
			ep := startEpoch + k
			var t, cm, cp float64
			for r := 0; r < curP; r++ {
				t = math.Max(t, perEpoch[r][k].time)
				cm = math.Max(cm, perEpoch[r][k].comm)
				cp = math.Max(cp, perEpoch[r][k].comp)
			}
			epochStats[ep].Time, epochStats[ep].CommTime, epochStats[ep].ComputeTime = t, cm, cp
		}

		// Durable checkpoints: every checkpoint rank 0 cut at a completed
		// epoch boundary made it to storage, crash or not.
		for e, b := range ckCandidate {
			if e <= startEpoch+completed && e > ckEpoch {
				ckEpoch, ckBytes = e, b
			}
		}

		var failed []int
		for fr, dead := range crashed {
			if dead {
				failed = append(failed, orig[fr])
			}
		}
		anyAbort := false
		for _, err := range aborted {
			if err != nil {
				anyAbort = true
			}
		}

		if len(failed) == 0 && !anyAbort {
			// Clean finish: assemble the final result from this world.
			res.Epochs = epochStats
			res.Weights = engines[0].Weights()
			tiles := make([]*dist.Mat, curP)
			for r := 0; r < curP; r++ {
				tiles[r] = engines[r].LastLogits()
			}
			res.Logits = dist.Assemble(tiles)
			res.FinalP = curP
			res.FinalSurvivors = orig
			return res
		}

		if len(res.Recoveries) >= maxRec {
			panic(fmt.Sprintf("core: %d recoveries exhausted (failed ranks %v)", maxRec, failed))
		}

		// Re-form the world from the survivors and roll back.
		var survFab []int
		for fr := 0; fr < curP; fr++ {
			if !crashed[fr] {
				survFab = append(survFab, fr)
			}
		}
		if len(survFab) == 0 {
			panic("core: no survivors to re-form the world from")
		}
		maxClock := 0.0
		newOrig := make([]int, len(survFab))
		for i, fr := range survFab {
			newOrig[i] = orig[fr]
			maxClock = math.Max(maxClock, fabric.Device(fr).Clock())
		}

		// Decentralized detection: before the survivors may re-form, each
		// must independently learn the dead set through the gossip control
		// plane. The episode starts at the last survivor's clock and its
		// latency is charged to every survivor (re-formation synchronizes
		// them at maxClock + detection latency).
		var det *member.Report
		if len(failed) > 0 && eo.Membership != nil && curP >= 2 {
			var failedFab []int
			for fr, dead := range crashed {
				if dead {
					failedFab = append(failedFab, fr)
				}
			}
			cfg := eo.Membership.WithDefaults()
			cfg.Seed = cfg.Seed ^ (eo.FaultSeed+1)*0x1000003 ^ int64(world+1)
			det = member.Detect(curP, failedFab, cfg)
			if !det.Converged {
				panic(fmt.Sprintf("core: gossip detection did not converge at P=%d (dead %v)", curP, failedFab))
			}
			if opts.Tracer != nil {
				// Gossip rounds trace on a virtual row (rank curP) like
				// serve's request spans: control-plane time reads alongside
				// — but never interleaves with — device timelines.
				for _, rc := range det.PerRound {
					start := maxClock + float64(rc.Round)*cfg.Period
					opts.Tracer.Emit(curP, trace.Event{
						Class:     trace.ClassGossip,
						Op:        "gossip-round",
						Seq:       uint64(rc.Round),
						GroupSize: curP,
						Bytes:     rc.Bytes,
						Start:     start,
						End:       start + cfg.Period,
					})
				}
			}
			maxClock += det.Latency
		}

		recNew := Recovery{
			AbortEpoch:  startEpoch + completed,
			ResumeEpoch: ckEpoch,
			OldP:        curP,
			NewP:        len(survFab),
			Failed:      failed,
			Survivors:   newOrig,
			SimTime:     maxClock,
		}
		if det != nil {
			recNew.Detection = det
			recNew.ControlBytes = det.Bytes
			for _, rc := range det.PerRound {
				recNew.PredictedControlBytes += costmodel.GossipRoundBytes(rc.Msgs, rc.Updates)
			}
		}
		if len(failed) > 0 {
			recNew.PredictedReshardBytes = costmodel.ShrinkTrafficDense(n, f0, curP, survFab) +
				costmodel.ShrinkTrafficCSR(n, curP, survFab, rowNNZ)
			pendingShrink = &dist.ShrinkSpec{OldP: curP, Survivors: survFab}
		} else {
			pendingShrink = nil // same world re-runs; nothing to move
		}
		res.Recoveries = append(res.Recoveries, recNew)

		orig = newOrig
		clocks = make([]float64, len(survFab))
		for i := range clocks {
			clocks[i] = maxClock // re-formation synchronizes the survivors
		}
	}
}
