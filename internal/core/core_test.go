package core

import (
	"math"
	"math/rand"
	"testing"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/graph"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
)

// testProblem builds a small learnable planted-partition problem with N
// divisible by 8 so volume accounting is exact.
func testProblem(t testing.TB, n, fin, classes int) *Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	adj, comm := graph.PlantedPartition(rng, n, int64(4*n), classes, 0.8)
	return &Problem{
		A:      sparse.GCNNormalize(adj),
		X:      graph.SynthesizeFeatures(rng, comm, classes, fin, 0.8),
		Labels: comm,
	}
}

func testOpts(dims []int, id int) Options {
	return Options{
		Dims:             dims,
		Config:           costmodel.ConfigFromID(id, len(dims)-1),
		Memoize:          true,
		ComputeInputGrad: true,
		LR:               0.01,
		Seed:             7,
	}
}

func TestAllConfigsMatchReference2Layer(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	dims := []int{12, 10, 6}
	ref := ReferenceTrain(prob, testOpts(dims, 0), 3)
	for id := 0; id < 16; id++ {
		for _, p := range []int{1, 2, 4} {
			res := Train(p, hw.A6000(), prob, testOpts(dims, id), 3)
			for ep := range ref.Losses {
				if math.Abs(res.Epochs[ep].Loss-ref.Losses[ep]) > 1e-4 {
					t.Fatalf("config %d P=%d epoch %d: loss %v want %v",
						id, p, ep, res.Epochs[ep].Loss, ref.Losses[ep])
				}
			}
			if d := tensor.MaxAbsDiff(res.Logits, ref.Logits); d > 1e-3 {
				t.Fatalf("config %d P=%d: logits diff %v", id, p, d)
			}
		}
	}
}

func TestAllConfigs3LayerSpotCheck(t *testing.T) {
	prob := testProblem(t, 32, 8, 4)
	dims := []int{8, 6, 6, 4}
	ref := ReferenceTrain(prob, testOpts(dims, 0), 2)
	for _, id := range []int{0, 21, 42, 63, 10, 37} {
		res := Train(4, hw.A6000(), prob, testOpts(dims, id), 2)
		if math.Abs(res.FinalLoss()-ref.Losses[1]) > 1e-4 {
			t.Fatalf("3-layer config %d: loss %v want %v", id, res.FinalLoss(), ref.Losses[1])
		}
	}
}

func TestGridReplicationRAMatchesReference(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	dims := []int{12, 10, 6}
	ref := ReferenceTrain(prob, testOpts(dims, 10), 3)
	for _, tc := range []struct{ p, ra int }{{4, 2}, {4, 1}, {8, 2}, {8, 4}} {
		for _, id := range []int{0, 5, 10, 15} {
			opts := testOpts(dims, id)
			opts.RA = tc.ra
			res := Train(tc.p, hw.A6000(), prob, opts, 3)
			if math.Abs(res.FinalLoss()-ref.Losses[2]) > 1e-4 {
				t.Fatalf("P=%d RA=%d config %d: loss %v want %v",
					tc.p, tc.ra, id, res.FinalLoss(), ref.Losses[2])
			}
		}
	}
}

func TestNoMemoizeStillCorrect(t *testing.T) {
	prob := testProblem(t, 32, 8, 4)
	dims := []int{8, 8, 4}
	ref := ReferenceTrain(prob, testOpts(dims, 0), 2)
	for _, id := range []int{0, 5, 10} {
		opts := testOpts(dims, id)
		opts.Memoize = false
		res := Train(4, hw.A6000(), prob, opts, 2)
		if math.Abs(res.FinalLoss()-ref.Losses[1]) > 1e-4 {
			t.Fatalf("no-memo config %d: loss %v want %v", id, res.FinalLoss(), ref.Losses[1])
		}
	}
}

func TestTrainingConverges(t *testing.T) {
	prob := testProblem(t, 64, 16, 4)
	res := Train(4, hw.A6000(), prob, testOpts([]int{16, 16, 4}, 10), 30)
	first, last := res.Epochs[0].Loss, res.FinalLoss()
	if last > first*0.7 {
		t.Fatalf("loss did not converge: %v -> %v", first, last)
	}
	acc := res.Accuracy(prob.Labels, nil)
	if acc < 0.8 {
		t.Fatalf("train accuracy %v too low for planted partitions", acc)
	}
}

func TestTrainMaskRespected(t *testing.T) {
	prob := testProblem(t, 48, 12, 4)
	prob.TrainMask = make([]bool, 48)
	for i := 0; i < 24; i++ {
		prob.TrainMask[i] = true
	}
	ref := ReferenceTrain(prob, testOpts([]int{12, 8, 4}, 0), 3)
	res := Train(4, hw.A6000(), prob, testOpts([]int{12, 8, 4}, 0), 3)
	if math.Abs(res.FinalLoss()-ref.Losses[2]) > 1e-4 {
		t.Fatalf("masked loss %v want %v", res.FinalLoss(), ref.Losses[2])
	}
}

// TestVolumeMatchesCostModel verifies that the engine's metered
// redistribution + broadcast volume equals the analytic model exactly for
// configurations that need no mask redistribution (0, 5, 10), across P
// and R_A.
func TestVolumeMatchesCostModel(t *testing.T) {
	prob := testProblem(t, 64, 16, 8)
	dims := []int{16, 12, 8}
	for _, tc := range []struct{ p, ra int }{{2, 2}, {4, 4}, {8, 8}, {4, 2}, {8, 4}, {8, 2}, {8, 1}} {
		for _, id := range []int{0, 5, 10} {
			opts := testOpts(dims, id)
			opts.RA = tc.ra
			res := Train(tc.p, hw.A6000(), prob, opts, 1)
			net := costmodel.Network{Dims: dims, N: 64, NNZ: prob.A.NNZ(), P: tc.p, RA: tc.ra}
			want := costmodel.Evaluate(net, costmodel.ConfigFromID(id, 2))
			// Exclude the O(f²) all-reduces the model ignores: compare
			// only all-to-all + allgather volume. Train reports total
			// bytes; recompute the comparable portion via a fresh run.
			gotBytes := measureRedistVolume(tc.p, tc.ra, prob, opts)
			if gotBytes != want.CommVolumeBytes() {
				t.Fatalf("P=%d RA=%d config %d: volume %d want %d",
					tc.p, tc.ra, id, gotBytes, want.CommVolumeBytes())
			}
			_ = res
		}
	}
}

func measureRedistVolume(p, ra int, prob *Problem, opts Options) int64 {
	fabric := trainOnFabric(p, prob, opts, 1)
	return fabric.Volume(hw.OpAllToAll) + fabric.Volume(hw.OpAllGather)
}

// trainOnFabric runs epochs on a fresh fabric and returns it for metric
// inspection.
func trainOnFabric(p int, prob *Problem, opts Options, epochs int) *comm.Fabric {
	fab := comm.NewFabric(p, hw.A6000())
	fab.Run(func(d *comm.Device) {
		eng := NewEngine(d, prob, opts)
		for ep := 0; ep < epochs; ep++ {
			eng.Epoch()
		}
	})
	return fab
}

func TestVolumeConstantInP(t *testing.T) {
	// The headline scalability property (§I): RDM's total volume is
	// independent of P, while the RA=1 (CAGNET-style) volume grows.
	prob := testProblem(t, 64, 16, 8)
	dims := []int{16, 12, 8}
	vol := func(p, ra int) int64 {
		opts := testOpts(dims, 10)
		opts.RA = ra
		return measureRedistVolume(p, ra, prob, opts)
	}
	v2, v4, v8 := vol(2, 2), vol(4, 4), vol(8, 8)
	if float64(v8) > 1.8*float64(v2) {
		t.Fatalf("RDM volume must be ~constant in P: %d %d %d", v2, v4, v8)
	}
	c2, c8 := vol(2, 1), vol(8, 1)
	if float64(c8) < 3*float64(c2) {
		t.Fatalf("RA=1 volume must grow with P: %d -> %d", c2, c8)
	}
	if c8 < 4*v8 {
		t.Fatalf("RA=1 must move far more than RDM at P=8: %d vs %d", c8, v8)
	}
}

func TestDeterministicTraining(t *testing.T) {
	prob := testProblem(t, 32, 8, 4)
	opts := testOpts([]int{8, 8, 4}, 10)
	a := Train(4, hw.A6000(), prob, opts, 3)
	b := Train(4, hw.A6000(), prob, opts, 3)
	for ep := range a.Epochs {
		if a.Epochs[ep] != b.Epochs[ep] {
			t.Fatalf("epoch %d stats differ: %+v vs %+v", ep, a.Epochs[ep], b.Epochs[ep])
		}
	}
	if tensor.MaxAbsDiff(a.Logits, b.Logits) != 0 {
		t.Fatal("logits must be bit-identical across runs")
	}
}

func TestAutoTunePicksParetoCandidate(t *testing.T) {
	prob := testProblem(t, 64, 128, 8)
	dims := []int{128, 16, 8}
	best, times := AutoTune(4, hw.A6000(), prob, testOpts(dims, 0), 2)
	net := costmodel.Network{Dims: dims, N: 64, NNZ: prob.A.NNZ(), P: 4, RA: 4}
	candidates := costmodel.ParetoConfigs(net)
	found := false
	for _, id := range candidates {
		if id == best {
			found = true
		}
		if _, ok := times[id]; !ok {
			t.Fatalf("candidate %d not probed", id)
		}
	}
	if !found {
		t.Fatalf("best %d not among pareto candidates %v", best, candidates)
	}
}

func TestResultHelpers(t *testing.T) {
	prob := testProblem(t, 32, 8, 4)
	res := Train(2, hw.A6000(), prob, testOpts([]int{8, 8, 4}, 0), 3)
	if res.MeanEpochTime() <= 0 || res.EpochsPerSecond() <= 0 || res.MeanCommTime() < 0 {
		t.Fatal("nonsensical timing stats")
	}
	if res.Epochs[0].CommBytes <= 0 {
		t.Fatal("distributed run must move bytes")
	}
	if res.Epochs[1].CommBytes <= 0 || res.Epochs[1].CommBytes > res.Epochs[0].CommBytes*2 {
		t.Fatalf("per-epoch volume accounting broken: %v", res.Epochs)
	}
}

func TestOptionsValidation(t *testing.T) {
	prob := testProblem(t, 32, 8, 4)
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("bad dims", func() {
		Train(2, hw.A6000(), prob, testOpts([]int{9, 4}, 0), 1)
	})
	expectPanic("bad RA", func() {
		o := testOpts([]int{8, 4}, 0)
		o.RA = 3
		Train(4, hw.A6000(), prob, o, 1)
	})
	expectPanic("config mismatch", func() {
		o := testOpts([]int{8, 6, 4}, 0)
		o.Config = costmodel.ConfigFromID(0, 1)
		Train(2, hw.A6000(), prob, o, 1)
	})
}

func TestSingleDeviceNoComm(t *testing.T) {
	prob := testProblem(t, 32, 8, 4)
	fab := comm.NewFabric(1, hw.A6000())
	fab.Run(func(d *comm.Device) {
		NewEngine(d, prob, testOpts([]int{8, 6, 4}, 10)).Epoch()
	})
	if fab.TotalVolume() != 0 {
		t.Fatalf("P=1 must not communicate, moved %d bytes", fab.TotalVolume())
	}
}
