package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"gnnrdm/internal/tensor"
)

// Checkpoint is a serializable snapshot of a training run: the layer
// dimensions, the (replicated) weights, and the Adam state, sufficient to
// resume training or run inference elsewhere.
type Checkpoint struct {
	Dims    []int
	SAGE    bool
	Step    int
	Weights []*tensor.Dense
	AdamM   []*tensor.Dense
	AdamV   []*tensor.Dense
}

// Snapshot captures this engine's weights and optimizer state. Weights
// are replicated, so any device's snapshot is the model.
func (e *Engine) Snapshot() *Checkpoint {
	cp := &Checkpoint{
		Dims: append([]int(nil), e.opts.Dims...),
		SAGE: e.opts.SAGE,
	}
	m, v, step := e.adam.Moments()
	cp.Step = step
	for i := range e.weights {
		cp.Weights = append(cp.Weights, e.weights[i].Clone())
		cp.AdamM = append(cp.AdamM, m[i].Clone())
		cp.AdamV = append(cp.AdamV, v[i].Clone())
	}
	return cp
}

// Restore loads a checkpoint into this engine (SPMD: call on every
// device with the same checkpoint).
func (e *Engine) Restore(cp *Checkpoint) error {
	if len(cp.Dims) != len(e.opts.Dims) || cp.SAGE != e.opts.SAGE {
		return fmt.Errorf("core: checkpoint shape mismatch: dims %v sage %v vs %v %v",
			cp.Dims, cp.SAGE, e.opts.Dims, e.opts.SAGE)
	}
	for i, d := range cp.Dims {
		if d != e.opts.Dims[i] {
			return fmt.Errorf("core: checkpoint dim %d = %d, want %d", i, d, e.opts.Dims[i])
		}
	}
	if len(cp.Weights) != len(e.weights) {
		return fmt.Errorf("core: checkpoint has %d weights, want %d", len(cp.Weights), len(e.weights))
	}
	for i := range e.weights {
		e.weights[i].CopyFrom(cp.Weights[i])
	}
	e.adam.Restore(cp.AdamM, cp.AdamV, cp.Step)
	return nil
}

const checkpointMagic = 0x52444d43 // "RDMC"

// Write serializes the checkpoint in a compact little-endian binary
// format.
func (cp *Checkpoint) Write(w io.Writer) error {
	le := binary.LittleEndian
	wr := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Write(w, le, v); err != nil {
				return err
			}
		}
		return nil
	}
	sage := uint64(0)
	if cp.SAGE {
		sage = 1
	}
	if err := wr(uint64(checkpointMagic), uint64(len(cp.Dims)), sage, uint64(cp.Step),
		uint64(len(cp.Weights))); err != nil {
		return err
	}
	for _, d := range cp.Dims {
		if err := wr(uint64(d)); err != nil {
			return err
		}
	}
	writeMat := func(m *tensor.Dense) error {
		if err := wr(uint64(m.Rows), uint64(m.Cols)); err != nil {
			return err
		}
		return wr(m.Data)
	}
	for _, group := range [][]*tensor.Dense{cp.Weights, cp.AdamM, cp.AdamV} {
		for _, m := range group {
			if err := writeMat(m); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadCheckpoint deserializes a checkpoint written by Write.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	le := binary.LittleEndian
	var hdr [5]uint64
	for i := range hdr {
		if err := binary.Read(r, le, &hdr[i]); err != nil {
			return nil, fmt.Errorf("core: reading checkpoint header: %w", err)
		}
	}
	if hdr[0] != checkpointMagic {
		return nil, fmt.Errorf("core: bad checkpoint magic %#x", hdr[0])
	}
	nDims, sage, step, nW := hdr[1], hdr[2], hdr[3], hdr[4]
	if nDims > 64 || nW > 128 {
		return nil, fmt.Errorf("core: implausible checkpoint header %v", hdr)
	}
	cp := &Checkpoint{SAGE: sage != 0, Step: int(step)}
	for i := uint64(0); i < nDims; i++ {
		var d uint64
		if err := binary.Read(r, le, &d); err != nil {
			return nil, err
		}
		cp.Dims = append(cp.Dims, int(d))
	}
	readMat := func() (*tensor.Dense, error) {
		var rc [2]uint64
		if err := binary.Read(r, le, &rc); err != nil {
			return nil, err
		}
		if rc[0] > 1<<24 || rc[1] > 1<<24 || rc[0]*rc[1] > 1<<28 {
			return nil, fmt.Errorf("core: implausible matrix %dx%d", rc[0], rc[1])
		}
		// Chunked reads: a hostile header cannot force a large
		// allocation before the stream delivers the bytes.
		total := rc[0] * rc[1]
		const chunk = 1 << 16
		data := make([]float32, 0, minU64ck(total, chunk))
		for uint64(len(data)) < total {
			c := minU64ck(total-uint64(len(data)), chunk)
			buf := make([]float32, c)
			if err := binary.Read(r, le, &buf); err != nil {
				return nil, err
			}
			data = append(data, buf...)
		}
		return tensor.FromRowMajor(int(rc[0]), int(rc[1]), data), nil
	}
	for g := 0; g < 3; g++ {
		for i := uint64(0); i < nW; i++ {
			m, err := readMat()
			if err != nil {
				return nil, err
			}
			switch g {
			case 0:
				cp.Weights = append(cp.Weights, m)
			case 1:
				cp.AdamM = append(cp.AdamM, m)
			case 2:
				cp.AdamV = append(cp.AdamV, m)
			}
		}
	}
	return cp, nil
}

func minU64ck(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
