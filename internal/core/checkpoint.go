package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"gnnrdm/internal/tensor"
)

// Checkpoint is a serializable snapshot of a training run: the layer
// dimensions, the (replicated) weights, and the Adam state, sufficient to
// resume training or run inference elsewhere.
type Checkpoint struct {
	Dims    []int
	SAGE    bool
	Step    int
	Weights []*tensor.Dense
	AdamM   []*tensor.Dense
	AdamV   []*tensor.Dense
}

// Snapshot captures this engine's weights and optimizer state. Weights
// are replicated, so any device's snapshot is the model.
func (e *Engine) Snapshot() *Checkpoint {
	cp := &Checkpoint{
		Dims: append([]int(nil), e.opts.Dims...),
		SAGE: e.opts.SAGE,
	}
	m, v, step := e.adam.Moments()
	cp.Step = step
	for i := range e.weights {
		cp.Weights = append(cp.Weights, e.weights[i].Clone())
		cp.AdamM = append(cp.AdamM, m[i].Clone())
		cp.AdamV = append(cp.AdamV, v[i].Clone())
	}
	return cp
}

// Restore loads a checkpoint into this engine (SPMD: call on every
// device with the same checkpoint).
func (e *Engine) Restore(cp *Checkpoint) error {
	if len(cp.Dims) != len(e.opts.Dims) || cp.SAGE != e.opts.SAGE {
		return fmt.Errorf("core: checkpoint shape mismatch: dims %v sage %v vs %v %v",
			cp.Dims, cp.SAGE, e.opts.Dims, e.opts.SAGE)
	}
	for i, d := range cp.Dims {
		if d != e.opts.Dims[i] {
			return fmt.Errorf("core: checkpoint dim %d = %d, want %d", i, d, e.opts.Dims[i])
		}
	}
	if len(cp.Weights) != len(e.weights) {
		return fmt.Errorf("core: checkpoint has %d weights, want %d", len(cp.Weights), len(e.weights))
	}
	for i := range e.weights {
		e.weights[i].CopyFrom(cp.Weights[i])
	}
	e.adam.Restore(cp.AdamM, cp.AdamV, cp.Step)
	// Resume epoch numbering where the snapshot left off, so epoch-keyed
	// state (sampled-neighbor masks, traces) matches an uninterrupted run.
	e.epoch = cp.Step
	return nil
}

const (
	checkpointMagic = 0x52444d43 // "RDMC"
	// checkpointVersion is the current wire format. v1 had no version
	// word and no integrity trailer; v2 inserts a version word after the
	// magic and appends a CRC32 (IEEE) of everything before the trailer,
	// so rollback-on-recovery never restores from a silently corrupted
	// snapshot.
	checkpointVersion = 2
)

// Typed checkpoint read failures, distinguishable with errors.Is so the
// elastic driver can tell "retry with an older snapshot" (corrupt,
// truncated) from "wrong software" (version).
var (
	// ErrCheckpointVersion reports a checkpoint written by an
	// incompatible format version.
	ErrCheckpointVersion = errors.New("core: unsupported checkpoint version")
	// ErrCheckpointCorrupt reports a structurally complete checkpoint
	// whose bytes fail validation (bad magic, implausible header, CRC
	// mismatch).
	ErrCheckpointCorrupt = errors.New("core: corrupt checkpoint")
	// ErrCheckpointTruncated reports a stream that ended before the
	// declared content (and its CRC trailer) was delivered.
	ErrCheckpointTruncated = errors.New("core: truncated checkpoint")
)

// Write serializes the checkpoint in a compact little-endian binary
// format: magic, version, header, payload, CRC32 trailer.
func (cp *Checkpoint) Write(w io.Writer) error {
	le := binary.LittleEndian
	crc := crc32.NewIEEE()
	body := io.MultiWriter(w, crc)
	wr := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Write(body, le, v); err != nil {
				return err
			}
		}
		return nil
	}
	sage := uint64(0)
	if cp.SAGE {
		sage = 1
	}
	if err := wr(uint64(checkpointMagic), uint64(checkpointVersion), uint64(len(cp.Dims)),
		sage, uint64(cp.Step), uint64(len(cp.Weights))); err != nil {
		return err
	}
	for _, d := range cp.Dims {
		if err := wr(uint64(d)); err != nil {
			return err
		}
	}
	writeMat := func(m *tensor.Dense) error {
		if err := wr(uint64(m.Rows), uint64(m.Cols)); err != nil {
			return err
		}
		return wr(m.Data)
	}
	for _, group := range [][]*tensor.Dense{cp.Weights, cp.AdamM, cp.AdamV} {
		for _, m := range group {
			if err := writeMat(m); err != nil {
				return err
			}
		}
	}
	// Trailer goes to w alone: the CRC covers everything before itself.
	return binary.Write(w, le, uint64(crc.Sum32()))
}

// ReadCheckpoint deserializes a checkpoint written by Write, verifying
// the CRC32 trailer. Failures are classified: ErrCheckpointVersion for a
// foreign format version, ErrCheckpointTruncated for a short stream,
// ErrCheckpointCorrupt for bad magic, implausible structure, or a CRC
// mismatch — all matchable with errors.Is.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	le := binary.LittleEndian
	crc := crc32.NewIEEE()
	body := io.TeeReader(r, crc)
	rd := func(v any) error {
		err := binary.Read(body, le, v)
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return ErrCheckpointTruncated
		}
		return err
	}
	var hdr [6]uint64
	for i := range hdr {
		if err := rd(&hdr[i]); err != nil {
			return nil, fmt.Errorf("core: reading checkpoint header: %w", err)
		}
	}
	if hdr[0] != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCheckpointCorrupt, hdr[0])
	}
	if hdr[1] != checkpointVersion {
		return nil, fmt.Errorf("%w: got v%d, want v%d", ErrCheckpointVersion, hdr[1], checkpointVersion)
	}
	nDims, sage, step, nW := hdr[2], hdr[3], hdr[4], hdr[5]
	if nDims > 64 || nW > 128 {
		return nil, fmt.Errorf("%w: implausible header %v", ErrCheckpointCorrupt, hdr)
	}
	cp := &Checkpoint{SAGE: sage != 0, Step: int(step)}
	for i := uint64(0); i < nDims; i++ {
		var d uint64
		if err := rd(&d); err != nil {
			return nil, err
		}
		cp.Dims = append(cp.Dims, int(d))
	}
	readMat := func() (*tensor.Dense, error) {
		var rc [2]uint64
		if err := rd(&rc); err != nil {
			return nil, err
		}
		if rc[0] > 1<<24 || rc[1] > 1<<24 || rc[0]*rc[1] > 1<<28 {
			return nil, fmt.Errorf("%w: implausible matrix %dx%d", ErrCheckpointCorrupt, rc[0], rc[1])
		}
		// Chunked reads: a hostile header cannot force a large
		// allocation before the stream delivers the bytes.
		total := rc[0] * rc[1]
		const chunk = 1 << 16
		data := make([]float32, 0, minU64ck(total, chunk))
		for uint64(len(data)) < total {
			c := minU64ck(total-uint64(len(data)), chunk)
			buf := make([]float32, c)
			if err := rd(&buf); err != nil {
				return nil, err
			}
			data = append(data, buf...)
		}
		return tensor.FromRowMajor(int(rc[0]), int(rc[1]), data), nil
	}
	for g := 0; g < 3; g++ {
		for i := uint64(0); i < nW; i++ {
			m, err := readMat()
			if err != nil {
				return nil, err
			}
			switch g {
			case 0:
				cp.Weights = append(cp.Weights, m)
			case 1:
				cp.AdamM = append(cp.AdamM, m)
			case 2:
				cp.AdamV = append(cp.AdamV, m)
			}
		}
	}
	// The trailer is read from r directly so it isn't folded into the
	// running sum it is checked against.
	sum := crc.Sum32()
	var trailer uint64
	if err := binary.Read(r, le, &trailer); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("core: reading checkpoint trailer: %w", ErrCheckpointTruncated)
		}
		return nil, err
	}
	if trailer != uint64(sum) {
		return nil, fmt.Errorf("%w: CRC32 %#x, trailer says %#x", ErrCheckpointCorrupt, sum, trailer)
	}
	return cp, nil
}

func minU64ck(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
