package core

import (
	"math"
	"reflect"
	"testing"

	"gnnrdm/internal/fault"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/tensor"
)

func elasticOpts(t *testing.T, faults string) ElasticOptions {
	t.Helper()
	sched, err := fault.ParseSchedule(faults)
	if err != nil {
		t.Fatal(err)
	}
	return ElasticOptions{Schedule: sched, FaultSeed: 1}
}

func TestElasticNoFaultsMatchesTrain(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	opts := testOpts([]int{12, 10, 6}, 0)
	plain := Train(4, hw.A6000(), prob, opts, 4)
	el := TrainElastic(4, hw.A6000(), prob, opts, 4, ElasticOptions{})
	if len(el.Recoveries) != 0 || el.FinalP != 4 {
		t.Fatalf("fault-free elastic run recovered: %+v", el.Recoveries)
	}
	for ep := range plain.Epochs {
		if plain.Epochs[ep].Loss != el.Epochs[ep].Loss {
			t.Fatalf("epoch %d: elastic loss %v != plain %v", ep, el.Epochs[ep].Loss, plain.Epochs[ep].Loss)
		}
	}
	if tensor.MaxAbsDiff(plain.Logits, el.Logits) != 0 {
		t.Fatal("fault-free elastic logits differ from Train")
	}
}

func TestElasticCrashShrinksAndConverges(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	opts := testOpts([]int{12, 10, 6}, 0)
	el := TrainElastic(4, hw.A6000(), prob, opts, 6, elasticOpts(t, "crash@rank1:epoch3"))
	if len(el.Recoveries) != 1 {
		t.Fatalf("want exactly one recovery, got %+v", el.Recoveries)
	}
	rec := el.Recoveries[0]
	if rec.OldP != 4 || rec.NewP != 3 || !reflect.DeepEqual(rec.Failed, []int{1}) ||
		!reflect.DeepEqual(rec.Survivors, []int{0, 2, 3}) {
		t.Fatalf("recovery record wrong: %+v", rec)
	}
	if rec.AbortEpoch != 3 || rec.ResumeEpoch != 3 {
		t.Fatalf("rollback points wrong: abort %d resume %d", rec.AbortEpoch, rec.ResumeEpoch)
	}
	if rec.ReshardBytes == 0 || rec.ReshardBytes != rec.PredictedReshardBytes {
		t.Fatalf("reshard meter %d != prediction %d", rec.ReshardBytes, rec.PredictedReshardBytes)
	}
	if el.FinalP != 3 || !reflect.DeepEqual(el.FinalSurvivors, []int{0, 2, 3}) {
		t.Fatalf("final world wrong: P=%d survivors=%v", el.FinalP, el.FinalSurvivors)
	}
	// The shrunken world must keep training the same model: compare with
	// an uninterrupted run (different P changes float reduction order, so
	// tolerance, not equality).
	straight := Train(4, hw.A6000(), prob, opts, 6)
	if d := math.Abs(el.FinalLoss() - straight.FinalLoss()); d > 1e-3 {
		t.Fatalf("post-recovery loss %v vs straight %v (|d|=%g)", el.FinalLoss(), straight.FinalLoss(), d)
	}
	for _, es := range el.Epochs {
		if es.Time <= 0 {
			t.Fatalf("epoch missing makespan: %+v", el.Epochs)
		}
	}
	if rec.SimTime <= 0 {
		t.Fatal("recovery carries no simulated time")
	}
}

func TestElasticDoubleCrash(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	opts := testOpts([]int{12, 10, 6}, 0)
	el := TrainElastic(4, hw.A6000(), prob, opts, 6,
		elasticOpts(t, "crash@rank1:epoch2,crash@rank3:epoch4"))
	if len(el.Recoveries) != 2 {
		t.Fatalf("want two recoveries, got %+v", el.Recoveries)
	}
	if el.FinalP != 2 || !reflect.DeepEqual(el.FinalSurvivors, []int{0, 2}) {
		t.Fatalf("final world wrong: P=%d survivors=%v", el.FinalP, el.FinalSurvivors)
	}
	for i, rec := range el.Recoveries {
		if rec.ReshardBytes != rec.PredictedReshardBytes {
			t.Fatalf("recovery %d: meter %d != prediction %d", i, rec.ReshardBytes, rec.PredictedReshardBytes)
		}
	}
	if !(el.FinalLoss() < el.Epochs[0].Loss) {
		t.Fatalf("loss did not improve: %v -> %v", el.Epochs[0].Loss, el.FinalLoss())
	}
}

func TestElasticSimultaneousCrashes(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	opts := testOpts([]int{12, 10, 6}, 0)
	el := TrainElastic(8, hw.A6000(), prob, opts, 4,
		elasticOpts(t, "crash@rank1:epoch1,crash@rank3:epoch1,crash@rank5:epoch1,crash@rank6:epoch1"))
	if len(el.Recoveries) != 1 {
		t.Fatalf("want one recovery for simultaneous crashes, got %+v", el.Recoveries)
	}
	rec := el.Recoveries[0]
	if rec.OldP != 8 || rec.NewP != 4 || !reflect.DeepEqual(rec.Survivors, []int{0, 2, 4, 7}) {
		t.Fatalf("recovery record wrong: %+v", rec)
	}
	if rec.ReshardBytes != rec.PredictedReshardBytes {
		t.Fatalf("meter %d != prediction %d", rec.ReshardBytes, rec.PredictedReshardBytes)
	}
}

func TestElasticDropAbsorbedWithoutRecovery(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	opts := testOpts([]int{12, 10, 6}, 0)
	clean := TrainElastic(4, hw.A6000(), prob, opts, 3, ElasticOptions{})
	dropped := TrainElastic(4, hw.A6000(), prob, opts, 3, elasticOpts(t, "drop@rank2:epoch1:n2"))
	if len(dropped.Recoveries) != 0 {
		t.Fatalf("retryable drop forced a recovery: %+v", dropped.Recoveries)
	}
	// Retries change simulated time but never the arithmetic.
	for ep := range clean.Epochs {
		if clean.Epochs[ep].Loss != dropped.Epochs[ep].Loss {
			t.Fatalf("epoch %d: dropped-round loss %v != clean %v", ep,
				dropped.Epochs[ep].Loss, clean.Epochs[ep].Loss)
		}
	}
	if dropped.Epochs[1].Time <= clean.Epochs[1].Time {
		t.Fatal("retried epoch charged no extra simulated time")
	}
}

func TestElasticFlipCaughtByCRC(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	opts := testOpts([]int{12, 10, 6}, 0)
	clean := TrainElastic(4, hw.A6000(), prob, opts, 3, ElasticOptions{})
	flipped := TrainElastic(4, hw.A6000(), prob, opts, 3, elasticOpts(t, "flip@rank0:epoch1"))
	if len(flipped.Recoveries) != 0 {
		t.Fatalf("CRC-retried flip forced a recovery: %+v", flipped.Recoveries)
	}
	for ep := range clean.Epochs {
		if clean.Epochs[ep].Loss != flipped.Epochs[ep].Loss {
			t.Fatalf("epoch %d: flip leaked through CRC: %v != %v", ep,
				flipped.Epochs[ep].Loss, clean.Epochs[ep].Loss)
		}
	}
}

func TestElasticDeterminism(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	opts := testOpts([]int{12, 10, 6}, 0)
	eo := func() ElasticOptions {
		return ElasticOptions{
			Schedule:  mustSched(t, "crash@rank2:epoch2,slow@rank0:1.5x,drop@rank1:epoch1"),
			FaultSeed: 1337,
		}
	}
	a := TrainElastic(4, hw.A6000(), prob, opts, 5, eo())
	b := TrainElastic(4, hw.A6000(), prob, opts, 5, eo())
	if !reflect.DeepEqual(a.Recoveries, b.Recoveries) {
		t.Fatalf("recovery histories differ:\n%+v\n%+v", a.Recoveries, b.Recoveries)
	}
	if !reflect.DeepEqual(a.Epochs, b.Epochs) {
		t.Fatalf("epoch stats differ:\n%+v\n%+v", a.Epochs, b.Epochs)
	}
	if tensor.MaxAbsDiff(a.Logits, b.Logits) != 0 {
		t.Fatal("logits differ between identical seeded runs")
	}
}

func TestElasticCheckpointCadence(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	opts := testOpts([]int{12, 10, 6}, 0)
	eo := elasticOpts(t, "crash@rank1:epoch4")
	eo.CheckpointEvery = 3
	el := TrainElastic(4, hw.A6000(), prob, opts, 6, eo)
	if len(el.Recoveries) != 1 {
		t.Fatalf("want one recovery, got %+v", el.Recoveries)
	}
	// Crash at epoch 4, checkpoints at epoch boundaries 3, 6: rollback
	// must land on 3, replaying epoch 3's completed work.
	if el.Recoveries[0].ResumeEpoch != 3 || el.Recoveries[0].AbortEpoch != 4 {
		t.Fatalf("cadence-3 rollback wrong: %+v", el.Recoveries[0])
	}
}

func mustSched(t *testing.T, s string) *fault.Schedule {
	t.Helper()
	sched, err := fault.ParseSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}
