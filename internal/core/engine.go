// Package core implements GNN-RDM, the paper's primary contribution:
// distributed GCN training built on communication-free SpMM and GEMM with
// redistribution of dense matrices between stages (§III), supporting
// every SpMM-first/GEMM-first ordering configuration of Table IV,
// forward-intermediate memoization (§III-C), row-panel adjacency
// replication R_A (§III-E), and model-driven configuration selection
// (§IV-B).
//
// The engine is SPMD: one Engine per simulated device, all executing the
// same sequence of collective operations on the comm fabric. Dense
// activations live in dist.Mat layouts; the adjacency matrix is held as a
// per-device row panel replicated R_A times across the grid of §III-E
// (R_A = P is full replication, the main RDM scheme; R_A = 1 degenerates
// to CAGNET's 1D scheme).
package core

import (
	"fmt"
	"math/rand"
	"os"
	"sync"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/nn"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
	"gnnrdm/internal/topo"
	"gnnrdm/internal/trace"
)

// Problem is the training task: a normalized propagation matrix, input
// features, labels, and an optional training mask. With the default GCN
// normalization D^{-1/2}(A+I)D^{-1/2} of an undirected graph the
// operator is symmetric and A serves both passes; for asymmetric
// operators set ATranspose.
type Problem struct {
	A         *sparse.CSR
	X         *tensor.Dense
	Labels    []int32
	TrainMask []bool
	// LossWeights optionally weights each vertex's loss term
	// (GraphSAINT's λ_v normalization); nil means uniform.
	LossWeights []float32
	// ATranspose holds Aᵀ for asymmetric propagation operators (directed
	// graphs, random-walk normalization D⁻¹(A+I)). The forward pass
	// aggregates with Aᵀ (eq. 1) and the backward pass with A (eq. 3).
	// Leave nil for symmetric operators (GCN normalization), where
	// Aᵀ = A.
	ATranspose *sparse.CSR
}

// fwdOperator returns the forward-aggregation matrix (Aᵀ).
func (p *Problem) fwdOperator() *sparse.CSR {
	if p.ATranspose != nil {
		return p.ATranspose
	}
	return p.A
}

// N returns the vertex count.
func (p *Problem) N() int { return p.A.Rows }

// Options configures an RDM training run.
type Options struct {
	// Dims is f_0..f_L; Dims[0] must equal the feature width.
	Dims []int
	// Config is the SpMM/GEMM ordering (Table IV). Zero value = all
	// SpMM-first.
	Config costmodel.Config
	// RA is the adjacency replication factor (§III-E); 0 means P (full
	// replication, the main RDM scheme). Must divide P.
	RA int
	// Memoize keeps the forward AᵀH^{l-1} products for backward reuse
	// (§III-C). Disabling it is the paper's "N.M." ablation.
	Memoize bool
	// ComputeInputGrad computes G^0, the gradient of the input features
	// (a final output in Fig. 4, included in Table IV's accounting).
	ComputeInputGrad bool
	// LR is the Adam learning rate.
	LR float64
	// Seed controls weight initialization (identical on all devices).
	Seed int64
	// EvalMask, when set, selects the vertices whose prediction accuracy
	// is computed after every epoch (EpochStats.EvalAcc) — the paper's
	// test-accuracy-versus-time instrumentation (Fig. 13).
	EvalMask []bool
	// MaskProvider, when set, turns every aggregation into a masked SpMM
	// over sampled neighbors (§III-F's non-subgraph sampling): given the
	// epoch and a global row range it returns, per row, the permitted
	// column indices (sorted; nil keeps all). Deterministic per-row
	// generation from a shared seed means replicas of a row panel agree
	// without communicating the mask — the paper's shared-seed trick.
	MaskProvider func(epoch, rowLo, rowHi int) [][]int32
	// SAGE switches every layer to the two-weight GraphSAGE form
	// Z^l = AᵀH^{l-1}W_n + H^{l-1}W_s (the paper lists GraphSAGE among
	// the GNN variants RDM applies to). The self term is computed in the
	// vertex-sliced layout and redistributed when the layer's SpMM-side
	// output is feature-sliced.
	SAGE bool
	// Topology, when non-nil, runs the fabric on a hierarchical
	// interconnect (see internal/topo): collectives are routed and
	// priced by topology-aware algorithms and metered per link tier.
	// Nil keeps the flat pre-topology fabric, bit-for-bit. Must cover at
	// least P devices.
	Topology *topo.Topology
	// Tracer, when non-nil, records every kernel, collective, and phase
	// of the run into one trace session (see internal/trace). Train
	// attaches it to the fabric before the devices start.
	Tracer *trace.Tracer
	// TraceLabel names the trace session (default "rdm").
	TraceLabel string
	// Overlap switches Epoch to the dependency-DAG executor
	// (overlap.go): ready ops dispatch concurrently over per-resource
	// device lanes, so a GEMM can run while the NIC drains an
	// all-reduce. Numerics, byte meters, and trace-event inventories are
	// identical to the sequential interpreter — only clocks change
	// (verify.CheckOverlapEquivalence pins all three). Forward-only
	// paths (Forward, RunInference) always run sequentially. The
	// GNNRDM_OVERLAP=1 environment variable forces this on, for CI.
	Overlap bool
	// PinExecutor makes Overlap authoritative, ignoring the
	// GNNRDM_OVERLAP override. Differential harnesses set it so their
	// sequential reference leg stays sequential even when CI forces the
	// overlap executor on everywhere else.
	PinExecutor bool
	// Live declares the feature matrix row-sparse with this many live
	// (nonzero) rows: the compiler marks the redistributions whose
	// operands inherit X's row support, and the executor runs them
	// through the two-round sparse exchange (dist.RedistributeSparse)
	// over the live set scanned from the actual features. 0 (or >= N)
	// means dense. The planner's live set is dist.GenRows(SparseSeed, N,
	// Live); feed features generated from the same identity when
	// meter-equals-model matters (verify.CheckSparseMatchesModel).
	Live int
	// SparseSeed selects the planner's assumed live row set (see Live).
	SparseSeed int64
}

// overlapEnv reads the GNNRDM_OVERLAP force flag once per process.
var overlapEnv = sync.OnceValue(func() bool { return os.Getenv("GNNRDM_OVERLAP") == "1" })

// Layers returns L.
func (o Options) Layers() int { return len(o.Dims) - 1 }

func (o Options) withDefaults(p int) Options {
	if o.RA == 0 {
		o.RA = p
	}
	if len(o.Config.Fwd) == 0 {
		o.Config = costmodel.ConfigFromID(0, o.Layers())
	}
	if o.LR == 0 {
		o.LR = 0.01
	}
	if overlapEnv() && !o.PinExecutor {
		o.Overlap = true
	}
	return o
}

func (o Options) validate(p int, prob *Problem) {
	if len(o.Dims) < 2 {
		panic("core: need at least one layer")
	}
	if o.Dims[0] != prob.X.Cols {
		panic(fmt.Sprintf("core: Dims[0]=%d != feature width %d", o.Dims[0], prob.X.Cols))
	}
	if o.Config.Layers() != o.Layers() {
		panic("core: config layer count mismatch")
	}
	if o.RA < 1 || o.RA > p || p%o.RA != 0 {
		panic(fmt.Sprintf("core: RA=%d invalid for P=%d", o.RA, p))
	}
	if prob.A.Rows != prob.A.Cols || prob.A.Rows != prob.X.Rows {
		panic("core: adjacency/features shape mismatch")
	}
	if len(prob.Labels) != prob.X.Rows {
		panic("core: labels length mismatch")
	}
}

// Engine is one device's view of an RDM training run.
type Engine struct {
	dev  *comm.Device
	prob *Problem
	opts Options

	gridL    dist.Layout
	colGroup []int
	// panelFwd/panelBwd are this device's row panels of the forward (Aᵀ)
	// and backward (A) operators; the same object when the operator is
	// symmetric.
	panelFwd, panelBwd       *sparse.CSR
	panelFwdNNZ, panelBwdNNZ int64

	weights []*tensor.Dense
	adam    *nn.Adam

	// gatherBuf is the persistent destination of the column-group
	// feature gather (AllGatherFlat) and gradBufs the per-weight
	// destinations of the gradient all-reduces (AllReduceSumInto):
	// steady-state epochs reuse them, so the hot comm path allocates
	// nothing per round. Safe without locks — every op touching a
	// buffer classifies to the same overlap lane (KSpMM to the column
	// group's link resource, KAllReduceGrad to the world's), so uses
	// are serialized even under the concurrent executor.
	gatherBuf []float32
	gradBufs  [][]float32

	// sched is the epoch's compiled, optimized op schedule (internal/plan):
	// compiled once in NewEngine and interpreted every epoch. Shapes in the
	// schedule are advisory — the executor reads live matrix shapes, so a
	// SetProblem swap (GraphSAINT subgraphs) reuses the same schedule.
	sched *plan.Schedule
	// dag is sched's dependency DAG, built on first overlap epoch
	// (overlap.go).
	dag *plan.DAG

	// live is the sorted live row set of X (value scan), consumed by the
	// schedule's sparse redistributions; nil for a dense schedule.
	live []int32

	// epochMask is the current epoch's sampled-neighbor mask for this
	// device's panel rows (nil when sampling is off).
	epochMask [][]int32
	epoch     int

	// lastLogits is this device's horizontal tile of the most recent
	// forward pass's output (pre-loss), for evaluation.
	lastLogits *dist.Mat
	lastLoss   float64

	// infRegs is the serving path's retained register file (inference.go):
	// activations persist across RunInference calls so a staleness policy
	// can re-run only the sections from the first stale layer.
	infRegs []*dist.Mat
	infInit bool
}

// NewEngine builds the device-local state: the adjacency row panel and
// replicated, identically-initialized weights.
func NewEngine(dev *comm.Device, prob *Problem, opts Options) *Engine {
	p := dev.P()
	opts = opts.withDefaults(p)
	opts.validate(p, prob)
	e := &Engine{dev: dev, prob: prob, opts: opts}
	e.gridL = dist.G(opts.RA).Normalize(p)
	// Column group: ranks sharing my grid column index (same feature
	// slice), holding between them every row panel. Ascending rank order
	// equals ascending panel order.
	j := dev.Rank % opts.RA
	for r := j; r < p; r += opts.RA {
		e.colGroup = append(e.colGroup, r)
	}
	e.extractPanels()

	rng := rand.New(rand.NewSource(opts.Seed))
	for l := 1; l <= opts.Layers(); l++ {
		w := tensor.NewDense(opts.Dims[l-1], opts.Dims[l])
		w.GlorotInit(rng)
		e.weights = append(e.weights, w)
		if opts.SAGE {
			ws := tensor.NewDense(opts.Dims[l-1], opts.Dims[l])
			ws.GlorotInit(rng)
			e.weights = append(e.weights, ws)
		}
	}
	e.adam = nn.NewAdam(opts.LR, e.weights)
	e.gradBufs = make([][]float32, len(e.weights))
	e.sched = plan.Compile(plan.Spec{
		N: prob.N(), Dims: opts.Dims, Config: opts.Config,
		P: p, RA: opts.RA, SAGE: opts.SAGE, Memoize: opts.Memoize,
		InputGrad: opts.ComputeInputGrad,
		Live:      opts.Live, SparseSeed: opts.SparseSeed,
	}).Optimize()
	e.scanLive()
	dev.TraceSetConfig(opts.Config.String())
	return e
}

// scanLive refreshes the executor's live row set for sparse
// redistributions: the value-based scan of the actual features, so the
// exchange ships exactly the rows that are nonzero — the planner's
// GenRows assumption is a pricing identity, not a correctness
// requirement.
func (e *Engine) scanLive() {
	e.live = nil
	if e.sched.Live > 0 {
		e.live = dist.LiveRows(e.prob.X)
	}
}

// Schedule returns the compiled, optimized op schedule this engine
// interprets each epoch.
func (e *Engine) Schedule() *plan.Schedule { return e.sched }

// Weights exposes the (replicated) weight matrices.
func (e *Engine) Weights() []*tensor.Dense { return e.weights }

// LastLogits returns this device's horizontal logits tile from the most
// recent epoch.
func (e *Engine) LastLogits() *dist.Mat { return e.lastLogits }

// LastLoss returns the most recent epoch's training loss.
func (e *Engine) LastLoss() float64 { return e.lastLoss }

// extractPanels slices this device's row panels out of the problem's
// operators.
func (e *Engine) extractPanels() {
	rlo, rhi := dist.RowRange(e.gridL, e.dev.P(), e.dev.Rank, e.prob.N())
	e.panelBwd = e.prob.A.RowPanel(rlo, rhi)
	e.panelBwdNNZ = e.panelBwd.NNZ()
	if e.prob.ATranspose != nil {
		if e.opts.MaskProvider != nil {
			panic("core: MaskProvider requires a symmetric operator")
		}
		e.panelFwd = e.prob.fwdOperator().RowPanel(rlo, rhi)
		e.panelFwdNNZ = e.panelFwd.NNZ()
	} else {
		e.panelFwd, e.panelFwdNNZ = e.panelBwd, e.panelBwdNNZ
	}
}

// spmm computes Aᵀ·m (forward) or A·m (backward) for a grid-distributed
// dense matrix m, returning a grid-distributed result. With R_A = P
// (vertical layout) this is communication-free (Fig. 2a); with R_A < P
// each column group gathers its feature slice, moving (P/R_A - 1)·N·w
// elements (§III-E).
func (e *Engine) spmm(dev *comm.Device, m *dist.Mat, forward bool) *dist.Mat {
	if m.Layout != e.gridL {
		panic(fmt.Sprintf("core: spmm input layout %v, want %v", m.Layout, e.gridL))
	}
	panel, nnz := e.panelBwd, e.panelBwdNNZ
	if forward {
		panel, nnz = e.panelFwd, e.panelFwdNNZ
	}
	w := m.Local.Cols
	var full *tensor.Dense
	if len(e.colGroup) == 1 {
		full = m.Local
	} else {
		// Flat gather straight into the persistent buffer: each member's
		// bytes are written once at their final offset, skipping the
		// per-member private copies AllGather would hand out. full wraps
		// the buffer (no copy); it is only read within this call.
		e.gatherBuf = dev.AllGatherFlat(e.colGroup, m.Local.Data, e.gatherBuf)
		full = tensor.FromRowMajor(m.GlobalRows, w, e.gatherBuf)
		dev.ChargeMem(full.Bytes())
	}
	var out *tensor.Dense
	if e.epochMask != nil {
		out = panel.MaskedSpMM(full, e.epochMask)
	} else {
		out = panel.SpMM(full)
	}
	dev.ChargeSpMM(nnz, w)
	return dist.FromLocal(dev, e.gridL, m.GlobalRows, m.GlobalCols, out)
}

// gemm computes m · W (or m · Wᵀ) for a horizontal m with replicated W:
// communication-free (Fig. 2b).
func (e *Engine) gemm(dev *comm.Device, m *dist.Mat, w *tensor.Dense, transW bool) *dist.Mat {
	if m.Layout != dist.H {
		panic("core: gemm input must be horizontal")
	}
	var out *tensor.Dense
	if transW {
		out = tensor.MatMulTB(m.Local, w)
	} else {
		out = tensor.MatMul(m.Local, w)
	}
	dev.ChargeGemm(m.Local.Rows, m.Local.Cols, out.Cols)
	return dist.FromLocal(dev, dist.H, m.GlobalRows, out.Cols, out)
}

// runOps interprets one schedule section's ops in order, tagging trace
// events with each op's plan step ID.
func (e *Engine) runOps(sec *plan.Section, regs []*dist.Mat, grads []*tensor.Dense) {
	for i := range sec.Ops {
		op := &sec.Ops[i]
		e.dev.TraceSetStep(op.Step)
		e.execOp(e.dev, op, regs, grads)
	}
	e.dev.TraceSetStep(0)
}

// runForward interprets the init, per-layer forward, and loss sections,
// reproducing the phase/layer trace structure of the historical
// hand-written forward pass.
func (e *Engine) runForward(regs []*dist.Mat, grads []*tensor.Dense) {
	e.dev.TraceSetDir("fwd")
	e.dev.TraceBeginPhase("forward")
	for i := range e.sched.Sections {
		sec := &e.sched.Sections[i]
		switch sec.Phase {
		case "init":
			// H^0 is free in whatever layouts the schedule asks for: the
			// initial distribution is a data-loading choice (§IV-A1).
			e.runOps(sec, regs, grads)
		case "fwd":
			e.dev.TraceSetLayer(sec.Layer)
			e.dev.TraceBeginPhase("layer")
			e.runOps(sec, regs, grads)
			e.dev.TraceEndPhase()
		case "loss":
			// Loss: vertex-complete logits required, so a vertical final
			// layer pays one last redistribution (§IV-A1).
			e.dev.TraceSetLayer(0)
			e.dev.TraceBeginPhase("loss")
			e.runOps(sec, regs, grads)
			e.dev.TraceEndPhase()
		}
	}
	e.dev.TraceEndPhase()
	e.dev.TraceSetDir("")
}

// runBackward interprets the per-layer backward sections (compiled in
// layer order L..1).
func (e *Engine) runBackward(regs []*dist.Mat, grads []*tensor.Dense) {
	e.dev.TraceSetDir("bwd")
	e.dev.TraceBeginPhase("backward")
	for i := range e.sched.Sections {
		sec := &e.sched.Sections[i]
		if sec.Phase != "bwd" {
			continue
		}
		e.dev.TraceSetLayer(sec.Layer)
		e.dev.TraceBeginPhase("layer")
		e.runOps(sec, regs, grads)
		e.dev.TraceEndPhase()
	}
	e.dev.TraceSetLayer(0)
	e.dev.TraceEndPhase()
	e.dev.TraceSetDir("")
}

// execOp interprets one schedule op on dev — the engine's own device in
// sequential mode, one of its resource lanes under the overlap executor
// (charges and collectives then land on that lane's clock and trace
// track). Global shapes come from the live matrices (not the schedule's
// compile-time fields), so the same schedule drives problems of any
// vertex count; only weight shapes — fixed by Dims — are read from the
// op.
func (e *Engine) execOp(dev *comm.Device, op *plan.Op, regs []*dist.Mat, grads []*tensor.Dense) {
	switch op.Kind {
	case plan.KInput:
		regs[op.Dst] = dist.Distribute(dev, op.Layout, e.prob.X)
	case plan.KRedist:
		m := regs[op.A]
		if m.Dev != dev {
			m = m.WithDevice(dev)
		}
		if op.Sparse {
			regs[op.Dst] = m.RedistributeSparse(op.To, e.live)
		} else {
			regs[op.Dst] = m.Redistribute(op.To)
		}
	case plan.KSpMM:
		regs[op.Dst] = e.spmm(dev, regs[op.A], op.Forward)
	case plan.KGEMM:
		regs[op.Dst] = e.gemm(dev, regs[op.A], e.weights[op.Weight], op.TransW)
	case plan.KGradGEMM:
		// Local vertex-sliced partial of an (·)ᵀ(·) weight-gradient
		// product; the partials differ per device until KAllReduceGrad
		// sums them, so the R layout here is a forward declaration.
		a, b := regs[op.A], regs[op.B]
		partial := tensor.MatMulTA(a.Local, b.Local)
		dev.ChargeGemm(a.Local.Cols, a.Local.Rows, b.Local.Cols)
		regs[op.Dst] = dist.FromLocal(dev, dist.R, partial.Rows, partial.Cols, partial)
	case plan.KAllReduceGrad:
		// Reduce into this weight's persistent gradient buffer; the
		// result is consumed by the update before the next epoch's
		// reduce rewrites it.
		buf := e.gradBufs[op.Weight]
		if len(buf) != op.Rows*op.Cols {
			buf = make([]float32, op.Rows*op.Cols)
			e.gradBufs[op.Weight] = buf
		}
		dev.AllReduceSumInto(dev.World(), regs[op.A].Local.Data, buf)
		grads[op.Weight] = tensor.FromRowMajor(op.Rows, op.Cols, buf)
	case plan.KReLU:
		regs[op.A].Local.ReLU()
		dev.ChargeMem(regs[op.A].Local.Bytes())
	case plan.KReLUGrad:
		e.applyReLUMask(dev, regs[op.A], regs[op.B])
	case plan.KAdd:
		regs[op.A].Local.Add(regs[op.B].Local)
		dev.ChargeMem(regs[op.A].Local.Bytes())
	case plan.KMemoize, plan.KReuse:
		regs[op.Dst] = regs[op.A]
	case plan.KLoss:
		logits := regs[op.A]
		e.lastLogits = logits
		p := dev.P()
		rlo, rhi := dist.RowRange(dist.H, p, dev.Rank, e.prob.N())
		var mask []bool
		if e.prob.TrainMask != nil {
			mask = e.prob.TrainMask[rlo:rhi]
		}
		var lw []float32
		if e.prob.LossWeights != nil {
			lw = e.prob.LossWeights[rlo:rhi]
		}
		lossSum, grad, wtot := nn.WeightedSoftmaxCrossEntropySum(logits.Local, e.prob.Labels[rlo:rhi], mask, lw)
		dev.ChargeMem(2 * logits.Local.Bytes())
		tot := dev.AllReduceSum(dev.World(), []float32{float32(lossSum), float32(wtot)})
		totalCount := float64(tot[1])
		if totalCount > 0 {
			grad.Scale(float32(1.0 / totalCount))
			e.lastLoss = float64(tot[0]) / totalCount
		} else {
			e.lastLoss = 0
		}
		regs[op.Dst] = dist.FromLocal(dev, dist.H, e.prob.N(), e.opts.Dims[e.opts.Layers()], grad)
	case plan.KMemWrite:
		dev.ChargeMem(regs[op.A].Local.Bytes())
	case plan.KUpdate:
		e.adam.Step(e.weights, grads)
		var wBytes int64
		for _, w := range e.weights {
			wBytes += w.Bytes()
		}
		dev.ChargeMem(4 * wBytes)
	default:
		panic(fmt.Sprintf("core: unknown schedule op kind %v", op.Kind))
	}
}

// applyReLUMask multiplies u element-wise by σ'(Z^{l-1}) = [H^{l-1} > 0],
// with src a copy of H^{l-1}. When src already lives in u's layout the
// mask is applied locally; otherwise a byte-packed mask is redistributed
// (¼ of the elements — a mechanical cost the paper's model omits; see
// EXPERIMENTS.md). The planner encodes the choice in the op's From/To
// layouts; the decision re-derives here from the live matrices.
func (e *Engine) applyReLUMask(dev *comm.Device, u, src *dist.Mat) {
	if src.Layout != u.Layout {
		from := src
		mask := tensor.NewDense(from.Local.Rows, from.Local.Cols)
		for i, v := range from.Local.Data {
			if v > 0 {
				mask.Data[i] = 1
			}
		}
		dev.ChargeMem(mask.Bytes())
		src = dist.FromLocal(dev, from.Layout, from.GlobalRows, from.GlobalCols, mask).
			RedistributeMask(u.Layout)
	}
	for i, v := range src.Local.Data {
		if v <= 0 {
			u.Local.Data[i] = 0
		}
	}
	dev.ChargeMem(u.Local.Bytes())
}

// Epoch runs one full training epoch (forward, loss, backward, Adam
// update) and returns the training loss.
func (e *Engine) Epoch() float64 {
	if e.opts.MaskProvider != nil {
		rlo, rhi := dist.RowRange(e.gridL, e.dev.P(), e.dev.Rank, e.prob.N())
		e.epochMask = e.opts.MaskProvider(e.epoch, rlo, rhi)
	}
	e.dev.TraceSetEpoch(e.epoch)
	e.dev.TraceBeginPhase("epoch")
	defer e.dev.TraceEndPhase()
	e.epoch++
	regs := make([]*dist.Mat, e.sched.NumRegs)
	grads := make([]*tensor.Dense, len(e.weights))
	if e.opts.Overlap {
		e.runOverlap(regs, grads)
		return e.lastLoss
	}
	e.runForward(regs, grads)
	e.runBackward(regs, grads)
	e.dev.TraceBeginPhase("update")
	for i := range e.sched.Sections {
		if sec := &e.sched.Sections[i]; sec.Phase == "update" {
			e.runOps(sec, regs, grads)
		}
	}
	e.dev.TraceEndPhase()
	return e.lastLoss
}

// EvalAccuracy computes accuracy over the masked vertices using the most
// recent epoch's logits, reduced across devices.
func (e *Engine) EvalAccuracy(mask []bool) float64 {
	if e.lastLogits == nil {
		return 0
	}
	rlo, rhi := dist.RowRange(dist.H, e.dev.P(), e.dev.Rank, e.prob.N())
	var m []bool
	if mask != nil {
		m = mask[rlo:rhi]
	}
	correct, total := localAccuracyCounts(e.lastLogits.Local, e.prob.Labels[rlo:rhi], m)
	tot := e.dev.AllReduceSum(e.dev.World(), []float32{float32(correct), float32(total)})
	if tot[1] == 0 {
		return 0
	}
	return float64(tot[0]) / float64(tot[1])
}

func localAccuracyCounts(logits *tensor.Dense, labels []int32, mask []bool) (correct, total int) {
	for i := 0; i < logits.Rows; i++ {
		if (mask != nil && !mask[i]) || labels[i] < 0 {
			continue
		}
		total++
		row := logits.Row(i)
		best := 0
		for j := 1; j < len(row); j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		if int32(best) == labels[i] {
			correct++
		}
	}
	return correct, total
}

// SetProblem swaps the training problem (e.g. a new GraphSAINT
// subgraph), re-extracting this device's adjacency panel while keeping
// the optimizer state and weights. Dims[0] must match the new feature
// width.
func (e *Engine) SetProblem(prob *Problem) {
	if prob.X.Cols != e.opts.Dims[0] {
		panic("core: SetProblem feature width mismatch")
	}
	e.prob = prob
	e.extractPanels()
	e.scanLive()
	e.lastLogits = nil
}

// Forward runs inference only (no loss/backward) and returns this
// device's horizontal logits tile.
func (e *Engine) Forward() *dist.Mat {
	regs := make([]*dist.Mat, e.sched.NumRegs)
	grads := make([]*tensor.Dense, len(e.weights))
	e.runForward(regs, grads)
	return e.lastLogits
}
