package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/graph"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/sparse"
)

// FuzzReadCheckpoint checks the checkpoint reader never panics or
// over-allocates on arbitrary input, and that accepted checkpoints are
// structurally sound.
func FuzzReadCheckpoint(f *testing.F) {
	var seed bytes.Buffer
	// Valid small checkpoint as corpus seed.
	fab := comm.NewFabric(1, hw.A6000())
	eng := NewEngine(fab.Device(0), fuzzProblem(), testOpts([]int{4, 3, 2}, 0))
	_ = eng.Snapshot().Write(&seed)
	f.Add(seed.Bytes())
	f.Add([]byte{})
	// Classified failure modes as seeds: truncation, bit rot past the
	// header (CRC-only catch), and a foreign version word.
	raw := seed.Bytes()
	f.Add(raw[:len(raw)-4])
	rot := append([]byte(nil), raw...)
	rot[len(rot)/2] ^= 0x10
	f.Add(rot)
	ver := append([]byte(nil), raw...)
	ver[8] = 99
	f.Add(ver)
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCheckpointCorrupt) && !errors.Is(err, ErrCheckpointTruncated) &&
				!errors.Is(err, ErrCheckpointVersion) {
				t.Fatalf("unclassified checkpoint error: %v", err)
			}
			return
		}
		if len(cp.Weights) != len(cp.AdamM) || len(cp.Weights) != len(cp.AdamV) {
			t.Fatal("uneven weight/moment groups accepted")
		}
		for i := range cp.Weights {
			if cp.Weights[i].Rows*cp.Weights[i].Cols != len(cp.Weights[i].Data) {
				t.Fatal("inconsistent matrix accepted")
			}
		}
	})
}

func fuzzProblem() *Problem {
	rng := rand.New(rand.NewSource(1))
	adj, labels := graph.PlantedPartition(rng, 12, 36, 2, 0.7)
	return &Problem{
		A:      sparse.GCNNormalize(adj),
		X:      graph.SynthesizeFeatures(rng, labels, 2, 4, 0.8),
		Labels: labels,
	}
}
