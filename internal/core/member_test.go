package core

import (
	"errors"
	"reflect"
	"testing"

	"gnnrdm/internal/fault"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/member"
	"gnnrdm/internal/tensor"
)

// weightsEqual reports bit-equality of two weight stacks.
func weightsEqual(a, b []*tensor.Dense) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if tensor.MaxAbsDiff(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// TestElasticGossipMatchesCoordinator is the tentpole equivalence
// criterion: under the same crash schedule, gossip-triggered
// re-formation reaches the identical world — same survivors, same
// reshard traffic, final weights bit-equal to the coordinator-driven
// path. Only detection latency and control-plane traffic differ from
// zero.
func TestElasticGossipMatchesCoordinator(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	opts := testOpts([]int{12, 10, 6}, 0)
	coord := TrainElastic(4, hw.A6000(), prob, opts, 6, elasticOpts(t, "crash@rank1:epoch3"))
	eo := elasticOpts(t, "crash@rank1:epoch3")
	eo.Membership = &member.Config{}
	gossip := TrainElastic(4, hw.A6000(), prob, opts, 6, eo)

	if gossip.FinalP != coord.FinalP || !reflect.DeepEqual(gossip.FinalSurvivors, coord.FinalSurvivors) {
		t.Fatalf("worlds diverge: gossip P=%d %v, coordinator P=%d %v",
			gossip.FinalP, gossip.FinalSurvivors, coord.FinalP, coord.FinalSurvivors)
	}
	if !weightsEqual(gossip.Weights, coord.Weights) {
		t.Fatal("final weights not bit-equal across detection paths")
	}
	if tensor.MaxAbsDiff(gossip.Logits, coord.Logits) != 0 {
		t.Fatal("final logits not bit-equal across detection paths")
	}
	if len(gossip.Recoveries) != 1 || len(coord.Recoveries) != 1 {
		t.Fatalf("want one recovery each, got %d and %d", len(gossip.Recoveries), len(coord.Recoveries))
	}
	g, c := gossip.Recoveries[0], coord.Recoveries[0]
	if g.ReshardBytes != c.ReshardBytes || g.PredictedReshardBytes != c.PredictedReshardBytes {
		t.Fatalf("reshard traffic diverges: gossip %d/%d, coordinator %d/%d",
			g.ReshardBytes, g.PredictedReshardBytes, c.ReshardBytes, c.PredictedReshardBytes)
	}
	if !reflect.DeepEqual(g.Failed, c.Failed) || !reflect.DeepEqual(g.Survivors, c.Survivors) {
		t.Fatalf("membership outcome diverges: %+v vs %+v", g, c)
	}

	if c.Detection != nil || c.ControlBytes != 0 {
		t.Fatal("coordinator path charged control-plane traffic")
	}
	if g.Detection == nil {
		t.Fatal("gossip recovery carries no detection report")
	}
	if !g.Detection.Converged {
		t.Fatal("detection episode did not converge")
	}
	if g.ControlBytes == 0 || g.ControlBytes != g.PredictedControlBytes {
		t.Fatalf("control-plane meter %d != closed-form prediction %d", g.ControlBytes, g.PredictedControlBytes)
	}
	if g.ControlBytes != g.Detection.Bytes {
		t.Fatalf("Recovery.ControlBytes %d != Detection.Bytes %d", g.ControlBytes, g.Detection.Bytes)
	}
	// Detection latency is charged to the survivors' synchronized clocks.
	if got, want := g.SimTime, c.SimTime+g.Detection.Latency; got != want {
		t.Fatalf("SimTime %v, want coordinator %v + detection latency %v = %v",
			got, c.SimTime, g.Detection.Latency, want)
	}
	if g.Detection.Latency <= 0 {
		t.Fatal("detection episode charged no simulated latency")
	}
}

// TestElasticGossipDeterministic: the same crash schedule and seed
// reproduce the identical membership event log, control-plane census,
// and bit-equal weights.
func TestElasticGossipDeterministic(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	opts := testOpts([]int{12, 10, 6}, 0)
	run := func() *ElasticResult {
		eo := elasticOpts(t, "crash@rank1:epoch2,crash@rank3:epoch4")
		eo.Membership = &member.Config{Seed: 5}
		return TrainElastic(4, hw.A6000(), prob, opts, 6, eo)
	}
	a, b := run(), run()
	if len(a.Recoveries) != 2 {
		t.Fatalf("want two recoveries, got %d", len(a.Recoveries))
	}
	for i := range a.Recoveries {
		ra, rb := a.Recoveries[i], b.Recoveries[i]
		if ra.Detection.EventLog() != rb.Detection.EventLog() {
			t.Fatalf("recovery %d: event logs differ:\n%s\n%s", i,
				ra.Detection.EventLog(), rb.Detection.EventLog())
		}
		if ra.ControlBytes != rb.ControlBytes || ra.SimTime != rb.SimTime {
			t.Fatalf("recovery %d: census diverges: %d/%v vs %d/%v", i,
				ra.ControlBytes, ra.SimTime, rb.ControlBytes, rb.SimTime)
		}
	}
	// Distinct recoveries run distinct episodes (seed composes with the
	// world index), yet each is individually reproducible.
	if a.Recoveries[0].Detection.EventLog() == a.Recoveries[1].Detection.EventLog() &&
		a.Recoveries[0].ControlBytes == a.Recoveries[1].ControlBytes {
		t.Fatal("both recoveries ran byte-identical episodes; per-world seed derivation is inert")
	}
	if !weightsEqual(a.Weights, b.Weights) {
		t.Fatal("weights not bit-equal across identical gossip runs")
	}
}

// TestElasticScheduleRankErrorTyped: a schedule addressing ranks outside
// the world surfaces fault.RankError at TrainElastic entry instead of
// being silently inert.
func TestElasticScheduleRankErrorTyped(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	opts := testOpts([]int{12, 10, 6}, 0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("TrainElastic accepted a schedule addressing rank 9 of a 4-rank world")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value %v is not an error", r)
		}
		var re *fault.RankError
		if !errors.As(err, &re) {
			t.Fatalf("panic error %v is not a *fault.RankError", err)
		}
		if re.Rank != 9 || re.P != 4 {
			t.Fatalf("RankError{Rank: %d, P: %d}, want {9, 4}", re.Rank, re.P)
		}
	}()
	TrainElastic(4, hw.A6000(), prob, opts, 4, elasticOpts(t, "crash@rank9:epoch1"))
}
