package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/tensor"
)

func TestCheckpointRoundTripResume(t *testing.T) {
	prob := testProblem(t, 48, 12, 6)
	dims := []int{12, 10, 6}
	opts := testOpts(dims, 10)

	// Train 6 epochs straight through.
	straight := Train(2, hw.A6000(), prob, opts, 6)

	// Train 3 epochs, checkpoint through the wire format, resume 3 more.
	var buf bytes.Buffer
	fab := comm.NewFabric(2, hw.A6000())
	fab.Run(func(d *comm.Device) {
		eng := NewEngine(d, prob, opts)
		for i := 0; i < 3; i++ {
			eng.Epoch()
		}
		if d.Rank == 0 {
			if err := eng.Snapshot().Write(&buf); err != nil {
				t.Error(err)
			}
		}
	})
	cp, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Step != 3 || !equalIntsCP(cp.Dims, dims) {
		t.Fatalf("checkpoint metadata: step=%d dims=%v", cp.Step, cp.Dims)
	}

	var resumedLoss float64
	var resumedW *tensor.Dense
	fab2 := comm.NewFabric(2, hw.A6000())
	fab2.Run(func(d *comm.Device) {
		eng := NewEngine(d, prob, opts)
		if err := eng.Restore(cp); err != nil {
			t.Error(err)
			return
		}
		var loss float64
		for i := 0; i < 3; i++ {
			loss = eng.Epoch()
		}
		if d.Rank == 0 {
			resumedLoss = loss
			resumedW = eng.Weights()[0]
		}
	})
	if math.Abs(resumedLoss-straight.FinalLoss()) > 1e-6 {
		t.Fatalf("resumed loss %v != straight %v", resumedLoss, straight.FinalLoss())
	}
	if d := tensor.MaxAbsDiff(resumedW, straight.Weights[0]); d > 1e-6 {
		t.Fatalf("resumed weights diff %v", d)
	}
}

func TestCheckpointValidation(t *testing.T) {
	prob := testProblem(t, 32, 8, 4)
	fab := comm.NewFabric(1, hw.A6000())
	eng := NewEngine(fab.Device(0), prob, testOpts([]int{8, 6, 4}, 0))
	cp := eng.Snapshot()

	other := NewEngine(fab.Device(0), prob, testOpts([]int{8, 5, 4}, 0))
	if err := other.Restore(cp); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	sage := testOpts([]int{8, 6, 4}, 0)
	sage.SAGE = true
	if err := NewEngine(fab.Device(0), prob, sage).Restore(cp); err == nil {
		t.Fatal("SAGE mismatch accepted")
	}

	// Corrupted stream: every failure mode maps to its typed sentinel.
	var buf bytes.Buffer
	if err := cp.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] ^= 0xFF
	if _, err := ReadCheckpoint(bytes.NewReader(raw)); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCheckpointCorrupt", err)
	}
	raw[0] ^= 0xFF
	if _, err := ReadCheckpoint(bytes.NewReader(raw[:len(raw)/3])); !errors.Is(err, ErrCheckpointTruncated) {
		t.Fatalf("truncated checkpoint: got %v, want ErrCheckpointTruncated", err)
	}
	// Stream cut inside the CRC trailer itself.
	if _, err := ReadCheckpoint(bytes.NewReader(raw[:len(raw)-4])); !errors.Is(err, ErrCheckpointTruncated) {
		t.Fatalf("cut trailer: got %v, want ErrCheckpointTruncated", err)
	}
	// Foreign version word.
	vbuf := append([]byte(nil), raw...)
	vbuf[8] = 99
	if _, err := ReadCheckpoint(bytes.NewReader(vbuf)); !errors.Is(err, ErrCheckpointVersion) {
		t.Fatalf("foreign version: got %v, want ErrCheckpointVersion", err)
	}
}

func TestCheckpointCRCDetectsBitRot(t *testing.T) {
	prob := testProblem(t, 32, 8, 4)
	fab := comm.NewFabric(1, hw.A6000())
	eng := NewEngine(fab.Device(0), prob, testOpts([]int{8, 6, 4}, 0))
	eng.Epoch()
	var buf bytes.Buffer
	if err := eng.Snapshot().Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one payload bit well past the header; only the CRC trailer
	// can catch it.
	mid := len(raw) / 2
	raw[mid] ^= 0x10
	if _, err := ReadCheckpoint(bytes.NewReader(raw)); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("bit rot: got %v, want ErrCheckpointCorrupt", err)
	}
	raw[mid] ^= 0x10
	if _, err := ReadCheckpoint(bytes.NewReader(raw)); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
}

func TestCheckpointSAGE(t *testing.T) {
	prob := testProblem(t, 32, 8, 4)
	opts := testOpts([]int{8, 6, 4}, 0)
	opts.SAGE = true
	fab := comm.NewFabric(1, hw.A6000())
	eng := NewEngine(fab.Device(0), prob, opts)
	eng.Epoch()
	var buf bytes.Buffer
	if err := eng.Snapshot().Write(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.SAGE || len(cp.Weights) != 4 {
		t.Fatalf("SAGE checkpoint wrong: sage=%v weights=%d", cp.SAGE, len(cp.Weights))
	}
	eng2 := NewEngine(fab.Device(0), prob, opts)
	if err := eng2.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(eng2.Weights()[3], eng.Weights()[3]) != 0 {
		t.Fatal("SAGE weights not restored")
	}
}

func equalIntsCP(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
