package core

import (
	"fmt"

	"gnnrdm/internal/hw"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/sim"
	"gnnrdm/internal/tensor"
)

// Executor abstracts how a training run executes. The live fabric is
// the oracle: payload-moving devices whose numerics (losses, logits,
// weights) are what every differential suite checks against. The
// discrete-event backend (internal/sim) prices the identical run —
// same clocks, same comm/compute time, same metered bytes, pinned
// bit-exact by verify.CheckSimMatchesFabric — without moving a byte of
// payload, which is what makes P=4096 sweeps interactive. Performance
// studies (rdmbench) choose by name via ExecutorFor; numerics
// consumers stay on the fabric.
type Executor interface {
	// Name is the stable CLI name ("fabric", "sim").
	Name() string
	// Train runs epochs of distributed RDM training. Fabric results
	// carry full numerics; sim results carry timing and traffic only
	// (Loss/EvalAcc zero, empty Logits, nil Weights).
	Train(p int, model *hw.Model, prob *Problem, opts Options, epochs int) *Result
}

// FabricExecutor executes on the live fabric (core.Train).
type FabricExecutor struct{}

// Name implements Executor.
func (FabricExecutor) Name() string { return "fabric" }

// Train implements Executor.
func (FabricExecutor) Train(p int, model *hw.Model, prob *Problem, opts Options, epochs int) *Result {
	return Train(p, model, prob, opts, epochs)
}

// SimExecutor executes on the discrete-event engine. It compiles the
// exact schedule NewEngine would run, prices it with the engine's real
// panel census, and replays TrainResumable's barrier/snapshot protocol,
// so every timing and traffic field of the Result is bit-identical to
// the fabric executor's.
type SimExecutor struct {
	// Cache, when non-nil, shares redistribution censuses across runs
	// of one (P, model, topology) context — a sweep passes one cache
	// per context.
	Cache *plan.PriceCache
}

// Name implements Executor.
func (SimExecutor) Name() string { return "sim" }

// Train implements Executor. Options requesting live numerics
// (EvalMask, MaskProvider) panic: accuracy needs payloads, which the
// sim deliberately never materializes.
func (x SimExecutor) Train(p int, model *hw.Model, prob *Problem, opts Options, epochs int) *Result {
	opts = opts.withDefaults(p)
	opts.validate(p, prob)
	if opts.EvalMask != nil {
		panic("core: SimExecutor cannot evaluate accuracy (EvalMask needs payloads)")
	}
	if opts.MaskProvider != nil {
		panic("core: SimExecutor cannot train with sampled masks (MaskProvider needs payloads)")
	}
	sched := plan.Compile(plan.Spec{
		N: prob.N(), Dims: opts.Dims, Config: opts.Config,
		P: p, RA: opts.RA, SAGE: opts.SAGE, Memoize: opts.Memoize,
		InputGrad: opts.ComputeInputGrad,
	}).Optimize()
	sr := sim.MustRun(sim.Config{
		Sched:  sched,
		Census: PanelCensus(prob, p, opts.RA),
		HW:     model, Topology: opts.Topology,
		Epochs: epochs, Overlap: opts.Overlap,
		EpochBarriers: 2, // TrainResumable's protocol
		Tracer:        opts.Tracer, TraceLabel: opts.TraceLabel,
		Cache: x.Cache,
	})
	res := &Result{}
	prevT := make([]float64, p)
	prevC := make([]float64, p)
	prevK := make([]float64, p)
	var prevB int64
	for ep := 0; ep < epochs; ep++ {
		var es EpochStats
		for r := 0; r < p; r++ {
			es.Time = max(es.Time, sr.EpochClock[ep][r]-prevT[r])
			es.CommTime = max(es.CommTime, sr.EpochComm[ep][r]-prevC[r])
			es.ComputeTime = max(es.ComputeTime, sr.EpochCompute[ep][r]-prevK[r])
		}
		es.CommBytes = sr.EpochBytes[ep] - prevB
		prevB = sr.EpochBytes[ep]
		copy(prevT, sr.EpochClock[ep])
		copy(prevC, sr.EpochComm[ep])
		copy(prevK, sr.EpochCompute[ep])
		res.Epochs = append(res.Epochs, es)
	}
	res.Logits = tensor.NewDense(0, 0)
	return res
}

// ExecutorFor resolves a CLI -engine name. Empty selects the fabric.
func ExecutorFor(name string) (Executor, error) {
	switch name {
	case "", "fabric":
		return FabricExecutor{}, nil
	case "sim":
		return SimExecutor{}, nil
	}
	return nil, fmt.Errorf("core: unknown engine %q (want fabric or sim)", name)
}
