package hw

import (
	"math"
	"testing"
)

func TestGemmTimeScalesLinearly(t *testing.T) {
	m := A6000()
	t1 := m.GemmTime(1000, 100, 100) - m.KernelLaunch
	t2 := m.GemmTime(2000, 100, 100) - m.KernelLaunch
	if math.Abs(t2/t1-2) > 1e-9 {
		t.Fatalf("GemmTime not linear: %v vs %v", t1, t2)
	}
}

func TestSpMMWidthEfficiency(t *testing.T) {
	m := A6000()
	// Per-FMA cost must be higher for narrow operands (reduced reuse).
	narrow := (m.SpMMTime(1_000_000, 8) - m.KernelLaunch) / (1e6 * 8)
	wide := (m.SpMMTime(1_000_000, 512) - m.KernelLaunch) / (1e6 * 512)
	if narrow <= wide {
		t.Fatalf("narrow per-FMA cost %v must exceed wide %v", narrow, wide)
	}
	if m.SpMMTime(0, 128) != m.KernelLaunch {
		t.Fatal("zero-nnz SpMM should cost only launch overhead")
	}
}

func TestSpMMSlowerThanGemmPerFMA(t *testing.T) {
	m := A6000()
	// The paper's premise: SpMM achieves far lower GFLOPs than GEMM.
	spmm := (m.SpMMTime(10_000_000, 128) - m.KernelLaunch) / (1e7 * 128)
	gemm := (m.GemmTime(10000, 1000, 128) - m.KernelLaunch) / (1e7 * 128)
	if spmm < 10*gemm {
		t.Fatalf("SpMM per-FMA (%v) should be >=10x GEMM per-FMA (%v)", spmm, gemm)
	}
}

func TestCollectiveTimeSinglePeerFree(t *testing.T) {
	m := A6000()
	for _, k := range []CollectiveKind{OpBroadcast, OpAllGather, OpAllReduce, OpAllToAll} {
		if m.CollectiveTime(k, 1, 1<<20) != 0 {
			t.Fatalf("%v with p=1 must be free", k)
		}
	}
}

func TestBroadcastVsAllToAllScaling(t *testing.T) {
	m := A6000()
	// The central scaling claim: redistribution (all-to-all of N·f/P per
	// device) gets cheaper with P, while broadcast of the full buffer does
	// not.
	total := int64(512 << 20)
	bcast4 := m.CollectiveTime(OpBroadcast, 4, total)
	bcast8 := m.CollectiveTime(OpBroadcast, 8, total)
	a2a4 := m.CollectiveTime(OpAllToAll, 4, total/4)
	a2a8 := m.CollectiveTime(OpAllToAll, 8, total/8)
	if a2a8 >= a2a4 {
		t.Fatalf("all-to-all should shrink with P: %v -> %v", a2a4, a2a8)
	}
	if bcast8 < bcast4*0.9 {
		t.Fatalf("broadcast should not shrink with P: %v -> %v", bcast4, bcast8)
	}
	if a2a8 >= bcast8 {
		t.Fatalf("redistribution must beat broadcast at P=8: %v vs %v", a2a8, bcast8)
	}
}

func TestAllReduceTwiceAllGather(t *testing.T) {
	m := A6000()
	b := int64(64 << 20)
	ag := m.CollectiveTime(OpAllGather, 8, b)
	ar := m.CollectiveTime(OpAllReduce, 8, b)
	if math.Abs(ar/ag-2) > 1e-9 {
		t.Fatalf("allreduce should cost 2x allgather: %v vs %v", ar, ag)
	}
	rs := m.CollectiveTime(OpReduceScatter, 8, b)
	if math.Abs(rs/ag-1) > 1e-9 {
		t.Fatalf("reducescatter should cost 1x allgather: %v vs %v", rs, ag)
	}
}

func TestSendRecv(t *testing.T) {
	m := A6000()
	got := m.CollectiveTime(OpSendRecv, 2, int64(m.LinkBandwidth))
	want := m.LinkLatency + 1.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("sendrecv: %v want %v", got, want)
	}
}

func TestKindString(t *testing.T) {
	if OpBroadcast.String() != "broadcast" || OpAllToAll.String() != "alltoall" {
		t.Fatal("bad kind strings")
	}
	if CollectiveKind(99).String() != "unknown" {
		t.Fatal("unknown kind string")
	}
}

func TestLinkVariants(t *testing.T) {
	base, nvlink, pcie := A6000(), A6000NVLink(), A6000SlowPCIe()
	if !(pcie.LinkBandwidth < base.LinkBandwidth && base.LinkBandwidth < nvlink.LinkBandwidth) {
		t.Fatal("link bandwidth ordering wrong")
	}
	// Compute parameters are shared across variants.
	if nvlink.GemmRate != base.GemmRate || pcie.SpMMRate != base.SpMMRate {
		t.Fatal("variants must only change the interconnect")
	}
	// A fixed transfer is fastest on NVLink, slowest on PCIe3.
	b := int64(256 << 20)
	tn := nvlink.CollectiveTime(OpAllToAll, 8, b)
	tb := base.CollectiveTime(OpAllToAll, 8, b)
	tp := pcie.CollectiveTime(OpAllToAll, 8, b)
	if !(tn < tb && tb < tp) {
		t.Fatalf("transfer times out of order: %v %v %v", tn, tb, tp)
	}
}

func TestMemTime(t *testing.T) {
	m := A6000()
	t1 := m.MemTime(1 << 20)
	t2 := m.MemTime(2 << 20)
	if t2 <= t1 {
		t.Fatal("MemTime must grow with bytes")
	}
}

func TestCollectiveTimeZeroWork(t *testing.T) {
	m := A6000()
	kinds := []CollectiveKind{
		OpBroadcast, OpAllGather, OpAllReduce,
		OpAllToAll, OpSendRecv, OpReduceScatter,
	}
	cases := []struct {
		name  string
		p     int
		bytes int64
		want  float64
	}{
		{"p1-zero", 1, 0, 0},
		{"p1-bytes", 1, 1 << 20, 0},
		{"p0-zero", 0, 0, 0},
		{"p0-bytes", 0, 1 << 20, 0},
		{"negative-p", -3, 4096, 0},
		{"p2-zero", 2, 0, m.KernelLaunch},
		{"p8-zero", 8, 0, m.KernelLaunch},
		{"p8-negative-bytes", 8, -64, m.KernelLaunch},
	}
	for _, k := range kinds {
		for _, c := range cases {
			if got := m.CollectiveTime(k, c.p, c.bytes); got != c.want {
				t.Errorf("%v/%s: CollectiveTime(p=%d, bytes=%d) = %v, want %v",
					k, c.name, c.p, c.bytes, got, c.want)
			}
		}
	}
	// Real work is never mistaken for zero work: a positive transfer over
	// p>1 costs strictly more than a bare launch on every kind.
	for _, k := range kinds {
		if got := m.CollectiveTime(k, 8, 1<<20); got <= m.KernelLaunch {
			t.Errorf("%v: positive-byte collective (%v) must exceed one launch (%v)",
				k, got, m.KernelLaunch)
		}
	}
}
