package hw

// Resource identifies one of a simulated device's independent occupancy
// timelines for overlapped execution (the DAG executor of internal/plan
// and internal/core): a compute engine plus one virtual link engine per
// interconnect tier. Ops bound to different resources of the same device
// may overlap in simulated time; ops on the same resource serialize —
// a device can run a GEMM while its NIC drains an all-reduce bucket,
// but two collectives on the same link tier queue behind each other.
type Resource uint8

const (
	// ResCompute is the device's kernel engine (gemm/spmm/mem charges).
	ResCompute Resource = iota
	// ResLinkIntra is the intra-node (tier-0) link engine.
	ResLinkIntra
	// ResLinkInter is the inter-node (tier-1) link engine.
	ResLinkInter
	// NumResources sizes per-resource arrays.
	NumResources
)

func (r Resource) String() string {
	switch r {
	case ResCompute:
		return "compute"
	case ResLinkIntra:
		return "link:intra"
	case ResLinkInter:
		return "link:inter"
	}
	return "unknown"
}

// Occupancy tracks one device's per-resource busy-until cursors during
// critical-path pricing (plan.PriceDAGOn): each resource is a serial
// timeline, so an op starts at max(its resource's cursor, its
// dependencies' finish times) and advances only its own resource.
type Occupancy struct {
	busy [NumResources]float64
}

// Free returns when the resource is next available.
func (o *Occupancy) Free(r Resource) float64 { return o.busy[r] }

// Advance moves the resource's cursor to t if t is later.
func (o *Occupancy) Advance(r Resource, t float64) {
	if t > o.busy[r] {
		o.busy[r] = t
	}
}

// Makespan returns the latest cursor across all resources — the device's
// overlapped finish time.
func (o *Occupancy) Makespan() float64 {
	m := o.busy[0]
	for _, t := range o.busy[1:] {
		if t > m {
			m = t
		}
	}
	return m
}

// Join sets every resource's cursor to the makespan, modelling a
// synchronization point (an epoch boundary) where the device's engines
// rejoin a single timeline.
func (o *Occupancy) Join() {
	m := o.Makespan()
	for r := range o.busy {
		o.busy[r] = m
	}
}
