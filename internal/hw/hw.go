// Package hw models the hardware of the paper's testbed — 8× NVIDIA RTX
// A6000-class GPUs connected by NVLink/PCIe-class links — as an
// analytic clock. Kernels and collectives executed on the simulated
// fabric (internal/comm) charge time through this model, so reported
// epoch times reflect GPU-class compute/communication ratios rather
// than Go loop speeds. See DESIGN.md §1 for why this substitution
// preserves the paper's observable behaviour.
package hw

import "math"

// Model holds the device and interconnect parameters of the simulated
// machine. All rates are in SI units (seconds, bytes, FMA/s).
type Model struct {
	// GemmRate is the dense FMA throughput of one device.
	GemmRate float64
	// SpMMRate is the peak sparse FMA throughput of one device for wide
	// dense operands.
	SpMMRate float64
	// SpMMWidthPenalty is the half-saturation width of SpMM efficiency:
	// effective rate = SpMMRate * f/(f+SpMMWidthPenalty). It models the
	// reduced data reuse of narrow dense slices that the paper observes
	// for RDM's f/P-wide tiles (§V-B).
	SpMMWidthPenalty float64
	// MemBandwidth is the device memory bandwidth, charged for
	// element-wise kernels and local divide/merge copies.
	MemBandwidth float64
	// LinkLatency is the per-message latency (alpha).
	LinkLatency float64
	// LinkBandwidth is the per-device injection/ejection bandwidth
	// (beta), bytes/s in each direction.
	LinkBandwidth float64
	// KernelLaunch is the fixed overhead charged per kernel.
	KernelLaunch float64
}

// A6000 returns parameters approximating the paper's testbed: RTX A6000
// GPUs (38.7 TFLOPS fp32 peak, 768 GB/s GDDR6) on PCIe 4.0 x16-class
// links with NCCL.
func A6000() *Model {
	return &Model{
		GemmRate:         14e12, // ~28 TFLOPS sustained = 14e12 FMA/s
		SpMMRate:         2.2e11,
		SpMMWidthPenalty: 24,
		MemBandwidth:     6.0e11,
		LinkLatency:      15e-6,
		LinkBandwidth:    2.2e10,
		KernelLaunch:     8e-6,
	}
}

// A6000NVLink returns a variant of the A6000 testbed with NVLink-class
// links (~56 GB/s per direction), for sensitivity studies: faster links
// shrink every scheme's communication share, narrowing RDM's advantage.
func A6000NVLink() *Model {
	m := A6000()
	m.LinkBandwidth = 5.6e10
	m.LinkLatency = 8e-6
	return m
}

// A6000SlowPCIe returns a variant with PCIe 3.0-class links (~12 GB/s),
// where communication dominates and RDM's constant volume matters most.
func A6000SlowPCIe() *Model {
	m := A6000()
	m.LinkBandwidth = 1.2e10
	m.LinkLatency = 20e-6
	return m
}

// Degraded returns a copy of the model with the link parameters scaled by
// per-link fault multipliers: latency (alpha) is multiplied by alphaMul
// and bandwidth (beta) divided by betaMul, both >= 1 for a degraded link.
// The simulated fabric applies the worst multipliers among a collective's
// participants — a ring is only as fast as its slowest link — so one
// flaky device taxes every group it joins (internal/fault's degrade
// events drive this).
func (h *Model) Degraded(alphaMul, betaMul float64) *Model {
	if alphaMul < 1 {
		alphaMul = 1
	}
	if betaMul < 1 {
		betaMul = 1
	}
	m := *h
	m.LinkLatency *= alphaMul
	m.LinkBandwidth /= betaMul
	return &m
}

// GemmTime returns the modelled time of an (m x k)·(k x n) dense product.
func (h *Model) GemmTime(m, k, n int) float64 {
	fma := float64(m) * float64(k) * float64(n)
	return h.KernelLaunch + fma/h.GemmRate
}

// SpMMTime returns the modelled time of a sparse-dense product with nnz
// stored entries and f dense columns.
func (h *Model) SpMMTime(nnz int64, f int) float64 {
	if f <= 0 || nnz <= 0 {
		return h.KernelLaunch
	}
	eff := float64(f) / (float64(f) + h.SpMMWidthPenalty)
	return h.KernelLaunch + float64(nnz)*float64(f)/(h.SpMMRate*eff)
}

// MemTime returns the modelled time of a memory-bound kernel touching the
// given number of bytes.
func (h *Model) MemTime(bytes int64) float64 {
	return h.KernelLaunch + float64(bytes)/h.MemBandwidth
}

// CollectiveKind identifies a collective operation for time modelling.
type CollectiveKind int

const (
	// OpBroadcast sends one buffer from a root to all group members.
	OpBroadcast CollectiveKind = iota
	// OpAllGather concatenates per-device buffers on every device.
	OpAllGather
	// OpAllReduce element-wise sums per-device buffers onto every device.
	OpAllReduce
	// OpAllToAll performs personalized exchange (the redistribution
	// primitive of Fig. 7).
	OpAllToAll
	// OpSendRecv is a point-to-point transfer.
	OpSendRecv
	// OpReduceScatter sums and leaves each device with one shard.
	OpReduceScatter
	// NumCollectiveKinds sizes per-kind meter arrays.
	NumCollectiveKinds
)

func (k CollectiveKind) String() string {
	switch k {
	case OpBroadcast:
		return "broadcast"
	case OpAllGather:
		return "allgather"
	case OpAllReduce:
		return "allreduce"
	case OpAllToAll:
		return "alltoall"
	case OpSendRecv:
		return "sendrecv"
	case OpReduceScatter:
		return "reducescatter"
	}
	return "unknown"
}

// CollectiveTime models a collective over p devices using standard ring
// algorithm costs (the NCCL regime):
//
//   - broadcast of B bytes: alpha·ceil(log2 p) + B·(p-1)/(p·beta)
//   - allgather to B total: alpha·(p-1)   + B·(p-1)/(p·beta)
//   - allreduce of B bytes: 2alpha·(p-1)  + 2B·(p-1)/(p·beta)
//   - all-to-all, maxPerDevice bytes injected by the busiest device:
//     alpha·(p-1) + maxPerDevice/beta (all links run concurrently)
//   - send/recv of B bytes: alpha + B/beta
//
// bytes is the full buffer size B for broadcast/allgather/allreduce and
// the maximum per-device injected volume for all-to-all.
// Zero-work collectives (p > 1 but no bytes to move) cost exactly one
// kernel launch — the rendezvous still happens on device — and any
// collective over p ≤ 1 devices costs zero, uniformly across kinds.
func (h *Model) CollectiveTime(kind CollectiveKind, p int, bytes int64) float64 {
	if p <= 1 {
		return 0
	}
	if bytes <= 0 {
		return h.KernelLaunch
	}
	b := float64(bytes)
	pf := float64(p)
	switch kind {
	case OpBroadcast:
		return h.LinkLatency*math.Ceil(math.Log2(pf)) + b*(pf-1)/(pf*h.LinkBandwidth)
	case OpAllGather:
		return h.LinkLatency*(pf-1) + b*(pf-1)/(pf*h.LinkBandwidth)
	case OpAllReduce, OpReduceScatter:
		mult := 2.0
		if kind == OpReduceScatter {
			mult = 1.0
		}
		return mult * (h.LinkLatency*(pf-1) + b*(pf-1)/(pf*h.LinkBandwidth))
	case OpAllToAll:
		return h.LinkLatency*(pf-1) + b/h.LinkBandwidth
	case OpSendRecv:
		return h.LinkLatency + b/h.LinkBandwidth
	}
	panic("hw: unknown collective kind")
}
