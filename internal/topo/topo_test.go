package topo

import (
	"math"
	"testing"

	"gnnrdm/internal/hw"
)

func group(p int) []int {
	g := make([]int, p)
	for i := range g {
		g[i] = i
	}
	return g
}

func TestSpecRoundTrip(t *testing.T) {
	cases := []struct {
		in      string
		out     string // canonical form; "" means parse must fail
		devices int
	}{
		{"8x4:nvlink,ib", "8x4:nvlink,ib", 32},
		{"1x8:pcie", "1x8:pcie", 8},
		{"1x8:pcie,eth", "1x8:pcie", 8}, // 1-node inter class normalized away
		{"2x2:nvlink,eth", "2x2:nvlink,eth", 4},
		{"16x1:nvlink,ib", "16x1:nvlink,ib", 16},
		{"4x8:pcie3,ib", "4x8:pcie3,ib", 32},
		{"8x4", "", 0},              // no link classes
		{"8:nvlink,ib", "", 0},      // no shape
		{"0x4:nvlink,ib", "", 0},    // zero nodes
		{"8x-1:nvlink,ib", "", 0},   // negative per-node
		{"8x4:warp,ib", "", 0},      // unknown intra class
		{"8x4:nvlink,warp", "", 0},  // unknown inter class
		{"8x4:nvlink", "", 0},       // multi-node needs inter class
		{"axb:nvlink,ib", "", 0},    // non-numeric shape
		{"999999x999:ib,ib", "", 0}, // over device limit
	}
	for _, c := range cases {
		s, err := ParseSpec(c.in)
		if c.out == "" {
			if err == nil {
				t.Errorf("ParseSpec(%q) = %+v, want error", c.in, s)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if s.String() != c.out {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", c.in, s.String(), c.out)
		}
		if s.Devices() != c.devices {
			t.Errorf("%q: Devices() = %d, want %d", c.in, s.Devices(), c.devices)
		}
		// String must be a parse fixed point.
		again, err := ParseSpec(s.String())
		if err != nil || again != s {
			t.Errorf("%q: re-parse gave %+v, %v; want %+v", c.in, again, err, s)
		}
	}
}

func TestParseClassAndAlgorithm(t *testing.T) {
	for _, c := range Classes() {
		got, err := ParseClass(c.Name)
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %+v, %v", c.Name, got, err)
		}
	}
	if _, err := ParseClass("carrier-pigeon"); err == nil {
		t.Error("ParseClass must reject unknown classes")
	}
	for _, a := range []Algorithm{Auto, Ring, RHD, Hier} {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAlgorithm("telepathy"); err == nil {
		t.Error("ParseAlgorithm must reject unknown algorithms")
	}
}

func TestTopologyShape(t *testing.T) {
	tp := must(t, "8x4:nvlink,ib", 32)
	if tp.NodeOf(0) != 0 || tp.NodeOf(3) != 0 || tp.NodeOf(4) != 1 || tp.NodeOf(31) != 7 {
		t.Fatal("NodeOf wrong")
	}
	if tp.Tier(0, 3) != TierIntra || tp.Tier(0, 4) != TierInter || tp.Tier(5, 30) != TierInter {
		t.Fatal("Tier wrong")
	}
	if tp.worstTier([]int{0, 1, 2, 3}) != TierIntra || tp.worstTier([]int{3, 4}) != TierInter {
		t.Fatal("worstTier wrong")
	}
	if _, err := ParseSpec("8x4:nvlink,ib"); err != nil {
		t.Fatal(err)
	}
	s, _ := ParseSpec("8x4:nvlink,ib")
	if _, err := s.Topology(33); err == nil {
		t.Fatal("Topology must reject p beyond the spec's device count")
	}
	if _, err := s.Topology(0); err == nil {
		t.Fatal("Topology must reject p < 1")
	}

	nodes, ok := tp.nodeGroups(group(8))
	if !ok || len(nodes) != 2 || len(nodes[0]) != 4 {
		t.Fatalf("nodeGroups(0..7) = %v, %v", nodes, ok)
	}
	if _, ok := tp.nodeGroups([]int{0, 1, 2, 3}); ok {
		t.Fatal("single-node group must not qualify for hierarchical")
	}
	if _, ok := tp.nodeGroups([]int{0, 1, 4}); ok {
		t.Fatal("ragged group must not qualify for hierarchical")
	}
	if _, ok := tp.nodeGroups([]int{0, 4, 8, 12}); !ok {
		t.Fatal("one-per-node plane group must qualify")
	}

	flat := Flat(8, hw.A6000())
	if flat.Tiers != 1 || flat.NodeOf(7) != 0 || flat.worstTier(group(8)) != TierIntra {
		t.Fatal("Flat topology must be single-tier")
	}
}

func must(t *testing.T, spec string, p int) *Topology {
	t.Helper()
	s, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s.MustTopology(p)
}

// TestFlatMatchesHW pins the backward-compat contract: on a flat
// topology built from h, every ring cost's time equals
// hw.CollectiveTime on h bit-for-bit, everything lands on tier 0, and
// totals equal the classic formulas the fabric metered before
// topologies existed.
func TestFlatMatchesHW(t *testing.T) {
	h := hw.A6000()
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		tp := Flat(p, h)
		g := group(p)
		B := int64(1 << 20)

		_, ar := tp.AllReduce(h, Auto, g, B)
		if ar.Time != h.CollectiveTime(hw.OpAllReduce, p, B) {
			t.Fatalf("p=%d: flat allreduce time %v != hw %v", p, ar.Time, h.CollectiveTime(hw.OpAllReduce, p, B))
		}
		wantAR := int64(0)
		if p > 1 {
			wantAR = 2 * B * int64(p-1)
		}
		if ar.Tier[TierInter] != 0 || ar.Bytes() != wantAR {
			t.Fatalf("p=%d: flat allreduce tiers %v, want [%d 0]", p, ar.Tier, wantAR)
		}

		chunks := make([]int64, p)
		var total int64
		for i := range chunks {
			chunks[i] = int64(4 * (100 + i))
			total += chunks[i]
		}
		_, ag := tp.AllGather(h, Auto, g, chunks)
		if ag.Time != h.CollectiveTime(hw.OpAllGather, p, total) {
			t.Fatalf("p=%d: flat allgather time mismatch", p)
		}
		wantAG := int64(0)
		if p > 1 {
			wantAG = total * int64(p-1)
		}
		if ag.Tier[TierInter] != 0 || ag.Bytes() != wantAG {
			t.Fatalf("p=%d: flat allgather tiers %v, want [%d 0]", p, ag.Tier, wantAG)
		}

		_, rs := tp.ReduceScatter(h, Auto, g, chunks)
		if rs.Time != h.CollectiveTime(hw.OpReduceScatter, p, total) {
			t.Fatalf("p=%d: flat reducescatter time mismatch", p)
		}
		wantRS := int64(0)
		if p > 1 {
			wantRS = total * int64(p-1)
		}
		if rs.Bytes() != wantRS {
			t.Fatalf("p=%d: flat reducescatter bytes %d, want %d", p, rs.Bytes(), wantRS)
		}

		pairB := func(i, j int) int64 { return int64(4 * (1 + i + 2*j)) }
		var a2aTotal, maxInj int64
		for i := 0; i < p; i++ {
			var inj int64
			for j := 0; j < p; j++ {
				if i != j {
					inj += pairB(i, j)
				}
			}
			a2aTotal += inj
			if inj > maxInj {
				maxInj = inj
			}
		}
		_, a2a := tp.AllToAll(h, Auto, g, pairB)
		if a2a.Time != h.CollectiveTime(hw.OpAllToAll, p, maxInj) {
			t.Fatalf("p=%d: flat alltoall time mismatch", p)
		}
		if a2a.Bytes() != a2aTotal || a2a.Tier[TierInter] != 0 {
			t.Fatalf("p=%d: flat alltoall bytes %d, want %d", p, a2a.Bytes(), a2aTotal)
		}

		bc := tp.Broadcast(h, g, 0, B)
		if bc.Time != h.CollectiveTime(hw.OpBroadcast, p, B) {
			t.Fatalf("p=%d: flat broadcast time mismatch", p)
		}
		wantBC := int64(0)
		if p > 1 {
			wantBC = B * int64(p-1)
		}
		if bc.Bytes() != wantBC {
			t.Fatalf("p=%d: flat broadcast bytes %d, want %d", p, bc.Bytes(), wantBC)
		}
	}
}

// TestAutoIsRingOnFlat pins the autotuner rule that keeps flat
// topologies byte- and clock-identical to the pre-topology fabric:
// single-tier groups always resolve to Ring even where RHD would be
// cheaper on paper.
func TestAutoIsRingOnFlat(t *testing.T) {
	h := hw.A6000()
	tp := Flat(8, h)
	g := group(8)
	if alg, _ := tp.AllReduce(h, Auto, g, 1<<20); alg != Ring {
		t.Fatalf("auto allreduce on flat picked %v, want ring", alg)
	}
	if alg, _ := tp.AllGather(h, Auto, g, evenChunks(1<<20, 8)); alg != Ring {
		t.Fatal("auto allgather on flat must pick ring")
	}
	if alg, _ := tp.ReduceScatter(h, Auto, g, evenChunks(1<<20, 8)); alg != Ring {
		t.Fatal("auto reducescatter on flat must pick ring")
	}
	if alg, _ := tp.AllToAll(h, Auto, g, func(i, j int) int64 { return 4096 }); alg != Ring {
		t.Fatal("auto alltoall on flat must pick ring")
	}
	// Same rule for a single-node subgroup of a hierarchical topology.
	tp2 := must(t, "8x4:nvlink,ib", 32)
	if alg, _ := tp2.AllReduce(h, Auto, []int{0, 1, 2, 3}, 1<<20); alg != Ring {
		t.Fatal("auto on an intra-node group must pick ring")
	}
}

// TestByteConservation checks the exact byte accounting of every
// algorithm: allreduce always moves 2B(p-1) and allgather B(p-1) under
// ring, RHD, and hierarchical scheduling (they trade latency and tier
// placement, never volume); ring/RHD reduce-scatter moves B(p-1);
// Bruck and hierarchical variants move at least the direct volume.
func TestByteConservation(t *testing.T) {
	h := hw.A6000()
	tp := must(t, "8x4:nvlink,ib", 32)
	for _, p := range []int{8, 16, 32} {
		g := group(p)
		B := int64(4 * 1024)
		want := 2 * B * int64(p-1)
		for _, alg := range []Algorithm{Ring, RHD, Hier} {
			got, c := tp.AllReduce(h, alg, g, B)
			if got != alg {
				t.Fatalf("p=%d: explicit %v allreduce resolved to %v", p, alg, got)
			}
			if c.Bytes() != want {
				t.Fatalf("p=%d %v: allreduce bytes %d, want %d", p, alg, c.Bytes(), want)
			}
		}

		chunks := make([]int64, p)
		var total int64
		for i := range chunks {
			chunks[i] = int64(4 * (50 + 3*i))
			total += chunks[i]
		}
		want = total * int64(p-1)
		for _, alg := range []Algorithm{Ring, RHD, Hier} {
			got, c := tp.AllGather(h, alg, g, chunks)
			if got != alg {
				t.Fatalf("p=%d: explicit %v allgather resolved to %v", p, alg, got)
			}
			if c.Bytes() != want {
				t.Fatalf("p=%d %v: allgather bytes %d, want %d", p, alg, c.Bytes(), want)
			}
		}

		for _, alg := range []Algorithm{Ring, RHD} {
			_, c := tp.ReduceScatter(h, alg, g, chunks)
			if c.Bytes() != want {
				t.Fatalf("p=%d %v: reducescatter bytes %d, want %d", p, alg, c.Bytes(), want)
			}
		}
		_, hrs := tp.ReduceScatter(h, Hier, g, chunks)
		if hrs.Bytes() < want {
			t.Fatalf("p=%d: hier reducescatter bytes %d below direct %d", p, hrs.Bytes(), want)
		}

		pairB := func(i, j int) int64 { return int64(4 * ((i+j)%5 + 1)) }
		var direct int64
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				if i != j {
					direct += pairB(i, j)
				}
			}
		}
		_, ra := tp.AllToAll(h, Ring, g, pairB)
		if ra.Bytes() != direct {
			t.Fatalf("p=%d: ring alltoall bytes %d, want %d", p, ra.Bytes(), direct)
		}
		_, ba := tp.AllToAll(h, RHD, g, pairB)
		if ba.Bytes() < direct {
			t.Fatalf("p=%d: bruck alltoall bytes %d below direct %d", p, ba.Bytes(), direct)
		}
		_, ha := tp.AllToAll(h, Hier, g, pairB)
		if ha.Bytes() < direct {
			t.Fatalf("p=%d: hier alltoall bytes %d below direct %d", p, ha.Bytes(), direct)
		}
	}
}

// TestHierBeatsRingProperty is the satellite property test: on a
// two-tier spec, hierarchical all-reduce never costs more simulated
// time than the flat ring for any P >= 16 (strictly less whenever the
// group is node-uniform and spans nodes), and on a 1-node spec the two
// are exactly equal.
func TestHierBeatsRingProperty(t *testing.T) {
	h := hw.A6000()
	s, err := ParseSpec("16x4:nvlink,ib")
	if err != nil {
		t.Fatal(err)
	}
	bytes := int64(4 * 1024) // 1024 float32 elements
	for p := 16; p <= s.Devices(); p++ {
		tp := s.MustTopology(p)
		g := group(p)
		_, ring := tp.AllReduce(h, Ring, g, bytes)
		alg, hier := tp.AllReduce(h, Hier, g, bytes)
		if hier.Time > ring.Time {
			t.Fatalf("P=%d: hier allreduce %v slower than ring %v", p, hier.Time, ring.Time)
		}
		if alg == Hier && p%4 == 0 && hier.Time >= ring.Time {
			t.Fatalf("P=%d: node-uniform hier allreduce %v not strictly faster than ring %v",
				p, hier.Time, ring.Time)
		}
		autoAlg, auto := tp.AllReduce(h, Auto, g, bytes)
		if auto.Time > hier.Time || auto.Time > ring.Time {
			t.Fatalf("P=%d: auto (%v, %v) worse than an explicit candidate", p, autoAlg, auto.Time)
		}
	}

	// 1-node spec: hierarchical does not apply; it must price exactly the
	// ring, bit-for-bit.
	one := mustSpec(t, "1x32:nvlink")
	for _, p := range []int{16, 24, 32} {
		tp := one.MustTopology(p)
		g := group(p)
		_, ring := tp.AllReduce(h, Ring, g, bytes)
		_, hier := tp.AllReduce(h, Hier, g, bytes)
		if hier != ring {
			t.Fatalf("P=%d: 1-node hier %+v != ring %+v", p, hier, ring)
		}
	}

	// Degenerate hierarchical shapes collapse to the ring exactly: one
	// device per node makes stage 2 the whole collective.
	perOne := mustSpec(t, "16x1:nvlink,ib")
	tp := perOne.MustTopology(16)
	g := group(16)
	_, ring := tp.AllReduce(h, Ring, g, bytes)
	_, hier := tp.AllReduce(h, Hier, g, bytes)
	if hier.Time != ring.Time || hier.Bytes() != ring.Bytes() {
		t.Fatalf("g=1 hier %+v must equal ring %+v", hier, ring)
	}
}

func mustSpec(t *testing.T, s string) Spec {
	t.Helper()
	sp, err := ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestHierTierPlacement checks that hierarchical scheduling actually
// moves the bulk of traffic onto the fast intra-node tier: for the
// 8x4 spec at P=32, the ring pushes every byte across the worst
// (inter-node) tier while hier's inter-node share is exactly the
// stage-2 plane traffic.
func TestHierTierPlacement(t *testing.T) {
	h := hw.A6000()
	tp := must(t, "8x4:nvlink,ib", 32)
	g := group(32)
	B := int64(1 << 20)
	_, ring := tp.AllReduce(h, Ring, g, B)
	if ring.Tier[TierIntra] == 0 || ring.Tier[TierInter] == 0 {
		t.Fatalf("ring over 8 nodes of 4 must cross both tiers: %v", ring.Tier)
	}
	_, hier := tp.AllReduce(h, Hier, g, B)
	// Stage 2 moves 2*B*(m-1) bytes over tier 1 (m=8 planes of chunk
	// sums B); stages 1+3 keep 2*m*Bnode*(g-1) on tier 0.
	wantInter := 2 * B * int64(8-1)
	if hier.Tier[TierInter] != wantInter {
		t.Fatalf("hier inter-tier bytes %d, want %d", hier.Tier[TierInter], wantInter)
	}
	if hier.Tier[TierIntra] != hier.Bytes()-wantInter {
		t.Fatalf("hier tier split inconsistent: %v", hier.Tier)
	}
	if hier.Tier[TierInter] >= ring.Tier[TierInter] {
		t.Fatalf("hier must reduce inter-node traffic: %d vs ring %d",
			hier.Tier[TierInter], ring.Tier[TierInter])
	}
}

// TestRHD covers the halving/doubling family: power-of-two groups get
// log-round schedules whose totals match the ring, non-power-of-two
// groups fall back to Ring, and the latency advantage is visible at
// small payloads.
func TestRHD(t *testing.T) {
	h := hw.A6000()
	tp := Flat(8, h)
	g := group(8)

	alg, _ := tp.AllReduce(h, RHD, group(6)[:5], 4096)
	if alg != Ring {
		t.Fatalf("RHD on p=5 resolved to %v, want ring fallback", alg)
	}

	// Tiny payload: RHD's log2(p) rounds beat the ring's 2(p-1) alpha
	// terms.
	_, rhd := tp.AllReduce(h, RHD, g, 64)
	_, ring := tp.AllReduce(h, Ring, g, 64)
	if rhd.Time >= ring.Time {
		t.Fatalf("small-payload RHD %v must beat ring %v", rhd.Time, ring.Time)
	}

	// Uneven allgather chunks and reduce-scatter counts conserve bytes.
	chunks := []int64{4, 8, 400, 0, 44, 120, 4, 20}
	var total int64
	for _, c := range chunks {
		total += c
	}
	_, ag := tp.AllGather(h, RHD, g, chunks)
	if ag.Bytes() != total*7 {
		t.Fatalf("rhd allgather bytes %d, want %d", ag.Bytes(), total*7)
	}
	_, rs := tp.ReduceScatter(h, RHD, g, chunks)
	if rs.Bytes() != total*7 {
		t.Fatalf("rhd reducescatter bytes %d, want %d", rs.Bytes(), total*7)
	}
}

// TestZeroWork pins the uniform zero-work rule across the algorithm
// library: no bytes and p>1 costs exactly one kernel launch; p<=1
// costs zero.
func TestZeroWork(t *testing.T) {
	h := hw.A6000()
	tp := must(t, "8x4:nvlink,ib", 32)
	g := group(8)
	zero := func(i, j int) int64 { return 0 }
	for _, alg := range []Algorithm{Ring, RHD, Hier} {
		if _, c := tp.AllReduce(h, alg, g, 0); c.Time != h.KernelLaunch && alg != Hier {
			t.Errorf("%v: zero-byte allreduce time %v, want launch %v", alg, c.Time, h.KernelLaunch)
		}
		if _, c := tp.AllToAll(h, alg, g, zero); alg != Hier && c.Time != h.KernelLaunch {
			t.Errorf("%v: zero alltoall time %v, want launch %v", alg, c.Time, h.KernelLaunch)
		}
	}
	// Hierarchical zero-work honestly charges one launch per stage (its
	// three rendezvous still happen); Auto therefore picks a cheaper
	// algorithm for zero-work groups.
	if _, c := tp.AllReduce(h, Hier, g, 0); c.Time != 3*h.KernelLaunch {
		t.Errorf("hier zero-byte allreduce = %v, want 3 launches", c.Time)
	}
	if _, c := tp.AllReduce(h, Auto, g, 0); c.Time > h.KernelLaunch {
		t.Errorf("auto zero-byte allreduce = %v, want <= one launch", c.Time)
	}
	for _, alg := range []Algorithm{Ring, RHD, Hier} {
		if _, c := tp.AllReduce(h, alg, group(1), 1<<20); c.Time != 0 || c.Bytes() != 0 {
			t.Errorf("%v: p=1 allreduce must be free", alg)
		}
	}
}

// TestDegradedMatchesHW: degrading a topology must track hw.Degraded's
// float operations exactly, so fault-injected runs stay bit-identical
// between the flat fabric path and the topology path.
func TestDegradedMatchesHW(t *testing.T) {
	h := hw.A6000()
	hd := h.Degraded(3, 2.5)
	td := Flat(8, h).Degraded(3, 2.5)
	if td.Links[TierIntra].Alpha != hd.LinkLatency || td.Links[TierIntra].Beta != hd.LinkBandwidth {
		t.Fatalf("degraded flat link %+v != degraded hw (%v, %v)",
			td.Links[TierIntra], hd.LinkLatency, hd.LinkBandwidth)
	}
	// Multipliers below 1 clamp to 1 on both paths.
	if got := Flat(8, h).Degraded(0.5, 0.25); got.Links[0] != Flat(8, h).Links[0] {
		t.Fatal("sub-1 multipliers must clamp to identity")
	}
	g := group(8)
	_, a := td.AllReduce(hd, Ring, g, 1<<16)
	if a.Time != hd.CollectiveTime(hw.OpAllReduce, 8, 1<<16) {
		t.Fatal("degraded flat topology must price like the degraded hw model")
	}
}

func TestBarrier(t *testing.T) {
	h := hw.A6000()
	tp := must(t, "8x4:nvlink,ib", 32)
	if tp.Barrier(h, group(1)) != 0 {
		t.Fatal("1-member barrier must be free")
	}
	if got := tp.Barrier(h, []int{0, 1, 2, 3}); got != tp.Links[TierIntra].Alpha {
		t.Fatalf("intra-node barrier = %v, want %v", got, tp.Links[TierIntra].Alpha)
	}
	if got := tp.Barrier(h, group(32)); got != tp.Links[TierInter].Alpha {
		t.Fatalf("world barrier = %v, want %v", got, tp.Links[TierInter].Alpha)
	}
	flat := Flat(4, h)
	if got := flat.Barrier(h, group(4)); got != h.LinkLatency {
		t.Fatalf("flat barrier = %v, want hw latency %v", got, h.LinkLatency)
	}
}

// TestStageTimeComposition sanity-checks the closed forms against a
// brute-force recomputation for the 8x4 world: the hier allreduce time
// is the sum of the worst stage times, and every stage time is itself
// a ring cost.
func TestStageTimeComposition(t *testing.T) {
	h := hw.A6000()
	tp := must(t, "8x4:nvlink,ib", 32)
	g := group(32)
	B := int64(4 * 4096)
	_, hier := tp.AllReduce(h, Hier, g, B)

	nodes, ok := tp.nodeGroups(g)
	if !ok {
		t.Fatal("32 ranks on 8x4 must be node-uniform")
	}
	ch := evenChunks(B, 4)
	st1, st2, st3 := 0.0, 0.0, 0.0
	for _, nd := range nodes {
		st1 = math.Max(st1, tp.ringReduceScatter(h, nd, ch).Time)
		st3 = math.Max(st3, tp.ringAllGather(h, nd, ch).Time)
	}
	for i := 0; i < 4; i++ {
		plane := []int{i, 4 + i, 8 + i, 12 + i, 16 + i, 20 + i, 24 + i, 28 + i}
		st2 = math.Max(st2, tp.ringAllReduce(h, plane, ch[i]).Time)
	}
	if want := st1 + st2 + st3; hier.Time != want {
		t.Fatalf("hier time %v != stage sum %v", hier.Time, want)
	}
}

func TestEvenChunks(t *testing.T) {
	cases := []struct {
		bytes int64
		p     int
		want  []int64
	}{
		{4096, 4, []int64{1024, 1024, 1024, 1024}},
		{4 * 10, 4, []int64{12, 12, 8, 8}},
		{0, 3, []int64{0, 0, 0}},
		{6, 2, []int64{6, 0}}, // stray non-element bytes ride chunk 0
	}
	for _, c := range cases {
		got := evenChunks(c.bytes, c.p)
		var total int64
		for i, g := range got {
			if g != c.want[i] {
				t.Errorf("evenChunks(%d, %d) = %v, want %v", c.bytes, c.p, got, c.want)
				break
			}
			total += g
		}
		if total != c.bytes {
			t.Errorf("evenChunks(%d, %d) loses bytes: %v", c.bytes, c.p, got)
		}
	}
}
