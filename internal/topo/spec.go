// Package topo models hierarchical interconnect topologies — devices
// grouped into nodes, with NVLink-class links inside a node and
// IB/Ethernet-class links between nodes — and prices collective
// algorithms (flat ring, recursive halving/doubling, two-level
// hierarchical) on them. It is the single source of truth for
// topology-aware communication costs: the simulated fabric
// (internal/comm) meters bytes and advances clocks through these cost
// functions, and the planner (internal/plan.Schedule.PriceOn) prices
// schedules through the same functions, so model-versus-meter
// comparisons are byte- and time-exact by construction. See DESIGN.md
// §Topology and collective algorithms.
package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// Class is a named interconnect link class with α–β parameters: Alpha
// is the per-message latency in seconds, Beta the per-device bandwidth
// in bytes/s per direction.
type Class struct {
	Name  string
	Alpha float64
	Beta  float64
}

// The built-in link classes. pcie matches hw.A6000's link parameters
// exactly, so the 1-node spec "1xP:pcie" reproduces the default flat
// fabric bit-for-bit; nvlink and pcie3 match the A6000NVLink and
// A6000SlowPCIe sensitivity variants.
var classes = []Class{
	{Name: "nvlink", Alpha: 8e-6, Beta: 5.6e10}, // NVLink-class intra-node
	{Name: "pcie", Alpha: 15e-6, Beta: 2.2e10},  // PCIe 4.0 x16-class
	{Name: "pcie3", Alpha: 20e-6, Beta: 1.2e10}, // PCIe 3.0-class
	{Name: "ib", Alpha: 25e-6, Beta: 2.5e10},    // HDR InfiniBand-class
	{Name: "eth", Alpha: 50e-6, Beta: 1.25e9},   // 10 GbE-class
}

// Classes returns the built-in link classes in declaration order.
func Classes() []Class { return append([]Class(nil), classes...) }

// ParseClass resolves a link-class name.
func ParseClass(name string) (Class, error) {
	for _, c := range classes {
		if c.Name == name {
			return c, nil
		}
	}
	return Class{}, fmt.Errorf("topo: unknown link class %q", name)
}

// maxDevices bounds Nodes×PerNode so fuzzed specs cannot demand
// unbounded memory from downstream consumers.
const maxDevices = 1 << 16

// Spec is a parsable machine description: Nodes nodes of PerNode
// devices each, with Intra-class links inside a node and Inter-class
// links between nodes. The grammar is
//
//	<nodes>x<perNode>:<intraClass>[,<interClass>]
//
// e.g. "8x4:nvlink,ib" is 8 nodes × 4 devices (32 devices total) with
// NVLink inside each node and InfiniBand between nodes. A 1-node spec
// may omit the inter class; it is normalized to the intra class
// (String omits it again), so ParseSpec∘String is a fixed point.
type Spec struct {
	Nodes   int
	PerNode int
	Intra   Class
	Inter   Class
}

// ParseSpec parses the topology grammar above.
// MustParseSpec is ParseSpec panicking on error, for static
// configuration and tests.
func MustParseSpec(s string) Spec {
	sp, err := ParseSpec(s)
	if err != nil {
		panic(err)
	}
	return sp
}

func ParseSpec(s string) (Spec, error) {
	shape, links, ok := strings.Cut(s, ":")
	if !ok {
		return Spec{}, fmt.Errorf("topo: spec %q needs a ':' between shape and link classes", s)
	}
	ns, gs, ok := strings.Cut(shape, "x")
	if !ok {
		return Spec{}, fmt.Errorf("topo: shape %q needs the form <nodes>x<perNode>", shape)
	}
	nodes, err := strconv.Atoi(ns)
	if err != nil || nodes < 1 {
		return Spec{}, fmt.Errorf("topo: node count %q is not a positive integer", ns)
	}
	per, err := strconv.Atoi(gs)
	if err != nil || per < 1 {
		return Spec{}, fmt.Errorf("topo: per-node count %q is not a positive integer", gs)
	}
	if nodes > maxDevices || per > maxDevices || nodes*per > maxDevices {
		return Spec{}, fmt.Errorf("topo: %dx%d exceeds the %d-device limit", nodes, per, maxDevices)
	}
	intraName, interName, hasInter := strings.Cut(links, ",")
	intra, err := ParseClass(intraName)
	if err != nil {
		return Spec{}, err
	}
	inter := intra
	if hasInter {
		if inter, err = ParseClass(interName); err != nil {
			return Spec{}, err
		}
	} else if nodes > 1 {
		return Spec{}, fmt.Errorf("topo: multi-node spec %q needs an inter-node link class", s)
	}
	if nodes == 1 {
		inter = intra // unused; normalized so String round-trips
	}
	return Spec{Nodes: nodes, PerNode: per, Intra: intra, Inter: inter}, nil
}

// String renders the canonical spec form; ParseSpec(s.String()) == s
// for any Spec produced by ParseSpec.
func (s Spec) String() string {
	if s.Nodes == 1 {
		return fmt.Sprintf("%dx%d:%s", s.Nodes, s.PerNode, s.Intra.Name)
	}
	return fmt.Sprintf("%dx%d:%s,%s", s.Nodes, s.PerNode, s.Intra.Name, s.Inter.Name)
}

// Devices returns the machine's total device count.
func (s Spec) Devices() int { return s.Nodes * s.PerNode }
