package topo

import (
	"testing"
)

// FuzzTopoSpec checks the parse/String fixed point: any input ParseSpec
// accepts must render to a canonical string that re-parses to the same
// Spec and renders identically — and the accepted spec must describe a
// usable machine (positive bounded device count, instantiable
// topology).
func FuzzTopoSpec(f *testing.F) {
	f.Add("8x4:nvlink,ib")
	f.Add("1x8:pcie")
	f.Add("2x2:nvlink,eth")
	f.Add("16x1:pcie3,ib")
	f.Add("1x1:eth")
	f.Add("8x4")
	f.Add("0x0:nvlink,ib")
	f.Add(":,")
	f.Add("axb:c,d")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSpec(in)
		if err != nil {
			return
		}
		if s.Devices() < 1 || s.Devices() > maxDevices {
			t.Fatalf("ParseSpec(%q) accepted out-of-range device count %d", in, s.Devices())
		}
		canon := s.String()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("ParseSpec(%q).String() = %q does not re-parse: %v", in, canon, err)
		}
		if again != s {
			t.Fatalf("round trip drifted: %q -> %+v -> %q -> %+v", in, s, canon, again)
		}
		if again.String() != canon {
			t.Fatalf("String not a fixed point: %q vs %q", again.String(), canon)
		}
		tp, err := s.Topology(s.Devices())
		if err != nil {
			t.Fatalf("spec %q cannot instantiate its own device count: %v", canon, err)
		}
		if tp.Name != canon {
			t.Fatalf("topology name %q != canonical spec %q", tp.Name, canon)
		}
	})
}
