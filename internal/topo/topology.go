package topo

import (
	"fmt"

	"gnnrdm/internal/hw"
)

// Link is one tier's α–β parameters.
type Link struct {
	Alpha float64 // per-message latency, seconds
	Beta  float64 // per-device bandwidth, bytes/s per direction
}

// Tier indices: tier 0 is intra-node, tier 1 inter-node.
const (
	TierIntra = 0
	TierInter = 1
	NumTiers  = 2
)

// Topology is an instantiated interconnect for P devices: a node shape
// plus per-tier links. Ranks are assigned to nodes contiguously
// (NodeOf(r) = r / PerNode), matching how multi-node launchers number
// local ranks.
type Topology struct {
	P       int
	PerNode int
	Tiers   int // 1 = flat, 2 = hierarchical
	Links   [NumTiers]Link
	Name    string // spec string, or "flat" for Flat topologies
}

// Flat returns the single-tier topology whose one link carries the
// hardware model's own α–β. It reproduces the pre-topology fabric
// bit-for-bit: every cost function degenerates to hw.CollectiveTime on
// h unchanged.
func Flat(p int, h *hw.Model) *Topology {
	return &Topology{
		P: p, PerNode: p, Tiers: 1,
		Links: [NumTiers]Link{
			{Alpha: h.LinkLatency, Beta: h.LinkBandwidth},
			{Alpha: h.LinkLatency, Beta: h.LinkBandwidth},
		},
		Name: "flat",
	}
}

// Topology instantiates the spec for p devices (p ≤ s.Devices()).
// Smaller worlds occupy the first ceil(p/PerNode) nodes; a world that
// fits inside one node is still built with both tiers so Tier stays
// meaningful, but every pair lands on tier 0.
func (s Spec) Topology(p int) (*Topology, error) {
	if p < 1 {
		return nil, fmt.Errorf("topo: need at least one device, got %d", p)
	}
	if p > s.Devices() {
		return nil, fmt.Errorf("topo: %d devices exceed spec %s (%d devices)", p, s, s.Devices())
	}
	tiers := 2
	if s.Nodes == 1 {
		tiers = 1
	}
	return &Topology{
		P: p, PerNode: s.PerNode, Tiers: tiers,
		Links: [NumTiers]Link{
			{Alpha: s.Intra.Alpha, Beta: s.Intra.Beta},
			{Alpha: s.Inter.Alpha, Beta: s.Inter.Beta},
		},
		Name: s.String(),
	}, nil
}

// MustTopology is Spec.Topology panicking on error, for tests and
// static configuration.
func (s Spec) MustTopology(p int) *Topology {
	t, err := s.Topology(p)
	if err != nil {
		panic(err)
	}
	return t
}

// NodeOf returns the node index of a rank.
func (t *Topology) NodeOf(r int) int {
	if t.Tiers == 1 {
		return 0
	}
	return r / t.PerNode
}

// Tier returns the link tier connecting two ranks: TierIntra within a
// node, TierInter across nodes.
func (t *Topology) Tier(a, b int) int {
	if t.NodeOf(a) == t.NodeOf(b) {
		return TierIntra
	}
	return TierInter
}

// worstTier returns the slowest tier any pair in the (sorted) group
// communicates over: TierInter iff the group spans nodes.
func (t *Topology) worstTier(group []int) int {
	if t.Tiers == 1 || len(group) < 2 {
		return TierIntra
	}
	if t.NodeOf(group[0]) != t.NodeOf(group[len(group)-1]) {
		return TierInter
	}
	return TierIntra
}

// WorstTier returns the slowest tier any pair in the (sorted) group
// communicates over: TierInter iff the group spans nodes. The overlap
// planner (internal/plan) uses it to bind each collective to a per-tier
// link resource consistently with how the fabric prices the group.
func (t *Topology) WorstTier(group []int) int { return t.worstTier(group) }

// Degraded returns a copy with every link's latency multiplied by
// alphaMul and bandwidth divided by betaMul (multipliers < 1 read as
// 1), mirroring hw.Model.Degraded so fault-degraded topologies price
// identically to fault-degraded flat models.
func (t *Topology) Degraded(alphaMul, betaMul float64) *Topology {
	if alphaMul < 1 {
		alphaMul = 1
	}
	if betaMul < 1 {
		betaMul = 1
	}
	c := *t
	for i := range c.Links {
		c.Links[i].Alpha *= alphaMul
		c.Links[i].Beta /= betaMul
	}
	return &c
}

// model returns the hardware model a collective on the given tier runs
// at: h with its link parameters replaced by the tier's. On a Flat
// topology built from h this is h unchanged, bit-for-bit.
func (t *Topology) model(h *hw.Model, tier int) *hw.Model {
	m := *h
	m.LinkLatency = t.Links[tier].Alpha
	m.LinkBandwidth = t.Links[tier].Beta
	return &m
}

// nodeGroups partitions a sorted group by node, preserving order.
// ok reports whether the group is node-uniform and multi-node: at
// least two nodes, every node contributing the same member count —
// the shape the two-level hierarchical algorithms require.
func (t *Topology) nodeGroups(group []int) (nodes [][]int, ok bool) {
	if t.Tiers == 1 {
		return nil, false
	}
	var cur []int
	curNode := -1
	for _, r := range group {
		n := t.NodeOf(r)
		if n != curNode {
			if cur != nil {
				nodes = append(nodes, cur)
			}
			cur, curNode = nil, n
		}
		cur = append(cur, r)
	}
	if cur != nil {
		nodes = append(nodes, cur)
	}
	if len(nodes) < 2 {
		return nodes, false
	}
	g := len(nodes[0])
	for _, nd := range nodes[1:] {
		if len(nd) != g {
			return nodes, false
		}
	}
	return nodes, true
}

// NodeGroups partitions a sorted group by node; ok reports whether the
// group qualifies for the two-level hierarchical algorithms (at least
// two nodes, all contributing the same member count). The fabric uses
// it to decide — consistently on every rank, from shared state only —
// whether an explicitly requested hierarchical collective runs its
// staged schedule.
func (t *Topology) NodeGroups(group []int) ([][]int, bool) { return t.nodeGroups(group) }

// Barrier returns the latency-only synchronization cost of a group:
// the worst participating tier's α, matching the flat fabric's
// linkModel(group).LinkLatency on single-tier groups.
func (t *Topology) Barrier(h *hw.Model, group []int) float64 {
	if len(group) <= 1 {
		return 0
	}
	return t.model(h, t.worstTier(group)).LinkLatency
}
