package topo

import (
	"fmt"
	"math"

	"gnnrdm/internal/hw"
)

// Algorithm selects how a collective is scheduled over the topology.
type Algorithm int

const (
	// Auto picks the cheapest applicable algorithm from the cost model
	// (the per-collective autotuner). Groups whose members share a node
	// — including every group on a flat topology — always resolve to
	// Ring, so single-node machines reproduce the pre-topology fabric
	// exactly.
	Auto Algorithm = iota
	// Ring is the flat ring family (the NCCL-regime formulas of
	// hw.CollectiveTime): pipelined ring for allgather/allreduce/
	// reduce-scatter, a latency-optimal tree broadcast, and direct
	// pairwise exchange for all-to-all.
	Ring
	// RHD is recursive halving/doubling (classic MPI log-round
	// algorithms; Bruck for all-to-all). Halving/doubling applies to
	// power-of-two groups; other groups fall back to Ring.
	RHD
	// Hier is the two-level hierarchical schedule: intra-node
	// reduce/gather, inter-node exchange between peer positions, then
	// intra-node broadcast/scatter. It applies to node-uniform
	// multi-node groups (every node contributing the same member
	// count); other groups fall back to Ring.
	Hier
)

func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case Ring:
		return "ring"
	case RHD:
		return "rhd"
	case Hier:
		return "hier"
	}
	return "unknown"
}

// ParseAlgorithm resolves an algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range []Algorithm{Auto, Ring, RHD, Hier} {
		if a.String() == s {
			return a, nil
		}
	}
	return Auto, fmt.Errorf("topo: unknown algorithm %q", s)
}

// Cost prices one collective: the modelled makespan (time until the
// last participant finishes) and the exact bytes crossing each link
// tier. Tier[0]+Tier[1] is what the fabric's volume meter records.
type Cost struct {
	Time float64
	Tier [NumTiers]int64
}

// Bytes returns the total metered volume across tiers.
func (c Cost) Bytes() int64 { return c.Tier[TierIntra] + c.Tier[TierInter] }

func (c *Cost) addTier(t [NumTiers]int64) {
	c.Tier[TierIntra] += t[TierIntra]
	c.Tier[TierInter] += t[TierInter]
}

// ---------------------------------------------------------------------
// Ring algorithms. Times come from hw.CollectiveTime on the worst
// participating tier's link (a ring is as slow as its slowest link),
// which on a flat topology reproduces the pre-topology fabric clocks
// bit-for-bit. Per-tier bytes come from an exact integer census of the
// ring's links, whose total equals the classic formulas: B·(p-1) for
// allgather/reduce-scatter/broadcast, 2B·(p-1) for allreduce, and the
// sum of cross pairs for all-to-all.

func (t *Topology) ringTime(h *hw.Model, kind hw.CollectiveKind, group []int, bytes int64) float64 {
	return t.model(h, t.worstTier(group)).CollectiveTime(kind, len(group), bytes)
}

// ringAllGather prices a ring allgather of per-position chunks (bytes).
// Ring link ℓ (position ℓ → ℓ+1) carries every chunk except position
// ℓ+1's own: B − chunks[ℓ+1].
func (t *Topology) ringAllGather(h *hw.Model, group []int, chunks []int64) Cost {
	p := len(group)
	total := sum(chunks)
	c := Cost{Time: t.ringTime(h, hw.OpAllGather, group, total)}
	if p <= 1 {
		return c
	}
	for l := 0; l < p; l++ {
		next := (l + 1) % p
		c.Tier[t.Tier(group[l], group[next])] += total - chunks[next]
	}
	return c
}

// ringReduceScatter prices a ring reduce-scatter of a total-byte buffer
// into per-position counts (bytes). Link ℓ carries B − counts[ℓ].
func (t *Topology) ringReduceScatter(h *hw.Model, group []int, counts []int64) Cost {
	p := len(group)
	total := sum(counts)
	c := Cost{Time: t.ringTime(h, hw.OpReduceScatter, group, total)}
	if p <= 1 {
		return c
	}
	for l := 0; l < p; l++ {
		c.Tier[t.Tier(group[l], group[(l+1)%p])] += total - counts[l]
	}
	return c
}

// ringAllReduce prices a ring allreduce (reduce-scatter over even
// chunks, then allgather): link ℓ carries (B − cℓ) + (B − cℓ₊₁).
func (t *Topology) ringAllReduce(h *hw.Model, group []int, bytes int64) Cost {
	p := len(group)
	c := Cost{Time: t.ringTime(h, hw.OpAllReduce, group, bytes)}
	if p <= 1 {
		return c
	}
	ch := evenChunks(bytes, p)
	for l := 0; l < p; l++ {
		next := (l + 1) % p
		c.Tier[t.Tier(group[l], group[next])] += (bytes - ch[l]) + (bytes - ch[next])
	}
	return c
}

// ringBroadcast prices a broadcast from the root position: the p−1
// links of the pipeline path from the root each carry the full buffer.
func (t *Topology) ringBroadcast(h *hw.Model, group []int, rootIdx int, bytes int64) Cost {
	p := len(group)
	c := Cost{Time: t.ringTime(h, hw.OpBroadcast, group, bytes)}
	if p <= 1 {
		return c
	}
	for k := 0; k < p-1; k++ {
		a := group[(rootIdx+k)%p]
		b := group[(rootIdx+k+1)%p]
		c.Tier[t.Tier(a, b)] += bytes
	}
	return c
}

// ringAllToAll prices direct pairwise exchange: pair(i, j) gives the
// bytes position i sends position j (i ≠ j; self pairs are ignored).
func (t *Topology) ringAllToAll(h *hw.Model, group []int, pair func(i, j int) int64) Cost {
	p := len(group)
	var c Cost
	var maxInj int64
	for i := 0; i < p; i++ {
		var inj int64
		for j := 0; j < p; j++ {
			if j == i {
				continue
			}
			b := pair(i, j)
			if b <= 0 {
				continue
			}
			c.Tier[t.Tier(group[i], group[j])] += b
			inj += b
		}
		if inj > maxInj {
			maxInj = inj
		}
	}
	c.Time = t.ringTime(h, hw.OpAllToAll, group, maxInj)
	return c
}

// ---------------------------------------------------------------------
// Recursive halving/doubling. Classic hypercube schedules for
// power-of-two groups: halving exchanges at distances p/2 … 1 with
// message sizes shrinking by half each round; doubling reverses. Total
// bytes equal the ring algorithms' exactly — only the latency profile
// (log₂p rounds instead of p−1) and the per-tier placement differ.

func isPow2(p int) bool { return p > 0 && p&(p-1) == 0 }

// rhdHalving prices the reduce-scatter direction over final ownership
// segments seg (bytes per group position): at distance d each pair
// splits its current contiguous segment range at the midpoint, every
// device sending the half it gives up. Requires pow-2 len(group).
func (t *Topology) rhdHalving(h *hw.Model, group []int, seg []int64) Cost {
	p := len(group)
	pre := prefix(seg)
	lo := make([]int, p)
	hi := make([]int, p)
	for i := range hi {
		hi[i] = p
	}
	var c Cost
	for d := p / 2; d >= 1; d /= 2 {
		var maxSend int64
		var tb [NumTiers]int64
		wt := TierIntra
		for i := 0; i < p; i++ {
			j := i ^ d
			if j < i {
				continue
			}
			mid := (lo[i] + hi[i]) / 2
			sendI := pre[hi[i]] - pre[mid]
			sendJ := pre[mid] - pre[lo[j]]
			tier := t.Tier(group[i], group[j])
			tb[tier] += sendI + sendJ
			if tier > wt {
				wt = tier
			}
			if sendI > maxSend {
				maxSend = sendI
			}
			if sendJ > maxSend {
				maxSend = sendJ
			}
			hi[i] = mid
			lo[j] = mid
		}
		link := t.model(h, wt)
		c.Time += link.LinkLatency + float64(maxSend)/link.LinkBandwidth
		c.addTier(tb)
	}
	return c
}

// rhdDoubling prices the allgather direction over contributed segments
// seg: at distance d each pair exchanges everything accumulated so far.
func (t *Topology) rhdDoubling(h *hw.Model, group []int, seg []int64) Cost {
	p := len(group)
	acc := append([]int64(nil), seg...)
	var c Cost
	for d := 1; d < p; d *= 2 {
		var maxSend int64
		var tb [NumTiers]int64
		wt := TierIntra
		for i := 0; i < p; i++ {
			j := i ^ d
			if j < i {
				continue
			}
			tier := t.Tier(group[i], group[j])
			tb[tier] += acc[i] + acc[j]
			if tier > wt {
				wt = tier
			}
			if acc[i] > maxSend {
				maxSend = acc[i]
			}
			if acc[j] > maxSend {
				maxSend = acc[j]
			}
			s := acc[i] + acc[j]
			acc[i], acc[j] = s, s
		}
		link := t.model(h, wt)
		c.Time += link.LinkLatency + float64(maxSend)/link.LinkBandwidth
		c.addTier(tb)
	}
	return c
}

func (t *Topology) rhdAllReduce(h *hw.Model, group []int, bytes int64) Cost {
	if bytes <= 0 {
		return Cost{Time: h.KernelLaunch}
	}
	ch := evenChunks(bytes, len(group))
	c := t.rhdHalving(h, group, ch)
	d := t.rhdDoubling(h, group, ch)
	c.Time += d.Time
	c.addTier(d.Tier)
	return c
}

func (t *Topology) rhdAllGather(h *hw.Model, group []int, chunks []int64) Cost {
	if sum(chunks) <= 0 {
		return Cost{Time: h.KernelLaunch}
	}
	return t.rhdDoubling(h, group, chunks)
}

func (t *Topology) rhdReduceScatter(h *hw.Model, group []int, counts []int64) Cost {
	if sum(counts) <= 0 {
		return Cost{Time: h.KernelLaunch}
	}
	return t.rhdHalving(h, group, counts)
}

// bruckAllToAll prices the Bruck log-round all-to-all (any group
// size): the block for offset o = (dst−src) mod p hops at every set
// bit of o, so total volume exceeds direct exchange by the popcount —
// the classic latency-for-bandwidth trade.
func (t *Topology) bruckAllToAll(h *hw.Model, group []int, pair func(i, j int) int64) Cost {
	p := len(group)
	var c Cost
	any := false
	for d := 1; d < p; d *= 2 {
		inj := make([]int64, p)
		var tb [NumTiers]int64
		wt := TierIntra
		for s := 0; s < p; s++ {
			for dst := 0; dst < p; dst++ {
				if dst == s {
					continue
				}
				o := (dst - s + p) % p
				if o&d == 0 {
					continue
				}
				b := pair(s, dst)
				if b <= 0 {
					continue
				}
				v := (s + o&(d-1)) % p
				w := (v + d) % p
				tier := t.Tier(group[v], group[w])
				tb[tier] += b
				if tier > wt {
					wt = tier
				}
				inj[v] += b
			}
		}
		link := t.model(h, wt)
		c.Time += link.LinkLatency + float64(maxOf(inj))/link.LinkBandwidth
		c.addTier(tb)
		any = any || tb[TierIntra]+tb[TierInter] > 0
	}
	if !any {
		return Cost{Time: h.KernelLaunch}
	}
	return c
}

// ---------------------------------------------------------------------
// Two-level hierarchical algorithms: stage 1 inside each node (tier-0
// links), stage 2 between peer positions across nodes (tier-1 links),
// stage 3 inside each node again. Stage times take the max over the
// concurrent subgroups, matching the staged fabric execution's
// makespan under synchronized entry; stage byte censuses are the ring
// censuses of the subgroups. For allreduce and allgather the total
// bytes equal the flat ring's exactly; hierarchical reduce-scatter and
// all-to-all trade extra intra-node bytes for fewer inter-node ones.

func (t *Topology) hierAllReduce(h *hw.Model, group []int, bytes int64) Cost {
	nodes, ok := t.nodeGroups(group)
	if !ok {
		return t.ringAllReduce(h, group, bytes)
	}
	g := len(nodes[0])
	ch := evenChunks(bytes, g)
	var c Cost
	// Stage 1: intra-node reduce-scatter into even chunks.
	st := 0.0
	for _, nd := range nodes {
		s := t.ringReduceScatter(h, nd, ch)
		c.addTier(s.Tier)
		st = math.Max(st, s.Time)
	}
	c.Time += st
	// Stage 2: each position's plane (one member per node) allreduces
	// its chunk across nodes.
	st = 0.0
	plane := make([]int, len(nodes))
	for i := 0; i < g; i++ {
		for j, nd := range nodes {
			plane[j] = nd[i]
		}
		s := t.ringAllReduce(h, plane, ch[i])
		c.addTier(s.Tier)
		st = math.Max(st, s.Time)
	}
	c.Time += st
	// Stage 3: intra-node allgather of the reduced chunks.
	st = 0.0
	for _, nd := range nodes {
		s := t.ringAllGather(h, nd, ch)
		c.addTier(s.Tier)
		st = math.Max(st, s.Time)
	}
	c.Time += st
	return c
}

func (t *Topology) hierAllGather(h *hw.Model, group []int, chunks []int64) Cost {
	nodes, ok := t.nodeGroups(group)
	if !ok {
		return t.ringAllGather(h, group, chunks)
	}
	g := len(nodes[0])
	total := sum(chunks)
	totals := make([]int64, len(nodes))
	for j := range nodes {
		totals[j] = sum(chunks[j*g : (j+1)*g])
	}
	var c Cost
	// Stage 1: intra-node allgather of the node's own chunks.
	st := 0.0
	for j, nd := range nodes {
		s := t.ringAllGather(h, nd, chunks[j*g:(j+1)*g])
		c.addTier(s.Tier)
		st = math.Max(st, s.Time)
	}
	c.Time += st
	// Stage 2: node leaders allgather the per-node totals.
	leaders := make([]int, len(nodes))
	for j, nd := range nodes {
		leaders[j] = nd[0]
	}
	s := t.ringAllGather(h, leaders, totals)
	c.addTier(s.Tier)
	c.Time += s.Time
	// Stage 3: each leader broadcasts the remote nodes' bytes locally.
	st = 0.0
	for j, nd := range nodes {
		s := t.ringBroadcast(h, nd, 0, total-totals[j])
		c.addTier(s.Tier)
		st = math.Max(st, s.Time)
	}
	c.Time += st
	return c
}

func (t *Topology) hierReduceScatter(h *hw.Model, group []int, counts []int64) Cost {
	nodes, ok := t.nodeGroups(group)
	if !ok {
		return t.ringReduceScatter(h, group, counts)
	}
	g := len(nodes[0])
	total := sum(counts)
	ch := evenChunks(total, g)
	chOff := prefix(ch)
	segOff := prefix(counts)
	overlap := func(aLo, aHi, bLo, bHi int64) int64 {
		lo, hi := maxI64(aLo, bLo), minI64(aHi, bHi)
		if hi > lo {
			return hi - lo
		}
		return 0
	}
	var c Cost
	// Stage 1: intra-node reduce-scatter into even chunks.
	st := 0.0
	for _, nd := range nodes {
		s := t.ringReduceScatter(h, nd, ch)
		c.addTier(s.Tier)
		st = math.Max(st, s.Time)
	}
	c.Time += st
	// Stage 2: plane i reduce-scatters chunk i across nodes, split at
	// the node-segment boundaries of the final counts.
	st = 0.0
	plane := make([]int, len(nodes))
	cnts := make([]int64, len(nodes))
	for i := 0; i < g; i++ {
		for j, nd := range nodes {
			plane[j] = nd[i]
			cnts[j] = overlap(chOff[i], chOff[i+1], segOff[j*g], segOff[(j+1)*g])
		}
		s := t.ringReduceScatter(h, plane, cnts)
		c.addTier(s.Tier)
		st = math.Max(st, s.Time)
	}
	c.Time += st
	// Stage 3: an intra-node all-to-all moves each chunk∩segment piece
	// to its final owner.
	st = 0.0
	for j, nd := range nodes {
		base := j * g
		s := t.ringAllToAll(h, nd, func(a, b int) int64 {
			return overlap(chOff[a], chOff[a+1], segOff[base+b], segOff[base+b+1])
		})
		c.addTier(s.Tier)
		st = math.Max(st, s.Time)
	}
	c.Time += st
	return c
}

func (t *Topology) hierAllToAll(h *hw.Model, group []int, pair func(i, j int) int64) Cost {
	nodes, ok := t.nodeGroups(group)
	if !ok {
		return t.ringAllToAll(h, group, pair)
	}
	g := len(nodes[0])
	m := len(nodes)
	pos := func(j, a int) int { return j*g + a }
	crossOut := make([][]int64, m)
	crossIn := make([][]int64, m)
	nodePair := make([][]int64, m)
	for j := 0; j < m; j++ {
		crossOut[j] = make([]int64, g)
		crossIn[j] = make([]int64, g)
		nodePair[j] = make([]int64, m)
		for a := 0; a < g; a++ {
			for q := 0; q < m*g; q++ {
				if q/g == j {
					continue
				}
				crossOut[j][a] += pair(pos(j, a), q)
				crossIn[j][a] += pair(q, pos(j, a))
			}
		}
		for jj := 0; jj < m; jj++ {
			if jj == j {
				continue
			}
			for a := 0; a < g; a++ {
				for b := 0; b < g; b++ {
					nodePair[j][jj] += pair(pos(j, a), pos(jj, b))
				}
			}
		}
	}
	var c Cost
	// Stage 1: intra-node exchange; non-leader members also forward
	// their cross-node bytes to the leader (position 0).
	st := 0.0
	for j, nd := range nodes {
		jj := j
		s := t.ringAllToAll(h, nd, func(a, b int) int64 {
			v := pair(pos(jj, a), pos(jj, b))
			if b == 0 && a != 0 {
				v += crossOut[jj][a]
			}
			return v
		})
		c.addTier(s.Tier)
		st = math.Max(st, s.Time)
	}
	c.Time += st
	// Stage 2: leaders exchange the aggregated node-to-node traffic.
	leaders := make([]int, m)
	for j, nd := range nodes {
		leaders[j] = nd[0]
	}
	s := t.ringAllToAll(h, leaders, func(a, b int) int64 { return nodePair[a][b] })
	c.addTier(s.Tier)
	c.Time += s.Time
	// Stage 3: leaders scatter the received remote bytes locally.
	st = 0.0
	for j, nd := range nodes {
		jj := j
		s := t.ringAllToAll(h, nd, func(a, b int) int64 {
			if a == 0 && b != 0 {
				return crossIn[jj][b]
			}
			return 0
		})
		c.addTier(s.Tier)
		st = math.Max(st, s.Time)
	}
	c.Time += st
	return c
}

// ---------------------------------------------------------------------
// Entry points. Each resolves the requested algorithm (falling back to
// Ring when the requested one does not apply to the group) or, for
// Auto, picks the cheapest applicable algorithm — except that groups
// confined to one node always resolve to Ring, which pins the flat
// topology to the pre-topology fabric's exact behaviour.

// AllReduce prices an allreduce of a bytes-sized buffer.
func (t *Topology) AllReduce(h *hw.Model, alg Algorithm, group []int, bytes int64) (Algorithm, Cost) {
	p := len(group)
	switch alg {
	case Ring:
		return Ring, t.ringAllReduce(h, group, bytes)
	case RHD:
		if isPow2(p) && p > 1 {
			return RHD, t.rhdAllReduce(h, group, bytes)
		}
		return Ring, t.ringAllReduce(h, group, bytes)
	case Hier:
		if _, ok := t.nodeGroups(group); ok {
			return Hier, t.hierAllReduce(h, group, bytes)
		}
		return Ring, t.ringAllReduce(h, group, bytes)
	}
	best := t.ringAllReduce(h, group, bytes)
	bestAlg := Ring
	if t.worstTier(group) == TierIntra {
		return bestAlg, best
	}
	if isPow2(p) {
		if c := t.rhdAllReduce(h, group, bytes); c.Time < best.Time {
			best, bestAlg = c, RHD
		}
	}
	if _, ok := t.nodeGroups(group); ok {
		if c := t.hierAllReduce(h, group, bytes); c.Time < best.Time {
			best, bestAlg = c, Hier
		}
	}
	return bestAlg, best
}

// AllGather prices an allgather of per-position chunks (bytes).
func (t *Topology) AllGather(h *hw.Model, alg Algorithm, group []int, chunks []int64) (Algorithm, Cost) {
	p := len(group)
	switch alg {
	case Ring:
		return Ring, t.ringAllGather(h, group, chunks)
	case RHD:
		if isPow2(p) && p > 1 {
			return RHD, t.rhdAllGather(h, group, chunks)
		}
		return Ring, t.ringAllGather(h, group, chunks)
	case Hier:
		if _, ok := t.nodeGroups(group); ok {
			return Hier, t.hierAllGather(h, group, chunks)
		}
		return Ring, t.ringAllGather(h, group, chunks)
	}
	best := t.ringAllGather(h, group, chunks)
	bestAlg := Ring
	if t.worstTier(group) == TierIntra {
		return bestAlg, best
	}
	if isPow2(p) {
		if c := t.rhdAllGather(h, group, chunks); c.Time < best.Time {
			best, bestAlg = c, RHD
		}
	}
	if _, ok := t.nodeGroups(group); ok {
		if c := t.hierAllGather(h, group, chunks); c.Time < best.Time {
			best, bestAlg = c, Hier
		}
	}
	return bestAlg, best
}

// ReduceScatter prices a reduce-scatter into per-position counts
// (bytes).
func (t *Topology) ReduceScatter(h *hw.Model, alg Algorithm, group []int, counts []int64) (Algorithm, Cost) {
	p := len(group)
	switch alg {
	case Ring:
		return Ring, t.ringReduceScatter(h, group, counts)
	case RHD:
		if isPow2(p) && p > 1 {
			return RHD, t.rhdReduceScatter(h, group, counts)
		}
		return Ring, t.ringReduceScatter(h, group, counts)
	case Hier:
		if _, ok := t.nodeGroups(group); ok {
			return Hier, t.hierReduceScatter(h, group, counts)
		}
		return Ring, t.ringReduceScatter(h, group, counts)
	}
	best := t.ringReduceScatter(h, group, counts)
	bestAlg := Ring
	if t.worstTier(group) == TierIntra {
		return bestAlg, best
	}
	if isPow2(p) {
		if c := t.rhdReduceScatter(h, group, counts); c.Time < best.Time {
			best, bestAlg = c, RHD
		}
	}
	if _, ok := t.nodeGroups(group); ok {
		if c := t.hierReduceScatter(h, group, counts); c.Time < best.Time {
			best, bestAlg = c, Hier
		}
	}
	return bestAlg, best
}

// AllToAll prices a personalized exchange; pair(i, j) gives the bytes
// position i sends position j.
func (t *Topology) AllToAll(h *hw.Model, alg Algorithm, group []int, pair func(i, j int) int64) (Algorithm, Cost) {
	switch alg {
	case Ring:
		return Ring, t.ringAllToAll(h, group, pair)
	case RHD:
		if len(group) > 1 {
			return RHD, t.bruckAllToAll(h, group, pair)
		}
		return Ring, t.ringAllToAll(h, group, pair)
	case Hier:
		if _, ok := t.nodeGroups(group); ok {
			return Hier, t.hierAllToAll(h, group, pair)
		}
		return Ring, t.ringAllToAll(h, group, pair)
	}
	best := t.ringAllToAll(h, group, pair)
	bestAlg := Ring
	if t.worstTier(group) == TierIntra {
		return bestAlg, best
	}
	if c := t.bruckAllToAll(h, group, pair); c.Time < best.Time {
		best, bestAlg = c, RHD
	}
	if _, ok := t.nodeGroups(group); ok {
		if c := t.hierAllToAll(h, group, pair); c.Time < best.Time {
			best, bestAlg = c, Hier
		}
	}
	return bestAlg, best
}

// Broadcast prices a broadcast from the given root position (ring/tree
// only; the hierarchical family does not apply).
func (t *Topology) Broadcast(h *hw.Model, group []int, rootIdx int, bytes int64) Cost {
	return t.ringBroadcast(h, group, rootIdx, bytes)
}

// ---------------------------------------------------------------------

// EvenChunks is the exported form of evenChunks, used by the fabric's
// staged hierarchical collectives to slice buffers exactly the way the
// cost model assumes.
func EvenChunks(bytes int64, p int) []int64 { return evenChunks(bytes, p) }

// evenChunks splits a byte count into p chunks the way the fabric
// splits float32 buffers: even element (4-byte) chunks with the
// remainder elements on the first chunks; stray non-element bytes land
// on chunk 0.
func evenChunks(bytes int64, p int) []int64 {
	n := bytes / 4
	out := make([]int64, p)
	q, r := n/int64(p), n%int64(p)
	for i := range out {
		c := q
		if int64(i) < r {
			c++
		}
		out[i] = c * 4
	}
	out[0] += bytes - n*4
	return out
}

func sum(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

func prefix(xs []int64) []int64 {
	out := make([]int64, len(xs)+1)
	for i, x := range xs {
		out[i+1] = out[i] + x
	}
	return out
}

func maxOf(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
