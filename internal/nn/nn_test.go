package nn

import (
	"math"
	"math/rand"
	"testing"

	"gnnrdm/internal/tensor"
)

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = ||w - target||^2 with gradient 2(w - target).
	target := tensor.FromRowMajor(1, 3, []float32{1, -2, 3})
	w := tensor.NewDense(1, 3)
	opt := NewAdam(0.05, []*tensor.Dense{w})
	for i := 0; i < 2000; i++ {
		g := w.Clone()
		g.Sub(target)
		g.Scale(2)
		opt.Step([]*tensor.Dense{w}, []*tensor.Dense{g})
	}
	if tensor.MaxAbsDiff(w, target) > 1e-2 {
		t.Fatalf("Adam failed to converge: %v", w.Data)
	}
	if opt.StepCount() != 2000 {
		t.Fatalf("step count %d", opt.StepCount())
	}
}

func TestAdamBiasCorrectionFirstStep(t *testing.T) {
	// After one step with gradient g, the update magnitude is ~lr
	// regardless of g's scale (the signature Adam property).
	for _, scale := range []float32{1e-3, 1, 1e3} {
		w := tensor.NewDense(1, 1)
		opt := NewAdam(0.1, []*tensor.Dense{w})
		g := tensor.FromRowMajor(1, 1, []float32{scale})
		opt.Step([]*tensor.Dense{w}, []*tensor.Dense{g})
		if math.Abs(float64(w.Data[0])+0.1) > 1e-3 {
			t.Fatalf("scale %v: first step %v want ~-0.1", scale, w.Data[0])
		}
	}
}

func TestAdamParamCountMismatchPanics(t *testing.T) {
	w := tensor.NewDense(1, 1)
	opt := NewAdam(0.1, []*tensor.Dense{w})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	opt.Step([]*tensor.Dense{w, w}, []*tensor.Dense{w, w})
}

func TestSoftmaxCrossEntropyUniform(t *testing.T) {
	// Zero logits over k classes: loss = ln(k).
	logits := tensor.NewDense(4, 5)
	labels := []int32{0, 1, 2, 3}
	loss, grad, count := SoftmaxCrossEntropy(logits, labels, nil)
	if count != 4 {
		t.Fatalf("count=%d", count)
	}
	if math.Abs(loss-math.Log(5)) > 1e-6 {
		t.Fatalf("loss=%v want ln(5)=%v", loss, math.Log(5))
	}
	// Gradient rows sum to zero.
	for i := 0; i < 4; i++ {
		var s float64
		for _, v := range grad.Row(i) {
			s += float64(v)
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("row %d grad sum %v", i, s)
		}
	}
}

func TestSoftmaxCrossEntropyGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	logits := tensor.NewDense(3, 4)
	logits.Randomize(rng, 2)
	labels := []int32{2, 0, 3}
	_, grad, _ := SoftmaxCrossEntropy(logits, labels, nil)
	// Central-difference check on every coordinate.
	const h = 1e-3
	for i := 0; i < logits.Rows; i++ {
		for j := 0; j < logits.Cols; j++ {
			orig := logits.At(i, j)
			logits.Set(i, j, orig+h)
			lp, _, _ := SoftmaxCrossEntropy(logits, labels, nil)
			logits.Set(i, j, orig-h)
			lm, _, _ := SoftmaxCrossEntropy(logits, labels, nil)
			logits.Set(i, j, orig)
			numeric := (lp - lm) / (2 * h)
			if math.Abs(numeric-float64(grad.At(i, j))) > 1e-3 {
				t.Fatalf("grad(%d,%d): analytic %v numeric %v", i, j, grad.At(i, j), numeric)
			}
		}
	}
}

func TestSoftmaxCrossEntropyMask(t *testing.T) {
	logits := tensor.NewDense(4, 3)
	logits.Set(0, 0, 10) // row 0 confidently class 0
	labels := []int32{1, 0, 0, 0}
	mask := []bool{true, false, false, false}
	loss, grad, count := SoftmaxCrossEntropy(logits, labels, mask)
	if count != 1 {
		t.Fatalf("count=%d", count)
	}
	if loss < 5 {
		t.Fatalf("confidently wrong row should have high loss, got %v", loss)
	}
	for i := 1; i < 4; i++ {
		for _, v := range grad.Row(i) {
			if v != 0 {
				t.Fatal("unmasked rows must have zero grad")
			}
		}
	}
}

func TestSoftmaxCrossEntropySkipsUnlabeled(t *testing.T) {
	logits := tensor.NewDense(3, 2)
	labels := []int32{-1, 1, -1}
	_, grad, count := SoftmaxCrossEntropy(logits, labels, nil)
	if count != 1 {
		t.Fatalf("count=%d want 1", count)
	}
	for _, v := range grad.Row(0) {
		if v != 0 {
			t.Fatal("unlabeled rows must have zero grad")
		}
	}
}

func TestSoftmaxCrossEntropyEmptyMask(t *testing.T) {
	logits := tensor.NewDense(2, 2)
	loss, grad, count := SoftmaxCrossEntropy(logits, []int32{0, 1}, []bool{false, false})
	if loss != 0 || count != 0 {
		t.Fatalf("empty selection: loss=%v count=%d", loss, count)
	}
	if grad.FrobeniusNorm() != 0 {
		t.Fatal("empty selection grad must be zero")
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromRowMajor(3, 2, []float32{
		2, 1, // pred 0
		0, 3, // pred 1
		5, 4, // pred 0
	})
	labels := []int32{0, 1, 1}
	if got := Accuracy(logits, labels, nil); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("accuracy=%v", got)
	}
	if got := Accuracy(logits, labels, []bool{true, false, false}); got != 1 {
		t.Fatalf("masked accuracy=%v", got)
	}
	if got := Accuracy(logits, []int32{-1, -1, -1}, nil); got != 0 {
		t.Fatalf("all-unlabeled accuracy=%v", got)
	}
}

func TestTrainingLoopDecreasesLoss(t *testing.T) {
	// One linear layer trained on separable data must reduce loss.
	rng := rand.New(rand.NewSource(2))
	n, f, k := 64, 8, 4
	x := tensor.NewDense(n, f)
	labels := make([]int32, n)
	for i := 0; i < n; i++ {
		labels[i] = int32(i % k)
		for j := 0; j < f; j++ {
			base := float32(0)
			if j%k == int(labels[i]) {
				base = 2
			}
			x.Set(i, j, base+float32(rng.NormFloat64())*0.3)
		}
	}
	w := tensor.NewDense(f, k)
	w.GlorotInit(rng)
	opt := NewAdam(0.05, []*tensor.Dense{w})
	var first, last float64
	for epoch := 0; epoch < 50; epoch++ {
		logits := tensor.MatMul(x, w)
		loss, grad, _ := SoftmaxCrossEntropy(logits, labels, nil)
		gw := tensor.MatMulTA(x, grad)
		opt.Step([]*tensor.Dense{w}, []*tensor.Dense{gw})
		if epoch == 0 {
			first = loss
		}
		last = loss
	}
	if last > first/2 {
		t.Fatalf("loss did not drop: %v -> %v", first, last)
	}
}

func TestAdamMomentsRestore(t *testing.T) {
	w := tensor.NewDense(2, 2)
	opt := NewAdam(0.1, []*tensor.Dense{w})
	g := tensor.NewDense(2, 2)
	g.Fill(1)
	opt.Step([]*tensor.Dense{w}, []*tensor.Dense{g})
	m, v, step := opt.Moments()
	if step != 1 || m[0].At(0, 0) == 0 || v[0].At(0, 0) == 0 {
		t.Fatal("moments not populated")
	}
	// Restore into a fresh optimizer: next steps must match.
	w2 := w.Clone()
	opt2 := NewAdam(0.1, []*tensor.Dense{w2})
	opt2.Restore(m, v, step)
	opt.Step([]*tensor.Dense{w}, []*tensor.Dense{g})
	opt2.Step([]*tensor.Dense{w2}, []*tensor.Dense{g})
	if tensor.MaxAbsDiff(w, w2) != 0 {
		t.Fatal("restored optimizer diverged")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Restore count mismatch must panic")
		}
	}()
	opt2.Restore(nil, nil, 0)
}

func TestWeightedLossMatchesManualScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	logits := tensor.NewDense(4, 3)
	logits.Randomize(rng, 1)
	labels := []int32{0, 1, 2, 0}
	weights := []float32{2, 0, 1, 0.5}
	sum, grad, wtot := WeightedSoftmaxCrossEntropySum(logits, labels, nil, weights)
	if wtot != 3.5 {
		t.Fatalf("wtot=%v", wtot)
	}
	// Row with weight 0 contributes nothing.
	for _, v := range grad.Row(1) {
		if v != 0 {
			t.Fatal("zero-weight row must have zero grad")
		}
	}
	// Manual check: weighted sum equals sum of per-row losses x weight.
	var manual float64
	for i := range labels {
		s, g, _ := SoftmaxCrossEntropySum(logits.RowSlice(i, i+1), labels[i:i+1], nil)
		manual += s * float64(weights[i])
		_ = g
	}
	if math.Abs(sum-manual) > 1e-6 {
		t.Fatalf("weighted sum %v want %v", sum, manual)
	}
}
