// Package nn provides the neural-network pieces shared by every trainer
// in the reproduction: Adam, softmax cross-entropy (loss and gradient),
// and accuracy metrics. All trainers in the paper (RDM, CAGNET, DGCL,
// GraphSAINT variants) use Adam with softmax cross-entropy.
package nn

import (
	"math"

	"gnnrdm/internal/tensor"
)

// Adam implements the Adam optimizer over a set of weight matrices.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	step int
	m, v []*tensor.Dense
}

// NewAdam creates an Adam optimizer with the paper's defaults
// (lr as given, beta1=0.9, beta2=0.999, eps=1e-8) for the given
// parameter shapes.
func NewAdam(lr float64, params []*tensor.Dense) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	for _, p := range params {
		a.m = append(a.m, tensor.NewDense(p.Rows, p.Cols))
		a.v = append(a.v, tensor.NewDense(p.Rows, p.Cols))
	}
	return a
}

// Step applies one Adam update: params[i] -= lr * mhat/(sqrt(vhat)+eps).
// params and grads must match the shapes given at construction.
func (a *Adam) Step(params, grads []*tensor.Dense) {
	if len(params) != len(a.m) || len(grads) != len(a.m) {
		panic("nn: Adam parameter count mismatch")
	}
	a.step++
	b1c := 1 - math.Pow(a.Beta1, float64(a.step))
	b2c := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range params {
		g := grads[i]
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			gj := float64(g.Data[j])
			mj := a.Beta1*float64(m.Data[j]) + (1-a.Beta1)*gj
			vj := a.Beta2*float64(v.Data[j]) + (1-a.Beta2)*gj*gj
			m.Data[j] = float32(mj)
			v.Data[j] = float32(vj)
			p.Data[j] -= float32(a.LR * (mj / b1c) / (math.Sqrt(vj/b2c) + a.Eps))
		}
	}
}

// StepCount returns the number of updates applied so far.
func (a *Adam) StepCount() int { return a.step }

// Moments exposes the first/second-moment accumulators and step counter
// for checkpointing. The returned matrices alias internal state.
func (a *Adam) Moments() (m, v []*tensor.Dense, step int) { return a.m, a.v, a.step }

// Restore replaces the optimizer state from a checkpoint. Shapes must
// match the construction-time parameters.
func (a *Adam) Restore(m, v []*tensor.Dense, step int) {
	if len(m) != len(a.m) || len(v) != len(a.v) {
		panic("nn: Restore moment count mismatch")
	}
	for i := range m {
		a.m[i].CopyFrom(m[i])
		a.v[i].CopyFrom(v[i])
	}
	a.step = step
}

// SoftmaxCrossEntropy computes the mean softmax cross-entropy loss over
// the rows of logits selected by mask (all rows when mask is nil) against
// integer labels, and the gradient dL/dlogits (zero rows for unselected
// vertices). Rows with label < 0 are skipped. The gradient is normalized
// by the number of contributing rows, matching standard full-batch GCN
// training.
func SoftmaxCrossEntropy(logits *tensor.Dense, labels []int32, mask []bool) (loss float64, grad *tensor.Dense, count int) {
	sum, grad, count := SoftmaxCrossEntropySum(logits, labels, mask)
	if count == 0 {
		return 0, grad, 0
	}
	grad.Scale(float32(1.0 / float64(count)))
	return sum / float64(count), grad, count
}

// SoftmaxCrossEntropySum is the unnormalized variant of
// SoftmaxCrossEntropy: it returns the loss sum and the unscaled gradient,
// so distributed callers can normalize by a globally reduced row count.
func SoftmaxCrossEntropySum(logits *tensor.Dense, labels []int32, mask []bool) (lossSum float64, grad *tensor.Dense, count int) {
	s, g, w := WeightedSoftmaxCrossEntropySum(logits, labels, mask, nil)
	return s, g, int(w)
}

// WeightedSoftmaxCrossEntropySum computes the per-row-weighted loss sum
// and unscaled gradient; weightTotal is the sum of contributing weights
// (the row count when weights is nil). GraphSAINT's loss normalization
// (λ_v) supplies per-node weights here.
func WeightedSoftmaxCrossEntropySum(logits *tensor.Dense, labels []int32, mask []bool, weights []float32) (lossSum float64, grad *tensor.Dense, weightTotal float64) {
	if len(labels) != logits.Rows {
		panic("nn: labels length mismatch")
	}
	if weights != nil && len(weights) != logits.Rows {
		panic("nn: weights length mismatch")
	}
	grad = tensor.NewDense(logits.Rows, logits.Cols)
	loss := 0.0
	for i := 0; i < logits.Rows; i++ {
		if (mask != nil && !mask[i]) || labels[i] < 0 {
			continue
		}
		inv := 1.0
		if weights != nil {
			inv = float64(weights[i])
			if inv <= 0 {
				continue
			}
		}
		weightTotal += inv
		row := logits.Row(i)
		grow := grad.Row(i)
		// Numerically stable log-softmax.
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum)
		y := labels[i]
		loss += inv * (logSum - float64(row[y]-maxv))
		for j := range row {
			p := math.Exp(float64(row[j]-maxv)) / sum
			grow[j] = float32(p * inv)
		}
		grow[y] -= float32(inv)
	}
	return loss, grad, weightTotal
}

// Accuracy returns the fraction of mask-selected rows whose argmax matches
// the label (all labeled rows when mask is nil).
func Accuracy(logits *tensor.Dense, labels []int32, mask []bool) float64 {
	correct, total := 0, 0
	for i := 0; i < logits.Rows; i++ {
		if (mask != nil && !mask[i]) || labels[i] < 0 {
			continue
		}
		total++
		row := logits.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
			_ = v
		}
		if int32(best) == labels[i] {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
