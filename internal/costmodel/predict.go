package costmodel

import (
	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
)

// PredictEpochTime combines the communication/computation counts of the
// analytic model with a hardware model into a predicted per-epoch time
// for distributed RDM training. It extends the paper's model (which only
// ranks configurations by counts) to absolute seconds, enabling direct
// model-versus-simulator comparisons (tested to agree within a small
// factor; the simulator remains the measurement of record).
//
// Approximations: redistribution elements are charged as all-to-all
// exchanges whose busiest device injects 1/P of each step's volume, with
// one step per redistribution the model counted (≈ 2L+2 steps);
// R_A broadcasts are allgathers within column groups; every SpMM
// processes NNZ·R_A/P stored entries at its width/R_A slice; GEMMs
// process N/P rows (forward + backward + weight gradient ≈ 3 per layer);
// weight gradients add one all-reduce per layer.
func PredictEpochTime(n Network, c Config, h *hw.Model) float64 {
	n.validate()
	cost := Evaluate(n, c)
	p := float64(n.P)

	// Split the modelled elements into redistribution and broadcast
	// shares: the broadcast share is (P/RA - 1)·N per sparse unit.
	bcastElems := float64(n.P/n.RA-1) * float64(n.N) * cost.SparseUnits
	redistElems := cost.CommElems - bcastElems

	var comm float64
	if redistElems > 0 {
		steps := float64(2*n.Layers() + 2)
		perStepInject := int64(redistElems * 4 / p / steps)
		comm += steps * h.CollectiveTime(hw.OpAllToAll, n.P, perStepInject)
	}
	if n.RA < n.P {
		// One allgather per SpMM within a column group of size P/RA,
		// gathering an N x (width/RA) slice; two SpMMs per layer
		// (forward + backward) at roughly the smaller layer width.
		for l := 1; l <= n.Layers(); l++ {
			w := float64(minInt(n.Dims[l-1], n.Dims[l])) / float64(n.RA)
			buf := int64(float64(n.N) * w * 4)
			comm += 2 * h.CollectiveTime(hw.OpAllGather, n.P/n.RA, buf)
		}
	}
	for l := 1; l <= n.Layers(); l++ {
		comm += h.CollectiveTime(hw.OpAllReduce, n.P, int64(n.Dims[l-1])*int64(n.Dims[l])*4)
	}

	return comm + computeTime(n, cost, h)
}

// computeTime is the computation half of the epoch prediction, shared
// by the flat and topology-aware predictors (the interconnect does not
// change kernel time). SparseUnits counts width-weighted nnz passes;
// convert to time at the mean slice width of this network.
func computeTime(n Network, cost Cost, h *hw.Model) float64 {
	var compute float64
	perDevNNZ := n.NNZ * int64(n.RA) / int64(n.P)
	meanWidth := averageWidth(n)
	spmmWidth := meanWidth / n.RA
	if spmmWidth < 1 {
		spmmWidth = 1
	}
	compute += cost.SparseUnits / float64(meanWidth) * h.SpMMTime(perDevNNZ, spmmWidth)
	rows := int(n.N / int64(n.P))
	for l := 1; l <= n.Layers(); l++ {
		compute += 3 * h.GemmTime(rows, n.Dims[l-1], n.Dims[l])
	}
	return compute
}

// PredictEpochTimeOn is PredictEpochTime on an interconnect topology
// (nil delegates to PredictEpochTime): the same closed-form counts, but
// every collective term is priced by internal/topo's algorithm library
// under the fabric's default Auto selection. On a flat topology it
// reproduces PredictEpochTime exactly (Auto degenerates to ring, which
// degenerates to hw.CollectiveTime); on a hierarchical one the
// prediction reflects hierarchical routing, so configuration rankings
// can change with the interconnect.
func PredictEpochTimeOn(n Network, c Config, h *hw.Model, tp *topo.Topology) float64 {
	if tp == nil {
		return PredictEpochTime(n, c, h)
	}
	n.validate()
	cost := Evaluate(n, c)
	p := float64(n.P)

	world := make([]int, n.P)
	for i := range world {
		world[i] = i
	}
	bcastElems := float64(n.P/n.RA-1) * float64(n.N) * cost.SparseUnits
	redistElems := cost.CommElems - bcastElems

	var comm float64
	if redistElems > 0 && n.P > 1 {
		steps := float64(2*n.Layers() + 2)
		perStepInject := int64(redistElems * 4 / p / steps)
		// Spread each device's injection evenly over its p-1 peers
		// (remainder on the first few) so a ring routing reproduces
		// CollectiveTime(OpAllToAll, P, perStepInject) bit-for-bit.
		base := perStepInject / int64(n.P-1)
		rem := perStepInject % int64(n.P-1)
		pair := func(i, j int) int64 {
			idx := int64(j)
			if j > i {
				idx--
			}
			if idx < rem {
				return base + 1
			}
			return base
		}
		_, a2a := tp.AllToAll(h, topo.Auto, world, pair)
		comm += steps * a2a.Time
	}
	if n.RA < n.P {
		group := make([]int, 0, n.P/n.RA)
		for r := 0; r < n.P; r += n.RA {
			group = append(group, r)
		}
		for l := 1; l <= n.Layers(); l++ {
			w := float64(minInt(n.Dims[l-1], n.Dims[l])) / float64(n.RA)
			buf := int64(float64(n.N) * w * 4)
			_, ag := tp.AllGather(h, topo.Auto, group, topo.EvenChunks(buf, len(group)))
			comm += 2 * ag.Time
		}
	}
	for l := 1; l <= n.Layers(); l++ {
		_, ar := tp.AllReduce(h, topo.Auto, world, int64(n.Dims[l-1])*int64(n.Dims[l])*4)
		comm += ar.Time
	}
	return comm + computeTime(n, cost, h)
}

func averageWidth(n Network) int {
	s := 0
	for _, d := range n.Dims {
		s += d
	}
	return s / len(n.Dims)
}
