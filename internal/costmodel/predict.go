package costmodel

import "gnnrdm/internal/hw"

// PredictEpochTime combines the communication/computation counts of the
// analytic model with a hardware model into a predicted per-epoch time
// for distributed RDM training. It extends the paper's model (which only
// ranks configurations by counts) to absolute seconds, enabling direct
// model-versus-simulator comparisons (tested to agree within a small
// factor; the simulator remains the measurement of record).
//
// Approximations: redistribution elements are charged as all-to-all
// exchanges whose busiest device injects 1/P of each step's volume, with
// one step per redistribution the model counted (≈ 2L+2 steps);
// R_A broadcasts are allgathers within column groups; every SpMM
// processes NNZ·R_A/P stored entries at its width/R_A slice; GEMMs
// process N/P rows (forward + backward + weight gradient ≈ 3 per layer);
// weight gradients add one all-reduce per layer.
func PredictEpochTime(n Network, c Config, h *hw.Model) float64 {
	n.validate()
	cost := Evaluate(n, c)
	p := float64(n.P)

	// Split the modelled elements into redistribution and broadcast
	// shares: the broadcast share is (P/RA - 1)·N per sparse unit.
	bcastElems := float64(n.P/n.RA-1) * float64(n.N) * cost.SparseUnits
	redistElems := cost.CommElems - bcastElems

	var comm float64
	if redistElems > 0 {
		steps := float64(2*n.Layers() + 2)
		perStepInject := int64(redistElems * 4 / p / steps)
		comm += steps * h.CollectiveTime(hw.OpAllToAll, n.P, perStepInject)
	}
	if n.RA < n.P {
		// One allgather per SpMM within a column group of size P/RA,
		// gathering an N x (width/RA) slice; two SpMMs per layer
		// (forward + backward) at roughly the smaller layer width.
		for l := 1; l <= n.Layers(); l++ {
			w := float64(minInt(n.Dims[l-1], n.Dims[l])) / float64(n.RA)
			buf := int64(float64(n.N) * w * 4)
			comm += 2 * h.CollectiveTime(hw.OpAllGather, n.P/n.RA, buf)
		}
	}
	for l := 1; l <= n.Layers(); l++ {
		comm += h.CollectiveTime(hw.OpAllReduce, n.P, int64(n.Dims[l-1])*int64(n.Dims[l])*4)
	}

	// Computation. SparseUnits counts width-weighted nnz passes; convert
	// to time at the mean slice width of this network.
	var compute float64
	perDevNNZ := n.NNZ * int64(n.RA) / int64(n.P)
	meanWidth := averageWidth(n)
	spmmWidth := meanWidth / n.RA
	if spmmWidth < 1 {
		spmmWidth = 1
	}
	compute += cost.SparseUnits / float64(meanWidth) * h.SpMMTime(perDevNNZ, spmmWidth)
	rows := int(n.N / int64(n.P))
	for l := 1; l <= n.Layers(); l++ {
		compute += 3 * h.GemmTime(rows, n.Dims[l-1], n.Dims[l])
	}
	return comm + compute
}

func averageWidth(n Network) int {
	s := 0
	for _, d := range n.Dims {
		s += d
	}
	return s / len(n.Dims)
}
