package costmodel

import "testing"

func TestGossipBytes(t *testing.T) {
	if got := GossipMsgBytes(0); got != 13 {
		t.Fatalf("empty message prices %d, want the 13-byte header", got)
	}
	if got := GossipMsgBytes(3); got != 13+21 {
		t.Fatalf("3-update message prices %d, want 34", got)
	}
	if got := GossipRoundBytes(10, 25); got != 13*10+7*25 {
		t.Fatalf("round census prices %d, want %d", got, 13*10+7*25)
	}
}

func TestGossipConvergenceBound(t *testing.T) {
	// suspicionPeriods + 3*ceil(log2 p) + 4, monotone in both arguments.
	cases := []struct {
		p, susp, want int
	}{
		{8, 3, 16},
		{64, 3, 25},
		{256, 3, 31},
		{1024, 3, 37},
		{8, 5, 18},
		{2, 3, 10},
	}
	for _, c := range cases {
		if got := GossipConvergenceBound(c.p, c.susp); got != c.want {
			t.Errorf("GossipConvergenceBound(%d,%d) = %d, want %d", c.p, c.susp, got, c.want)
		}
	}
}

func TestGossipDetectLatency(t *testing.T) {
	if got := GossipDetectLatency(12, 0.01); got != 0.12 {
		t.Fatalf("12 rounds at 10ms = %v, want 0.12", got)
	}
}
