// Package costmodel implements the analytic performance model of §IV:
// per-layer communication/computation costs of SpMM-first vs GEMM-first
// execution (Tables II and III, including the R_A < P rows), whole-network
// cost enumeration over all 2^(2L) ordering configurations (Table IV for
// L=2), Pareto-frontier extraction (Table VI), the R_A replication
// chooser of §III-E, and the per-GPU space model (Table X).
//
// Accounting conventions recovered from the paper (validated against a
// literal transcription of Table IV in costmodel_test.go):
//
//   - Config ID bits for a 2-layer network: ID = 8·[bwd2=D] + 4·[bwd1=D]
//   - 2·[fwd1=D] + 1·[fwd2=D]. For general L, forward layer l maps to
//     bit (L-l) and backward layer l to bit (L+l-1).
//   - A forward SpMM-first layer costs f_{l-1} sparse units and f_{l-1}
//     redistribution units (vertical output -> horizontal for the GEMM);
//     GEMM-first costs f_l of each (Table II). Input-layout mismatches
//     between consecutive layers add one redistribution of the
//     intermediate width (§IV-A3).
//   - The loss needs vertex-complete embeddings: a GEMM-first final layer
//     adds one f_L redistribution (§IV-A1).
//   - The gradient G^0 of the input features is computed (it is listed as
//     a final output in Fig. 4), so a GEMM-first backward layer 1 pays
//     its f_0 redistribution + SpMM like any other layer.
//   - Weight gradients Y^l reuse a forward-memoized AᵀH^{l-1} or the
//     backward A·G^l (Fig. 3); only when layer l is GEMM-first in both
//     passes is an extra SpMM needed, costing min(f_{l-1}, f_l) sparse
//     units and 2·min(f_{l-1}, f_l) redistribution units.
//
// Two entries of the paper's printed Table IV disagree with this model:
// row 13's communication is printed identical to row 9's, which is
// impossible (the configs differ only in the backward-layer-1 order, so
// their communication must differ by f_in - ...); and row 15's entries
// are inconsistent with every sibling all-D row. Both are treated as
// typographical errors; see KnownTableIVErrata.
//
// This package prices a configuration from the closed-form tables.
// internal/plan prices the same quantities op by op from a compiled
// schedule (plan.Schedule.Price); the two accountings are asserted equal
// byte-for-byte across every config, P, R_A, and memoization setting
// (internal/plan tests, verify.CheckVolumeMatchesModel), and the plan
// pricing additionally covers mixed per-layer orderings that no single
// Table IV row expresses.
package costmodel

import (
	"fmt"
	"math"
	"sort"
)

// Order is the execution order of one layer in one pass.
type Order int

const (
	// SparseFirst performs the SpMM before the GEMM ("S" in Table IV).
	SparseFirst Order = iota
	// DenseFirst performs the GEMM before the SpMM ("D" in Table IV).
	DenseFirst
)

func (o Order) String() string {
	if o == SparseFirst {
		return "S"
	}
	return "D"
}

// Config is a complete ordering choice for an L-layer network: the order
// of every forward and backward layer.
type Config struct {
	Fwd []Order // Fwd[l-1] is forward layer l's order
	Bwd []Order // Bwd[l-1] is backward layer l's order
}

// Layers returns L.
func (c Config) Layers() int { return len(c.Fwd) }

// ID returns the Table IV identifier of the configuration.
func (c Config) ID() int {
	l := c.Layers()
	id := 0
	for i, o := range c.Fwd { // layer i+1 -> bit L-(i+1)
		if o == DenseFirst {
			id |= 1 << (l - i - 1)
		}
	}
	for i, o := range c.Bwd { // layer i+1 -> bit L+i
		if o == DenseFirst {
			id |= 1 << (l + i)
		}
	}
	return id
}

// ConfigFromID decodes a Table IV identifier for an L-layer network.
func ConfigFromID(id, layers int) Config {
	c := Config{Fwd: make([]Order, layers), Bwd: make([]Order, layers)}
	for i := 0; i < layers; i++ {
		if id&(1<<(layers-i-1)) != 0 {
			c.Fwd[i] = DenseFirst
		}
		if id&(1<<(layers+i)) != 0 {
			c.Bwd[i] = DenseFirst
		}
	}
	return c
}

// NumConfigs returns the size of the design space for L layers.
func NumConfigs(layers int) int { return 1 << (2 * layers) }

func (c Config) String() string {
	s := "fwd["
	for _, o := range c.Fwd {
		s += o.String()
	}
	s += "] bwd["
	for _, o := range c.Bwd {
		s += o.String()
	}
	return s + "]"
}

// Network describes the GNN whose execution is being modelled.
type Network struct {
	// Dims holds f_0 (input width), hidden widths, and f_L (classes):
	// len(Dims) = L+1.
	Dims []int
	// N is the vertex count; NNZ the stored adjacency nonzeros.
	N, NNZ int64
	// P is the device count; RA the adjacency replication factor
	// (1 <= RA <= P; RA == P means full replication, the main RDM
	// scheme).
	P, RA int
	// NoMemo disables forward-intermediate memoization (the "N.M." rows
	// of Table III): backward passes can no longer reuse AᵀH^{l-1} from
	// the forward pass.
	NoMemo bool
}

// Layers returns L.
func (n Network) Layers() int { return len(n.Dims) - 1 }

func (n Network) validate() {
	if len(n.Dims) < 2 {
		panic("costmodel: need at least one layer")
	}
	if n.P < 1 || n.RA < 1 || n.RA > n.P || n.P%n.RA != 0 {
		panic(fmt.Sprintf("costmodel: invalid P=%d RA=%d", n.P, n.RA))
	}
}

// Cost is the modelled cost of one configuration.
type Cost struct {
	ID int
	// CommElems is the total number of matrix elements crossing device
	// boundaries per epoch (redistributions + intra-SpMM broadcasts).
	CommElems float64
	// SparseOps is the total number of SpMM fused multiply-adds per
	// epoch.
	SparseOps float64
	// CommUnits and SparseUnits are the table-normalized values:
	// communication in multiples of (P-1)/P·N (feature-width units, as
	// printed in Table IV) and sparse ops in multiples of nnz.
	CommUnits, SparseUnits float64
}

// Evaluate computes the communication and sparse-op cost of config c on
// network n, generalizing Table IV to any L, any P, and any R_A.
func Evaluate(n Network, c Config) Cost {
	return evaluate(n, c, false)
}

// EvaluateEngine is Evaluate with engine-faithful accounting of the
// weight-gradient fallback. When a layer is GEMM-first in both passes,
// the paper's Table IV charges the extra SpMM a flat
// min(f_{l-1}, f_l) + two redistributions; the engine instead pulls the
// SpMM operands from its layout cache, so a redistribution already paid
// by the forward or backward pass (e.g. G^l left feature-sliced by a
// dense-first backward layer l+1) is not paid again. For a 2-layer
// network this elides exactly one min(f_0, f_1) redistribution in
// configs 14 and 15 and changes nothing else — Evaluate remains the
// literal Table IV model; EvaluateEngine is what the simulator's meters
// reproduce byte-for-byte (see internal/verify).
func EvaluateEngine(n Network, c Config) Cost {
	return evaluate(n, c, true)
}

func evaluate(n Network, c Config, engineExact bool) Cost {
	n.validate()
	L := n.Layers()
	if c.Layers() != L {
		panic("costmodel: config/network layer mismatch")
	}
	// Unit costs. A redistribution of an N x f matrix between vertex- and
	// feature-sliced layouts moves (RA-1)/RA·N·f elements under the grid
	// scheme of §III-E ((P-1)/P·N·f when RA=P). Each SpMM additionally
	// broadcasts its dense input within column groups: (P/RA-1)·N·F
	// elements (§III-E), zero when RA=P.
	redistUnit := float64(n.RA-1) / float64(n.RA) * float64(n.N)
	bcastUnit := float64(n.P/n.RA-1) * float64(n.N)

	var commElems, sparseUnits float64
	spmm := func(width int) {
		sparseUnits += float64(width)
		commElems += bcastUnit * float64(width)
	}
	redist := func(width int) { commElems += redistUnit * float64(width) }

	f := n.Dims
	// hHoriz[l] records whether H^l is materialized vertex-sliced at some
	// point; similarly hVert. H^0 is free in both layouts (initial
	// distribution is a data-loading choice).
	hHoriz := make([]bool, L+1)
	hVert := make([]bool, L+1)
	hHoriz[0], hVert[0] = true, true

	// Forward pass. "vertical" tracks the current layout of H^{l-1} as
	// produced; mismatches with the layer's required input layout cost a
	// redistribution of f_{l-1}.
	vertical := false // layout of H^{l-1} entering layer l (H^0 free)
	for l := 1; l <= L; l++ {
		in, out := f[l-1], f[l]
		if c.Fwd[l-1] == SparseFirst {
			// Requires vertical input.
			if l > 1 && !vertical {
				redist(in)
				hVert[l-1] = true
			}
			spmm(in)   // T = AᵀH^{l-1}, vertical
			redist(in) // T -> horizontal for the GEMM
			_ = out    // GEMM is order-invariant (not modelled here)
			vertical = false
			hHoriz[l] = true
		} else {
			// Requires horizontal input.
			if l > 1 && vertical {
				redist(in)
				hHoriz[l-1] = true
			}
			redist(out) // H^{l-1}W -> vertical for the SpMM
			spmm(out)   // Z = Aᵀ(H^{l-1}W), vertical
			vertical = true
			hVert[l] = true
		}
	}
	// Loss needs vertex-complete embeddings.
	if vertical {
		redist(f[L])
	}

	// Backward pass. gHoriz[l]/gVert[l] record whether G^l is ever
	// materialized vertex-/feature-sliced; G^L starts horizontal at the
	// loss.
	gHoriz := make([]bool, L+1)
	gVert := make([]bool, L+1)
	gHoriz[L] = true
	gVertical := false // layout of G^l entering backward layer l
	for l := L; l >= 1; l-- {
		in, out := f[l-1], f[l]
		if c.Bwd[l-1] == SparseFirst {
			if !gVertical {
				redist(out) // G^l -> vertical for the SpMM
				gVert[l] = true
			}
			spmm(out)   // T_b = A·G^l, vertical
			redist(out) // T_b -> horizontal for the GEMM
			gVertical = false
			gHoriz[l-1] = true // G^{l-1} produced horizontal
		} else {
			if gVertical {
				redist(out) // G^l -> horizontal for the GEMM
				gHoriz[l] = true
			}
			redist(in) // G^lWᵀ -> vertical for the SpMM
			spmm(in)   // G^{l-1} = A·(G^lWᵀ), vertical
			gVertical = true
			gVert[l-1] = true
		}
	}

	// Weight gradients Y^l = (H^{l-1})ᵀ·(A·G^l) (Fig. 3 reuse analysis).
	for l := 1; l <= L; l++ {
		in, out := f[l-1], f[l]
		tfAvailable := c.Fwd[l-1] == SparseFirst && !n.NoMemo // AᵀH^{l-1} memoized (horizontal)
		tbAvailable := c.Bwd[l-1] == SparseFirst              // A·G^l computed (horizontal)
		gH := gHoriz[l] || l == L                             // G^l available horizontal
		hH := hHoriz[l-1]                                     // H^{l-1} available horizontal
		switch {
		case tfAvailable && gH, tbAvailable && hH:
			// Free: both operands vertex-sliced; local GEMM + O(f²)
			// all-reduce (negligible, metered by the simulator).
		case tfAvailable && tbAvailable:
			redist(minInt(in, out)) // gather the narrower missing operand
		case tfAvailable:
			redist(out) // gather G^l
		case tbAvailable:
			redist(in) // gather H^{l-1}
		default:
			// Both passes dense-first: an extra SpMM is unavoidable
			// (§III-C). The paper charges it a flat redistribution in and
			// out of width min(f_{l-1}, f_l); the engine pulls operands
			// from its layout cache and only redistributes what no pass
			// materialized (engineExact).
			if !engineExact {
				m := minInt(in, out)
				spmm(m)
				redist(m)
				redist(m)
				break
			}
			if in <= out {
				// Recompute AᵀH^{l-1}: needs H^{l-1} feature-sliced and
				// G^l vertex-sliced for the closing GEMM.
				if !hVert[l-1] {
					redist(in)
					hVert[l-1] = true
				}
				spmm(in)
				redist(in) // SpMM product -> horizontal for the GEMM
				if !gH {
					redist(out)
					gHoriz[l] = true
				}
			} else {
				// Recompute A·G^l: needs G^l feature-sliced and H^{l-1}
				// vertex-sliced for the closing GEMM.
				if !gVert[l] {
					redist(out)
					gVert[l] = true
				}
				spmm(out)
				redist(out) // SpMM product -> horizontal for the GEMM
				if !hH {
					redist(in)
					hHoriz[l-1] = true
				}
			}
		}
	}

	cost := Cost{
		ID:          c.ID(),
		SparseOps:   sparseUnits * float64(n.NNZ),
		SparseUnits: sparseUnits,
		CommElems:   commElems,
	}
	unit := float64(n.P-1) / float64(n.P) * float64(n.N)
	if unit > 0 {
		cost.CommUnits = commElems / unit
	}
	return cost
}

// EvaluateAll returns the cost of every configuration, indexed by ID.
func EvaluateAll(n Network) []Cost {
	L := n.Layers()
	out := make([]Cost, NumConfigs(L))
	for id := range out {
		out[id] = Evaluate(n, ConfigFromID(id, L))
	}
	return out
}

// Pareto returns the IDs of the Pareto-optimal configurations with
// respect to (CommElems, SparseOps), sorted ascending. A configuration is
// kept if no other strictly dominates it (<= in both, < in at least one).
// Dominated duplicates of kept points are excluded; exact ties keep the
// lowest ID only, matching how Table VI lists candidates.
func Pareto(costs []Cost) []int {
	var ids []int
	for i, a := range costs {
		dominated := false
		for j, b := range costs {
			if i == j {
				continue
			}
			if b.CommElems <= a.CommElems && b.SparseOps <= a.SparseOps &&
				(b.CommElems < a.CommElems || b.SparseOps < a.SparseOps) {
				dominated = true
				break
			}
			// Exact tie: keep the lower ID.
			if b.CommElems == a.CommElems && b.SparseOps == a.SparseOps && j < i {
				dominated = true
				break
			}
		}
		if !dominated {
			ids = append(ids, i)
		}
	}
	sort.Ints(ids)
	return ids
}

// ParetoConfigs evaluates the network and returns its Pareto-optimal
// configuration IDs.
func ParetoConfigs(n Network) []int { return Pareto(EvaluateAll(n)) }

// ChooseRA returns the largest feasible adjacency replication factor
// R_A = min(P, floor(P·(M - H_all)/G)) of §III-E, clamped to a divisor of
// P and at least 1. memBytes is per-device memory M, actBytes the total
// size of features and activations H_all, adjBytes the adjacency size G.
func ChooseRA(p int, memBytes, actBytes, adjBytes int64) int {
	if adjBytes <= 0 {
		return p
	}
	avail := float64(memBytes) - float64(actBytes)/float64(p)
	if avail < 0 {
		avail = 0
	}
	ra := int(float64(p) * avail / float64(adjBytes))
	if ra > p {
		ra = p
	}
	for ra > 1 && p%ra != 0 {
		ra--
	}
	if ra < 1 {
		ra = 1
	}
	return ra
}

// SpaceModel returns the modelled per-GPU memory (bytes) of distributed
// GCN training (Table X): R_A/P of the adjacency plus 1/P of all
// activations (forward activations are retained for the backward pass)
// plus replicated weights. RA=1 corresponds to CAGNET.
func SpaceModel(n Network) int64 {
	n.validate()
	adj := csrBytes(n.N, n.NNZ)
	var act, weights int64
	for l := 0; l <= n.Layers(); l++ {
		act += n.N * int64(n.Dims[l]) * 4
		if l > 0 {
			// Z^l pre-activations are kept for sigma'.
			act += n.N * int64(n.Dims[l]) * 4
			weights += int64(n.Dims[l-1]) * int64(n.Dims[l]) * 4
		}
	}
	return adj*int64(n.RA)/int64(n.P) + act/int64(n.P) + weights
}

func csrBytes(n, nnz int64) int64 { return (n+1)*8 + nnz*4 + nnz*4 }

// CommVolumeBytes converts a Cost's element count to bytes (float32).
func (c Cost) CommVolumeBytes() int64 { return int64(math.Round(c.CommElems)) * 4 }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
