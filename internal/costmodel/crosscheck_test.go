// Cross-checks between the analytic model and the simulator's meters,
// via the internal/verify oracle. External test package: verify imports
// costmodel.
package costmodel_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/verify"
)

// bothDenseLayer reports whether some layer of the 2-layer config id is
// GEMM-first in both passes — the only case where EvaluateEngine's
// accounting can diverge from the paper's.
func bothDenseLayer(id int) bool {
	c := costmodel.ConfigFromID(id, 2)
	for l := 0; l < 2; l++ {
		if c.Fwd[l] == costmodel.DenseFirst && c.Bwd[l] == costmodel.DenseFirst {
			return true
		}
	}
	return false
}

// TestEngineModelElisionFunnel pins the exact relationship between the
// paper-literal Evaluate and the engine-faithful EvaluateEngine on
// funnel-shaped 2-layer networks (f_0 > f_1 > f_2, Table IV's regime):
// identical everywhere except configs 14 and 15, where the engine's
// layout cache reuses the feature-sliced G^1 left behind by the
// dense-first backward layer 2 and elides one f_1 redistribution of the
// extra weight-gradient SpMM.
func TestEngineModelElisionFunnel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		fout := 1 + rng.Intn(200)
		fh := fout + 1 + rng.Intn(200)
		fin := fh + 1 + rng.Intn(200)
		ras := []int{1, 2, 4, 8}
		n := costmodel.Network{Dims: []int{fin, fh, fout}, N: 4096, NNZ: 50000, P: 8, RA: ras[rng.Intn(len(ras))]}
		redistUnit := float64(n.RA-1) / float64(n.RA) * float64(n.N)
		for id := 0; id < costmodel.NumConfigs(2); id++ {
			c := costmodel.ConfigFromID(id, 2)
			paper := costmodel.Evaluate(n, c)
			eng := costmodel.EvaluateEngine(n, c)
			diff := paper.CommElems - eng.CommElems
			want := 0.0
			if id == 14 || id == 15 {
				want = redistUnit * float64(fh)
			}
			if math.Abs(diff-want) > 1e-6 {
				t.Fatalf("cfg %d dims %v RA=%d: paper-engine comm gap %v, want %v",
					id, n.Dims, n.RA, diff, want)
			}
		}
	}
}

// TestEngineModelElisionBounds checks the structural invariants on
// arbitrary widths (where wider hidden layers let other both-dense
// configs reuse cached layouts too): the engine model never exceeds the
// paper model, moves the same sparse ops, diverges only on configs with
// a layer GEMM-first in both passes, and always by whole
// redistributions.
func TestEngineModelElisionBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		dims := []int{1 + rng.Intn(500), 1 + rng.Intn(500), 1 + rng.Intn(500)}
		n := costmodel.Network{Dims: dims, N: 4096, NNZ: 50000, P: 8, RA: 4}
		redistUnit := float64(n.RA-1) / float64(n.RA) * float64(n.N)
		for id := 0; id < costmodel.NumConfigs(2); id++ {
			c := costmodel.ConfigFromID(id, 2)
			paper := costmodel.Evaluate(n, c)
			eng := costmodel.EvaluateEngine(n, c)
			if eng.SparseUnits != paper.SparseUnits {
				t.Fatalf("cfg %d: engine sparse units %v != paper %v — the elision is comm-only",
					id, eng.SparseUnits, paper.SparseUnits)
			}
			diff := paper.CommElems - eng.CommElems
			if diff < 0 {
				t.Fatalf("cfg %d dims %v: engine model %v exceeds paper model %v",
					id, dims, eng.CommElems, paper.CommElems)
			}
			if diff > 0 && !bothDenseLayer(id) {
				t.Fatalf("cfg %d dims %v: models diverge (%v) without a both-dense layer", id, dims, diff)
			}
			if rem := math.Mod(diff, redistUnit); rem > 1e-6 && redistUnit-rem > 1e-6 {
				t.Fatalf("cfg %d dims %v: gap %v is not a whole number of redistributions (unit %v)",
					id, dims, diff, redistUnit)
			}
		}
	}
}

// TestMeterCrossCheck closes the loop from the model side: for a sample
// of orderings and fabric shapes, one simulated epoch's meters must
// reproduce EvaluateEngine byte-for-byte (the exhaustive sweep lives in
// internal/core's acceptance suite).
func TestMeterCrossCheck(t *testing.T) {
	prob := verify.DefaultProblem(17, 32, 8, 4)
	dims := []int{8, 6, 4}
	for _, tc := range []struct{ p, ra, cfg int }{
		{2, 2, 3}, {4, 4, 14}, {4, 4, 15}, {4, 2, 9}, {8, 4, 12}, {8, 8, 6},
	} {
		tc := tc
		t.Run(fmt.Sprintf("P%d/RA%d/cfg%02d", tc.p, tc.ra, tc.cfg), func(t *testing.T) {
			verify.CheckVolumeMatchesModel(t, prob, dims, tc.p, tc.ra, tc.cfg)
		})
	}
	// A hidden layer wider than the input (f_0 < f_1) flips the extra
	// SpMM onto the H side, where cfg 6/7 also reuse a cached layout —
	// the meters must confirm that branch of the engine model too.
	wide := []int{8, 12, 4}
	for _, cfg := range []int{6, 7, 14, 15} {
		cfg := cfg
		t.Run(fmt.Sprintf("wide/cfg%02d", cfg), func(t *testing.T) {
			verify.CheckVolumeMatchesModel(t, prob, wide, 4, 4, cfg)
		})
	}
}
