package costmodel

import (
	"math"

	"gnnrdm/internal/dist"
)

// This file is the §IV-style closed-form accounting of the sparsity-
// aware exchange (DESIGN.md §4g): the byte volumes of one two-round
// sparse redistribution, derived from the live row set and the layout
// geometry alone. The fabric's meters, the planner's per-op prices, and
// the discrete-event simulator are all asserted equal to these numbers
// (verify.CheckSparseMatchesModel) — this is the model side of the
// meter-equals-model invariant.

// LiveCount maps a feature density to a live row count: round(density·n)
// clamped to [0, n]. Density >= 1 yields n, which the planner
// normalizes to the dense schedule (plan.Spec treats Live >= N as
// dense), so a density-1.0 sparse run reproduces the dense path
// bit-for-bit.
func LiveCount(n int, density float64) int {
	c := int(math.Round(density * float64(n)))
	return min(max(c, 0), n)
}

// SparseExchangeEligible mirrors dist.RedistributeSparse's fallback
// rule: the two-round protocol runs only between two non-replicated,
// distinct layouts on a multi-device world; everything else takes the
// dense path and prices as such.
func SparseExchangeEligible(p int, from, to dist.Layout) bool {
	from, to = from.Normalize(p), to.Normalize(p)
	return p > 1 && from != to &&
		from.Kind != dist.Replicated && to.Kind != dist.Replicated
}

// SparseExchangeBytes returns the closed-form fabric volumes of one
// two-round sparse redistribution of a rows×cols matrix from layout
// `from` to layout `to` over p devices, given the sorted live row set:
//
//	meta    = Σ_{active pairs r≠q} 4·(2 + |live ∩ rowWindow(r,q)|)
//	payload = Σ_{active pairs r≠q} 4·|live ∩ rowWindow(r,q)|·colWidth(r,q)
//
// where a pair is active iff the sender's and receiver's dense tiles
// intersect (the dense protocol's pair set — sparsity changes volumes,
// never the communication pattern), the row window is that
// intersection's row extent, and colWidth its column extent. Metadata
// rides the side channel; payload is the primary metered volume.
func SparseExchangeBytes(p, rows, cols int, from, to dist.Layout, live []int32) (meta, payload int64) {
	from, to = from.Normalize(p), to.Normalize(p)
	for r := 0; r < p; r++ {
		arlo, arhi := dist.RowRange(from, p, r, rows)
		aclo, achi := dist.ColRange(from, p, r, cols)
		for q := 0; q < p; q++ {
			if q == r {
				continue
			}
			brlo, brhi := dist.RowRange(to, p, q, rows)
			bclo, bchi := dist.ColRange(to, p, q, cols)
			rlo, rhi := max(arlo, brlo), min(arhi, brhi)
			clo, chi := max(aclo, bclo), min(achi, bchi)
			if rlo >= rhi || clo >= chi {
				continue
			}
			cnt := int64(dist.CountInRange(live, rlo, rhi))
			meta += 4 * (2 + cnt)
			payload += 4 * cnt * int64(chi-clo)
		}
	}
	return meta, payload
}

// DenseExchangeBytes is the matching dense-path volume of the same
// conversion (every cross-pair tile intersection, once), for
// reduction-factor reporting next to SparseExchangeBytes.
func DenseExchangeBytes(p, rows, cols int, from, to dist.Layout) int64 {
	from, to = from.Normalize(p), to.Normalize(p)
	var vol int64
	for r := 0; r < p; r++ {
		for q := 0; q < p; q++ {
			if q != r {
				vol += 4 * int64(dist.TileOverlap(from, r, to, q, p, rows, cols))
			}
		}
	}
	return vol
}
