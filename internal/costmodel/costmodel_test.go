package costmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gnnrdm/internal/hw"
)

func TestConfigIDRoundTrip(t *testing.T) {
	for _, layers := range []int{1, 2, 3, 4} {
		for id := 0; id < NumConfigs(layers); id++ {
			c := ConfigFromID(id, layers)
			if c.ID() != id {
				t.Fatalf("L=%d: id %d round-trips to %d", layers, id, c.ID())
			}
		}
	}
}

func TestConfigIDBitMapping(t *testing.T) {
	// The paper's case 10 is the dense-sparse-dense-sparse ordering:
	// fwd1=D, fwd2=S, bwd2=D, bwd1=S (§III-C / Fig. 4).
	c := ConfigFromID(10, 2)
	if c.Fwd[0] != DenseFirst || c.Fwd[1] != SparseFirst {
		t.Fatalf("ID 10 forward = %v", c.Fwd)
	}
	if c.Bwd[1] != DenseFirst || c.Bwd[0] != SparseFirst {
		t.Fatalf("ID 10 backward = %v", c.Bwd)
	}
	if c.String() != "fwd[DS] bwd[SD]" {
		t.Fatalf("String = %q", c.String())
	}
}

func net2(fin, fh, fout int, p int) Network {
	return Network{Dims: []int{fin, fh, fout}, N: 1000, NNZ: 50000, P: p, RA: p}
}

// TestGeneratorMatchesTableIV validates the whole-network cost generator
// against a literal transcription of the paper's Table IV on randomized
// feature widths. Rows 13 and 15 are known paper errata (see
// KnownTableIVErrata); for them the transcription encodes the printed
// values and only the sparse column (row 13) is compared.
func TestGeneratorMatchesTableIV(t *testing.T) {
	rows := TableIV()
	errata := map[int]bool{}
	for _, id := range KnownTableIVErrata {
		errata[id] = true
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		fin := 1 + rng.Intn(700)
		fh := 1 + rng.Intn(700)
		fout := 1 + rng.Intn(700)
		n := net2(fin, fh, fout, 4)
		for _, row := range rows {
			got := Evaluate(n, ConfigFromID(row.ID, 2))
			wantComm := row.Comm(float64(fin), float64(fh), float64(fout))
			wantSparse := row.Sparse(float64(fin), float64(fh), float64(fout))
			if !errata[row.ID] {
				if math.Abs(got.CommUnits-wantComm) > 1e-6 {
					t.Fatalf("ID %d (f=%d,%d,%d): comm %v want %v", row.ID, fin, fh, fout, got.CommUnits, wantComm)
				}
			}
			if row.ID != 15 { // row 15's sparse entry is also erroneous
				if math.Abs(got.SparseUnits-wantSparse) > 1e-6 {
					t.Fatalf("ID %d (f=%d,%d,%d): sparse %v want %v", row.ID, fin, fh, fout, got.SparseUnits, wantSparse)
				}
			}
		}
	}
}

func TestErratumRow13Model(t *testing.T) {
	// Config 13 = config 9 with backward layer 1 GEMM-first instead of
	// SpMM-first. Layer 1's backward cost changes from one f_h
	// redistribution (SpMM-first on an already-vertical G^1) to one f_h
	// mismatch redistribution plus the f_in input-gradient
	// redistribution; the weight-gradient reuse stays free either way.
	// Net difference: exactly +f_in — so the printed table, which lists
	// identical communication for 9 and 13, cannot be right.
	n := net2(600, 128, 40, 8)
	c9 := Evaluate(n, ConfigFromID(9, 2))
	c13 := Evaluate(n, ConfigFromID(13, 2))
	want := c9.CommUnits + 600
	if math.Abs(c13.CommUnits-want) > 1e-6 {
		t.Fatalf("row13 comm %v want %v (c9=%v)", c13.CommUnits, want, c9.CommUnits)
	}
}

func TestTableVIParetoCandidates(t *testing.T) {
	// Table VI: pareto-optimal configuration IDs for the eight datasets,
	// 2-layer GCN, f_h = 128.
	cases := []struct {
		name           string
		fin, fh, fout  int
		wantCandidates []int
	}{
		{"OGB-Arxiv", 128, 128, 40, []int{5}},
		{"OGB-MAG", 128, 128, 349, []int{10}},
		{"OGB-Products", 100, 128, 47, []int{5}},
		{"Reddit", 602, 128, 41, []int{2, 3, 10}},
		{"Web-Google", 256, 128, 100, []int{2, 3, 10}},
		{"Com-Orkut", 128, 128, 100, []int{5, 10}},
		{"CAMI-Airways", 256, 128, 25, []int{2, 3, 10}},
		{"CAMI-Oral", 256, 128, 32, []int{2, 3, 10}},
	}
	for _, tc := range cases {
		got := ParetoConfigs(net2(tc.fin, tc.fh, tc.fout, 8))
		if !equalInts(got, tc.wantCandidates) {
			t.Errorf("%s: pareto %v want %v", tc.name, got, tc.wantCandidates)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestParetoBasics(t *testing.T) {
	costs := []Cost{
		{ID: 0, CommElems: 10, SparseOps: 10},
		{ID: 1, CommElems: 5, SparseOps: 20},
		{ID: 2, CommElems: 20, SparseOps: 5},
		{ID: 3, CommElems: 10, SparseOps: 10}, // exact tie with 0 -> dropped
		{ID: 4, CommElems: 30, SparseOps: 30}, // dominated
	}
	got := Pareto(costs)
	if !equalInts(got, []int{0, 1, 2}) {
		t.Fatalf("pareto = %v", got)
	}
}

// Property: Pareto members are mutually non-dominating and every
// non-member is dominated or tied by some member.
func TestParetoProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := Network{
			Dims: []int{1 + rng.Intn(512), 1 + rng.Intn(512), 1 + rng.Intn(512)},
			N:    1000, NNZ: 10000, P: 8, RA: 8,
		}
		costs := EvaluateAll(n)
		ids := Pareto(costs)
		if len(ids) == 0 {
			return false
		}
		inSet := map[int]bool{}
		for _, id := range ids {
			inSet[id] = true
		}
		for _, a := range ids {
			for _, b := range ids {
				if a == b {
					continue
				}
				ca, cb := costs[a], costs[b]
				if cb.CommElems <= ca.CommElems && cb.SparseOps <= ca.SparseOps {
					return false // a member is (weakly) dominated by another
				}
			}
		}
		for id, c := range costs {
			if inSet[id] {
				continue
			}
			covered := false
			for _, m := range ids {
				cm := costs[m]
				if cm.CommElems <= c.CommElems && cm.SparseOps <= c.SparseOps {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateAbsoluteScaling(t *testing.T) {
	// CommElems must scale with N and SparseOps with nnz.
	a := Evaluate(Network{Dims: []int{64, 64, 8}, N: 1000, NNZ: 5000, P: 4, RA: 4}, ConfigFromID(0, 2))
	b := Evaluate(Network{Dims: []int{64, 64, 8}, N: 2000, NNZ: 10000, P: 4, RA: 4}, ConfigFromID(0, 2))
	if math.Abs(b.CommElems/a.CommElems-2) > 1e-9 || math.Abs(b.SparseOps/a.SparseOps-2) > 1e-9 {
		t.Fatalf("scaling wrong: %v %v", b.CommElems/a.CommElems, b.SparseOps/a.SparseOps)
	}
}

func TestRAReplicationCost(t *testing.T) {
	// RA < P adds (P/RA-1)·N·F broadcast per SpMM and shrinks each
	// redistribution to (RA-1)/RA·N·f.
	base := Network{Dims: []int{128, 128, 128}, N: 1000, NNZ: 50000, P: 8, RA: 8}
	half := base
	half.RA = 4
	cfg := ConfigFromID(10, 2)
	full := Evaluate(base, cfg)
	repl := Evaluate(half, cfg)
	// ID 10 comm = 4 redistributions of f_h and 4 SpMMs of width f_h.
	wantFull := 4.0 * 128 * float64(base.N) * 7 / 8
	if math.Abs(full.CommElems-wantFull) > 1e-6 {
		t.Fatalf("full replication comm %v want %v", full.CommElems, wantFull)
	}
	wantRepl := 4.0*128*float64(base.N)*3/4 + 4.0*128*float64(base.N)*1
	if math.Abs(repl.CommElems-wantRepl) > 1e-6 {
		t.Fatalf("RA=4 comm %v want %v", repl.CommElems, wantRepl)
	}
	if repl.SparseOps != full.SparseOps {
		t.Fatal("RA must not change sparse op count")
	}
}

func TestRAOneMovesMoreThanRDM(t *testing.T) {
	// RA=1 (the CAGNET regime) must communicate more than RA=P for any
	// realistic shape.
	n := Network{Dims: []int{128, 128, 40}, N: 100000, NNZ: 1000000, P: 8, RA: 8}
	n1 := n
	n1.RA = 1
	for id := 0; id < 16; id++ {
		cfg := ConfigFromID(id, 2)
		if Evaluate(n1, cfg).CommElems <= Evaluate(n, cfg).CommElems {
			t.Fatalf("ID %d: RA=1 should move more data", id)
		}
	}
}

func TestChooseRA(t *testing.T) {
	// Plenty of memory -> full replication.
	if got := ChooseRA(8, 48<<30, 1<<30, 1<<30); got != 8 {
		t.Fatalf("abundant memory: RA=%d want 8", got)
	}
	// Adjacency 4x the free memory per device -> RA = P/4 = 2.
	if got := ChooseRA(8, 1<<30, 0, 4<<30); got != 2 {
		t.Fatalf("tight memory: RA=%d want 2", got)
	}
	// No room at all -> RA=1.
	if got := ChooseRA(8, 1<<20, 8<<20, 64<<30); got != 1 {
		t.Fatalf("no memory: RA=%d want 1", got)
	}
	// Zero-size adjacency -> full replication.
	if got := ChooseRA(4, 1<<30, 0, 0); got != 4 {
		t.Fatalf("empty adj: RA=%d", got)
	}
	// Result always divides P.
	for p := 1; p <= 8; p *= 2 {
		for _, adj := range []int64{1 << 20, 1 << 28, 1 << 34} {
			ra := ChooseRA(p, 1<<30, 1<<28, adj)
			if p%ra != 0 || ra < 1 || ra > p {
				t.Fatalf("invalid RA=%d for P=%d", ra, p)
			}
		}
	}
}

func TestSpaceModelMonotonicInRA(t *testing.T) {
	// Table X: memory grows with RA; RA=1 is the CAGNET footprint.
	n := Network{Dims: []int{128, 128, 40}, N: 169343, NNZ: 2332486, P: 8, RA: 1}
	prev := int64(0)
	for _, ra := range []int{1, 2, 4, 8} {
		n.RA = ra
		s := SpaceModel(n)
		if s <= prev {
			t.Fatalf("space must grow with RA: %d at RA=%d", s, ra)
		}
		prev = s
	}
	// Sanity: OGB-Arxiv CAGNET footprint is a few tens of MB (Table X
	// reports 26MB).
	n.RA = 1
	s := SpaceModel(n)
	if s < 10<<20 || s > 80<<20 {
		t.Fatalf("arxiv CAGNET footprint %dMB implausible", s>>20)
	}
}

func TestThreeLayerEnumeration(t *testing.T) {
	n := Network{Dims: []int{128, 128, 128, 40}, N: 10000, NNZ: 100000, P: 8, RA: 8}
	costs := EvaluateAll(n)
	if len(costs) != 64 {
		t.Fatalf("3-layer space = %d configs, want 64", len(costs))
	}
	pareto := ParetoConfigs(n)
	if len(pareto) == 0 || len(pareto) > 16 {
		t.Fatalf("implausible pareto set size %d", len(pareto))
	}
	// All-sparse config must be valid and strictly costlier in comm than
	// the best.
	best := costs[pareto[0]]
	for _, id := range pareto[1:] {
		if costs[id].CommElems < best.CommElems {
			best = costs[id]
		}
	}
	if best.CommElems <= 0 {
		t.Fatal("comm must be positive")
	}
}

func TestValidation(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("bad RA", func() {
		Evaluate(Network{Dims: []int{8, 8}, N: 10, NNZ: 10, P: 8, RA: 3}, ConfigFromID(0, 1))
	})
	expectPanic("layer mismatch", func() {
		Evaluate(Network{Dims: []int{8, 8}, N: 10, NNZ: 10, P: 2, RA: 2}, ConfigFromID(0, 2))
	})
	expectPanic("no layers", func() {
		Evaluate(Network{Dims: []int{8}, N: 10, NNZ: 10, P: 2, RA: 2}, Config{})
	})
}

func TestNoMemoIncreasesCost(t *testing.T) {
	base := Network{Dims: []int{128, 128, 40}, N: 100000, NNZ: 1000000, P: 8, RA: 8}
	nm := base
	nm.NoMemo = true
	// Config 10 relies on the memoized forward product for Y^2.
	cfg := ConfigFromID(10, 2)
	withMemo := Evaluate(base, cfg)
	without := Evaluate(nm, cfg)
	if without.CommElems <= withMemo.CommElems {
		t.Fatalf("no-memo comm %v should exceed %v", without.CommElems, withMemo.CommElems)
	}
	// Config 0 (all SpMM-first) never needs the memo: identical costs.
	cfg0 := ConfigFromID(0, 2)
	if Evaluate(base, cfg0) != Evaluate(nm, cfg0) {
		t.Fatal("all-S config must not depend on memoization")
	}
}

func TestCommVolumeBytes(t *testing.T) {
	c := Cost{CommElems: 10.4}
	if c.CommVolumeBytes() != 40 {
		t.Fatalf("bytes=%d", c.CommVolumeBytes())
	}
}

func TestPredictEpochTimePositiveAndOrdered(t *testing.T) {
	h := hw.A6000()
	n := Network{Dims: []int{602, 128, 41}, N: 232965, NNZ: 229930679, P: 8, RA: 8}
	tBest := PredictEpochTime(n, ConfigFromID(10, 2), h)
	tWorst := PredictEpochTime(n, ConfigFromID(12, 2), h)
	if tBest <= 0 || tWorst <= 0 {
		t.Fatal("predictions must be positive")
	}
	// Config 12 (2f_in+4f_h comm, 2f_in+2f_h sparse, f_in=602) must be
	// predicted slower than config 10 (4f_h each).
	if tBest >= tWorst {
		t.Fatalf("prediction ordering wrong: best %v worst %v", tBest, tWorst)
	}
}

func TestPredictEpochTimeRASensitivity(t *testing.T) {
	h := hw.A6000()
	n := Network{Dims: []int{128, 128, 40}, N: 1000000, NNZ: 50000000, P: 8, RA: 8}
	full := PredictEpochTime(n, ConfigFromID(10, 2), h)
	n.RA = 1
	cagnetLike := PredictEpochTime(n, ConfigFromID(10, 2), h)
	if cagnetLike <= full {
		t.Fatalf("RA=1 should be predicted slower: %v vs %v", cagnetLike, full)
	}
}
