package costmodel

import (
	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
)

// Closed-form prices for the serving tier (internal/serve). Unlike
// PredictEpochTime these are not approximations: each helper mirrors
// the exact metering of the fabric primitive the serving path uses, so
// verify.CheckServeMatchesModel can assert meter == prediction to the
// byte.

// PredictQueryBytes is the exact wire cost of answering remoteRows
// cache-missed embedding rows of width cols whose owners are not the
// serving root: dist.Mat.GatherRows moves each such row once
// (float32, 4 bytes/element), and nothing else.
func PredictQueryBytes(cols int, remoteRows int64) int64 {
	return 4 * int64(cols) * remoteRows
}

// PredictGather prices one dist.Mat.GatherRows call exactly. owned[r]
// is the number of requested rows owned by rank r (duplicates counted
// per occurrence, as GatherRows sends them); root is the receiving
// rank. It returns the metered bytes, their per-tier split (all intra
// when tp is nil, matching the flat fabric), and the modelled makespan
// at root — the collective plus root's assembly write of the full
// result (owned rows included; they ride the self-delivery slot free
// on the wire but are still written to the assembled answer).
func PredictGather(h *hw.Model, tp *topo.Topology, p, root, cols int, owned []int64) (bytes int64, tier [topo.NumTiers]int64, time float64) {
	var total int64
	for _, n := range owned {
		total += n
	}
	out := 4 * int64(cols) * total
	if p <= 1 {
		return 0, tier, h.MemTime(out)
	}
	if tp != nil {
		group := make([]int, p)
		for i := range group {
			group[i] = i
		}
		_, c := tp.AllToAll(h, topo.Auto, group, func(i, j int) int64 {
			if i == root || j != root {
				return 0
			}
			return 4 * int64(cols) * owned[i]
		})
		return c.Bytes(), c.Tier, c.Time + h.MemTime(out)
	}
	var maxInject int64
	for r, n := range owned {
		if r == root {
			continue
		}
		b := 4 * int64(cols) * n
		bytes += b
		if b > maxInject {
			maxInject = b
		}
	}
	tier[topo.TierIntra] = bytes
	return bytes, tier, h.CollectiveTime(hw.OpAllToAll, p, maxInject) + h.MemTime(out)
}

// PredictMicrobatchTime assembles one microbatch's modelled service
// time at the serving root: the staleness refresh (per-section
// schedule price, zero on a full cache hit), the row gather (zero when
// no rows missed), and the root's read of hitRows cached answer rows —
// charged, like every memory kernel, only when there is something to
// read.
func PredictMicrobatchTime(h *hw.Model, refresh, gather float64, hitRows, cols int) float64 {
	t := refresh + gather
	if hitRows > 0 {
		t += h.MemTime(4 * int64(cols) * int64(hitRows))
	}
	return t
}
