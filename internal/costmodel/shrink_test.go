package costmodel_test

import (
	"math/rand"
	"testing"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
)

// The shrink traffic model must agree byte for byte with what the
// fabric actually meters during dist.ShrinkReshard / ShrinkReshardCSR.
func TestShrinkTrafficMatchesMeteredReshard(t *testing.T) {
	cases := []struct {
		name       string
		rows, cols int
		oldP       int
		survivors  []int
	}{
		{"8to7", 41, 6, 8, []int{0, 1, 2, 3, 4, 5, 7}},
		{"8to4", 41, 6, 8, []int{1, 3, 4, 6}},
		{"5to2", 17, 3, 5, []int{0, 4}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			global := tensor.NewDense(c.rows, c.cols)
			for i := range global.Data {
				global.Data[i] = rng.Float32()
			}
			sp := dist.ShrinkSpec{OldP: c.oldP, Survivors: c.survivors}
			f := comm.NewFabric(len(c.survivors), hw.A6000())
			f.Run(func(d *comm.Device) {
				lo, hi := dist.PartRange(c.rows, c.oldP, c.survivors[d.Rank])
				tile := tensor.NewDense(hi-lo, c.cols)
				copy(tile.Data, global.Data[lo*c.cols:hi*c.cols])
				dist.ShrinkReshard(d, sp, c.rows, c.cols, tile, func(lo, hi int) *tensor.Dense {
					blk := tensor.NewDense(hi-lo, c.cols)
					copy(blk.Data, global.Data[lo*c.cols:hi*c.cols])
					return blk
				})
			})
			want := costmodel.ShrinkTrafficDense(c.rows, c.cols, c.oldP, c.survivors)
			if got := f.TotalVolume(); got != want {
				t.Fatalf("metered %d bytes, model predicts %d", got, want)
			}
		})
	}
}

func TestShrinkTrafficCSRMatchesMeteredReshard(t *testing.T) {
	const n, oldP = 29, 4
	survivors := []int{0, 1, 3}
	rng := rand.New(rand.NewSource(5))
	var coords []sparse.Coord
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if rng.Float64() < 0.15 {
				coords = append(coords, sparse.Coord{Row: int32(r), Col: int32(c), Val: rng.Float32()})
			}
		}
	}
	adj := sparse.FromCoords(n, n, coords)
	rowNNZ := make([]int, n)
	for r := 0; r < n; r++ {
		rowNNZ[r] = int(adj.RowPtr[r+1] - adj.RowPtr[r])
	}

	sp := dist.ShrinkSpec{OldP: oldP, Survivors: survivors}
	f := comm.NewFabric(len(survivors), hw.A6000())
	f.Run(func(d *comm.Device) {
		lo, hi := dist.PartRange(n, oldP, survivors[d.Rank])
		dist.ShrinkReshardCSR(d, sp, n, adj.RowPanel(lo, hi), func(lo, hi int) *sparse.CSR {
			return adj.RowPanel(lo, hi)
		})
	})
	want := costmodel.ShrinkTrafficCSR(n, oldP, survivors, rowNNZ)
	if got := f.TotalVolume(); got != want {
		t.Fatalf("metered %d bytes, model predicts %d", got, want)
	}
}

func TestShrinkTrafficNoMoveWhenPartitionUnchanged(t *testing.T) {
	// Shrinking 4 -> 4 with identity survivors moves nothing off-device
	// only when old and new partitions coincide rank by rank.
	if got := costmodel.ShrinkTrafficDense(16, 8, 4, []int{0, 1, 2, 3}); got != 0 {
		t.Fatalf("identity shrink predicted %d bytes, want 0", got)
	}
}
