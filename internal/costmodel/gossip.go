package costmodel

import "math"

// Gossip control-plane model: the SWIM membership layer
// (internal/member) probes, escalates through proxies, and piggybacks
// membership updates on every message. Its wire format is fixed-width —
// a 13-byte header plus 7 bytes per piggybacked update — so a round's
// byte volume is exact given the round's message and update census,
// the same data-dependent discipline as the nnz-census sparse models.
// internal/verify asserts the simulator's metered bytes (summed encoded
// message lengths) equal these predictions exactly, and that detection
// episodes converge within the closed-form epidemic bound below.

// Wire sizes, mirrored from internal/member's encoder independently so
// drift between the two fails the meter-equal assertions.
const (
	gossipHeaderBytes = 13
	gossipUpdateBytes = 7
)

// GossipMsgBytes returns the wire length of one gossip message
// carrying the given number of piggybacked updates.
func GossipMsgBytes(updates int) int64 {
	return gossipHeaderBytes + gossipUpdateBytes*int64(updates)
}

// GossipRoundBytes prices a protocol round from its census: msgs
// messages carrying updates piggybacked entries in total.
func GossipRoundBytes(msgs, updates int) int64 {
	return gossipHeaderBytes*int64(msgs) + gossipUpdateBytes*int64(updates)
}

// GossipConvergenceBound is the closed-form epidemic bound on detection
// episodes: the number of protocol periods within which a crash must be
// noticed by a probe (O(1) expected, a few periods for the round-robin
// orders to reach it), survive the suspicion window (suspicionPeriods),
// and disseminate to every survivor (piggyback infection doubles the
// informed set per period: ceil(log2 P) periods, with a constant-factor
// epidemic margin). internal/verify asserts every detection episode's
// round count stays at or below this; the 3log2(P)+4 structure keeps
// it O(log P), the claim BENCH_member.json tracks at P up to 1024.
func GossipConvergenceBound(p, suspicionPeriods int) int {
	return suspicionPeriods + 3*ceilLog2(p) + 4
}

// GossipDetectLatency converts a detection episode's round count into
// simulated seconds at the given protocol period.
func GossipDetectLatency(rounds int, period float64) float64 {
	return float64(rounds) * period
}

func ceilLog2(p int) int {
	if p <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(p))))
}
