package costmodel

// TableIVRow is one literal row of the paper's Table IV for a 2-layer
// network: communication in multiples of (P-1)/P·N and sparse ops in
// multiples of nnz, as closed-form functions of (f_in, f_h, f_out).
type TableIVRow struct {
	ID     int
	Comm   func(fin, fh, fout float64) float64
	Sparse func(fin, fh, fout float64) float64
}

// KnownTableIVErrata lists the configuration IDs whose printed Table IV
// entries are internally inconsistent and treated as typographical
// errors:
//
//   - ID 13: the printed communication (f_in + 2f_h + 2f_out +
//     2min(f_h,f_out)) is identical to ID 9's, which cannot hold — the two
//     configs differ only in the backward layer-1 order, so their
//     communication must differ. The model gives 2f_in + 2f_h + 2f_out +
//     2min(f_h,f_out); the printed sparse-op entry (2f_in + f_h + f_out +
//     min(f_h,f_out)) matches the model.
//   - ID 15: the printed entries (comm f_in+4f_h+3f_out+…, sparse
//     4f_h+3f_out+…) are inconsistent with every sibling all-dense row
//     (the sparse count omits the f_in SpMM of the backward layer-1 input
//     gradient that rows 4–7 and 12–14 all include). The model gives comm
//     f_in+4f_h+2f_out+2min(f_h,f_out)+2min(f_in,f_h) and sparse
//     f_in+2f_h+f_out+min(f_h,f_out)+min(f_in,f_h).
//
// The remaining 14 rows match the generator exactly (see
// TestGeneratorMatchesTableIV).
var KnownTableIVErrata = []int{13, 15}

// TableIV returns the 16 literal rows of the paper's Table IV (IDs 0-15),
// as printed — including the two errata rows, unmodified.
func TableIV() []TableIVRow {
	mn := func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
	return []TableIVRow{
		{0,
			func(a, b, c float64) float64 { return a + 4*b + 2*c },
			func(a, b, c float64) float64 { return a + 2*b + c }},
		{1,
			func(a, b, c float64) float64 { return a + 2*b + 4*c },
			func(a, b, c float64) float64 { return a + b + 2*c }},
		{2,
			func(a, b, c float64) float64 { return 4*b + 2*c },
			func(a, b, c float64) float64 { return 3*b + c }},
		{3,
			func(a, b, c float64) float64 { return 4*b + 4*c },
			func(a, b, c float64) float64 { return 2*b + 2*c }},
		{4,
			func(a, b, c float64) float64 { return 2*a + 2*b + 2*c },
			func(a, b, c float64) float64 { return 2*a + b + c }},
		{5,
			func(a, b, c float64) float64 { return 2*a + 4*c },
			func(a, b, c float64) float64 { return 2*a + 2*c }},
		{6,
			func(a, b, c float64) float64 { return a + 2*b + 2*c + 2*mn(a, b) },
			func(a, b, c float64) float64 { return a + 2*b + c + mn(a, b) }},
		{7,
			func(a, b, c float64) float64 { return a + 2*b + 4*c + 2*mn(a, b) },
			func(a, b, c float64) float64 { return a + b + 2*c + mn(a, b) }},
		{8,
			func(a, b, c float64) float64 { return a + 4*b },
			func(a, b, c float64) float64 { return a + 3*b }},
		{9,
			func(a, b, c float64) float64 { return a + 2*b + 2*c + 2*mn(b, c) },
			func(a, b, c float64) float64 { return a + 2*b + c + mn(b, c) }},
		{10,
			func(a, b, c float64) float64 { return 4 * b },
			func(a, b, c float64) float64 { return 4 * b }},
		{11,
			func(a, b, c float64) float64 { return 4*b + 2*c + 2*mn(b, c) },
			func(a, b, c float64) float64 { return 3*b + c + mn(b, c) }},
		{12,
			func(a, b, c float64) float64 { return 2*a + 4*b },
			func(a, b, c float64) float64 { return 2*a + 2*b }},
		{13, // erratum: printed comm duplicates ID 9's
			func(a, b, c float64) float64 { return a + 2*b + 2*c + 2*mn(b, c) },
			func(a, b, c float64) float64 { return 2*a + b + c + mn(b, c) }},
		{14,
			func(a, b, c float64) float64 { return a + 4*b + 2*mn(a, b) },
			func(a, b, c float64) float64 { return a + 3*b + mn(a, b) }},
		{15, // erratum: inconsistent with sibling all-dense rows
			func(a, b, c float64) float64 { return a + 4*b + 3*c + 2*mn(b, c) + 2*mn(a, b) },
			func(a, b, c float64) float64 { return 4*b + 3*c + mn(b, c) + mn(a, b) }},
	}
}
