package costmodel

import "gnnrdm/internal/dist"

// Elastic shrink traffic model: when a P-device world loses ranks and
// re-forms as P' survivors, dist.ShrinkReshard intersects every
// surviving old H(OldP) row panel with the new H(P') panels and moves
// the non-self intersections over the fabric in one all-to-all. Rows
// owned by crashed ranks are reloaded from storage, never the fabric,
// so they cost nothing here. These predictions are exact — the fabric
// meters the same non-self inject bytes — and internal/verify asserts
// a recovery's metered volume equals them byte for byte.

// ShrinkTrafficDense returns the fabric bytes of re-sharding one
// rows x cols dense H-matrix from the surviving panels of an OldP-way
// partition onto the new len(survivors)-way partition. survivors holds
// the old ranks carried forward, ascending (dist.ShrinkSpec.Survivors).
func ShrinkTrafficDense(rows, cols, oldP int, survivors []int) int64 {
	var bytes int64
	for newRank, oldRank := range survivors {
		oldLo, oldHi := dist.PartRange(rows, oldP, oldRank)
		for j := range survivors {
			if j == newRank {
				continue
			}
			tlo, thi := dist.PartRange(rows, len(survivors), j)
			if lo, hi := max(tlo, oldLo), min(thi, oldHi); lo < hi {
				bytes += int64(hi-lo) * int64(cols) * 4
			}
		}
	}
	return bytes
}

// ShrinkTrafficCSR returns the fabric bytes of re-sharding an n x n CSR
// adjacency held as one row panel per device. rowNNZ[r] is the global
// non-zero count of row r; each moved row costs (1 + 2*nnz(r)) float32
// words in dist.ShrinkReshardCSR's stream encoding.
func ShrinkTrafficCSR(n, oldP int, survivors []int, rowNNZ []int) int64 {
	var words int64
	for newRank, oldRank := range survivors {
		oldLo, oldHi := dist.PartRange(n, oldP, oldRank)
		for j := range survivors {
			if j == newRank {
				continue
			}
			tlo, thi := dist.PartRange(n, len(survivors), j)
			for r := max(tlo, oldLo); r < min(thi, oldHi); r++ {
				words += 1 + 2*int64(rowNNZ[r])
			}
		}
	}
	return words * 4
}
