// Package dist implements distributed dense matrices over the simulated
// fabric: the Horizontal (vertex-sliced) and Vertical (feature-sliced)
// layouts of Fig. 2, the grid layout of §III-E used when the adjacency
// matrix is row-panel replicated R_A times, and the divide/exchange/merge
// redistribution of Fig. 7 (an all-to-all personalized exchange whose
// total volume (P-1)/P·N·f is independent of P).
//
// All methods are SPMD: every device in the group must call the same
// method with the same arguments in the same order.
package dist

import (
	"fmt"
	"math"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/tensor"
)

// Kind enumerates layout families.
type Kind int

const (
	// Horizontal slices rows (vertices) across devices: device i owns
	// rows PartRange(N, P, i) and all columns.
	Horizontal Kind = iota
	// Vertical slices columns (features) across devices: device i owns
	// all rows and columns PartRange(f, P, i).
	Vertical
	// Grid slices rows into P/PJ panels and columns into PJ slices;
	// device r owns row panel r/PJ and column slice r%PJ. With PJ=P this
	// is Vertical; with PJ=1 it is Horizontal. PJ equals the adjacency
	// replication factor R_A of §III-E.
	Grid
	// Replicated stores the full matrix on every device.
	Replicated
)

// Layout describes how a global matrix is partitioned across P devices.
type Layout struct {
	Kind Kind
	// PJ is the number of column slices for Grid layouts (ignored
	// otherwise).
	PJ int
}

// H, V and R are the common layouts.
var (
	H = Layout{Kind: Horizontal}
	V = Layout{Kind: Vertical}
	R = Layout{Kind: Replicated}
)

// G returns a Grid layout with pj column slices.
func G(pj int) Layout { return Layout{Kind: Grid, PJ: pj} }

func (l Layout) String() string {
	switch l.Kind {
	case Horizontal:
		return "H"
	case Vertical:
		return "V"
	case Grid:
		return fmt.Sprintf("G%d", l.PJ)
	case Replicated:
		return "R"
	}
	return "?"
}

// Normalize returns the canonical form of l for a fabric of p devices:
// degenerate grids fold into H (PJ<=1) or V (PJ>=P).
func (l Layout) Normalize(p int) Layout { return l.normalize(p) }

// normalize folds degenerate grids into H/V so layout comparisons are
// canonical for a fabric of p devices.
func (l Layout) normalize(p int) Layout {
	if l.Kind == Grid {
		if l.PJ <= 1 {
			return H
		}
		if l.PJ >= p {
			return V
		}
		if p%l.PJ != 0 {
			panic(fmt.Sprintf("dist: grid PJ=%d does not divide P=%d", l.PJ, p))
		}
	}
	return l
}

// PartRange returns the half-open range [lo, hi) of part i when n items
// are split into parts balanced chunks (the first n%parts chunks get one
// extra item).
func PartRange(n, parts, i int) (lo, hi int) {
	base := n / parts
	rem := n % parts
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// Mat is one device's view of a distributed GlobalRows x GlobalCols dense
// matrix.
type Mat struct {
	Dev                    *comm.Device
	GlobalRows, GlobalCols int
	Layout                 Layout
	// Local is this device's tile. Its shape is implied by Layout.
	Local *tensor.Dense
}

// TileShape returns the local tile shape of the given device under a
// layout.
func TileShape(l Layout, p, rank, rows, cols int) (r, c int) {
	switch l.normalize(p).Kind {
	case Horizontal:
		lo, hi := PartRange(rows, p, rank)
		return hi - lo, cols
	case Vertical:
		lo, hi := PartRange(cols, p, rank)
		return rows, hi - lo
	case Grid:
		pj := l.PJ
		pi := p / pj
		rlo, rhi := PartRange(rows, pi, rank/pj)
		clo, chi := PartRange(cols, pj, rank%pj)
		return rhi - rlo, chi - clo
	case Replicated:
		return rows, cols
	}
	panic("dist: bad layout")
}

// RowRange returns the global row range of a device's tile.
func RowRange(l Layout, p, rank, rows int) (lo, hi int) {
	switch l.normalize(p).Kind {
	case Horizontal:
		return PartRange(rows, p, rank)
	case Vertical, Replicated:
		return 0, rows
	case Grid:
		return PartRange(rows, p/l.PJ, rank/l.PJ)
	}
	panic("dist: bad layout")
}

// TileOverlap returns the element count of the intersection between
// device ra's tile under layout a and device rb's tile under layout b,
// for a global rows x cols matrix on p devices: the exact chunk size
// regrid ships from ra to rb. Schedule pricing (internal/plan) computes
// redistribution volumes from this, so the planner's byte predictions
// derive from the same layout metadata the executor moves bytes with.
func TileOverlap(a Layout, ra int, b Layout, rb int, p, rows, cols int) int {
	arlo, arhi := RowRange(a, p, ra, rows)
	aclo, achi := ColRange(a, p, ra, cols)
	brlo, brhi := RowRange(b, p, rb, rows)
	bclo, bchi := ColRange(b, p, rb, cols)
	r := min(arhi, brhi) - max(arlo, brlo)
	c := min(achi, bchi) - max(aclo, bclo)
	if r <= 0 || c <= 0 {
		return 0
	}
	return r * c
}

// ColRange returns the global column range of a device's tile.
func ColRange(l Layout, p, rank, cols int) (lo, hi int) {
	switch l.normalize(p).Kind {
	case Vertical:
		return PartRange(cols, p, rank)
	case Horizontal, Replicated:
		return 0, cols
	case Grid:
		return PartRange(cols, l.PJ, rank%l.PJ)
	}
	panic("dist: bad layout")
}

// Distribute builds this device's tile of a global matrix by local
// slicing. It models loading pre-partitioned data and charges no
// communication.
func Distribute(dev *comm.Device, l Layout, global *tensor.Dense) *Mat {
	p := dev.P()
	l = l.normalize(p)
	rlo, rhi := RowRange(l, p, dev.Rank, global.Rows)
	clo, chi := ColRange(l, p, dev.Rank, global.Cols)
	var tile *tensor.Dense
	if rlo == 0 && rhi == global.Rows && clo == 0 && chi == global.Cols {
		tile = global.Clone()
	} else if clo == 0 && chi == global.Cols {
		tile = global.RowSlice(rlo, rhi)
	} else if rlo == 0 && rhi == global.Rows {
		tile = global.ColSlice(clo, chi)
	} else {
		tile = global.RowSlice(rlo, rhi).ColSlice(clo, chi)
	}
	return &Mat{Dev: dev, GlobalRows: global.Rows, GlobalCols: global.Cols, Layout: l, Local: tile}
}

// NewMat allocates a zeroed distributed matrix.
func NewMat(dev *comm.Device, l Layout, rows, cols int) *Mat {
	p := dev.P()
	l = l.normalize(p)
	r, c := TileShape(l, p, dev.Rank, rows, cols)
	return &Mat{Dev: dev, GlobalRows: rows, GlobalCols: cols, Layout: l, Local: tensor.NewDense(r, c)}
}

// FromLocal wraps an existing tile; the caller asserts it matches the
// layout's expected shape.
func FromLocal(dev *comm.Device, l Layout, rows, cols int, tile *tensor.Dense) *Mat {
	p := dev.P()
	l = l.normalize(p)
	wr, wc := TileShape(l, p, dev.Rank, rows, cols)
	if tile.Rows != wr || tile.Cols != wc {
		panic(fmt.Sprintf("dist: tile %dx%d does not match layout %v shape %dx%d",
			tile.Rows, tile.Cols, l, wr, wc))
	}
	return &Mat{Dev: dev, GlobalRows: rows, GlobalCols: cols, Layout: l, Local: tile}
}

// WithDevice returns a shallow copy of the matrix bound to dev (sharing
// the tile storage). The overlap executor uses it to run an op on a
// resource lane of the same rank: the Mat's charges and collectives then
// land on the lane's clock and trace track. dev must have the same Rank
// and fabric as the original Dev.
func (m *Mat) WithDevice(dev *comm.Device) *Mat {
	c := *m
	c.Dev = dev
	return &c
}

// Redistribute converts the matrix to the target layout, returning a new
// Mat. Supported conversions: any -> Replicated (allgather),
// Replicated -> any (local slice, free), Horizontal <-> Vertical,
// Horizontal <-> Grid, Grid -> Horizontal, Grid <-> Vertical, and
// identity (free).
func (m *Mat) Redistribute(target Layout) *Mat {
	p := m.Dev.P()
	target = target.normalize(p)
	src := m.Layout.normalize(p)
	if src == target {
		return m
	}
	switch {
	case target.Kind == Replicated:
		return m.replicate()
	case src.Kind == Replicated:
		out := Distribute(m.Dev, target, m.Local)
		return out
	}
	// Express H and V as degenerate grids and use the general grid
	// redistribution.
	srcPJ, dstPJ := gridPJ(src, p), gridPJ(target, p)
	return m.regrid(srcPJ, dstPJ, nil, nil)
}

// RedistributeMask converts a 0/1-valued matrix (a ReLU-derivative mask)
// between grid-family layouts, shipping one byte per element — four mask
// values packed per transmitted float32 — as a real implementation would
// ship a uint8 mask over NCCL. Replicated layouts are not supported.
func (m *Mat) RedistributeMask(target Layout) *Mat {
	p := m.Dev.P()
	target = target.normalize(p)
	src := m.Layout.normalize(p)
	if src == target {
		return m
	}
	if src.Kind == Replicated || target.Kind == Replicated {
		panic("dist: RedistributeMask supports grid-family layouts only")
	}
	// Mask bytes are mechanical traffic the paper's cost model does not
	// count; meter them on the side channel so primary fabric volumes
	// stay byte-comparable to costmodel predictions.
	m.Dev.SetSideChannel(true)
	defer m.Dev.SetSideChannel(false)
	return m.regrid(gridPJ(src, p), gridPJ(target, p), packMask, unpackMask)
}

// packMask packs four 0/1 float values per output float32 (one byte
// each).
func packMask(vals []float32) []float32 {
	out := make([]float32, (len(vals)+3)/4)
	for i, v := range vals {
		if v != 0 {
			word := i / 4
			shift := uint(i%4) * 8
			bits := math.Float32bits(out[word]) | 1<<shift
			out[word] = math.Float32frombits(bits)
		}
	}
	return out
}

// unpackMask reverses packMask given the original element count.
func unpackMask(packed []float32, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		bits := math.Float32bits(packed[i/4])
		if bits>>(uint(i%4)*8)&0xff != 0 {
			out[i] = 1
		}
	}
	return out
}

func gridPJ(l Layout, p int) int {
	switch l.Kind {
	case Horizontal:
		return 1
	case Vertical:
		return p
	case Grid:
		return l.PJ
	}
	panic("dist: cannot grid layout " + l.String())
}

// regrid converts between two grid layouts (including the degenerate
// H=G(1) and V=G(P)) with a single all-to-all over the world group.
// Device r sends to device s exactly the intersection of r's source tile
// and s's target tile, so the exchanged volume is minimal. Row-group or
// column-group locality (e.g. the (R_A-1)/R_A·N·f of §IV-A4) emerges
// naturally: disjoint tiles exchange nothing.
//
// When pack/unpack are non-nil every chunk payload is passed through them
// before transmission and after receipt (used to ship byte-packed masks);
// unpack receives the original element count.
func (m *Mat) regrid(srcPJ, dstPJ int, pack func([]float32) []float32, unpack func([]float32, int) []float32) *Mat {
	dev := m.Dev
	dev.TraceBeginPhase("redistribute")
	defer dev.TraceEndPhase()
	p := dev.P()
	rows, cols := m.GlobalRows, m.GlobalCols
	srcL := G(srcPJ).normalize(p)
	dstL := G(dstPJ).normalize(p)

	myRlo, _ := RowRange(srcL, p, dev.Rank, rows)
	myClo, _ := ColRange(srcL, p, dev.Rank, cols)

	// Divide: build the part destined to each device.
	parts := make([][]float32, p)
	var divideBytes int64
	for s := 0; s < p; s++ {
		trlo, trhi := RowRange(dstL, p, s, rows)
		tclo, tchi := ColRange(dstL, p, s, cols)
		// Intersect with my tile (global coords).
		rlo, rhi := max(trlo, myRlo), min(trhi, myRlo+m.Local.Rows)
		clo, chi := max(tclo, myClo), min(tchi, myClo+m.Local.Cols)
		if rlo >= rhi || clo >= chi {
			parts[s] = nil
			continue
		}
		sub := make([]float32, 0, (rhi-rlo)*(chi-clo))
		for i := rlo; i < rhi; i++ {
			row := m.Local.Row(i - myRlo)
			sub = append(sub, row[clo-myClo:chi-myClo]...)
		}
		if pack != nil {
			sub = pack(sub)
		}
		parts[s] = sub
		if s != dev.Rank {
			divideBytes += int64(len(sub)) * 4
		}
	}
	dev.ChargeMem(divideBytes) // divide step (local packing)

	recv := dev.AllToAll(dev.World(), parts)

	// Merge: place received blocks into the new tile.
	out := NewMat(dev, dstL, rows, cols)
	nrlo, _ := RowRange(dstL, p, dev.Rank, rows)
	nclo, _ := ColRange(dstL, p, dev.Rank, cols)
	var mergeBytes int64
	for s := 0; s < p; s++ {
		buf := recv[s]
		if len(buf) == 0 {
			continue
		}
		srlo, srhi := RowRange(srcL, p, s, rows)
		sclo, schi := ColRange(srcL, p, s, cols)
		rlo, rhi := max(nrlo, srlo), min(nrlo+out.Local.Rows, srhi)
		clo, chi := max(nclo, sclo), min(nclo+out.Local.Cols, schi)
		if rlo >= rhi || clo >= chi {
			panic(fmt.Sprintf("dist: regrid received %d elements from %d with empty intersection", len(buf), s))
		}
		w := chi - clo
		n := (rhi - rlo) * w
		if s != dev.Rank {
			mergeBytes += int64(len(buf)) * 4
		}
		if unpack != nil {
			buf = unpack(buf, n)
		}
		if n != len(buf) {
			panic(fmt.Sprintf("dist: regrid merge size mismatch from %d: %d vs %d", s, n, len(buf)))
		}
		for i := rlo; i < rhi; i++ {
			dst := out.Local.Row(i - nrlo)
			copy(dst[clo-nclo:chi-nclo], buf[(i-rlo)*w:(i-rlo+1)*w])
		}
	}
	dev.ChargeMem(mergeBytes) // merge step (local unpacking)
	return out
}

// replicate gathers the full matrix onto every device.
func (m *Mat) replicate() *Mat {
	dev := m.Dev
	dev.TraceBeginPhase("replicate")
	defer dev.TraceEndPhase()
	p := dev.P()
	src := m.Layout.normalize(p)
	bufs := dev.AllGather(dev.World(), m.Local.Data)
	out := NewMat(dev, R, m.GlobalRows, m.GlobalCols)
	for s := 0; s < p; s++ {
		rlo, rhi := RowRange(src, p, s, m.GlobalRows)
		clo, chi := ColRange(src, p, s, m.GlobalCols)
		w := chi - clo
		buf := bufs[s]
		for i := rlo; i < rhi; i++ {
			copy(out.Local.Row(i)[clo:chi], buf[(i-rlo)*w:(i-rlo)*w+w])
		}
	}
	dev.ChargeMem(out.Local.Bytes())
	return out
}

// GatherRoot collects the full matrix onto the root device, which
// returns it assembled; every other device returns nil. Unlike
// Redistribute(R) only the tiles actually travel (each non-root device
// injects exactly its tile, an all-to-all where root is the sole
// receiver), so the volume is sum(non-root tile bytes) rather than the
// allgather's (P-1)x blow-up. A Replicated source is free.
func (m *Mat) GatherRoot(root int) *tensor.Dense {
	dev := m.Dev
	p := dev.P()
	src := m.Layout.normalize(p)
	if src.Kind == Replicated {
		if dev.Rank == root {
			return m.Local.Clone()
		}
		return nil
	}
	if p == 1 {
		return m.Local.Clone()
	}
	dev.TraceBeginPhase("gather-root")
	defer dev.TraceEndPhase()
	parts := make([][]float32, p)
	parts[root] = m.Local.Data
	recv := dev.AllToAll(dev.World(), parts)
	if dev.Rank != root {
		return nil
	}
	out := tensor.NewDense(m.GlobalRows, m.GlobalCols)
	for s := 0; s < p; s++ {
		rlo, rhi := RowRange(src, p, s, m.GlobalRows)
		clo, chi := ColRange(src, p, s, m.GlobalCols)
		w := chi - clo
		buf := recv[s]
		if len(buf) != (rhi-rlo)*w {
			panic(fmt.Sprintf("dist: GatherRoot got %d elements from %d, want %d", len(buf), s, (rhi-rlo)*w))
		}
		for i := rlo; i < rhi; i++ {
			copy(out.Row(i)[clo:chi], buf[(i-rlo)*w:(i-rlo+1)*w])
		}
	}
	dev.ChargeMem(out.Bytes())
	return out
}

// GatherRows collects the given global rows of a vertex-sliced
// (Horizontal) matrix onto root, assembled in request order; every
// other device returns nil. This is the serving tier's per-query halo
// gather: each owner injects exactly the requested rows it holds (an
// all-to-all where root is the sole receiver), so the metered volume
// is 4·cols·(requested rows not owned by root) — rows root already
// holds ride the self-delivery slot for free. Duplicate row requests
// are sent once per occurrence; callers wanting aggregation-before-
// communication deduplicate first. Root charges one memory write for
// the assembled result, mirroring GatherRoot.
func (m *Mat) GatherRows(root int, rows []int32) *tensor.Dense {
	dev := m.Dev
	p := dev.P()
	src := m.Layout.normalize(p)
	if src.Kind != Horizontal {
		panic(fmt.Sprintf("dist: GatherRows needs a vertex-sliced source, have %s", src))
	}
	w := m.GlobalCols
	pick := func(dst *tensor.Dense, i int, r int32, lo int) {
		if int(r) < 0 || int(r) >= m.GlobalRows {
			panic(fmt.Sprintf("dist: GatherRows row %d out of range [0, %d)", r, m.GlobalRows))
		}
		copy(dst.Row(i), m.Local.Row(int(r)-lo))
	}
	if p == 1 {
		out := tensor.NewDense(len(rows), w)
		for i, r := range rows {
			pick(out, i, r, 0)
		}
		dev.ChargeMem(out.Bytes())
		return out
	}
	dev.TraceBeginPhase("gather-rows")
	defer dev.TraceEndPhase()
	rlo, rhi := RowRange(src, p, dev.Rank, m.GlobalRows)
	var mine []float32
	for _, r := range rows {
		if int(r) < 0 || int(r) >= m.GlobalRows {
			panic(fmt.Sprintf("dist: GatherRows row %d out of range [0, %d)", r, m.GlobalRows))
		}
		if int(r) >= rlo && int(r) < rhi {
			mine = append(mine, m.Local.Row(int(r)-rlo)...)
		}
	}
	parts := make([][]float32, p)
	parts[root] = mine
	recv := dev.AllToAll(dev.World(), parts)
	if dev.Rank != root {
		return nil
	}
	// Assemble in request order: each owner packed its rows in the order
	// they appear in the request, so a per-owner cursor walks them back.
	bounds := make([]int, p+1)
	for s := 0; s < p; s++ {
		_, hi := RowRange(src, p, s, m.GlobalRows)
		bounds[s+1] = hi
	}
	cursor := make([]int, p)
	out := tensor.NewDense(len(rows), w)
	for i, r := range rows {
		owner := 0
		for bounds[owner+1] <= int(r) {
			owner++
		}
		buf := recv[owner]
		copy(out.Row(i), buf[cursor[owner]*w:(cursor[owner]+1)*w])
		cursor[owner]++
	}
	dev.ChargeMem(out.Bytes())
	return out
}

// ScatterRoot distributes a global matrix held only by root into the
// target layout: root slices out each device's tile and sends it (an
// all-to-all where root is the sole injector), so the volume is
// sum(non-root tile bytes). Non-root devices pass global as nil. rows
// and cols give the global shape (root's global must match).
func ScatterRoot(dev *comm.Device, root int, l Layout, rows, cols int, global *tensor.Dense) *Mat {
	p := dev.P()
	l = l.normalize(p)
	if dev.Rank == root {
		if global == nil {
			panic("dist: ScatterRoot needs the global matrix on root")
		}
		if global.Rows != rows || global.Cols != cols {
			panic(fmt.Sprintf("dist: ScatterRoot global %dx%d != declared %dx%d",
				global.Rows, global.Cols, rows, cols))
		}
	}
	if p == 1 {
		return Distribute(dev, l, global)
	}
	if l.Kind == Replicated {
		// Every device needs the whole matrix: a broadcast, not a
		// personalized exchange.
		var data []float32
		if dev.Rank == root {
			data = global.Data
		}
		got := dev.Broadcast(dev.World(), root, data)
		tile := tensor.NewDense(rows, cols)
		copy(tile.Data, got)
		return &Mat{Dev: dev, GlobalRows: rows, GlobalCols: cols, Layout: R, Local: tile}
	}
	dev.TraceBeginPhase("scatter-root")
	defer dev.TraceEndPhase()
	parts := make([][]float32, p)
	if dev.Rank == root {
		for s := 0; s < p; s++ {
			rlo, rhi := RowRange(l, p, s, rows)
			clo, chi := ColRange(l, p, s, cols)
			sub := make([]float32, 0, (rhi-rlo)*(chi-clo))
			for i := rlo; i < rhi; i++ {
				sub = append(sub, global.Row(i)[clo:chi]...)
			}
			parts[s] = sub
		}
	}
	recv := dev.AllToAll(dev.World(), parts)
	wr, wc := TileShape(l, p, dev.Rank, rows, cols)
	tile := tensor.NewDense(wr, wc)
	buf := recv[root]
	if len(buf) != wr*wc {
		panic(fmt.Sprintf("dist: ScatterRoot got %d elements, want %d", len(buf), wr*wc))
	}
	copy(tile.Data, buf)
	dev.ChargeMem(tile.Bytes())
	return &Mat{Dev: dev, GlobalRows: rows, GlobalCols: cols, Layout: l, Local: tile}
}

// Assemble reconstructs the global matrix from all devices' Mats without
// touching the fabric. For tests and result collection only.
func Assemble(mats []*Mat) *tensor.Dense {
	if len(mats) == 0 {
		return tensor.NewDense(0, 0)
	}
	p := len(mats)
	rows, cols := mats[0].GlobalRows, mats[0].GlobalCols
	out := tensor.NewDense(rows, cols)
	for _, m := range mats {
		l := m.Layout.normalize(p)
		rlo, rhi := RowRange(l, p, m.Dev.Rank, rows)
		clo, chi := ColRange(l, p, m.Dev.Rank, cols)
		for i := rlo; i < rhi; i++ {
			copy(out.Row(i)[clo:chi], m.Local.Row(i-rlo))
		}
	}
	return out
}
