package dist_test

import (
	"math"
	"sync"
	"testing"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/tensor"
)

// FuzzSparseExchange drives the two-round sparse redistribution with
// arbitrary shapes, fabric sizes, layout pairs, and live-set densities,
// checking three invariants:
//
//   - the row-set advertisement codec round-trips exactly, and decoding
//     a bit-corrupted or truncated advertisement returns an error
//     rather than panicking (wire robustness);
//   - RedistributeSparse reconstructs the identical global matrix the
//     dense Redistribute produces — zero-filled dead rows included;
//   - the sparse exchange never moves more primary bytes than the dense
//     one (it ships a subset of the rows), and a single device never
//     communicates.
func FuzzSparseExchange(f *testing.F) {
	f.Add(uint8(12), uint8(5), uint8(2), uint8(0), uint8(1), uint8(4), uint8(3))
	f.Add(uint8(24), uint8(3), uint8(3), uint8(1), uint8(0), uint8(6), uint8(9))
	f.Add(uint8(8), uint8(4), uint8(1), uint8(2), uint8(0), uint8(2), uint8(1))
	f.Add(uint8(1), uint8(1), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint8(16), uint8(6), uint8(3), uint8(0), uint8(1), uint8(16), uint8(5))
	f.Fuzz(func(t *testing.T, rowsB, colsB, pSel, srcSel, dstSel, liveB, seedB uint8) {
		rows := 1 + int(rowsB)%24
		cols := 1 + int(colsB)%10
		p := 1 + int(pSel)%4
		liveCount := int(liveB) % (rows + 1)
		sseed := int64(seedB)
		live := dist.GenRows(sseed, rows, liveCount)

		// Round 1 wire format: encode/decode is the identity on any
		// generated live set, and a mangled buffer errors, never panics.
		enc := dist.EncodeRowSet(live, cols)
		ids, width, err := dist.DecodeRowSet(enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if width != cols || len(ids) != len(live) {
			t.Fatalf("round trip: got %d ids width %d, want %d ids width %d", len(ids), width, len(live), cols)
		}
		for i := range ids {
			if ids[i] != live[i] {
				t.Fatalf("round trip: id[%d] = %d, want %d", i, ids[i], live[i])
			}
		}
		mut := append([]float32(nil), enc...)
		i := int(seedB) % len(mut)
		mut[i] = math.Float32frombits(math.Float32bits(mut[i]) ^ (uint32(liveB)<<7 | 1))
		_, _, _ = dist.DecodeRowSet(mut)              // may error; must not panic
		_, _, _ = dist.DecodeRowSet(mut[:len(mut)-1]) // truncated header/body
		_, _, _ = dist.DecodeRowSet(nil)

		// Differential: a row-sparse matrix (live rows marked, dead rows
		// exact zeros) redistributed sparsely must assemble to the same
		// global as the dense path, for fewer or equal primary bytes.
		global := tensor.NewDense(rows, cols)
		for _, r := range live {
			row := global.Row(int(r))
			for c := range row {
				row[c] = float32(int(r)*cols + c + 1)
			}
		}
		layouts := []dist.Layout{dist.H, dist.V}
		if p%2 == 0 {
			layouts = append(layouts, dist.G(2))
		}
		src := layouts[int(srcSel)%len(layouts)]
		dst := layouts[int(dstSel)%len(layouts)]

		exchange := func(sparse bool) (*comm.Fabric, []*dist.Mat) {
			mats := make([]*dist.Mat, p)
			var mu sync.Mutex
			fab := comm.Run(p, hw.A6000(), func(d *comm.Device) {
				m := dist.Distribute(d, src, global)
				if sparse {
					m = m.RedistributeSparse(dst, live)
				} else {
					m = m.Redistribute(dst)
				}
				mu.Lock()
				mats[d.Rank] = m
				mu.Unlock()
			})
			return fab, mats
		}
		sfab, smats := exchange(true)
		dfab, dmats := exchange(false)
		if err := sameDense(global, dist.Assemble(smats)); err != nil {
			t.Fatalf("P=%d %v->%v %dx%d live=%d: sparse exchange: %v", p, src, dst, rows, cols, liveCount, err)
		}
		if err := sameDense(global, dist.Assemble(dmats)); err != nil {
			t.Fatalf("P=%d %v->%v %dx%d: dense exchange: %v", p, src, dst, rows, cols, err)
		}
		sp, dp := sfab.TotalVolume()-sfab.TotalSideVolume(), dfab.TotalVolume()-dfab.TotalSideVolume()
		if sp > dp {
			t.Fatalf("P=%d %v->%v %dx%d live=%d: sparse primary %d bytes > dense %d", p, src, dst, rows, cols, liveCount, sp, dp)
		}
		if p == 1 && sfab.TotalVolume() != 0 {
			t.Fatal("single device must not communicate")
		}
	})
}
