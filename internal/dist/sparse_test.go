package dist

import (
	"math/rand"
	"testing"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/tensor"
)

func TestGenRows(t *testing.T) {
	a := GenRows(7, 100, 25)
	b := GenRows(7, 100, 25)
	if len(a) != 25 {
		t.Fatalf("got %d rows, want 25", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("GenRows not deterministic")
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatalf("not sorted/distinct at %d: %v", i, a[i-1:i+1])
		}
		if a[i] < 0 || a[i] >= 100 {
			t.Fatalf("row %d out of range", a[i])
		}
	}
	if c := GenRows(7, 100, 26); len(c) != 26 {
		t.Fatal("count not honored")
	}
	if got := GenRows(1, 5, 9); len(got) != 5 || got[0] != 0 || got[4] != 4 {
		t.Fatalf("count >= n should return all rows, got %v", got)
	}
	if got := GenRows(1, 5, 0); len(got) != 0 {
		t.Fatalf("count 0 should return empty, got %v", got)
	}
}

func TestLiveRowsScan(t *testing.T) {
	m := tensor.NewDense(5, 3)
	m.Set(1, 2, 0.5)
	m.Set(4, 0, -1)
	got := LiveRows(m)
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("LiveRows = %v, want [1 4]", got)
	}
	if got := LiveRows(tensor.NewDense(3, 2)); len(got) != 0 {
		t.Fatalf("all-zero matrix has live rows %v", got)
	}
}

func TestCountInRange(t *testing.T) {
	live := []int32{2, 3, 7, 9}
	cases := []struct{ lo, hi, want int }{
		{0, 10, 4}, {3, 8, 2}, {4, 7, 0}, {9, 10, 1}, {10, 20, 0},
	}
	for _, c := range cases {
		if got := CountInRange(live, c.lo, c.hi); got != c.want {
			t.Fatalf("CountInRange[%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestRowSetWireRoundTrip(t *testing.T) {
	ids := []int32{0, 5, 1 << 20}
	buf := EncodeRowSet(ids, 17)
	got, w, err := DecodeRowSet(buf)
	if err != nil || w != 17 || len(got) != len(ids) {
		t.Fatalf("round trip: ids=%v w=%d err=%v", got, w, err)
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("id %d: %d != %d", i, got[i], ids[i])
		}
	}
	bad := [][]float32{
		{},              // too short
		{1},             // too short
		{2, 4, 1},       // count mismatch
		{-1, 4},         // negative count
		{1, 4, 0.5},     // non-integer id
		{1, 4, -3},      // negative id
		{0, 0.25},       // non-integer width
		{1, 4, 1 << 25}, // id beyond dimension cap
	}
	for _, b := range bad {
		if _, _, err := DecodeRowSet(b); err == nil {
			t.Fatalf("DecodeRowSet(%v) accepted malformed input", b)
		}
	}
}

// sparseGlobal builds an n x f matrix whose nonzero rows are exactly
// the live set.
func sparseGlobal(rng *rand.Rand, n, f int, live []int32) *tensor.Dense {
	m := tensor.NewDense(n, f)
	for _, r := range live {
		row := m.Row(int(r))
		for j := range row {
			row[j] = rng.Float32() + 0.5
		}
	}
	return m
}

// sparsePairBytes computes, from geometry and the live census alone,
// the metadata and payload bytes a sparse regrid must meter across
// non-self pairs — the same closed form internal/costmodel prices.
func sparsePairBytes(from, to Layout, p, n, f int, live []int32) (meta, pay int64) {
	from, to = from.normalize(p), to.normalize(p)
	for r := 0; r < p; r++ {
		srlo, srhi := RowRange(from, p, r, n)
		sclo, schi := ColRange(from, p, r, f)
		for q := 0; q < p; q++ {
			if q == r {
				continue
			}
			trlo, trhi := RowRange(to, p, q, n)
			tclo, tchi := ColRange(to, p, q, f)
			rlo, rhi := max(trlo, srlo), min(trhi, srhi)
			clo, chi := max(tclo, sclo), min(tchi, schi)
			if rlo >= rhi || clo >= chi {
				continue
			}
			cnt := CountInRange(live, rlo, rhi)
			meta += int64(2+cnt) * 4
			pay += int64(cnt*(chi-clo)) * 4
		}
	}
	return meta, pay
}

func TestRedistributeSparseAllPairs(t *testing.T) {
	const n, f, p = 24, 10, 4
	rng := rand.New(rand.NewSource(11))
	live := GenRows(3, n, n/4)
	global := sparseGlobal(rng, n, f, live)
	layouts := []Layout{H, V, G(2), R}
	for _, from := range layouts {
		for _, to := range layouts {
			got, _ := runDist(t, p, global, from, func(m *Mat) *Mat {
				return m.RedistributeSparse(to, live)
			})
			if tensor.MaxAbsDiff(got, global) != 0 {
				t.Fatalf("%v -> %v: sparse redistribution corrupted values", from, to)
			}
		}
	}
}

func TestRedistributeSparseVolume(t *testing.T) {
	const n, f, p = 64, 16, 4
	rng := rand.New(rand.NewSource(12))
	live := GenRows(5, n, n/4)
	global := sparseGlobal(rng, n, f, live)
	for _, pair := range [][2]Layout{{H, V}, {V, H}, {H, G(2)}, {G(2), V}} {
		from, to := pair[0], pair[1]
		_, fab := runDist(t, p, global, from, func(m *Mat) *Mat {
			return m.RedistributeSparse(to, live)
		})
		wantMeta, wantPay := sparsePairBytes(from, to, p, n, f, live)
		if got := fab.Volume(hw.OpAllToAll); got != wantPay {
			t.Fatalf("%v->%v payload volume %d, closed form %d", from, to, got, wantPay)
		}
		if got := fab.SideVolume(hw.OpAllToAll); got != wantMeta {
			t.Fatalf("%v->%v metadata volume %d, closed form %d", from, to, got, wantMeta)
		}
		// The point of the subsystem: fewer primary bytes than dense.
		_, dfab := runDist(t, p, global, from, func(m *Mat) *Mat {
			return m.Redistribute(to)
		})
		if dense := dfab.Volume(hw.OpAllToAll); wantPay >= dense {
			t.Fatalf("%v->%v sparse payload %d not below dense %d", from, to, wantPay, dense)
		}
	}
}

func TestRedistributeSparseFullLiveMatchesDense(t *testing.T) {
	// With every row live the payload round degenerates to the dense
	// exchange: byte-identical primary volume, metadata riding aside.
	const n, f, p = 32, 8, 4
	rng := rand.New(rand.NewSource(13))
	live := GenRows(0, n, n)
	global := globalRand(rng, n, f)
	gotS, sfab := runDist(t, p, global, H, func(m *Mat) *Mat {
		return m.RedistributeSparse(V, live)
	})
	gotD, dfab := runDist(t, p, global, H, func(m *Mat) *Mat {
		return m.Redistribute(V)
	})
	if tensor.MaxAbsDiff(gotS, gotD) != 0 {
		t.Fatal("full-live sparse result differs from dense")
	}
	if sv, dv := sfab.Volume(hw.OpAllToAll), dfab.Volume(hw.OpAllToAll); sv != dv {
		t.Fatalf("full-live sparse payload %d != dense %d", sv, dv)
	}
	if sfab.SideVolume(hw.OpAllToAll) == 0 {
		t.Fatal("metadata round metered nothing")
	}
}

func TestRedistributeSparseFallbacks(t *testing.T) {
	// Identity, Replicated endpoints, and P == 1 take the dense path —
	// same values, no metadata side traffic.
	const n, f = 16, 6
	rng := rand.New(rand.NewSource(14))
	live := GenRows(2, n, n/2)
	global := sparseGlobal(rng, n, f, live)
	for _, tc := range []struct {
		p        int
		from, to Layout
	}{
		{4, H, H}, {4, H, R}, {4, R, V}, {1, H, V},
	} {
		got, fab := runDist(t, tc.p, global, tc.from, func(m *Mat) *Mat {
			return m.RedistributeSparse(tc.to, live)
		})
		if tensor.MaxAbsDiff(got, global) != 0 {
			t.Fatalf("P=%d %v->%v: values corrupted", tc.p, tc.from, tc.to)
		}
		if fab.SideVolume(hw.OpAllToAll) != 0 {
			t.Fatalf("P=%d %v->%v: fallback ran the metadata round", tc.p, tc.from, tc.to)
		}
	}
}

// gatherOn runs fn per device over global distributed as H and returns
// root's result plus the fabric.
func gatherOn(t *testing.T, p int, global *tensor.Dense, fn func(m *Mat) *tensor.Dense) (*tensor.Dense, *comm.Fabric) {
	t.Helper()
	outs := make([]*tensor.Dense, p)
	f := comm.Run(p, hw.A6000(), func(d *comm.Device) {
		outs[d.Rank] = fn(Distribute(d, H, global))
	})
	return outs[0], f
}

// Satellite: GatherRows edge cases — the empty row set and duplicated
// (and unsorted) indices are well-defined, at P == 1 and across ranks.
func TestGatherRowsEmptyRowSet(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	global := globalRand(rng, 12, 5)
	for _, p := range []int{1, 4} {
		got, fab := gatherOn(t, p, global, func(m *Mat) *tensor.Dense {
			return m.GatherRows(0, nil)
		})
		if got == nil || got.Rows != 0 {
			t.Fatalf("P=%d: empty gather returned %v", p, got)
		}
		if fab.TotalVolume() != 0 {
			t.Fatalf("P=%d: empty gather moved bytes", p)
		}
	}
}

func TestGatherRowsDuplicatesAndUnsorted(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	global := globalRand(rng, 12, 5)
	rows := []int32{7, 2, 7, 11, 2, 2, 0, 7}
	for _, p := range []int{1, 3, 4} {
		got, _ := gatherOn(t, p, global, func(m *Mat) *tensor.Dense {
			return m.GatherRows(0, rows)
		})
		if got.Rows != len(rows) {
			t.Fatalf("P=%d: %d rows, want %d", p, got.Rows, len(rows))
		}
		for i, r := range rows {
			for j := 0; j < 5; j++ {
				if got.At(i, j) != global.At(int(r), j) {
					t.Fatalf("P=%d: row %d (global %d) wrong at col %d", p, i, r, j)
				}
			}
		}
	}
}

func TestGatherRowsSparseDedup(t *testing.T) {
	// GatherRowsSparse returns GatherRows' exact output while moving
	// each distinct row once — strictly fewer bytes under duplication.
	const n, f, p = 20, 6, 4
	rng := rand.New(rand.NewSource(17))
	global := globalRand(rng, n, f)
	rows := []int32{9, 9, 9, 3, 15, 3, 9, 19}
	dense, dfab := gatherOn(t, p, global, func(m *Mat) *tensor.Dense {
		return m.GatherRows(0, rows)
	})
	sparse, sfab := gatherOn(t, p, global, func(m *Mat) *tensor.Dense {
		return m.GatherRowsSparse(0, rows)
	})
	if tensor.MaxAbsDiff(dense, sparse) != 0 {
		t.Fatal("sparse gather differs from dense")
	}
	sv, dv := sfab.Volume(hw.OpAllToAll), dfab.Volume(hw.OpAllToAll)
	if sv >= dv || sv == 0 {
		t.Fatalf("dedup gather volume %d, dense %d", sv, dv)
	}
	// Empty set and no-duplicate set are fine too.
	if got, _ := gatherOn(t, p, global, func(m *Mat) *tensor.Dense {
		return m.GatherRowsSparse(0, nil)
	}); got == nil || got.Rows != 0 {
		t.Fatal("empty sparse gather")
	}
}

func TestHaloExchange(t *testing.T) {
	// Every rank requests an arbitrary (duplicated, unsorted) row set —
	// including rows it owns — and gets them back in request order.
	const n, f, p = 24, 5, 4
	rng := rand.New(rand.NewSource(18))
	global := globalRand(rng, n, f)
	needFor := func(rank int) []int32 {
		return []int32{int32((7 * rank) % n), 3, 3, int32(n - 1 - rank), 0}
	}
	halos := make([]*tensor.Dense, p)
	fab := comm.Run(p, hw.A6000(), func(d *comm.Device) {
		halos[d.Rank] = HaloExchange(Distribute(d, H, global), needFor(d.Rank))
	})
	for r := 0; r < p; r++ {
		need := needFor(r)
		if halos[r].Rows != len(need) {
			t.Fatalf("rank %d: %d rows, want %d", r, halos[r].Rows, len(need))
		}
		for i, row := range need {
			for j := 0; j < f; j++ {
				if halos[r].At(i, j) != global.At(int(row), j) {
					t.Fatalf("rank %d: need %d (global %d) wrong at col %d", r, i, row, j)
				}
			}
		}
	}
	if fab.SideVolume(hw.OpAllGather) == 0 {
		t.Fatal("halo advert round metered nothing")
	}
	if fab.Volume(hw.OpAllToAll) == 0 {
		t.Fatal("halo payload round metered nothing")
	}
}
