package dist_test

// Round-trip tests for every layout conversion on ragged shapes — rows
// and cols chosen so neither divides P. Redistribution copies values
// without arithmetic, so every comparison is exact (==), not tolerance
// based.

import (
	"fmt"
	"sync"
	"testing"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/tensor"
)

// marked builds a rows x cols matrix whose entries encode their global
// coordinates, so any misplaced element is detected, not just lost mass.
func marked(rows, cols int) *tensor.Dense {
	m := tensor.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, float32(i*1000+j+1))
		}
	}
	return m
}

func sameDense(a, b *tensor.Dense) error {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return fmt.Errorf("shape %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return fmt.Errorf("element %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
	return nil
}

// runChain distributes global into the first layout, redistributes along
// the chain on every device, and returns the assembled result plus the
// fabric (for volume assertions).
func runChain(t *testing.T, p int, global *tensor.Dense, chain []dist.Layout) (*tensor.Dense, *comm.Fabric) {
	t.Helper()
	mats := make([]*dist.Mat, p)
	var mu sync.Mutex
	fab := comm.Run(p, hw.A6000(), func(d *comm.Device) {
		m := dist.Distribute(d, chain[0], global)
		for _, l := range chain[1:] {
			m = m.Redistribute(l)
		}
		mu.Lock()
		mats[d.Rank] = m
		mu.Unlock()
	})
	return dist.Assemble(mats), fab
}

func TestRoundTripRaggedShapes(t *testing.T) {
	shapes := []struct{ rows, cols int }{
		{7, 5},  // neither divides 2, 3, or 4
		{13, 3}, // cols < P for P=4
		{5, 9},  // rows < P roles reversed
		{1, 6},  // single row: H gives empty tiles on most devices
		{6, 1},  // single column: V gives empty tiles
		{3, 3},  // fewer rows and cols than P=4
		{16, 8}, // divisible control case
	}
	chains := [][]dist.Layout{
		{dist.H, dist.V, dist.H},
		{dist.V, dist.H, dist.V},
		{dist.H, dist.R, dist.H},
		{dist.V, dist.R, dist.V},
		{dist.R, dist.H, dist.V, dist.R},
		{dist.H, dist.G(2), dist.H},
		{dist.G(2), dist.V, dist.G(2)},
		{dist.H, dist.G(2), dist.V, dist.H},
	}
	for _, p := range []int{2, 4} {
		for _, sh := range shapes {
			global := marked(sh.rows, sh.cols)
			for _, chain := range chains {
				name := fmt.Sprintf("P%d_%dx%d_%v", p, sh.rows, sh.cols, chain)
				t.Run(name, func(t *testing.T) {
					got, _ := runChain(t, p, global, chain)
					if err := sameDense(global, got); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
	// P=3: ragged against every chain too (PartRange's uneven chunks).
	for _, sh := range shapes {
		global := marked(sh.rows, sh.cols)
		for _, chain := range [][]dist.Layout{
			{dist.H, dist.V, dist.H},
			{dist.V, dist.H, dist.V},
			{dist.H, dist.R, dist.H},
		} {
			name := fmt.Sprintf("P3_%dx%d_%v", sh.rows, sh.cols, chain)
			t.Run(name, func(t *testing.T) {
				got, _ := runChain(t, 3, global, chain)
				if err := sameDense(global, got); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestGatherRootRagged(t *testing.T) {
	const p = 4
	global := marked(7, 5)
	for _, l := range []dist.Layout{dist.H, dist.V, dist.G(2), dist.R} {
		for root := 0; root < p; root++ {
			t.Run(fmt.Sprintf("%v_root%d", l, root), func(t *testing.T) {
				var got *tensor.Dense
				var gotRanks []int
				var mu sync.Mutex
				comm.Run(p, hw.A6000(), func(d *comm.Device) {
					m := dist.Distribute(d, l, global)
					g := m.GatherRoot(root)
					mu.Lock()
					defer mu.Unlock()
					if g != nil {
						got = g
						gotRanks = append(gotRanks, d.Rank)
					}
				})
				if len(gotRanks) != 1 || gotRanks[0] != root {
					t.Fatalf("non-root devices must return nil; got results on %v", gotRanks)
				}
				if err := sameDense(global, got); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestGatherRootVolume(t *testing.T) {
	// Gather moves only the non-root tiles: (P-1)/P of the matrix for an
	// even Horizontal split, far less than replicate's (P-1)x total.
	const p, rows, cols = 4, 8, 6
	global := marked(rows, cols)
	fab := comm.Run(p, hw.A6000(), func(d *comm.Device) {
		dist.Distribute(d, dist.H, global).GatherRoot(0)
	})
	want := int64((p - 1) * (rows / p) * cols * 4)
	if got := fab.Volume(hw.OpAllToAll); got != want {
		t.Fatalf("gather volume=%d want %d", got, want)
	}
}

func TestScatterRootRagged(t *testing.T) {
	const p = 4
	global := marked(13, 3)
	for _, l := range []dist.Layout{dist.H, dist.V, dist.G(2), dist.R} {
		for _, root := range []int{0, 2} {
			t.Run(fmt.Sprintf("%v_root%d", l, root), func(t *testing.T) {
				mats := make([]*dist.Mat, p)
				var mu sync.Mutex
				comm.Run(p, hw.A6000(), func(d *comm.Device) {
					var g *tensor.Dense
					if d.Rank == root {
						g = global
					}
					m := dist.ScatterRoot(d, root, l, global.Rows, global.Cols, g)
					mu.Lock()
					mats[d.Rank] = m
					mu.Unlock()
				})
				if err := sameDense(global, dist.Assemble(mats)); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	// ScatterRoot then GatherRoot is identity for every layout, even when
	// the scatter root and gather root differ.
	const p = 3
	global := marked(7, 5)
	for _, l := range []dist.Layout{dist.H, dist.V, dist.R} {
		t.Run(l.String(), func(t *testing.T) {
			var got *tensor.Dense
			var mu sync.Mutex
			comm.Run(p, hw.A6000(), func(d *comm.Device) {
				var g *tensor.Dense
				if d.Rank == 0 {
					g = global
				}
				m := dist.ScatterRoot(d, 0, l, global.Rows, global.Cols, g)
				if out := m.GatherRoot(p - 1); out != nil {
					mu.Lock()
					got = out
					mu.Unlock()
				}
			})
			if err := sameDense(global, got); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMaskRoundTripRaggedIsSideChannel(t *testing.T) {
	// Mask redistribution round-trips exactly on ragged shapes AND all of
	// its traffic lands on the side-channel meters, leaving the primary
	// alltoall volume untouched.
	const p = 4
	global := tensor.NewDense(7, 5)
	for i := range global.Data {
		if i%3 == 0 {
			global.Data[i] = 1
		}
	}
	mats := make([]*dist.Mat, p)
	var mu sync.Mutex
	fab := comm.Run(p, hw.A6000(), func(d *comm.Device) {
		m := dist.Distribute(d, dist.H, global)
		m = m.RedistributeMask(dist.V)
		m = m.RedistributeMask(dist.H)
		mu.Lock()
		mats[d.Rank] = m
		mu.Unlock()
	})
	if err := sameDense(global, dist.Assemble(mats)); err != nil {
		t.Fatal(err)
	}
	if v := fab.Volume(hw.OpAllToAll); v != 0 {
		t.Fatalf("mask traffic leaked into primary meters: %d bytes", v)
	}
	if v := fab.SideVolume(hw.OpAllToAll); v == 0 {
		t.Fatal("mask traffic missing from side-channel meters")
	}
}
