// Round-trip identity via the internal/verify oracle, under the
// deadlock watchdog. The exhaustive ragged-shape chains live in
// roundtrip_test.go; this wires dist into the shared harness.
package dist_test

import (
	"testing"
	"time"

	"gnnrdm/internal/dist"
	"gnnrdm/internal/verify"
)

func TestVerifyRoundTripOracle(t *testing.T) {
	chains := [][]dist.Layout{
		{dist.H, dist.V},
		{dist.V, dist.G(2), dist.H},
		{dist.H, dist.R, dist.V},
	}
	for _, p := range []int{2, 4} {
		for _, chain := range chains {
			p, chain := p, chain
			verify.NoDeadlock(t, 30*time.Second, func() {
				verify.CheckRedistRoundTrip(t, p, 11, 7, chain)
			})
		}
	}
}
