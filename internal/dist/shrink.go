package dist

// Elastic shrink re-sharding: after rank crashes reduce a P-device world
// to the P' survivors, the H-partitioned (vertex-sliced) operands must
// be re-balanced onto the new fabric. This is just another layout change
// in RDM's framework — the old H(P) partition and the new H(P')
// partition are intersected, surviving intersections move over the
// fabric as one all-to-all (metered exactly like regrid, self-parts
// free), and rows whose old owner died are re-read from storage through
// a reload callback, charged as device memory traffic rather than fabric
// bytes. costmodel.ShrinkTrafficDense/CSR predict the fabric bytes of
// this exchange exactly; internal/verify asserts meter == prediction.

import (
	"fmt"
	"math"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
)

// ShrinkSpec maps a re-formed fabric back onto the world it replaces:
// Survivors[newRank] is the OLD fabric rank that device newRank carries
// forward. Survivors must be strictly ascending old ranks within
// [0, OldP); the missing old ranks are the crashed devices.
type ShrinkSpec struct {
	OldP      int
	Survivors []int
}

// Validate checks the spec against the new fabric size.
func (sp ShrinkSpec) Validate(newP int) error {
	if len(sp.Survivors) != newP {
		return fmt.Errorf("dist: shrink spec lists %d survivors for a %d-device fabric",
			len(sp.Survivors), newP)
	}
	if sp.OldP < newP {
		return fmt.Errorf("dist: shrink from %d to %d devices is a grow, not a shrink",
			sp.OldP, newP)
	}
	prev := -1
	for _, o := range sp.Survivors {
		if o <= prev || o >= sp.OldP {
			return fmt.Errorf("dist: survivors %v must be strictly ascending old ranks in [0,%d)",
				sp.Survivors, sp.OldP)
		}
		prev = o
	}
	return nil
}

// ShrinkReshard moves an H(OldP)-partitioned rows x cols dense matrix
// onto the current (shrunken) fabric's H(P') partition. oldLocal is this
// device's tile under the OLD partition (its old rank is
// sp.Survivors[dev.Rank]); the result is its tile under the new one.
// Rows whose old owner crashed are supplied by reload(lo, hi) — global
// row range, modelling a storage re-read — and charged as memory
// traffic, not fabric volume. Every device of the new fabric must call
// this collectively.
func ShrinkReshard(dev *comm.Device, sp ShrinkSpec, rows, cols int,
	oldLocal *tensor.Dense, reload func(lo, hi int) *tensor.Dense) *Mat {

	p := dev.P()
	if err := sp.Validate(p); err != nil {
		panic(err.Error())
	}
	dev.TraceBeginPhase("shrink-reshard")
	defer dev.TraceEndPhase()

	oldLo, oldHi := PartRange(rows, sp.OldP, sp.Survivors[dev.Rank])
	if oldLocal.Rows != oldHi-oldLo || oldLocal.Cols != cols {
		panic(fmt.Sprintf("dist: shrink reshard old tile is %dx%d, want %dx%d",
			oldLocal.Rows, oldLocal.Cols, oldHi-oldLo, cols))
	}

	// Divide: full-width row ranges are contiguous in the row-major
	// tile, so parts alias oldLocal without packing copies.
	parts := make([][]float32, p)
	var divideBytes int64
	for j := 0; j < p; j++ {
		tlo, thi := PartRange(rows, p, j)
		rlo, rhi := max(tlo, oldLo), min(thi, oldHi)
		if rlo >= rhi {
			continue
		}
		parts[j] = oldLocal.Data[(rlo-oldLo)*cols : (rhi-oldLo)*cols]
		if j != dev.Rank {
			divideBytes += int64(rhi-rlo) * int64(cols) * 4
		}
	}
	dev.ChargeMem(divideBytes)

	recv := dev.AllToAll(dev.World(), parts)

	// Merge received survivor rows into the new tile and track coverage.
	out := NewMat(dev, H, rows, cols)
	newLo, newHi := PartRange(rows, p, dev.Rank)
	covered := make([]bool, newHi-newLo)
	var mergeBytes int64
	for j := 0; j < p; j++ {
		if len(recv[j]) == 0 {
			continue
		}
		slo, shi := PartRange(rows, sp.OldP, sp.Survivors[j])
		rlo, rhi := max(newLo, slo), min(newHi, shi)
		if n := (rhi - rlo) * cols; n != len(recv[j]) {
			panic(fmt.Sprintf("dist: shrink reshard merge size mismatch from %d: %d vs %d",
				j, n, len(recv[j])))
		}
		copy(out.Local.Data[(rlo-newLo)*cols:(rhi-newLo)*cols], recv[j])
		for r := rlo; r < rhi; r++ {
			covered[r-newLo] = true
		}
		if j != dev.Rank {
			mergeBytes += int64(len(recv[j])) * 4
		}
	}
	dev.ChargeMem(mergeBytes)

	// Reload the gaps — rows whose old owner died — from storage.
	var reloadBytes int64
	for lo := 0; lo < len(covered); {
		if covered[lo] {
			lo++
			continue
		}
		hi := lo
		for hi < len(covered) && !covered[hi] {
			hi++
		}
		if reload == nil {
			panic(fmt.Sprintf("dist: shrink reshard rows [%d,%d) lost with no reload source",
				newLo+lo, newLo+hi))
		}
		blk := reload(newLo+lo, newLo+hi)
		if blk.Rows != hi-lo || blk.Cols != cols {
			panic(fmt.Sprintf("dist: reload returned %dx%d for rows [%d,%d)",
				blk.Rows, blk.Cols, newLo+lo, newLo+hi))
		}
		copy(out.Local.Data[lo*cols:hi*cols], blk.Data)
		reloadBytes += blk.Bytes()
		lo = hi
	}
	dev.ChargeMem(reloadBytes)
	return out
}

// ShrinkReshardCSR moves an H(OldP)-partitioned n x n sparse adjacency
// (one row panel per device, the R_A=1 degenerate case) onto the
// shrunken fabric's H(P') row panels. Surviving rows travel as
// bit-packed float32 streams — per row one count word then (column,
// value) pairs, (rows + 2·nnz)·4 bytes per non-self part, exactly what
// costmodel.ShrinkTrafficCSR predicts — and rows of crashed owners are
// re-read via reload(lo, hi), charged as memory traffic. With R_A = P
// (the paper's default) panels are replicated and no re-shard is needed;
// callers re-slice locally instead.
func ShrinkReshardCSR(dev *comm.Device, sp ShrinkSpec, n int,
	oldPanel *sparse.CSR, reload func(lo, hi int) *sparse.CSR) *sparse.CSR {

	p := dev.P()
	if err := sp.Validate(p); err != nil {
		panic(err.Error())
	}
	dev.TraceBeginPhase("shrink-reshard-csr")
	defer dev.TraceEndPhase()

	oldLo, oldHi := PartRange(n, sp.OldP, sp.Survivors[dev.Rank])
	if oldPanel.Rows != oldHi-oldLo || oldPanel.Cols != n {
		panic(fmt.Sprintf("dist: shrink reshard old panel is %dx%d, want %dx%d",
			oldPanel.Rows, oldPanel.Cols, oldHi-oldLo, n))
	}

	parts := make([][]float32, p)
	var divideBytes int64
	for j := 0; j < p; j++ {
		tlo, thi := PartRange(n, p, j)
		rlo, rhi := max(tlo, oldLo), min(thi, oldHi)
		if rlo >= rhi {
			continue
		}
		parts[j] = encodeCSRRows(oldPanel, rlo-oldLo, rhi-oldLo)
		if j != dev.Rank {
			divideBytes += int64(len(parts[j])) * 4
		}
	}
	dev.ChargeMem(divideBytes)

	recv := dev.AllToAll(dev.World(), parts)

	newLo, newHi := PartRange(n, p, dev.Rank)
	rowCols := make([][]int32, newHi-newLo)
	rowVals := make([][]float32, newHi-newLo)
	covered := make([]bool, newHi-newLo)
	var mergeBytes int64
	for j := 0; j < p; j++ {
		if len(recv[j]) == 0 {
			continue
		}
		slo, shi := PartRange(n, sp.OldP, sp.Survivors[j])
		rlo, rhi := max(newLo, slo), min(newHi, shi)
		decodeCSRRows(recv[j], rowCols[rlo-newLo:rhi-newLo], rowVals[rlo-newLo:rhi-newLo], j)
		for r := rlo; r < rhi; r++ {
			covered[r-newLo] = true
		}
		if j != dev.Rank {
			mergeBytes += int64(len(recv[j])) * 4
		}
	}
	dev.ChargeMem(mergeBytes)

	var reloadBytes int64
	for lo := 0; lo < len(covered); {
		if covered[lo] {
			lo++
			continue
		}
		hi := lo
		for hi < len(covered) && !covered[hi] {
			hi++
		}
		if reload == nil {
			panic(fmt.Sprintf("dist: shrink reshard rows [%d,%d) lost with no reload source",
				newLo+lo, newLo+hi))
		}
		blk := reload(newLo+lo, newLo+hi)
		if blk.Rows != hi-lo || blk.Cols != n {
			panic(fmt.Sprintf("dist: reload returned %dx%d for rows [%d,%d)",
				blk.Rows, blk.Cols, newLo+lo, newLo+hi))
		}
		for r := 0; r < blk.Rows; r++ {
			s, e := blk.RowPtr[r], blk.RowPtr[r+1]
			rowCols[lo+r] = blk.ColIdx[s:e]
			rowVals[lo+r] = blk.Val[s:e]
		}
		reloadBytes += blk.Bytes()
		lo = hi
	}
	dev.ChargeMem(reloadBytes)

	out := sparse.NewEmpty(newHi-newLo, n)
	var nnz int64
	for r := range rowCols {
		nnz += int64(len(rowCols[r]))
		out.RowPtr[r+1] = nnz
	}
	out.ColIdx = make([]int32, 0, nnz)
	out.Val = make([]float32, 0, nnz)
	for r := range rowCols {
		out.ColIdx = append(out.ColIdx, rowCols[r]...)
		out.Val = append(out.Val, rowVals[r]...)
	}
	return out
}

// encodeCSRRows bit-packs local rows [r0, r1) of a panel: per row a
// count word followed by (column, value) pairs, every word an exact
// float32 reinterpretation so the stream survives the float32 fabric
// losslessly.
func encodeCSRRows(m *sparse.CSR, r0, r1 int) []float32 {
	nnz := m.RowPtr[r1] - m.RowPtr[r0]
	out := make([]float32, 0, int64(r1-r0)+2*nnz)
	for r := r0; r < r1; r++ {
		s, e := m.RowPtr[r], m.RowPtr[r+1]
		out = append(out, math.Float32frombits(uint32(e-s)))
		for k := s; k < e; k++ {
			out = append(out, math.Float32frombits(uint32(m.ColIdx[k])), m.Val[k])
		}
	}
	return out
}

// decodeCSRRows unpacks an encodeCSRRows stream into per-row slices.
func decodeCSRRows(buf []float32, cols [][]int32, vals [][]float32, from int) {
	k := 0
	for r := range cols {
		if k >= len(buf) {
			panic(fmt.Sprintf("dist: truncated CSR stream from %d", from))
		}
		cnt := int(math.Float32bits(buf[k]))
		k++
		c := make([]int32, cnt)
		v := make([]float32, cnt)
		for i := 0; i < cnt; i++ {
			if k+2 > len(buf) {
				panic(fmt.Sprintf("dist: truncated CSR stream from %d", from))
			}
			c[i] = int32(math.Float32bits(buf[k]))
			v[i] = buf[k+1]
			k += 2
		}
		cols[r], vals[r] = c, v
	}
	if k != len(buf) {
		panic(fmt.Sprintf("dist: CSR stream from %d has %d trailing words", from, len(buf)-k))
	}
}
