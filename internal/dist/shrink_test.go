package dist

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
)

func randGlobal(rows, cols int, seed int64) *tensor.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := tensor.NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float32()
	}
	return m
}

func randAdj(n int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	var coords []sparse.Coord
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if rng.Float64() < 0.2 {
				coords = append(coords, sparse.Coord{Row: int32(r), Col: int32(c), Val: rng.Float32()})
			}
		}
	}
	return sparse.FromCoords(n, n, coords)
}

func TestShrinkSpecValidate(t *testing.T) {
	ok := ShrinkSpec{OldP: 8, Survivors: []int{0, 1, 2, 3, 4, 6, 7}}
	if err := ok.Validate(7); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []struct {
		sp   ShrinkSpec
		newP int
	}{
		{ShrinkSpec{OldP: 8, Survivors: []int{0, 1}}, 3},     // wrong length
		{ShrinkSpec{OldP: 2, Survivors: []int{0, 1, 2}}, 3},  // grow
		{ShrinkSpec{OldP: 8, Survivors: []int{0, 0, 1}}, 3},  // duplicate
		{ShrinkSpec{OldP: 8, Survivors: []int{2, 1, 0}}, 3},  // unsorted
		{ShrinkSpec{OldP: 4, Survivors: []int{0, 1, 4}}, 3},  // out of range
		{ShrinkSpec{OldP: 4, Survivors: []int{-1, 1, 2}}, 3}, // negative
	}
	for _, c := range bad {
		if err := c.sp.Validate(c.newP); err == nil {
			t.Errorf("spec %+v accepted for P'=%d", c.sp, c.newP)
		}
	}
}

// shrinkCase runs a dense shrink re-shard on a fresh P'-device fabric and
// checks every new tile against the fault-free H(P') partition of the
// same global matrix, plus the metered volume against the intersection
// formula.
func shrinkCase(t *testing.T, rows, cols, oldP int, survivors []int) {
	t.Helper()
	global := randGlobal(rows, cols, 42)
	newP := len(survivors)
	sp := ShrinkSpec{OldP: oldP, Survivors: survivors}
	f := comm.NewFabric(newP, hw.A6000())

	dead := make(map[int]bool)
	for o := 0; o < oldP; o++ {
		dead[o] = true
	}
	for _, o := range survivors {
		delete(dead, o)
	}

	var mu sync.Mutex
	reloaded := 0
	f.Run(func(d *comm.Device) {
		oldLo, oldHi := PartRange(rows, oldP, survivors[d.Rank])
		oldTile := tensor.NewDense(oldHi-oldLo, cols)
		copy(oldTile.Data, global.Data[oldLo*cols:oldHi*cols])
		got := ShrinkReshard(d, sp, rows, cols, oldTile, func(lo, hi int) *tensor.Dense {
			// Every reloaded row must belong to a dead old rank.
			for r := lo; r < hi; r++ {
				owner := -1
				for o := 0; o < oldP; o++ {
					if plo, phi := PartRange(rows, oldP, o); r >= plo && r < phi {
						owner = o
					}
				}
				if !dead[owner] {
					t.Errorf("rank %d reloaded row %d owned by live old rank %d", d.Rank, r, owner)
				}
			}
			mu.Lock()
			reloaded += hi - lo
			mu.Unlock()
			blk := tensor.NewDense(hi-lo, cols)
			copy(blk.Data, global.Data[lo*cols:hi*cols])
			return blk
		})
		nlo, nhi := PartRange(rows, newP, d.Rank)
		want := global.Data[nlo*cols : nhi*cols]
		if !reflect.DeepEqual(got.Local.Data, want) {
			t.Errorf("rank %d: resharded tile differs from reference partition", d.Rank)
		}
	})

	// Metered volume is exactly the non-self old∩new intersections of
	// surviving panels — the same formula costmodel.ShrinkTrafficDense
	// uses (asserted equal in internal/costmodel's tests).
	var want int64
	for i, o := range survivors {
		olo, ohi := PartRange(rows, oldP, o)
		for j := 0; j < newP; j++ {
			if j == i {
				continue
			}
			tlo, thi := PartRange(rows, newP, j)
			if lo, hi := max(tlo, olo), min(thi, ohi); lo < hi {
				want += int64(hi-lo) * int64(cols) * 4
			}
		}
	}
	if got := f.TotalVolume(); got != want {
		t.Errorf("metered %d bytes, want %d", got, want)
	}
	if len(dead) > 0 && reloaded == 0 {
		t.Error("dead ranks owned rows but nothing was reloaded")
	}
}

func TestShrinkReshardDense(t *testing.T) {
	cases := []struct {
		name             string
		rows, cols, oldP int
		survivors        []int
	}{
		{"8to7", 37, 5, 8, []int{0, 1, 2, 4, 5, 6, 7}},
		{"8to4", 37, 5, 8, []int{0, 2, 5, 7}},
		{"4to3-uneven", 10, 3, 4, []int{0, 1, 3}},
		{"3to2-lastdies", 9, 4, 3, []int{0, 1}},
		{"2to1", 7, 2, 2, []int{1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			shrinkCase(t, c.rows, c.cols, c.oldP, c.survivors)
		})
	}
}

func TestShrinkReshardCSR(t *testing.T) {
	const n, oldP = 23, 4
	survivors := []int{0, 2, 3}
	newP := len(survivors)
	adj := randAdj(n, 7)
	sp := ShrinkSpec{OldP: oldP, Survivors: survivors}
	f := comm.NewFabric(newP, hw.A6000())
	f.Run(func(d *comm.Device) {
		olo, ohi := PartRange(n, oldP, survivors[d.Rank])
		got := ShrinkReshardCSR(d, sp, n, adj.RowPanel(olo, ohi), func(lo, hi int) *sparse.CSR {
			return adj.RowPanel(lo, hi)
		})
		nlo, nhi := PartRange(n, newP, d.Rank)
		want := adj.RowPanel(nlo, nhi)
		if !reflect.DeepEqual(got.RowPtr, want.RowPtr) ||
			!reflect.DeepEqual(got.ColIdx, want.ColIdx) ||
			!reflect.DeepEqual(got.Val, want.Val) {
			t.Errorf("rank %d: resharded CSR panel differs from reference", d.Rank)
		}
	})

	// Non-self moved rows cost (1 + 2·nnz) words each.
	var words int64
	for i, o := range survivors {
		olo, ohi := PartRange(n, oldP, o)
		for j := 0; j < newP; j++ {
			if j == i {
				continue
			}
			tlo, thi := PartRange(n, newP, j)
			for r := max(tlo, olo); r < min(thi, ohi); r++ {
				words += 1 + 2*(adj.RowPtr[r+1]-adj.RowPtr[r])
			}
		}
	}
	if got := f.TotalVolume(); got != words*4 {
		t.Errorf("metered %d bytes, want %d", got, words*4)
	}
}

func TestShrinkReshardPanicsWithoutReloadSource(t *testing.T) {
	const rows, cols, oldP = 12, 2, 3
	survivors := []int{0, 1} // rank 2's rows are lost
	sp := ShrinkSpec{OldP: oldP, Survivors: survivors}
	f := comm.NewFabric(2, hw.A6000())
	defer func() {
		if recover() == nil {
			t.Fatal("lost rows with nil reload must panic")
		}
	}()
	f.Run(func(d *comm.Device) {
		olo, ohi := PartRange(rows, oldP, survivors[d.Rank])
		tile := randGlobal(ohi-olo, cols, int64(d.Rank))
		ShrinkReshard(d, sp, rows, cols, tile, nil)
	})
}
