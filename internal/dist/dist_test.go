package dist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/tensor"
)

func TestPartRange(t *testing.T) {
	// 10 items over 4 parts: 3,3,2,2.
	wants := [][2]int{{0, 3}, {3, 6}, {6, 8}, {8, 10}}
	for i, w := range wants {
		lo, hi := PartRange(10, 4, i)
		if lo != w[0] || hi != w[1] {
			t.Fatalf("part %d: [%d,%d) want %v", i, lo, hi, w)
		}
	}
	// Parts cover [0, n) exactly for arbitrary n, p.
	f := func(n, p uint8) bool {
		if p == 0 {
			return true
		}
		at := 0
		for i := 0; i < int(p); i++ {
			lo, hi := PartRange(int(n), int(p), i)
			if lo != at || hi < lo {
				return false
			}
			at = hi
		}
		return at == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutNormalize(t *testing.T) {
	if G(1).normalize(4) != H {
		t.Fatal("G(1) should normalize to H")
	}
	if G(4).normalize(4) != V {
		t.Fatal("G(P) should normalize to V")
	}
	if G(2).normalize(4).Kind != Grid {
		t.Fatal("G(2) should stay Grid at P=4")
	}
	if H.String() != "H" || V.String() != "V" || G(2).String() != "G2" || R.String() != "R" {
		t.Fatal("layout strings")
	}
}

func TestGridPJMustDivideP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for PJ not dividing P")
		}
	}()
	G(3).normalize(8)
}

func TestTileShapes(t *testing.T) {
	// P=4, 10x6 matrix.
	cases := []struct {
		l          Layout
		rank, r, c int
	}{
		{H, 0, 3, 6}, {H, 3, 2, 6},
		{V, 0, 10, 2}, {V, 2, 10, 1},
		{G(2), 0, 5, 3}, {G(2), 3, 5, 3},
		{R, 1, 10, 6},
	}
	for _, tc := range cases {
		r, c := TileShape(tc.l, 4, tc.rank, 10, 6)
		if r != tc.r || c != tc.c {
			t.Fatalf("%v rank %d: %dx%d want %dx%d", tc.l, tc.rank, r, c, tc.r, tc.c)
		}
	}
}

func globalRand(rng *rand.Rand, r, c int) *tensor.Dense {
	m := tensor.NewDense(r, c)
	m.Randomize(rng, 1)
	return m
}

// runDist distributes `global` under layout `from` on p devices, applies
// fn per device, and assembles the results.
func runDist(t *testing.T, p int, global *tensor.Dense, from Layout, fn func(m *Mat) *Mat) (*tensor.Dense, *comm.Fabric) {
	t.Helper()
	outs := make([]*Mat, p)
	f := comm.Run(p, hw.A6000(), func(d *comm.Device) {
		m := Distribute(d, from, global)
		outs[d.Rank] = fn(m)
	})
	return Assemble(outs), f
}

func TestDistributeAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	global := globalRand(rng, 13, 9)
	for _, l := range []Layout{H, V, R, G(2)} {
		got, fab := runDist(t, 4, global, l, func(m *Mat) *Mat { return m })
		if tensor.MaxAbsDiff(got, global) != 0 {
			t.Fatalf("layout %v: assemble mismatch", l)
		}
		if fab.TotalVolume() != 0 {
			t.Fatalf("Distribute must not communicate (layout %v)", l)
		}
	}
}

func TestRedistributeAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	global := globalRand(rng, 17, 11)
	layouts := []Layout{H, V, G(2), R}
	for _, from := range layouts {
		for _, to := range layouts {
			got, _ := runDist(t, 4, global, from, func(m *Mat) *Mat {
				return m.Redistribute(to)
			})
			if tensor.MaxAbsDiff(got, global) != 0 {
				t.Fatalf("%v -> %v: values corrupted", from, to)
			}
		}
	}
}

func TestRedistributeIdentityFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	global := globalRand(rng, 8, 8)
	_, fab := runDist(t, 4, global, H, func(m *Mat) *Mat { return m.Redistribute(H) })
	if fab.TotalVolume() != 0 {
		t.Fatal("identity redistribution must be free")
	}
}

func TestRedistributionVolumeHV(t *testing.T) {
	// H -> V moves exactly (P-1)/P * N * f elements (Fig. 7 / §III-D).
	const n, fdim, p = 64, 32, 4
	rng := rand.New(rand.NewSource(4))
	global := globalRand(rng, n, fdim)
	_, fab := runDist(t, p, global, H, func(m *Mat) *Mat { return m.Redistribute(V) })
	wantBytes := int64((p - 1) * n * fdim / p * 4)
	if got := fab.Volume(hw.OpAllToAll); got != wantBytes {
		t.Fatalf("H->V volume=%d want %d", got, wantBytes)
	}
}

func TestRedistributionVolumeConstantInP(t *testing.T) {
	// The paper's central scalability property: redistribution volume is
	// (P-1)/P·N·f — essentially constant (and bounded by N·f) in P.
	const n, fdim = 96, 24
	rng := rand.New(rand.NewSource(5))
	global := globalRand(rng, n, fdim)
	var prev int64
	for _, p := range []int{2, 4, 8} {
		_, fab := runDist(t, p, global, H, func(m *Mat) *Mat { return m.Redistribute(V) })
		v := fab.Volume(hw.OpAllToAll)
		want := int64((p - 1) * n * fdim / p * 4)
		if v != want {
			t.Fatalf("P=%d: volume %d want %d", p, v, want)
		}
		if v > int64(n*fdim*4) {
			t.Fatalf("P=%d: volume %d exceeds N*f bound", p, v)
		}
		if prev != 0 && float64(v) > 1.5*float64(prev) {
			t.Fatalf("volume must be ~constant in P: %d -> %d", prev, v)
		}
		prev = v
	}
}

func TestGridToHVolumeRowGroupLocal(t *testing.T) {
	// Grid(R_A) -> H exchanges only within row groups:
	// (R_A-1)/R_A · N · f elements total (§IV-A4).
	const n, fdim, p, ra = 64, 32, 8, 2
	rng := rand.New(rand.NewSource(6))
	global := globalRand(rng, n, fdim)
	_, fab := runDist(t, p, global, G(ra), func(m *Mat) *Mat { return m.Redistribute(H) })
	want := int64((ra - 1) * n * fdim / ra * 4)
	if got := fab.Volume(hw.OpAllToAll); got != want {
		t.Fatalf("G%d->H volume=%d want %d", ra, got, want)
	}
}

func TestHToGridVolume(t *testing.T) {
	const n, fdim, p, ra = 64, 32, 8, 4
	rng := rand.New(rand.NewSource(7))
	global := globalRand(rng, n, fdim)
	_, fab := runDist(t, p, global, H, func(m *Mat) *Mat { return m.Redistribute(G(ra)) })
	want := int64((ra - 1) * n * fdim / ra * 4)
	if got := fab.Volume(hw.OpAllToAll); got != want {
		t.Fatalf("H->G%d volume=%d want %d", ra, got, want)
	}
}

func TestReplicateAndBack(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	global := globalRand(rng, 10, 10)
	got, fab := runDist(t, 4, global, H, func(m *Mat) *Mat {
		rep := m.Redistribute(R)
		if rep.Local.Rows != 10 || rep.Local.Cols != 10 {
			t.Error("replicated tile must be full size")
		}
		return rep.Redistribute(V)
	})
	if tensor.MaxAbsDiff(got, global) != 0 {
		t.Fatal("replicate round trip corrupted values")
	}
	if fab.Volume(hw.OpAllGather) == 0 {
		t.Fatal("replicate must use allgather")
	}
}

func TestUnevenDimensions(t *testing.T) {
	// Dimensions not divisible by P or the grid.
	rng := rand.New(rand.NewSource(9))
	global := globalRand(rng, 19, 7)
	for _, to := range []Layout{V, G(2)} {
		got, _ := runDist(t, 4, global, H, func(m *Mat) *Mat { return m.Redistribute(to) })
		if tensor.MaxAbsDiff(got, global) != 0 {
			t.Fatalf("uneven H->%v corrupted", to)
		}
	}
}

func TestFromLocalValidation(t *testing.T) {
	fab := comm.NewFabric(2, hw.A6000())
	d := fab.Device(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape mismatch panic")
		}
	}()
	FromLocal(d, H, 10, 4, tensor.NewDense(3, 4)) // should be 5x4
}

// Property: any redistribution chain preserves values exactly.
func TestRedistributionChainProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, fd := 4+rng.Intn(40), 4+rng.Intn(20)
		global := globalRand(rng, n, fd)
		layouts := []Layout{H, V, G(2), R, V, H}
		outs := make([]*Mat, 4)
		comm.Run(4, hw.A6000(), func(d *comm.Device) {
			m := Distribute(d, H, global)
			for _, l := range layouts {
				m = m.Redistribute(l)
			}
			outs[d.Rank] = m
		})
		return tensor.MaxAbsDiff(Assemble(outs), global) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestRedistributeMask(t *testing.T) {
	// A 0/1 mask must survive redistribution and move only ~1/4 the bytes.
	const n, fdim, p = 32, 16, 4
	rng := rand.New(rand.NewSource(10))
	global := tensor.NewDense(n, fdim)
	for i := range global.Data {
		if rng.Float64() < 0.5 {
			global.Data[i] = 1
		}
	}
	outs := make([]*Mat, p)
	fabMask := comm.Run(p, hw.A6000(), func(d *comm.Device) {
		outs[d.Rank] = Distribute(d, H, global).RedistributeMask(V)
	})
	if tensor.MaxAbsDiff(Assemble(outs), global) != 0 {
		t.Fatal("mask corrupted by packed redistribution")
	}
	fabFull := comm.Run(p, hw.A6000(), func(d *comm.Device) {
		outs[d.Rank] = Distribute(d, H, global).Redistribute(V)
	})
	mv, fv := fabMask.Volume(hw.OpAllToAll), fabFull.Volume(hw.OpAllToAll)
	if mv*3 > fv {
		t.Fatalf("packed mask volume %d should be ~1/4 of %d", mv, fv)
	}
	// Replicated endpoints unsupported.
	fab := comm.NewFabric(1, hw.A6000())
	m := Distribute(fab.Device(0), R, global)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for replicated mask redistribution")
		}
	}()
	m.RedistributeMask(H)
}
