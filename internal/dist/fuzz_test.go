package dist_test

import (
	"sync"
	"testing"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/hw"
)

// FuzzRegrid drives the divide/exchange/merge redistribution path
// (Fig. 7) with arbitrary shapes, fabric sizes, and layout pairs, and
// checks that a round trip reconstructs the matrix exactly and that the
// exchanged volume never exceeds two full copies of the matrix (each
// regrid moves at most every element once).
func FuzzRegrid(f *testing.F) {
	f.Add(uint8(7), uint8(5), uint8(3), uint8(0), uint8(1))
	f.Add(uint8(1), uint8(1), uint8(0), uint8(0), uint8(0))
	f.Add(uint8(12), uint8(4), uint8(3), uint8(2), uint8(0))
	f.Add(uint8(3), uint8(9), uint8(1), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, rowsB, colsB, pSel, srcSel, dstSel uint8) {
		rows := 1 + int(rowsB)%12
		cols := 1 + int(colsB)%10
		p := 1 + int(pSel)%4
		layouts := []dist.Layout{dist.H, dist.V}
		if p%2 == 0 {
			layouts = append(layouts, dist.G(2))
		}
		src := layouts[int(srcSel)%len(layouts)]
		dst := layouts[int(dstSel)%len(layouts)]

		global := marked(rows, cols)
		mats := make([]*dist.Mat, p)
		var mu sync.Mutex
		fab := comm.Run(p, hw.A6000(), func(d *comm.Device) {
			m := dist.Distribute(d, src, global)
			m = m.Redistribute(dst)
			m = m.Redistribute(src)
			mu.Lock()
			mats[d.Rank] = m
			mu.Unlock()
		})
		if err := sameDense(global, dist.Assemble(mats)); err != nil {
			t.Fatalf("P=%d %v->%v->%v on %dx%d: %v", p, src, dst, src, rows, cols, err)
		}
		bound := int64(2 * rows * cols * 4)
		if v := fab.Volume(hw.OpAllToAll); v > bound {
			t.Fatalf("P=%d %v<->%v moved %d bytes, bound %d", p, src, dst, v, bound)
		}
		if p == 1 && fab.TotalVolume() != 0 {
			t.Fatal("single device must not communicate")
		}
	})
}
