// Sparse row-set exchange — the dist layer of the sparsity-aware
// exchange subsystem (DESIGN.md §4g). Real GNN feature matrices are
// row-sparse (most vertices contribute no signal at a given layer), so
// shipping dense tiles wastes bandwidth on zero rows. The protocol
// here is the two-round exchange of the sparsity-aware communication
// literature (arXiv 2504.04673): a metadata round advertises, per
// destination, which live rows the payload will carry (a fixed-shape
// header plus the row-index census, on the fabric's side channel), and
// a variable-volume payload round then moves only those rows through
// comm.TryAllToAllV. Receivers assemble from the *decoded* metadata,
// never from their own knowledge of the live set, so the wire format
// is load-bearing and fuzzed (FuzzSparseExchange).
//
// Rows absent from the live set are dropped on the wire and
// reconstructed as exact zeros (NewMat tiles are zero-filled), so a
// sparse redistribution is bit-identical to the dense one whenever the
// live set covers every nonzero row — the caller's invariant. With the
// live set equal to all rows the byte census degenerates to the dense
// one plus metadata, and callers (internal/core) skip the sparse path
// entirely at density 1.0, reproducing the dense protocol bit-for-bit.
package dist

import (
	"fmt"
	"math/rand"
	"sort"

	"gnnrdm/internal/tensor"
)

// GenRows returns a deterministic sorted set of count distinct row
// indices in [0, n): the canonical seeded live-row generator shared by
// the feature synthesizer (internal/graph), the schedule pricer
// (internal/plan), and the benchmarks, so that the engine's scanned
// live set and the cost model's assumed one coincide by construction.
// count is clamped to [0, n].
func GenRows(seed int64, n, count int) []int32 {
	if count >= n {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	if count <= 0 {
		return []int32{}
	}
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	// Partial Fisher–Yates: the first count entries are a uniform sample
	// without replacement.
	for i := 0; i < count; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := idx[:count]
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// LiveRows scans a dense matrix and returns the sorted indices of rows
// with at least one nonzero entry — the engine-side live set. The scan
// is value-based, so it is SPMD-consistent on any replicated input.
func LiveRows(x *tensor.Dense) []int32 {
	var out []int32
	for i := 0; i < x.Rows; i++ {
		for _, v := range x.Row(i) {
			if v != 0 {
				out = append(out, int32(i))
				break
			}
		}
	}
	if out == nil {
		out = []int32{}
	}
	return out
}

// CountInRange returns how many of the sorted live row indices fall in
// the half-open global row range [lo, hi) — the per-pair row census
// both the exchange below and the schedule pricer (internal/plan)
// compute, from the same definition.
func CountInRange(live []int32, lo, hi int) int {
	a := sort.Search(len(live), func(i int) bool { return int(live[i]) >= lo })
	b := sort.Search(len(live), func(i int) bool { return int(live[i]) >= hi })
	return b - a
}

// RowsInRange returns the sub-slice of the sorted live set falling in
// [lo, hi); the result aliases live.
func RowsInRange(live []int32, lo, hi int) []int32 {
	a := sort.Search(len(live), func(i int) bool { return int(live[i]) >= lo })
	b := sort.Search(len(live), func(i int) bool { return int(live[i]) >= hi })
	return live[a:b]
}

// EncodeRowSet serializes a row-index advertisement for one exchange
// pair: a two-word header [count, width] followed by the row indices,
// every value stored as an exact small-integer float32 (indices are
// bounded by the planner's 1<<24 dimension cap, within float32's exact
// integer range). width is the payload's column count, letting the
// receiver validate the payload length against the advertisement.
func EncodeRowSet(ids []int32, width int) []float32 {
	out := make([]float32, 2+len(ids))
	out[0] = float32(len(ids))
	out[1] = float32(width)
	for i, id := range ids {
		out[2+i] = float32(id)
	}
	return out
}

// DecodeRowSet parses an EncodeRowSet buffer, validating the header
// against the buffer length and every value's exact integerness.
func DecodeRowSet(buf []float32) (ids []int32, width int, err error) {
	if len(buf) < 2 {
		return nil, 0, fmt.Errorf("dist: row-set advertisement of %d words, need >= 2", len(buf))
	}
	count, okc := exactNonNeg(buf[0])
	width, okw := exactNonNeg(buf[1])
	if !okc || !okw {
		return nil, 0, fmt.Errorf("dist: row-set header not exact non-negative integers: [%v %v]", buf[0], buf[1])
	}
	if len(buf) != 2+count {
		return nil, 0, fmt.Errorf("dist: row-set advertises %d rows but carries %d", count, len(buf)-2)
	}
	ids = make([]int32, count)
	for i := range ids {
		v, ok := exactNonNeg(buf[2+i])
		if !ok {
			return nil, 0, fmt.Errorf("dist: row id %v at position %d not an exact non-negative integer", buf[2+i], i)
		}
		ids[i] = int32(v)
	}
	return ids, width, nil
}

// exactNonNeg converts a float32 to int iff it is an exact
// non-negative integer within the planner's dimension cap.
func exactNonNeg(f float32) (int, bool) {
	n := int(f)
	if f < 0 || n > 1<<24 || float32(n) != f {
		return 0, false
	}
	return n, true
}

// RedistributeSparse converts a row-sparse matrix to the target layout
// shipping only the rows in live — the caller asserts live (sorted
// ascending, global indices) covers every nonzero row; rows outside it
// are reconstructed as exact zeros. Conversions a ragged exchange
// cannot improve (identity, Replicated source or target, P == 1) fall
// through to the dense Redistribute. The exchange runs two rounds:
// metadata (EncodeRowSet per active pair, side channel) then payload
// (live rows only, primary meters), each mirroring the dense regrid's
// divide/exchange/merge charge order.
func (m *Mat) RedistributeSparse(target Layout, live []int32) *Mat {
	p := m.Dev.P()
	target = target.normalize(p)
	src := m.Layout.normalize(p)
	if src == target || src.Kind == Replicated || target.Kind == Replicated || p == 1 {
		return m.Redistribute(target)
	}
	return m.sparseRegrid(target, live)
}

func (m *Mat) sparseRegrid(dstL Layout, live []int32) *Mat {
	dev := m.Dev
	dev.TraceBeginPhase("redistribute-sparse")
	defer dev.TraceEndPhase()
	p := dev.P()
	rows, cols := m.GlobalRows, m.GlobalCols
	srcL := m.Layout.normalize(p)
	world := dev.World()

	myRlo, _ := RowRange(srcL, p, dev.Rank, rows)
	myClo, _ := ColRange(srcL, p, dev.Rank, cols)

	// Pair geometry: the dense tile intersection decides which pairs are
	// active; the live set decides what they carry.
	type pairGeom struct {
		rlo, rhi, clo, chi int
		ids                []int32
	}
	geom := make([]pairGeom, p)
	active := make([]bool, p)
	for s := 0; s < p; s++ {
		trlo, trhi := RowRange(dstL, p, s, rows)
		tclo, tchi := ColRange(dstL, p, s, cols)
		rlo, rhi := max(trlo, myRlo), min(trhi, myRlo+m.Local.Rows)
		clo, chi := max(tclo, myClo), min(tchi, myClo+m.Local.Cols)
		if rlo >= rhi || clo >= chi {
			continue
		}
		active[s] = true
		geom[s] = pairGeom{rlo, rhi, clo, chi, RowsInRange(live, rlo, rhi)}
	}

	// Round 1: metadata. Every active pair advertises its live-row ids
	// and payload width — mechanical protocol traffic the paper's cost
	// model does not count, so it rides the side channel like the ReLU
	// masks of RedistributeMask.
	metaParts := make([][]float32, p)
	var metaDiv int64
	for s := 0; s < p; s++ {
		if !active[s] {
			continue
		}
		g := &geom[s]
		metaParts[s] = EncodeRowSet(g.ids, g.chi-g.clo)
		if s != dev.Rank {
			metaDiv += int64(len(metaParts[s])) * 4
		}
	}
	dev.SetSideChannel(true)
	dev.ChargeMem(metaDiv)
	metaRecv, _ := dev.AllToAllV(world, metaParts, nil)
	var metaMer int64
	for s := 0; s < p; s++ {
		if s != dev.Rank {
			metaMer += int64(len(metaRecv[s])) * 4
		}
	}
	dev.ChargeMem(metaMer)
	dev.SetSideChannel(false)

	// Round 2: payload — only the advertised rows travel.
	parts := make([][]float32, p)
	var payDiv int64
	for s := 0; s < p; s++ {
		if !active[s] {
			continue
		}
		g := &geom[s]
		sub := make([]float32, 0, len(g.ids)*(g.chi-g.clo))
		for _, id := range g.ids {
			row := m.Local.Row(int(id) - myRlo)
			sub = append(sub, row[g.clo-myClo:g.chi-myClo]...)
		}
		parts[s] = sub
		if s != dev.Rank {
			payDiv += int64(len(sub)) * 4
		}
	}
	dev.ChargeMem(payDiv)
	recv, _ := dev.AllToAllV(world, parts, nil)

	// Merge: place the advertised rows using the decoded metadata. Rows
	// never advertised stay the zeros NewMat allocated.
	out := NewMat(dev, dstL, rows, cols)
	nrlo, _ := RowRange(dstL, p, dev.Rank, rows)
	nclo, _ := ColRange(dstL, p, dev.Rank, cols)
	var payMer int64
	for s := 0; s < p; s++ {
		meta := metaRecv[s]
		if len(meta) == 0 {
			if len(recv[s]) != 0 {
				panic(fmt.Sprintf("dist: sparse regrid got %d unadvertised elements from %d", len(recv[s]), s))
			}
			continue
		}
		ids, width, err := DecodeRowSet(meta)
		if err != nil {
			panic(fmt.Sprintf("dist: sparse regrid metadata from %d: %v", s, err))
		}
		buf := recv[s]
		if len(buf) != len(ids)*width {
			panic(fmt.Sprintf("dist: sparse regrid payload from %d: %d elements for %d rows x %d cols",
				s, len(buf), len(ids), width))
		}
		// The sender's column window is geometry, recomputed here from the
		// layouts (the metadata advertises rows; columns are SPMD-known).
		sclo, schi := ColRange(srcL, p, s, cols)
		clo := max(nclo, sclo)
		if w := min(nclo+out.Local.Cols, schi) - clo; w != width {
			panic(fmt.Sprintf("dist: sparse regrid width from %d: advertised %d, geometry %d", s, width, w))
		}
		if s != dev.Rank {
			payMer += int64(len(buf)) * 4
		}
		for k, id := range ids {
			i := int(id) - nrlo
			if i < 0 || i >= out.Local.Rows {
				panic(fmt.Sprintf("dist: sparse regrid row %d from %d outside my tile", id, s))
			}
			copy(out.Local.Row(i)[clo-nclo:clo-nclo+width], buf[k*width:(k+1)*width])
		}
	}
	dev.ChargeMem(payMer)
	return out
}

// GatherRowsSparse is GatherRows with aggregation before
// communication: duplicate row requests are deduplicated before the
// exchange, so each owner injects every distinct requested row at most
// once, and root fans the copies back out locally. The result is still
// assembled in request order, byte-identical to GatherRows' output.
func (m *Mat) GatherRowsSparse(root int, rowset []int32) *tensor.Dense {
	dev := m.Dev
	p := dev.P()
	src := m.Layout.normalize(p)
	if src.Kind != Horizontal {
		panic(fmt.Sprintf("dist: GatherRowsSparse needs a vertex-sliced source, have %s", src))
	}
	distinct := make([]int32, 0, len(rowset))
	seen := make(map[int32]struct{}, len(rowset))
	for _, r := range rowset {
		if int(r) < 0 || int(r) >= m.GlobalRows {
			panic(fmt.Sprintf("dist: GatherRowsSparse row %d out of range [0, %d)", r, m.GlobalRows))
		}
		if _, ok := seen[r]; !ok {
			seen[r] = struct{}{}
			distinct = append(distinct, r)
		}
	}
	sort.Slice(distinct, func(a, b int) bool { return distinct[a] < distinct[b] })
	w := m.GlobalCols
	var gathered *tensor.Dense
	if p == 1 {
		gathered = tensor.NewDense(len(distinct), w)
		for i, r := range distinct {
			copy(gathered.Row(i), m.Local.Row(int(r)))
		}
	} else {
		dev.TraceBeginPhase("gather-rows-sparse")
		defer dev.TraceEndPhase()
		rlo, rhi := RowRange(src, p, dev.Rank, m.GlobalRows)
		mine := RowsInRange(distinct, rlo, rhi)
		buf := make([]float32, 0, len(mine)*w)
		for _, r := range mine {
			buf = append(buf, m.Local.Row(int(r)-rlo)...)
		}
		parts := make([][]float32, p)
		parts[root] = buf
		recv, _ := dev.AllToAllV(dev.World(), parts, nil)
		if dev.Rank != root {
			return nil
		}
		gathered = tensor.NewDense(len(distinct), w)
		cursor := make([]int, p)
		for i, r := range distinct {
			owner := ownerOf(src, p, m.GlobalRows, int(r))
			b := recv[owner]
			copy(gathered.Row(i), b[cursor[owner]*w:(cursor[owner]+1)*w])
			cursor[owner]++
		}
	}
	out := expandRows(gathered, distinct, rowset)
	dev.ChargeMem(out.Bytes())
	return out
}

// HaloExchange gathers, on every rank, an arbitrary set of global rows
// of a vertex-sliced matrix — the CSR halo exchange: need lists come
// from the local adjacency panel's remote column neighbors. Round 1
// advertises every rank's need list with a variable-volume allgather
// (EncodeRowSet wire format, side channel); round 2 has each owner
// send every requester its needed rows, deduplicated per requester,
// through the variable-volume all-to-all. The result holds the needed
// rows in need order (duplicates resolved locally).
func HaloExchange(m *Mat, need []int32) *tensor.Dense {
	dev := m.Dev
	p := dev.P()
	src := m.Layout.normalize(p)
	if src.Kind != Horizontal {
		panic(fmt.Sprintf("dist: HaloExchange needs a vertex-sliced source, have %s", src))
	}
	w := m.GlobalCols
	rlo, rhi := RowRange(src, p, dev.Rank, m.GlobalRows)
	distinct := make([]int32, 0, len(need))
	seen := make(map[int32]struct{}, len(need))
	for _, r := range need {
		if int(r) < 0 || int(r) >= m.GlobalRows {
			panic(fmt.Sprintf("dist: HaloExchange row %d out of range [0, %d)", r, m.GlobalRows))
		}
		if _, ok := seen[r]; !ok {
			seen[r] = struct{}{}
			distinct = append(distinct, r)
		}
	}
	sort.Slice(distinct, func(a, b int) bool { return distinct[a] < distinct[b] })
	if p == 1 {
		return expandRows(m.Local, nil, need)
	}
	dev.TraceBeginPhase("halo-exchange")
	defer dev.TraceEndPhase()

	// Round 1: advertise my deduplicated need list to everyone.
	dev.SetSideChannel(true)
	adverts, _ := dev.AllGatherV(dev.World(), EncodeRowSet(distinct, w), -1)
	dev.SetSideChannel(false)

	// Round 2: serve every requester the rows I own from its advert.
	parts := make([][]float32, p)
	var packBytes int64
	for s := 0; s < p; s++ {
		ids, aw, err := DecodeRowSet(adverts[s])
		if err != nil {
			panic(fmt.Sprintf("dist: halo advert from %d: %v", s, err))
		}
		if aw != w {
			panic(fmt.Sprintf("dist: halo advert from %d: width %d, matrix has %d cols", s, aw, w))
		}
		mine := RowsInRange(ids, rlo, rhi)
		buf := make([]float32, 0, len(mine)*w)
		for _, r := range mine {
			buf = append(buf, m.Local.Row(int(r)-rlo)...)
		}
		parts[s] = buf
		if s != dev.Rank {
			packBytes += int64(len(buf)) * 4
		}
	}
	dev.ChargeMem(packBytes)
	recv, _ := dev.AllToAllV(dev.World(), parts, nil)

	// Assemble: my distinct rows arrive owner-sorted; each owner packed
	// exactly RowsInRange(my distinct list, its range) in order.
	halo := tensor.NewDense(len(distinct), w)
	var mergeBytes int64
	cursor := make([]int, p)
	for i, r := range distinct {
		owner := ownerOf(src, p, m.GlobalRows, int(r))
		buf := recv[owner]
		copy(halo.Row(i), buf[cursor[owner]*w:(cursor[owner]+1)*w])
		cursor[owner]++
		if owner != dev.Rank {
			mergeBytes += int64(w) * 4
		}
	}
	dev.ChargeMem(mergeBytes)
	return expandRows(halo, distinct, need)
}

// expandRows fans a deduplicated row block back out to request order.
// distinct == nil means src is the full global matrix, indexed by row
// id directly; otherwise src holds exactly the sorted distinct rows.
func expandRows(src *tensor.Dense, distinct, need []int32) *tensor.Dense {
	out := tensor.NewDense(len(need), src.Cols)
	for i, r := range need {
		j := int(r)
		if distinct != nil {
			j = sort.Search(len(distinct), func(k int) bool { return distinct[k] >= r })
		}
		copy(out.Row(i), src.Row(j))
	}
	return out
}

// ownerOf returns the rank whose Horizontal tile holds the global row.
func ownerOf(l Layout, p, rows, row int) int {
	for s := 0; s < p; s++ {
		lo, hi := RowRange(l, p, s, rows)
		if row >= lo && row < hi {
			return s
		}
	}
	panic("dist: row owner not found")
}
