package comm

import (
	"math"
	"sync/atomic"
	"testing"

	"gnnrdm/internal/hw"
)

func world(p int) []int {
	g := make([]int, p)
	for i := range g {
		g[i] = i
	}
	return g
}

func TestBroadcast(t *testing.T) {
	f := Run(4, hw.A6000(), func(d *Device) {
		var data []float32
		if d.Rank == 1 {
			data = []float32{1, 2, 3}
		}
		got := d.Broadcast(d.World(), 1, data)
		if len(got) != 3 || got[0] != 1 || got[2] != 3 {
			t.Errorf("rank %d got %v", d.Rank, got)
		}
		// Received buffers must be private copies.
		if d.Rank != 1 {
			got[0] = 99
		}
	})
	// Volume: 3 floats to 3 receivers = 36 bytes.
	if v := f.Volume(hw.OpBroadcast); v != 36 {
		t.Fatalf("broadcast volume=%d want 36", v)
	}
	if f.Calls(hw.OpBroadcast) != 1 {
		t.Fatalf("calls=%d", f.Calls(hw.OpBroadcast))
	}
}

func TestBroadcastCopySemantics(t *testing.T) {
	// A receiver mutating its copy must not affect other receivers.
	results := make([][]float32, 3)
	Run(3, hw.A6000(), func(d *Device) {
		var data []float32
		if d.Rank == 0 {
			data = []float32{7}
		}
		got := d.Broadcast(d.World(), 0, data)
		got[0] += float32(d.Rank) // mutate private copy
		results[d.Rank] = got
	})
	if results[0][0] != 7 || results[1][0] != 8 || results[2][0] != 9 {
		t.Fatalf("copies not private: %v", results)
	}
}

func TestAllGather(t *testing.T) {
	f := Run(3, hw.A6000(), func(d *Device) {
		local := []float32{float32(d.Rank), float32(d.Rank * 10)}
		got := d.AllGather(d.World(), local)
		for i := 0; i < 3; i++ {
			if got[i][0] != float32(i) || got[i][1] != float32(i*10) {
				t.Errorf("rank %d slot %d = %v", d.Rank, i, got[i])
			}
		}
	})
	// total buffer = 3*2*4 = 24 bytes; volume = 24 * (3-1) = 48.
	if v := f.Volume(hw.OpAllGather); v != 48 {
		t.Fatalf("allgather volume=%d want 48", v)
	}
}

func TestAllReduceSum(t *testing.T) {
	Run(4, hw.A6000(), func(d *Device) {
		local := []float32{float32(d.Rank), 1}
		got := d.AllReduceSum(d.World(), local)
		if got[0] != 6 || got[1] != 4 { // 0+1+2+3, 1*4
			t.Errorf("rank %d got %v", d.Rank, got)
		}
		// Result must be private: mutate and re-reduce.
		got[0] = -1
		again := d.AllReduceSum(d.World(), []float32{1, 1})
		if again[0] != 4 {
			t.Errorf("second reduce got %v", again)
		}
	})
}

func TestAllToAll(t *testing.T) {
	f := Run(3, hw.A6000(), func(d *Device) {
		// Device r sends value 100*r+j to device j.
		parts := make([][]float32, 3)
		for j := range parts {
			parts[j] = []float32{float32(100*d.Rank + j)}
		}
		got := d.AllToAll(d.World(), parts)
		for i := 0; i < 3; i++ {
			want := float32(100*i + d.Rank)
			if got[i][0] != want {
				t.Errorf("rank %d from %d: got %v want %v", d.Rank, i, got[i][0], want)
			}
		}
	})
	// Each device sends 2 off-device floats: total = 3*2*4 = 24 bytes.
	if v := f.Volume(hw.OpAllToAll); v != 24 {
		t.Fatalf("alltoall volume=%d want 24", v)
	}
}

func TestSubgroupCollectives(t *testing.T) {
	// Two disjoint groups {0,2} and {1,3} operating concurrently.
	Run(4, hw.A6000(), func(d *Device) {
		var group []int
		if d.Rank%2 == 0 {
			group = []int{0, 2}
		} else {
			group = []int{1, 3}
		}
		got := d.AllReduceSum(group, []float32{float32(d.Rank)})
		want := float32(2) // 0+2
		if d.Rank%2 == 1 {
			want = 4 // 1+3
		}
		if got[0] != want {
			t.Errorf("rank %d got %v want %v", d.Rank, got[0], want)
		}
	})
}

func TestRepeatedCollectivesOnSameGroup(t *testing.T) {
	// Stress slot recycling: many rounds back-to-back.
	Run(4, hw.A6000(), func(d *Device) {
		for round := 0; round < 200; round++ {
			got := d.AllReduceSum(d.World(), []float32{float32(d.Rank + round)})
			want := float32(0 + 1 + 2 + 3 + 4*round)
			if got[0] != want {
				t.Errorf("round %d rank %d: got %v want %v", round, d.Rank, got[0], want)
				return
			}
		}
	})
}

func TestClockSynchronization(t *testing.T) {
	model := hw.A6000()
	f := Run(2, model, func(d *Device) {
		if d.Rank == 0 {
			d.ChargeGemm(1000, 1000, 1000) // rank 0 is slower
		}
		d.Barrier(d.World())
	})
	c0, c1 := f.Device(0).Clock(), f.Device(1).Clock()
	if math.Abs(c0-c1) > 1e-12 {
		t.Fatalf("clocks must sync at barrier: %v vs %v", c0, c1)
	}
	// Rank 1 waited for rank 0: the skew shows in rank 1's comm time.
	if f.Device(1).CommTime() <= f.Device(0).CommTime() {
		t.Fatalf("waiting device should accumulate more comm time: %v vs %v",
			f.Device(1).CommTime(), f.Device(0).CommTime())
	}
	if f.Device(0).ComputeTime() <= 0 || f.Device(1).ComputeTime() != 0 {
		t.Fatal("compute time attribution wrong")
	}
}

func TestChargeAccounting(t *testing.T) {
	model := hw.A6000()
	f := NewFabric(1, model)
	d := f.Device(0)
	d.ChargeSpMM(1000, 16)
	d.ChargeMem(4096)
	wantClock := model.SpMMTime(1000, 16) + model.MemTime(4096)
	if math.Abs(d.Clock()-wantClock) > 1e-15 {
		t.Fatalf("clock=%v want %v", d.Clock(), wantClock)
	}
	if d.CommTime() != 0 {
		t.Fatal("no comm happened")
	}
}

func TestSingletonGroupShortcuts(t *testing.T) {
	f := Run(1, hw.A6000(), func(d *Device) {
		b := d.Broadcast([]int{0}, 0, []float32{1})
		if b[0] != 1 {
			t.Error("singleton broadcast")
		}
		g := d.AllGather([]int{0}, []float32{2})
		if g[0][0] != 2 {
			t.Error("singleton allgather")
		}
		r := d.AllReduceSum([]int{0}, []float32{3})
		if r[0] != 3 {
			t.Error("singleton allreduce")
		}
		a := d.AllToAll([]int{0}, [][]float32{{4}})
		if a[0][0] != 4 {
			t.Error("singleton alltoall")
		}
		d.Barrier([]int{0})
	})
	if f.TotalVolume() != 0 {
		t.Fatalf("singleton groups must move nothing, got %d", f.TotalVolume())
	}
}

func TestVolumeScalingWithP(t *testing.T) {
	// The paper's headline property: redistribution volume is constant in
	// P, broadcast-based volume grows with P.
	n := 1024
	redistVolume := func(p int) int64 {
		f := Run(p, hw.A6000(), func(d *Device) {
			// Each device owns n/p rows and splits them into p column
			// chunks: total data crossing = (p-1)/p * n floats.
			parts := make([][]float32, p)
			for j := range parts {
				parts[j] = make([]float32, n/p/p)
			}
			d.AllToAll(d.World(), parts)
		})
		return f.Volume(hw.OpAllToAll)
	}
	bcastVolume := func(p int) int64 {
		f := Run(p, hw.A6000(), func(d *Device) {
			for r := 0; r < p; r++ {
				var data []float32
				if d.Rank == r {
					data = make([]float32, n/p)
				}
				d.Broadcast(d.World(), r, data)
			}
		})
		return f.Volume(hw.OpBroadcast)
	}
	r2, r8 := redistVolume(2), redistVolume(8)
	b2, b8 := bcastVolume(2), bcastVolume(8)
	// Redistribution: (p-1)/p*n*4 bytes: 2048 at p=2, 3584 at p=8 (<2x).
	if float64(r8) > 2*float64(r2) {
		t.Fatalf("redistribution volume grew too fast: %d -> %d", r2, r8)
	}
	// Broadcast: (p-1)*n*4 bytes: 4096 at p=2, 28672 at p=8 (7x).
	if float64(b8) < 3*float64(b2) {
		t.Fatalf("broadcast volume should grow ~(p-1): %d -> %d", b2, b8)
	}
}

func TestDeterministicClocks(t *testing.T) {
	runOnce := func() float64 {
		f := Run(4, hw.A6000(), func(d *Device) {
			for i := 0; i < 10; i++ {
				d.ChargeGemm(100+d.Rank, 50, 60)
				d.AllReduceSum(d.World(), make([]float32, 100))
				parts := make([][]float32, 4)
				for j := range parts {
					parts[j] = make([]float32, 25)
				}
				d.AllToAll(d.World(), parts)
			}
		})
		return f.MaxClock()
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("clocks must be deterministic: %v vs %v", a, b)
	}
}

func TestGroupValidation(t *testing.T) {
	f := NewFabric(2, hw.A6000())
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("unsorted", func() { f.Device(0).Barrier([]int{1, 0}) })
	expectPanic("duplicate", func() { f.Device(0).Barrier([]int{0, 0}) })
	expectPanic("empty", func() { f.Device(0).Barrier(nil) })
	expectPanic("not a member", func() { f.Device(0).AllReduceSum([]int{1, 2}, []float32{1}) })
	expectPanic("alltoall parts", func() { f.Device(0).AllToAll([]int{0, 1}, [][]float32{{1}}) })
}

func TestConcurrentGroupsNoInterference(t *testing.T) {
	// Odd and even subgroups run different numbers of collectives; a
	// trailing world barrier must still work.
	var oddSum atomic.Int64
	Run(8, hw.A6000(), func(d *Device) {
		if d.Rank%2 == 1 {
			g := []int{1, 3, 5, 7}
			for i := 0; i < 5; i++ {
				r := d.AllReduceSum(g, []float32{1})
				oddSum.Add(int64(r[0]))
			}
		}
		d.Barrier(world(8))
	})
	if oddSum.Load() != 4*5*4 { // 4 ranks * 5 rounds * sum 4
		t.Fatalf("oddSum=%d", oddSum.Load())
	}
}

func TestReduceScatterSum(t *testing.T) {
	// 3 devices, shards of sizes 2,1,1.
	counts := []int{2, 1, 1}
	f := Run(3, hw.A6000(), func(d *Device) {
		local := []float32{float32(d.Rank), 1, 2, float32(10 * d.Rank)}
		got := d.ReduceScatterSum(d.World(), local, counts)
		switch d.Rank {
		case 0:
			if len(got) != 2 || got[0] != 3 || got[1] != 3 {
				t.Errorf("rank0 got %v", got)
			}
		case 1:
			if len(got) != 1 || got[0] != 6 {
				t.Errorf("rank1 got %v", got)
			}
		case 2:
			if len(got) != 1 || got[0] != 30 {
				t.Errorf("rank2 got %v", got)
			}
		}
	})
	// Ring reduce-scatter volume: (n-1)*B = 2*16 bytes.
	if v := f.Volume(hw.OpReduceScatter); v != 32 {
		t.Fatalf("reducescatter volume=%d want 32", v)
	}
}

func TestReduceScatterValidation(t *testing.T) {
	f := NewFabric(2, hw.A6000())
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("counts len", func() {
		f.Device(0).ReduceScatterSum([]int{0, 1}, []float32{1}, []int{1})
	})
	expectPanic("counts sum", func() {
		f.Device(0).ReduceScatterSum([]int{0, 1}, []float32{1, 2, 3}, []int{1, 1})
	})
}
