package comm

import (
	"testing"

	"gnnrdm/internal/hw"
	"gnnrdm/internal/trace"
)

func TestResetStats(t *testing.T) {
	f := Run(2, hw.A6000(), func(d *Device) {
		d.ChargeGemm(8, 8, 8)
		d.AllReduceSum(d.World(), []float32{1, 2})
	})
	if f.TotalVolume() == 0 || f.Calls(hw.OpAllReduce) != 1 {
		t.Fatalf("volume/calls not accumulated: vol=%d calls=%d",
			f.TotalVolume(), f.Calls(hw.OpAllReduce))
	}
	d := f.Device(0)
	if d.Clock() == 0 || d.CommTime() == 0 || d.ComputeTime() == 0 {
		t.Fatalf("device stats not accumulated: %v %v %v",
			d.Clock(), d.CommTime(), d.ComputeTime())
	}
	f.ResetStats()
	if f.TotalVolume() != 0 || f.Calls(hw.OpAllReduce) != 0 {
		t.Errorf("ResetStats left volume=%d calls=%d", f.TotalVolume(), f.Calls(hw.OpAllReduce))
	}
	if f.MaxClock() != 0 {
		t.Errorf("ResetStats left MaxClock=%v", f.MaxClock())
	}
	for r := 0; r < 2; r++ {
		d := f.Device(r)
		if d.Clock() != 0 || d.CommTime() != 0 || d.ComputeTime() != 0 {
			t.Errorf("rank %d stats not reset: %v %v %v",
				r, d.Clock(), d.CommTime(), d.ComputeTime())
		}
	}
	// The fabric stays usable after a reset.
	f.Run(func(d *Device) { d.Barrier(d.World()) })
	if f.MaxClock() == 0 {
		t.Errorf("fabric unusable after ResetStats")
	}
}

func TestDisabledTracerZeroAlloc(t *testing.T) {
	f := NewFabric(1, hw.A6000())
	d := f.Device(0)
	allocs := testing.AllocsPerRun(100, func() {
		d.ChargeGemm(16, 16, 16)
		d.ChargeSpMM(1000, 16)
		d.ChargeMem(4096)
		d.TraceSetEpoch(1)
		d.TraceSetLayer(1)
		d.TraceSetDir("fwd")
		d.TraceBeginPhase("epoch")
		d.TraceEndPhase()
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocates %.1f per op batch, want 0", allocs)
	}
}

func TestCollectiveEventsMatchDeviceCounters(t *testing.T) {
	tr := trace.NewTracer(0)
	f := NewFabric(4, hw.A6000())
	f.SetTracer(tr, "counters")
	f.Run(func(d *Device) {
		d.ChargeGemm(32, 16, 8)
		d.ChargeSpMM(500, 16)
		d.ChargeMem(1 << 12)
		d.AllReduceSum(d.World(), make([]float32, 64))
		if d.Rank < 2 {
			d.AllGather([]int{0, 1}, make([]float32, 32))
		} else {
			d.AllGather([]int{2, 3}, make([]float32, 32))
		}
		parts := make([][]float32, d.P())
		for q := range parts {
			parts[q] = make([]float32, 8)
		}
		d.AllToAll(d.World(), parts)
		d.Barrier(d.World())
	})
	sum := trace.Summarize(tr)
	if len(sum.Sessions) != 1 {
		t.Fatalf("got %d sessions", len(sum.Sessions))
	}
	ss := sum.Sessions[0]
	const tol = 1e-12
	for r := 0; r < 4; r++ {
		d := f.Device(r)
		rt := ss.Ranks[r]
		if diff := rt.CommTime - d.CommTime(); diff > tol || diff < -tol {
			t.Errorf("rank %d comm: trace %v vs device %v", r, rt.CommTime, d.CommTime())
		}
		if diff := rt.ComputeTime - d.ComputeTime(); diff > tol || diff < -tol {
			t.Errorf("rank %d compute: trace %v vs device %v", r, rt.ComputeTime, d.ComputeTime())
		}
		if rt.Dropped != 0 {
			t.Errorf("rank %d dropped %d events", r, rt.Dropped)
		}
	}
	if ss.MaxClock != f.MaxClock() {
		t.Errorf("trace makespan %v vs fabric MaxClock %v", ss.MaxClock, f.MaxClock())
	}
	// Every participant's event carries the occurrence's metered volume;
	// deduplicating by (op, group, seq) reproduces the fabric's volume
	// counters exactly.
	type occ struct {
		op, group string
		seq       uint64
	}
	seen := map[occ]bool{}
	var traced int64
	sess := tr.Sessions()[0]
	for r := 0; r < 4; r++ {
		for _, ev := range sess.Events(r) {
			if ev.Class != trace.ClassCollective {
				continue
			}
			k := occ{op: ev.Op, group: ev.Group, seq: ev.Seq}
			if seen[k] {
				continue
			}
			seen[k] = true
			traced += ev.Bytes
		}
	}
	if traced != f.TotalVolume() {
		t.Errorf("traced collective bytes %d vs fabric volume %d", traced, f.TotalVolume())
	}
}
