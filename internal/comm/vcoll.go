// Variable-volume collectives — the fabric layer of the sparsity-aware
// exchange subsystem (DESIGN.md §4g). TryAllToAllV and TryAllGatherV
// move ragged per-rank buffers whose sizes are advertised explicitly:
// senders declare per-destination (or per-group) element counts, the
// counts are validated against the actual buffers before the
// rendezvous, and receivers get the per-source counts back alongside
// the data. Pricing, per-tier metering, α–β clock advancement, and
// deadline/fault semantics are exactly the dense collectives' — both
// run through the same Device.collective rendezvous and comm.Meter
// seam — plus a per-rank injection census (Fabric.RankSent) that dense
// rounds do not keep.
//
// The V-collectives always run the single fused rendezvous (virtual
// topology routing); the explicitly staged topo.Hier schedules apply
// to the dense paths only.
package comm

import (
	"fmt"

	"gnnrdm/internal/hw"
)

// TryAllToAllV performs a personalized variable-volume exchange:
// parts[j] is sent to group[j], and counts[j] — the advertised element
// count of parts[j] — must equal len(parts[j]) (ErrCountMismatch
// otherwise, rejected before the rendezvous). counts == nil derives
// the counts from the buffers. The returned slices hold the buffer and
// element count received from each group member (own part passed
// through without copy). Each member's injected cross-pair bytes are
// added to its Fabric.RankSent census; time, metering, and fault
// semantics match TryAllToAll.
func (d *Device) TryAllToAllV(group []int, parts [][]float32, counts []int) ([][]float32, []int, error) {
	const op = "alltoall"
	myIdx, err := d.groupPos(op, group)
	if err != nil {
		return nil, nil, err
	}
	if parts != nil && len(parts) != len(group) {
		return nil, nil, &CollectiveError{Op: op, Rank: d.Rank,
			Err: fmt.Errorf("%d parts for %d-member group: %w", len(parts), len(group), ErrCountMismatch)}
	}
	if counts != nil {
		if len(counts) != len(group) {
			return nil, nil, &CollectiveError{Op: op, Rank: d.Rank,
				Err: fmt.Errorf("%d counts for %d-member group: %w", len(counts), len(group), ErrCountMismatch)}
		}
		for j, c := range counts {
			if parts != nil && c != len(parts[j]) {
				return nil, nil, &CollectiveError{Op: op, Rank: d.Rank,
					Err: fmt.Errorf("advertised count %d for part %d of %d elements: %w",
						c, j, len(parts[j]), ErrCountMismatch)}
			}
		}
	}
	if len(group) == 1 {
		if parts == nil {
			return nil, nil, &CollectiveError{Op: op, Rank: d.Rank,
				Err: fmt.Errorf("parts: %w", ErrNilBuffer)}
		}
		return [][]float32{parts[0]}, []int{len(parts[0])}, nil
	}
	out := make([][]float32, len(group))
	recvCounts := make([]int, len(group))
	f := d.F
	var contribution any = parts
	if parts == nil {
		contribution = collErr{fmt.Errorf("parts on rank %d: %w", d.Rank, ErrNilBuffer)}
	}
	cerr := d.collective(op, group, contribution,
		func(slots []any, clocks []float64) (float64, any, Volume, error) {
			var maxInject, total int64
			for i, s := range slots {
				ps := s.([][]float32)
				var inject int64
				for j, pt := range ps {
					if i == j {
						continue
					}
					inject += int64(len(pt)) * 4
				}
				total += inject
				if inject > maxInject {
					maxInject = inject
				}
				f.rankSent[group[i]].Add(inject)
			}
			t, vol := f.MeterFor(group).AllToAll(group, func(i, j int) int64 {
				return int64(len(slots[i].([][]float32)[j])) * 4
			}, maxInject, total)
			f.addVolume(hw.OpAllToAll, vol, d.side)
			return maxClock(clocks) + t, nil, vol, nil
		},
		func(slots []any, _ any) {
			for i, s := range slots {
				ps := s.([][]float32)
				src := ps[myIdx]
				recvCounts[i] = len(src)
				if i == myIdx {
					out[i] = src
					continue
				}
				out[i] = append(make([]float32, 0, len(src)), src...)
			}
		})
	if cerr != nil {
		return nil, nil, cerr
	}
	return out, recvCounts, nil
}

// AllToAllV is TryAllToAllV panicking on failure.
func (d *Device) AllToAllV(group []int, parts [][]float32, counts []int) ([][]float32, []int) {
	out, recv, err := d.TryAllToAllV(group, parts, counts)
	if err != nil {
		panic(err)
	}
	return out, recv
}

// TryAllGatherV gathers every member's variable-length buffer; the
// result is indexed by group position, alongside the per-position
// element counts. count advertises the local buffer's length and must
// equal len(local) (ErrCountMismatch otherwise); pass count < 0 to
// derive it. Each member's chunk bytes, replicated to every peer, are
// added to its Fabric.RankSent census; time, metering, and fault
// semantics match TryAllGather.
func (d *Device) TryAllGatherV(group []int, local []float32, count int) ([][]float32, []int, error) {
	const op = "allgather"
	myIdx, err := d.groupPos(op, group)
	if err != nil {
		return nil, nil, err
	}
	if count >= 0 && local != nil && count != len(local) {
		return nil, nil, &CollectiveError{Op: op, Rank: d.Rank,
			Err: fmt.Errorf("advertised count %d for a %d-element buffer: %w",
				count, len(local), ErrCountMismatch)}
	}
	if len(group) == 1 {
		if local == nil {
			return nil, nil, &CollectiveError{Op: op, Rank: d.Rank,
				Err: fmt.Errorf("local buffer: %w", ErrNilBuffer)}
		}
		return [][]float32{local}, []int{len(local)}, nil
	}
	out := make([][]float32, len(group))
	recvCounts := make([]int, len(group))
	f := d.F
	var contribution any = local
	if local == nil {
		contribution = collErr{fmt.Errorf("local buffer on rank %d: %w", d.Rank, ErrNilBuffer)}
	}
	cerr := d.collective(op, group, contribution,
		func(slots []any, clocks []float64) (float64, any, Volume, error) {
			chunks := make([]int64, len(slots))
			for i, s := range slots {
				chunks[i] = int64(len(s.([]float32))) * 4
				f.rankSent[group[i]].Add(chunks[i] * int64(len(group)-1))
			}
			t, vol := f.MeterFor(group).AllGather(group, chunks)
			f.addVolume(hw.OpAllGather, vol, d.side)
			return maxClock(clocks) + t, nil, vol, nil
		},
		func(slots []any, _ any) {
			for i, s := range slots {
				src := s.([]float32)
				recvCounts[i] = len(src)
				if i == myIdx {
					out[i] = local
					continue
				}
				out[i] = append(make([]float32, 0, len(src)), src...)
			}
		})
	if cerr != nil {
		return nil, nil, cerr
	}
	return out, recvCounts, nil
}

// AllGatherV is TryAllGatherV panicking on failure.
func (d *Device) AllGatherV(group []int, local []float32, count int) ([][]float32, []int) {
	out, recv, err := d.TryAllGatherV(group, local, count)
	if err != nil {
		panic(err)
	}
	return out, recv
}
