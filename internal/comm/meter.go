// The metering/topology-routing seam. A Meter computes the modelled
// time and the metered Volume of one collective round from its byte
// census alone — the exact code the live fabric's rendezvous
// finalizers run, extracted so a payload-free executor (internal/sim)
// prices and meters rounds identically without materializing buffers.
//
// Routing: a Meter either carries a topology (collectives price and
// split bytes per link tier through internal/topo's algorithm library)
// or a flat hardware model (the pre-topology closed forms). The fabric
// builds one per round via MeterFor, which folds in per-rank link
// fault degradation; the sim engine builds one per run from its clean
// model and topology.
package comm

import (
	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
)

// Meter prices and meters collective rounds for one routing context.
// Exactly one of the two routes is active: Topo != nil routes through
// the topology-aware algorithm library with HW as the base link model;
// Topo == nil uses HW's flat CollectiveTime formulas (metering every
// byte on tier 0, i.e. Volume.Tier1 == 0).
type Meter struct {
	HW   *hw.Model
	Topo *topo.Topology
	// Algs is the per-kind algorithm selection (zero value = topo.Auto,
	// the autotuner). Only consulted when Topo is attached.
	Algs [hw.NumCollectiveKinds]topo.Algorithm
}

// MeterFor returns the meter a collective over group runs under: the
// fabric's topology (degraded by the participants' worst link-fault
// multipliers) when one is attached, else the flat link model for the
// group (same degradation rule). This is the routing decision every
// rendezvous finalizer makes, exposed as a value.
func (f *Fabric) MeterFor(group []int) Meter {
	if tp := f.topoFor(group); tp != nil {
		return Meter{HW: f.HW, Topo: tp, Algs: f.algs}
	}
	return Meter{HW: f.linkModel(group)}
}

// Broadcast prices root sending bytes to every member. rootIdx is the
// root's group position.
func (m Meter) Broadcast(group []int, rootIdx int, bytes int64) (float64, Volume) {
	if m.Topo != nil {
		c := m.Topo.Broadcast(m.HW, group, rootIdx, bytes)
		return c.Time, volumeOf(c)
	}
	t := m.HW.CollectiveTime(hw.OpBroadcast, len(group), bytes)
	return t, Volume{Bytes: bytes * int64(len(group)-1)}
}

// AllGather prices gathering per-position chunks (chunks[i] bytes from
// group position i) onto every member.
func (m Meter) AllGather(group []int, chunks []int64) (float64, Volume) {
	if m.Topo != nil {
		_, c := m.Topo.AllGather(m.HW, m.Algs[hw.OpAllGather], group, chunks)
		return c.Time, volumeOf(c)
	}
	var total int64
	for _, b := range chunks {
		total += b
	}
	t := m.HW.CollectiveTime(hw.OpAllGather, len(group), total)
	return t, Volume{Bytes: total * int64(len(group)-1)}
}

// AllReduce prices an element-wise sum of bytes-sized buffers onto
// every member.
func (m Meter) AllReduce(group []int, bytes int64) (float64, Volume) {
	if m.Topo != nil {
		_, c := m.Topo.AllReduce(m.HW, m.Algs[hw.OpAllReduce], group, bytes)
		return c.Time, volumeOf(c)
	}
	t := m.HW.CollectiveTime(hw.OpAllReduce, len(group), bytes)
	return t, Volume{Bytes: 2 * bytes * int64(len(group)-1)}
}

// AllToAll prices a personalized exchange. pair(i, j) is the bytes
// group position i sends to position j (consulted only on the topology
// route); maxInject and total are the busiest injector's and the
// summed cross-pair bytes (self-pairs excluded), which the flat route
// prices and meters from.
func (m Meter) AllToAll(group []int, pair func(i, j int) int64, maxInject, total int64) (float64, Volume) {
	if m.Topo != nil {
		_, c := m.Topo.AllToAll(m.HW, m.Algs[hw.OpAllToAll], group, pair)
		return c.Time, volumeOf(c)
	}
	t := m.HW.CollectiveTime(hw.OpAllToAll, len(group), maxInject)
	return t, Volume{Bytes: total}
}

// ReduceScatter prices a sum + scatter leaving chunkBytes[i] bytes on
// group position i; totalBytes is the full buffer size (the sum of
// chunkBytes).
func (m Meter) ReduceScatter(group []int, chunkBytes []int64, totalBytes int64) (float64, Volume) {
	if m.Topo != nil {
		_, c := m.Topo.ReduceScatter(m.HW, m.Algs[hw.OpReduceScatter], group, chunkBytes)
		return c.Time, volumeOf(c)
	}
	t := m.HW.CollectiveTime(hw.OpReduceScatter, len(group), totalBytes)
	return t, Volume{Bytes: totalBytes * int64(len(group)-1)}
}

// Barrier prices a latency-only group synchronization (never metered).
func (m Meter) Barrier(group []int) float64 {
	if m.Topo != nil {
		return m.Topo.Barrier(m.HW, group)
	}
	return m.HW.LinkLatency
}
