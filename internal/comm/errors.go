package comm

import (
	"errors"
	"fmt"
)

// Sentinel causes for collective failures. Wrap-match with errors.Is.
var (
	// ErrNilBuffer reports a nil data buffer passed to a collective.
	// (Zero-length non-nil buffers are valid.)
	ErrNilBuffer = errors.New("nil buffer")
	// ErrLengthMismatch reports participants disagreeing on a buffer
	// length that the collective requires to be uniform.
	ErrLengthMismatch = errors.New("buffer length mismatch across ranks")
	// ErrCountMismatch reports per-member part or count slices whose
	// shape does not match the group.
	ErrCountMismatch = errors.New("part/count mismatch")
	// ErrBadGroup reports an empty, unsorted, or duplicate-bearing group,
	// or a root/rank outside the group.
	ErrBadGroup = errors.New("malformed group")
)

// CollectiveError describes a failed collective: the operation, the rank
// reporting it, and the underlying cause (wrapping one of the sentinels
// above).
//
// Failure delivery is cooperative: a rank that detects a data problem
// with its own arguments still joins the rendezvous, depositing the
// error instead of its buffer, and the finalizer reports the same cause
// to every participant. SPMD callers therefore fail in lockstep with a
// clear error instead of deadlocking the fabric (or panicking on one
// rank while the rest wait forever).
//
// Structural misuse that is necessarily identical on every rank —
// malformed groups, a caller outside the group, part/count slices of the
// wrong shape — is rejected before the rendezvous, so it surfaces
// immediately even from a single mis-behaving caller.
type CollectiveError struct {
	Op   string // collective name ("allreduce", "alltoall", ...)
	Rank int    // device reporting the failure
	Err  error  // underlying cause
}

func (e *CollectiveError) Error() string {
	return fmt.Sprintf("comm: %s on rank %d: %v", e.Op, e.Rank, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *CollectiveError) Unwrap() error { return e.Err }

// collErr is a rendezvous contribution marking a locally-detected error.
// Depositing it (rather than bailing before the rendezvous) keeps every
// participant moving, so per-rank data errors never become deadlocks.
type collErr struct{ err error }

// slotErr returns the first deposited error in group-position order
// (deterministic across participants), or nil.
func slotErr(slots []any) error {
	for _, s := range slots {
		if ce, ok := s.(collErr); ok {
			return ce.err
		}
	}
	return nil
}
