package comm

import (
	"errors"
	"fmt"
)

// Sentinel causes for collective failures. Wrap-match with errors.Is.
var (
	// ErrNilBuffer reports a nil data buffer passed to a collective.
	// (Zero-length non-nil buffers are valid.)
	ErrNilBuffer = errors.New("nil buffer")
	// ErrLengthMismatch reports participants disagreeing on a buffer
	// length that the collective requires to be uniform.
	ErrLengthMismatch = errors.New("buffer length mismatch across ranks")
	// ErrCountMismatch reports per-member part or count slices whose
	// shape does not match the group.
	ErrCountMismatch = errors.New("part/count mismatch")
	// ErrBadGroup reports an empty, unsorted, or duplicate-bearing group,
	// or a root/rank outside the group.
	ErrBadGroup = errors.New("malformed group")
)

// Fault sentinels. Unlike the data-error sentinels above these describe
// runtime faults of the (simulated) machine, not caller mistakes, and
// they surface wrapped in *FaultError rather than *CollectiveError.
var (
	// ErrPeerDead reports a collective abandoned because a group member
	// crashed (or exited Run) before completing the rendezvous. Every
	// surviving participant receives it after being charged the fabric's
	// collective deadline.
	ErrPeerDead = errors.New("peer dead")
	// ErrTransient reports a transient collective failure injected by a
	// fault hook. Transient rounds are retried under the fabric's
	// RetryPolicy with backoff charged to the simulated clock.
	ErrTransient = errors.New("transient fault")
	// ErrCorrupt reports a payload checksum mismatch detected by the CRC
	// side-channel (Fabric.EnableCRC). Corrupt rounds are retried like
	// transient ones: the reference model is an on-the-wire flip, so the
	// retransmission is expected to go through clean.
	ErrCorrupt = errors.New("payload corrupt")
)

// FaultError describes a collective that failed because of a machine
// fault: a dead peer, an exhausted retry budget on a transient fault, or
// an uncorrectable corrupt payload. It is delivered to every surviving
// participant of the round (wrapping the identical cause), so SPMD code
// can cooperatively abort — the elastic driver in internal/core recovers
// these and triggers checkpoint rollback + world shrink.
type FaultError struct {
	Op   string // collective name ("allreduce", "alltoall", ...)
	Rank int    // device reporting the failure
	Err  error  // cause, wrapping ErrPeerDead / ErrTransient / ErrCorrupt
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("comm: fault during %s on rank %d: %v", e.Op, e.Rank, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *FaultError) Unwrap() error { return e.Err }

// Killed is the panic value a fault injector uses to crash a device at a
// scheduled point. Fabric.Run recovers it and marks the device dead —
// waking every rendezvous the victim would have joined with ErrPeerDead —
// without re-panicking, since a scheduled crash is the experiment, not a
// bug. Any other panic value is re-raised by Run after all devices stop.
type Killed struct {
	Rank   int
	Reason string
}

func (k Killed) String() string {
	return fmt.Sprintf("rank %d killed: %s", k.Rank, k.Reason)
}

// IsFaultPanic reports whether a recovered panic value is fault-class:
// either a Killed crash marker or an error whose chain contains a
// *FaultError. Elastic drivers use it to separate scheduled failures
// (recover and re-form the world) from genuine bugs (re-panic).
func IsFaultPanic(r any) bool {
	if _, ok := r.(Killed); ok {
		return true
	}
	if err, ok := r.(error); ok {
		var fe *FaultError
		return errors.As(err, &fe)
	}
	return false
}

// CollectiveError describes a failed collective: the operation, the rank
// reporting it, and the underlying cause (wrapping one of the sentinels
// above).
//
// Failure delivery is cooperative: a rank that detects a data problem
// with its own arguments still joins the rendezvous, depositing the
// error instead of its buffer, and the finalizer reports the same cause
// to every participant. SPMD callers therefore fail in lockstep with a
// clear error instead of deadlocking the fabric (or panicking on one
// rank while the rest wait forever).
//
// Structural misuse that is necessarily identical on every rank —
// malformed groups, a caller outside the group, part/count slices of the
// wrong shape — is rejected before the rendezvous, so it surfaces
// immediately even from a single mis-behaving caller.
type CollectiveError struct {
	Op   string // collective name ("allreduce", "alltoall", ...)
	Rank int    // device reporting the failure
	Err  error  // underlying cause
}

func (e *CollectiveError) Error() string {
	return fmt.Sprintf("comm: %s on rank %d: %v", e.Op, e.Rank, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *CollectiveError) Unwrap() error { return e.Err }

// collErr is a rendezvous contribution marking a locally-detected error.
// Depositing it (rather than bailing before the rendezvous) keeps every
// participant moving, so per-rank data errors never become deadlocks.
type collErr struct{ err error }

// slotErr returns the first deposited error in group-position order
// (deterministic across participants), or nil.
func slotErr(slots []any) error {
	for _, s := range slots {
		if ce, ok := s.(collErr); ok {
			return ce.err
		}
	}
	return nil
}
