// Buffer pooling for the fabric hot path. Collective finalizers need a
// round-scoped reduction scratch (the element-wise sum every member
// copies its result from); allocating it per round dominated the
// allocation profile of allreduce-heavy training. The scratch now
// comes from a sync.Pool and is released when the round drains — the
// last reader of groupComm.exchange returns it before recycling the
// slots, so no participant can still be copying from it.
//
// Pooled buffers are zeroed on checkout rather than copy-initialized:
// the finalizers' sum loops add every deposit into a zero buffer,
// which keeps the float arithmetic (and therefore the bit-exact
// differential suites) identical to the pre-pooling `make` path.
package comm

import "sync"

// scratch is a pooled float32 buffer used as a rendezvous round's aux
// value. The distinct type is what lets exchange's drain recognize and
// release pooled aux values while leaving caller-owned ones alone.
type scratch []float32

var scratchPool sync.Pool // holds *[]float32

// getScratch returns a zeroed length-n pooled buffer.
func getScratch(n int) scratch {
	if p, ok := scratchPool.Get().(*[]float32); ok && cap(*p) >= n {
		s := (*p)[:n]
		clear(s)
		return s
	}
	return make([]float32, n)
}

// putScratch releases a buffer obtained from getScratch.
func putScratch(s scratch) {
	buf := []float32(s)
	scratchPool.Put(&buf)
}
