package comm

import (
	"errors"
	"testing"

	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
)

// ragged parts for rank r in a P-rank world: r sends r+j+1 elements to
// rank j (self part included but never metered).
func raggedParts(r, p int) ([][]float32, []int) {
	parts := make([][]float32, p)
	counts := make([]int, p)
	for j := range parts {
		n := r + j + 1
		buf := make([]float32, n)
		for k := range buf {
			buf[k] = float32(100*r + 10*j + k)
		}
		parts[j] = buf
		counts[j] = n
	}
	return parts, counts
}

func TestAllToAllVDataAndCounts(t *testing.T) {
	const p = 4
	f := NewFabric(p, hw.A6000())
	f.Run(func(d *Device) {
		parts, counts := raggedParts(d.Rank, p)
		out, recv, err := d.TryAllToAllV(d.World(), parts, counts)
		if err != nil {
			t.Errorf("rank %d: %v", d.Rank, err)
			return
		}
		for i := 0; i < p; i++ {
			want := i + d.Rank + 1 // what rank i sends to me
			if recv[i] != want || len(out[i]) != want {
				t.Errorf("rank %d: recv[%d]=%d len=%d, want %d", d.Rank, i, recv[i], len(out[i]), want)
				return
			}
			for k, v := range out[i] {
				if v != float32(100*i+10*d.Rank+k) {
					t.Errorf("rank %d: out[%d][%d]=%v", d.Rank, i, k, v)
					return
				}
			}
		}
	})
	// Conservation: per-rank injection census sums to the metered volume
	// on a flat fabric, and matches each rank's cross-pair bytes.
	var sum int64
	for r := 0; r < p; r++ {
		var inj int64
		for j := 0; j < p; j++ {
			if j != r {
				inj += int64(r+j+1) * 4
			}
		}
		if got := f.RankSent(r); got != inj {
			t.Fatalf("rank %d sent census %d, want %d", r, got, inj)
		}
		sum += inj
	}
	if got := f.Volume(hw.OpAllToAll); got != sum {
		t.Fatalf("metered alltoall volume %d, rank census sums to %d", got, sum)
	}
}

func TestAllGatherVDataCountsAndCensus(t *testing.T) {
	const p = 4
	f := NewFabric(p, hw.A6000())
	f.Run(func(d *Device) {
		local := make([]float32, d.Rank+1)
		for k := range local {
			local[k] = float32(10*d.Rank + k)
		}
		out, recv, err := d.TryAllGatherV(d.World(), local, len(local))
		if err != nil {
			t.Errorf("rank %d: %v", d.Rank, err)
			return
		}
		for i := 0; i < p; i++ {
			if recv[i] != i+1 || len(out[i]) != i+1 {
				t.Errorf("rank %d: recv[%d]=%d len=%d, want %d", d.Rank, i, recv[i], len(out[i]), i+1)
				return
			}
			for k, v := range out[i] {
				if v != float32(10*i+k) {
					t.Errorf("rank %d: out[%d][%d]=%v", d.Rank, i, k, v)
					return
				}
			}
		}
	})
	var sum, want int64
	for r := 0; r < p; r++ {
		inj := int64(r+1) * 4 * int64(p-1)
		if got := f.RankSent(r); got != inj {
			t.Fatalf("rank %d sent census %d, want %d", r, got, inj)
		}
		sum += inj
		want += int64(r+1) * 4
	}
	if got := f.Volume(hw.OpAllGather); got != want*int64(p-1) {
		t.Fatalf("metered allgather volume %d, want %d", got, want*int64(p-1))
	}
	if got := f.Volume(hw.OpAllGather); got != sum {
		t.Fatalf("metered allgather volume %d, rank census sums to %d", got, sum)
	}
}

// TestVCollectivesMatchDenseMeters pins the V-paths to the dense
// collectives: the same buffers moved through TryAllToAll /
// TryAllGather must produce identical volumes, call counts, and clocks
// — the V-variants add count validation and the rank census, never a
// different price.
func TestVCollectivesMatchDenseMeters(t *testing.T) {
	const p = 4
	run := func(v bool) (*Fabric, float64) {
		f := NewFabric(p, hw.A6000())
		f.Run(func(d *Device) {
			parts, counts := raggedParts(d.Rank, p)
			local := parts[0]
			if v {
				d.AllToAllV(d.World(), parts, counts)
				d.AllGatherV(d.World(), local, len(local))
			} else {
				d.AllToAll(d.World(), parts)
				d.AllGather(d.World(), local)
			}
		})
		return f, f.MaxClock()
	}
	fv, cv := run(true)
	fd, cd := run(false)
	if cv != cd {
		t.Fatalf("V clock %v != dense clock %v", cv, cd)
	}
	for _, k := range []hw.CollectiveKind{hw.OpAllToAll, hw.OpAllGather} {
		if fv.Volume(k) != fd.Volume(k) || fv.Calls(k) != fd.Calls(k) {
			t.Fatalf("kind %v: V volume/calls %d/%d != dense %d/%d",
				k, fv.Volume(k), fv.Calls(k), fd.Volume(k), fd.Calls(k))
		}
	}
}

// TestVCollectivesTopoTiers runs the V-paths on a hierarchical topology
// and checks the tier split is populated and consistent, and that the
// rank census is routing-independent (equal to the flat run's).
func TestVCollectivesTopoTiers(t *testing.T) {
	const p = 8
	spec, err := topo.ParseSpec("4x2:nvlink,ib")
	if err != nil {
		t.Fatal(err)
	}
	run := func(hier bool) *Fabric {
		f := NewFabric(p, hw.A6000())
		if hier {
			f.SetTopology(spec.MustTopology(p))
		}
		f.Run(func(d *Device) {
			parts, counts := raggedParts(d.Rank, p)
			d.AllToAllV(d.World(), parts, counts)
		})
		return f
	}
	fh, ff := run(true), run(false)
	if fh.TierVolume(hw.OpAllToAll, topo.TierInter) == 0 {
		t.Fatal("hierarchical alltoallv moved no inter-node bytes")
	}
	sum := fh.TierVolume(hw.OpAllToAll, topo.TierIntra) + fh.TierVolume(hw.OpAllToAll, topo.TierInter)
	if sum != fh.Volume(hw.OpAllToAll) {
		t.Fatalf("tier split %d != volume %d", sum, fh.Volume(hw.OpAllToAll))
	}
	for r := 0; r < p; r++ {
		if fh.RankSent(r) != ff.RankSent(r) {
			t.Fatalf("rank %d census differs across routings: hier %d, flat %d",
				r, fh.RankSent(r), ff.RankSent(r))
		}
	}
}

func TestAllToAllVCountMismatch(t *testing.T) {
	const p = 2
	f := NewFabric(p, hw.A6000())
	f.Run(func(d *Device) {
		parts, counts := raggedParts(d.Rank, p)
		counts[1]++ // advertise a lie
		_, _, err := d.TryAllToAllV(d.World(), parts, counts)
		if !errors.Is(err, ErrCountMismatch) {
			t.Errorf("rank %d: got %v, want ErrCountMismatch", d.Rank, err)
		}
	})
	if f.Calls(hw.OpAllToAll) != 0 {
		t.Fatal("rejected round was metered")
	}
}

func TestAllGatherVCountMismatch(t *testing.T) {
	f := NewFabric(1, hw.A6000())
	f.Run(func(d *Device) {
		_, _, err := d.TryAllGatherV(d.World(), make([]float32, 3), 4)
		if !errors.Is(err, ErrCountMismatch) {
			t.Errorf("got %v, want ErrCountMismatch", err)
		}
	})
}

// TestAllToAllVNilPartsCooperative: a nil parts slice is delivered
// cooperatively to every member, exactly like the dense path.
func TestAllToAllVNilPartsCooperative(t *testing.T) {
	const p = 2
	f := NewFabric(p, hw.A6000())
	f.Run(func(d *Device) {
		var parts [][]float32
		var counts []int
		if d.Rank != 0 {
			parts, counts = raggedParts(d.Rank, p)
		}
		_, _, err := d.TryAllToAllV(d.World(), parts, counts)
		if !errors.Is(err, ErrNilBuffer) {
			t.Errorf("rank %d: got %v, want ErrNilBuffer", d.Rank, err)
		}
	})
}

// TestAllToAllVPeerDead: deadline/fault semantics match the dense
// collectives — a dead peer surfaces as a FaultError wrapping
// ErrPeerDead on every survivor, with the collective deadline charged.
func TestAllToAllVPeerDead(t *testing.T) {
	const p = 2
	f := NewFabric(p, hw.A6000())
	f.Run(func(d *Device) {
		if d.Rank == 1 {
			return // exits immediately: departed rank
		}
		parts, counts := raggedParts(d.Rank, p)
		_, _, err := d.TryAllToAllV(d.World(), parts, counts)
		if !errors.Is(err, ErrPeerDead) {
			t.Errorf("rank %d: got %v, want ErrPeerDead", d.Rank, err)
		}
		var fe *FaultError
		if !errors.As(err, &fe) {
			t.Errorf("rank %d: error %v is not a *FaultError", d.Rank, err)
		}
		if d.Clock() < DefaultCollectiveDeadline {
			t.Errorf("rank %d: clock %v < deadline charge", d.Rank, d.Clock())
		}
	})
}
