package comm

import (
	"math"
	"testing"

	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
)

func spec(t *testing.T, s string, p int) *topo.Topology {
	t.Helper()
	sp, err := topo.ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return sp.MustTopology(p)
}

// runMixed drives one representative collective of every kind on a
// world-sized group and returns the fabric for meter inspection.
func runMixed(p int, model *hw.Model, tp *topo.Topology) *Fabric {
	f := NewFabric(p, model)
	f.SetTopology(tp)
	f.Run(func(d *Device) {
		w := d.World()
		buf := make([]float32, 64)
		for i := range buf {
			buf[i] = float32(d.Rank + i)
		}
		d.AllReduceSum(w, buf)
		d.AllGather(w, buf[:16+d.Rank]) // ragged chunks
		var root []float32
		if d.Rank == 0 {
			root = buf[:32]
		}
		d.Broadcast(w, 0, root)
		parts := make([][]float32, p)
		for j := range parts {
			parts[j] = make([]float32, 4*(1+(d.Rank+j)%3))
		}
		d.AllToAll(w, parts)
		counts := make([]int, p)
		total := 0
		for i := range counts {
			counts[i] = 8 + i
			total += counts[i]
		}
		d.ReduceScatterSum(w, make([]float32, total), counts)
		d.Barrier(w)
	})
	return f
}

// TestFlatTopologyBitIdentical is the backward-compat oracle at the
// fabric level: attaching topo.Flat built from the fabric's own model
// must leave every clock, volume, call count, and per-kind meter
// bit-identical to the legacy (nil-topology) path, with all traffic on
// tier 0.
func TestFlatTopologyBitIdentical(t *testing.T) {
	kinds := []hw.CollectiveKind{
		hw.OpBroadcast, hw.OpAllGather, hw.OpAllReduce,
		hw.OpAllToAll, hw.OpReduceScatter,
	}
	for _, p := range []int{1, 2, 3, 4, 8} {
		legacy := runMixed(p, hw.A6000(), nil)
		flat := runMixed(p, hw.A6000(), topo.Flat(p, hw.A6000()))
		if legacy.MaxClock() != flat.MaxClock() {
			t.Fatalf("p=%d: flat topology clock %v != legacy %v (diff %g)",
				p, flat.MaxClock(), legacy.MaxClock(), flat.MaxClock()-legacy.MaxClock())
		}
		for _, k := range kinds {
			if legacy.Volume(k) != flat.Volume(k) || legacy.Calls(k) != flat.Calls(k) {
				t.Fatalf("p=%d %v: volume/calls diverge: legacy (%d,%d) vs flat (%d,%d)",
					p, k, legacy.Volume(k), legacy.Calls(k), flat.Volume(k), flat.Calls(k))
			}
			if flat.TierVolume(k, topo.TierInter) != 0 {
				t.Fatalf("p=%d %v: flat topology leaked %d bytes onto tier 1",
					p, k, flat.TierVolume(k, topo.TierInter))
			}
			if flat.TierVolume(k, topo.TierIntra) != flat.Volume(k) {
				t.Fatalf("p=%d %v: tier-0 meter %d != volume %d",
					p, k, flat.TierVolume(k, topo.TierIntra), flat.Volume(k))
			}
		}
		for r := 0; r < p; r++ {
			lc, fc := legacy.Device(r).Clock(), flat.Device(r).Clock()
			if lc != fc {
				t.Fatalf("p=%d rank %d: clock %v != legacy %v", p, r, fc, lc)
			}
		}
	}
}

// TestFlatTopologyBitIdenticalDegraded extends the flat-parity contract
// to link-fault degradation: worst-multiplier pricing must match the
// legacy linkModel path bit-for-bit through a topology too.
func TestFlatTopologyBitIdenticalDegraded(t *testing.T) {
	build := func(tp *topo.Topology) *Fabric {
		f := NewFabric(4, hw.A6000())
		f.SetTopology(tp)
		f.SetLinkFault(2, 3.5, 1.75)
		f.Run(func(d *Device) {
			d.AllReduceSum(d.World(), make([]float32, 256))
			d.AllGather(d.World(), make([]float32, 64))
			d.Barrier(d.World())
		})
		return f
	}
	legacy := build(nil)
	flat := build(topo.Flat(4, hw.A6000()))
	if legacy.MaxClock() != flat.MaxClock() {
		t.Fatalf("degraded flat clock %v != legacy %v", flat.MaxClock(), legacy.MaxClock())
	}
	if legacy.TotalVolume() != flat.TotalVolume() {
		t.Fatalf("degraded flat volume %d != legacy %d", flat.TotalVolume(), legacy.TotalVolume())
	}
}

// TestMeteredTiersMatchModel is the end-to-end meter oracle on a
// two-tier topology: for every collective kind, the fabric's per-tier
// byte meters and the clock advance must equal the topo cost model's
// prediction exactly — same inputs, same functions, zero drift.
func TestMeteredTiersMatchModel(t *testing.T) {
	h := hw.A6000()
	tp := spec(t, "4x2:nvlink,ib", 8)
	p := 8
	w := world(p)

	type pred struct {
		kind hw.CollectiveKind
		cost topo.Cost
	}
	var preds []pred

	elems := 300
	_, arCost := tp.AllReduce(h, topo.Auto, w, int64(elems)*4)
	preds = append(preds, pred{hw.OpAllReduce, arCost})

	chunks := make([]int64, p)
	for i := range chunks {
		chunks[i] = int64(4 * (16 + i))
	}
	_, agCost := tp.AllGather(h, topo.Auto, w, chunks)
	preds = append(preds, pred{hw.OpAllGather, agCost})

	bcCost := tp.Broadcast(h, w, 1, 128*4)
	preds = append(preds, pred{hw.OpBroadcast, bcCost})

	pair := func(i, j int) int64 { return int64(4 * (1 + (i+2*j)%4)) }
	_, a2aCost := tp.AllToAll(h, topo.Auto, w, pair)
	preds = append(preds, pred{hw.OpAllToAll, a2aCost})

	counts := make([]int, p)
	cb := make([]int64, p)
	total := 0
	for i := range counts {
		counts[i] = 8 + 2*i
		cb[i] = int64(counts[i]) * 4
		total += counts[i]
	}
	_, rsCost := tp.ReduceScatter(h, topo.Auto, w, cb)
	preds = append(preds, pred{hw.OpReduceScatter, rsCost})

	f := NewFabric(p, h)
	f.SetTopology(tp)
	f.Run(func(d *Device) {
		d.AllReduceSum(d.World(), make([]float32, elems))
		d.AllGather(d.World(), make([]float32, 16+d.Rank))
		var root []float32
		if d.Rank == 1 {
			root = make([]float32, 128)
		}
		d.Broadcast(d.World(), 1, root)
		parts := make([][]float32, p)
		for j := range parts {
			parts[j] = make([]float32, pair(d.Rank, j)/4)
		}
		d.AllToAll(d.World(), parts)
		d.ReduceScatterSum(d.World(), make([]float32, total), counts)
	})

	clock := 0.0
	for _, pr := range preds {
		clock += pr.cost.Time
		if got := f.Volume(pr.kind); got != pr.cost.Bytes() {
			t.Errorf("%v: metered %d bytes, model predicts %d", pr.kind, got, pr.cost.Bytes())
		}
		if got := f.TierVolume(pr.kind, topo.TierInter); got != pr.cost.Tier[topo.TierInter] {
			t.Errorf("%v: tier-1 meter %d, model predicts %d", pr.kind, got, pr.cost.Tier[topo.TierInter])
		}
		if got := f.TierVolume(pr.kind, topo.TierIntra); got != pr.cost.Tier[topo.TierIntra] {
			t.Errorf("%v: tier-0 meter %d, model predicts %d", pr.kind, got, pr.cost.Tier[topo.TierIntra])
		}
	}
	if f.MaxClock() != clock {
		t.Errorf("fabric clock %v != summed model time %v (diff %g)",
			f.MaxClock(), clock, f.MaxClock()-clock)
	}
}

// TestStagedHierMatchesVirtual pins the staged-versus-virtual oracle:
// explicitly routing allreduce/allgather through the real three-stage
// hierarchical schedule must land every meter and the fabric clock
// exactly where the fused (virtual) hierarchical accounting puts them.
func TestStagedHierMatchesVirtual(t *testing.T) {
	h := hw.A6000()
	p := 8
	elems := 257 // deliberately non-divisible by the node size

	tp := spec(t, "4x2:nvlink,ib", p)
	_, wantAR := tp.AllReduce(h, topo.Hier, world(p), int64(elems)*4)
	chunks := make([]int64, p)
	for i := range chunks {
		chunks[i] = int64(4 * (10 + i))
	}
	_, wantAG := tp.AllGather(h, topo.Hier, world(p), chunks)

	staged := NewFabric(p, h)
	staged.SetTopology(tp)
	staged.SetAlgorithm(hw.OpAllReduce, topo.Hier)
	staged.SetAlgorithm(hw.OpAllGather, topo.Hier)
	results := make([][]float32, p)
	staged.Run(func(d *Device) {
		buf := make([]float32, elems)
		for i := range buf {
			buf[i] = float32(d.Rank*1000 + i)
		}
		results[d.Rank] = d.AllReduceSum(d.World(), buf)
	})
	if got := staged.Volume(hw.OpAllReduce); got != wantAR.Bytes() {
		t.Fatalf("staged hier allreduce metered %d bytes, virtual model %d", got, wantAR.Bytes())
	}
	if got := staged.TierVolume(hw.OpAllReduce, topo.TierInter); got != wantAR.Tier[topo.TierInter] {
		t.Fatalf("staged hier allreduce tier-1 %d, virtual %d", got, wantAR.Tier[topo.TierInter])
	}
	if staged.MaxClock() != wantAR.Time {
		t.Fatalf("staged hier allreduce clock %v != virtual time %v (diff %g)",
			staged.MaxClock(), wantAR.Time, staged.MaxClock()-wantAR.Time)
	}
	// With equal per-node stage-3 costs every device lands on the same
	// clock — per-device equality, not just the max.
	for r := 0; r < p; r++ {
		if c := staged.Device(r).Clock(); c != wantAR.Time {
			t.Fatalf("rank %d clock %v != virtual %v", r, c, wantAR.Time)
		}
	}
	// Numerics: the staged sum must match the plain sum within float32
	// association error.
	for r := 0; r < p; r++ {
		for i := 0; i < elems; i += 97 {
			var want float64
			for rr := 0; rr < p; rr++ {
				want += float64(rr*1000 + i)
			}
			if diff := math.Abs(float64(results[r][i]) - want); diff > 1e-2 {
				t.Fatalf("rank %d elem %d: staged sum %v, want %v", r, i, results[r][i], want)
			}
		}
	}

	// Allgather with ragged chunks: per-device clocks may differ (node
	// totals differ), but the max clock and all meters match the virtual
	// cost exactly.
	staged2 := NewFabric(p, h)
	staged2.SetTopology(tp)
	staged2.SetAlgorithm(hw.OpAllGather, topo.Hier)
	gathered := make([][][]float32, p)
	staged2.Run(func(d *Device) {
		buf := make([]float32, 10+d.Rank)
		for i := range buf {
			buf[i] = float32(d.Rank*100 + i)
		}
		gathered[d.Rank] = d.AllGather(d.World(), buf)
	})
	if got := staged2.Volume(hw.OpAllGather); got != wantAG.Bytes() {
		t.Fatalf("staged hier allgather metered %d bytes, virtual model %d", got, wantAG.Bytes())
	}
	if got := staged2.TierVolume(hw.OpAllGather, topo.TierInter); got != wantAG.Tier[topo.TierInter] {
		t.Fatalf("staged hier allgather tier-1 %d, virtual %d", got, wantAG.Tier[topo.TierInter])
	}
	if staged2.MaxClock() != wantAG.Time {
		t.Fatalf("staged hier allgather clock %v != virtual time %v (diff %g)",
			staged2.MaxClock(), wantAG.Time, staged2.MaxClock()-wantAG.Time)
	}
	// Every rank must see every chunk, correctly.
	for r := 0; r < p; r++ {
		for src := 0; src < p; src++ {
			part := gathered[r][src]
			if len(part) != 10+src {
				t.Fatalf("rank %d: chunk from %d has %d elems, want %d", r, src, len(part), 10+src)
			}
			for i, v := range part {
				if v != float32(src*100+i) {
					t.Fatalf("rank %d: chunk from %d corrupt at %d: %v", r, src, i, v)
				}
			}
		}
	}
}

// TestStagedHierSubgroupFallsBack: a group the hierarchical schedule
// cannot serve (single node, or ragged node membership) silently uses
// the fused path even when Hier is pinned.
func TestStagedHierSubgroupFallsBack(t *testing.T) {
	h := hw.A6000()
	tp := spec(t, "4x2:nvlink,ib", 8)
	f := NewFabric(8, h)
	f.SetTopology(tp)
	f.SetAlgorithm(hw.OpAllReduce, topo.Hier)
	f.Run(func(d *Device) {
		if d.Rank >= 2 {
			return
		}
		got := d.AllReduceSum([]int{0, 1}, []float32{float32(d.Rank + 1)})
		if got[0] != 3 {
			t.Errorf("intra-node hier-pinned allreduce wrong: %v", got)
		}
	})
	// One fused round, ring-priced (Hier falls back to Ring on a
	// single-node group).
	if f.Calls(hw.OpAllReduce) != 1 {
		t.Fatalf("expected 1 fused call, got %d", f.Calls(hw.OpAllReduce))
	}
	_, want := tp.AllReduce(h, topo.Hier, []int{0, 1}, 4)
	if f.MaxClock() != want.Time {
		t.Fatalf("fallback clock %v != model %v", f.MaxClock(), want.Time)
	}
}

// TestTopologyRejectsSmallCoverage: a topology that cannot address
// every rank must be refused up front.
func TestTopologyRejectsSmallCoverage(t *testing.T) {
	f := NewFabric(8, hw.A6000())
	defer func() {
		if recover() == nil {
			t.Fatal("SetTopology must reject a 4-device topology on an 8-device fabric")
		}
	}()
	f.SetTopology(spec(t, "2x2:nvlink,ib", 4))
}
