// Conservation and watchdog checks for the fabric itself, via the
// internal/verify oracle. External test package: verify imports comm.
package comm_test

import (
	"errors"
	"testing"
	"time"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/trace"
	"gnnrdm/internal/verify"
)

// TestMixedCollectivesConserve drives every collective, including
// disjoint concurrent subgroups and side-channel traffic, and checks the
// traced rounds against the fabric meters exactly.
func TestMixedCollectivesConserve(t *testing.T) {
	tr := trace.NewTracer(0)
	fab := comm.NewFabric(4, hw.A6000())
	fab.SetTracer(tr, "mixed")
	fab.Run(func(d *comm.Device) {
		world := d.World()
		d.Broadcast(world, 0, []float32{1, 2, 3})
		d.AllGather(world, []float32{float32(d.Rank)})
		d.AllReduceSum(world, []float32{1})
		// Disjoint pair groups run concurrently.
		group := []int{0, 1}
		if d.Rank >= 2 {
			group = []int{2, 3}
		}
		d.AllToAll(group, [][]float32{{1, 2}, {3}})
		d.ReduceScatterSum(group, []float32{1, 2, 3}, []int{2, 1})
		d.Barrier(world)
		// Side-channel traffic must reconcile in the ledger too.
		d.SetSideChannel(true)
		d.AllToAll(world, [][]float32{{1}, {2}, {3}, {4}})
		d.SetSideChannel(false)
	})
	verify.CheckFabricSession(t, fab, tr.Sessions()[0])
}

// TestErrorPathsGuarded exercises a cooperative collective failure under
// the deadlock watchdog: every rank must receive the error, and the
// fabric must stay usable for a follow-up round — all well before the
// watchdog fires.
func TestErrorPathsGuarded(t *testing.T) {
	verify.NoDeadlock(t, 30*time.Second, func() {
		fab := comm.NewFabric(4, hw.A6000())
		errs := make([]error, 4)
		sums := make([][]float32, 4)
		fab.Run(func(d *comm.Device) {
			var buf []float32
			if d.Rank != 2 {
				buf = []float32{1}
			}
			_, errs[d.Rank] = d.TryAllGather(d.World(), buf)
			sums[d.Rank] = d.AllReduceSum(d.World(), []float32{float32(d.Rank)})
		})
		for r, err := range errs {
			if !errors.Is(err, comm.ErrNilBuffer) {
				t.Errorf("rank %d: got %v, want ErrNilBuffer", r, err)
			}
		}
		for r, s := range sums {
			if len(s) != 1 || s[0] != 6 {
				t.Errorf("rank %d: follow-up allreduce %v, want [6]", r, s)
			}
		}
	})
}
