package comm_test

// Tests for the fabric's fault layer: dead-rank containment (a crashed
// or panicked device fails its peers' rendezvous with ErrPeerDead
// instead of hanging the fabric), transient-fault retry with simulated
// backoff, the CRC corruption side-channel, per-link degradation, and
// straggler slowdown. Everything here is driven by simulated state, so
// the tests assert exact clocks and byte counts.

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/hw"
)

// runBounded fails the test if fabric.Run(fn) does not complete within
// the wall-clock budget — the fault layer's whole point is that faulty
// runs terminate.
func runBounded(t *testing.T, f *comm.Fabric, fn func(d *comm.Device)) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(fn)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("fabric.Run did not terminate: fault containment failed")
	}
}

func TestKilledRankFailsPeersWithPeerDead(t *testing.T) {
	f := comm.NewFabric(3, hw.A6000())
	f.SetCollectiveDeadline(2e-3)
	var mu sync.Mutex
	errs := make(map[int]error)
	runBounded(t, f, func(d *comm.Device) {
		if d.Rank == 2 {
			panic(comm.Killed{Rank: d.Rank, Reason: "scheduled crash"})
		}
		_, err := d.TryAllReduceSum(d.World(), []float32{float32(d.Rank)})
		mu.Lock()
		errs[d.Rank] = err
		mu.Unlock()
	})
	for _, r := range []int{0, 1} {
		err := errs[r]
		if err == nil {
			t.Fatalf("rank %d: expected peer-dead error, got nil", r)
		}
		var fe *comm.FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("rank %d: error %v is not a *FaultError", r, err)
		}
		if !errors.Is(err, comm.ErrPeerDead) {
			t.Fatalf("rank %d: error %v does not wrap ErrPeerDead", r, err)
		}
		if got := f.Device(r).Clock(); got != 2e-3 {
			t.Fatalf("rank %d: clock %g, want the 2e-3 deadline charge", r, got)
		}
	}
	if vol := f.TotalVolume(); vol != 0 {
		t.Fatalf("abandoned collective metered %d bytes, want 0", vol)
	}
}

func TestDeadPeerDetectedMidWait(t *testing.T) {
	// Rank 1 completes one private-group collective with rank 2, then
	// rank 2 crashes while rank 0 and 1 are already blocked in a world
	// barrier: the dead-check must fire on wakeup, not only at entry.
	f := comm.NewFabric(3, hw.A6000())
	pair := []int{1, 2}
	var mu sync.Mutex
	errs := make(map[int]error)
	runBounded(t, f, func(d *comm.Device) {
		if d.Rank != 0 {
			if err := d.TryBarrier(pair); err != nil {
				t.Errorf("rank %d: pair barrier failed: %v", d.Rank, err)
				return
			}
		}
		if d.Rank == 2 {
			panic(comm.Killed{Rank: d.Rank, Reason: "post-barrier crash"})
		}
		err := d.TryBarrier(d.World())
		mu.Lock()
		errs[d.Rank] = err
		mu.Unlock()
	})
	for _, r := range []int{0, 1} {
		if !errors.Is(errs[r], comm.ErrPeerDead) {
			t.Fatalf("rank %d: got %v, want ErrPeerDead", r, errs[r])
		}
	}
}

func TestNonKilledPanicIsReRaised(t *testing.T) {
	f := comm.NewFabric(2, hw.A6000())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run swallowed a genuine panic")
		}
		if r != "boom" {
			t.Fatalf("re-raised panic %v, want boom", r)
		}
	}()
	// Call Run directly (not via runBounded) so the re-raise lands on
	// this goroutine where the deferred recover can assert on it.
	f.Run(func(d *comm.Device) {
		if d.Rank == 1 {
			panic("boom")
		}
		// Rank 0's collective fails with ErrPeerDead instead of hanging;
		// the panicking wrapper turns that into a *FaultError panic,
		// which Run treats as fault-class collateral and does not
		// re-raise in favour of the genuine bug on rank 1... except Run
		// re-raises the lowest-rank panic that is not Killed, so guard
		// rank 0 explicitly to keep the assertion on rank 1's value.
		if _, err := d.TryAllGather(d.World(), []float32{1}); !errors.Is(err, comm.ErrPeerDead) {
			t.Errorf("rank 0: got %v, want ErrPeerDead", err)
		}
	})
}

// flakyHook fails the first `fail` rounds of ops matching match with a
// transient error, counting invocations.
type flakyHook struct {
	mu     sync.Mutex
	match  string
	fail   int
	rounds int
}

func (h *flakyHook) BeforeCollective(d *comm.Device, op string) {}

func (h *flakyHook) OnRound(d *comm.Device, op string, group []int, seq uint64, slots []any) error {
	if op != h.match {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rounds++
	if h.rounds <= h.fail {
		return comm.ErrTransient
	}
	return nil
}

func TestTransientRoundIsRetriedWithSimulatedBackoff(t *testing.T) {
	model := hw.A6000()
	clean := comm.NewFabric(2, model)
	var cleanClock float64
	clean.Run(func(d *comm.Device) {
		out := d.AllReduceSum(d.World(), []float32{1, 2})
		if d.Rank == 0 {
			cleanClock = d.Clock()
			if out[0] != 2 || out[1] != 4 {
				t.Errorf("clean allreduce wrong: %v", out)
			}
		}
	})

	f := comm.NewFabric(2, model)
	f.SetFaultHook(&flakyHook{match: "allreduce", fail: 2})
	f.SetRetryPolicy(comm.RetryPolicy{Max: 3, Backoff: 50e-6, Multiplier: 2})
	runBounded(t, f, func(d *comm.Device) {
		out, err := d.TryAllReduceSum(d.World(), []float32{1, 2})
		if err != nil {
			t.Errorf("rank %d: retried allreduce failed: %v", d.Rank, err)
			return
		}
		if out[0] != 2 || out[1] != 4 {
			t.Errorf("rank %d: allreduce after retries wrong: %v", d.Rank, out)
		}
	})
	// Two failed rendezvous plus backoffs of 50us and 100us precede the
	// clean attempt; each rendezvous itself only synchronizes equal
	// clocks, so the faulty run costs exactly the backoff sum extra.
	want := cleanClock + 150e-6
	if got := f.Device(0).Clock(); !close64(got, want) {
		t.Fatalf("faulty clock %g, want %g (clean %g + 150us backoff)", got, want, cleanClock)
	}
	// The volume must be metered exactly once despite three rounds.
	if got, want := f.Volume(hw.OpAllReduce), clean.Volume(hw.OpAllReduce); got != want {
		t.Fatalf("faulty run metered %d allreduce bytes, clean %d", got, want)
	}
}

func TestTransientWithoutRetryBudgetIsFaultError(t *testing.T) {
	f := comm.NewFabric(2, hw.A6000())
	f.SetFaultHook(&flakyHook{match: "allgather", fail: 1 << 30})
	f.SetRetryPolicy(comm.RetryPolicy{Max: 2, Backoff: 10e-6, Multiplier: 2})
	runBounded(t, f, func(d *comm.Device) {
		_, err := d.TryAllGather(d.World(), []float32{1})
		var fe *comm.FaultError
		if !errors.As(err, &fe) || !errors.Is(err, comm.ErrTransient) {
			t.Errorf("rank %d: got %v, want FaultError wrapping ErrTransient", d.Rank, err)
		}
	})
}

// corruptingHook flips a mantissa bit of the first element of the first
// []float32 payload it sees, once. With CRC enabled comm itself rolls
// the flip back after detection (the corruption was on the wire, not in
// the sender's memory), so the hook needs no undo bookkeeping.
type corruptingHook struct {
	mu    sync.Mutex
	fired bool
}

func (h *corruptingHook) BeforeCollective(d *comm.Device, op string) {}

func (h *corruptingHook) OnRound(d *comm.Device, op string, group []int, seq uint64, slots []any) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.fired {
		return nil
	}
	for _, s := range slots {
		buf, ok := s.([]float32)
		if !ok || len(buf) == 0 {
			continue
		}
		buf[0] = flipBit(buf[0])
		h.fired = true
		return nil
	}
	return nil
}

func flipBit(v float32) float32 {
	// A mid-mantissa bit: large enough that the corruption survives
	// float32 rounding in a sum (the lowest bit of 3.0 would vanish by
	// round-to-even in 3.0000002+3).
	return math.Float32frombits(math.Float32bits(v) ^ (1 << 20))
}

func TestCRCCatchesBitFlipAndRetryDeliversCleanData(t *testing.T) {
	f := comm.NewFabric(2, hw.A6000())
	f.SetFaultHook(&corruptingHook{})
	f.EnableCRC(true)
	f.SetRetryPolicy(comm.RetryPolicy{Max: 1, Backoff: 10e-6, Multiplier: 1})
	runBounded(t, f, func(d *comm.Device) {
		out, err := d.TryAllReduceSum(d.World(), []float32{3, 5})
		if err != nil {
			t.Errorf("rank %d: CRC-retried allreduce failed: %v", d.Rank, err)
			return
		}
		if out[0] != 6 || out[1] != 10 {
			t.Errorf("rank %d: corrupted data survived retry: %v", d.Rank, out)
		}
	})
}

func TestBitFlipWithoutRetryIsCorruptFaultError(t *testing.T) {
	f := comm.NewFabric(2, hw.A6000())
	f.SetFaultHook(&corruptingHook{})
	f.EnableCRC(true)
	runBounded(t, f, func(d *comm.Device) {
		_, err := d.TryAllReduceSum(d.World(), []float32{3, 5})
		if !errors.Is(err, comm.ErrCorrupt) {
			t.Errorf("rank %d: got %v, want ErrCorrupt", d.Rank, err)
		}
	})
}

func TestBitFlipWithoutCRCPropagatesSilently(t *testing.T) {
	f := comm.NewFabric(2, hw.A6000())
	f.SetFaultHook(&corruptingHook{})
	runBounded(t, f, func(d *comm.Device) {
		out, err := d.TryAllReduceSum(d.World(), []float32{3, 5})
		if err != nil {
			t.Errorf("rank %d: unexpected error: %v", d.Rank, err)
			return
		}
		if out[0] == 6 {
			t.Errorf("rank %d: expected corrupted sum without CRC, got clean %v", d.Rank, out)
		}
	})
}

func TestLinkFaultDegradesGroupCollectives(t *testing.T) {
	model := hw.A6000()
	clean := comm.NewFabric(2, model)
	clean.Run(func(d *comm.Device) {
		d.AllGather(d.World(), make([]float32, 1024))
	})
	slow := comm.NewFabric(2, model)
	slow.SetLinkFault(1, 3, 2) // 3x latency, half bandwidth on rank 1's link
	slow.Run(func(d *comm.Device) {
		d.AllGather(d.World(), make([]float32, 1024))
	})
	want := model.Degraded(3, 2).CollectiveTime(hw.OpAllGather, 2, 2*1024*4)
	if got := slow.MaxClock(); !close64(got, want) {
		t.Fatalf("degraded allgather clock %g, want %g", got, want)
	}
	if slow.MaxClock() <= clean.MaxClock() {
		t.Fatal("link fault did not slow the collective down")
	}
	// Degradation changes time, never bytes.
	if got, want := slow.Volume(hw.OpAllGather), clean.Volume(hw.OpAllGather); got != want {
		t.Fatalf("degraded run metered %d bytes, clean %d", got, want)
	}
}

func TestComputeSlowdownStretchesKernels(t *testing.T) {
	model := hw.A6000()
	f := comm.NewFabric(1, model)
	d := f.Device(0)
	d.ChargeGemm(64, 64, 64)
	base := d.Clock()
	d.SetComputeSlowdown(2.5)
	d.ChargeGemm(64, 64, 64)
	if got, want := d.Clock()-base, 2.5*base; !close64(got, want) {
		t.Fatalf("straggler gemm took %g, want %g", got, want)
	}
	d.SetComputeSlowdown(1) // clears
	d.ChargeGemm(64, 64, 64)
	if got := d.Clock() - base - 2.5*base; !close64(got, base) {
		t.Fatalf("cleared straggler gemm took %g, want %g", got, base)
	}
}

func TestSeedClocksCarriesTimeline(t *testing.T) {
	f := comm.NewFabric(2, hw.A6000())
	f.SeedClocks([]float64{1.5, 2.0})
	f.Run(func(d *comm.Device) {
		d.Barrier(d.World())
	})
	if c := f.Device(0).Clock(); c <= 2.0 {
		t.Fatalf("seeded clocks not carried: rank 0 clock %g, want > 2.0", c)
	}
}

func close64(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d <= 1e-12*scale
}
