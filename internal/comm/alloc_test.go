package comm_test

import (
	"testing"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/hw"
)

// The hot-path allocation pins: steady-state collective rounds must not
// allocate payload-sized buffers. The reduction scratch is pooled
// (comm/pool.go) and the Flat/Into variants write straight into
// caller-held destinations, so per-round allocation is bounded by small
// rendezvous bookkeeping — orders of magnitude under the payload size.
// A regression that reintroduces per-round payload copies (each round
// below moves 4 × 16 KiB) trips the byte bound immediately.

const (
	allocRanks = 4
	allocElems = 4096 // 16 KiB per member buffer
	// allocBytesBound is the per-round bookkeeping allowance across all
	// ranks; payload copies would cost >= 64 KiB per round.
	allocBytesBound = 4096
)

func benchRounds(b *testing.B, round func(d *comm.Device, world []int)) {
	fab := comm.NewFabric(allocRanks, hw.A6000())
	b.ReportAllocs()
	fab.Run(func(d *comm.Device) {
		world := d.World()
		for i := 0; i < b.N; i++ {
			round(d, world)
		}
	})
}

func BenchmarkAllReduceSumInto(b *testing.B) {
	local := make([][]float32, allocRanks)
	dst := make([][]float32, allocRanks)
	for r := range local {
		local[r] = make([]float32, allocElems)
		dst[r] = make([]float32, allocElems)
	}
	benchRounds(b, func(d *comm.Device, world []int) {
		d.AllReduceSumInto(world, local[d.Rank], dst[d.Rank])
	})
}

func BenchmarkAllGatherFlat(b *testing.B) {
	local := make([][]float32, allocRanks)
	dst := make([][]float32, allocRanks)
	for r := range local {
		local[r] = make([]float32, allocElems/allocRanks)
		dst[r] = make([]float32, allocElems)
	}
	benchRounds(b, func(d *comm.Device, world []int) {
		dst[d.Rank] = d.AllGatherFlat(world, local[d.Rank], dst[d.Rank])
	})
}

// TestHotPathAllocsBounded runs the two pooled-path benchmarks through
// the framework and asserts the per-round allocated bytes stay under
// the bookkeeping allowance — the executable form of the "zero payload
// allocation in steady state" claim.
func TestHotPathAllocsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed assertion skipped in -short")
	}
	for _, bench := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"AllReduceSumInto", BenchmarkAllReduceSumInto},
		{"AllGatherFlat", BenchmarkAllGatherFlat},
	} {
		res := testing.Benchmark(bench.fn)
		if res.N == 0 {
			t.Fatalf("%s: benchmark did not run", bench.name)
		}
		if got := res.AllocedBytesPerOp(); got > allocBytesBound {
			t.Fatalf("%s: %d bytes allocated per round (N=%d), bookkeeping bound is %d — payload buffers are being allocated on the hot path",
				bench.name, got, res.N, allocBytesBound)
		} else {
			t.Logf("%s: %d bytes/round, %d allocs/round (N=%d)", bench.name, got, res.AllocsPerOp(), res.N)
		}
	}
}
