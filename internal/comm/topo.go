// Topology-aware fabric paths. Attaching a topo.Topology
// (Fabric.SetTopology) switches every collective's time and byte
// accounting from the flat linkModel formulas to the internal/topo
// algorithm library, metering traffic per link tier. The default
// algorithm policy (topo.Auto) resolves inside the single fused
// rendezvous — the chosen algorithm's schedule is priced and metered
// exactly ("virtual routing") without extra rounds, which keeps the
// decision trivially consistent across ranks. Explicitly selecting
// topo.Hier (Fabric.SetAlgorithm) for allreduce or allgather instead
// runs the genuine staged schedule — intra-node reduce/gather, an
// inter-node exchange, then intra-node gather/broadcast — as separate
// rendezvous whose metered bytes and synchronized clocks match the
// virtual cost (pinned by the staged-versus-virtual oracle tests).
// Hierarchical reduce-scatter and all-to-all use virtual accounting
// only.
package comm

import (
	"fmt"

	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
)

// Volume is one collective round's metered traffic: total bytes moved
// across device boundaries, and the share that crossed inter-node
// (tier-1) links — zero on fabrics without a topology.
type Volume struct {
	Bytes int64
	Tier1 int64
}

func volumeOf(c topo.Cost) Volume {
	return Volume{Bytes: c.Bytes(), Tier1: c.Tier[topo.TierInter]}
}

// SetTopology attaches an interconnect topology: subsequent collectives
// price and meter through internal/topo's algorithm library, splitting
// bytes by link tier. The topology must cover every rank (t.P >= P).
// Passing nil restores the flat pre-topology accounting. Call before
// Run. A flat single-tier topology built from the fabric's own model
// (topo.Flat(p, hw)) reproduces the nil-topology fabric bit-for-bit.
func (f *Fabric) SetTopology(t *topo.Topology) {
	if t != nil && t.P < f.P {
		panic(fmt.Sprintf("comm: topology covers %d devices, fabric has %d", t.P, f.P))
	}
	f.topology = t
}

// Topology returns the attached topology (nil = flat accounting).
func (f *Fabric) Topology() *topo.Topology { return f.topology }

// SetAlgorithm pins the collective algorithm for one kind (default
// topo.Auto, the cost-model autotuner). Only consulted when a topology
// is attached. Call before Run.
func (f *Fabric) SetAlgorithm(kind hw.CollectiveKind, alg topo.Algorithm) {
	f.algs[kind] = alg
}

// Algorithm returns the configured algorithm for a kind.
func (f *Fabric) Algorithm(kind hw.CollectiveKind) topo.Algorithm { return f.algs[kind] }

// topoFor returns the topology a collective over group runs at — the
// attached topology degraded by the worst per-rank link-fault
// multipliers among the participants (mirroring linkModel) — or nil
// when no topology is attached.
func (f *Fabric) topoFor(group []int) *topo.Topology {
	t := f.topology
	if t == nil || f.linkAlpha == nil {
		return t
	}
	alpha, beta := 1.0, 1.0
	for _, r := range group {
		if f.linkAlpha[r] > alpha {
			alpha = f.linkAlpha[r]
		}
		if f.linkBeta[r] > beta {
			beta = f.linkBeta[r]
		}
	}
	if alpha == 1 && beta == 1 {
		return t
	}
	return t.Degraded(alpha, beta)
}

// stagedHier reports whether a collective of this kind over this group
// must run the staged hierarchical schedule, returning the node
// partition. The decision depends only on fabric-shared state and the
// group, so every rank routes identically.
func (f *Fabric) stagedHier(kind hw.CollectiveKind, group []int) ([][]int, bool) {
	if f.topology == nil || f.algs[kind] != topo.Hier {
		return nil, false
	}
	return f.topology.NodeGroups(group)
}

// hierAllReduceSum is the staged two-level allreduce: intra-node
// reduce-scatter into even chunks, per-position inter-node allreduce of
// each chunk, intra-node allgather. Every stage is a real rendezvous
// metered under hw.OpAllReduce with its ring cost on the subgroup, so
// the summed meters and the synchronized clocks equal the virtual
// hierarchical cost exactly.
func (d *Device) hierAllReduceSum(group []int, local []float32, nodes [][]int) ([]float32, error) {
	const op = "allreduce"
	f := d.F
	g := len(nodes[0])
	var nd []int
	for _, nn := range nodes {
		if indexOf(nn, d.Rank) >= 0 {
			nd = nn
			break
		}
	}
	myPos := indexOf(nd, d.Rank)

	n := len(local)
	chBytes := topo.EvenChunks(int64(n)*4, g)
	ce := make([]int, g)
	off := make([]int, g+1)
	for i, b := range chBytes {
		ce[i] = int(b / 4)
		off[i+1] = off[i] + ce[i]
	}

	// Stage 1: intra-node reduce-scatter (skipped for one-device nodes).
	shard := local
	if g > 1 {
		var contribution any = local
		if local == nil {
			contribution = collErr{fmt.Errorf("local buffer on rank %d: %w", d.Rank, ErrNilBuffer)}
		}
		out := make([]float32, ce[myPos])
		err := d.collective(op, nd, contribution,
			func(slots []any, clocks []float64) (float64, any, Volume, error) {
				sum := getScratch(n)
				for i, s := range slots {
					buf := s.([]float32)
					if len(buf) != n {
						putScratch(sum)
						return maxClock(clocks), nil, Volume{}, fmt.Errorf(
							"group position 0 has %d elements, position %d has %d: %w",
							n, i, len(buf), ErrLengthMismatch)
					}
					for j, v := range buf {
						sum[j] += v
					}
				}
				tp := f.topoFor(nd)
				_, c := tp.ReduceScatter(f.HW, topo.Ring, nd, chBytes)
				vol := volumeOf(c)
				f.addVolume(hw.OpAllReduce, vol, d.side)
				return maxClock(clocks) + c.Time, sum, vol, nil
			},
			func(slots []any, aux any) {
				copy(out, aux.(scratch)[off[myPos]:off[myPos+1]])
			})
		if err != nil {
			return nil, err
		}
		shard = out
	} else if local == nil {
		return nil, &CollectiveError{Op: op, Rank: d.Rank,
			Err: fmt.Errorf("local buffer: %w", ErrNilBuffer)}
	}

	// Stage 2: my position's plane (one member per node) allreduces the
	// shard across nodes.
	plane := make([]int, len(nodes))
	for j, nn := range nodes {
		plane[j] = nn[myPos]
	}
	myBytes := chBytes[myPos]
	reduced := make([]float32, len(shard))
	err := d.collective(op, plane, shard,
		func(slots []any, clocks []float64) (float64, any, Volume, error) {
			sum := getScratch(len(shard))
			for i, s := range slots {
				buf := s.([]float32)
				if len(buf) != len(sum) {
					putScratch(sum)
					return maxClock(clocks), nil, Volume{}, fmt.Errorf(
						"group position 0 has %d elements, position %d has %d: %w",
						len(sum), i, len(buf), ErrLengthMismatch)
				}
				for j, v := range buf {
					sum[j] += v
				}
			}
			tp := f.topoFor(plane)
			_, c := tp.AllReduce(f.HW, topo.Ring, plane, myBytes)
			vol := volumeOf(c)
			f.addVolume(hw.OpAllReduce, vol, d.side)
			return maxClock(clocks) + c.Time, sum, vol, nil
		},
		func(slots []any, aux any) {
			copy(reduced, aux.(scratch))
		})
	if err != nil {
		return nil, err
	}
	if g == 1 {
		return reduced, nil
	}

	// Stage 3: intra-node allgather of the reduced chunks.
	full := make([]float32, n)
	err = d.collective(op, nd, reduced,
		func(slots []any, clocks []float64) (float64, any, Volume, error) {
			tp := f.topoFor(nd)
			_, c := tp.AllGather(f.HW, topo.Ring, nd, chBytes)
			vol := volumeOf(c)
			f.addVolume(hw.OpAllReduce, vol, d.side)
			return maxClock(clocks) + c.Time, nil, vol, nil
		},
		func(slots []any, _ any) {
			for i, s := range slots {
				copy(full[off[i]:off[i+1]], s.([]float32))
			}
		})
	if err != nil {
		return nil, err
	}
	return full, nil
}

// hierAllGather is the staged two-level allgather: intra-node
// allgather, an inter-node allgather among node leaders (position 0)
// of the concatenated node chunks, then each leader broadcasts the
// remote nodes' bytes locally. Metered under hw.OpAllGather; summed
// meters equal the virtual hierarchical cost exactly, and the fabric's
// max clock advances by the virtual cost's time.
func (d *Device) hierAllGather(group []int, local []float32, nodes [][]int) ([][]float32, error) {
	const op = "allgather"
	f := d.F
	g := len(nodes[0])
	m := len(nodes)
	var nd []int
	myNode := -1
	for j, n := range nodes {
		if indexOf(n, d.Rank) >= 0 {
			nd, myNode = n, j
			break
		}
	}
	myPos := indexOf(nd, d.Rank)
	isLeader := myPos == 0

	// Stage 1: intra-node allgather (skipped for one-device nodes).
	nodeChunks := [][]float32{local}
	if g > 1 {
		var contribution any = local
		if local == nil {
			contribution = collErr{fmt.Errorf("local buffer on rank %d: %w", d.Rank, ErrNilBuffer)}
		}
		out := make([][]float32, g)
		err := d.collective(op, nd, contribution,
			func(slots []any, clocks []float64) (float64, any, Volume, error) {
				chunks := make([]int64, len(slots))
				for i, s := range slots {
					chunks[i] = int64(len(s.([]float32))) * 4
				}
				tp := f.topoFor(nd)
				_, c := tp.AllGather(f.HW, topo.Ring, nd, chunks)
				vol := volumeOf(c)
				f.addVolume(hw.OpAllGather, vol, d.side)
				return maxClock(clocks) + c.Time, nil, vol, nil
			},
			func(slots []any, _ any) {
				for i, s := range slots {
					src := s.([]float32)
					if i == myPos {
						out[i] = local
						continue
					}
					out[i] = append(make([]float32, 0, len(src)), src...)
				}
			})
		if err != nil {
			return nil, err
		}
		nodeChunks = out
	} else if local == nil {
		return nil, &CollectiveError{Op: op, Rank: d.Rank,
			Err: fmt.Errorf("local buffer: %w", ErrNilBuffer)}
	}

	// all[j][a] is node j's chunk for its position a; leaders fill the
	// remote entries in stage 2, everyone else in stage 3.
	all := make([][][]float32, m)
	all[myNode] = nodeChunks

	// Stage 2: node leaders exchange the concatenated node chunks.
	leaders := make([]int, m)
	for j, nn := range nodes {
		leaders[j] = nn[0]
	}
	if isLeader {
		err := d.collective(op, leaders, nodeChunks,
			func(slots []any, clocks []float64) (float64, any, Volume, error) {
				totals := make([]int64, len(slots))
				for i, s := range slots {
					for _, part := range s.([][]float32) {
						totals[i] += int64(len(part)) * 4
					}
				}
				tp := f.topoFor(leaders)
				_, c := tp.AllGather(f.HW, topo.Ring, leaders, totals)
				vol := volumeOf(c)
				f.addVolume(hw.OpAllGather, vol, d.side)
				return maxClock(clocks) + c.Time, nil, vol, nil
			},
			func(slots []any, _ any) {
				for j, s := range slots {
					if j == myNode {
						continue
					}
					src := s.([][]float32)
					cp := make([][]float32, len(src))
					for a, part := range src {
						cp[a] = append(make([]float32, 0, len(part)), part...)
					}
					all[j] = cp
				}
			})
		if err != nil {
			return nil, err
		}
	}

	// Stage 3: each leader broadcasts the remote nodes' chunks inside
	// its node (skipped for one-device nodes — the leader is the node).
	if g > 1 {
		var contribution any
		if isLeader {
			remote := make([][]float32, 0, (m-1)*g)
			for j := 0; j < m; j++ {
				if j != myNode {
					remote = append(remote, all[j]...)
				}
			}
			contribution = remote
		}
		err := d.collective(op, nd, contribution,
			func(slots []any, clocks []float64) (float64, any, Volume, error) {
				var bytes int64
				for _, part := range slots[0].([][]float32) {
					bytes += int64(len(part)) * 4
				}
				tp := f.topoFor(nd)
				c := tp.Broadcast(f.HW, nd, 0, bytes)
				vol := volumeOf(c)
				f.addVolume(hw.OpAllGather, vol, d.side)
				return maxClock(clocks) + c.Time, nil, vol, nil
			},
			func(slots []any, _ any) {
				if isLeader {
					return
				}
				src := slots[0].([][]float32)
				k := 0
				for j := 0; j < m; j++ {
					if j == myNode {
						continue
					}
					cp := make([][]float32, g)
					for a := 0; a < g; a++ {
						part := src[k]
						k++
						cp[a] = append(make([]float32, 0, len(part)), part...)
					}
					all[j] = cp
				}
			})
		if err != nil {
			return nil, err
		}
	}

	out := make([][]float32, len(group))
	for j := 0; j < m; j++ {
		for a := 0; a < len(nodes[j]); a++ {
			out[j*g+a] = all[j][a]
		}
	}
	return out, nil
}
