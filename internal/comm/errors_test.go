package comm_test

// External-package tests for the collective error contract: data errors
// (nil buffers, cross-rank length disagreement) are delivered
// cooperatively to every rank instead of panicking one goroutine or
// deadlocking the rest, structural misuse fails fast before the
// rendezvous, and a failed round leaves the fabric usable.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/hw"
)

// runGuarded runs fn on every device of a fresh 2-device fabric and
// fails the test (instead of hanging go test) if the collective does not
// complete promptly — the deadlock guard the error contract promises to
// make unnecessary.
func runGuarded(t *testing.T, p int, fn func(d *comm.Device)) *comm.Fabric {
	t.Helper()
	f := comm.NewFabric(p, hw.A6000())
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(fn)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("collective deadlocked")
	}
	return f
}

// collectErrs runs fn on each rank and returns the per-rank errors.
func collectErrs(t *testing.T, p int, fn func(d *comm.Device) error) []error {
	t.Helper()
	errs := make([]error, p)
	var mu sync.Mutex
	runGuarded(t, p, func(d *comm.Device) {
		err := fn(d)
		mu.Lock()
		errs[d.Rank] = err
		mu.Unlock()
	})
	return errs
}

// wantAll asserts every rank failed with the given sentinel cause and a
// CollectiveError wrapper naming the op and that rank.
func wantAll(t *testing.T, errs []error, op string, sentinel error) {
	t.Helper()
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d: expected error, got nil", r)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("rank %d: error %v does not wrap %v", r, err, sentinel)
		}
		var ce *comm.CollectiveError
		if !errors.As(err, &ce) {
			t.Fatalf("rank %d: error %T is not a CollectiveError", r, err)
		}
		if ce.Op != op || ce.Rank != r {
			t.Fatalf("rank %d: CollectiveError{Op:%q Rank:%d}, want {%q %d}", r, ce.Op, ce.Rank, op, r)
		}
	}
}

func TestNilBufferCooperative(t *testing.T) {
	// One rank passes nil; EVERY rank must get ErrNilBuffer, no deadlock.
	cases := []struct {
		op string
		fn func(d *comm.Device) error
	}{
		{"broadcast", func(d *comm.Device) error {
			var data []float32
			if d.Rank == 0 {
				data = nil // root's buffer is the nil one
			} else {
				data = []float32{1}
			}
			_, err := d.TryBroadcast(d.World(), 0, data)
			return err
		}},
		{"allgather", func(d *comm.Device) error {
			local := []float32{1}
			if d.Rank == 1 {
				local = nil
			}
			_, err := d.TryAllGather(d.World(), local)
			return err
		}},
		{"allreduce", func(d *comm.Device) error {
			local := []float32{1}
			if d.Rank == 0 {
				local = nil
			}
			_, err := d.TryAllReduceSum(d.World(), local)
			return err
		}},
		{"alltoall", func(d *comm.Device) error {
			parts := [][]float32{{1}, {2}}
			if d.Rank == 1 {
				parts = nil
			}
			_, err := d.TryAllToAll(d.World(), parts)
			return err
		}},
		{"reducescatter", func(d *comm.Device) error {
			local := []float32{1, 2}
			if d.Rank == 0 {
				local = nil
			}
			_, err := d.TryReduceScatterSum(d.World(), local, []int{1, 1})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.op, func(t *testing.T) {
			wantAll(t, collectErrs(t, 2, tc.fn), tc.op, comm.ErrNilBuffer)
		})
	}
}

func TestLengthMismatchCooperative(t *testing.T) {
	t.Run("allreduce", func(t *testing.T) {
		errs := collectErrs(t, 2, func(d *comm.Device) error {
			local := make([]float32, 2+d.Rank) // 2 elems on rank 0, 3 on rank 1
			_, err := d.TryAllReduceSum(d.World(), local)
			return err
		})
		wantAll(t, errs, "allreduce", comm.ErrLengthMismatch)
	})
	t.Run("reducescatter", func(t *testing.T) {
		errs := collectErrs(t, 2, func(d *comm.Device) error {
			// Rank 1's counts sum to its own (longer) buffer, so its
			// structural checks pass; the disagreement is only visible
			// once both contributions meet in the rendezvous.
			local := make([]float32, 2+2*d.Rank)
			counts := []int{1 + d.Rank, 1 + d.Rank}
			_, err := d.TryReduceScatterSum(d.World(), local, counts)
			return err
		})
		wantAll(t, errs, "reducescatter", comm.ErrLengthMismatch)
	})
}

func TestStructuralErrorsFailFast(t *testing.T) {
	// Structural misuse must surface from a single caller, with no
	// rendezvous (and therefore no other participating rank needed).
	f := comm.NewFabric(4, hw.A6000())
	d := f.Device(0)
	cases := []struct {
		name     string
		sentinel error
		err      error
	}{
		{"empty group", comm.ErrBadGroup, d.TryBarrier(nil)},
		{"unsorted group", comm.ErrBadGroup, d.TryBarrier([]int{1, 0})},
		{"duplicate rank", comm.ErrBadGroup, d.TryBarrier([]int{0, 0})},
		{"caller outside group", comm.ErrBadGroup, d.TryBarrier([]int{1, 2})},
		{"root outside group", comm.ErrBadGroup, func() error {
			_, err := d.TryBroadcast([]int{0, 1}, 3, []float32{1})
			return err
		}()},
		{"alltoall part count", comm.ErrCountMismatch, func() error {
			_, err := d.TryAllToAll([]int{0, 1}, [][]float32{{1}})
			return err
		}()},
		{"reducescatter count len", comm.ErrCountMismatch, func() error {
			_, err := d.TryReduceScatterSum([]int{0, 1}, []float32{1, 2}, []int{2})
			return err
		}()},
		{"reducescatter count sum", comm.ErrCountMismatch, func() error {
			_, err := d.TryReduceScatterSum([]int{0, 1}, []float32{1, 2, 3}, []int{1, 1})
			return err
		}()},
		{"reducescatter negative count", comm.ErrCountMismatch, func() error {
			_, err := d.TryReduceScatterSum([]int{0, 1}, []float32{1}, []int{2, -1})
			return err
		}()},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Fatalf("%s: expected error, got nil", tc.name)
		}
		if !errors.Is(tc.err, tc.sentinel) {
			t.Fatalf("%s: error %v does not wrap %v", tc.name, tc.err, tc.sentinel)
		}
	}
}

func TestSingleRankGroupErrors(t *testing.T) {
	f := comm.NewFabric(1, hw.A6000())
	d := f.Device(0)
	if _, err := d.TryBroadcast([]int{0}, 0, nil); !errors.Is(err, comm.ErrNilBuffer) {
		t.Fatalf("broadcast: %v", err)
	}
	if _, err := d.TryAllGather([]int{0}, nil); !errors.Is(err, comm.ErrNilBuffer) {
		t.Fatalf("allgather: %v", err)
	}
	if _, err := d.TryAllReduceSum([]int{0}, nil); !errors.Is(err, comm.ErrNilBuffer) {
		t.Fatalf("allreduce: %v", err)
	}
	if _, err := d.TryAllToAll([]int{0}, nil); !errors.Is(err, comm.ErrNilBuffer) {
		t.Fatalf("alltoall: %v", err)
	}
	if _, err := d.TryReduceScatterSum([]int{0}, nil, []int{0}); !errors.Is(err, comm.ErrNilBuffer) {
		t.Fatalf("reducescatter: %v", err)
	}
	// Zero-length non-nil buffers stay valid.
	if _, err := d.TryAllReduceSum([]int{0}, []float32{}); err != nil {
		t.Fatalf("empty buffer should be valid: %v", err)
	}
}

func TestFabricUsableAfterFailedCollective(t *testing.T) {
	// A failed round must not wedge the group: the same group must
	// complete a correct collective immediately afterwards, and the
	// failed round must meter no volume.
	var mu sync.Mutex
	sums := make(map[int]float32)
	f := runGuarded(t, 2, func(d *comm.Device) {
		local := []float32{1}
		if d.Rank == 0 {
			local = nil
		}
		if _, err := d.TryAllReduceSum(d.World(), local); !errors.Is(err, comm.ErrNilBuffer) {
			t.Errorf("rank %d: first round: %v", d.Rank, err)
		}
		got, err := d.TryAllReduceSum(d.World(), []float32{float32(d.Rank + 1)})
		if err != nil {
			t.Errorf("rank %d: second round: %v", d.Rank, err)
			return
		}
		mu.Lock()
		sums[d.Rank] = got[0]
		mu.Unlock()
	})
	for r, s := range sums {
		if s != 3 {
			t.Fatalf("rank %d: sum=%v want 3", r, s)
		}
	}
	if v := f.Volume(hw.OpAllReduce); v != 2*4*1 {
		t.Fatalf("only the successful round should meter volume: got %d want 8", v)
	}
	// Failed rounds still synchronize clocks: both devices agree.
	if f.Device(0).Clock() != f.Device(1).Clock() {
		t.Fatalf("clocks diverged: %v vs %v", f.Device(0).Clock(), f.Device(1).Clock())
	}
}

func TestPanicWrappersStillPanic(t *testing.T) {
	f := comm.NewFabric(2, hw.A6000())
	defer func() {
		err, ok := recover().(error)
		if !ok || !errors.Is(err, comm.ErrBadGroup) {
			t.Fatalf("wrapper should panic with the wrapped error, got %v", err)
		}
	}()
	f.Device(0).Barrier([]int{1, 0})
}

func TestCollectiveErrorFormat(t *testing.T) {
	inner := comm.ErrNilBuffer
	ce := &comm.CollectiveError{Op: "allgather", Rank: 3, Err: inner}
	want := "comm: allgather on rank 3: nil buffer"
	if ce.Error() != want {
		t.Fatalf("Error()=%q want %q", ce.Error(), want)
	}
	if !errors.Is(ce, inner) {
		t.Fatal("Unwrap should expose the cause")
	}
}

func TestSideChannelVolume(t *testing.T) {
	f := runGuarded(t, 2, func(d *comm.Device) {
		d.AllGather(d.World(), make([]float32, 4)) // primary: 2*16 bytes moved
		d.SetSideChannel(true)
		d.AllGather(d.World(), make([]float32, 2)) // side: 2*8 bytes moved
		d.SetSideChannel(false)
		d.AllGather(d.World(), make([]float32, 1)) // primary again: 2*4 bytes
	})
	const wantPrimary, wantSide = 32 + 8, 16
	if v := f.Volume(hw.OpAllGather); v != wantPrimary {
		t.Fatalf("primary volume=%d want %d", v, wantPrimary)
	}
	if v := f.SideVolume(hw.OpAllGather); v != wantSide {
		t.Fatalf("side volume=%d want %d", v, wantSide)
	}
	if v := f.TotalVolume(); v != wantPrimary+wantSide {
		t.Fatalf("total volume=%d want %d", v, wantPrimary+wantSide)
	}
	if v := f.TotalSideVolume(); v != wantSide {
		t.Fatalf("total side volume=%d want %d", v, wantSide)
	}
	if c := f.Calls(hw.OpAllGather); c != 3 {
		t.Fatalf("calls=%d want 3 (side-channel rounds still count)", c)
	}
	f.ResetVolumes()
	if f.TotalVolume() != 0 || f.TotalSideVolume() != 0 {
		t.Fatal("ResetVolumes must clear side-channel meters too")
	}
}
