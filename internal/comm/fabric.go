// Package comm implements the simulated multi-device fabric on which the
// GNN-RDM reproduction runs. Each simulated device is a goroutine with
// private buffers; collectives move real bytes between device memories
// (data is copied, never shared), meter the exact communicated volume,
// and advance per-device simulated clocks through the hw.Model.
//
// Clock semantics follow how distributed GPU time is measured in the
// paper: a collective synchronizes all participants to
// max(participant clocks) + modelled collective time, and the elapsed
// time (including skew wait) is charged to each participant's
// communication time. Compute kernels charge their modelled duration to
// compute time.
//
// Stat lifecycle: Fabric.ResetVolumes zeroes the volume/call counters
// only; Fabric.ResetStats additionally zeroes every device's
// clock/commTime/computeTime, so warm-up work can be excluded from both
// volume and time accounting. All stat readers (MaxClock, Volume,
// Device.Clock/CommTime/ComputeTime) and both resets are only safe when
// no Run is in flight.
//
// Tracing: attach an internal/trace Tracer with Fabric.SetTracer before
// Run and every kernel charge and collective is recorded as a trace
// event (collectives carry their exact metered volume). A nil tracer
// keeps the hot paths allocation-free.
//
// Error handling: every collective has a Try* variant returning an
// error; the short names are panicking wrappers for SPMD code where a
// collective failure is unrecoverable. See CollectiveError in errors.go
// for the cooperative delivery contract that keeps data errors (nil
// buffers, cross-rank length disagreement) from deadlocking the group.
package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
	"gnnrdm/internal/trace"
)

// Fabric is a set of P simulated devices sharing a communication fabric.
type Fabric struct {
	P  int
	HW *hw.Model

	devices []*Device

	mu     sync.Mutex
	groups map[string]*groupComm

	volumes [hw.NumCollectiveKinds]atomic.Int64 // bytes moved, indexed by hw.CollectiveKind
	calls   [hw.NumCollectiveKinds]atomic.Int64
	// sideVolumes meters collectives issued while a device's side-channel
	// flag is set (Device.SetSideChannel): mechanical traffic such as
	// byte-packed ReLU masks that the paper's §IV cost model deliberately
	// omits. Keeping it out of `volumes` lets model-versus-meter
	// comparisons stay byte-exact.
	sideVolumes [hw.NumCollectiveKinds]atomic.Int64

	// tierVol/tierSide split the same bytes by link tier when a topology
	// is attached (SetTopology): tierVol[topo.TierInter] is the share
	// that crossed inter-node links. Without a topology everything
	// meters on tier 0, so tierVol[0] == volumes for every kind.
	tierVol  [topo.NumTiers][hw.NumCollectiveKinds]atomic.Int64
	tierSide [topo.NumTiers][hw.NumCollectiveKinds]atomic.Int64

	// rankSent is the per-rank injection census of the variable-volume
	// collectives (TryAllToAllV / TryAllGatherV): the logical bytes each
	// rank contributed to V-rounds, independent of how the topology
	// routed them. Dense collectives do not touch it. See RankSent.
	rankSent []atomic.Int64

	// topology, when non-nil, switches every collective's time and byte
	// accounting from the flat linkModel path to the topology-aware
	// algorithm library (internal/topo); algs holds the per-kind
	// algorithm selection (default topo.Auto). Set before Run.
	topology *topo.Topology
	algs     [hw.NumCollectiveKinds]topo.Algorithm

	// tracer, when non-nil, records every kernel charge and collective
	// as a trace event. Set before Run via SetTracer; nil keeps tracing
	// disabled at zero cost.
	tracer *trace.Tracer

	// Fault-injection state (see RESILIENCE.md). deadMu guards dead and
	// is never held together with the fabric mu or a group mu, so
	// dead-marking can wake rendezvous groups without ordering hazards.
	deadMu sync.Mutex
	dead   map[int]string // rank -> cause, for crashed or exited devices

	hook     FaultHook
	retry    RetryPolicy
	crc      bool
	deadline float64 // simulated seconds charged per abandoned collective
	// linkAlpha/linkBeta hold per-rank link degradation multipliers
	// (nil = clean fabric); a collective runs at the worst multipliers
	// among its participants.
	linkAlpha, linkBeta []float64
}

// FaultHook lets a fault injector (internal/fault) observe and perturb
// fabric activity deterministically. Both methods are driven purely by
// simulated state, never wall time.
type FaultHook interface {
	// BeforeCollective runs on every device entering a collective,
	// before the rendezvous. It may panic with Killed to crash the
	// device at a scheduled simulated time; Fabric.Run contains the
	// crash and fails the victim's peers with ErrPeerDead.
	BeforeCollective(d *Device, op string)
	// OnRound runs once per rendezvous round, on whichever device
	// finalizes it, under the group lock, after cooperative data errors
	// are scanned and before the operation's own finalizer. slots holds
	// every participant's deposited payload ([]float32 or [][]float32,
	// indexed by group position); the hook may flip bits in them to
	// model wire corruption, and may return an error wrapping
	// ErrTransient to fail the round for every participant (retried
	// under the fabric's RetryPolicy). It must not call back into the
	// fabric, and it must tolerate concurrent calls from the finalizers
	// of disjoint groups.
	OnRound(d *Device, op string, group []int, seq uint64, slots []any) error
}

// RetryPolicy bounds the fabric's automatic retry of transient collective
// failures (rounds failed with ErrTransient or ErrCorrupt). Backoff is
// charged to the simulated clock, never wall time: retry k (1-based)
// waits Backoff·Multiplier^(k-1) simulated seconds before re-entering
// the rendezvous. The zero policy disables retries.
type RetryPolicy struct {
	Max        int     // retries after the first attempt; 0 disables
	Backoff    float64 // simulated seconds before the first retry
	Multiplier float64 // backoff growth per retry (values < 1 read as 1)
}

// DefaultRetryPolicy is the policy the elastic driver installs when none
// is configured: three retries starting at 100 simulated microseconds,
// doubling each time.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Max: 3, Backoff: 100e-6, Multiplier: 2}
}

// DefaultCollectiveDeadline is the simulated time a survivor waits
// before abandoning a rendezvous with a dead peer when no explicit
// deadline is configured (SetCollectiveDeadline): one simulated
// millisecond, far beyond any clean collective in the modelled regime.
const DefaultCollectiveDeadline = 1e-3

// NewFabric creates a fabric with p devices using the given hardware model.
func NewFabric(p int, model *hw.Model) *Fabric {
	if p < 1 {
		panic("comm: need at least one device")
	}
	f := &Fabric{P: p, HW: model, groups: make(map[string]*groupComm)}
	f.rankSent = make([]atomic.Int64, p)
	f.devices = make([]*Device, p)
	for r := 0; r < p; r++ {
		f.devices[r] = &Device{Rank: r, F: f}
	}
	return f
}

// Device returns the device with the given rank.
func (f *Fabric) Device(rank int) *Device { return f.devices[rank] }

// Run executes fn concurrently on every device and waits for completion.
//
// Fault containment: a device goroutine that panics with Killed (a
// scheduled crash from a fault injector) is marked dead, which fails any
// rendezvous its peers are blocked in with ErrPeerDead instead of
// hanging the fabric forever; the Killed value is then swallowed — the
// crash is the experiment, not a bug. Any other panic likewise marks the
// device dead so the survivors unblock and drain, but is re-raised
// (lowest rank first) once every goroutine has stopped. A device whose
// fn returns normally while peers are still communicating counts as
// departed the same way, so no rendezvous ever waits on a rank that can
// no longer arrive.
func (f *Fabric) Run(fn func(d *Device)) {
	f.deadMu.Lock()
	f.dead = nil // fabric reuse across Runs starts with a clean world
	f.deadMu.Unlock()
	panics := make([]any, f.P)
	var wg sync.WaitGroup
	for r := 0; r < f.P; r++ {
		wg.Add(1)
		go func(d *Device) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					panics[d.Rank] = rec
					cause := "panic"
					if k, ok := rec.(Killed); ok {
						cause = "killed: " + k.Reason
					}
					f.markDead(d.Rank, cause)
					return
				}
				f.markDead(d.Rank, "exited")
			}()
			fn(d)
		}(f.devices[r])
	}
	wg.Wait()
	for _, rec := range panics {
		if rec == nil {
			continue
		}
		if _, ok := rec.(Killed); ok {
			continue
		}
		panic(rec)
	}
}

// markDead records rank as unable to ever rejoin a rendezvous and wakes
// every group so blocked participants observe the death.
func (f *Fabric) markDead(rank int, cause string) {
	f.deadMu.Lock()
	if f.dead == nil {
		f.dead = make(map[int]string)
	}
	f.dead[rank] = cause
	f.deadMu.Unlock()
	f.mu.Lock()
	groups := make([]*groupComm, 0, len(f.groups))
	for _, g := range f.groups {
		groups = append(groups, g)
	}
	f.mu.Unlock()
	for _, g := range groups {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	}
}

// deadIn returns a peer-dead error naming the first dead member of
// group, or nil when every member is live.
func (f *Fabric) deadIn(group []int) error {
	f.deadMu.Lock()
	defer f.deadMu.Unlock()
	if len(f.dead) == 0 {
		return nil
	}
	for _, r := range group {
		if cause, ok := f.dead[r]; ok {
			return fmt.Errorf("rank %d (%s): %w", r, cause, ErrPeerDead)
		}
	}
	return nil
}

// SetFaultHook attaches a fault injector's hook (nil detaches). Call
// before Run.
func (f *Fabric) SetFaultHook(h FaultHook) { f.hook = h }

// SetRetryPolicy configures automatic retry of transient/corrupt
// collective rounds. The zero policy (the default) disables retries, so
// the first transient failure surfaces as a *FaultError.
func (f *Fabric) SetRetryPolicy(rp RetryPolicy) { f.retry = rp }

// EnableCRC arms the CRC32 side-channel: each collective round's
// payloads are checksummed before the fault hook runs and verified
// after it, so injected wire corruption surfaces as an ErrCorrupt round
// (retried under the RetryPolicy) instead of silently poisoning
// training. The checksums ride the existing rendezvous and move no
// extra metered bytes; with no hook attached the channel costs nothing.
// Disabled by default.
func (f *Fabric) EnableCRC(on bool) { f.crc = on }

// SetCollectiveDeadline sets the simulated-time deadline a survivor is
// charged when abandoning a rendezvous with a dead peer; seconds <= 0
// restores DefaultCollectiveDeadline.
func (f *Fabric) SetCollectiveDeadline(seconds float64) { f.deadline = seconds }

func (f *Fabric) collectiveDeadline() float64 {
	if f.deadline > 0 {
		return f.deadline
	}
	return DefaultCollectiveDeadline
}

// SetLinkFault degrades one device's link: subsequent collectives
// involving rank pay alphaMul× the latency and 1/betaMul× the bandwidth
// of the base model (a collective runs at the worst multipliers among
// its participants). Multipliers <= 1 mark the link clean. Call before
// Run.
func (f *Fabric) SetLinkFault(rank int, alphaMul, betaMul float64) {
	if f.linkAlpha == nil {
		f.linkAlpha = make([]float64, f.P)
		f.linkBeta = make([]float64, f.P)
		for i := range f.linkAlpha {
			f.linkAlpha[i], f.linkBeta[i] = 1, 1
		}
	}
	if alphaMul < 1 {
		alphaMul = 1
	}
	if betaMul < 1 {
		betaMul = 1
	}
	f.linkAlpha[rank], f.linkBeta[rank] = alphaMul, betaMul
}

// linkModel returns the hw model a collective over group runs at: the
// base model degraded by the worst per-rank link-fault multipliers among
// the participants. Clean fabrics return the base model unchanged.
func (f *Fabric) linkModel(group []int) *hw.Model {
	if f.linkAlpha == nil {
		return f.HW
	}
	alpha, beta := 1.0, 1.0
	for _, r := range group {
		if f.linkAlpha[r] > alpha {
			alpha = f.linkAlpha[r]
		}
		if f.linkBeta[r] > beta {
			beta = f.linkBeta[r]
		}
	}
	if alpha == 1 && beta == 1 {
		return f.HW
	}
	return f.HW.Degraded(alpha, beta)
}

// SeedClocks presets every device's simulated clock (one entry per
// rank). The elastic driver uses it to carry survivors' clocks across
// fabric re-formation so recovery time accrues on a continuous
// timeline. Call before Run.
func (f *Fabric) SeedClocks(clocks []float64) {
	if len(clocks) != f.P {
		panic("comm: SeedClocks needs exactly one clock per device")
	}
	for i, d := range f.devices {
		d.clock = clocks[i]
	}
}

// Run creates a fabric of p devices, executes fn on each, and returns the
// fabric for metric inspection.
func Run(p int, model *hw.Model, fn func(d *Device)) *Fabric {
	f := NewFabric(p, model)
	f.Run(fn)
	return f
}

// Volume returns the total bytes moved across device boundaries by
// collectives of the given kind since fabric creation (or the last
// ResetVolumes), excluding side-channel traffic (see SideVolume).
func (f *Fabric) Volume(kind hw.CollectiveKind) int64 { return f.volumes[kind].Load() }

// SideVolume returns the bytes moved by collectives of the given kind
// while the issuing devices had their side-channel flag set
// (Device.SetSideChannel) — e.g. the byte-packed ReLU masks of
// dist.RedistributeMask.
func (f *Fabric) SideVolume(kind hw.CollectiveKind) int64 { return f.sideVolumes[kind].Load() }

// TotalVolume returns the total bytes moved across device boundaries by
// all collectives, including side-channel traffic.
func (f *Fabric) TotalVolume() int64 {
	var s int64
	for i := range f.volumes {
		s += f.volumes[i].Load() + f.sideVolumes[i].Load()
	}
	return s
}

// TotalSideVolume returns the total side-channel bytes across all kinds.
func (f *Fabric) TotalSideVolume() int64 {
	var s int64
	for i := range f.sideVolumes {
		s += f.sideVolumes[i].Load()
	}
	return s
}

// Calls returns the number of collectives of the given kind executed.
func (f *Fabric) Calls(kind hw.CollectiveKind) int64 { return f.calls[kind].Load() }

// RankSent returns the bytes rank injected into variable-volume
// collectives (TryAllToAllV: the rank's cross-pair part bytes;
// TryAllGatherV: the rank's chunk replicated to each peer). The census
// is logical — defined by what each rank contributed, not by how a
// topology routed the bytes — so it is identical under flat and
// hierarchical pricing, and on a flat fabric the ranks sum to the
// V-collectives' metered volume (primary plus side channel).
func (f *Fabric) RankSent(rank int) int64 { return f.rankSent[rank].Load() }

// TierVolume returns the bytes of the given kind that crossed links of
// the given tier (topo.TierIntra or topo.TierInter), excluding
// side-channel traffic. Summed over tiers it equals Volume(kind); on a
// fabric without a topology everything lands on tier 0.
func (f *Fabric) TierVolume(kind hw.CollectiveKind, tier int) int64 {
	return f.tierVol[tier][kind].Load()
}

// SideTierVolume is TierVolume for side-channel traffic.
func (f *Fabric) SideTierVolume(kind hw.CollectiveKind, tier int) int64 {
	return f.tierSide[tier][kind].Load()
}

// ResetVolumes zeroes the volume and call counters (e.g. after warmup).
// Must not race with in-flight collectives.
func (f *Fabric) ResetVolumes() {
	for i := range f.volumes {
		f.volumes[i].Store(0)
		f.sideVolumes[i].Store(0)
		f.calls[i].Store(0)
		for t := 0; t < topo.NumTiers; t++ {
			f.tierVol[t][i].Store(0)
			f.tierSide[t][i].Store(0)
		}
	}
	for i := range f.rankSent {
		f.rankSent[i].Store(0)
	}
}

// ResetStats zeroes every fabric-level counter (volumes and calls, like
// ResetVolumes) AND every device's clock/commTime/computeTime
// accumulator, so warm-up epochs can be excluded from both volume and
// time accounting. It must only be called when no Run is in flight: the
// per-device stats are written without synchronization by the device
// goroutines, so resetting mid-run is a data race (the same restriction
// applies to reading MaxClock, Device.Clock, Device.CommTime, and
// Device.ComputeTime).
func (f *Fabric) ResetStats() {
	f.ResetVolumes()
	for _, d := range f.devices {
		d.clock, d.commTime, d.computeTime = 0, 0, 0
	}
}

// SetTracer attaches an event tracer and opens one trace session for
// this fabric, labelled label. Call before Run; passing a nil tracer is
// a no-op. Each fabric should get exactly one session, so attach a fresh
// fabric for every traced run.
func (f *Fabric) SetTracer(t *trace.Tracer, label string) {
	if t == nil {
		return
	}
	t.StartSession(label, f.P)
	f.tracer = t
}

// Tracer returns the attached tracer (nil when tracing is disabled).
func (f *Fabric) Tracer() *trace.Tracer { return f.tracer }

// MaxClock returns the maximum simulated clock across devices. Like all
// stat readers it is only safe when no Run is in flight.
func (f *Fabric) MaxClock() float64 {
	m := 0.0
	for _, d := range f.devices {
		if d.clock > m {
			m = d.clock
		}
	}
	return m
}

func (f *Fabric) addVolume(kind hw.CollectiveKind, vol Volume, side bool) {
	if side {
		f.sideVolumes[kind].Add(vol.Bytes)
		f.tierSide[topo.TierIntra][kind].Add(vol.Bytes - vol.Tier1)
		f.tierSide[topo.TierInter][kind].Add(vol.Tier1)
	} else {
		f.volumes[kind].Add(vol.Bytes)
		f.tierVol[topo.TierIntra][kind].Add(vol.Bytes - vol.Tier1)
		f.tierVol[topo.TierInter][kind].Add(vol.Tier1)
	}
	f.calls[kind].Add(1)
}

// groupComm is a reusable two-phase rendezvous for one device group.
type groupComm struct {
	mu       sync.Mutex
	cond     *sync.Cond
	n        int
	arrived  int
	readers  int
	gen      uint64
	slots    []any
	clocks   []float64
	newClock float64
	vol      Volume // round's metered volume, shared with every member
	aux      any    // round-scoped value passed from finalize to extract
	err      error  // round's failure, delivered to every member
}

func (f *Fabric) groupFor(ranks []int) (*groupComm, string) {
	key := groupKey(ranks)
	f.mu.Lock()
	defer f.mu.Unlock()
	g, ok := f.groups[key]
	if !ok {
		g = &groupComm{n: len(ranks), slots: make([]any, len(ranks)), clocks: make([]float64, len(ranks))}
		g.cond = sync.NewCond(&g.mu)
		f.groups[key] = g
	}
	return g, key
}

func groupKey(ranks []int) string {
	b := make([]byte, 0, 4*len(ranks))
	for i, r := range ranks {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(r), 10)
	}
	return string(b)
}

// exchange runs one rendezvous round: every group member deposits a
// contribution; the last arriver runs finalize (which computes the new
// synchronized clock, does volume accounting, and reports the round's
// metered volume, or fails the round with an error); every member then
// runs extract over the complete slot array before the slots are
// recycled. Both callbacks run under the group lock and must not call
// back into the fabric. The return values are the synchronized clock,
// the round's metered volume, the round's sequence number within this
// group (for trace attribution), and the round's error, identical on
// every member. extract is skipped on a failed round.
//
// dead, when non-nil, is consulted at entry and on every wakeup while
// waiting for peers: a non-nil result abandons the round (withdrawing
// any deposit, so the group stays reusable) and is returned with the
// caller's clock unchanged. Fabric.markDead broadcasts every group's
// cond, so a member blocked on a crashed peer re-checks promptly. A
// round that has already finalized is always drained normally — death
// only aborts rendezvous that can no longer complete.
func (g *groupComm) exchange(idx int, clock float64, in any,
	finalize func(slots []any, clocks []float64) (float64, any, Volume, error),
	extract func(slots []any, aux any),
	dead func() error) (float64, Volume, uint64, error) {

	g.mu.Lock()
	defer g.mu.Unlock()
	for g.readers > 0 { // previous round still draining
		g.cond.Wait()
	}
	if dead != nil {
		if err := dead(); err != nil {
			return clock, Volume{}, g.gen, err
		}
	}
	g.slots[idx] = in
	g.clocks[idx] = clock
	g.arrived++
	if g.arrived == g.n {
		g.newClock, g.aux, g.vol, g.err = finalize(g.slots, g.clocks)
		g.arrived = 0
		g.readers = g.n
		g.gen++
		g.cond.Broadcast()
	} else {
		gen := g.gen
		for g.gen == gen {
			g.cond.Wait()
			if g.gen == gen && dead != nil {
				if err := dead(); err != nil {
					g.slots[idx] = nil
					g.arrived--
					return clock, Volume{}, g.gen, err
				}
			}
		}
	}
	// Capture the round's results before giving up our reader slot: the
	// last reader resets aux/err for the next round, and once we start
	// waiting for the drain a fast next round could overwrite
	// newClock/vol/gen.
	clockOut, volOut, genOut, errOut := g.newClock, g.vol, g.gen, g.err
	if extract != nil && errOut == nil {
		extract(g.slots, g.aux)
	}
	g.readers--
	if g.readers == 0 {
		for i := range g.slots {
			g.slots[i] = nil
		}
		if s, ok := g.aux.(scratch); ok {
			putScratch(s) // pooled reduction scratch, fully drained
		}
		g.aux, g.err = nil, nil
		g.cond.Broadcast()
	} else {
		// Wait for the round to drain completely before returning, so no
		// participant can mutate a deposited buffer while another is
		// still copying from it.
		for g.readers > 0 {
			g.cond.Wait()
		}
	}
	return clockOut, volOut, genOut, errOut
}

// Device is one simulated GPU: a rank, private simulated clock, and
// time/volume accounting.
type Device struct {
	Rank int
	F    *Fabric

	clock       float64
	commTime    float64
	computeTime float64
	side        bool // route collective volume to the side-channel meters

	slow       float64 // straggler multiplier for kernel charges; <= 1 off
	faultEpoch int     // driver-maintained global epoch tag (SetFaultEpoch)
	track      int     // trace track (hw.Resource index); 0 on base devices
}

// Lane returns a view of this device bound to one resource timeline
// (track follows hw.Resource numbering: 1 = intra-node link, 2 =
// inter-node link). The overlap executor (core.Options.Overlap) gives
// each resource its own lane so independent ops advance independent
// clocks; charges and collectives on a lane work exactly as on the base
// device but emit trace events on the lane's track. A lane starts at the
// base device's current clock with zeroed time accumulators — merge it
// back with MergeLane at a synchronization point. Only one goroutine may
// drive a given lane, and only one lane per rank may enter any given
// collective round.
func (d *Device) Lane(track int) *Device {
	return &Device{
		Rank: d.Rank, F: d.F,
		clock:      d.clock,
		side:       d.side,
		slow:       d.slow,
		faultEpoch: d.faultEpoch,
		track:      track,
	}
}

// MergeLane folds a lane back into this device: the clock advances to
// the lane's (max), and the lane's accumulated comm/compute time — which
// started from zero at Lane() — is added on.
func (d *Device) MergeLane(l *Device) {
	if l.clock > d.clock {
		d.clock = l.clock
	}
	d.commTime += l.commTime
	d.computeTime += l.computeTime
}

// AdvanceClock moves the device's clock forward to t if t is later,
// modelling a wait on a dependency that finished at t on another lane.
// The waiting time is idle, so no accumulator is charged.
func (d *Device) AdvanceClock(t float64) {
	if t > d.clock {
		d.clock = t
	}
}

// Track returns the trace track this device (or lane) emits on.
func (d *Device) Track() int { return d.track }

// SetComputeSlowdown makes this device a straggler: subsequent kernel
// charges take factor× their modelled time. factor <= 1 clears it. Fault
// injectors set it before Run; mid-run only the owning device goroutine
// may call it.
func (d *Device) SetComputeSlowdown(factor float64) {
	if factor <= 1 {
		factor = 0
	}
	d.slow = factor
}

// SetFaultEpoch tags this device with the training driver's global epoch
// number so epoch-addressed fault events (crashes, flips, drops) fire at
// the right point even after checkpoint rollback re-runs earlier epochs
// on a new fabric. Only the owning device goroutine may call it mid-run.
func (d *Device) SetFaultEpoch(epoch int) { d.faultEpoch = epoch }

// FaultEpoch returns the tag set by SetFaultEpoch.
func (d *Device) FaultEpoch() int { return d.faultEpoch }

// SetSideChannel routes this device's subsequent collective volume into
// the fabric's side-channel meters (Fabric.SideVolume) instead of the
// primary ones. Used for mechanical traffic — e.g. the byte-packed ReLU
// masks of dist.RedistributeMask — that the paper's cost model does not
// count, so the primary meters stay byte-comparable to costmodel
// predictions. A round is metered by the device that happens to finalize
// it, so SPMD callers must toggle the flag on every participant around
// the same collectives.
func (d *Device) SetSideChannel(on bool) { d.side = on }

// Clock returns the device's simulated time in seconds.
func (d *Device) Clock() float64 { return d.clock }

// CommTime returns the accumulated simulated communication time
// (including synchronization skew, as NCCL timing would observe).
func (d *Device) CommTime() float64 { return d.commTime }

// ComputeTime returns the accumulated simulated kernel time.
func (d *Device) ComputeTime() float64 { return d.computeTime }

// P returns the fabric size.
func (d *Device) P() int { return d.F.P }

// World returns the all-ranks group [0, 1, ..., P-1].
func (d *Device) World() []int {
	g := make([]int, d.F.P)
	for i := range g {
		g[i] = i
	}
	return g
}

// ChargeGemm advances the clock by the modelled time of an m x k x n GEMM.
func (d *Device) ChargeGemm(m, k, n int) {
	t := d.F.HW.GemmTime(m, k, n)
	d.chargeKernel("gemm", t, 0, int64(m)*int64(k)*int64(n))
}

// ChargeSpMM advances the clock by the modelled time of an SpMM with the
// given stored-entry count and dense width.
func (d *Device) ChargeSpMM(nnz int64, f int) {
	t := d.F.HW.SpMMTime(nnz, f)
	d.chargeKernel("spmm", t, 0, nnz*int64(f))
}

// ChargeMem advances the clock by the modelled time of a memory-bound
// kernel touching the given bytes.
func (d *Device) ChargeMem(bytes int64) {
	t := d.F.HW.MemTime(bytes)
	d.chargeKernel("mem", t, bytes, 0)
}

// chargeKernel advances the clock and compute-time accumulator and, when
// tracing is enabled, records the kernel interval.
func (d *Device) chargeKernel(op string, t float64, bytes, flops int64) {
	if d.slow > 1 {
		t *= d.slow
	}
	start := d.clock
	d.clock += t
	d.computeTime += t
	if tr := d.F.tracer; tr != nil {
		tr.Emit(d.Rank, trace.Event{
			Class: trace.ClassKernel, Op: op,
			Bytes: bytes, Flops: flops,
			Start: start, End: d.clock, Track: d.track,
		})
	}
}

// TraceSetEpoch tags subsequent trace events from this device with the
// epoch number. No-op (and allocation-free) when tracing is disabled,
// like every Trace* method below.
func (d *Device) TraceSetEpoch(epoch int) {
	if tr := d.F.tracer; tr != nil {
		tr.SetEpochAt(d.Rank, d.track, epoch)
	}
}

// TraceSetLayer tags subsequent trace events with the layer number
// (0 = outside any layer).
func (d *Device) TraceSetLayer(layer int) {
	if tr := d.F.tracer; tr != nil {
		tr.SetLayerAt(d.Rank, d.track, layer)
	}
}

// TraceSetStep tags subsequent trace events with a plan-schedule step
// ID (0 = outside any scheduled op).
func (d *Device) TraceSetStep(step int) {
	if tr := d.F.tracer; tr != nil {
		tr.SetStepAt(d.Rank, d.track, step)
	}
}

// TraceSetDir tags subsequent trace events with the pass direction
// ("fwd", "bwd", or "").
func (d *Device) TraceSetDir(dir string) {
	if tr := d.F.tracer; tr != nil {
		tr.SetDirAt(d.Rank, d.track, dir)
	}
}

// TraceSetConfig tags subsequent trace events with the run's ordering
// configuration string.
func (d *Device) TraceSetConfig(cfg string) {
	if tr := d.F.tracer; tr != nil {
		tr.SetConfigAt(d.Rank, d.track, cfg)
	}
}

// TraceBeginPhase opens a named phase interval at the current simulated
// clock. Phases nest; close with TraceEndPhase.
func (d *Device) TraceBeginPhase(name string) {
	if tr := d.F.tracer; tr != nil {
		tr.BeginPhaseAt(d.Rank, d.track, name, d.clock)
	}
}

// TraceEndPhase closes the innermost open phase at the current simulated
// clock.
func (d *Device) TraceEndPhase() {
	if tr := d.F.tracer; tr != nil {
		tr.EndPhaseAt(d.Rank, d.track, d.clock)
	}
}

func validateGroup(ranks []int) error {
	if len(ranks) == 0 {
		return fmt.Errorf("empty group: %w", ErrBadGroup)
	}
	if !sort.IntsAreSorted(ranks) {
		return fmt.Errorf("group must be sorted %v: %w", ranks, ErrBadGroup)
	}
	for i := 1; i < len(ranks); i++ {
		if ranks[i] == ranks[i-1] {
			return fmt.Errorf("duplicate rank in group %v: %w", ranks, ErrBadGroup)
		}
	}
	return nil
}

// groupPos validates group and locates this device in it. Failures are
// structural misuse — necessarily identical on every correctly-written
// SPMD rank — so they are rejected before any rendezvous and surface
// immediately even from a single misbehaving caller.
func (d *Device) groupPos(op string, group []int) (int, error) {
	if err := validateGroup(group); err != nil {
		return 0, &CollectiveError{Op: op, Rank: d.Rank, Err: err}
	}
	idx := indexOf(group, d.Rank)
	if idx < 0 {
		return 0, &CollectiveError{Op: op, Rank: d.Rank,
			Err: fmt.Errorf("rank %d not in group %v: %w", d.Rank, group, ErrBadGroup)}
	}
	return idx, nil
}

// collective runs the common rendezvous pattern, charges comm time, and
// records a trace event carrying the round's metered volume. The caller
// must already have validated its group membership (groupPos). finalize
// additionally returns that volume (it still performs its own addVolume
// accounting, so zero-volume collectives like Barrier can opt out of the
// call counters) or fails the round. Deposited collErr contributions are
// scanned before finalize runs, so per-rank data errors reach every
// participant. On a failed round every participant's clock still
// advances to the synchronized value — the rendezvous happened — but no
// trace event is emitted and the identical cause is returned to all
// ranks, wrapped per-rank in a CollectiveError.
//
// Fault handling (see RESILIENCE.md): a dead peer abandons the
// rendezvous, charges the fabric's collective deadline, and returns a
// *FaultError wrapping ErrPeerDead. A transient or corrupt round is
// retried under the RetryPolicy with exponential backoff charged to the
// simulated clock; exhausted budgets surface as a *FaultError too. Every
// decision in this loop depends only on the deterministic round error,
// identical on all participants, so survivors stay in SPMD lockstep —
// all of them retry, or all of them abort.
func (d *Device) collective(op string, group []int, in any,
	finalize func(slots []any, clocks []float64) (float64, any, Volume, error),
	extract func(slots []any, aux any)) error {

	f := d.F
	if h := f.hook; h != nil {
		h.BeforeCollective(d, op) // may panic Killed: a scheduled crash
	}
	idx := indexOf(group, d.Rank)
	g, key := f.groupFor(group)
	deadCheck := func() error { return f.deadIn(group) }
	wrapped := func(slots []any, clocks []float64) (float64, any, Volume, error) {
		if err := slotErr(slots); err != nil {
			return maxClock(clocks), nil, Volume{}, err
		}
		if h := f.hook; h != nil {
			var sums []uint32
			var saved []any
			if f.crc {
				sums = crcPayloads(slots)
				saved = clonePayloads(slots)
			}
			if err := h.OnRound(d, op, group, g.gen, slots); err != nil {
				return maxClock(clocks), nil, Volume{}, err
			}
			if sums != nil {
				if i := crcMismatch(slots, sums); i >= 0 {
					// The flip happened on the wire, not in the senders'
					// memories: restore the deposited buffers so a retry
					// retransmits clean data.
					restorePayloads(slots, saved)
					return maxClock(clocks), nil, Volume{}, fmt.Errorf(
						"checksum mismatch on contribution from group position %d: %w",
						i, ErrCorrupt)
				}
			}
		}
		return finalize(slots, clocks)
	}
	attempt := 0
	for {
		before := d.clock
		newClock, vol, seq, err := g.exchange(idx, d.clock, in, wrapped, extract, deadCheck)
		switch {
		case err == nil:
			d.clock = newClock
			d.commTime += newClock - before
			if tr := f.tracer; tr != nil {
				tr.Emit(d.Rank, trace.Event{
					Class: trace.ClassCollective, Op: op,
					Group: key, Seq: seq, GroupSize: len(group),
					Bytes: vol.Bytes, Tier1: vol.Tier1,
					Start: before, End: newClock, Track: d.track,
				})
			}
			return nil
		case errors.Is(err, ErrPeerDead):
			// The survivor waits out the deadline before concluding the
			// peer is gone; the charge lands on comm time like the skew
			// wait of a live collective would.
			end := before + f.collectiveDeadline()
			d.clock = end
			d.commTime += end - before
			d.emitFault("timeout:"+op, key, len(group), before, end)
			return &FaultError{Op: op, Rank: d.Rank, Err: err}
		case errors.Is(err, ErrTransient) || errors.Is(err, ErrCorrupt):
			d.clock = newClock
			d.commTime += newClock - before
			attempt++
			rp := f.retry
			if attempt > rp.Max {
				d.emitFault("giveup:"+op, key, len(group), before, d.clock)
				return &FaultError{Op: op, Rank: d.Rank, Err: err}
			}
			mult := rp.Multiplier
			if mult < 1 {
				mult = 1
			}
			backoff := rp.Backoff
			for i := 1; i < attempt; i++ {
				backoff *= mult
			}
			d.clock += backoff
			d.commTime += backoff
			d.emitFault("retry:"+op, key, len(group), before, d.clock)
		default:
			d.clock = newClock
			d.commTime += newClock - before
			return &CollectiveError{Op: op, Rank: d.Rank, Err: err}
		}
	}
}

// emitFault records a ClassFault interval (retry backoff, peer-dead
// deadline) on this device's timeline.
func (d *Device) emitFault(op, group string, size int, start, end float64) {
	if tr := d.F.tracer; tr != nil {
		tr.Emit(d.Rank, trace.Event{
			Class: trace.ClassFault, Op: op,
			Group: group, GroupSize: size,
			Start: start, End: end, Track: d.track,
		})
	}
}

// crcPayloads checksums each deposited payload; crcMismatch re-verifies
// after the fault hook ran and returns the first corrupted group
// position (or -1). Together they are the CRC side-channel of
// Fabric.EnableCRC.
func crcPayloads(slots []any) []uint32 {
	sums := make([]uint32, len(slots))
	for i, s := range slots {
		sums[i] = crcOf(s)
	}
	return sums
}

func crcMismatch(slots []any, sums []uint32) int {
	for i, s := range slots {
		if crcOf(s) != sums[i] {
			return i
		}
	}
	return -1
}

// clonePayloads/restorePayloads snapshot the deposited buffers around
// the fault hook so CRC-detected wire corruption can be rolled back
// before the retry redeposits the same (sender-owned) buffers.
func clonePayloads(slots []any) []any {
	out := make([]any, len(slots))
	for i, s := range slots {
		switch v := s.(type) {
		case []float32:
			out[i] = append([]float32(nil), v...)
		case [][]float32:
			cp := make([][]float32, len(v))
			for j, part := range v {
				cp[j] = append([]float32(nil), part...)
			}
			out[i] = cp
		}
	}
	return out
}

func restorePayloads(slots, saved []any) {
	for i, s := range slots {
		switch v := s.(type) {
		case []float32:
			if sv, ok := saved[i].([]float32); ok {
				copy(v, sv)
			}
		case [][]float32:
			if sv, ok := saved[i].([][]float32); ok {
				for j := range v {
					copy(v[j], sv[j])
				}
			}
		}
	}
}

func crcOf(s any) uint32 {
	h := crc32.NewIEEE()
	var word [4]byte
	add := func(buf []float32) {
		for _, v := range buf {
			binary.LittleEndian.PutUint32(word[:], math.Float32bits(v))
			h.Write(word[:])
		}
	}
	switch v := s.(type) {
	case []float32:
		add(v)
	case [][]float32:
		for _, part := range v {
			add(part)
		}
	}
	return h.Sum32()
}

// TryBroadcast sends root's buffer to every member of group and returns
// each member's private copy (root returns the original buffer). group
// must be sorted; root is a rank, not an index. A nil root buffer is
// reported cooperatively to every member as ErrNilBuffer.
func (d *Device) TryBroadcast(group []int, root int, data []float32) ([]float32, error) {
	const op = "broadcast"
	if _, err := d.groupPos(op, group); err != nil {
		return nil, err
	}
	rootIdx := indexOf(group, root)
	if rootIdx < 0 {
		return nil, &CollectiveError{Op: op, Rank: d.Rank,
			Err: fmt.Errorf("root %d not in group %v: %w", root, group, ErrBadGroup)}
	}
	if len(group) == 1 {
		if data == nil {
			return nil, &CollectiveError{Op: op, Rank: d.Rank,
				Err: fmt.Errorf("root buffer: %w", ErrNilBuffer)}
		}
		return data, nil
	}
	var out []float32
	f := d.F
	var contribution any
	if d.Rank == root {
		if data == nil {
			contribution = collErr{fmt.Errorf("root buffer on rank %d: %w", d.Rank, ErrNilBuffer)}
		} else {
			contribution = data
		}
	}
	err := d.collective(op, group, contribution,
		func(slots []any, clocks []float64) (float64, any, Volume, error) {
			buf := slots[rootIdx].([]float32)
			t, vol := f.MeterFor(group).Broadcast(group, rootIdx, int64(len(buf))*4)
			f.addVolume(hw.OpBroadcast, vol, d.side)
			return maxClock(clocks) + t, nil, vol, nil
		},
		func(slots []any, _ any) {
			if d.Rank == root {
				out = data
				return
			}
			src := slots[rootIdx].([]float32)
			out = append(make([]float32, 0, len(src)), src...)
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Broadcast is TryBroadcast panicking on failure, for SPMD code where a
// collective error is unrecoverable.
func (d *Device) Broadcast(group []int, root int, data []float32) []float32 {
	out, err := d.TryBroadcast(group, root, data)
	if err != nil {
		panic(err)
	}
	return out
}

// TryAllGather exchanges every member's buffer; the result is indexed by
// group position. Entries for other ranks are private copies. A nil
// local buffer (zero-length non-nil is valid) is reported cooperatively
// to every member as ErrNilBuffer.
func (d *Device) TryAllGather(group []int, local []float32) ([][]float32, error) {
	const op = "allgather"
	myIdx, err := d.groupPos(op, group)
	if err != nil {
		return nil, err
	}
	if len(group) == 1 {
		if local == nil {
			return nil, &CollectiveError{Op: op, Rank: d.Rank,
				Err: fmt.Errorf("local buffer: %w", ErrNilBuffer)}
		}
		return [][]float32{local}, nil
	}
	if nodes, ok := d.F.stagedHier(hw.OpAllGather, group); ok {
		return d.hierAllGather(group, local, nodes)
	}
	out := make([][]float32, len(group))
	var contribution any = local
	if local == nil {
		contribution = collErr{fmt.Errorf("local buffer on rank %d: %w", d.Rank, ErrNilBuffer)}
	}
	cerr := d.collective(op, group, contribution,
		d.allGatherFinalize(group),
		func(slots []any, _ any) {
			for i, s := range slots {
				src := s.([]float32)
				if i == myIdx {
					out[i] = local
					continue
				}
				out[i] = append(make([]float32, 0, len(src)), src...)
			}
		})
	if cerr != nil {
		return nil, cerr
	}
	return out, nil
}

// allGatherFinalize is the shared rendezvous finalizer of TryAllGather
// and TryAllGatherFlat: price + meter the round from the deposited
// chunk lengths.
func (d *Device) allGatherFinalize(group []int) func(slots []any, clocks []float64) (float64, any, Volume, error) {
	f := d.F
	return func(slots []any, clocks []float64) (float64, any, Volume, error) {
		chunks := make([]int64, len(slots))
		for i, s := range slots {
			chunks[i] = int64(len(s.([]float32))) * 4
		}
		t, vol := f.MeterFor(group).AllGather(group, chunks)
		f.addVolume(hw.OpAllGather, vol, d.side)
		return maxClock(clocks) + t, nil, vol, nil
	}
}

// TryAllGatherFlat gathers every member's buffer concatenated in group
// order into dst (grown as needed, so steady-state callers re-use one
// buffer and the gather allocates nothing), returning dst[:total].
// This is the copy-eliminating fast path of the engine's column-group
// feature gather: the per-member private copies TryAllGather hands out
// are skipped entirely — each member's bytes are written once, at
// their final offset. Time, metering and error behavior are identical
// to TryAllGather.
func (d *Device) TryAllGatherFlat(group []int, local, dst []float32) ([]float32, error) {
	const op = "allgather"
	if _, err := d.groupPos(op, group); err != nil {
		return nil, err
	}
	if len(group) == 1 {
		if local == nil {
			return nil, &CollectiveError{Op: op, Rank: d.Rank,
				Err: fmt.Errorf("local buffer: %w", ErrNilBuffer)}
		}
		return append(dst[:0], local...), nil
	}
	if nodes, ok := d.F.stagedHier(hw.OpAllGather, group); ok {
		parts, err := d.hierAllGather(group, local, nodes)
		if err != nil {
			return nil, err
		}
		dst = dst[:0]
		for _, part := range parts {
			dst = append(dst, part...)
		}
		return dst, nil
	}
	var contribution any = local
	if local == nil {
		contribution = collErr{fmt.Errorf("local buffer on rank %d: %w", d.Rank, ErrNilBuffer)}
	}
	cerr := d.collective(op, group, contribution,
		d.allGatherFinalize(group),
		func(slots []any, _ any) {
			total := 0
			for _, s := range slots {
				total += len(s.([]float32))
			}
			if cap(dst) < total {
				dst = make([]float32, total)
			}
			dst = dst[:total]
			at := 0
			for _, s := range slots {
				src := s.([]float32)
				copy(dst[at:], src)
				at += len(src)
			}
		})
	if cerr != nil {
		return nil, cerr
	}
	return dst, nil
}

// AllGatherFlat is TryAllGatherFlat panicking on failure.
func (d *Device) AllGatherFlat(group []int, local, dst []float32) []float32 {
	out, err := d.TryAllGatherFlat(group, local, dst)
	if err != nil {
		panic(err)
	}
	return out
}

// AllGather is TryAllGather panicking on failure.
func (d *Device) AllGather(group []int, local []float32) [][]float32 {
	out, err := d.TryAllGather(group, local)
	if err != nil {
		panic(err)
	}
	return out
}

// TryAllReduceSum element-wise sums every member's buffer and returns a
// private copy of the sum on each member. Buffers must share a length:
// ranks disagreeing is reported to every member as ErrLengthMismatch
// (naming both group positions), and a nil local buffer as ErrNilBuffer.
func (d *Device) TryAllReduceSum(group []int, local []float32) ([]float32, error) {
	const op = "allreduce"
	if _, err := d.groupPos(op, group); err != nil {
		return nil, err
	}
	if len(group) == 1 {
		if local == nil {
			return nil, &CollectiveError{Op: op, Rank: d.Rank,
				Err: fmt.Errorf("local buffer: %w", ErrNilBuffer)}
		}
		return append(make([]float32, 0, len(local)), local...), nil
	}
	if nodes, ok := d.F.stagedHier(hw.OpAllReduce, group); ok {
		return d.hierAllReduceSum(group, local, nodes)
	}
	out := make([]float32, len(local))
	if err := d.allReduceSumInto(group, local, out); err != nil {
		return nil, err
	}
	return out, nil
}

// AllReduceSum is TryAllReduceSum panicking on failure.
func (d *Device) AllReduceSum(group []int, local []float32) []float32 {
	out, err := d.TryAllReduceSum(group, local)
	if err != nil {
		panic(err)
	}
	return out
}

// TryAllReduceSumInto is TryAllReduceSum writing the sum into dst
// (len(dst) must equal len(local)) instead of allocating a result —
// the copy-eliminating path for steady-state consumers that hold a
// persistent destination (the engine's gradient buffers). Time,
// metering and error behavior are identical to TryAllReduceSum.
func (d *Device) TryAllReduceSumInto(group []int, local, dst []float32) error {
	const op = "allreduce"
	if _, err := d.groupPos(op, group); err != nil {
		return err
	}
	if local != nil && len(dst) != len(local) {
		return &CollectiveError{Op: op, Rank: d.Rank,
			Err: fmt.Errorf("dst has %d elements for a %d-element reduce: %w",
				len(dst), len(local), ErrLengthMismatch)}
	}
	if len(group) == 1 {
		if local == nil {
			return &CollectiveError{Op: op, Rank: d.Rank,
				Err: fmt.Errorf("local buffer: %w", ErrNilBuffer)}
		}
		copy(dst, local)
		return nil
	}
	if nodes, ok := d.F.stagedHier(hw.OpAllReduce, group); ok {
		sum, err := d.hierAllReduceSum(group, local, nodes)
		if err != nil {
			return err
		}
		copy(dst, sum)
		return nil
	}
	return d.allReduceSumInto(group, local, dst)
}

// AllReduceSumInto is TryAllReduceSumInto panicking on failure.
func (d *Device) AllReduceSumInto(group []int, local, dst []float32) {
	if err := d.TryAllReduceSumInto(group, local, dst); err != nil {
		panic(err)
	}
}

// allReduceSumInto runs the single-rendezvous allreduce round shared by
// TryAllReduceSum and TryAllReduceSumInto. The reduction scratch is a
// pooled buffer: the finalizer sums every deposit into it, each member
// copies its private result out during extract, and the drain of the
// round (exchange's last reader) releases it back to the pool.
func (d *Device) allReduceSumInto(group []int, local, dst []float32) error {
	const op = "allreduce"
	f := d.F
	var contribution any = local
	if local == nil {
		contribution = collErr{fmt.Errorf("local buffer on rank %d: %w", d.Rank, ErrNilBuffer)}
	}
	return d.collective(op, group, contribution,
		func(slots []any, clocks []float64) (float64, any, Volume, error) {
			first := slots[0].([]float32)
			sum := getScratch(len(first))
			for i, s := range slots {
				buf := s.([]float32)
				if len(buf) != len(sum) {
					putScratch(sum)
					return maxClock(clocks), nil, Volume{}, fmt.Errorf(
						"group position 0 has %d elements, position %d has %d: %w",
						len(sum), i, len(buf), ErrLengthMismatch)
				}
				for j, v := range buf {
					sum[j] += v
				}
			}
			t, vol := f.MeterFor(group).AllReduce(group, int64(len(sum))*4)
			f.addVolume(hw.OpAllReduce, vol, d.side)
			return maxClock(clocks) + t, sum, vol, nil
		},
		func(slots []any, aux any) {
			copy(dst, aux.(scratch))
		})
}

// TryAllToAll performs personalized exchange: parts[j] is sent to
// group[j]; the returned slice holds the buffer received from each group
// member (own part is passed through without copy). This is the
// redistribution primitive of Fig. 7. A parts slice of the wrong length
// is ErrCountMismatch, rejected before the rendezvous; a nil parts
// slice is ErrNilBuffer, delivered cooperatively to every member.
// Individual nil parts are valid "send nothing" entries.
func (d *Device) TryAllToAll(group []int, parts [][]float32) ([][]float32, error) {
	const op = "alltoall"
	myIdx, err := d.groupPos(op, group)
	if err != nil {
		return nil, err
	}
	if parts != nil && len(parts) != len(group) {
		return nil, &CollectiveError{Op: op, Rank: d.Rank,
			Err: fmt.Errorf("%d parts for %d-member group: %w", len(parts), len(group), ErrCountMismatch)}
	}
	if len(group) == 1 {
		if parts == nil {
			return nil, &CollectiveError{Op: op, Rank: d.Rank,
				Err: fmt.Errorf("parts: %w", ErrNilBuffer)}
		}
		return [][]float32{parts[0]}, nil
	}
	out := make([][]float32, len(group))
	f := d.F
	var contribution any = parts
	if parts == nil {
		contribution = collErr{fmt.Errorf("parts on rank %d: %w", d.Rank, ErrNilBuffer)}
	}
	cerr := d.collective(op, group, contribution,
		func(slots []any, clocks []float64) (float64, any, Volume, error) {
			var maxInject, total int64
			for i, s := range slots {
				ps := s.([][]float32)
				var inject int64
				for j, pt := range ps {
					if i == j {
						continue
					}
					inject += int64(len(pt)) * 4
				}
				total += inject
				if inject > maxInject {
					maxInject = inject
				}
			}
			t, vol := f.MeterFor(group).AllToAll(group, func(i, j int) int64 {
				return int64(len(slots[i].([][]float32)[j])) * 4
			}, maxInject, total)
			f.addVolume(hw.OpAllToAll, vol, d.side)
			return maxClock(clocks) + t, nil, vol, nil
		},
		func(slots []any, _ any) {
			for i, s := range slots {
				ps := s.([][]float32)
				src := ps[myIdx]
				if i == myIdx {
					out[i] = src
					continue
				}
				out[i] = append(make([]float32, 0, len(src)), src...)
			}
		})
	if cerr != nil {
		return nil, cerr
	}
	return out, nil
}

// AllToAll is TryAllToAll panicking on failure.
func (d *Device) AllToAll(group []int, parts [][]float32) [][]float32 {
	out, err := d.TryAllToAll(group, parts)
	if err != nil {
		panic(err)
	}
	return out
}

// TryReduceScatterSum element-wise sums every member's buffer (all the
// same length) and returns to each member its shard: counts[i] elements
// for group position i, with sum(counts) == len(local). Used by the
// CAGNET 1.5D baseline's partial-result reduction. Malformed counts are
// ErrCountMismatch rejected before the rendezvous; a nil local buffer is
// ErrNilBuffer and cross-rank length disagreement is ErrLengthMismatch,
// both delivered cooperatively to every member.
func (d *Device) TryReduceScatterSum(group []int, local []float32, counts []int) ([]float32, error) {
	const op = "reducescatter"
	myIdx, err := d.groupPos(op, group)
	if err != nil {
		return nil, err
	}
	if counts == nil {
		return nil, &CollectiveError{Op: op, Rank: d.Rank,
			Err: fmt.Errorf("counts: %w", ErrNilBuffer)}
	}
	if len(counts) != len(group) {
		return nil, &CollectiveError{Op: op, Rank: d.Rank,
			Err: fmt.Errorf("%d counts for %d-member group: %w", len(counts), len(group), ErrCountMismatch)}
	}
	total := 0
	for i, c := range counts {
		if c < 0 {
			return nil, &CollectiveError{Op: op, Rank: d.Rank,
				Err: fmt.Errorf("negative count %d at group position %d: %w", c, i, ErrCountMismatch)}
		}
		total += c
	}
	if local != nil && total != len(local) {
		return nil, &CollectiveError{Op: op, Rank: d.Rank,
			Err: fmt.Errorf("counts sum %d != buffer length %d: %w", total, len(local), ErrCountMismatch)}
	}
	if len(group) == 1 {
		if local == nil {
			return nil, &CollectiveError{Op: op, Rank: d.Rank,
				Err: fmt.Errorf("local buffer: %w", ErrNilBuffer)}
		}
		return append(make([]float32, 0, len(local)), local...), nil
	}
	offset := 0
	for i := 0; i < myIdx; i++ {
		offset += counts[i]
	}
	out := make([]float32, counts[myIdx])
	f := d.F
	var contribution any = local
	if local == nil {
		contribution = collErr{fmt.Errorf("local buffer on rank %d: %w", d.Rank, ErrNilBuffer)}
	}
	cerr := d.collective(op, group, contribution,
		func(slots []any, clocks []float64) (float64, any, Volume, error) {
			sum := getScratch(total)
			for i, s := range slots {
				buf := s.([]float32)
				if len(buf) != total {
					putScratch(sum)
					return maxClock(clocks), nil, Volume{}, fmt.Errorf(
						"counts sum to %d but group position %d has %d elements: %w",
						total, i, len(buf), ErrLengthMismatch)
				}
				for j, v := range buf {
					sum[j] += v
				}
			}
			cb := make([]int64, len(counts))
			for i, n := range counts {
				cb[i] = int64(n) * 4
			}
			t, vol := f.MeterFor(group).ReduceScatter(group, cb, int64(total)*4)
			f.addVolume(hw.OpReduceScatter, vol, d.side)
			return maxClock(clocks) + t, sum, vol, nil
		},
		func(slots []any, aux any) {
			copy(out, aux.(scratch)[offset:offset+counts[myIdx]])
		})
	if cerr != nil {
		return nil, cerr
	}
	return out, nil
}

// ReduceScatterSum is TryReduceScatterSum panicking on failure.
func (d *Device) ReduceScatterSum(group []int, local []float32, counts []int) []float32 {
	out, err := d.TryReduceScatterSum(group, local, counts)
	if err != nil {
		panic(err)
	}
	return out
}

// TryBarrier synchronizes the group's clocks (latency-only cost).
func (d *Device) TryBarrier(group []int) error {
	const op = "barrier"
	if _, err := d.groupPos(op, group); err != nil {
		return err
	}
	if len(group) == 1 {
		return nil
	}
	f := d.F
	return d.collective(op, group, nil,
		func(slots []any, clocks []float64) (float64, any, Volume, error) {
			return maxClock(clocks) + f.MeterFor(group).Barrier(group), nil, Volume{}, nil
		}, nil)
}

// Barrier is TryBarrier panicking on failure.
func (d *Device) Barrier(group []int) {
	if err := d.TryBarrier(group); err != nil {
		panic(err)
	}
}

func indexOf(ranks []int, r int) int {
	for i, v := range ranks {
		if v == r {
			return i
		}
	}
	return -1
}

func maxClock(clocks []float64) float64 {
	m := clocks[0]
	for _, c := range clocks[1:] {
		if c > m {
			m = c
		}
	}
	return m
}
