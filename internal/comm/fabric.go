// Package comm implements the simulated multi-device fabric on which the
// GNN-RDM reproduction runs. Each simulated device is a goroutine with
// private buffers; collectives move real bytes between device memories
// (data is copied, never shared), meter the exact communicated volume,
// and advance per-device simulated clocks through the hw.Model.
//
// Clock semantics follow how distributed GPU time is measured in the
// paper: a collective synchronizes all participants to
// max(participant clocks) + modelled collective time, and the elapsed
// time (including skew wait) is charged to each participant's
// communication time. Compute kernels charge their modelled duration to
// compute time.
//
// Stat lifecycle: Fabric.ResetVolumes zeroes the volume/call counters
// only; Fabric.ResetStats additionally zeroes every device's
// clock/commTime/computeTime, so warm-up work can be excluded from both
// volume and time accounting. All stat readers (MaxClock, Volume,
// Device.Clock/CommTime/ComputeTime) and both resets are only safe when
// no Run is in flight.
//
// Tracing: attach an internal/trace Tracer with Fabric.SetTracer before
// Run and every kernel charge and collective is recorded as a trace
// event (collectives carry their exact metered volume). A nil tracer
// keeps the hot paths allocation-free.
package comm

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"gnnrdm/internal/hw"
	"gnnrdm/internal/trace"
)

// Fabric is a set of P simulated devices sharing a communication fabric.
type Fabric struct {
	P  int
	HW *hw.Model

	devices []*Device

	mu     sync.Mutex
	groups map[string]*groupComm

	volumes [6]atomic.Int64 // bytes moved, indexed by hw.CollectiveKind
	calls   [6]atomic.Int64

	// tracer, when non-nil, records every kernel charge and collective
	// as a trace event. Set before Run via SetTracer; nil keeps tracing
	// disabled at zero cost.
	tracer *trace.Tracer
}

// NewFabric creates a fabric with p devices using the given hardware model.
func NewFabric(p int, model *hw.Model) *Fabric {
	if p < 1 {
		panic("comm: need at least one device")
	}
	f := &Fabric{P: p, HW: model, groups: make(map[string]*groupComm)}
	f.devices = make([]*Device, p)
	for r := 0; r < p; r++ {
		f.devices[r] = &Device{Rank: r, F: f}
	}
	return f
}

// Device returns the device with the given rank.
func (f *Fabric) Device(rank int) *Device { return f.devices[rank] }

// Run executes fn concurrently on every device and waits for completion.
func (f *Fabric) Run(fn func(d *Device)) {
	var wg sync.WaitGroup
	for r := 0; r < f.P; r++ {
		wg.Add(1)
		go func(d *Device) {
			defer wg.Done()
			fn(d)
		}(f.devices[r])
	}
	wg.Wait()
}

// Run creates a fabric of p devices, executes fn on each, and returns the
// fabric for metric inspection.
func Run(p int, model *hw.Model, fn func(d *Device)) *Fabric {
	f := NewFabric(p, model)
	f.Run(fn)
	return f
}

// Volume returns the total bytes moved across device boundaries by
// collectives of the given kind since fabric creation (or the last
// ResetVolumes).
func (f *Fabric) Volume(kind hw.CollectiveKind) int64 { return f.volumes[kind].Load() }

// TotalVolume returns the total bytes moved across device boundaries by
// all collectives.
func (f *Fabric) TotalVolume() int64 {
	var s int64
	for i := range f.volumes {
		s += f.volumes[i].Load()
	}
	return s
}

// Calls returns the number of collectives of the given kind executed.
func (f *Fabric) Calls(kind hw.CollectiveKind) int64 { return f.calls[kind].Load() }

// ResetVolumes zeroes the volume and call counters (e.g. after warmup).
// Must not race with in-flight collectives.
func (f *Fabric) ResetVolumes() {
	for i := range f.volumes {
		f.volumes[i].Store(0)
		f.calls[i].Store(0)
	}
}

// ResetStats zeroes every fabric-level counter (volumes and calls, like
// ResetVolumes) AND every device's clock/commTime/computeTime
// accumulator, so warm-up epochs can be excluded from both volume and
// time accounting. It must only be called when no Run is in flight: the
// per-device stats are written without synchronization by the device
// goroutines, so resetting mid-run is a data race (the same restriction
// applies to reading MaxClock, Device.Clock, Device.CommTime, and
// Device.ComputeTime).
func (f *Fabric) ResetStats() {
	f.ResetVolumes()
	for _, d := range f.devices {
		d.clock, d.commTime, d.computeTime = 0, 0, 0
	}
}

// SetTracer attaches an event tracer and opens one trace session for
// this fabric, labelled label. Call before Run; passing a nil tracer is
// a no-op. Each fabric should get exactly one session, so attach a fresh
// fabric for every traced run.
func (f *Fabric) SetTracer(t *trace.Tracer, label string) {
	if t == nil {
		return
	}
	t.StartSession(label, f.P)
	f.tracer = t
}

// Tracer returns the attached tracer (nil when tracing is disabled).
func (f *Fabric) Tracer() *trace.Tracer { return f.tracer }

// MaxClock returns the maximum simulated clock across devices. Like all
// stat readers it is only safe when no Run is in flight.
func (f *Fabric) MaxClock() float64 {
	m := 0.0
	for _, d := range f.devices {
		if d.clock > m {
			m = d.clock
		}
	}
	return m
}

func (f *Fabric) addVolume(kind hw.CollectiveKind, bytes int64) {
	f.volumes[kind].Add(bytes)
	f.calls[kind].Add(1)
}

// groupComm is a reusable two-phase rendezvous for one device group.
type groupComm struct {
	mu       sync.Mutex
	cond     *sync.Cond
	n        int
	arrived  int
	readers  int
	gen      uint64
	slots    []any
	clocks   []float64
	newClock float64
	vol      int64 // round's metered volume, shared with every member
	aux      any   // round-scoped value passed from finalize to extract
}

func (f *Fabric) groupFor(ranks []int) (*groupComm, string) {
	key := groupKey(ranks)
	f.mu.Lock()
	defer f.mu.Unlock()
	g, ok := f.groups[key]
	if !ok {
		g = &groupComm{n: len(ranks), slots: make([]any, len(ranks)), clocks: make([]float64, len(ranks))}
		g.cond = sync.NewCond(&g.mu)
		f.groups[key] = g
	}
	return g, key
}

func groupKey(ranks []int) string {
	b := make([]byte, 0, 4*len(ranks))
	for i, r := range ranks {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(r), 10)
	}
	return string(b)
}

// exchange runs one rendezvous round: every group member deposits a
// contribution; the last arriver runs finalize (which computes the new
// synchronized clock, does volume accounting, and reports the round's
// metered volume); every member then runs extract over the complete slot
// array before the slots are recycled. Both callbacks run under the
// group lock and must not call back into the fabric. The return values
// are the synchronized clock, the round's metered volume, and the
// round's sequence number within this group (for trace attribution).
func (g *groupComm) exchange(idx int, clock float64, in any,
	finalize func(slots []any, clocks []float64) (float64, any, int64),
	extract func(slots []any, aux any)) (float64, int64, uint64) {

	g.mu.Lock()
	defer g.mu.Unlock()
	for g.readers > 0 { // previous round still draining
		g.cond.Wait()
	}
	g.slots[idx] = in
	g.clocks[idx] = clock
	g.arrived++
	if g.arrived == g.n {
		g.newClock, g.aux, g.vol = finalize(g.slots, g.clocks)
		g.arrived = 0
		g.readers = g.n
		g.gen++
		g.cond.Broadcast()
	} else {
		gen := g.gen
		for g.gen == gen {
			g.cond.Wait()
		}
	}
	if extract != nil {
		extract(g.slots, g.aux)
	}
	g.readers--
	if g.readers == 0 {
		for i := range g.slots {
			g.slots[i] = nil
		}
		g.aux = nil
		g.cond.Broadcast()
	} else {
		// Wait for the round to drain completely before returning, so no
		// participant can mutate a deposited buffer while another is
		// still copying from it.
		for g.readers > 0 {
			g.cond.Wait()
		}
	}
	return g.newClock, g.vol, g.gen
}

// Device is one simulated GPU: a rank, private simulated clock, and
// time/volume accounting.
type Device struct {
	Rank int
	F    *Fabric

	clock       float64
	commTime    float64
	computeTime float64
}

// Clock returns the device's simulated time in seconds.
func (d *Device) Clock() float64 { return d.clock }

// CommTime returns the accumulated simulated communication time
// (including synchronization skew, as NCCL timing would observe).
func (d *Device) CommTime() float64 { return d.commTime }

// ComputeTime returns the accumulated simulated kernel time.
func (d *Device) ComputeTime() float64 { return d.computeTime }

// P returns the fabric size.
func (d *Device) P() int { return d.F.P }

// World returns the all-ranks group [0, 1, ..., P-1].
func (d *Device) World() []int {
	g := make([]int, d.F.P)
	for i := range g {
		g[i] = i
	}
	return g
}

// ChargeGemm advances the clock by the modelled time of an m x k x n GEMM.
func (d *Device) ChargeGemm(m, k, n int) {
	t := d.F.HW.GemmTime(m, k, n)
	d.chargeKernel("gemm", t, 0, int64(m)*int64(k)*int64(n))
}

// ChargeSpMM advances the clock by the modelled time of an SpMM with the
// given stored-entry count and dense width.
func (d *Device) ChargeSpMM(nnz int64, f int) {
	t := d.F.HW.SpMMTime(nnz, f)
	d.chargeKernel("spmm", t, 0, nnz*int64(f))
}

// ChargeMem advances the clock by the modelled time of a memory-bound
// kernel touching the given bytes.
func (d *Device) ChargeMem(bytes int64) {
	t := d.F.HW.MemTime(bytes)
	d.chargeKernel("mem", t, bytes, 0)
}

// chargeKernel advances the clock and compute-time accumulator and, when
// tracing is enabled, records the kernel interval.
func (d *Device) chargeKernel(op string, t float64, bytes, flops int64) {
	start := d.clock
	d.clock += t
	d.computeTime += t
	if tr := d.F.tracer; tr != nil {
		tr.Emit(d.Rank, trace.Event{
			Class: trace.ClassKernel, Op: op,
			Bytes: bytes, Flops: flops,
			Start: start, End: d.clock,
		})
	}
}

// TraceSetEpoch tags subsequent trace events from this device with the
// epoch number. No-op (and allocation-free) when tracing is disabled,
// like every Trace* method below.
func (d *Device) TraceSetEpoch(epoch int) {
	if tr := d.F.tracer; tr != nil {
		tr.SetEpoch(d.Rank, epoch)
	}
}

// TraceSetLayer tags subsequent trace events with the layer number
// (0 = outside any layer).
func (d *Device) TraceSetLayer(layer int) {
	if tr := d.F.tracer; tr != nil {
		tr.SetLayer(d.Rank, layer)
	}
}

// TraceSetDir tags subsequent trace events with the pass direction
// ("fwd", "bwd", or "").
func (d *Device) TraceSetDir(dir string) {
	if tr := d.F.tracer; tr != nil {
		tr.SetDir(d.Rank, dir)
	}
}

// TraceSetConfig tags subsequent trace events with the run's ordering
// configuration string.
func (d *Device) TraceSetConfig(cfg string) {
	if tr := d.F.tracer; tr != nil {
		tr.SetConfig(d.Rank, cfg)
	}
}

// TraceBeginPhase opens a named phase interval at the current simulated
// clock. Phases nest; close with TraceEndPhase.
func (d *Device) TraceBeginPhase(name string) {
	if tr := d.F.tracer; tr != nil {
		tr.BeginPhase(d.Rank, name, d.clock)
	}
}

// TraceEndPhase closes the innermost open phase at the current simulated
// clock.
func (d *Device) TraceEndPhase() {
	if tr := d.F.tracer; tr != nil {
		tr.EndPhase(d.Rank, d.clock)
	}
}

func (d *Device) groupIndex(ranks []int) int {
	for i, r := range ranks {
		if r == d.Rank {
			return i
		}
	}
	panic(fmt.Sprintf("comm: rank %d not in group %v", d.Rank, ranks))
}

func validateGroup(ranks []int) {
	if len(ranks) == 0 {
		panic("comm: empty group")
	}
	if !sort.IntsAreSorted(ranks) {
		panic(fmt.Sprintf("comm: group must be sorted: %v", ranks))
	}
	for i := 1; i < len(ranks); i++ {
		if ranks[i] == ranks[i-1] {
			panic(fmt.Sprintf("comm: duplicate rank in group: %v", ranks))
		}
	}
}

// collective runs the common rendezvous pattern, charges comm time, and
// records a trace event carrying the round's metered volume. finalize
// additionally returns that volume (it still performs its own addVolume
// accounting, so zero-volume collectives like Barrier can opt out of the
// call counters).
func (d *Device) collective(op string, group []int, in any,
	finalize func(slots []any, clocks []float64) (float64, any, int64),
	extract func(slots []any, aux any)) {

	validateGroup(group)
	idx := d.groupIndex(group)
	g, key := d.F.groupFor(group)
	before := d.clock
	newClock, vol, seq := g.exchange(idx, d.clock, in, finalize, extract)
	d.clock = newClock
	d.commTime += newClock - before
	if tr := d.F.tracer; tr != nil {
		tr.Emit(d.Rank, trace.Event{
			Class: trace.ClassCollective, Op: op,
			Group: key, Seq: seq, GroupSize: len(group), Bytes: vol,
			Start: before, End: newClock,
		})
	}
}

// Broadcast sends root's buffer to every member of group and returns each
// member's private copy (root returns the original buffer). group must be
// sorted; root is a rank, not an index.
func (d *Device) Broadcast(group []int, root int, data []float32) []float32 {
	if len(group) == 1 {
		return data
	}
	var out []float32
	f := d.F
	rootIdx := indexOf(group, root)
	var contribution any
	if d.Rank == root {
		contribution = data
	}
	d.collective("broadcast", group, contribution,
		func(slots []any, clocks []float64) (float64, any, int64) {
			buf := slots[rootIdx].([]float32)
			bytes := int64(len(buf)) * 4
			vol := bytes * int64(len(group)-1)
			f.addVolume(hw.OpBroadcast, vol)
			return maxClock(clocks) + f.HW.CollectiveTime(hw.OpBroadcast, len(group), bytes), nil, vol
		},
		func(slots []any, _ any) {
			if d.Rank == root {
				out = data
				return
			}
			src := slots[rootIdx].([]float32)
			out = append(make([]float32, 0, len(src)), src...)
		})
	return out
}

// AllGather exchanges every member's buffer; the result is indexed by
// group position. Entries for other ranks are private copies.
func (d *Device) AllGather(group []int, local []float32) [][]float32 {
	if len(group) == 1 {
		return [][]float32{local}
	}
	out := make([][]float32, len(group))
	f := d.F
	myIdx := d.groupIndex(group)
	d.collective("allgather", group, local,
		func(slots []any, clocks []float64) (float64, any, int64) {
			var total int64
			for _, s := range slots {
				total += int64(len(s.([]float32))) * 4
			}
			vol := total * int64(len(group)-1)
			f.addVolume(hw.OpAllGather, vol)
			return maxClock(clocks) + f.HW.CollectiveTime(hw.OpAllGather, len(group), total), nil, vol
		},
		func(slots []any, _ any) {
			for i, s := range slots {
				src := s.([]float32)
				if i == myIdx {
					out[i] = local
					continue
				}
				out[i] = append(make([]float32, 0, len(src)), src...)
			}
		})
	return out
}

// AllReduceSum element-wise sums every member's buffer and returns a
// private copy of the sum on each member. Buffers must share a length.
func (d *Device) AllReduceSum(group []int, local []float32) []float32 {
	if len(group) == 1 {
		return append(make([]float32, 0, len(local)), local...)
	}
	out := make([]float32, len(local))
	f := d.F
	d.collective("allreduce", group, local,
		func(slots []any, clocks []float64) (float64, any, int64) {
			first := slots[0].([]float32)
			sum := make([]float32, len(first))
			for _, s := range slots {
				buf := s.([]float32)
				if len(buf) != len(sum) {
					panic("comm: AllReduceSum length mismatch across ranks")
				}
				for i, v := range buf {
					sum[i] += v
				}
			}
			bytes := int64(len(sum)) * 4
			vol := 2 * bytes * int64(len(group)-1)
			f.addVolume(hw.OpAllReduce, vol)
			return maxClock(clocks) + f.HW.CollectiveTime(hw.OpAllReduce, len(group), bytes), sum, vol
		},
		func(slots []any, aux any) {
			copy(out, aux.([]float32))
		})
	return out
}

// AllToAll performs personalized exchange: parts[j] is sent to group[j];
// the returned slice holds the buffer received from each group member
// (own part is passed through without copy). This is the redistribution
// primitive of Fig. 7.
func (d *Device) AllToAll(group []int, parts [][]float32) [][]float32 {
	if len(parts) != len(group) {
		panic("comm: AllToAll needs one part per group member")
	}
	if len(group) == 1 {
		return [][]float32{parts[0]}
	}
	out := make([][]float32, len(group))
	f := d.F
	myIdx := d.groupIndex(group)
	d.collective("alltoall", group, parts,
		func(slots []any, clocks []float64) (float64, any, int64) {
			var maxInject, total int64
			for i, s := range slots {
				ps := s.([][]float32)
				var inject int64
				for j, pt := range ps {
					if i == j {
						continue
					}
					inject += int64(len(pt)) * 4
				}
				total += inject
				if inject > maxInject {
					maxInject = inject
				}
			}
			f.addVolume(hw.OpAllToAll, total)
			return maxClock(clocks) + f.HW.CollectiveTime(hw.OpAllToAll, len(group), maxInject), nil, total
		},
		func(slots []any, _ any) {
			for i, s := range slots {
				ps := s.([][]float32)
				src := ps[myIdx]
				if i == myIdx {
					out[i] = src
					continue
				}
				out[i] = append(make([]float32, 0, len(src)), src...)
			}
		})
	return out
}

// ReduceScatterSum element-wise sums every member's buffer (all the same
// length) and returns to each member its shard: counts[i] elements for
// group position i, with sum(counts) == len(local). Used by the CAGNET
// 1.5D baseline's partial-result reduction.
func (d *Device) ReduceScatterSum(group []int, local []float32, counts []int) []float32 {
	if len(counts) != len(group) {
		panic("comm: ReduceScatterSum needs one count per member")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(local) {
		panic("comm: ReduceScatterSum counts mismatch buffer length")
	}
	myIdx := d.groupIndex(group)
	if len(group) == 1 {
		return append(make([]float32, 0, len(local)), local...)
	}
	offset := 0
	for i := 0; i < myIdx; i++ {
		offset += counts[i]
	}
	out := make([]float32, counts[myIdx])
	f := d.F
	d.collective("reducescatter", group, local,
		func(slots []any, clocks []float64) (float64, any, int64) {
			sum := make([]float32, total)
			for _, s := range slots {
				buf := s.([]float32)
				if len(buf) != total {
					panic("comm: ReduceScatterSum length mismatch across ranks")
				}
				for i, v := range buf {
					sum[i] += v
				}
			}
			bytes := int64(total) * 4
			vol := bytes * int64(len(group)-1)
			f.addVolume(hw.OpReduceScatter, vol)
			return maxClock(clocks) + f.HW.CollectiveTime(hw.OpReduceScatter, len(group), bytes), sum, vol
		},
		func(slots []any, aux any) {
			copy(out, aux.([]float32)[offset:offset+counts[myIdx]])
		})
	return out
}

// Barrier synchronizes the group's clocks (latency-only cost).
func (d *Device) Barrier(group []int) {
	if len(group) == 1 {
		return
	}
	f := d.F
	d.collective("barrier", group, nil,
		func(slots []any, clocks []float64) (float64, any, int64) {
			return maxClock(clocks) + f.HW.LinkLatency, nil, 0
		}, nil)
}

func indexOf(ranks []int, r int) int {
	for i, v := range ranks {
		if v == r {
			return i
		}
	}
	panic(fmt.Sprintf("comm: rank %d not in group %v", r, ranks))
}

func maxClock(clocks []float64) float64 {
	m := clocks[0]
	for _, c := range clocks[1:] {
		if c > m {
			m = c
		}
	}
	return m
}
