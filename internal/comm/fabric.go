// Package comm implements the simulated multi-device fabric on which the
// GNN-RDM reproduction runs. Each simulated device is a goroutine with
// private buffers; collectives move real bytes between device memories
// (data is copied, never shared), meter the exact communicated volume,
// and advance per-device simulated clocks through the hw.Model.
//
// Clock semantics follow how distributed GPU time is measured in the
// paper: a collective synchronizes all participants to
// max(participant clocks) + modelled collective time, and the elapsed
// time (including skew wait) is charged to each participant's
// communication time. Compute kernels charge their modelled duration to
// compute time.
//
// Stat lifecycle: Fabric.ResetVolumes zeroes the volume/call counters
// only; Fabric.ResetStats additionally zeroes every device's
// clock/commTime/computeTime, so warm-up work can be excluded from both
// volume and time accounting. All stat readers (MaxClock, Volume,
// Device.Clock/CommTime/ComputeTime) and both resets are only safe when
// no Run is in flight.
//
// Tracing: attach an internal/trace Tracer with Fabric.SetTracer before
// Run and every kernel charge and collective is recorded as a trace
// event (collectives carry their exact metered volume). A nil tracer
// keeps the hot paths allocation-free.
//
// Error handling: every collective has a Try* variant returning an
// error; the short names are panicking wrappers for SPMD code where a
// collective failure is unrecoverable. See CollectiveError in errors.go
// for the cooperative delivery contract that keeps data errors (nil
// buffers, cross-rank length disagreement) from deadlocking the group.
package comm

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"gnnrdm/internal/hw"
	"gnnrdm/internal/trace"
)

// Fabric is a set of P simulated devices sharing a communication fabric.
type Fabric struct {
	P  int
	HW *hw.Model

	devices []*Device

	mu     sync.Mutex
	groups map[string]*groupComm

	volumes [6]atomic.Int64 // bytes moved, indexed by hw.CollectiveKind
	calls   [6]atomic.Int64
	// sideVolumes meters collectives issued while a device's side-channel
	// flag is set (Device.SetSideChannel): mechanical traffic such as
	// byte-packed ReLU masks that the paper's §IV cost model deliberately
	// omits. Keeping it out of `volumes` lets model-versus-meter
	// comparisons stay byte-exact.
	sideVolumes [6]atomic.Int64

	// tracer, when non-nil, records every kernel charge and collective
	// as a trace event. Set before Run via SetTracer; nil keeps tracing
	// disabled at zero cost.
	tracer *trace.Tracer
}

// NewFabric creates a fabric with p devices using the given hardware model.
func NewFabric(p int, model *hw.Model) *Fabric {
	if p < 1 {
		panic("comm: need at least one device")
	}
	f := &Fabric{P: p, HW: model, groups: make(map[string]*groupComm)}
	f.devices = make([]*Device, p)
	for r := 0; r < p; r++ {
		f.devices[r] = &Device{Rank: r, F: f}
	}
	return f
}

// Device returns the device with the given rank.
func (f *Fabric) Device(rank int) *Device { return f.devices[rank] }

// Run executes fn concurrently on every device and waits for completion.
func (f *Fabric) Run(fn func(d *Device)) {
	var wg sync.WaitGroup
	for r := 0; r < f.P; r++ {
		wg.Add(1)
		go func(d *Device) {
			defer wg.Done()
			fn(d)
		}(f.devices[r])
	}
	wg.Wait()
}

// Run creates a fabric of p devices, executes fn on each, and returns the
// fabric for metric inspection.
func Run(p int, model *hw.Model, fn func(d *Device)) *Fabric {
	f := NewFabric(p, model)
	f.Run(fn)
	return f
}

// Volume returns the total bytes moved across device boundaries by
// collectives of the given kind since fabric creation (or the last
// ResetVolumes), excluding side-channel traffic (see SideVolume).
func (f *Fabric) Volume(kind hw.CollectiveKind) int64 { return f.volumes[kind].Load() }

// SideVolume returns the bytes moved by collectives of the given kind
// while the issuing devices had their side-channel flag set
// (Device.SetSideChannel) — e.g. the byte-packed ReLU masks of
// dist.RedistributeMask.
func (f *Fabric) SideVolume(kind hw.CollectiveKind) int64 { return f.sideVolumes[kind].Load() }

// TotalVolume returns the total bytes moved across device boundaries by
// all collectives, including side-channel traffic.
func (f *Fabric) TotalVolume() int64 {
	var s int64
	for i := range f.volumes {
		s += f.volumes[i].Load() + f.sideVolumes[i].Load()
	}
	return s
}

// TotalSideVolume returns the total side-channel bytes across all kinds.
func (f *Fabric) TotalSideVolume() int64 {
	var s int64
	for i := range f.sideVolumes {
		s += f.sideVolumes[i].Load()
	}
	return s
}

// Calls returns the number of collectives of the given kind executed.
func (f *Fabric) Calls(kind hw.CollectiveKind) int64 { return f.calls[kind].Load() }

// ResetVolumes zeroes the volume and call counters (e.g. after warmup).
// Must not race with in-flight collectives.
func (f *Fabric) ResetVolumes() {
	for i := range f.volumes {
		f.volumes[i].Store(0)
		f.sideVolumes[i].Store(0)
		f.calls[i].Store(0)
	}
}

// ResetStats zeroes every fabric-level counter (volumes and calls, like
// ResetVolumes) AND every device's clock/commTime/computeTime
// accumulator, so warm-up epochs can be excluded from both volume and
// time accounting. It must only be called when no Run is in flight: the
// per-device stats are written without synchronization by the device
// goroutines, so resetting mid-run is a data race (the same restriction
// applies to reading MaxClock, Device.Clock, Device.CommTime, and
// Device.ComputeTime).
func (f *Fabric) ResetStats() {
	f.ResetVolumes()
	for _, d := range f.devices {
		d.clock, d.commTime, d.computeTime = 0, 0, 0
	}
}

// SetTracer attaches an event tracer and opens one trace session for
// this fabric, labelled label. Call before Run; passing a nil tracer is
// a no-op. Each fabric should get exactly one session, so attach a fresh
// fabric for every traced run.
func (f *Fabric) SetTracer(t *trace.Tracer, label string) {
	if t == nil {
		return
	}
	t.StartSession(label, f.P)
	f.tracer = t
}

// Tracer returns the attached tracer (nil when tracing is disabled).
func (f *Fabric) Tracer() *trace.Tracer { return f.tracer }

// MaxClock returns the maximum simulated clock across devices. Like all
// stat readers it is only safe when no Run is in flight.
func (f *Fabric) MaxClock() float64 {
	m := 0.0
	for _, d := range f.devices {
		if d.clock > m {
			m = d.clock
		}
	}
	return m
}

func (f *Fabric) addVolume(kind hw.CollectiveKind, bytes int64, side bool) {
	if side {
		f.sideVolumes[kind].Add(bytes)
	} else {
		f.volumes[kind].Add(bytes)
	}
	f.calls[kind].Add(1)
}

// groupComm is a reusable two-phase rendezvous for one device group.
type groupComm struct {
	mu       sync.Mutex
	cond     *sync.Cond
	n        int
	arrived  int
	readers  int
	gen      uint64
	slots    []any
	clocks   []float64
	newClock float64
	vol      int64 // round's metered volume, shared with every member
	aux      any   // round-scoped value passed from finalize to extract
	err      error // round's failure, delivered to every member
}

func (f *Fabric) groupFor(ranks []int) (*groupComm, string) {
	key := groupKey(ranks)
	f.mu.Lock()
	defer f.mu.Unlock()
	g, ok := f.groups[key]
	if !ok {
		g = &groupComm{n: len(ranks), slots: make([]any, len(ranks)), clocks: make([]float64, len(ranks))}
		g.cond = sync.NewCond(&g.mu)
		f.groups[key] = g
	}
	return g, key
}

func groupKey(ranks []int) string {
	b := make([]byte, 0, 4*len(ranks))
	for i, r := range ranks {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(r), 10)
	}
	return string(b)
}

// exchange runs one rendezvous round: every group member deposits a
// contribution; the last arriver runs finalize (which computes the new
// synchronized clock, does volume accounting, and reports the round's
// metered volume, or fails the round with an error); every member then
// runs extract over the complete slot array before the slots are
// recycled. Both callbacks run under the group lock and must not call
// back into the fabric. The return values are the synchronized clock,
// the round's metered volume, the round's sequence number within this
// group (for trace attribution), and the round's error, identical on
// every member. extract is skipped on a failed round.
func (g *groupComm) exchange(idx int, clock float64, in any,
	finalize func(slots []any, clocks []float64) (float64, any, int64, error),
	extract func(slots []any, aux any)) (float64, int64, uint64, error) {

	g.mu.Lock()
	defer g.mu.Unlock()
	for g.readers > 0 { // previous round still draining
		g.cond.Wait()
	}
	g.slots[idx] = in
	g.clocks[idx] = clock
	g.arrived++
	if g.arrived == g.n {
		g.newClock, g.aux, g.vol, g.err = finalize(g.slots, g.clocks)
		g.arrived = 0
		g.readers = g.n
		g.gen++
		g.cond.Broadcast()
	} else {
		gen := g.gen
		for g.gen == gen {
			g.cond.Wait()
		}
	}
	// Capture the round's results before giving up our reader slot: the
	// last reader resets aux/err for the next round, and once we start
	// waiting for the drain a fast next round could overwrite
	// newClock/vol/gen.
	clockOut, volOut, genOut, errOut := g.newClock, g.vol, g.gen, g.err
	if extract != nil && errOut == nil {
		extract(g.slots, g.aux)
	}
	g.readers--
	if g.readers == 0 {
		for i := range g.slots {
			g.slots[i] = nil
		}
		g.aux, g.err = nil, nil
		g.cond.Broadcast()
	} else {
		// Wait for the round to drain completely before returning, so no
		// participant can mutate a deposited buffer while another is
		// still copying from it.
		for g.readers > 0 {
			g.cond.Wait()
		}
	}
	return clockOut, volOut, genOut, errOut
}

// Device is one simulated GPU: a rank, private simulated clock, and
// time/volume accounting.
type Device struct {
	Rank int
	F    *Fabric

	clock       float64
	commTime    float64
	computeTime float64
	side        bool // route collective volume to the side-channel meters
}

// SetSideChannel routes this device's subsequent collective volume into
// the fabric's side-channel meters (Fabric.SideVolume) instead of the
// primary ones. Used for mechanical traffic — e.g. the byte-packed ReLU
// masks of dist.RedistributeMask — that the paper's cost model does not
// count, so the primary meters stay byte-comparable to costmodel
// predictions. A round is metered by the device that happens to finalize
// it, so SPMD callers must toggle the flag on every participant around
// the same collectives.
func (d *Device) SetSideChannel(on bool) { d.side = on }

// Clock returns the device's simulated time in seconds.
func (d *Device) Clock() float64 { return d.clock }

// CommTime returns the accumulated simulated communication time
// (including synchronization skew, as NCCL timing would observe).
func (d *Device) CommTime() float64 { return d.commTime }

// ComputeTime returns the accumulated simulated kernel time.
func (d *Device) ComputeTime() float64 { return d.computeTime }

// P returns the fabric size.
func (d *Device) P() int { return d.F.P }

// World returns the all-ranks group [0, 1, ..., P-1].
func (d *Device) World() []int {
	g := make([]int, d.F.P)
	for i := range g {
		g[i] = i
	}
	return g
}

// ChargeGemm advances the clock by the modelled time of an m x k x n GEMM.
func (d *Device) ChargeGemm(m, k, n int) {
	t := d.F.HW.GemmTime(m, k, n)
	d.chargeKernel("gemm", t, 0, int64(m)*int64(k)*int64(n))
}

// ChargeSpMM advances the clock by the modelled time of an SpMM with the
// given stored-entry count and dense width.
func (d *Device) ChargeSpMM(nnz int64, f int) {
	t := d.F.HW.SpMMTime(nnz, f)
	d.chargeKernel("spmm", t, 0, nnz*int64(f))
}

// ChargeMem advances the clock by the modelled time of a memory-bound
// kernel touching the given bytes.
func (d *Device) ChargeMem(bytes int64) {
	t := d.F.HW.MemTime(bytes)
	d.chargeKernel("mem", t, bytes, 0)
}

// chargeKernel advances the clock and compute-time accumulator and, when
// tracing is enabled, records the kernel interval.
func (d *Device) chargeKernel(op string, t float64, bytes, flops int64) {
	start := d.clock
	d.clock += t
	d.computeTime += t
	if tr := d.F.tracer; tr != nil {
		tr.Emit(d.Rank, trace.Event{
			Class: trace.ClassKernel, Op: op,
			Bytes: bytes, Flops: flops,
			Start: start, End: d.clock,
		})
	}
}

// TraceSetEpoch tags subsequent trace events from this device with the
// epoch number. No-op (and allocation-free) when tracing is disabled,
// like every Trace* method below.
func (d *Device) TraceSetEpoch(epoch int) {
	if tr := d.F.tracer; tr != nil {
		tr.SetEpoch(d.Rank, epoch)
	}
}

// TraceSetLayer tags subsequent trace events with the layer number
// (0 = outside any layer).
func (d *Device) TraceSetLayer(layer int) {
	if tr := d.F.tracer; tr != nil {
		tr.SetLayer(d.Rank, layer)
	}
}

// TraceSetDir tags subsequent trace events with the pass direction
// ("fwd", "bwd", or "").
func (d *Device) TraceSetDir(dir string) {
	if tr := d.F.tracer; tr != nil {
		tr.SetDir(d.Rank, dir)
	}
}

// TraceSetConfig tags subsequent trace events with the run's ordering
// configuration string.
func (d *Device) TraceSetConfig(cfg string) {
	if tr := d.F.tracer; tr != nil {
		tr.SetConfig(d.Rank, cfg)
	}
}

// TraceBeginPhase opens a named phase interval at the current simulated
// clock. Phases nest; close with TraceEndPhase.
func (d *Device) TraceBeginPhase(name string) {
	if tr := d.F.tracer; tr != nil {
		tr.BeginPhase(d.Rank, name, d.clock)
	}
}

// TraceEndPhase closes the innermost open phase at the current simulated
// clock.
func (d *Device) TraceEndPhase() {
	if tr := d.F.tracer; tr != nil {
		tr.EndPhase(d.Rank, d.clock)
	}
}

func validateGroup(ranks []int) error {
	if len(ranks) == 0 {
		return fmt.Errorf("empty group: %w", ErrBadGroup)
	}
	if !sort.IntsAreSorted(ranks) {
		return fmt.Errorf("group must be sorted %v: %w", ranks, ErrBadGroup)
	}
	for i := 1; i < len(ranks); i++ {
		if ranks[i] == ranks[i-1] {
			return fmt.Errorf("duplicate rank in group %v: %w", ranks, ErrBadGroup)
		}
	}
	return nil
}

// groupPos validates group and locates this device in it. Failures are
// structural misuse — necessarily identical on every correctly-written
// SPMD rank — so they are rejected before any rendezvous and surface
// immediately even from a single misbehaving caller.
func (d *Device) groupPos(op string, group []int) (int, error) {
	if err := validateGroup(group); err != nil {
		return 0, &CollectiveError{Op: op, Rank: d.Rank, Err: err}
	}
	idx := indexOf(group, d.Rank)
	if idx < 0 {
		return 0, &CollectiveError{Op: op, Rank: d.Rank,
			Err: fmt.Errorf("rank %d not in group %v: %w", d.Rank, group, ErrBadGroup)}
	}
	return idx, nil
}

// collective runs the common rendezvous pattern, charges comm time, and
// records a trace event carrying the round's metered volume. The caller
// must already have validated its group membership (groupPos). finalize
// additionally returns that volume (it still performs its own addVolume
// accounting, so zero-volume collectives like Barrier can opt out of the
// call counters) or fails the round. Deposited collErr contributions are
// scanned before finalize runs, so per-rank data errors reach every
// participant. On a failed round every participant's clock still
// advances to the synchronized value — the rendezvous happened — but no
// trace event is emitted and the identical cause is returned to all
// ranks, wrapped per-rank in a CollectiveError.
func (d *Device) collective(op string, group []int, in any,
	finalize func(slots []any, clocks []float64) (float64, any, int64, error),
	extract func(slots []any, aux any)) error {

	idx := indexOf(group, d.Rank)
	g, key := d.F.groupFor(group)
	before := d.clock
	wrapped := func(slots []any, clocks []float64) (float64, any, int64, error) {
		if err := slotErr(slots); err != nil {
			return maxClock(clocks), nil, 0, err
		}
		return finalize(slots, clocks)
	}
	newClock, vol, seq, err := g.exchange(idx, d.clock, in, wrapped, extract)
	d.clock = newClock
	d.commTime += newClock - before
	if err != nil {
		return &CollectiveError{Op: op, Rank: d.Rank, Err: err}
	}
	if tr := d.F.tracer; tr != nil {
		tr.Emit(d.Rank, trace.Event{
			Class: trace.ClassCollective, Op: op,
			Group: key, Seq: seq, GroupSize: len(group), Bytes: vol,
			Start: before, End: newClock,
		})
	}
	return nil
}

// TryBroadcast sends root's buffer to every member of group and returns
// each member's private copy (root returns the original buffer). group
// must be sorted; root is a rank, not an index. A nil root buffer is
// reported cooperatively to every member as ErrNilBuffer.
func (d *Device) TryBroadcast(group []int, root int, data []float32) ([]float32, error) {
	const op = "broadcast"
	if _, err := d.groupPos(op, group); err != nil {
		return nil, err
	}
	rootIdx := indexOf(group, root)
	if rootIdx < 0 {
		return nil, &CollectiveError{Op: op, Rank: d.Rank,
			Err: fmt.Errorf("root %d not in group %v: %w", root, group, ErrBadGroup)}
	}
	if len(group) == 1 {
		if data == nil {
			return nil, &CollectiveError{Op: op, Rank: d.Rank,
				Err: fmt.Errorf("root buffer: %w", ErrNilBuffer)}
		}
		return data, nil
	}
	var out []float32
	f := d.F
	var contribution any
	if d.Rank == root {
		if data == nil {
			contribution = collErr{fmt.Errorf("root buffer on rank %d: %w", d.Rank, ErrNilBuffer)}
		} else {
			contribution = data
		}
	}
	err := d.collective(op, group, contribution,
		func(slots []any, clocks []float64) (float64, any, int64, error) {
			buf := slots[rootIdx].([]float32)
			bytes := int64(len(buf)) * 4
			vol := bytes * int64(len(group)-1)
			f.addVolume(hw.OpBroadcast, vol, d.side)
			return maxClock(clocks) + f.HW.CollectiveTime(hw.OpBroadcast, len(group), bytes), nil, vol, nil
		},
		func(slots []any, _ any) {
			if d.Rank == root {
				out = data
				return
			}
			src := slots[rootIdx].([]float32)
			out = append(make([]float32, 0, len(src)), src...)
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Broadcast is TryBroadcast panicking on failure, for SPMD code where a
// collective error is unrecoverable.
func (d *Device) Broadcast(group []int, root int, data []float32) []float32 {
	out, err := d.TryBroadcast(group, root, data)
	if err != nil {
		panic(err)
	}
	return out
}

// TryAllGather exchanges every member's buffer; the result is indexed by
// group position. Entries for other ranks are private copies. A nil
// local buffer (zero-length non-nil is valid) is reported cooperatively
// to every member as ErrNilBuffer.
func (d *Device) TryAllGather(group []int, local []float32) ([][]float32, error) {
	const op = "allgather"
	myIdx, err := d.groupPos(op, group)
	if err != nil {
		return nil, err
	}
	if len(group) == 1 {
		if local == nil {
			return nil, &CollectiveError{Op: op, Rank: d.Rank,
				Err: fmt.Errorf("local buffer: %w", ErrNilBuffer)}
		}
		return [][]float32{local}, nil
	}
	out := make([][]float32, len(group))
	f := d.F
	var contribution any = local
	if local == nil {
		contribution = collErr{fmt.Errorf("local buffer on rank %d: %w", d.Rank, ErrNilBuffer)}
	}
	cerr := d.collective(op, group, contribution,
		func(slots []any, clocks []float64) (float64, any, int64, error) {
			var total int64
			for _, s := range slots {
				total += int64(len(s.([]float32))) * 4
			}
			vol := total * int64(len(group)-1)
			f.addVolume(hw.OpAllGather, vol, d.side)
			return maxClock(clocks) + f.HW.CollectiveTime(hw.OpAllGather, len(group), total), nil, vol, nil
		},
		func(slots []any, _ any) {
			for i, s := range slots {
				src := s.([]float32)
				if i == myIdx {
					out[i] = local
					continue
				}
				out[i] = append(make([]float32, 0, len(src)), src...)
			}
		})
	if cerr != nil {
		return nil, cerr
	}
	return out, nil
}

// AllGather is TryAllGather panicking on failure.
func (d *Device) AllGather(group []int, local []float32) [][]float32 {
	out, err := d.TryAllGather(group, local)
	if err != nil {
		panic(err)
	}
	return out
}

// TryAllReduceSum element-wise sums every member's buffer and returns a
// private copy of the sum on each member. Buffers must share a length:
// ranks disagreeing is reported to every member as ErrLengthMismatch
// (naming both group positions), and a nil local buffer as ErrNilBuffer.
func (d *Device) TryAllReduceSum(group []int, local []float32) ([]float32, error) {
	const op = "allreduce"
	if _, err := d.groupPos(op, group); err != nil {
		return nil, err
	}
	if len(group) == 1 {
		if local == nil {
			return nil, &CollectiveError{Op: op, Rank: d.Rank,
				Err: fmt.Errorf("local buffer: %w", ErrNilBuffer)}
		}
		return append(make([]float32, 0, len(local)), local...), nil
	}
	out := make([]float32, len(local))
	f := d.F
	var contribution any = local
	if local == nil {
		contribution = collErr{fmt.Errorf("local buffer on rank %d: %w", d.Rank, ErrNilBuffer)}
	}
	cerr := d.collective(op, group, contribution,
		func(slots []any, clocks []float64) (float64, any, int64, error) {
			first := slots[0].([]float32)
			sum := make([]float32, len(first))
			for i, s := range slots {
				buf := s.([]float32)
				if len(buf) != len(sum) {
					return maxClock(clocks), nil, 0, fmt.Errorf(
						"group position 0 has %d elements, position %d has %d: %w",
						len(sum), i, len(buf), ErrLengthMismatch)
				}
				for j, v := range buf {
					sum[j] += v
				}
			}
			bytes := int64(len(sum)) * 4
			vol := 2 * bytes * int64(len(group)-1)
			f.addVolume(hw.OpAllReduce, vol, d.side)
			return maxClock(clocks) + f.HW.CollectiveTime(hw.OpAllReduce, len(group), bytes), sum, vol, nil
		},
		func(slots []any, aux any) {
			copy(out, aux.([]float32))
		})
	if cerr != nil {
		return nil, cerr
	}
	return out, nil
}

// AllReduceSum is TryAllReduceSum panicking on failure.
func (d *Device) AllReduceSum(group []int, local []float32) []float32 {
	out, err := d.TryAllReduceSum(group, local)
	if err != nil {
		panic(err)
	}
	return out
}

// TryAllToAll performs personalized exchange: parts[j] is sent to
// group[j]; the returned slice holds the buffer received from each group
// member (own part is passed through without copy). This is the
// redistribution primitive of Fig. 7. A parts slice of the wrong length
// is ErrCountMismatch, rejected before the rendezvous; a nil parts
// slice is ErrNilBuffer, delivered cooperatively to every member.
// Individual nil parts are valid "send nothing" entries.
func (d *Device) TryAllToAll(group []int, parts [][]float32) ([][]float32, error) {
	const op = "alltoall"
	myIdx, err := d.groupPos(op, group)
	if err != nil {
		return nil, err
	}
	if parts != nil && len(parts) != len(group) {
		return nil, &CollectiveError{Op: op, Rank: d.Rank,
			Err: fmt.Errorf("%d parts for %d-member group: %w", len(parts), len(group), ErrCountMismatch)}
	}
	if len(group) == 1 {
		if parts == nil {
			return nil, &CollectiveError{Op: op, Rank: d.Rank,
				Err: fmt.Errorf("parts: %w", ErrNilBuffer)}
		}
		return [][]float32{parts[0]}, nil
	}
	out := make([][]float32, len(group))
	f := d.F
	var contribution any = parts
	if parts == nil {
		contribution = collErr{fmt.Errorf("parts on rank %d: %w", d.Rank, ErrNilBuffer)}
	}
	cerr := d.collective(op, group, contribution,
		func(slots []any, clocks []float64) (float64, any, int64, error) {
			var maxInject, total int64
			for i, s := range slots {
				ps := s.([][]float32)
				var inject int64
				for j, pt := range ps {
					if i == j {
						continue
					}
					inject += int64(len(pt)) * 4
				}
				total += inject
				if inject > maxInject {
					maxInject = inject
				}
			}
			f.addVolume(hw.OpAllToAll, total, d.side)
			return maxClock(clocks) + f.HW.CollectiveTime(hw.OpAllToAll, len(group), maxInject), nil, total, nil
		},
		func(slots []any, _ any) {
			for i, s := range slots {
				ps := s.([][]float32)
				src := ps[myIdx]
				if i == myIdx {
					out[i] = src
					continue
				}
				out[i] = append(make([]float32, 0, len(src)), src...)
			}
		})
	if cerr != nil {
		return nil, cerr
	}
	return out, nil
}

// AllToAll is TryAllToAll panicking on failure.
func (d *Device) AllToAll(group []int, parts [][]float32) [][]float32 {
	out, err := d.TryAllToAll(group, parts)
	if err != nil {
		panic(err)
	}
	return out
}

// TryReduceScatterSum element-wise sums every member's buffer (all the
// same length) and returns to each member its shard: counts[i] elements
// for group position i, with sum(counts) == len(local). Used by the
// CAGNET 1.5D baseline's partial-result reduction. Malformed counts are
// ErrCountMismatch rejected before the rendezvous; a nil local buffer is
// ErrNilBuffer and cross-rank length disagreement is ErrLengthMismatch,
// both delivered cooperatively to every member.
func (d *Device) TryReduceScatterSum(group []int, local []float32, counts []int) ([]float32, error) {
	const op = "reducescatter"
	myIdx, err := d.groupPos(op, group)
	if err != nil {
		return nil, err
	}
	if counts == nil {
		return nil, &CollectiveError{Op: op, Rank: d.Rank,
			Err: fmt.Errorf("counts: %w", ErrNilBuffer)}
	}
	if len(counts) != len(group) {
		return nil, &CollectiveError{Op: op, Rank: d.Rank,
			Err: fmt.Errorf("%d counts for %d-member group: %w", len(counts), len(group), ErrCountMismatch)}
	}
	total := 0
	for i, c := range counts {
		if c < 0 {
			return nil, &CollectiveError{Op: op, Rank: d.Rank,
				Err: fmt.Errorf("negative count %d at group position %d: %w", c, i, ErrCountMismatch)}
		}
		total += c
	}
	if local != nil && total != len(local) {
		return nil, &CollectiveError{Op: op, Rank: d.Rank,
			Err: fmt.Errorf("counts sum %d != buffer length %d: %w", total, len(local), ErrCountMismatch)}
	}
	if len(group) == 1 {
		if local == nil {
			return nil, &CollectiveError{Op: op, Rank: d.Rank,
				Err: fmt.Errorf("local buffer: %w", ErrNilBuffer)}
		}
		return append(make([]float32, 0, len(local)), local...), nil
	}
	offset := 0
	for i := 0; i < myIdx; i++ {
		offset += counts[i]
	}
	out := make([]float32, counts[myIdx])
	f := d.F
	var contribution any = local
	if local == nil {
		contribution = collErr{fmt.Errorf("local buffer on rank %d: %w", d.Rank, ErrNilBuffer)}
	}
	cerr := d.collective(op, group, contribution,
		func(slots []any, clocks []float64) (float64, any, int64, error) {
			sum := make([]float32, total)
			for i, s := range slots {
				buf := s.([]float32)
				if len(buf) != total {
					return maxClock(clocks), nil, 0, fmt.Errorf(
						"counts sum to %d but group position %d has %d elements: %w",
						total, i, len(buf), ErrLengthMismatch)
				}
				for j, v := range buf {
					sum[j] += v
				}
			}
			bytes := int64(total) * 4
			vol := bytes * int64(len(group)-1)
			f.addVolume(hw.OpReduceScatter, vol, d.side)
			return maxClock(clocks) + f.HW.CollectiveTime(hw.OpReduceScatter, len(group), bytes), sum, vol, nil
		},
		func(slots []any, aux any) {
			copy(out, aux.([]float32)[offset:offset+counts[myIdx]])
		})
	if cerr != nil {
		return nil, cerr
	}
	return out, nil
}

// ReduceScatterSum is TryReduceScatterSum panicking on failure.
func (d *Device) ReduceScatterSum(group []int, local []float32, counts []int) []float32 {
	out, err := d.TryReduceScatterSum(group, local, counts)
	if err != nil {
		panic(err)
	}
	return out
}

// TryBarrier synchronizes the group's clocks (latency-only cost).
func (d *Device) TryBarrier(group []int) error {
	const op = "barrier"
	if _, err := d.groupPos(op, group); err != nil {
		return err
	}
	if len(group) == 1 {
		return nil
	}
	f := d.F
	return d.collective(op, group, nil,
		func(slots []any, clocks []float64) (float64, any, int64, error) {
			return maxClock(clocks) + f.HW.LinkLatency, nil, 0, nil
		}, nil)
}

// Barrier is TryBarrier panicking on failure.
func (d *Device) Barrier(group []int) {
	if err := d.TryBarrier(group); err != nil {
		panic(err)
	}
}

func indexOf(ranks []int, r int) int {
	for i, v := range ranks {
		if v == r {
			return i
		}
	}
	return -1
}

func maxClock(clocks []float64) float64 {
	m := clocks[0]
	for _, c := range clocks[1:] {
		if c > m {
			m = c
		}
	}
	return m
}
