package trace

import (
	"strings"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	tr.StartSession("s", 1)
	for i := 0; i < 10; i++ {
		tr.Emit(0, Event{Class: ClassKernel, Op: "gemm", Start: float64(i), End: float64(i) + 0.5})
	}
	sess := tr.Sessions()[0]
	evs := sess.Events(0)
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4 (ring capacity)", len(evs))
	}
	// The four most recent events, in chronological order.
	for i, ev := range evs {
		if want := float64(6 + i); ev.Start != want {
			t.Errorf("event %d start = %v, want %v", i, ev.Start, want)
		}
	}
	if got := sess.Dropped(0); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	if got := sess.Total(0); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
}

func TestScopeStamping(t *testing.T) {
	tr := NewTracer(0)
	tr.StartSession("s", 2)
	tr.SetEpoch(1, 3)
	tr.SetLayer(1, 2)
	tr.SetDir(1, "bwd")
	tr.SetConfig(1, "fwd[sd] bwd[ds]")
	tr.Emit(1, Event{Class: ClassCollective, Op: "allreduce", Start: 1, End: 2})
	ev := tr.Sessions()[0].Events(1)[0]
	if ev.Epoch != 3 || ev.Layer != 2 || ev.Dir != "bwd" || ev.Config != "fwd[sd] bwd[ds]" {
		t.Errorf("scope tags not stamped: %+v", ev)
	}
	// Rank 0's scope is independent.
	tr.Emit(0, Event{Class: ClassKernel, Op: "gemm"})
	if ev := tr.Sessions()[0].Events(0)[0]; ev.Epoch != 0 || ev.Dir != "" {
		t.Errorf("rank 0 scope leaked from rank 1: %+v", ev)
	}
}

func TestPhaseNesting(t *testing.T) {
	tr := NewTracer(0)
	tr.StartSession("s", 1)
	tr.BeginPhase(0, "epoch", 0)
	tr.BeginPhase(0, "forward", 1)
	tr.EndPhase(0, 5)
	tr.EndPhase(0, 9)
	tr.EndPhase(0, 99) // unbalanced: ignored
	evs := tr.Sessions()[0].Events(0)
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Op != "forward" || evs[0].Start != 1 || evs[0].End != 5 {
		t.Errorf("inner phase = %+v", evs[0])
	}
	if evs[1].Op != "epoch" || evs[1].Start != 0 || evs[1].End != 9 {
		t.Errorf("outer phase = %+v", evs[1])
	}
}

func TestMultipleSessions(t *testing.T) {
	tr := NewTracer(0)
	tr.StartSession("a", 1)
	tr.Emit(0, Event{Class: ClassKernel, Op: "gemm"})
	tr.StartSession("b", 1)
	tr.Emit(0, Event{Class: ClassKernel, Op: "spmm"})
	ss := tr.Sessions()
	if len(ss) != 2 {
		t.Fatalf("got %d sessions, want 2", len(ss))
	}
	if ss[0].Events(0)[0].Op != "gemm" || ss[1].Events(0)[0].Op != "spmm" {
		t.Errorf("events landed in the wrong session")
	}
	tr.Reset()
	if len(tr.Sessions()) != 0 {
		t.Errorf("Reset did not drop sessions")
	}
}

func TestHistBucket(t *testing.T) {
	cases := []struct {
		dur  float64
		want int
	}{
		{0, 0}, {-1, 0}, {1e-12, 0}, {1e-9, 0}, {5e-9, 0},
		{1e-6, 3}, {1e-3, 6}, {0.5, 8}, {1, 9}, {10, 10}, {1e9, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucket(c.dur); got != c.want {
			t.Errorf("histBucket(%v) = %d, want %d", c.dur, got, c.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	tr := NewTracer(0)
	tr.StartSession("s", 2)
	tr.Emit(0, Event{Class: ClassKernel, Op: "gemm", Flops: 100, Start: 0, End: 1})
	tr.Emit(0, Event{Class: ClassCollective, Op: "allreduce", Bytes: 64, Start: 1, End: 3})
	tr.Emit(0, Event{Class: ClassPhase, Op: "epoch", Start: 0, End: 3})
	tr.Emit(1, Event{Class: ClassCollective, Op: "allreduce", Bytes: 64, Start: 0, End: 3})
	sum := Summarize(tr)
	if len(sum.Sessions) != 1 {
		t.Fatalf("got %d sessions", len(sum.Sessions))
	}
	ss := sum.Sessions[0]
	if ss.Ranks[0].ComputeTime != 1 || ss.Ranks[0].CommTime != 2 {
		t.Errorf("rank 0 totals = %+v", ss.Ranks[0])
	}
	if ss.Ranks[1].CommTime != 3 {
		t.Errorf("rank 1 comm = %v, want 3", ss.Ranks[1].CommTime)
	}
	if ss.MaxCommTime != 3 || ss.MaxComputeTime != 1 || ss.MaxClock != 3 {
		t.Errorf("maxima = %+v", ss)
	}
	// Phases must not enter the comm/compute totals.
	var ar *OpStat
	for _, st := range ss.Ops {
		if st.Class == ClassCollective && st.Op == "allreduce" {
			ar = st
		}
	}
	if ar == nil || ar.Count != 2 || ar.Bytes != 128 || ar.SimTime != 5 {
		t.Errorf("allreduce stat = %+v", ar)
	}
	// Ops sorted by (class, op): kernel < collective < phase.
	if ss.Ops[0].Class != ClassKernel || ss.Ops[len(ss.Ops)-1].Class != ClassPhase {
		t.Errorf("ops not sorted by class: %v", ss.Ops)
	}
}

func TestSummarizeNil(t *testing.T) {
	sum := Summarize(nil)
	if len(sum.Sessions) != 0 {
		t.Fatalf("nil tracer summary has sessions")
	}
	var sb strings.Builder
	if err := sum.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if err := sum.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCSV(t *testing.T) {
	tr := NewTracer(0)
	tr.StartSession(`web,"x"`, 1)
	tr.Emit(0, Event{Class: ClassKernel, Op: "gemm", Flops: 10, Start: 0, End: 1})
	var sb strings.Builder
	if err := Summarize(tr).WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv = %q", sb.String())
	}
	if lines[0] != "session,class,op,count,bytes,flops,sim_time_s,min_s,max_s" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], `"web,""x""",kernel,gemm,1,0,10,`) {
		t.Errorf("row = %q", lines[1])
	}
}

func TestCSVEscape(t *testing.T) {
	if got := csvEscape("plain"); got != "plain" {
		t.Errorf("plain escaped to %q", got)
	}
	if got := csvEscape(`a,"b"`); got != `"a,""b"""` {
		t.Errorf("escape = %q", got)
	}
}
