package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// HistBuckets is the number of logarithmic duration buckets kept per op:
// bucket i counts durations in [10^(i-9), 10^(i-8)) seconds, so the
// histogram spans 1 ns to 10^7 s with under- and overflow clamped to the
// first and last bucket.
const HistBuckets = 16

// histBucket maps a duration in seconds to its bucket index.
func histBucket(dur float64) int {
	if dur <= 0 {
		return 0
	}
	b := int(math.Floor(math.Log10(dur))) + 9
	if b < 0 {
		return 0
	}
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// OpStat aggregates all events sharing one (class, op) pair.
type OpStat struct {
	Class Class
	Op    string
	Count int64
	// Bytes and Flops are sums of the per-event fields.
	Bytes int64
	Flops int64
	// SimTime is the total simulated duration. For phases this double
	// counts the kernels and collectives they contain; per-class time
	// accounting in RankTotals therefore ignores phases.
	SimTime float64
	MinDur  float64
	MaxDur  float64
	// Hist is the log-scale duration histogram (see HistBuckets).
	Hist [HistBuckets]int64
}

func (s *OpStat) add(ev *Event) {
	d := ev.Dur()
	if s.Count == 0 || d < s.MinDur {
		s.MinDur = d
	}
	if d > s.MaxDur {
		s.MaxDur = d
	}
	s.Count++
	s.Bytes += ev.Bytes
	s.Flops += ev.Flops
	s.SimTime += d
	s.Hist[histBucket(d)]++
}

// RankTotals is one device's per-class time accounting. CommTime and
// ComputeTime are sums over collective and kernel events respectively
// and, when no events were dropped, equal the device's CommTime() and
// ComputeTime() accumulators.
type RankTotals struct {
	Rank                  int
	CommTime, ComputeTime float64
	Events                uint64
	Dropped               uint64
}

// SessionSummary aggregates one session.
type SessionSummary struct {
	Label string
	P     int
	Ranks []RankTotals
	// Ops is sorted by (Class, Op) for deterministic rendering.
	Ops []*OpStat
	// MaxCommTime / MaxComputeTime are maxima over ranks — the quantities
	// the paper's Fig. 12 breakdown reports.
	MaxCommTime, MaxComputeTime float64
	// MaxClock is the largest event end time (the session makespan).
	MaxClock float64
}

// Summary aggregates every session of a tracer.
type Summary struct {
	Sessions []*SessionSummary
}

// Summarize aggregates the tracer's recorded events into per-op counters
// and per-rank time totals. It must not run concurrently with a fabric
// Run that is still emitting.
func Summarize(t *Tracer) *Summary {
	sum := &Summary{}
	if t == nil {
		return sum
	}
	for _, sess := range t.Sessions() {
		ss := SummarizeSession(sess)
		sum.Sessions = append(sum.Sessions, ss)
	}
	return sum
}

// SummarizeSession aggregates one session.
func SummarizeSession(sess *Session) *SessionSummary {
	ss := &SessionSummary{Label: sess.Label, P: sess.P}
	ops := map[string]*OpStat{}
	for r := 0; r < len(sess.ranks); r++ {
		rt := RankTotals{Rank: r, Events: sess.Total(r), Dropped: sess.Dropped(r)}
		for _, ev := range sess.Events(r) {
			ev := ev
			key := ev.Class.String() + "/" + ev.Op
			st, ok := ops[key]
			if !ok {
				st = &OpStat{Class: ev.Class, Op: ev.Op}
				ops[key] = st
			}
			st.add(&ev)
			switch ev.Class {
			case ClassCollective:
				rt.CommTime += ev.Dur()
			case ClassKernel:
				rt.ComputeTime += ev.Dur()
			}
			if ev.End > ss.MaxClock {
				ss.MaxClock = ev.End
			}
		}
		if rt.CommTime > ss.MaxCommTime {
			ss.MaxCommTime = rt.CommTime
		}
		if rt.ComputeTime > ss.MaxComputeTime {
			ss.MaxComputeTime = rt.ComputeTime
		}
		ss.Ranks = append(ss.Ranks, rt)
	}
	for _, st := range ops {
		ss.Ops = append(ss.Ops, st)
	}
	sort.Slice(ss.Ops, func(i, j int) bool {
		if ss.Ops[i].Class != ss.Ops[j].Class {
			return ss.Ops[i].Class < ss.Ops[j].Class
		}
		return ss.Ops[i].Op < ss.Ops[j].Op
	})
	return ss
}

// WriteText renders the summary as human-readable tables, one per
// session: the per-rank comm/compute split followed by the per-op
// counters and duration ranges.
func (s *Summary) WriteText(w io.Writer) error {
	for _, ss := range s.Sessions {
		if _, err := fmt.Fprintf(w, "=== trace session %q (P=%d, makespan %.6fs) ===\n",
			ss.Label, ss.P, ss.MaxClock); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6s %14s %14s %10s %9s\n", "rank", "comm(s)", "compute(s)", "events", "dropped")
		for _, rt := range ss.Ranks {
			fmt.Fprintf(w, "%-6d %14.6f %14.6f %10d %9d\n",
				rt.Rank, rt.CommTime, rt.ComputeTime, rt.Events, rt.Dropped)
		}
		fmt.Fprintf(w, "%-12s %-14s %10s %14s %14s %12s %12s\n",
			"class", "op", "count", "sim-time(s)", "bytes", "min(us)", "max(us)")
		for _, st := range ss.Ops {
			fmt.Fprintf(w, "%-12s %-14s %10d %14.6f %14d %12.2f %12.2f\n",
				st.Class, st.Op, st.Count, st.SimTime, st.Bytes, st.MinDur*1e6, st.MaxDur*1e6)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteCSV renders per-op rows for every session:
// session,class,op,count,bytes,flops,sim_time_s,min_s,max_s.
func (s *Summary) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "session,class,op,count,bytes,flops,sim_time_s,min_s,max_s"); err != nil {
		return err
	}
	for _, ss := range s.Sessions {
		for _, st := range ss.Ops {
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%d,%d,%.9g,%.9g,%.9g\n",
				csvEscape(ss.Label), st.Class, st.Op, st.Count, st.Bytes, st.Flops,
				st.SimTime, st.MinDur, st.MaxDur); err != nil {
				return err
			}
		}
	}
	return nil
}

// csvEscape quotes a label containing commas or quotes.
func csvEscape(s string) string {
	needsQuote := false
	for i := 0; i < len(s); i++ {
		if s[i] == ',' || s[i] == '"' || s[i] == '\n' {
			needsQuote = true
			break
		}
	}
	if !needsQuote {
		return s
	}
	out := `"`
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			out += `""`
			continue
		}
		out += string(s[i])
	}
	return out + `"`
}
