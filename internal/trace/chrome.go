package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Field order is fixed by the struct, and json.Marshal emits struct
// fields in declaration order, so the export is byte-deterministic.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"`
	Dur  *float64    `json:"dur,omitempty"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	ID   int         `json:"id,omitempty"`
	BP   string      `json:"bp,omitempty"`
	Args *chromeArgs `json:"args,omitempty"`
}

// chromeArgs carries the event payload shown in the Perfetto details
// pane. Pointer-free zero values are omitted to keep files small.
type chromeArgs struct {
	Bytes  int64  `json:"bytes,omitempty"`
	Tier1  int64  `json:"tier1_bytes,omitempty"`
	Flops  int64  `json:"flops,omitempty"`
	Group  string `json:"group,omitempty"`
	GSize  int    `json:"group_size,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`
	Epoch  int    `json:"epoch,omitempty"`
	Layer  int    `json:"layer,omitempty"`
	Step   int    `json:"step,omitempty"`
	Dir    string `json:"dir,omitempty"`
	Config string `json:"config,omitempty"`
	Name   string `json:"name,omitempty"` // metadata payload
	Sort   *int   `json:"sort_index,omitempty"`
	Intra  *int64 `json:"intra_bytes,omitempty"` // counter series
	Inter  *int64 `json:"inter_bytes,omitempty"` // counter series
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// usec converts simulated seconds to the microseconds Chrome expects.
func usec(s float64) float64 { return s * 1e6 }

// collKey identifies one collective occurrence across participants.
type collKey struct {
	group string
	seq   uint64
}

type collOccurrence struct {
	ranks  []int
	starts []float64
	ends   []float64
	bytes  int64
	tier1  int64
}

// WriteChrome exports every session as Chrome trace-event JSON: one
// process per session (named by its label), one thread (track) per
// simulated device, "X" complete events for kernels, collectives, and
// phases, and flow arrows binding each collective's participants — drawn
// from the straggler (the participant whose late arrival set the
// synchronized clock) to every other member, which makes skew waits
// visible at a glance in Perfetto or chrome://tracing.
//
// The export is a pure function of the recorded events, so identical
// runs serialize to identical bytes.
func WriteChrome(w io.Writer, t *Tracer) error {
	file := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	if t == nil {
		return writeJSON(w, &file)
	}
	flowID := 0
	for si, sess := range t.Sessions() {
		pid := si + 1
		sortIdx := si
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Cat: "__metadata", Ph: "M", Pid: pid,
			Args: &chromeArgs{Name: sess.Label},
		}, chromeEvent{
			Name: "process_sort_index", Cat: "__metadata", Ph: "M", Pid: pid,
			Args: &chromeArgs{Sort: &sortIdx},
		})
		// Collect collective occurrences in first-encounter order so the
		// flow pass below is deterministic.
		occ := map[collKey]*collOccurrence{}
		var occOrder []collKey
		rankCount := len(sess.ranks)
		for r := 0; r < rankCount; r++ {
			rSort := r
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: "thread_name", Cat: "__metadata", Ph: "M", Pid: pid, Tid: r,
				Args: &chromeArgs{Name: deviceName(r)},
			}, chromeEvent{
				Name: "thread_sort_index", Cat: "__metadata", Ph: "M", Pid: pid, Tid: r,
				Args: &chromeArgs{Sort: &rSort},
			})
			// Overlapped runs record extra per-resource timelines; give each
			// non-empty one its own thread row grouped under the device.
			// Sequential runs have exactly one track, so this emits nothing
			// and the legacy export stays byte-identical.
			for track := 1; track < sess.Tracks(r); track++ {
				if len(sess.TrackEvents(r, track)) == 0 {
					continue
				}
				tid := track*rankCount + r
				tSort := tid
				file.TraceEvents = append(file.TraceEvents, chromeEvent{
					Name: "thread_name", Cat: "__metadata", Ph: "M", Pid: pid, Tid: tid,
					Args: &chromeArgs{Name: deviceName(r) + " " + trackName(track)},
				}, chromeEvent{
					Name: "thread_sort_index", Cat: "__metadata", Ph: "M", Pid: pid, Tid: tid,
					Args: &chromeArgs{Sort: &tSort},
				})
			}
			for _, ev := range sess.Events(r) {
				dur := usec(ev.End) - usec(ev.Start)
				ce := chromeEvent{
					Name: ev.Op, Cat: ev.Class.String(), Ph: "X",
					Ts: usec(ev.Start), Dur: &dur, Pid: pid, Tid: ev.Track*rankCount + r,
				}
				args := chromeArgs{
					Bytes: ev.Bytes, Tier1: ev.Tier1, Flops: ev.Flops,
					Group: ev.Group, GSize: ev.GroupSize, Seq: ev.Seq,
					Epoch: ev.Epoch, Layer: ev.Layer, Step: ev.Step, Dir: ev.Dir, Config: ev.Config,
				}
				if args != (chromeArgs{}) {
					ce.Args = &args
				}
				file.TraceEvents = append(file.TraceEvents, ce)
				if ev.Class == ClassCollective && ev.GroupSize > 1 {
					k := collKey{group: ev.Group, seq: ev.Seq}
					o, ok := occ[k]
					if !ok {
						o = &collOccurrence{}
						occ[k] = o
						occOrder = append(occOrder, k)
					}
					o.ranks = append(o.ranks, r)
					o.starts = append(o.starts, ev.Start)
					o.ends = append(o.ends, ev.End)
					o.bytes, o.tier1 = ev.Bytes, ev.Tier1
				}
			}
		}
		// Link-utilization counters: one cumulative-bytes series per
		// tier, stepped at each collective's completion. Occurrences are
		// ordered by end time (group/seq tie-break) so the track is
		// deterministic and monotone.
		byEnd := make([]collKey, len(occOrder))
		copy(byEnd, occOrder)
		sort.SliceStable(byEnd, func(i, j int) bool {
			a, b := occ[byEnd[i]], occ[byEnd[j]]
			ea, eb := a.ends[0], b.ends[0]
			if ea != eb {
				return ea < eb
			}
			if byEnd[i].group != byEnd[j].group {
				return byEnd[i].group < byEnd[j].group
			}
			return byEnd[i].seq < byEnd[j].seq
		})
		var cumIntra, cumInter int64
		for _, k := range byEnd {
			o := occ[k]
			if o.bytes == 0 {
				continue // barriers and zero-work rounds move no bytes
			}
			cumIntra += o.bytes - o.tier1
			cumInter += o.tier1
			intra, inter := cumIntra, cumInter
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: "link bytes", Cat: "comm", Ph: "C",
				Ts: usec(o.ends[0]), Pid: pid,
				Args: &chromeArgs{Intra: &intra, Inter: &inter},
			})
		}
		// Flow arrows: straggler -> every other participant.
		for _, k := range occOrder {
			o := occ[k]
			if len(o.ranks) < 2 {
				continue
			}
			strag := 0
			for i := 1; i < len(o.ranks); i++ {
				if o.starts[i] > o.starts[strag] {
					strag = i
				}
			}
			flowID++
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: "sync", Cat: "comm-flow", Ph: "s", ID: flowID,
				Ts: usec(o.starts[strag]), Pid: pid, Tid: o.ranks[strag],
			})
			for i := range o.ranks {
				if i == strag {
					continue
				}
				file.TraceEvents = append(file.TraceEvents, chromeEvent{
					Name: "sync", Cat: "comm-flow", Ph: "f", BP: "e", ID: flowID,
					Ts: usec(o.ends[i]), Pid: pid, Tid: o.ranks[i],
				})
			}
		}
	}
	return writeJSON(w, &file)
}

func writeJSON(w io.Writer, file *chromeFile) error {
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

func deviceName(r int) string {
	// Avoid fmt for the common case; device counts are small.
	return "device " + itoa(r)
}

// trackName labels a device's extra resource timelines in the export.
// The numbering mirrors hw.Resource (1 = intra-node link, 2 = inter-node
// link), kept local to avoid an hw dependency from trace.
func trackName(track int) string {
	switch track {
	case 1:
		return "link:intra"
	case 2:
		return "link:inter"
	}
	return "track " + itoa(track)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
