// Package trace is the observability layer of the simulated fabric: a
// low-overhead, deterministic event recorder with per-device ring
// buffers, a per-op aggregator (internal/trace/aggregate.go), and a
// Chrome trace-event exporter loadable in Perfetto or chrome://tracing
// (internal/trace/chrome.go).
//
// Every kernel charge and collective executed on internal/comm emits one
// Event; the core engine and the baseline trainers add phase annotations
// (epoch, forward/backward, layer, redistribution) so the recorded
// timeline reproduces the paper's measurement methodology — Fig. 12's
// comm/compute split and Table VIII's per-config epoch times fall out of
// the trace rather than out of ad-hoc counters.
//
// Concurrency and determinism contract: a Tracer is attached to a fabric
// before Run and is written by the device goroutines, each strictly to
// its own rank's buffer, so no locking is needed and two identical runs
// produce byte-identical traces (the simulated clocks depend only on
// shapes and nnz counts, never on wall time or scheduling). Sessions
// must be started between runs, and readers (Summarize, WriteChrome)
// must only be invoked when no Run is in flight.
//
// A nil *Tracer is a valid disabled tracer: every emission point checks
// for nil before building an Event, so disabled tracing costs one
// pointer compare and zero allocations.
package trace

// Class partitions events into the three timeline categories.
type Class uint8

const (
	// ClassKernel is a compute-kernel charge (gemm, spmm, mem).
	ClassKernel Class = iota
	// ClassCollective is a fabric collective (allgather, alltoall, ...).
	ClassCollective
	// ClassPhase is a semantic interval annotation (epoch, forward,
	// layer, redistribute, ...). Phases nest and overlap kernel and
	// collective events; they carry no time of their own.
	ClassPhase
	// ClassFault is a fault-handling interval: a transient-failure retry
	// with its backoff ("retry:allreduce"), a collective abandoned to a
	// dead peer ("timeout:allgather"), or a rank crash marker ("crash").
	// Fault events occupy real simulated time on the device timeline (the
	// backoff or deadline charge), keeping clocks reconcilable with the
	// trace even on faulty runs.
	ClassFault
	// ClassRequest is a serving-tier request span (internal/serve): one
	// microbatch from first arrival to completion, emitted on a virtual
	// front-end row (rank P) rather than a device timeline, so request
	// latency reads alongside — but never interleaves with — device
	// work.
	ClassRequest
	// ClassGossip is a membership control-plane span (internal/member):
	// one gossip protocol round of a failure-detection episode, emitted
	// on a virtual row (rank P of the world being probed) like
	// ClassRequest, carrying the round's exact metered control-plane
	// bytes. Gossip rounds occupy simulated detection time between a
	// crash and the re-formation it triggers.
	ClassGossip
)

func (c Class) String() string {
	switch c {
	case ClassKernel:
		return "kernel"
	case ClassCollective:
		return "collective"
	case ClassPhase:
		return "phase"
	case ClassFault:
		return "fault"
	case ClassRequest:
		return "request"
	case ClassGossip:
		return "gossip"
	}
	return "unknown"
}

// Event is one recorded interval on a device's simulated timeline.
// Start and End are simulated seconds (the device clock of internal/hw).
type Event struct {
	Class Class
	// Op names the event: kernel name ("gemm", "spmm", "mem"),
	// collective kind ("allgather", "alltoall", ...), or phase name
	// ("epoch", "forward", "layer", ...).
	Op string
	// Group is the collective's sorted rank list ("0,2,4"), empty for
	// kernels and phases.
	Group string
	// Seq is the collective round number within Group; together
	// (Group, Seq) identifies one collective occurrence across all its
	// participants, which is how the Chrome exporter draws comm-flow
	// arrows between ranks.
	Seq uint64
	// GroupSize is the participant count of a collective.
	GroupSize int
	// Bytes is the metered volume: for collectives the exact bytes moved
	// across device boundaries (matching Fabric.Volume accounting), for
	// mem kernels the bytes touched.
	Bytes int64
	// Tier1 is the share of Bytes that crossed inter-node (tier-1)
	// links; zero on flat topologies and for kernels. Bytes-Tier1
	// crossed intra-node links.
	Tier1 int64
	// Flops is the modelled FMA count of a compute kernel (m·k·n for
	// gemm, nnz·f for spmm).
	Flops int64
	// Start and End are simulated seconds.
	Start, End float64
	// Scope tags captured at emission time.
	Epoch, Layer int
	// Step is the plan-schedule step ID of the op being executed
	// (internal/plan's Op.Step; 0 = outside any scheduled op), so trace
	// events reconcile against the compiled schedule's per-op prices.
	Step int
	// Dir is "fwd", "bwd", or "".
	Dir string
	// Config is the Table IV ordering of the run ("fwd[sd] bwd[ds]").
	Config string
	// Track is the device resource timeline the event occupies (the
	// hw.Resource index under the overlap executor: 0 = compute, 1 =
	// intra-node link, 2 = inter-node link). Sequential execution emits
	// everything on track 0, which reproduces the pre-overlap trace
	// byte-for-byte. Events are ordered within a track, not across
	// tracks: overlapped spans on different tracks of one rank may
	// interleave freely.
	Track int
}

// Dur returns the event's simulated duration in seconds.
func (e *Event) Dur() float64 { return e.End - e.Start }

// DefaultCapacity is the per-device ring capacity used when NewTracer is
// given capacity <= 0. At roughly 100 events per device per epoch this
// holds hundreds of epochs before wrapping.
const DefaultCapacity = 1 << 16

// Tracer records events across one or more sessions (one session per
// fabric run). The zero-value-less constructor keeps the invariant that
// a non-nil Tracer always has a capacity.
type Tracer struct {
	capacity int
	sessions []*Session
}

// NewTracer creates a tracer whose per-device ring buffers hold capacity
// events each (DefaultCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{capacity: capacity}
}

// Session is the trace of one fabric run: P device timelines under one
// label. Labels name the run ("Reddit/p8/rdm-cfg10") and become process
// names in the Chrome export.
type Session struct {
	Label string
	P     int
	// Virtual marks a session whose events were synthesized by the
	// discrete-event engine (internal/sim) rather than recorded from a
	// live fabric run: the timeline is identical in shape — kernels,
	// collectives, phases on per-resource tracks — but no payload ever
	// moved. Consumers (the Chrome exporter, Summarize) treat both the
	// same; the flag exists so tooling can label the provenance.
	Virtual bool
	ranks   []*rankState
}

// rankState is one device's recording state: one trackState per resource
// timeline. Track 0 always exists; extra tracks materialize lazily when
// the overlap executor emits on them. Each track is written only by the
// single goroutine owning that (rank, track) lane.
type rankState struct {
	tracks []*trackState
}

// trackState is one (rank, track) timeline's ring buffer, scope tags and
// phase stack.
type trackState struct {
	buf   []Event // ring storage; len grows to capacity then wraps
	next  int     // next write slot once len(buf) == capacity
	total uint64  // events ever emitted (total - len(buf) were dropped)
	scope scope
	stack []openPhase
}

type scope struct {
	epoch, layer int
	step         int
	dir          string
	config       string
}

type openPhase struct {
	name  string
	start float64
}

// StartSession begins a new session for a p-device run. It must not be
// called while a fabric Run is emitting; internal/comm calls it from
// Fabric.SetTracer, which establishes one session per fabric.
func (t *Tracer) StartSession(label string, p int) *Session {
	s := &Session{Label: label, P: p, ranks: make([]*rankState, p)}
	for r := range s.ranks {
		s.ranks[r] = &rankState{tracks: []*trackState{{}}}
	}
	t.sessions = append(t.sessions, s)
	return s
}

// StartVirtualSession is StartSession for a synthesized (simulated)
// timeline: the returned session is marked Virtual. The discrete-event
// engine opens one per sim.Run, keeping virtual and live sessions
// distinguishable in mixed traces.
func (t *Tracer) StartVirtualSession(label string, p int) *Session {
	s := t.StartSession(label, p)
	s.Virtual = true
	return s
}

// Sessions returns all recorded sessions in start order.
func (t *Tracer) Sessions() []*Session { return t.sessions }

// Reset drops all recorded sessions, keeping the configured capacity.
func (t *Tracer) Reset() { t.sessions = nil }

func (t *Tracer) cur() *Session {
	if len(t.sessions) == 0 {
		// Emission before any StartSession: synthesize an anonymous
		// session sized to fit the emitting rank lazily. This only
		// happens when a caller bypasses Fabric.SetTracer.
		return t.StartSession("anonymous", 0)
	}
	return t.sessions[len(t.sessions)-1]
}

func (t *Tracer) rank(r int) *rankState {
	s := t.cur()
	for len(s.ranks) <= r {
		s.ranks = append(s.ranks, &rankState{tracks: []*trackState{{}}})
		if s.P < len(s.ranks) {
			s.P = len(s.ranks)
		}
	}
	return s.ranks[r]
}

// state returns the (rank, track) timeline, creating intermediate tracks
// as needed. New tracks must materialize before concurrent emission on
// the rank begins: the fabric sets scope tags on each lane from the
// owning device goroutine before forking lane workers, which creates the
// track states with a happens-before edge to every later emission.
func (t *Tracer) state(r, track int) *trackState {
	rs := t.rank(r)
	for len(rs.tracks) <= track {
		rs.tracks = append(rs.tracks, &trackState{})
	}
	return rs.tracks[track]
}

// Emit records one event on rank r's timeline — on the track the event
// carries (ev.Track) — stamping it with that track's current scope tags.
// Callers must hold the "one writer per (rank, track)" invariant;
// internal/comm guarantees it by construction.
func (t *Tracer) Emit(r int, ev Event) {
	rs := t.state(r, ev.Track)
	ev.Epoch, ev.Layer, ev.Step = rs.scope.epoch, rs.scope.layer, rs.scope.step
	ev.Dir, ev.Config = rs.scope.dir, rs.scope.config
	rs.total++
	if len(rs.buf) < t.capacity {
		rs.buf = append(rs.buf, ev)
		return
	}
	// Ring full: overwrite the oldest event.
	rs.buf[rs.next] = ev
	rs.next++
	if rs.next == len(rs.buf) {
		rs.next = 0
	}
}

// SetEpoch tags subsequent events on rank r's track 0 with the epoch
// number.
func (t *Tracer) SetEpoch(r, epoch int) { t.SetEpochAt(r, 0, epoch) }

// SetEpochAt is SetEpoch for one track of rank r.
func (t *Tracer) SetEpochAt(r, track, epoch int) { t.state(r, track).scope.epoch = epoch }

// SetLayer tags subsequent events on rank r's track 0 with the layer
// number (0 = outside any layer).
func (t *Tracer) SetLayer(r, layer int) { t.SetLayerAt(r, 0, layer) }

// SetLayerAt is SetLayer for one track of rank r.
func (t *Tracer) SetLayerAt(r, track, layer int) { t.state(r, track).scope.layer = layer }

// SetStep tags subsequent events on rank r's track 0 with a plan-schedule
// step ID (0 = outside any scheduled op).
func (t *Tracer) SetStep(r, step int) { t.SetStepAt(r, 0, step) }

// SetStepAt is SetStep for one track of rank r.
func (t *Tracer) SetStepAt(r, track, step int) { t.state(r, track).scope.step = step }

// SetDir tags subsequent events on rank r's track 0 with the pass
// direction ("fwd", "bwd", or "").
func (t *Tracer) SetDir(r int, dir string) { t.SetDirAt(r, 0, dir) }

// SetDirAt is SetDir for one track of rank r.
func (t *Tracer) SetDirAt(r, track int, dir string) { t.state(r, track).scope.dir = dir }

// SetConfig tags subsequent events on rank r's track 0 with the run's
// ordering configuration string.
func (t *Tracer) SetConfig(r int, cfg string) { t.SetConfigAt(r, 0, cfg) }

// SetConfigAt is SetConfig for one track of rank r.
func (t *Tracer) SetConfigAt(r, track int, cfg string) { t.state(r, track).scope.config = cfg }

// BeginPhase opens a named phase on rank r's track 0 at the given
// simulated time. Phases nest; each BeginPhase must be matched by
// EndPhase.
func (t *Tracer) BeginPhase(r int, name string, start float64) {
	t.BeginPhaseAt(r, 0, name, start)
}

// BeginPhaseAt is BeginPhase for one track of rank r.
func (t *Tracer) BeginPhaseAt(r, track int, name string, start float64) {
	rs := t.state(r, track)
	rs.stack = append(rs.stack, openPhase{name: name, start: start})
}

// EndPhase closes the innermost open phase on rank r's track 0, emitting
// a ClassPhase event spanning [start, end]. Unbalanced EndPhase calls
// are ignored.
func (t *Tracer) EndPhase(r int, end float64) { t.EndPhaseAt(r, 0, end) }

// EndPhaseAt is EndPhase for one track of rank r.
func (t *Tracer) EndPhaseAt(r, track int, end float64) {
	rs := t.state(r, track)
	if len(rs.stack) == 0 {
		return
	}
	ph := rs.stack[len(rs.stack)-1]
	rs.stack = rs.stack[:len(rs.stack)-1]
	t.Emit(r, Event{Class: ClassPhase, Op: ph.name, Start: ph.start, End: end, Track: track})
}

// chrono returns one track's buffered events in emission order,
// unrotating a wrapped ring.
func (rs *trackState) chrono() []Event {
	if rs.total <= uint64(len(rs.buf)) {
		return rs.buf
	}
	out := make([]Event, 0, len(rs.buf))
	out = append(out, rs.buf[rs.next:]...)
	out = append(out, rs.buf[:rs.next]...)
	return out
}

// Events returns rank r's recorded events. On a single-track rank (every
// sequential run) this is the track's buffer in emission order,
// byte-identical to the pre-overlap tracer. Multi-track ranks get a
// deterministic merge: tracks are interleaved by ascending event Start,
// lower track first on ties, preserving each track's own emission order.
// When a ring wrapped, only its most recent capacity events remain.
func (s *Session) Events(r int) []Event {
	rs := s.ranks[r]
	if len(rs.tracks) == 1 {
		return rs.tracks[0].chrono()
	}
	lists := make([][]Event, len(rs.tracks))
	total := 0
	for i, ts := range rs.tracks {
		lists[i] = ts.chrono()
		total += len(lists[i])
	}
	out := make([]Event, 0, total)
	heads := make([]int, len(lists))
	for len(out) < total {
		best := -1
		for i := range lists {
			if heads[i] >= len(lists[i]) {
				continue
			}
			if best < 0 || lists[i][heads[i]].Start < lists[best][heads[best]].Start {
				best = i
			}
		}
		out = append(out, lists[best][heads[best]])
		heads[best]++
	}
	return out
}

// Tracks returns how many resource timelines rank r materialized
// (1 for every sequential run).
func (s *Session) Tracks(r int) int { return len(s.ranks[r].tracks) }

// TrackEvents returns one (rank, track) timeline's events in emission
// order, or nil when the track was never materialized.
func (s *Session) TrackEvents(r, track int) []Event {
	rs := s.ranks[r]
	if track >= len(rs.tracks) {
		return nil
	}
	return rs.tracks[track].chrono()
}

// Dropped returns how many of rank r's events were overwritten by ring
// wraparound, summed over tracks.
func (s *Session) Dropped(r int) uint64 {
	var d uint64
	for _, ts := range s.ranks[r].tracks {
		d += ts.total - uint64(len(ts.buf))
	}
	return d
}

// Total returns how many events rank r ever emitted, summed over tracks.
func (s *Session) Total(r int) uint64 {
	var n uint64
	for _, ts := range s.ranks[r].tracks {
		n += ts.total
	}
	return n
}
